// Beam-search scheduler: the anytime fallback for graphs whose signature
// space defeats even budget-pruned dynamic programming.
//
// The DP of Algorithm 1 is exact but worst-case exponential; adaptive soft
// budgeting keeps it tractable for the paper's cells, yet a user importing
// an arbitrary irregular graph needs a graceful degradation path. The beam
// scheduler runs the same level-by-level expansion but keeps only the
// `width` most promising states per level (ranked by peak, then current
// footprint), trading optimality for a hard O(width · |V|^2) bound.
//
// Properties (enforced by tests):
//  - always returns a valid topological order;
//  - never worse than the greedy baseline at width >= 1 in expectation —
//    and exactly optimal when `width` exceeds the true level width;
//  - quality is monotone in `width` in the aggregate (not per instance).
#ifndef SERENITY_SCHED_BEAM_H_
#define SERENITY_SCHED_BEAM_H_

#include <cstdint>

#include "graph/graph.h"
#include "sched/schedule.h"

namespace serenity::sched {

struct BeamOptions {
  int width = 64;  // states retained per level
};

struct BeamResult {
  Schedule schedule;
  std::int64_t peak_bytes = 0;
  std::uint64_t states_expanded = 0;
};

BeamResult ScheduleBeam(const graph::Graph& graph,
                        const BeamOptions& options = {});

}  // namespace serenity::sched

#endif  // SERENITY_SCHED_BEAM_H_
