#include "core/dp_scheduler.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/state_store.h"
#include "graph/analysis.h"
#include "util/bitset.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace serenity::core {

const char* ToString(DpStatus status) {
  switch (status) {
    case DpStatus::kSolution:
      return "solution";
    case DpStatus::kNoSolution:
      return "no solution";
    case DpStatus::kTimeout:
      return "timeout";
  }
  return "unknown";
}

namespace {

// StateLevel::ShardOf derives the shard from the top 6 hash bits, so at
// most 64 shards can ever be populated; clamp thread/shard counts there.
constexpr int kMaxShards = 64;

int ShardCountFor(int num_threads) {
  int shards = 1;
  while (shards < num_threads && shards < kMaxShards) shards <<= 1;
  return shards;
}

class DpRunner {
 public:
  DpRunner(const graph::Graph& graph, const DpOptions& options)
      : options_(options),
        tables_(ExpansionTables::Build(graph)),
        hasher_(static_cast<std::size_t>(graph.num_nodes())),
        num_nodes_(static_cast<std::size_t>(graph.num_nodes())),
        words_(tables_.words_per_state()) {}

  DpResult Run() {
    util::Stopwatch total_clock;
    DpResult result;
    recon_.resize(num_nodes_ + 1);

    const int num_threads =
        std::min(std::max(1, options_.num_threads), kMaxShards);
    const int shards = num_threads > 1 ? ShardCountFor(num_threads) : 1;

    // Level 0: the empty schedule (Algorithm 1 lines 4-5).
    StateLevel current;
    current.Init(words_, 1, 1);
    const std::vector<std::uint64_t> empty(words_, 0);
    current.InsertOrRelax(empty.data(), SignatureHasher::kEmptyHash, 0, 0,
                          -1, -1);
    current.Seal();

    for (std::size_t i = 0; i < num_nodes_; ++i) {
      util::Stopwatch level_clock;
      if (current.size() == 0) {
        // Every prefix of length i was pruned: the budget is below µ*.
        result.status = DpStatus::kNoSolution;
        result.levels_completed = static_cast<int>(i);
        result.states_expanded = states_expanded_;
        result.transitions = transitions_;
        result.seconds = total_clock.ElapsedSeconds();
        return result;
      }
      StateLevel next;
      next.Init(words_, NextLevelReserveHint(current.size()), shards);
      const bool completed =
          num_threads > 1
              ? ExpandLevelSharded(current, next, num_threads, level_clock)
              : ExpandLevel(current, next, level_clock);
      if (!completed ||
          level_clock.ElapsedSeconds() > options_.step_timeout_seconds) {
        return Abort(DpStatus::kTimeout, i, total_clock);
      }
      next.Seal();
      // The finished level keeps only its 8-byte reconstruction records;
      // signatures, hashes, footprints and peaks are freed here.
      recon_[i] = current.TakeReconAndRelease();
      current = std::move(next);
      result.levels_completed = static_cast<int>(i) + 1;
    }

    if (current.size() == 0) {
      result.status = DpStatus::kNoSolution;
    } else {
      // A DAG has exactly one full signature (Algorithm 1 line 27).
      SERENITY_CHECK_EQ(current.size(), 1u);
      result.status = DpStatus::kSolution;
      result.peak_bytes = current.peak(0);
      recon_[num_nodes_] = current.TakeReconAndRelease();
      result.schedule = Reconstruct();
    }
    result.states_expanded = states_expanded_;
    result.transitions = transitions_;
    result.seconds = total_clock.ElapsedSeconds();
    return result;
  }

 private:
  DpResult Abort(DpStatus status, std::size_t level,
                 const util::Stopwatch& clock) {
    DpResult result;
    result.status = status;
    result.levels_completed = static_cast<int>(level);
    result.states_expanded = states_expanded_;
    result.transitions = transitions_;
    result.seconds = clock.ElapsedSeconds();
    return result;
  }

  // Sequential expansion of one level (Algorithm 1 lines 9-24). Returns
  // false on step timeout or state-cap overrun.
  bool ExpandLevel(const StateLevel& current, StateLevel& next,
                   const util::Stopwatch& level_clock) {
    std::vector<std::int32_t> frontier;
    std::vector<std::uint64_t> child(words_);
    for (std::size_t s = 0; s < current.size(); ++s) {
      const std::uint64_t* sig = current.signature(s);
      frontier.clear();
      tables_.AppendFrontier(sig, &frontier);
      const std::int64_t footprint = current.footprint(s);
      const std::int64_t peak = current.peak(s);
      const std::uint64_t hash = current.hash(s);
      for (const std::int32_t u : frontier) {
        ++transitions_;
        // Re-check the step timeout every ~4096 transitions so a single
        // pathological state expansion cannot overshoot it unboundedly.
        if ((transitions_ & 0xfff) == 0 &&
            level_clock.ElapsedSeconds() > options_.step_timeout_seconds) {
          return false;
        }
        const ExpansionTables::Transition t =
            tables_.Apply(sig, u, footprint, options_.budget_bytes);
        if (t.step_peak > options_.budget_bytes) continue;  // prune (§3.2)
        std::copy(sig, sig + words_, child.data());
        util::SpanSetBit(child.data(), static_cast<std::size_t>(u));
        if (next.InsertOrRelax(child.data(), hash ^ hasher_.key(
                                   static_cast<std::size_t>(u)),
                               t.footprint, std::max(peak, t.step_peak),
                               static_cast<std::int32_t>(s), u)) {
          ++states_expanded_;
        }
      }
      if ((s & 0x3f) == 0 &&
          level_clock.ElapsedSeconds() > options_.step_timeout_seconds) {
        return false;
      }
      if (states_expanded_ > options_.max_states) return false;
    }
    return true;
  }

  // Sharded parallel expansion: every thread scans the whole parent level
  // (the frontier recomputation is duplicated — it is cheap) but computes
  // and inserts only the transitions whose child hash falls in its shards,
  // so each sub-table has exactly one writer and per-shard insertion order
  // is the same ascending (state, node) order regardless of scheduling —
  // the determinism argument in DESIGN.md.
  bool ExpandLevelSharded(const StateLevel& current, StateLevel& next,
                          int num_threads,
                          const util::Stopwatch& level_clock) {
    std::atomic<bool> abort{false};
    std::atomic<std::uint64_t> transitions{0};
    std::atomic<std::uint64_t> created{0};
    auto worker = [&](int thread_index) {
      std::vector<std::int32_t> frontier;
      std::vector<std::uint64_t> child(words_);
      std::uint64_t local_transitions = 0;
      std::uint64_t local_created = 0;
      std::uint64_t since_check = 0;
      for (std::size_t s = 0; s < current.size(); ++s) {
        if (abort.load(std::memory_order_relaxed)) break;
        const std::uint64_t* sig = current.signature(s);
        frontier.clear();
        tables_.AppendFrontier(sig, &frontier);
        const std::int64_t footprint = current.footprint(s);
        const std::int64_t peak = current.peak(s);
        const std::uint64_t hash = current.hash(s);
        for (const std::int32_t u : frontier) {
          const std::uint64_t child_hash =
              hash ^ hasher_.key(static_cast<std::size_t>(u));
          if (next.ShardOf(child_hash) % num_threads != thread_index) {
            continue;  // another thread owns this child's shard
          }
          ++local_transitions;
          if ((++since_check & 0xfff) == 0) {
            // Publish this worker's states before checking the cap, so the
            // cap is enforced *within* a level (overshoot is bounded by
            // ~4096 transitions per thread, matching the sequential path's
            // granularity) rather than only after it is fully materialized.
            created.fetch_add(local_created, std::memory_order_relaxed);
            local_created = 0;
            if (level_clock.ElapsedSeconds() >
                    options_.step_timeout_seconds ||
                states_expanded_ + created.load(std::memory_order_relaxed) >
                    options_.max_states) {
              abort.store(true, std::memory_order_relaxed);
              break;
            }
          }
          const ExpansionTables::Transition t =
              tables_.Apply(sig, u, footprint, options_.budget_bytes);
          if (t.step_peak > options_.budget_bytes) continue;
          std::copy(sig, sig + words_, child.data());
          util::SpanSetBit(child.data(), static_cast<std::size_t>(u));
          if (next.InsertOrRelax(child.data(), child_hash, t.footprint,
                                 std::max(peak, t.step_peak),
                                 static_cast<std::int32_t>(s), u)) {
            ++local_created;
          }
        }
      }
      transitions.fetch_add(local_transitions, std::memory_order_relaxed);
      created.fetch_add(local_created, std::memory_order_relaxed);
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
    for (std::thread& t : threads) t.join();
    transitions_ += transitions.load();
    states_expanded_ += created.load();
    if (abort.load()) return false;
    return states_expanded_ <= options_.max_states;
  }

  sched::Schedule Reconstruct() const {
    sched::Schedule schedule(num_nodes_, graph::kInvalidNode);
    std::int32_t index = 0;
    for (std::size_t i = num_nodes_; i > 0; --i) {
      const ReconRecord& record =
          recon_[i][static_cast<std::size_t>(index)];
      schedule[i - 1] = static_cast<graph::NodeId>(record.last_node);
      index = record.prev_index;
    }
    return schedule;
  }

  const DpOptions options_;
  const ExpansionTables tables_;
  const SignatureHasher hasher_;
  const std::size_t num_nodes_;
  const std::size_t words_;
  std::vector<std::vector<ReconRecord>> recon_;
  std::uint64_t states_expanded_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace

DpResult ScheduleDp(const graph::Graph& graph, const DpOptions& options) {
  SERENITY_CHECK_GT(graph.num_nodes(), 0) << "cannot schedule an empty graph";
  return DpRunner(graph, options).Run();
}

}  // namespace serenity::core
