// Scheduler-as-a-service, end to end: a long-lived SchedulerService takes
// scheduling requests for a zoo of irregularly wired networks, plans each
// distinct graph once, serves repeats from its plan cache (including
// structurally identical graphs built in a different node order), persists
// the cache, demonstrates a warm restart that skips re-planning entirely —
// and then *runs inference* through the warm plans: each one opens an
// InferenceSession whose ArenaExecutor executes out of the planned arena,
// printing planned vs measured-touched peak.
//
//   $ build/serenity_serve [cache_file]
//
// Fault-tolerance drill (the CI corrupt-cache smoke):
//
//   $ build/serenity_serve --warm-only [cache_file]
//
// loads a previously persisted cache — possibly damaged — and serves the
// same request set. Entries quarantined by the per-entry checksum are
// simply re-planned; the process exits 0 as long as every request ends up
// with a plan, because losing one cache entry must never cost more than
// one re-plan.
//
// Network mode (the front end serenity_loadgen talks to):
//
//   $ build/serenity_serve --serve <port> [--mem-budget=BYTES] [cache_file]
//
// starts the TCP server (port 0 = pick an ephemeral port, printed as
// "serving on port N"), warm-loads the cache if present, and serves until
// SIGTERM/SIGINT — then drains gracefully: stop accepting, finish
// in-flight requests, persist the plan cache, exit 0.
//
// --mem-budget=BYTES (suffixes k/m/g accepted) arms the resource governor:
// one server-wide byte ledger partitioned into a planning child (every
// concurrent planning run's search memory) and a sessions child (every
// pooled inference arena). Each child may use up to the whole budget, but
// the parent caps their *sum*, so planning pressure and serving pressure
// shed each other instead of the OOM killer deciding. Graphs whose minimal
// schedulable footprint provably exceeds the budget are shed at admission
// with a retry hint before any planning memory is spent. The exit summary
// and the stats verb report the governor's used/peak/denials.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <optional>
#include <string>
#include <vector>

#include "graph/canonical_hash.h"
#include "models/zoo.h"
#include "runtime/kernel_backend.h"
#include "serve/inference_session.h"
#include "serve/scheduler_service.h"
#include "serve/session_pool.h"
#include "serve/tcp_server.h"
#include "testing/random_graphs.h"
#include "testing/runtime_inputs.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace serenity;

// --backend= selection, applied to every inference session this binary
// opens (kAuto: fastest kernel backend available on this machine).
runtime::Backend g_backend = runtime::Backend::kAuto;

// --mem-budget= in bytes; 0 = ungoverned (the pre-governor behavior).
std::int64_t g_mem_budget_bytes = 0;

// Parses "262144", "256k", "64m" or "1g" (case-insensitive suffix) into
// bytes; returns false on anything else.
bool ParseByteCount(const char* text, std::int64_t* out) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || value <= 0) return false;
  std::int64_t scale = 1;
  if (*end == 'k' || *end == 'K') { scale = 1ll << 10; ++end; }
  else if (*end == 'm' || *end == 'M') { scale = 1ll << 20; ++end; }
  else if (*end == 'g' || *end == 'G') { scale = 1ll << 30; ++end; }
  if (*end != '\0') return false;
  *out = static_cast<std::int64_t>(value) * scale;
  return true;
}

const char* PathOf(const serve::ServeResult& r) {
  if (r.cache_hit) return "cache hit";
  if (r.coalesced) return "coalesced";
  return r.plan != nullptr ? "planned" : "FAILED";
}

void PrintStats(const serve::SchedulerService& service) {
  const serve::ServiceStats s = service.stats();
  std::printf("  service: %llu requests = %llu planned + %llu hits + %llu "
              "coalesced; cache %llu plans, %.1f KB\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.planned),
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.coalesced),
              static_cast<unsigned long long>(s.cache.entries),
              static_cast<double>(s.cache.bytes_in_use) / 1024.0);
  std::printf("  faults:  %llu load errors, %llu entries quarantined, "
              "%llu degraded plans, %llu upgrades\n",
              static_cast<unsigned long long>(s.cache.load_errors),
              static_cast<unsigned long long>(s.cache.entries_quarantined),
              static_cast<unsigned long long>(s.degraded_plans),
              static_cast<unsigned long long>(s.upgrades));
}

std::vector<graph::Graph> BuildRequests(std::size_t* distinct) {
  // The request stream: four distinct cells, each requested twice, plus a
  // relabeled twin of one of them (same structure, different node order and
  // names — the canonical hash maps it to the same plan).
  std::vector<graph::Graph> requests;
  for (const char* name : {"Cell A", "Cell B", "Cell C"}) {
    requests.push_back(models::FindBenchmarkCell("SwiftNet HPD", name)
                           .factory());
  }
  requests.push_back(
      models::FindBenchmarkCell("DARTS ImageNet", "Normal Cell").factory());
  *distinct = requests.size();
  for (std::size_t i = 0; i < *distinct; ++i) {
    requests.push_back(requests[i]);
  }
  util::Rng rng(42);
  requests.push_back(
      serenity::testing::RelabelIsomorphic(requests[0], rng, "twin"));
  return requests;
}

// --warm-only: serve from a persisted (possibly damaged) cache, re-planning
// whatever the checksum quarantined. Success = every request served.
int RunWarmOnly(const std::string& cache_path) {
  std::size_t distinct = 0;
  const std::vector<graph::Graph> requests = BuildRequests(&distinct);

  serve::ServeOptions options;
  options.num_workers = 2;
  serve::SchedulerService service(options);
  const util::StatusOr<serve::CacheLoadReport> load =
      service.cache().LoadFromFile(cache_path);
  if (!load.ok()) {
    std::fprintf(stderr, "cache '%s' unusable (%s); serving cold\n",
                 cache_path.c_str(), load.status().ToString().c_str());
  } else {
    std::printf("loaded %d plans, quarantined %d from %s\n",
                load.value().entries_loaded,
                load.value().entries_quarantined, cache_path.c_str());
  }

  int replanned = 0;
  for (std::size_t i = 0; i < distinct; ++i) {
    const serve::ServeResult r = service.Schedule(requests[i]);
    if (r.plan == nullptr) {
      std::fprintf(stderr, "request %zu failed: %s\n", i,
                   r.status.ToString().c_str());
      return 1;
    }
    if (!r.cache_hit) ++replanned;
    std::printf("  %-28s %-10s peak %8.1f KB\n",
                requests[i].name().c_str(), PathOf(r),
                static_cast<double>(r.plan->result.peak_bytes) / 1024.0);
  }
  std::printf("served %zu requests: %zu warm, %d re-planned\n", distinct,
              distinct - static_cast<std::size_t>(replanned), replanned);
  PrintStats(service);
  return 0;
}

// --serve: run the TCP front end until SIGTERM/SIGINT, then drain.
volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

int RunServer(int port, const std::string& cache_path) {
  // The resource governor: one server-wide ledger, two children. Each
  // child may individually reach the full budget, but the parent bounds
  // their sum — concurrent plannings and pooled arenas share one cap.
  const bool governed = g_mem_budget_bytes > 0;
  util::MemoryBudget root_budget(governed ? g_mem_budget_bytes : 0);
  util::MemoryBudget planning_budget(g_mem_budget_bytes, &root_budget);
  util::MemoryBudget session_budget(g_mem_budget_bytes, &root_budget);

  serve::ServeOptions serve_options;
  serve_options.num_workers = 2;
  if (governed) {
    serve_options.planning_budget = &planning_budget;
    serve_options.admission_floor_budget_bytes = g_mem_budget_bytes;
    serve_options.pipeline.degrade_on_deadline = true;
  }
  serve::SchedulerService service(serve_options);
  const util::StatusOr<serve::CacheLoadReport> load =
      service.cache().LoadFromFile(cache_path);
  if (load.ok()) {
    std::printf("warm cache: %d plans loaded, %d quarantined\n",
                load.value().entries_loaded,
                load.value().entries_quarantined);
  }

  serve::SessionPoolOptions pool_options;
  pool_options.session.executor.backend = g_backend;
  if (governed) {
    pool_options.arena_budget = &session_budget;
    pool_options.max_total_arena_bytes =
        std::min(pool_options.max_total_arena_bytes, g_mem_budget_bytes);
  }
  serve::SessionPool pool(pool_options);
  serve::TcpServerOptions options;
  options.port = port;
  if (governed) options.governor = &root_budget;
  serve::TcpServer server(service, pool, options);
  const util::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }

  struct sigaction action {};
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  if (governed) {
    std::printf("resource governor: %.1f MB shared across planning and "
                "sessions\n",
                static_cast<double>(g_mem_budget_bytes) / (1024.0 * 1024.0));
  }
  std::printf("serving on port %d\n", server.port());
  std::fflush(stdout);  // scripts parse the port from this line

  // The signal handler only flips a flag; this loop turns it into a drain.
  while (!g_stop_requested && !server.draining()) {
    timespec nap{0, 100 * 1000 * 1000};
    ::nanosleep(&nap, nullptr);  // EINTR on signal re-checks the flag
  }
  std::printf("drain requested, finishing in-flight requests...\n");
  server.RequestDrain();
  server.Join();

  const util::Status saved = service.cache().SaveToFile(cache_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "cache save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  const serve::TcpServerStats stats = server.stats();
  const serve::SessionPoolStats pool_stats = pool.stats();
  const serve::ServiceStats service_stats = service.stats();
  std::printf("drained: %llu requests served (%llu ok, %llu error), "
              "%llu admission sheds, %llu pool sheds; cache persisted to %s\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.replies_ok),
              static_cast<unsigned long long>(stats.replies_error),
              static_cast<unsigned long long>(stats.admission_sheds),
              static_cast<unsigned long long>(pool_stats.sheds),
              cache_path.c_str());
  if (governed) {
    std::printf("governor: root peak %.1f/%.1f MB, %llu denials "
                "(planning peak %.1f MB, sessions peak %.1f MB)\n",
                static_cast<double>(root_budget.peak_bytes()) /
                    (1024.0 * 1024.0),
                static_cast<double>(root_budget.limit_bytes()) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(root_budget.denials() +
                                                planning_budget.denials() +
                                                session_budget.denials()),
                static_cast<double>(planning_budget.peak_bytes()) /
                    (1024.0 * 1024.0),
                static_cast<double>(session_budget.peak_bytes()) /
                    (1024.0 * 1024.0));
    std::printf("governor: %llu plannings shed at admission, %llu plans "
                "degraded on memory, %llu cancelled, %llu plan cancels on "
                "the wire\n",
                static_cast<unsigned long long>(
                    service_stats.admission_sheds),
                static_cast<unsigned long long>(
                    service_stats.degraded_on_memory),
                static_cast<unsigned long long>(service_stats.cancelled),
                static_cast<unsigned long long>(stats.plan_cancels));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool warm_only = false;
  bool serve_mode = false;
  int serve_port = 0;
  std::string cache_path = "/tmp/serenity_serve.cache";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--warm-only") == 0) {
      warm_only = true;
    } else if (std::strcmp(argv[a], "--serve") == 0 && a + 1 < argc) {
      serve_mode = true;
      serve_port = std::atoi(argv[++a]);
    } else if (std::strncmp(argv[a], "--mem-budget=", 13) == 0) {
      if (!ParseByteCount(argv[a] + 13, &g_mem_budget_bytes)) {
        std::fprintf(stderr,
                     "bad %s (want a positive byte count, e.g. 64m)\n",
                     argv[a]);
        return 1;
      }
    } else if (std::strncmp(argv[a], "--backend=", 10) == 0) {
      const std::optional<runtime::Backend> parsed =
          runtime::ParseBackend(argv[a] + 10);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "unknown %s (want reference|blocked|avx2|auto)\n",
                     argv[a]);
        return 1;
      }
      g_backend = *parsed;
    } else {
      cache_path = argv[a];
    }
  }
  std::printf("kernel backend: %s (resolved: %s)\n",
              runtime::ToString(g_backend),
              runtime::ToString(runtime::ResolveBackend(g_backend)));
  if (serve_mode) return RunServer(serve_port, cache_path);
  if (warm_only) return RunWarmOnly(cache_path);

  std::size_t distinct = 0;
  const std::vector<graph::Graph> requests = BuildRequests(&distinct);

  std::printf("serving %zu requests (%zu distinct graphs) with 2 workers\n",
              requests.size(), distinct);
  serve::ServeOptions options;
  options.num_workers = 2;
  {
    serve::SchedulerService service(options);
    std::vector<const graph::Graph*> batch;
    for (const graph::Graph& g : requests) batch.push_back(&g);

    util::Stopwatch clock;
    const std::vector<serve::ServeResult> results =
        service.ScheduleBatch(batch);
    const double seconds = clock.ElapsedSeconds();

    for (std::size_t i = 0; i < results.size(); ++i) {
      const serve::ServeResult& r = results[i];
      if (r.plan == nullptr) {
        std::fprintf(stderr, "request %zu failed: %s\n", i,
                     r.status.ToString().c_str());
        return 1;
      }
      std::printf("  %-28s %-10s peak %8.1f KB  arena %8.1f KB  "
                  "(hash %.16s)\n",
                  batch[i]->name().c_str(), PathOf(r),
                  static_cast<double>(r.plan->result.peak_bytes) / 1024.0,
                  static_cast<double>(r.plan->plan.arena.arena_bytes) /
                      1024.0,
                  r.hash.ToHex().c_str());
    }
    std::printf("batch served in %.3f s\n", seconds);
    PrintStats(service);

    const util::Status saved = service.cache().SaveToFile(cache_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "cache save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("cache persisted to %s\n\n", cache_path.c_str());
  }

  // Warm restart: a brand-new service process loads the persisted cache and
  // answers every request without planning anything.
  std::printf("restarting with the persisted cache...\n");
  serve::SchedulerService restarted(options);
  const util::StatusOr<serve::CacheLoadReport> load =
      restarted.cache().LoadFromFile(cache_path);
  if (!load.ok()) {
    std::fprintf(stderr, "cache load failed: %s\n",
                 load.status().ToString().c_str());
    return 1;
  }
  std::printf("  loaded %d plans (%d quarantined)\n",
              load.value().entries_loaded,
              load.value().entries_quarantined);

  util::Stopwatch warm_clock;
  std::vector<serve::ServeResult> warm;
  for (std::size_t i = 0; i < distinct; ++i) {
    serve::ServeResult r = restarted.Schedule(requests[i]);
    if (r.plan == nullptr || !r.cache_hit) {
      std::fprintf(stderr, "warm restart missed on request %zu\n", i);
      return 1;
    }
    warm.push_back(std::move(r));
  }
  std::printf("  %zu requests served warm in %.4f s (0 planned)\n", distinct,
              warm_clock.ElapsedSeconds());
  PrintStats(restarted);

  // The loop closed: warm plan -> per-session arena -> real numbers. Each
  // session executes with zero per-inference heap allocation; the canary
  // measurement certifies the inference really peaks at the planned arena.
  std::printf("\nrunning inference through the warm plans:\n");
  for (std::size_t i = 0; i < distinct; ++i) {
    serve::InferenceSessionOptions session_options;
    session_options.executor.measure_touched_peak = true;
    session_options.executor.backend = g_backend;
    util::StatusOr<serve::InferenceSession> session =
        serve::InferenceSession::Create(warm[i].plan, session_options);
    if (!session.ok()) {
      std::fprintf(stderr, "session open failed: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    const std::vector<runtime::Tensor> inputs =
        serenity::testing::RandomInputsFor(
            session.value().graph(), 7000 + static_cast<std::uint64_t>(i));
    util::Stopwatch infer_clock;
    session.value().Run(inputs);
    const bool certified = session.value().executor().touched_peak_bytes() ==
                           session.value().arena_bytes();
    std::printf("  %-28s planned %8.1f KB  touched %8.1f KB  %-8s "
                "(%.4f s/infer)\n",
                requests[i].name().c_str(),
                static_cast<double>(session.value().arena_bytes()) / 1024.0,
                static_cast<double>(
                    session.value().executor().touched_peak_bytes()) /
                    1024.0,
                certified ? "certified" : "DIVERGED",
                infer_clock.ElapsedSeconds());
    if (!certified) return 1;
  }
  return 0;
}
