// InferenceSession: graph -> served plan (cold or warm) -> real inference
// out of a per-session arena.
#include "serve/inference_session.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "models/swiftnet.h"
#include "runtime/executor.h"
#include "testing/fault_injection.h"
#include "testing/runtime_inputs.h"
#include "testing/sink_compare.h"
#include "util/rng.h"

namespace serenity::serve {
namespace {

TEST(InferenceSession, ColdOpenRunsRealInference) {
  SchedulerService service;
  const graph::Graph g = models::MakeSwiftNetCellA();
  InferenceSession session = InferenceSession::Open(service, g);
  EXPECT_EQ(session.arena_bytes(), session.plan().plan.arena.arena_bytes);

  const std::vector<runtime::Tensor> inputs =
      serenity::testing::RandomInputsFor(session.graph(), 5);
  session.Run(inputs);
  EXPECT_EQ(session.inferences(), 1u);

  // The session's outputs are the reference executor's outputs, bit for
  // bit, on the scheduled graph under the served schedule.
  runtime::ReferenceExecutor reference(session.graph());
  reference.Run(inputs, session.plan().plan.schedule);
  EXPECT_EQ(serenity::testing::DescribeSinkDivergence(
                session.executor().SinkValues(), reference.SinkValues()),
            "");
}

TEST(InferenceSession, RunBatchCountsInferences) {
  SchedulerService service;
  const graph::Graph g = models::MakeSwiftNetCellB();
  InferenceSession session = InferenceSession::Open(service, g);
  std::vector<std::vector<runtime::Tensor>> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(
        serenity::testing::RandomInputsFor(session.graph(), 100 + i));
  }
  session.RunBatch(batch);
  EXPECT_EQ(session.inferences(), 4u);
}

TEST(InferenceSession, WarmRestartServesIdenticalNumbers) {
  const graph::Graph g = models::MakeSwiftNetCellC();
  const std::string cache_path =
      ::testing::TempDir() + "/inference_session_warm.cache";

  std::vector<float> cold_sink;
  {
    SchedulerService service;
    InferenceSession session = InferenceSession::Open(service, g);
    session.Run(serenity::testing::RandomInputsFor(session.graph(), 77));
    cold_sink = session.executor().SinkValues().front().ToVector();
    ASSERT_TRUE(service.cache().SaveToFile(cache_path).ok());
  }

  // A fresh service process: the plan loads from disk (validated by
  // PlanFromText) and the session must serve without planning anything.
  SchedulerService restarted;
  const util::StatusOr<CacheLoadReport> report =
      restarted.cache().LoadFromFile(cache_path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GT(report.value().entries_loaded, 0);
  const ServeResult r = restarted.Schedule(g);
  ASSERT_NE(r.plan, nullptr);
  EXPECT_TRUE(r.cache_hit);
  InferenceSession warm(r.plan);
  warm.Run(serenity::testing::RandomInputsFor(warm.graph(), 77));
  EXPECT_EQ(warm.executor().SinkValues().front().ToVector(), cold_sink);
  std::remove(cache_path.c_str());
}

TEST(InferenceSession, MeasuredPeakMatchesPlannedArena) {
  SchedulerService service;
  const graph::Graph g = models::MakeSwiftNet();
  InferenceSessionOptions options;
  options.executor.measure_touched_peak = true;
  InferenceSession session = InferenceSession::Open(service, g, options);
  session.Run(serenity::testing::RandomInputsFor(session.graph(), 21));
  EXPECT_EQ(session.executor().touched_peak_bytes(), session.arena_bytes());
}

TEST(InferenceSessionDeath, RefusesNullPlan) {
  EXPECT_DEATH(InferenceSession(nullptr), "without a plan");
}

TEST(InferenceSession, CreateRejectsNullPlanWithStatus) {
  const util::StatusOr<InferenceSession> session =
      InferenceSession::Create(nullptr);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(InferenceSession, TryOpenPropagatesPlanningStatus) {
  SchedulerService service;
  const graph::Graph g = models::MakeSwiftNetCellA();
  RequestOptions rushed;
  rushed.deadline_seconds = 0.0;
  rushed.allow_degraded = false;
  const util::StatusOr<InferenceSession> denied =
      InferenceSession::TryOpen(service, g, rushed);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), util::StatusCode::kDeadlineExceeded);

  util::StatusOr<InferenceSession> session =
      InferenceSession::TryOpen(service, g);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  session.value().Run(
      serenity::testing::RandomInputsFor(session.value().graph(), 5));
  EXPECT_EQ(session.value().inferences(), 1u);
}

TEST(InferenceSession, InjectedArenaFailureIsResourceExhausted) {
  SchedulerService service;
  const graph::Graph g = models::MakeSwiftNetCellB();
  const ServeResult r = service.Schedule(g);
  ASSERT_NE(r.plan, nullptr) << r.status.ToString();

  {
    serenity::testing::ScopedFault fault(
        serenity::testing::FaultPoint::kArenaAllocation);
    const util::StatusOr<InferenceSession> session =
        InferenceSession::Create(r.plan);
    ASSERT_FALSE(session.ok());
    EXPECT_EQ(session.status().code(),
              util::StatusCode::kResourceExhausted);
  }

  // One-shot fault: the retry succeeds and serves real numbers.
  util::StatusOr<InferenceSession> retry = InferenceSession::Create(r.plan);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  retry.value().Run(
      serenity::testing::RandomInputsFor(retry.value().graph(), 6));
  EXPECT_EQ(retry.value().inferences(), 1u);
}

}  // namespace
}  // namespace serenity::serve
