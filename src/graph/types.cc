#include "graph/types.h"

#include <sstream>

namespace serenity::graph {

std::size_t SizeOf(DataType dtype) {
  switch (dtype) {
    case DataType::kFloat32:
      return 4;
    case DataType::kFloat16:
      return 2;
    case DataType::kInt8:
    case DataType::kUInt8:
      return 1;
    case DataType::kInt32:
      return 4;
  }
  SERENITY_CHECK(false) << "unknown dtype";
  return 0;
}

const char* ToString(DataType dtype) {
  switch (dtype) {
    case DataType::kFloat32:
      return "float32";
    case DataType::kFloat16:
      return "float16";
    case DataType::kInt8:
      return "int8";
    case DataType::kUInt8:
      return "uint8";
    case DataType::kInt32:
      return "int32";
  }
  return "unknown";
}

std::string TensorShape::ToString() const {
  std::ostringstream os;
  os << "[" << n << "," << h << "," << w << "," << c << "]";
  return os.str();
}

const char* ToString(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "input";
    case OpKind::kConv2d:
      return "conv2d";
    case OpKind::kDepthwiseConv2d:
      return "depthwise_conv2d";
    case OpKind::kConcat:
      return "concat";
    case OpKind::kAdd:
      return "add";
    case OpKind::kMul:
      return "mul";
    case OpKind::kRelu:
      return "relu";
    case OpKind::kBatchNorm:
      return "batch_norm";
    case OpKind::kMaxPool2d:
      return "max_pool2d";
    case OpKind::kAvgPool2d:
      return "avg_pool2d";
    case OpKind::kGlobalAvgPool2d:
      return "global_avg_pool2d";
    case OpKind::kDense:
      return "dense";
    case OpKind::kIdentity:
      return "identity";
    case OpKind::kFusedCell:
      return "fused_cell";
    case OpKind::kPartialConv2d:
      return "partial_conv2d";
    case OpKind::kPartialConv2dAccum:
      return "partial_conv2d_accum";
    case OpKind::kPartialDepthwiseConv2d:
      return "partial_depthwise_conv2d";
    case OpKind::kConcatView:
      return "concat_view";
  }
  return "unknown";
}

bool IsConvLike(OpKind kind) {
  switch (kind) {
    case OpKind::kConv2d:
    case OpKind::kDepthwiseConv2d:
    case OpKind::kFusedCell:
    case OpKind::kPartialConv2d:
    case OpKind::kPartialConv2dAccum:
    case OpKind::kPartialDepthwiseConv2d:
    case OpKind::kMaxPool2d:
    case OpKind::kAvgPool2d:
      return true;
    default:
      return false;
  }
}

bool MayAliasBuffer(OpKind kind) {
  switch (kind) {
    case OpKind::kPartialConv2dAccum:
    case OpKind::kPartialDepthwiseConv2d:
    case OpKind::kConcatView:
      return true;
    default:
      return false;
  }
}

int ConvOutputExtent(int input, int kernel, int stride, int dilation,
                     Padding padding) {
  SERENITY_CHECK_GT(input, 0);
  SERENITY_CHECK_GT(kernel, 0);
  SERENITY_CHECK_GT(stride, 0);
  SERENITY_CHECK_GT(dilation, 0);
  const int effective_kernel = dilation * (kernel - 1) + 1;
  if (padding == Padding::kSame) {
    return (input + stride - 1) / stride;
  }
  SERENITY_CHECK_GE(input, effective_kernel)
      << "valid padding with kernel larger than input";
  return (input - effective_kernel) / stride + 1;
}

TensorShape InferConv2dShape(const TensorShape& in, const ConvAttrs& attrs,
                             int out_channels) {
  SERENITY_CHECK_GT(out_channels, 0);
  return TensorShape{
      in.n,
      ConvOutputExtent(in.h, attrs.kernel_h, attrs.stride, attrs.dilation,
                       attrs.padding),
      ConvOutputExtent(in.w, attrs.kernel_w, attrs.stride, attrs.dilation,
                       attrs.padding),
      out_channels};
}

TensorShape InferDepthwiseShape(const TensorShape& in,
                                const ConvAttrs& attrs) {
  return InferConv2dShape(in, attrs, in.c);
}

TensorShape InferPoolShape(const TensorShape& in, const ConvAttrs& attrs) {
  return InferConv2dShape(in, attrs, in.c);
}

}  // namespace serenity::graph
