// Property suite for the versioned, checksummed plan text format: over
// 1000 random cells, plan -> text -> plan is bit-identical in every field;
// malformed, truncated or bit-flipped inputs yield a clean Status error —
// never an abort, never a silently accepted plan.
#include <gtest/gtest.h>

#include "models/random_cell.h"
#include "sched/baselines.h"
#include "serialize/plan.h"
#include "util/rng.h"

namespace serenity::serialize {
namespace {

models::RandomCellParams ParamsForSeed(int seed) {
  models::RandomCellParams p;
  p.seed = static_cast<std::uint64_t>(seed) * 2654435761u + 977;
  p.num_intermediates = 4 + seed % 7;
  p.concat_branches = (seed % 3 == 0) ? 0 : 3 + seed % 3;
  p.depthwise_block = seed % 2 == 0;
  p.num_cells = 1 + seed % 3;
  p.spatial = 4;
  p.channels = 4 + seed % 5;
  p.name = "roundtrip_net";
  return p;
}

void ExpectBitIdentical(const ExecutionPlan& a, const ExecutionPlan& b) {
  EXPECT_EQ(a.graph_name, b.graph_name);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.arena.arena_bytes, b.arena.arena_bytes);
  EXPECT_EQ(a.arena.highwater_at_step, b.arena.highwater_at_step);
  ASSERT_EQ(a.arena.placements.size(), b.arena.placements.size());
  for (std::size_t i = 0; i < a.arena.placements.size(); ++i) {
    const alloc::BufferPlacement& pa = a.arena.placements[i];
    const alloc::BufferPlacement& pb = b.arena.placements[i];
    EXPECT_EQ(pa.buffer, pb.buffer) << i;
    EXPECT_EQ(pa.offset, pb.offset) << i;
    EXPECT_EQ(pa.size, pb.size) << i;
    EXPECT_EQ(pa.first_step, pb.first_step) << i;
    EXPECT_EQ(pa.last_step, pb.last_step) << i;
  }
}

TEST(PlanRoundTripProperty, ThousandRandomCellsBitIdentical) {
  for (int seed = 0; seed < 1000; ++seed) {
    const graph::Graph g =
        models::MakeRandomCellNetwork(ParamsForSeed(seed));
    // Alternate schedule flavors so placements exercise different
    // lifetime/fragmentation shapes.
    const sched::Schedule s = (seed % 2 == 0)
                                  ? sched::TfLiteOrderSchedule(g)
                                  : sched::GreedyMemorySchedule(g);
    const ExecutionPlan plan = MakePlan(g, s);
    const util::StatusOr<ExecutionPlan> back =
        PlanFromText(PlanToText(plan), g);
    ASSERT_TRUE(back.ok()) << "seed " << seed << ": "
                           << back.status().ToString();
    ExpectBitIdentical(plan, back.value());
    // And the round trip is a fixed point of the text form too.
    ASSERT_EQ(PlanToText(back.value()), PlanToText(plan)) << "seed " << seed;
  }
}

// The corruption property: over 1000 serialized plans, a seeded single-bit
// flip or a mid-line truncation must always yield a clean Status error —
// the checksum (or, for tail corruption the CRC cannot distinguish from a
// record boundary, the structural validators) rejects every mutation
// before a half plan can load.
TEST(PlanRoundTripProperty, ThousandSeededMutationsAllRejected) {
  for (int seed = 0; seed < 1000; ++seed) {
    const graph::Graph g =
        models::MakeRandomCellNetwork(ParamsForSeed(seed));
    const std::string text =
        PlanToText(MakePlan(g, sched::TfLiteOrderSchedule(g)));
    util::Rng rng(static_cast<std::uint64_t>(seed) * 40'503 + 13);
    std::string mutated = text;
    if (seed % 2 == 0) {
      // Single-bit flip anywhere in the text.
      const std::size_t bit =
          static_cast<std::size_t>(rng.NextInt(
              0, static_cast<int>(text.size() * 8) - 1));
      mutated[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(mutated[bit / 8]) ^ (1u << (bit % 8)));
    } else {
      // Truncate mid-line: cut at a byte that is not a record boundary.
      const std::size_t cut = 1 + static_cast<std::size_t>(rng.NextInt(
                                      0, static_cast<int>(text.size()) - 2));
      mutated.resize(cut);
    }
    if (mutated == text) continue;  // flip landed on an ignored byte? never.
    const util::StatusOr<ExecutionPlan> parsed = PlanFromText(mutated, g);
    ASSERT_FALSE(parsed.ok())
        << "seed " << seed << ": mutation silently accepted";
    ASSERT_FALSE(parsed.status().message().empty()) << "seed " << seed;
  }
}

// Truncation anywhere before the last record must be rejected cleanly with
// a diagnostic, never load a half plan.
TEST(PlanRoundTripProperty, TruncatedInputsRejectedCleanly) {
  const graph::Graph g = models::MakeRandomCellNetwork(ParamsForSeed(1));
  const std::string text =
      PlanToText(MakePlan(g, sched::TfLiteOrderSchedule(g)));
  const std::size_t last_record = text.rfind("\nplace");
  ASSERT_NE(last_record, std::string::npos);
  for (const double fraction : {0.05, 0.2, 0.4, 0.6, 0.8, 0.97}) {
    const std::size_t cut = std::min(
        last_record,
        static_cast<std::size_t>(static_cast<double>(text.size()) *
                                 fraction));
    const util::StatusOr<ExecutionPlan> parsed =
        PlanFromText(text.substr(0, cut), g);
    ASSERT_FALSE(parsed.ok()) << "cut at " << cut << " of " << text.size();
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kDataLoss)
        << parsed.status().ToString();
  }
}

TEST(PlanRoundTripProperty, GarbageRecordsRejected) {
  const graph::Graph g = models::MakeRandomCellNetwork(ParamsForSeed(2));
  const std::string text =
      PlanToText(MakePlan(g, sched::TfLiteOrderSchedule(g)));

  EXPECT_FALSE(PlanFromText("not a plan at all", g).ok());

  // Restamp the checksum after each structural tamper so the structural
  // validator — not the integrity gate — is what rejects it.
  const std::size_t crc_at = text.rfind("\ncrc ");
  ASSERT_NE(crc_at, std::string::npos);
  const std::string body = text.substr(0, crc_at + 1);

  const util::StatusOr<ExecutionPlan> unknown_record =
      PlanFromText(AppendPlanChecksum(body + "gibberish 1 2 3\n"), g);
  ASSERT_FALSE(unknown_record.ok());
  EXPECT_NE(unknown_record.status().message().find("unknown plan record"),
            std::string::npos);

  std::string bad_number = body;
  const std::size_t at = bad_number.find("\nplace ");
  ASSERT_NE(at, std::string::npos);
  bad_number.replace(at + 7, 1, "x");
  const util::StatusOr<ExecutionPlan> malformed =
      PlanFromText(AppendPlanChecksum(bad_number), g);
  ASSERT_FALSE(malformed.ok());
  EXPECT_NE(malformed.status().message().find("malformed place record"),
            std::string::npos);
}

}  // namespace
}  // namespace serenity::serialize
