// Tests for the flat-arena state store (core/state_store.h) and the
// refactored schedulers running on it: unit coverage of StateLevel /
// SignatureHasher / ExpansionTables, plus the randomized property suite
// required by the refactor — bit-identical peaks and valid topological
// orders versus the brute-force oracle on random DAGs, across the
// kNoSolution / kTimeout paths and across thread counts.
#include "core/state_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/dp_scheduler.h"
#include "graph/analysis.h"
#include "graph/builder.h"
#include "sched/beam.h"
#include "sched/brute_force.h"
#include "sched/schedule.h"
#include "testing/random_graphs.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace serenity::core {
namespace {

// ---------------------------------------------------------------- StateLevel

TEST(SignatureHasher, IsDeterministicAndIncremental) {
  const SignatureHasher a(64);
  const SignatureHasher b(64);
  for (std::size_t u = 0; u < 64; ++u) EXPECT_EQ(a.key(u), b.key(u));
  // hash({3, 7}) built in either insertion order is identical.
  const std::uint64_t h37 =
      SignatureHasher::kEmptyHash ^ a.key(3) ^ a.key(7);
  const std::uint64_t h73 =
      SignatureHasher::kEmptyHash ^ a.key(7) ^ a.key(3);
  EXPECT_EQ(h37, h73);
  EXPECT_NE(h37, SignatureHasher::kEmptyHash);
}

TEST(StateLevel, InsertDedupAndRelax) {
  StateLevel level;
  level.Init(/*words_per_state=*/2, /*expected_states=*/4);
  const std::uint64_t sig_a[2] = {0b101, 0};
  const std::uint64_t sig_b[2] = {0b011, 0};
  EXPECT_TRUE(level.InsertOrRelax(sig_a, 111, 10, 50, 9, 0, 2));
  EXPECT_TRUE(level.InsertOrRelax(sig_b, 222, 20, 40, 9, 1, 1));
  // Duplicate signature with a worse peak: ignored.
  EXPECT_FALSE(level.InsertOrRelax(sig_a, 111, 10, 60, 9, 3, 0));
  // Duplicate with a better peak: relaxes peak and back-pointer.
  EXPECT_FALSE(level.InsertOrRelax(sig_a, 111, 10, 30, 9, 4, 0));
  level.Seal();
  ASSERT_EQ(level.size(), 2u);
  EXPECT_EQ(level.footprint(0), 10);
  EXPECT_EQ(level.peak(0), 30);
  EXPECT_EQ(level.recon(0).prev_index, 4);
  EXPECT_EQ(level.recon(0).last_node, 0);
  EXPECT_EQ(level.peak(1), 40);
  EXPECT_TRUE(
      util::SpanEqual(level.signature(0), sig_a, level.words_per_state()));
  EXPECT_TRUE(
      util::SpanEqual(level.signature(1), sig_b, level.words_per_state()));
}

TEST(StateLevel, GrowsPastInitialCapacityWithoutLosingStates) {
  StateLevel level;
  level.Init(/*words_per_state=*/1, /*expected_states=*/1);
  const SignatureHasher hasher(64);
  for (std::size_t u = 0; u < 64; ++u) {
    const std::uint64_t sig[1] = {std::uint64_t{1} << u};
    EXPECT_TRUE(level.InsertOrRelax(sig, hasher.key(u),
                                    static_cast<std::int64_t>(u), 0, 0, -1,
                                    static_cast<std::int32_t>(u)));
  }
  level.Seal();
  ASSERT_EQ(level.size(), 64u);
  // Every state survived the rehashes with its payload intact.
  std::vector<bool> seen(64, false);
  for (std::size_t i = 0; i < 64; ++i) {
    const std::size_t u =
        static_cast<std::size_t>(level.recon(i).last_node);
    EXPECT_EQ(level.signature(i)[0], std::uint64_t{1} << u);
    EXPECT_EQ(level.footprint(i), static_cast<std::int64_t>(u));
    seen[u] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(StateLevel, ShardedSealConcatenatesDeterministically) {
  // Build the same level twice with 4 shards; contents and ordering must
  // match exactly (the determinism Seal() promises for a fixed shard count).
  const SignatureHasher hasher(40);
  auto build = [&hasher]() {
    StateLevel level;
    level.Init(/*words_per_state=*/1, /*expected_states=*/8,
               /*num_shards=*/4);
    for (std::size_t u = 0; u < 40; ++u) {
      const std::uint64_t sig[1] = {std::uint64_t{1} << u};
      level.InsertOrRelax(sig, hasher.key(u), 0, 0, 0, -1,
                          static_cast<std::int32_t>(u));
    }
    level.Seal();
    return level;
  };
  StateLevel a = build();
  StateLevel b = build();
  ASSERT_EQ(a.size(), 40u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.signature(i)[0], b.signature(i)[0]);
    EXPECT_EQ(a.recon(i).last_node, b.recon(i).last_node);
  }
}

TEST(StateLevel, SelectCompactsInGivenOrder) {
  StateLevel level;
  level.Init(1, 4);
  const SignatureHasher hasher(8);
  for (std::size_t u = 0; u < 4; ++u) {
    const std::uint64_t sig[1] = {std::uint64_t{1} << u};
    level.InsertOrRelax(sig, hasher.key(u), static_cast<std::int64_t>(u),
                        static_cast<std::int64_t>(10 + u), 0, -1,
                        static_cast<std::int32_t>(u));
  }
  level.Seal();
  const StateLevel pruned = level.Select({3, 1});
  ASSERT_EQ(pruned.size(), 2u);
  EXPECT_EQ(pruned.recon(0).last_node, 3);
  EXPECT_EQ(pruned.peak(0), 13);
  EXPECT_EQ(pruned.recon(1).last_node, 1);
  EXPECT_EQ(pruned.hash(1), hasher.key(1));
}

TEST(StateLevel, TakeReconAndReleaseReturnsAllRecords) {
  StateLevel level;
  level.Init(1, 4);
  const std::uint64_t s0[1] = {1};
  const std::uint64_t s1[1] = {2};
  level.InsertOrRelax(s0, 11, 0, 0, 0, 7, 0);
  level.InsertOrRelax(s1, 22, 0, 0, 0, 8, 1);
  level.Seal();
  const std::vector<ReconRecord> recon = level.TakeReconAndRelease();
  ASSERT_EQ(recon.size(), 2u);
  EXPECT_EQ(recon[0].prev_index, 7);
  EXPECT_EQ(recon[1].prev_index, 8);
}

// ------------------------------------------------------------- bounded mode

TEST(StateLevelBounded, KeepsTopWidthWithDedupRelaxAndEviction) {
  StateLevel level;
  level.InitBounded(/*words_per_state=*/1, /*width=*/2);
  const std::uint64_t a[1] = {0b001};
  const std::uint64_t b[1] = {0b010};
  const std::uint64_t c[1] = {0b100};
  EXPECT_TRUE(level.InsertBounded(a, 11, 10, 50, 5, 0, 0));
  EXPECT_TRUE(level.InsertBounded(b, 22, 10, 40, 5, 1, 1));
  EXPECT_EQ(level.size(), 2u);
  // Worse than the current worst (peak 50): rejected outright.
  EXPECT_FALSE(level.InsertBounded(c, 33, 10, 60, 5, 2, 2));
  EXPECT_EQ(level.size(), 2u);
  // Better than the worst: evicts state a (peak 50).
  EXPECT_TRUE(level.InsertBounded(c, 33, 10, 45, 5, 2, 2));
  EXPECT_EQ(level.size(), 2u);
  // Duplicate of b with a worse peak: relax ignores it...
  EXPECT_FALSE(level.InsertBounded(b, 22, 10, 41, 5, 3, 3));
  // ...a better peak relaxes in place (no new state).
  EXPECT_FALSE(level.InsertBounded(b, 22, 10, 39, 5, 4, 4));
  // The previously evicted signature re-arrives with a better peak and
  // re-enters with exactly its intrinsic rank, displacing c.
  EXPECT_TRUE(level.InsertBounded(a, 11, 10, 30, 5, 6, 6));
  level.SealBounded();
  ASSERT_EQ(level.size(), 2u);
  // Best-first intrinsic order: a (30) then b (39); c (45) was displaced.
  EXPECT_EQ(level.peak(0), 30);
  EXPECT_EQ(level.recon(0).prev_index, 6);
  EXPECT_EQ(level.peak(1), 39);
  EXPECT_EQ(level.recon(1).prev_index, 4);
  EXPECT_TRUE(util::SpanEqual(level.signature(0), a, 1));
  EXPECT_TRUE(util::SpanEqual(level.signature(1), b, 1));
}

TEST(StateLevelBounded, EqualPeakTieUsesIntrinsicTieKey) {
  StateLevel level;
  level.InitBounded(1, 4);
  const std::uint64_t s[1] = {0b11};
  EXPECT_TRUE(level.InsertBounded(s, 7, 10, 30, /*tie_key=*/9, 1, 1));
  // Equal peak, lower tie key: back-pointer relaxes.
  EXPECT_FALSE(level.InsertBounded(s, 7, 10, 30, /*tie_key=*/3, 2, 2));
  // Equal peak, higher tie key: ignored.
  EXPECT_FALSE(level.InsertBounded(s, 7, 10, 30, /*tie_key=*/5, 4, 4));
  level.SealBounded();
  ASSERT_EQ(level.size(), 1u);
  EXPECT_EQ(level.recon(0).prev_index, 2);
}

TEST(StateLevelBounded, RejectedInsertsAcrossTombstonesKeepTableHealthy) {
  // Regression: a rejected insert whose probe path crosses a tombstone must
  // NOT consume the tombstone's accounting (it writes nothing). With the
  // bug, repeated rejects underflowed tombstones_ and eventually wedged the
  // probe loop; here we hammer the pattern far past the table's load
  // factor and then verify the level still dedups, evicts and seals
  // correctly.
  StateLevel level;
  level.InitBounded(/*words_per_state=*/1, /*width=*/1);
  const std::uint64_t a[1] = {0b01};
  const std::uint64_t b[1] = {0b10};
  // Same hash: probe chains share cells, so evicting `a` leaves a
  // tombstone at the head of the chain that every later probe crosses.
  EXPECT_TRUE(level.InsertBounded(a, 5, 1, 100, 0, 0, 0));
  EXPECT_TRUE(level.InsertBounded(b, 5, 2, 50, 0, 1, 1));  // evicts a
  EXPECT_EQ(level.size(), 1u);
  for (int i = 0; i < 1000; ++i) {
    // Worse than the survivor: rejected after probing across the tombstone.
    EXPECT_FALSE(level.InsertBounded(a, 5, 1, 100 + i, 0, 2, 2));
  }
  // The table must still accept and place a better state correctly.
  EXPECT_TRUE(level.InsertBounded(a, 5, 1, 10, 0, 3, 3));  // evicts b
  EXPECT_FALSE(level.InsertBounded(a, 5, 1, 9, 0, 4, 4));  // relaxes a
  level.SealBounded();
  ASSERT_EQ(level.size(), 1u);
  EXPECT_EQ(level.peak(0), 9);
  EXPECT_EQ(level.recon(0).prev_index, 4);
  EXPECT_TRUE(util::SpanEqual(level.signature(0), a, 1));
}

TEST(StateLevelBounded, MatchesInsertAllPlusSelectOnRandomStreams) {
  // Streaming top-width insert == batch dedup + Select of the width best
  // (intrinsic order), on adversarial random streams with many duplicates
  // and peak ties.
  util::Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t width = 1 + static_cast<std::size_t>(trial % 7);
    const int inserts = 20 + trial % 60;
    const SignatureHasher hasher(16);
    StateLevel bounded;
    bounded.InitBounded(1, width);
    StateLevel batch;
    batch.Init(1, 8);
    for (int i = 0; i < inserts; ++i) {
      // Few distinct signatures and tiny peak range: ties and duplicate
      // re-arrivals (including after eviction) are the common case.
      const std::uint64_t sig[1] = {1ull << rng.NextInt(0, 7)};
      const std::uint64_t hash =
          hasher.key(static_cast<std::size_t>(__builtin_ctzll(sig[0])));
      const std::int64_t footprint =
          static_cast<std::int64_t>(sig[0]);  // function of the signature
      const std::int64_t peak = footprint + 64 * rng.NextInt(0, 3);
      const std::uint64_t tie =
          static_cast<std::uint64_t>(rng.NextInt(0, 1023));
      const std::int32_t prev = i;
      bounded.InsertBounded(sig, hash, footprint, peak, tie, prev, 0);
      batch.InsertOrRelax(sig, hash, footprint, peak, tie, prev, 0);
    }
    bounded.SealBounded();
    batch.Seal();
    // Batch path: select the width best by the intrinsic order, best first.
    std::vector<std::int32_t> keep(batch.size());
    std::iota(keep.begin(), keep.end(), 0);
    std::sort(keep.begin(), keep.end(), [&batch](std::int32_t a,
                                                 std::int32_t b) {
      const std::size_t ia = static_cast<std::size_t>(a);
      const std::size_t ib = static_cast<std::size_t>(b);
      if (batch.peak(ia) != batch.peak(ib)) {
        return batch.peak(ia) < batch.peak(ib);
      }
      if (batch.footprint(ia) != batch.footprint(ib)) {
        return batch.footprint(ia) < batch.footprint(ib);
      }
      if (batch.hash(ia) != batch.hash(ib)) {
        return batch.hash(ia) < batch.hash(ib);
      }
      return batch.signature(ia)[0] < batch.signature(ib)[0];
    });
    if (keep.size() > width) keep.resize(width);
    const StateLevel expected = batch.Select(keep);
    ASSERT_EQ(bounded.size(), expected.size()) << "trial " << trial;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(bounded.signature(i)[0], expected.signature(i)[0])
          << "trial " << trial << " state " << i;
      EXPECT_EQ(bounded.peak(i), expected.peak(i)) << trial << " " << i;
      EXPECT_EQ(bounded.footprint(i), expected.footprint(i));
      EXPECT_EQ(bounded.hash(i), expected.hash(i));
      EXPECT_EQ(bounded.recon(i).prev_index, expected.recon(i).prev_index)
          << "trial " << trial << " state " << i;
    }
    if (::testing::Test::HasFailure()) return;
  }
}

// ----------------------------------------------------------- ExpansionTables

TEST(ExpansionTables, FrontierMatchesDirectComputation) {
  util::Rng rng(31);
  testing::RandomDagOptions opts;
  opts.num_ops = 20;
  const graph::Graph g = testing::RandomDag(rng, opts, "frontier");
  const graph::BufferUseTable table = graph::BufferUseTable::Build(g);
  const graph::AdjacencyBitsets adjacency = graph::BuildAdjacency(g);
  const ExpansionTables tables(g, table, adjacency);
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());

  // Random schedulable prefixes: schedule a random ready node at a time and
  // cross-check the frontier after every step.
  util::Bitset64 scheduled(n);
  std::vector<std::int32_t> frontier;
  for (std::size_t step = 0; step <= n; ++step) {
    frontier.clear();
    tables.AppendFrontier(scheduled.words(), &frontier);
    std::vector<std::int32_t> expected;
    for (std::size_t u = 0; u < n; ++u) {
      if (!scheduled.Test(u) && adjacency.preds[u].IsSubsetOf(scheduled)) {
        expected.push_back(static_cast<std::int32_t>(u));
      }
    }
    ASSERT_EQ(frontier, expected) << "after " << step << " steps";
    if (step == n) break;
    ASSERT_FALSE(frontier.empty());
    scheduled.Set(static_cast<std::size_t>(frontier[static_cast<std::size_t>(
        rng.NextInt(0, static_cast<int>(frontier.size()) - 1))]));
  }
  EXPECT_EQ(scheduled.Count(), n);
}

TEST(ExpansionTables, ApplyMatchesScheduleEvaluator) {
  // Walking any topological order through Apply() must reproduce the
  // step-by-step footprints of the reference evaluator.
  util::Rng rng(57);
  testing::RandomDagOptions opts;
  opts.num_ops = 14;
  const graph::Graph g = testing::RandomDag(rng, opts, "apply");
  const graph::BufferUseTable table = graph::BufferUseTable::Build(g);
  const ExpansionTables tables(g, table, graph::BuildAdjacency(g));
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());

  const core::DpResult dp = ScheduleDp(g);
  ASSERT_EQ(dp.status, DpStatus::kSolution);
  const sched::FootprintResult eval = sched::EvaluateFootprint(g, dp.schedule);

  util::Bitset64 scheduled(n);
  std::int64_t footprint = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t u = static_cast<std::int32_t>(dp.schedule[i]);
    const ExpansionTables::Transition t = tables.Apply(
        scheduled.words(), u, footprint, core::kNoBudget);
    EXPECT_EQ(t.step_peak, eval.peak_at_step[i]) << "step " << i;
    EXPECT_EQ(t.footprint, eval.footprint_after_step[i]) << "step " << i;
    footprint = t.footprint;
    scheduled.Set(static_cast<std::size_t>(u));
  }
}

// ------------------------------------- randomized end-to-end property suite

struct PropertyCase {
  int seed;
  int num_threads;
};

class StateStoreProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(StateStoreProperty, DpMatchesOracleAcrossThreadCounts) {
  const PropertyCase param = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(param.seed) * 6271 + 11);
  testing::RandomDagOptions opts;
  opts.num_ops = 8 + param.seed % 6;  // up to 14 ops: oracle-tractable
  const graph::Graph g = testing::RandomDag(
      rng, opts, "prop" + std::to_string(param.seed));
  const sched::BruteForceResult oracle = sched::BruteForceOptimalSchedule(g);

  DpOptions options;
  options.num_threads = param.num_threads;
  const DpResult dp = ScheduleDp(g, options);
  ASSERT_EQ(dp.status, DpStatus::kSolution);
  EXPECT_TRUE(sched::IsTopologicalOrder(g, dp.schedule));
  // Bit-identical peaks versus the exhaustive oracle, and the returned
  // schedule really achieves the claimed peak.
  EXPECT_EQ(dp.peak_bytes, oracle.peak_bytes) << "seed " << param.seed;
  EXPECT_EQ(dp.peak_bytes, sched::PeakFootprint(g, dp.schedule));

  // kNoSolution path: one byte under the optimum prunes every schedule.
  DpOptions tight = options;
  tight.budget_bytes = dp.peak_bytes - 1;
  EXPECT_EQ(ScheduleDp(g, tight).status, DpStatus::kNoSolution);

  // Budget exactly at the optimum still finds it.
  DpOptions exact = options;
  exact.budget_bytes = dp.peak_bytes;
  const DpResult bounded = ScheduleDp(g, exact);
  ASSERT_EQ(bounded.status, DpStatus::kSolution);
  EXPECT_EQ(bounded.peak_bytes, oracle.peak_bytes);

  // kTimeout path: a state cap the search must exceed.
  if (dp.states_expanded > 2) {
    DpOptions capped = options;
    capped.max_states = 2;
    EXPECT_EQ(ScheduleDp(g, capped).status, DpStatus::kTimeout);
  }

  // Beam on the same store: always valid; optimal when the beam is wider
  // than every DP level (states_expanded bounds every level's width).
  sched::BeamOptions beam_options;
  beam_options.width = static_cast<int>(dp.states_expanded) + 1;
  const sched::BeamResult beam = sched::ScheduleBeam(g, beam_options);
  EXPECT_TRUE(sched::IsTopologicalOrder(g, beam.schedule));
  EXPECT_EQ(beam.peak_bytes, oracle.peak_bytes);
  EXPECT_EQ(beam.peak_bytes, sched::PeakFootprint(g, beam.schedule));
}

std::vector<PropertyCase> AllPropertyCases() {
  std::vector<PropertyCase> cases;
  for (int seed = 0; seed < 25; ++seed) {
    cases.push_back(PropertyCase{seed, 1});
    cases.push_back(PropertyCase{seed, 4});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomDags, StateStoreProperty, ::testing::ValuesIn(AllPropertyCases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_threads" +
             std::to_string(info.param.num_threads);
    });

TEST(StateStoreParallel, SingleAndMultiThreadedAgreeOnModels) {
  // Larger-than-oracle graphs: single- and multi-threaded runs must report
  // bit-identical optimal peaks, state/transition counts AND schedules (the
  // intrinsic relax tie-break makes winners shard-count invariant).
  util::Rng rng(97);
  testing::RandomDagOptions opts;
  opts.num_ops = 24;
  const graph::Graph g = testing::RandomDag(rng, opts, "mt_agree");
  const DpResult one = ScheduleDp(g);
  DpOptions mt;
  mt.num_threads = 4;
  const DpResult four = ScheduleDp(g, mt);
  ASSERT_EQ(one.status, DpStatus::kSolution);
  ASSERT_EQ(four.status, DpStatus::kSolution);
  EXPECT_EQ(one.peak_bytes, four.peak_bytes);
  EXPECT_EQ(one.states_expanded, four.states_expanded);
  EXPECT_EQ(one.transitions, four.transitions);
  EXPECT_EQ(one.schedule, four.schedule);
  EXPECT_TRUE(sched::IsTopologicalOrder(g, four.schedule));
  EXPECT_EQ(four.peak_bytes, sched::PeakFootprint(g, four.schedule));
}

TEST(StateStoreParallel, AdaptiveParallelismMatchesSequential) {
  // Adaptive mode with a threshold of 1 escalates every level to
  // hardware_concurrency threads (on a multi-core box; on one core it stays
  // sequential) — results must be identical either way.
  util::Rng rng(131);
  testing::RandomDagOptions opts;
  opts.num_ops = 20;
  const graph::Graph g = testing::RandomDag(rng, opts, "adaptive");
  const DpResult plain = ScheduleDp(g);
  DpOptions adaptive;
  adaptive.adaptive_parallelism = true;
  adaptive.parallel_threshold_states = 1;
  const DpResult adapted = ScheduleDp(g, adaptive);
  ASSERT_EQ(plain.status, DpStatus::kSolution);
  ASSERT_EQ(adapted.status, DpStatus::kSolution);
  EXPECT_EQ(plain.peak_bytes, adapted.peak_bytes);
  EXPECT_EQ(plain.states_expanded, adapted.states_expanded);
  EXPECT_EQ(plain.transitions, adapted.transitions);
  EXPECT_EQ(plain.schedule, adapted.schedule);
}

TEST(StateStore, ReserveHintClampsAgainstStateCap) {
  // 2x growth below the cap...
  EXPECT_EQ(NextLevelReserveHint(1000, 4'000'000), 2000u);
  // ...floored at 64...
  EXPECT_EQ(NextLevelReserveHint(3, 4'000'000), 64u);
  // ...and clamped so a huge sealed level cannot pre-allocate an arena
  // beyond the search cap (+1 leaves room for the state tripping it).
  EXPECT_EQ(NextLevelReserveHint(3'000'000, 100'000), 100'001u);
  EXPECT_EQ(NextLevelReserveHint(1u << 20, 1u << 19), (1u << 19) + 1);
  // A sub-64 cap keeps the floor (the arena must hold at least one state).
  EXPECT_EQ(NextLevelReserveHint(1000, 10), 64u);
}

}  // namespace
}  // namespace serenity::core
