// Small statistics helpers shared by the benchmark harnesses: geometric mean
// (the paper's summary statistic in Figures 10/11), percentiles and an
// empirical CDF (Figure 3(b)).
#ifndef SERENITY_UTIL_STATS_H_
#define SERENITY_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace serenity::util {

// Geometric mean of strictly positive values. Returns 0 for empty input.
double GeometricMean(const std::vector<double>& values);

double ArithmeticMean(const std::vector<double>& values);

// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double Percentile(std::vector<double> values, double p);

// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;     // sample value (e.g., peak footprint in bytes)
  double fraction = 0.0;  // fraction of samples <= value, in [0, 1]
};

// Empirical CDF of `samples` evaluated at `num_points` evenly spaced values
// between min and max of the samples (inclusive).
std::vector<CdfPoint> EmpiricalCdf(const std::vector<double>& samples,
                                   int num_points);

// Fraction of samples <= threshold.
double FractionAtOrBelow(const std::vector<double>& samples, double threshold);

}  // namespace serenity::util

#endif  // SERENITY_UTIL_STATS_H_
