#include "serialize/plan.h"

#include <fstream>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace serenity::serialize {

ExecutionPlan MakePlan(const graph::Graph& graph,
                       const sched::Schedule& schedule) {
  SERENITY_CHECK(sched::IsTopologicalOrder(graph, schedule));
  ExecutionPlan plan;
  plan.graph_name = graph.name();
  plan.schedule = schedule;
  plan.arena = alloc::PlanArena(graph, schedule);
  return plan;
}

std::string PlanToText(const ExecutionPlan& plan) {
  std::ostringstream os;
  os << "serenity-plan v" << kPlanFormatVersion << "\n";
  os << "plan " << (plan.graph_name.empty() ? "_" : plan.graph_name) << " "
     << plan.schedule.size() << " " << plan.arena.arena_bytes << "\n";
  os << "order";
  for (const graph::NodeId id : plan.schedule) os << " " << id;
  os << "\n";
  for (const alloc::BufferPlacement& p : plan.arena.placements) {
    os << "place " << p.buffer << " " << p.offset << " " << p.size << " "
       << p.first_step << " " << p.last_step << "\n";
  }
  return os.str();
}

ExecutionPlan PlanFromText(const std::string& text,
                           const graph::Graph& graph) {
  ExecutionPlan plan;
  std::istringstream is(text);
  std::string line;
  std::int64_t declared_arena = -1;
  std::size_t declared_nodes = 0;
  bool saw_version = false;
  bool saw_plan = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (!saw_version) {
      // The very first record must be the format header.
      SERENITY_CHECK(tag == "serenity-plan")
          << "not a serenity plan: missing format header";
      std::string version;
      ls >> version;
      SERENITY_CHECK(!ls.fail()) << "truncated plan format header";
      SERENITY_CHECK(version ==
                     "v" + std::to_string(kPlanFormatVersion))
          << "unsupported plan format version '" << version
          << "' (this build reads v" << kPlanFormatVersion << ")";
      saw_version = true;
    } else if (tag == "plan") {
      SERENITY_CHECK(!saw_plan) << "duplicate plan record";
      ls >> plan.graph_name >> declared_nodes >> declared_arena;
      SERENITY_CHECK(!ls.fail()) << "malformed plan record '" << line << "'";
      SERENITY_CHECK_EQ(declared_nodes,
                        static_cast<std::size_t>(graph.num_nodes()))
          << "plan was compiled for a different graph";
      saw_plan = true;
    } else if (tag == "order") {
      SERENITY_CHECK(saw_plan) << "order record before plan record";
      graph::NodeId id;
      while (ls >> id) plan.schedule.push_back(id);
      SERENITY_CHECK(ls.eof())
          << "malformed order record '" << line << "'";
    } else if (tag == "place") {
      SERENITY_CHECK(saw_plan) << "place record before plan record";
      alloc::BufferPlacement p;
      ls >> p.buffer >> p.offset >> p.size >> p.first_step >> p.last_step;
      SERENITY_CHECK(!ls.fail())
          << "malformed place record '" << line << "'";
      SERENITY_CHECK_GE(p.buffer, 0);
      SERENITY_CHECK_LT(p.buffer, graph.num_buffers());
      SERENITY_CHECK_GE(p.offset, 0);
      SERENITY_CHECK_GT(p.size, 0);
      SERENITY_CHECK_LE(p.size,
                        std::numeric_limits<std::int64_t>::max() - p.offset)
          << "placement of buffer " << p.buffer << " overflows the arena";
      plan.arena.placements.push_back(p);
      plan.arena.arena_bytes =
          std::max(plan.arena.arena_bytes, p.offset + p.size);
    } else {
      SERENITY_CHECK(false) << "unknown plan record '" << tag << "'";
    }
  }
  SERENITY_CHECK(saw_plan) << "truncated plan: no plan record";
  SERENITY_CHECK_EQ(plan.schedule.size(), declared_nodes)
      << "truncated plan: order lists " << plan.schedule.size() << " of "
      << declared_nodes << " nodes";
  SERENITY_CHECK(sched::IsTopologicalOrder(graph, plan.schedule))
      << "plan schedule is not a valid order for this graph";
  SERENITY_CHECK_EQ(plan.arena.arena_bytes, declared_arena)
      << "plan arena size disagrees with its placements";
  // Rebuild the derived high-water trace so loaded plans are fully usable.
  plan.arena.highwater_at_step.assign(plan.schedule.size(), 0);
  for (const alloc::BufferPlacement& p : plan.arena.placements) {
    SERENITY_CHECK_LE(p.first_step, p.last_step)
        << "inverted lifetime for buffer " << p.buffer;
    for (int step = p.first_step; step <= p.last_step; ++step) {
      SERENITY_CHECK_GE(step, 0);
      SERENITY_CHECK_LT(static_cast<std::size_t>(step),
                        plan.schedule.size());
      auto& hw = plan.arena.highwater_at_step[static_cast<std::size_t>(step)];
      hw = std::max(hw, p.offset + p.size);
    }
  }
  // Everything an executor binds against must hold before the plan is
  // handed back — placement completeness and exact sizes, lifetimes
  // covering every producer/consumer step, pairwise non-overlap. A corrupt
  // or truncated cache file must die here, not execute.
  const std::vector<std::string> problems =
      alloc::ValidatePlanForGraph(plan.arena, graph, plan.schedule);
  SERENITY_CHECK(problems.empty())
      << "invalid plan: " << problems.front() << " (" << problems.size()
      << " problem(s))";
  return plan;
}

void SavePlanToFile(const ExecutionPlan& plan, const std::string& path) {
  std::ofstream os(path);
  SERENITY_CHECK(os.good()) << "cannot open '" << path << "' for writing";
  os << PlanToText(plan);
}

ExecutionPlan LoadPlanFromFile(const std::string& path,
                               const graph::Graph& graph) {
  std::ifstream is(path);
  SERENITY_CHECK(is.good()) << "cannot open '" << path << "' for reading";
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return PlanFromText(buffer.str(), graph);
}

}  // namespace serenity::serialize
