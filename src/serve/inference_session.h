// InferenceSession: the last hop of the serve path — from a served plan to
// numbers.
//
// SchedulerService hands back immutable CachedPlan snapshots (schedule +
// arena placements); this class binds one to a per-session
// runtime::ArenaExecutor, so a caller goes graph -> plan (cold, coalesced
// or warm from the persisted cache) -> batched inference out of one
// preallocated arena, with zero per-inference heap allocation. This closes
// the loop the ROADMAP's serve axis aims at: the expensive memory-aware
// search runs once per structural graph, and every inference after that
// executes the cached artifact directly.
//
// Sessions are single-threaded by design — the arena is the session's
// mutable state. Run sessions on separate plans (or separate sessions over
// the same shared CachedPlan: the plan is immutable) for parallel serving.
#ifndef SERENITY_SERVE_INFERENCE_SESSION_H_
#define SERENITY_SERVE_INFERENCE_SESSION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/arena_executor.h"
#include "serve/scheduler_service.h"
#include "util/status.h"

namespace serenity::serve {

struct InferenceSessionOptions {
  runtime::ArenaExecutorOptions executor;
};

class InferenceSession {
 public:
  // Builds a session over a served plan. Dies if `plan` is null; keeps the
  // plan (and the scheduled graph inside it) alive for the session's life.
  explicit InferenceSession(std::shared_ptr<const CachedPlan> plan,
                            InferenceSessionOptions options = {});

  // Schedules `graph` through `service` — cache hit, coalesced, or a fresh
  // planning run — and opens a session over the result. Dies if planning
  // failed (a serving caller that wants to degrade gracefully should use
  // TryOpen, or call service.Schedule itself and check the ServeResult).
  static InferenceSession Open(SchedulerService& service,
                               const graph::Graph& graph,
                               InferenceSessionOptions options = {});

  // Status-returning construction for serving callers (DESIGN.md "Failure
  // taxonomy"): a null plan is kInvalidArgument; executor construction
  // failure maps std::bad_alloc (arena exhaustion — real or injected) to
  // kResourceExhausted and any other exception to kInternal. Never aborts
  // on environment-caused failure.
  static util::StatusOr<InferenceSession> Create(
      std::shared_ptr<const CachedPlan> plan,
      InferenceSessionOptions options = {});

  // Schedule-then-Create with the planning Status propagated: deadline and
  // planner failures surface here instead of aborting.
  static util::StatusOr<InferenceSession> TryOpen(
      SchedulerService& service, const graph::Graph& graph,
      const RequestOptions& request = {},
      InferenceSessionOptions options = {});

  InferenceSession(InferenceSession&&) = default;
  InferenceSession& operator=(InferenceSession&&) = default;

  // One inference. `inputs` correspond to the scheduled graph's kInput
  // nodes in ascending node-id order. Zero heap allocations inside.
  void Run(const std::vector<runtime::Tensor>& inputs);

  // Batched inputs, executed sequentially out of the same arena (the edge
  // deployment model: one arena, many inferences).
  void RunBatch(const std::vector<std::vector<runtime::Tensor>>& batch);

  // Wipes the arena in place — no deallocation, no reallocation — so the
  // session can be pooled and handed to the next request without leaking
  // the previous request's activations (serve/session_pool.h returns every
  // lease through here). The plan binding and the cumulative inference
  // counter survive; performs no heap allocation.
  void Reset();

  // The scheduled (possibly rewritten) graph inferences execute against —
  // build inputs and read sinks relative to *this* graph.
  const graph::Graph& graph() const { return plan_->result.scheduled_graph; }
  const CachedPlan& plan() const { return *plan_; }
  const runtime::ArenaExecutor& executor() const { return *executor_; }
  runtime::ArenaExecutor& executor() { return *executor_; }

  std::int64_t arena_bytes() const { return executor_->arena_bytes(); }
  std::uint64_t inferences() const { return inferences_; }

 private:
  std::shared_ptr<const CachedPlan> plan_;
  std::unique_ptr<runtime::ArenaExecutor> executor_;
  std::uint64_t inferences_ = 0;
};

}  // namespace serenity::serve

#endif  // SERENITY_SERVE_INFERENCE_SESSION_H_
