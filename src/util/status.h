// Status / StatusOr<T>: propagated errors for *recoverable* failures.
//
// SERENITY's failure taxonomy (DESIGN.md "Failure taxonomy") splits failures
// in two. Programming errors — violated invariants, preconditions broken by
// our own code — stay SERENITY_CHECK aborts (util/logging.h): they indicate
// a bug and the only safe reaction is to stop. Everything the *environment*
// can cause — corrupt or truncated files, expired deadlines, exhausted
// resources, a planning run that did not converge — is recoverable by
// policy (degrade, skip the entry, serve cold, retry) and therefore
// propagates as a Status instead of killing a serving process.
//
// The shape follows absl::Status/StatusOr (the de-facto C++ idiom) but is
// self-contained: an enum code, a message, and a value-or-status wrapper.
// StatusOr<T>::value() CHECK-aborts on an error status — extracting a value
// without checking ok() first is a programming error, closing the loop on
// the taxonomy above.
#ifndef SERENITY_UTIL_STATUS_H_
#define SERENITY_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace serenity::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // malformed input the caller handed us
  kNotFound,           // a named resource (file, cache entry) is absent
  kDeadlineExceeded,   // a wall-clock budget expired before completion
  kResourceExhausted,  // allocation failure, state-cap blowout
  kFailedPrecondition, // the operation is valid, the current state is not
  kDataLoss,           // corruption detected: checksum mismatch, truncation
  kUnavailable,        // transient environment failure (I/O), retryable
  kInternal,           // an invariant almost broke; caught at a boundary
  kCancelled,          // the caller abandoned the request mid-flight
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

// Value-or-error. Construction from T is an OK result; construction from a
// non-OK Status is an error result (an OK Status here is a programming
// error — there would be no value to return).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    SERENITY_CHECK(!status_.ok())
        << "StatusOr must not be built from an OK status without a value";
  }
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    SERENITY_CHECK(ok()) << "StatusOr::value on error: "
                         << status_.ToString();
    return *value_;
  }
  const T& value() const& {
    SERENITY_CHECK(ok()) << "StatusOr::value on error: "
                         << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SERENITY_CHECK(ok()) << "StatusOr::value on error: "
                         << status_.ToString();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // OK iff value_ holds
  std::optional<T> value_;
};

}  // namespace serenity::util

// Propagate a non-OK Status to the caller.
#define SERENITY_RETURN_IF_ERROR(expr)                \
  do {                                                \
    ::serenity::util::Status _serenity_st = (expr);   \
    if (!_serenity_st.ok()) return _serenity_st;      \
  } while (0)

// Unwrap a StatusOr into `lhs` or propagate its error status.
#define SERENITY_ASSIGN_OR_RETURN(lhs, expr)              \
  SERENITY_ASSIGN_OR_RETURN_IMPL_(                        \
      SERENITY_STATUS_CONCAT_(_serenity_sor, __LINE__), lhs, expr)
#define SERENITY_STATUS_CONCAT_(a, b) SERENITY_STATUS_CONCAT_2_(a, b)
#define SERENITY_STATUS_CONCAT_2_(a, b) a##b
#define SERENITY_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return std::move(tmp).status();        \
  lhs = std::move(tmp).value()

#endif  // SERENITY_UTIL_STATUS_H_
