// Post-scheduling hot-path micro-benchmark: the arena planner
// (alloc/arena_planner) and the hierarchy simulator (memsim/hierarchy_sim).
//
// Tracks *absolute* median seconds per call; the cross-PR JSON trajectory
// (bench/baselines/ + tools/check_bench_regression.py) is the regression
// signal. The seed's quadratic implementations are no longer re-run here —
// they live on in tests/testing/reference_impls.h purely as the oracle of
// the bit-identity property suites (arena_planner_property_test,
// hierarchy_sim_property_test). Inputs span the paper's largest cells
// (DARTS, RandWire) and synthetic RandWire-scale DAGs several times that
// size, where the hot paths dominate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "memsim/hierarchy_sim.h"
#include "testing/random_graphs.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace {

using namespace serenity;

struct InputCase {
  std::string label;
  graph::Graph graph;
  int iters;  // timing-loop iterations per repetition
};

std::vector<InputCase> BuildInputs() {
  std::vector<InputCase> inputs;
  inputs.push_back({"DARTS ImageNet / Normal Cell",
                    models::FindBenchmarkCell("DARTS ImageNet", "Normal Cell")
                        .factory(),
                    200});
  inputs.push_back({"RandWire CIFAR100 / Cell C",
                    models::FindBenchmarkCell("RandWire CIFAR100", "Cell C")
                        .factory(),
                    200});
  util::Rng rng(20260730);
  testing::RandomDagOptions medium;
  medium.num_ops = 512;
  medium.max_channels = 6;
  medium.extra_edge_p = 0.4;
  inputs.push_back({"random DAG / 512 ops",
                    testing::RandomDag(rng, medium, "rand512"), 10});
  testing::RandomDagOptions large = medium;
  large.num_ops = 2048;
  inputs.push_back({"random DAG / 2048 ops",
                    testing::RandomDag(rng, large, "rand2048"), 2});
  return inputs;
}

// Median seconds of one call, measured over `reps` repetitions of an
// `iters`-iteration timing loop.
template <typename Fn>
double MedianSecondsOf(const Fn& fn, int iters, int reps = 7) {
  std::vector<double> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch clock;
    for (int i = 0; i < iters; ++i) fn();
    runs.push_back(clock.ElapsedSeconds() / iters);
  }
  return util::Percentile(runs, 50);
}

// Returns false iff a requested --json write failed.
bool PrintMedians(const std::string& json_path) {
  std::printf("Planner + hierarchy-sim hot paths: absolute median seconds "
              "per call\n\n");
  std::printf("%-28s %7s %7s  %12s %12s\n", "input", "bufs", "steps",
              "planner", "sim");
  bench::PrintRule(72);
  bench::JsonRows rows;
  for (const InputCase& input : BuildInputs()) {
    const graph::Graph& g = input.graph;
    const sched::Schedule s = sched::TfLiteOrderSchedule(g);
    const graph::BufferUseTable table = graph::BufferUseTable::Build(g);

    const double plan_now =
        MedianSecondsOf([&] { alloc::PlanArena(g, table, s); }, input.iters);

    // A pressured budget: Belady evicts continuously, the regime where the
    // eviction path dominates.
    memsim::SimOptions options;
    options.onchip_bytes =
        std::max<std::int64_t>(options.page_bytes,
                               sched::PeakFootprint(g, s) / 2);
    const double sim_now = MedianSecondsOf(
        [&] { memsim::SimulateHierarchy(g, table, s, options); },
        input.iters);

    std::printf("%-28s %7zu %7zu  %12.3g %12.3g\n", input.label.c_str(),
                table.buffers.size(), s.size(), plan_now, sim_now);
    rows.Begin();
    rows.Field("input", input.label);
    rows.Field("buffers", static_cast<std::int64_t>(table.buffers.size()));
    rows.Field("steps", static_cast<std::int64_t>(s.size()));
    rows.Field("planner_seconds", plan_now);
    rows.Field("sim_seconds", sim_now);
  }
  bench::PrintRule(72);
  std::printf("\n");
  if (!json_path.empty()) return rows.WriteTo(json_path);
  return true;
}

void BM_PlanArena(benchmark::State& state) {
  const auto inputs = BuildInputs();
  const InputCase& input = inputs[static_cast<std::size_t>(state.range(0))];
  const sched::Schedule s = sched::TfLiteOrderSchedule(input.graph);
  const graph::BufferUseTable table =
      graph::BufferUseTable::Build(input.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc::PlanArena(input.graph, table, s).arena_bytes);
  }
  state.SetLabel(input.label);
}
BENCHMARK(BM_PlanArena)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_SimulateHierarchy(benchmark::State& state) {
  const auto inputs = BuildInputs();
  const InputCase& input = inputs[static_cast<std::size_t>(state.range(0))];
  const sched::Schedule s = sched::TfLiteOrderSchedule(input.graph);
  const graph::BufferUseTable table =
      graph::BufferUseTable::Build(input.graph);
  memsim::SimOptions options;
  options.onchip_bytes = std::max<std::int64_t>(
      options.page_bytes, sched::PeakFootprint(input.graph, s) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        memsim::SimulateHierarchy(input.graph, table, s, options)
            .TotalTraffic());
  }
  state.SetLabel(input.label);
}
BENCHMARK(BM_SimulateHierarchy)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = serenity::bench::TakeJsonFlag(&argc, argv);
  const bool json_ok = PrintMedians(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return json_ok ? 0 : 1;
}
