#include "util/bitset.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.h"

namespace serenity::util {
namespace {

TEST(Bitset64, StartsEmpty) {
  Bitset64 b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
}

TEST(Bitset64, SetTestReset) {
  Bitset64 b(100);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(99));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(Bitset64, SubsetAndIntersection) {
  Bitset64 small(70), large(70), other(70);
  small.Set(3);
  small.Set(65);
  large.Set(3);
  large.Set(65);
  large.Set(10);
  other.Set(11);
  EXPECT_TRUE(small.IsSubsetOf(large));
  EXPECT_FALSE(large.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_TRUE(small.Intersects(large));
  EXPECT_FALSE(small.Intersects(other));
}

TEST(Bitset64, BitwiseOperators) {
  Bitset64 a(80), b(80);
  a.Set(1);
  a.Set(70);
  b.Set(2);
  b.Set(70);
  const Bitset64 both = a | b;
  EXPECT_TRUE(both.Test(1));
  EXPECT_TRUE(both.Test(2));
  EXPECT_TRUE(both.Test(70));
  const Bitset64 common = a & b;
  EXPECT_FALSE(common.Test(1));
  EXPECT_TRUE(common.Test(70));
  Bitset64 x = a;
  x ^= a;
  EXPECT_TRUE(x.None());
}

TEST(Bitset64, ForEachSetBitAscending) {
  Bitset64 b(200);
  const std::vector<std::size_t> expected = {0, 1, 63, 64, 128, 199};
  for (const std::size_t i : expected) b.Set(i);
  EXPECT_EQ(b.ToIndices(), expected);
}

TEST(Bitset64, EqualityAndHash) {
  Bitset64 a(90), b(90);
  a.Set(42);
  b.Set(42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(43);
  EXPECT_NE(a, b);
}

TEST(Bitset64, HashSpreadsRandomSets) {
  // Sanity: distinct random sets should (almost) never collide.
  Rng rng(7);
  std::unordered_set<std::size_t> hashes;
  constexpr int kSets = 2000;
  for (int i = 0; i < kSets; ++i) {
    Bitset64 b(128);
    for (int j = 0; j < 20; ++j) {
      b.Set(static_cast<std::size_t>(rng.NextBounded(128)));
    }
    hashes.insert(b.Hash());
  }
  EXPECT_GT(hashes.size(), static_cast<std::size_t>(kSets * 95 / 100));
}

}  // namespace
}  // namespace serenity::util
