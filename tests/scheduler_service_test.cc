#include "serve/scheduler_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "graph/canonical_hash.h"
#include "models/zoo.h"
#include "sched/schedule.h"
#include "testing/fault_injection.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace serenity::serve {
namespace {

graph::Graph Cell(const std::string& group, const std::string& name) {
  return models::FindBenchmarkCell(group, name).factory();
}

TEST(SchedulerService, ServesAndThenHitsTheCache) {
  SchedulerService service;
  const graph::Graph g = Cell("SwiftNet HPD", "Cell C");

  const ServeResult cold = service.Schedule(g);
  ASSERT_NE(cold.plan, nullptr) << cold.status.ToString();
  EXPECT_FALSE(cold.cache_hit);

  const ServeResult warm = service.Schedule(g);
  ASSERT_NE(warm.plan, nullptr);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.plan.get(), cold.plan.get()) << "same cached snapshot";

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.planned, 1u);
}

TEST(SchedulerService, CacheHitIsBitIdenticalToAFreshPipelineRun) {
  SchedulerService service;
  const graph::Graph g = Cell("SwiftNet HPD", "Cell B");
  (void)service.Schedule(g);
  const ServeResult warm = service.Schedule(g);
  ASSERT_TRUE(warm.cache_hit);

  const core::PipelineResult fresh =
      core::Pipeline(service.options().pipeline).Run(g);
  EXPECT_EQ(warm.plan->result.schedule, fresh.schedule);
  EXPECT_EQ(warm.plan->result.peak_bytes, fresh.peak_bytes);
  EXPECT_EQ(warm.plan->result.states_expanded, fresh.states_expanded);
}

TEST(SchedulerService, RelabeledGraphIsTheSameCacheEntry) {
  SchedulerService service;
  const graph::Graph g = Cell("SwiftNet HPD", "Cell C");
  util::Rng rng(7);
  const graph::Graph twin =
      serenity::testing::RelabelIsomorphic(g, rng, "twin");

  const ServeResult cold = service.Schedule(g);
  const ServeResult warm = service.Schedule(twin);
  ASSERT_NE(cold.plan, nullptr);
  EXPECT_TRUE(warm.cache_hit) << "structural twin must hit the cache";
  EXPECT_EQ(warm.hash, cold.hash);
}

TEST(SchedulerService, SingleFlightCoalescesDuplicateSubmissions) {
  SchedulerService service;  // one worker: the queue serializes planning
  const graph::Graph g = Cell("DARTS ImageNet", "Normal Cell");

  std::vector<Submission> submissions;
  for (int i = 0; i < 8; ++i) submissions.push_back(service.Submit(g));
  for (const Submission& s : submissions) {
    ASSERT_NE(s.future.get().plan, nullptr);
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_EQ(stats.planned, 1u) << "one Pipeline::Run per distinct graph";
  EXPECT_EQ(stats.cache_hits + stats.coalesced, 7u);
  EXPECT_GE(stats.coalesced, 1u)
      << "submissions behind a 1-worker queue must coalesce";
}

TEST(SchedulerService, BatchPlansDistinctGraphsAndCoalescesDuplicates) {
  ServeOptions options;
  options.num_workers = 4;
  SchedulerService service(options);

  const graph::Graph a = Cell("SwiftNet HPD", "Cell A");
  const graph::Graph b = Cell("SwiftNet HPD", "Cell B");
  const graph::Graph c = Cell("SwiftNet HPD", "Cell C");
  const std::vector<const graph::Graph*> batch = {&a, &b, &c, &a, &b, &c};

  const std::vector<ServeResult> results = service.ScheduleBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (const ServeResult& r : results) {
    ASSERT_NE(r.plan, nullptr) << r.status.ToString();
  }
  EXPECT_EQ(results[0].hash, results[3].hash);
  EXPECT_EQ(results[0].plan.get(), results[3].plan.get());
  EXPECT_EQ(service.stats().planned, 3u);

  // A second identical batch is all cache hits.
  const std::vector<ServeResult> warm = service.ScheduleBatch(batch);
  for (const ServeResult& r : warm) EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(service.stats().planned, 3u);
}

TEST(SchedulerService, PlanningFailuresAreReportedAndNotCached) {
  ServeOptions options;
  options.pipeline.enable_soft_budgeting = false;
  options.pipeline.dp.budget_bytes = 1;  // infeasible hard budget
  SchedulerService service(options);
  const graph::Graph g = Cell("SwiftNet HPD", "Cell C");

  const ServeResult failed = service.Schedule(g);
  EXPECT_EQ(failed.plan, nullptr);
  EXPECT_EQ(failed.status.code(), util::StatusCode::kInternal);
  EXPECT_NE(failed.status.message().find("no solution"), std::string::npos)
      << failed.status.ToString();

  // Failures are not cached: the next request plans (and fails) again.
  const ServeResult again = service.Schedule(g);
  EXPECT_EQ(again.plan, nullptr);
  EXPECT_FALSE(again.cache_hit);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failures, 2u);
  EXPECT_EQ(stats.cache.entries, 0u);
}

TEST(SchedulerService, WarmRestartServesFromPersistedCache) {
  const std::string path = ::testing::TempDir() + "/serve_cache.v1";
  const graph::Graph g = Cell("SwiftNet HPD", "Cell B");
  sched::Schedule cold_schedule;
  {
    SchedulerService service;
    const ServeResult cold = service.Schedule(g);
    ASSERT_NE(cold.plan, nullptr);
    cold_schedule = cold.plan->result.schedule;
    ASSERT_TRUE(service.cache().SaveToFile(path).ok());
  }
  {
    SchedulerService restarted;
    const util::StatusOr<CacheLoadReport> report =
        restarted.cache().LoadFromFile(path);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_EQ(report.value().entries_loaded, 1);
    const ServeResult warm = restarted.Schedule(g);
    ASSERT_NE(warm.plan, nullptr);
    EXPECT_TRUE(warm.cache_hit) << "warm restart must skip re-planning";
    EXPECT_EQ(warm.plan->result.schedule, cold_schedule);
    EXPECT_EQ(restarted.stats().planned, 0u);
  }
  std::remove(path.c_str());
}

// Thread-safety smoke for the sanitizer job: many client threads hammer a
// small graph set through every serve path concurrently.
TEST(SchedulerService, ConcurrentMixedTrafficIsRaceFree) {
  ServeOptions options;
  options.num_workers = 3;
  SchedulerService service(options);
  const std::vector<graph::Graph> graphs = {
      Cell("SwiftNet HPD", "Cell B"), Cell("SwiftNet HPD", "Cell C"),
      Cell("RandWire CIFAR100", "Cell C")};

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 12;
  std::vector<std::thread> clients;
  std::vector<int> successes(kClients, 0);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const ServeResult r =
            service.Schedule(graphs[(t + i) % graphs.size()]);
        if (r.plan != nullptr &&
            sched::IsTopologicalOrder(r.plan->result.scheduled_graph,
                                      r.plan->result.schedule)) {
          ++successes[t];
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (int t = 0; t < kClients; ++t) {
    EXPECT_EQ(successes[t], kRequestsPerClient);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(stats.planned, graphs.size());
  EXPECT_EQ(stats.cache_hits + stats.coalesced + stats.planned,
            stats.requests);
}

TEST(SchedulerService, ExpiredDeadlineDegradesToAFeasiblePlan) {
  SchedulerService service;
  const graph::Graph g = Cell("SwiftNet HPD", "Cell C");
  RequestOptions request;
  request.deadline_seconds = 0.0;  // already expired at submission
  request.allow_degraded = true;

  const ServeResult r = service.Schedule(g, request);
  ASSERT_NE(r.plan, nullptr) << r.status.ToString();
  EXPECT_TRUE(r.status.ok());
  EXPECT_NE(r.quality, core::PlanQuality::kExact);
  EXPECT_TRUE(r.plan->result.degraded);
  EXPECT_TRUE(sched::IsTopologicalOrder(r.plan->result.scheduled_graph,
                                        r.plan->result.schedule));
  EXPECT_GE(r.peak_delta_bytes, 0);
  EXPECT_GE(service.stats().degraded_plans, 1u);
}

TEST(SchedulerService, ExpiredDeadlineWithoutDegradationIsACleanError) {
  ServeOptions options;
  options.upgrade_degraded_plans = false;
  SchedulerService service(options);
  const graph::Graph g = Cell("SwiftNet HPD", "Cell C");
  RequestOptions request;
  request.deadline_seconds = 0.0;
  request.allow_degraded = false;

  const ServeResult r = service.Schedule(g, request);
  EXPECT_EQ(r.plan, nullptr);
  EXPECT_EQ(r.status.code(), util::StatusCode::kDeadlineExceeded);

  // The failure is not cached, and the service still serves afterwards.
  const ServeResult ok = service.Schedule(g);
  ASSERT_NE(ok.plan, nullptr) << ok.status.ToString();
  EXPECT_EQ(ok.quality, core::PlanQuality::kExact);
}

TEST(SchedulerService, DegradedEntryIsUpgradedToExactInPlace) {
  ServeOptions options;
  options.upgrade_degraded_plans = true;
  options.max_upgrade_attempts = 3;
  options.upgrade_backoff_seconds = 0.01;
  SchedulerService service(options);
  const graph::Graph g = Cell("SwiftNet HPD", "Cell C");
  const graph::GraphHash hash = graph::CanonicalGraphHash(g);

  RequestOptions rushed;
  rushed.deadline_seconds = 0.0;
  const ServeResult degraded = service.Schedule(g, rushed);
  ASSERT_NE(degraded.plan, nullptr) << degraded.status.ToString();
  ASSERT_NE(degraded.quality, core::PlanQuality::kExact);

  // The background upgrade replaces the cache entry with the exact plan.
  for (int i = 0; i < 1000; ++i) {
    const auto entry = service.cache().Lookup(hash);
    ASSERT_NE(entry, nullptr);
    if (entry->quality == core::PlanQuality::kExact) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto upgraded = service.cache().Lookup(hash);
  ASSERT_NE(upgraded, nullptr);
  EXPECT_EQ(upgraded->quality, core::PlanQuality::kExact);
  EXPECT_EQ(upgraded->peak_delta_bytes, 0);
  EXPECT_GE(service.stats().upgrades, 1u);

  // A later un-rushed request observes the upgraded entry as a cache hit —
  // bit-identical to a fresh exact run.
  const ServeResult warm = service.Schedule(g);
  ASSERT_NE(warm.plan, nullptr);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.quality, core::PlanQuality::kExact);
  const core::PipelineResult fresh =
      core::Pipeline(service.options().pipeline).Run(g);
  EXPECT_EQ(warm.plan->result.schedule, fresh.schedule);
  EXPECT_EQ(warm.plan->result.peak_bytes, fresh.peak_bytes);
}

TEST(SchedulerService, InjectedWorkerExceptionFailsOneRequestNotTheWorker) {
  SchedulerService service;
  const graph::Graph g = Cell("SwiftNet HPD", "Cell B");

  {
    serenity::testing::ScopedFault fault(
        serenity::testing::FaultPoint::kWorkerException);
    const ServeResult faulted = service.Schedule(g);
    EXPECT_EQ(faulted.plan, nullptr);
    EXPECT_EQ(faulted.status.code(), util::StatusCode::kInternal);
    EXPECT_NE(faulted.status.message().find("injected"), std::string::npos);
  }

  // The worker thread survived the exception and serves the next request.
  const ServeResult ok = service.Schedule(g);
  ASSERT_NE(ok.plan, nullptr) << ok.status.ToString();
  EXPECT_EQ(service.stats().failures, 1u);
}

TEST(SchedulerService, InjectedSchedulerTimeoutDegradesDeterministically) {
  SchedulerService service;
  const graph::Graph g = Cell("SwiftNet HPD", "Cell A");

  serenity::testing::ScopedFault fault(
      serenity::testing::FaultPoint::kSchedulerTimeout);
  RequestOptions request;
  request.allow_degraded = true;  // no wall-clock deadline needed
  const ServeResult r = service.Schedule(g, request);
  ASSERT_NE(r.plan, nullptr) << r.status.ToString();
  EXPECT_NE(r.quality, core::PlanQuality::kExact);
  EXPECT_TRUE(r.plan->result.deadline_exceeded);
}

}  // namespace
}  // namespace serenity::serve
