#include "runtime/tensor.h"

#include <cmath>

namespace serenity::runtime {

float Tensor::MaxAbsDiff(const Tensor& other) const {
  SERENITY_CHECK(shape_ == other.shape_) << "shape mismatch in MaxAbsDiff";
  float worst = 0.0f;
  ForEachIndex([&](int n, int h, int w, int c) {
    worst = std::max(worst, std::fabs(At(n, h, w, c) - other.At(n, h, w, c)));
  });
  return worst;
}

std::vector<float> Tensor::ToVector() const {
  std::vector<float> flat;
  flat.reserve(size());
  ForEachIndex(
      [&](int n, int h, int w, int c) { flat.push_back(At(n, h, w, c)); });
  return flat;
}

void Tensor::Assign(std::initializer_list<float> values) {
  SERENITY_CHECK_EQ(values.size(), size())
      << "Assign value count does not match the tensor shape";
  auto it = values.begin();
  ForEachIndex([&](int n, int h, int w, int c) { At(n, h, w, c) = *it++; });
}

}  // namespace serenity::runtime
