// Scalability study (not a paper figure): how the exact DP — with and
// without incumbent-seeded branch-and-bound pruning — the soft-budgeted DP,
// the beam fallback and the greedy heuristic scale with graph size on
// synthetic irregular networks — the practical guidance a user needs when
// importing arbitrary graphs (DESIGN.md §3.6, "Branch-and-bound over
// levels").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/dp_scheduler.h"
#include "core/soft_budget.h"
#include "models/random_cell.h"
#include "sched/baselines.h"
#include "sched/beam.h"
#include "sched/schedule.h"
#include "util/stopwatch.h"

namespace {

using namespace serenity;

graph::Graph NetworkOfSize(int cells, int intermediates) {
  models::RandomCellParams p;
  p.seed = 97;
  p.num_cells = cells;
  p.num_intermediates = intermediates;
  p.concat_branches = 4;
  p.spatial = 8;
  p.name = "scale_net";
  return models::MakeRandomCellNetwork(p);
}

// Returns false iff a requested --json write failed.
bool PrintStudy(const std::string& json_path) {
  std::printf("Scheduling scalability on synthetic irregular networks\n\n");
  std::printf("%8s %8s | %12s %12s | %12s %12s | %12s | %12s %9s\n",
              "nodes", "edges", "DP (ms)", "states", "B&B states",
              "pruned", "soft (ms)", "beam64 (ms)", "beam/DP");
  bench::PrintRule();
  bench::JsonRows rows;
  for (const auto& [cells, intermediates] :
       {std::pair{1, 6}, {1, 10}, {2, 10}, {3, 12}, {5, 12}, {8, 14}}) {
    const graph::Graph g = NetworkOfSize(cells, intermediates);

    util::Stopwatch dp_clock;
    const core::DpResult dp = core::ScheduleDp(g);
    const double dp_ms = dp_clock.ElapsedMillis();
    if (dp.status != core::DpStatus::kSolution) continue;

    // Incumbent-seeded branch-and-bound, seeded exactly like the pipeline:
    // the better of the greedy baseline and the beam below. Peak and
    // schedule are bit-identical to the plain DP; only the explored state
    // count drops (pinned by bnb_property_test).
    util::Stopwatch beam_clock;
    sched::BeamOptions beam_options;
    beam_options.width = 64;
    const sched::BeamResult beam = sched::ScheduleBeam(g, beam_options);
    const double beam_ms = beam_clock.ElapsedMillis();

    core::DpOptions bnb_options;
    bnb_options.incumbent_bytes = std::min(
        sched::PeakFootprint(g, sched::GreedyMemorySchedule(g)),
        beam.peak_bytes);
    util::Stopwatch bnb_clock;
    const core::DpResult bnb = core::ScheduleDp(g, bnb_options);
    const double bnb_ms = bnb_clock.ElapsedMillis();

    util::Stopwatch sb_clock;
    const core::SoftBudgetResult sb = core::ScheduleWithSoftBudget(g);
    const double sb_ms = sb_clock.ElapsedMillis();

    std::printf(
        "%8d %8d | %12.2f %12llu | %12llu %12llu | %12.2f | %12.2f %8.3fx\n",
        g.num_nodes(), g.num_edges(), dp_ms,
        static_cast<unsigned long long>(dp.states_expanded),
        static_cast<unsigned long long>(bnb.states_expanded),
        static_cast<unsigned long long>(bnb.states_pruned_by_bound), sb_ms,
        beam_ms,
        static_cast<double>(beam.peak_bytes) /
            static_cast<double>(dp.peak_bytes));
    (void)sb;

    rows.Begin();
    rows.Field("network", std::string("scale_") + std::to_string(cells) +
                              "x" + std::to_string(intermediates));
    rows.Field("nodes", static_cast<std::int64_t>(g.num_nodes()));
    rows.Field("edges", static_cast<std::int64_t>(g.num_edges()));
    rows.Field("dp_peak_bytes", dp.peak_bytes);
    rows.Field("states_expanded", dp.states_expanded);
    rows.Field("bnb_states_expanded", bnb.states_expanded);
    rows.Field("states_pruned_by_bound", bnb.states_pruned_by_bound);
    rows.Field("states_pruned_by_incumbent", bnb.pruned.incumbent);
    rows.Field("states_pruned_by_residual", bnb.pruned.residual);
    rows.Field("states_pruned_by_frontier_floor", bnb.pruned.frontier_floor);
    rows.Field("states_pruned_by_lookahead", bnb.pruned.lookahead);
    rows.Field("states_pruned_by_dominance", bnb.pruned.dominance);
    rows.Field("bnb_peak_bytes", bnb.peak_bytes);
    rows.Field("max_level_states", dp.max_level_states);
    rows.Field("beam64_peak_bytes", beam.peak_bytes);
    rows.Field("dp_seconds", dp_ms / 1000.0);
    rows.Field("bnb_seconds", bnb_ms / 1000.0);
    rows.Field("soft_seconds", sb_ms / 1000.0);
    rows.Field("beam_seconds", beam_ms / 1000.0);
  }
  std::printf("\nbeam/DP is the beam's peak relative to the exact optimum "
              "(1.000x = optimal); B&B states are bit-identical searches "
              "pruned against the greedy/beam incumbent.\n\n");
  if (!json_path.empty()) return rows.WriteTo(json_path);
  return true;
}

void BM_DpByGraphSize(benchmark::State& state) {
  const graph::Graph g =
      NetworkOfSize(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ScheduleDp(g).states_expanded);
  }
  state.SetLabel(std::to_string(g.num_nodes()) + " nodes");
}
BENCHMARK(BM_DpByGraphSize)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_BnbDpByGraphSize(benchmark::State& state) {
  const graph::Graph g =
      NetworkOfSize(static_cast<int>(state.range(0)), 10);
  sched::BeamOptions beam_options;
  beam_options.width = 64;
  core::DpOptions options;
  options.incumbent_bytes = std::min(
      sched::PeakFootprint(g, sched::GreedyMemorySchedule(g)),
      sched::ScheduleBeam(g, beam_options).peak_bytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ScheduleDp(g, options).states_expanded);
  }
  state.SetLabel(std::to_string(g.num_nodes()) + " nodes");
}
BENCHMARK(BM_BnbDpByGraphSize)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_BeamByGraphSize(benchmark::State& state) {
  const graph::Graph g =
      NetworkOfSize(static_cast<int>(state.range(0)), 10);
  sched::BeamOptions options;
  options.width = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::ScheduleBeam(g, options).peak_bytes);
  }
  state.SetLabel(std::to_string(g.num_nodes()) + " nodes");
}
BENCHMARK(BM_BeamByGraphSize)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = serenity::bench::TakeJsonFlag(&argc, argv);
  const bool json_ok = PrintStudy(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return json_ok ? 0 : 1;
}
