// Table 1 — "Specification of the networks used for evaluation".
//
// Prints type, dataset, multiply-accumulate count, and parameter count for
// each benchmark network, computed from the generated graphs, next to the
// paper's reported values. (Top-1 accuracy is a training-time property
// quoted from the respective papers; a scheduling framework cannot
// re-measure it, so the paper's numbers are repeated for reference.)
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/graph.h"
#include "models/darts.h"
#include "models/randwire.h"
#include "models/swiftnet.h"

namespace {

struct NetworkRow {
  const char* name;
  const char* type;
  const char* dataset;
  std::vector<serenity::graph::Graph> cells;
  double paper_mac;     // paper's "# MAC"
  double paper_weight;  // paper's "# WEIGHT"
  const char* paper_top1;
};

// Returns false iff a requested --json write failed.
bool PrintTable(const std::string& json_path) {
  using namespace serenity;
  std::vector<NetworkRow> rows;
  rows.push_back({"DARTS", "NAS", "ImageNet",
                  {},
                  574.0e6, 4.7e6, "73.3%"});
  rows.back().cells.push_back(models::MakeDartsNormalCell());
  rows.push_back({"SwiftNet", "NAS", "HPD",
                  {},
                  57.4e6, 249.7e3, "95.1%"});
  rows.back().cells.push_back(models::MakeSwiftNet());
  rows.push_back({"RandWire", "RAND", "CIFAR10",
                  {},
                  111.0e6, 1.2e6, "93.6%"});
  rows.back().cells.push_back(models::MakeRandWireCifar10CellA());
  rows.back().cells.push_back(models::MakeRandWireCifar10CellB());
  rows.push_back({"RandWire", "RAND", "CIFAR100",
                  {},
                  160.0e6, 4.7e6, "74.5%"});
  rows.back().cells.push_back(models::MakeRandWireCifar100CellA());
  rows.back().cells.push_back(models::MakeRandWireCifar100CellB());
  rows.back().cells.push_back(models::MakeRandWireCifar100CellC());

  std::printf("Table 1: specification of the evaluated networks\n");
  std::printf("(ours = generated benchmark cells; paper = full published "
              "networks, so absolute\n counts differ — the scheduling "
              "experiments depend only on topology and tensor sizes)\n\n");
  std::printf("%-10s %-5s %-9s %10s %12s %12s %12s %7s %7s %7s\n", "NETWORK",
              "TYPE", "DATASET", "# NODES", "# MAC", "paper#MAC", "# WEIGHT",
              "paper", "EDGES", "TOP-1*");
  serenity::bench::PrintRule();
  serenity::bench::JsonRows json;
  for (const NetworkRow& row : rows) {
    std::int64_t macs = 0;
    std::int64_t weights = 0;
    int nodes = 0;
    int edges = 0;
    for (const graph::Graph& g : row.cells) {
      macs += graph::CountMacs(g);
      weights += graph::CountWeights(g);
      nodes += g.num_nodes();
      edges += g.num_edges();
    }
    std::printf("%-10s %-5s %-9s %10d %11.1fM %11.1fM %11.1fK %6.1fK %7d %7s\n",
                row.name, row.type, row.dataset, nodes,
                static_cast<double>(macs) / 1e6, row.paper_mac / 1e6,
                static_cast<double>(weights) / 1e3, row.paper_weight / 1e3,
                edges, row.paper_top1);
    json.Begin();
    json.Field("network", std::string(row.name));
    json.Field("type", std::string(row.type));
    json.Field("dataset", std::string(row.dataset));
    json.Field("nodes", static_cast<std::int64_t>(nodes));
    json.Field("edges", static_cast<std::int64_t>(edges));
    json.Field("macs", macs);
    json.Field("weights", weights);
  }
  std::printf("\n* Top-1 accuracy quoted from the paper (Table 1).\n\n");
  if (!json_path.empty()) return json.WriteTo(json_path);
  return true;
}

// Timing companion: graph-generation and statistics throughput.
void BM_GenerateSwiftNet(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(serenity::models::MakeSwiftNet());
  }
}
BENCHMARK(BM_GenerateSwiftNet);

void BM_CountMacs(benchmark::State& state) {
  const auto g = serenity::models::MakeDartsNormalCell();
  for (auto _ : state) {
    benchmark::DoNotOptimize(serenity::graph::CountMacs(g));
  }
}
BENCHMARK(BM_CountMacs);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = serenity::bench::TakeJsonFlag(&argc, argv);
  const bool json_ok = PrintTable(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return json_ok ? 0 : 1;
}
