#include "serve/scheduler_service.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "graph/analysis.h"
#include "testing/fault_injection.h"
#include "util/logging.h"

namespace serenity::serve {

namespace {

std::chrono::duration<double> Seconds(double s) {
  return std::chrono::duration<double>(s);
}

// Provable lower bound on the peak of *any* schedule of `graph`: every
// schedule executes every node, and a node's step footprint is at least
// its minimum step footprint (operands + output live together).
std::int64_t ScheduleFloorBytes(const graph::Graph& graph) {
  const graph::BufferUseTable table = graph::BufferUseTable::Build(graph);
  std::int64_t floor_bytes = 0;
  for (const std::int64_t bytes : table.MinStepFootprints()) {
    floor_bytes = std::max(floor_bytes, bytes);
  }
  return floor_bytes;
}

}  // namespace

SchedulerService::SchedulerService(ServeOptions options)
    : options_(std::move(options)), cache_(options_.cache_capacity_bytes) {
  SERENITY_CHECK_GE(options_.num_workers, 1);
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SchedulerService::~SchedulerService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void SchedulerService::AttachWaiter(
    const std::shared_ptr<FlightState>& state,
    const std::shared_ptr<util::CancelToken>& waiter) {
  if (waiter == nullptr) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->pinned += 1;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->live += 1;
  }
  // An already-cancelled waiter runs the callback inline: its vote lands
  // immediately and may cancel the flight on the spot.
  waiter->OnCancel([state] {
    bool cancel_flight = false;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->live -= 1;
      cancel_flight = state->live == 0 && state->pinned == 0;
    }
    if (cancel_flight) state->token.Cancel();
  });
}

Submission SchedulerService::Submit(const graph::Graph& graph,
                                    const RequestOptions& request) {
  Submission submission;
  submission.hash = graph::CanonicalGraphHash(graph);

  // Admission lower bound, computed outside the lock (O(|V|+|E|)): a graph
  // that provably cannot fit under the governor no matter how it is
  // scheduled must not cost a planning slot.
  std::int64_t floor_bytes = 0;
  if (options_.admission_floor_budget_bytes > 0) {
    floor_bytes = ScheduleFloorBytes(graph);
  }

  std::lock_guard<std::mutex> lock(mu_);
  SERENITY_CHECK(!stopping_) << "Submit after shutdown began";
  ++counters_.requests;

  // Path 2 first: attaching to an in-flight planning run also covers the
  // window where its result is not yet in the cache. (Background upgrades
  // are not in in_flight_, so requests during an upgrade fall through to
  // the cache and hit the degraded entry instead of waiting.)
  const auto flight = in_flight_.find(submission.hash);
  if (flight != in_flight_.end()) {
    ++counters_.coalesced;
    submission.coalesced = true;
    submission.future = flight->second.future;
    AttachWaiter(flight->second.state, request.cancel);
    return submission;
  }

  // Path 1: served from cache on the caller's thread.
  if (std::shared_ptr<const CachedPlan> plan =
          cache_.Lookup(submission.hash)) {
    ++counters_.cache_hits;
    submission.cache_hit = true;
    ServeResult ready_result;
    ready_result.hash = submission.hash;
    ready_result.cache_hit = true;
    ready_result.quality = plan->quality;
    ready_result.peak_delta_bytes = plan->peak_delta_bytes;
    ready_result.plan = std::move(plan);
    std::promise<ServeResult> ready;
    ready.set_value(std::move(ready_result));
    submission.future = ready.get_future().share();
    return submission;
  }

  // Admission shed: the graph's schedulable floor exceeds the governor's
  // cap, so no session could ever execute the plan — refuse now, before a
  // byte of planning memory is spent. kResourceExhausted carries a retry
  // hint on the wire, and the server stays healthy for graphs that fit.
  if (options_.admission_floor_budget_bytes > 0 &&
      floor_bytes > options_.admission_floor_budget_bytes) {
    ++counters_.admission_sheds;
    ++counters_.failures;
    ServeResult shed;
    shed.hash = submission.hash;
    shed.status = util::ResourceExhaustedError(
        "admission shed: every schedule of this graph peaks at >= " +
        std::to_string(floor_bytes) + " bytes, over the governor cap of " +
        std::to_string(options_.admission_floor_budget_bytes));
    std::promise<ServeResult> ready;
    ready.set_value(std::move(shed));
    submission.future = ready.get_future().share();
    return submission;
  }

  // Path 3: enqueue a planning job and register it for single-flight.
  Job job;
  job.hash = submission.hash;
  job.graph = graph;
  job.promise = std::make_shared<std::promise<ServeResult>>();
  job.request = request;
  job.submitted = Clock::now();
  job.flight = std::make_shared<FlightState>();
  AttachWaiter(job.flight, request.cancel);
  submission.future = job.promise->get_future().share();
  in_flight_.emplace(submission.hash, Flight{submission.future, job.flight});
  queue_.push_back(std::move(job));
  work_ready_.notify_one();
  return submission;
}

void SchedulerService::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        // Promote upgrade retries whose backoff has elapsed.
        const Clock::time_point now = Clock::now();
        for (auto it = delayed_.begin(); it != delayed_.end();) {
          if (it->not_before <= now) {
            queue_.push_back(std::move(*it));
            it = delayed_.erase(it);
          } else {
            ++it;
          }
        }
        if (!queue_.empty()) break;
        if (stopping_) return;  // drained; pending retries are dropped
        if (delayed_.empty()) {
          work_ready_.wait(lock);
        } else {
          Clock::time_point next = delayed_.front().not_before;
          for (const Job& d : delayed_) next = std::min(next, d.not_before);
          work_ready_.wait_until(lock, next);
        }
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (job.is_upgrade) {
      RunUpgradeJob(std::move(job));
    } else {
      RunRequestJob(std::move(job));
    }
  }
}

void SchedulerService::RunRequestJob(Job job) {
  ServeResult result;
  result.hash = job.hash;

  // Seconds left of the request's budget; queue wait already counts.
  const double remaining =
      job.request.deadline_seconds -
      std::chrono::duration<double>(Clock::now() - job.submitted).count();

  bool enqueue_upgrade = false;
  try {
    // Fault-injection point: a worker-thread exception must fail this one
    // request with a clean Status and leave the worker serving.
    if (testing::FaultTriggered(testing::FaultPoint::kWorkerException)) {
      throw std::runtime_error("injected worker exception");
    }
    if (remaining <= 0 && !job.request.allow_degraded) {
      result.status = util::DeadlineExceededError(
          "deadline of " + std::to_string(job.request.deadline_seconds) +
          "s expired before planning started");
    } else {
      core::PipelineOptions popts = options_.pipeline;
      popts.deadline_seconds =
          std::min(popts.deadline_seconds, std::max(remaining, 0.0));
      popts.degrade_on_deadline = job.request.allow_degraded;
      popts.degraded_beam_width = options_.degraded_beam_width;
      popts.memory_budget = options_.planning_budget;
      if (job.flight != nullptr) popts.cancel = &job.flight->token;
      core::PipelineResult planned = core::Pipeline(popts).Run(job.graph);
      if (planned.success) {
        result.quality = planned.quality;
        const bool degraded = planned.degraded;
        const bool on_memory = planned.memory_exhausted;
        // Arena planning for the cache entry is governed too: a budget
        // refusal here sheds the request rather than allocating past the
        // governor on the way into the cache.
        util::StatusOr<std::shared_ptr<const CachedPlan>> inserted =
            cache_.InsertGoverned(job.hash, std::move(planned),
                                  options_.planning_budget);
        if (inserted.ok()) {
          result.plan = std::move(inserted).value();
          result.peak_delta_bytes = result.plan->peak_delta_bytes;
          result.degraded_on_memory = degraded && on_memory;
          enqueue_upgrade = degraded && options_.upgrade_degraded_plans;
        } else {
          result.status = inserted.status();
        }
      } else if (planned.cancelled) {
        result.status = util::CancelledError(planned.failure_reason);
      } else if (planned.memory_exhausted) {
        result.status = util::ResourceExhaustedError(planned.failure_reason);
      } else if (planned.deadline_exceeded) {
        result.status =
            util::DeadlineExceededError(planned.failure_reason);
      } else {
        result.status = util::InternalError(planned.failure_reason);
      }
    }
  } catch (const std::exception& e) {
    result.status =
        util::InternalError(std::string("planning threw: ") + e.what());
  } catch (...) {
    result.status = util::InternalError("planning threw a non-exception");
  }

  {
    // The cache insert above happens before the in-flight erase, so a
    // concurrent Submit always finds the plan on one path or the other.
    std::lock_guard<std::mutex> lock(mu_);
    if (result.plan != nullptr) {
      ++counters_.planned;
      if (result.quality != core::PlanQuality::kExact) {
        ++counters_.degraded_plans;
      }
      if (result.degraded_on_memory) ++counters_.degraded_on_memory;
    } else {
      ++counters_.failures;
      if (result.status.code() == util::StatusCode::kCancelled) {
        ++counters_.cancelled;
      }
    }
    if (enqueue_upgrade && !stopping_) {
      EnqueueUpgradeLocked(job.hash, job.graph);
    }
    in_flight_.erase(job.hash);
  }
  job.promise->set_value(std::move(result));
}

void SchedulerService::EnqueueUpgradeLocked(const graph::GraphHash& hash,
                                            const graph::Graph& graph) {
  if (!upgrading_.insert(hash).second) return;  // one upgrade per hash
  Job upgrade;
  upgrade.hash = hash;
  upgrade.graph = graph;
  upgrade.request = RequestOptions{};  // no deadline: the exact search
  upgrade.submitted = Clock::now();
  upgrade.is_upgrade = true;
  upgrade.not_before = Clock::now();
  queue_.push_back(std::move(upgrade));
  work_ready_.notify_one();
}

void SchedulerService::RunUpgradeJob(Job job) {
  bool success = false;
  try {
    core::PipelineOptions popts = options_.pipeline;
    popts.deadline_seconds = std::numeric_limits<double>::infinity();
    popts.degrade_on_deadline = false;
    // Upgrades run under the same governor as foreground planning: an
    // exhausted budget fails the attempt into the retry/backoff path.
    popts.memory_budget = options_.planning_budget;
    core::PipelineResult planned = core::Pipeline(popts).Run(job.graph);
    if (planned.success && !planned.degraded) {
      const std::shared_ptr<const CachedPlan> current =
          cache_.Lookup(job.hash);
      std::int64_t saved = 0;
      if (current != nullptr) {
        saved = current->result.peak_bytes - planned.peak_bytes;
      }
      // Replace only while the entry is still degraded (or evicted): a
      // concurrent exact plan must not be clobbered. A governed arena-
      // planning refusal falls into the retry path like any failure.
      if (current == nullptr ||
          current->quality != core::PlanQuality::kExact) {
        util::StatusOr<std::shared_ptr<const CachedPlan>> upgraded =
            cache_.InsertGoverned(job.hash, std::move(planned),
                                  options_.planning_budget);
        if (!upgraded.ok()) throw std::runtime_error("upgrade refused");
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.upgrades;
      counters_.upgrade_saved_bytes += std::max<std::int64_t>(0, saved);
      upgrading_.erase(job.hash);
      success = true;
    }
  } catch (...) {
    // Fall through to the retry path; the worker must survive.
  }
  if (success) return;

  std::lock_guard<std::mutex> lock(mu_);
  job.attempt += 1;
  if (job.attempt >= options_.max_upgrade_attempts || stopping_) {
    ++counters_.upgrade_failures;
    upgrading_.erase(job.hash);
    return;
  }
  // Exponential backoff: base * 2^(attempt-1).
  const double backoff = options_.upgrade_backoff_seconds *
                         static_cast<double>(1 << (job.attempt - 1));
  job.not_before = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      Seconds(backoff));
  delayed_.push_back(std::move(job));
  work_ready_.notify_one();
}

ServeResult SchedulerService::Schedule(const graph::Graph& graph,
                                       const RequestOptions& request) {
  const Submission submission = Submit(graph, request);
  ServeResult result = submission.future.get();
  result.cache_hit = submission.cache_hit;
  result.coalesced = submission.coalesced;
  return result;
}

std::vector<ServeResult> SchedulerService::ScheduleBatch(
    const std::vector<const graph::Graph*>& batch,
    const RequestOptions& request) {
  std::vector<Submission> submissions;
  submissions.reserve(batch.size());
  for (const graph::Graph* graph : batch) {
    SERENITY_CHECK(graph != nullptr);
    submissions.push_back(Submit(*graph, request));
  }
  std::vector<ServeResult> results;
  results.reserve(batch.size());
  for (const Submission& submission : submissions) {
    ServeResult result = submission.future.get();
    result.cache_hit = submission.cache_hit;
    result.coalesced = submission.coalesced;
    results.push_back(std::move(result));
  }
  return results;
}

ServiceStats SchedulerService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = counters_;
  }
  s.cache = cache_.stats();
  return s;
}

}  // namespace serenity::serve
