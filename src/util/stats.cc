#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace serenity::util {

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    SERENITY_CHECK_GT(v, 0.0) << "geometric mean requires positive values";
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double ArithmeticMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Percentile(std::vector<double> values, double p) {
  SERENITY_CHECK(!values.empty());
  SERENITY_CHECK_GE(p, 0.0);
  SERENITY_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<CdfPoint> EmpiricalCdf(const std::vector<double>& samples,
                                   int num_points) {
  SERENITY_CHECK(!samples.empty());
  SERENITY_CHECK_GE(num_points, 2);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted.front();
  const double hi = sorted.back();
  std::vector<CdfPoint> cdf;
  cdf.reserve(static_cast<std::size_t>(num_points));
  for (int i = 0; i < num_points; ++i) {
    const double value =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(num_points - 1);
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), value);
    const double fraction = static_cast<double>(it - sorted.begin()) /
                            static_cast<double>(sorted.size());
    cdf.push_back({value, fraction});
  }
  return cdf;
}

double FractionAtOrBelow(const std::vector<double>& samples,
                         double threshold) {
  if (samples.empty()) return 0.0;
  std::size_t count = 0;
  for (double s : samples) {
    if (s <= threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(samples.size());
}

}  // namespace serenity::util
