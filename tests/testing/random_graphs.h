// Random-graph helpers shared by the property-based tests.
#ifndef SERENITY_TESTS_TESTING_RANDOM_GRAPHS_H_
#define SERENITY_TESTS_TESTING_RANDOM_GRAPHS_H_

#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace serenity::testing {

struct RandomDagOptions {
  int num_ops = 8;         // ops beyond the input
  int max_channels = 4;    // tensor sizes vary within [1, max_channels]
  int spatial = 16;        // 16x16xC float32 -> C KB
  double extra_edge_p = 0.3;  // chance of a second operand (add/concat)
  bool join_sinks = true;  // concat all leftover sinks into one output
};

// A connected random DAG of conv/relu/add/concat ops. Insertion order is a
// valid topological order; every node is reachable from the input.
inline graph::Graph RandomDag(util::Rng& rng, const RandomDagOptions& opts,
                              const std::string& name) {
  graph::GraphBuilder b(name);
  std::vector<graph::NodeId> pool;
  pool.push_back(b.Input(
      graph::TensorShape{1, opts.spatial, opts.spatial,
                         rng.NextInt(1, opts.max_channels)},
      "in"));
  for (int i = 0; i < opts.num_ops; ++i) {
    const graph::NodeId src = pool[static_cast<std::size_t>(
        rng.NextInt(0, static_cast<int>(pool.size()) - 1))];
    const int out_c = rng.NextInt(1, opts.max_channels);
    const int pick = rng.NextInt(0, 3);
    graph::NodeId id = graph::kInvalidNode;
    if (pick == 0 || pool.size() < 2) {
      id = b.Conv1x1(src, out_c, "conv" + std::to_string(i));
    } else if (pick == 1) {
      id = b.Relu(src, "relu" + std::to_string(i));
    } else {
      graph::NodeId other = pool[static_cast<std::size_t>(
          rng.NextInt(0, static_cast<int>(pool.size()) - 1))];
      if (other == src) {
        id = b.Conv1x1(src, out_c, "conv" + std::to_string(i));
      } else if (pick == 2 &&
                 b.shape(src).c == b.shape(other).c) {
        id = b.Add({src, other}, "add" + std::to_string(i));
      } else {
        id = b.Concat({src, other}, "cat" + std::to_string(i));
      }
    }
    pool.push_back(id);
  }
  if (opts.join_sinks) {
    std::vector<graph::NodeId> frontier;
    for (const graph::NodeId id : pool) {
      if (b.graph().consumers(id).empty()) frontier.push_back(id);
    }
    if (frontier.size() >= 2) (void)b.Concat(frontier, "out");
  }
  return std::move(b).Build();
}

}  // namespace serenity::testing

#endif  // SERENITY_TESTS_TESTING_RANDOM_GRAPHS_H_
