#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <sstream>
#include <utility>

#include "serialize/serialize.h"
#include "util/logging.h"

namespace serenity::serve {
namespace {

// Drain responsiveness: the connection loop polls in slices this long, so
// an idle connection notices a drain within one slice.
constexpr double kPollSliceSeconds = 0.25;
// Budget for best-effort shed replies sent outside the worker loop.
constexpr double kShedWriteSeconds = 1.0;
// How often a worker blocked on a planning future re-probes the connection
// for a peer disconnect (and the server for a drain). A dead client's
// planning run is cancelled within about one slice.
constexpr std::chrono::milliseconds kPlanProbeSlice{100};

// True when the peer definitively hung up: a zero-byte MSG_PEEK read is an
// orderly shutdown, a hard error (ECONNRESET & co.) is an abort. Pending
// bytes (a pipelined request) and EAGAIN both mean the peer is alive.
bool PeerClosedNow(int fd) {
  char probe;
  const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;
  if (n < 0) {
    return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
  }
  return false;
}

util::StatusCode ClampCode(util::StatusCode code) {
  return code == util::StatusCode::kOk ? util::StatusCode::kInternal : code;
}

// Tensor body codec: u32 n,h,w,c then the bit-exact f32 payload. Mirrored
// by serve::TcpClient — change both or neither (DESIGN.md "Wire protocol").
void AppendTensor(std::string* out, const runtime::Tensor& tensor) {
  const graph::TensorShape& s = tensor.shape();
  wire::AppendU32(out, static_cast<std::uint32_t>(s.n));
  wire::AppendU32(out, static_cast<std::uint32_t>(s.h));
  wire::AppendU32(out, static_cast<std::uint32_t>(s.w));
  wire::AppendU32(out, static_cast<std::uint32_t>(s.c));
  wire::AppendF32Array(out, tensor.data(),
                       static_cast<std::uint32_t>(tensor.size()));
}

}  // namespace

TcpServer::TcpServer(SchedulerService& service, SessionPool& pool,
                     TcpServerOptions options)
    : service_(service), pool_(pool), options_(std::move(options)) {
  SERENITY_CHECK_GT(options_.num_workers, 0);
  SERENITY_CHECK_GE(options_.max_pending, 0);
}

TcpServer::~TcpServer() {
  if (started_ && !joined_) {
    RequestDrain();
    Join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

util::Status TcpServer::Start() {
  SERENITY_CHECK(!started_) << "Start called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::UnavailableError(std::string("socket: ") +
                                  std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const util::Status status = util::UnavailableError(
        "bind to port " + std::to_string(options_.port) + ": " +
        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const util::Status status =
        util::UnavailableError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return util::OkStatus();
}

void TcpServer::RequestDrain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  // Unblocks the accept loop: on Linux, shutdown on a listening socket
  // makes a blocked accept return with an error.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Unblocks workers parked on a saturated session pool; plan-path workers
  // notice via their per-request probe loop instead.
  drain_cancel_.Cancel();
  queue_ready_.notify_all();
}

void TcpServer::Join() {
  if (!started_ || joined_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    accept_done_ = true;
  }
  queue_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  joined_ = true;
}

void TcpServer::SendShedAndClose(int fd, const char* why,
                                 std::uint64_t TcpServerStats::* counter) {
  wire::Reply reply;
  reply.code = draining_.load(std::memory_order_acquire)
                   ? util::StatusCode::kUnavailable
                   : util::StatusCode::kResourceExhausted;
  reply.retry_after_millis = options_.retry_after_millis;
  reply.message = why;
  // Best-effort: a shed peer that also stopped reading just loses the hint.
  (void)wire::WriteFrame(fd, wire::EncodeReply(reply), kShedWriteSeconds,
                         options_.max_frame_bytes);
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  counters_.*counter += 1;
  counters_.replies_error += 1;
}

void TcpServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EINVAL/EBADF: the listen socket was shut down for drain. Anything
      // else on a healthy socket is transient (EMFILE, ECONNABORTED).
      if (draining_.load(std::memory_order_acquire)) break;
      if (errno == EMFILE || errno == ENFILE || errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.accepted += 1;
    }
    if (draining_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.drain_rejects += 1;
      // Close without a reply: drain shutdown already raced this accept.
      ::close(fd);
      continue;
    }
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (static_cast<int>(pending_.size()) < options_.max_pending) {
        pending_.push_back(fd);
        counters_.admitted += 1;
        admitted = true;
      }
    }
    if (admitted) {
      queue_ready_.notify_one();
    } else {
      SendShedAndClose(fd, "admission queue full",
                       &TcpServerStats::admission_sheds);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    accept_done_ = true;
  }
  queue_ready_.notify_all();
}

void TcpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_ready_.wait(lock,
                        [this] { return !pending_.empty() || accept_done_; });
      if (!pending_.empty()) {
        fd = pending_.front();
        pending_.pop_front();
      } else {
        return;  // accept loop gone and nothing queued
      }
    }
    if (draining_.load(std::memory_order_acquire)) {
      SendShedAndClose(fd, "server draining", &TcpServerStats::drain_rejects);
      continue;
    }
    ServeConnection(fd);
  }
}

void TcpServer::ServeConnection(int fd) {
  const auto bump = [this](std::uint64_t TcpServerStats::* field) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.*field += 1;
  };
  double idle_left = options_.idle_timeout_seconds;
  while (true) {
    if (draining_.load(std::memory_order_acquire)) break;
    const double slice = std::min(kPollSliceSeconds, idle_left);
    util::StatusOr<bool> readable = wire::WaitReadable(fd, slice);
    if (!readable.ok()) {
      bump(&TcpServerStats::timeout_closes);
      break;
    }
    if (!*readable) {
      idle_left -= slice;
      if (idle_left <= 0) {
        bump(&TcpServerStats::idle_closes);
        break;
      }
      continue;
    }
    // Data is ready: the frame has effectively begun, so both phases of
    // ReadFrame run under the frame budget.
    util::StatusOr<std::string> frame =
        wire::ReadFrame(fd, options_.max_frame_bytes,
                        options_.frame_timeout_seconds,
                        options_.frame_timeout_seconds);
    if (!frame.ok()) {
      if (frame.status().code() == util::StatusCode::kUnavailable) {
        // Peer closed or reset: the normal end of a persistent connection.
        break;
      }
      if (frame.status().code() == util::StatusCode::kDeadlineExceeded) {
        bump(&TcpServerStats::timeout_closes);
        break;
      }
      // Oversize, empty or corrupt frame: answer with the structured error
      // (best-effort) and cut the connection — the stream cannot be
      // resynchronized after a damaged frame.
      bump(&TcpServerStats::bad_frames);
      wire::Reply reply;
      reply.code = ClampCode(frame.status().code());
      reply.message = frame.status().message();
      (void)wire::WriteFrame(fd, wire::EncodeReply(reply), kShedWriteSeconds,
                             options_.max_frame_bytes);
      bump(&TcpServerStats::replies_error);
      break;
    }
    idle_left = options_.idle_timeout_seconds;
    util::StatusOr<wire::Request> request = wire::DecodeRequest(*frame);
    wire::Reply reply;
    if (!request.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.bad_frames += 1;
    }
    if (request.ok()) {
      bump(&TcpServerStats::requests);
      reply = Handle(*request, fd);
    } else {
      reply.code = ClampCode(request.status().code());
      reply.message = request.status().message();
    }
    const util::Status wrote =
        wire::WriteFrame(fd, wire::EncodeReply(reply),
                         options_.write_timeout_seconds,
                         options_.max_frame_bytes);
    if (!wrote.ok()) {
      bump(&TcpServerStats::timeout_closes);
      break;
    }
    bump(reply.code == util::StatusCode::kOk ? &TcpServerStats::replies_ok
                                             : &TcpServerStats::replies_error);
    if (!request.ok()) break;  // undecodable stream: close after the reply
  }
  ::close(fd);
}

wire::Reply TcpServer::Handle(const wire::Request& request, int fd) {
  wire::Reply reply;
  switch (request.verb) {
    case wire::Verb::kHealth:
      reply.body = draining() ? "draining" : "ok";
      return reply;
    case wire::Verb::kDrain:
      RequestDrain();
      reply.body = "draining";
      return reply;
    case wire::Verb::kStats:
      return HandleStats();
    case wire::Verb::kPlan:
    case wire::Verb::kInfer:
      if (draining()) {
        reply.code = util::StatusCode::kUnavailable;
        reply.retry_after_millis = options_.retry_after_millis;
        reply.message = "server draining";
        return reply;
      }
      return request.verb == wire::Verb::kPlan ? HandlePlan(request, fd)
                                               : HandleInfer(request);
  }
  reply.code = util::StatusCode::kInvalidArgument;
  reply.message = "unknown verb";
  return reply;
}

wire::Reply TcpServer::HandlePlan(const wire::Request& request, int fd) {
  wire::Reply reply;
  util::StatusOr<graph::Graph> graph =
      serialize::GraphFromTextOr(request.body);
  if (!graph.ok()) {
    reply.code = ClampCode(graph.status().code());
    reply.message = graph.status().message();
    return reply;
  }
  RequestOptions options;
  if (request.deadline_seconds > 0) {
    options.deadline_seconds = request.deadline_seconds;
  }
  options.allow_degraded = request.allow_degraded;
  // The worker owns this request's cancel token and fires it when the peer
  // vanishes or a drain begins; because planning is single-flight, the run
  // itself stops only if no *other* live requester still wants the plan.
  auto token = std::make_shared<util::CancelToken>();
  options.cancel = token;
  const Submission submission = service_.Submit(*graph, options);
  // Async wait: probe the connection between slices instead of blocking
  // blind in Schedule — a disconnected client's search must not burn
  // budgeted memory to completion. After cancelling we keep waiting: the
  // planner unwinds at its next poll (bounded by the check cadence) and
  // the future always completes.
  while (submission.future.wait_for(kPlanProbeSlice) !=
         std::future_status::ready) {
    if (!token->cancelled() &&
        (draining_.load(std::memory_order_acquire) || PeerClosedNow(fd))) {
      token->Cancel();
    }
  }
  ServeResult result = submission.future.get();
  result.cache_hit = submission.cache_hit;
  result.coalesced = submission.coalesced;
  if (result.plan == nullptr) {
    reply.code = ClampCode(result.status.code());
    reply.message = result.status.message();
    if (reply.code == util::StatusCode::kResourceExhausted) {
      reply.retry_after_millis = options_.retry_after_millis;
    }
    if (reply.code == util::StatusCode::kCancelled) {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.plan_cancels += 1;
    }
    return reply;
  }
  wire::AppendU64(&reply.body, result.hash.hi);
  wire::AppendU64(&reply.body, result.hash.lo);
  wire::AppendU8(&reply.body, static_cast<std::uint8_t>(result.quality));
  wire::AppendU8(&reply.body, result.cache_hit ? 1 : 0);
  wire::AppendU64(&reply.body, static_cast<std::uint64_t>(
                                   result.plan->plan.arena.arena_bytes));
  return reply;
}

wire::Reply TcpServer::HandleInfer(const wire::Request& request) {
  wire::Reply reply;
  const auto fail = [&reply](util::StatusCode code, std::string message) {
    reply.code = code;
    reply.message = std::move(message);
    return reply;
  };

  wire::ByteReader reader(request.body);
  graph::GraphHash hash;
  std::uint32_t num_inputs = 0;
  util::Status parsed = reader.ReadU64(&hash.hi);
  if (parsed.ok()) parsed = reader.ReadU64(&hash.lo);
  if (parsed.ok()) parsed = reader.ReadU32(&num_inputs);
  if (!parsed.ok()) {
    return fail(util::StatusCode::kInvalidArgument, parsed.message());
  }

  std::shared_ptr<const CachedPlan> plan = service_.cache().Lookup(hash);
  if (plan == nullptr) {
    return fail(util::StatusCode::kNotFound,
                "unknown plan hash " + hash.ToHex() +
                    "; send the graph via the plan verb first");
  }

  // Validate the wire inputs against the scheduled graph's kInput nodes
  // *before* touching the pool: shape mismatches must never reach
  // ArenaExecutor::Run, whose contract is a CHECK.
  const graph::Graph& graph = plan->result.scheduled_graph;
  std::vector<const graph::Node*> input_nodes;
  for (const graph::Node& node : graph.nodes()) {
    if (node.kind == graph::OpKind::kInput) input_nodes.push_back(&node);
  }
  if (num_inputs != input_nodes.size()) {
    return fail(util::StatusCode::kInvalidArgument,
                "graph wants " + std::to_string(input_nodes.size()) +
                    " input tensors, request carries " +
                    std::to_string(num_inputs));
  }
  std::vector<runtime::Tensor> inputs;
  inputs.reserve(input_nodes.size());
  for (const graph::Node* node : input_nodes) {
    std::uint32_t dims[4];
    for (std::uint32_t& d : dims) {
      parsed = reader.ReadU32(&d);
      if (!parsed.ok()) {
        return fail(util::StatusCode::kInvalidArgument, parsed.message());
      }
    }
    const graph::TensorShape& want = node->shape;
    if (dims[0] != static_cast<std::uint32_t>(want.n) ||
        dims[1] != static_cast<std::uint32_t>(want.h) ||
        dims[2] != static_cast<std::uint32_t>(want.w) ||
        dims[3] != static_cast<std::uint32_t>(want.c)) {
      return fail(util::StatusCode::kInvalidArgument,
                  "input tensor shape mismatch for node '" + node->name +
                      "'");
    }
    runtime::Tensor tensor(want);
    parsed = reader.ReadF32Array(tensor.data(),
                                 static_cast<std::uint32_t>(tensor.size()));
    if (!parsed.ok()) {
      return fail(util::StatusCode::kInvalidArgument, parsed.message());
    }
    inputs.push_back(std::move(tensor));
  }
  if (!reader.exhausted()) {
    return fail(util::StatusCode::kInvalidArgument,
                "trailing bytes after the input tensors");
  }

  // The client's budget bounds the checkout wait — a request that cannot
  // get a session before its deadline is shed now, not served late. The
  // drain token makes the wait abandonable: a drain fails it kCancelled
  // within one poll slice instead of holding the worker to the timeout.
  const double wait = request.deadline_seconds > 0
                          ? request.deadline_seconds
                          : options_.default_checkout_wait_seconds;
  util::StatusOr<SessionPool::Lease> lease =
      pool_.Checkout(plan, wait, &drain_cancel_);
  if (!lease.ok()) {
    reply.code = ClampCode(lease.status().code());
    reply.message = lease.status().message();
    if (reply.code == util::StatusCode::kResourceExhausted) {
      reply.retry_after_millis = options_.retry_after_millis;
    }
    return reply;
  }
  (*lease)->Run(inputs);
  const std::vector<runtime::Tensor> sinks = (*lease)->executor().SinkValues();
  wire::AppendU32(&reply.body, static_cast<std::uint32_t>(sinks.size()));
  for (const runtime::Tensor& sink : sinks) AppendTensor(&reply.body, sink);
  return reply;
}

wire::Reply TcpServer::HandleStats() {
  wire::Reply reply;
  const ServiceStats service = service_.stats();
  const SessionPoolStats pool = pool_.stats();
  TcpServerStats server;
  {
    std::lock_guard<std::mutex> lock(mu_);
    server = counters_;
  }
  server.draining = draining();
  std::ostringstream os;
  os << "server.accepted " << server.accepted << "\n"
     << "server.admitted " << server.admitted << "\n"
     << "server.admission_sheds " << server.admission_sheds << "\n"
     << "server.drain_rejects " << server.drain_rejects << "\n"
     << "server.requests " << server.requests << "\n"
     << "server.replies_ok " << server.replies_ok << "\n"
     << "server.replies_error " << server.replies_error << "\n"
     << "server.bad_frames " << server.bad_frames << "\n"
     << "server.idle_closes " << server.idle_closes << "\n"
     << "server.timeout_closes " << server.timeout_closes << "\n"
     << "server.plan_cancels " << server.plan_cancels << "\n"
     << "server.draining " << (server.draining ? 1 : 0) << "\n"
     << "pool.checkouts " << pool.checkouts << "\n"
     << "pool.reuses " << pool.reuses << "\n"
     << "pool.creations " << pool.creations << "\n"
     << "pool.returns " << pool.returns << "\n"
     << "pool.waits " << pool.waits << "\n"
     << "pool.sheds " << pool.sheds << "\n"
     << "pool.cancelled_waits " << pool.cancelled_waits << "\n"
     << "pool.budget_denials " << pool.budget_denials << "\n"
     << "pool.evictions " << pool.evictions << "\n"
     << "pool.sessions_idle " << pool.sessions_idle << "\n"
     << "pool.sessions_leased " << pool.sessions_leased << "\n"
     << "pool.arena_bytes_pooled " << pool.arena_bytes_pooled << "\n"
     << "service.requests " << service.requests << "\n"
     << "service.cache_hits " << service.cache_hits << "\n"
     << "service.coalesced " << service.coalesced << "\n"
     << "service.planned " << service.planned << "\n"
     << "service.failures " << service.failures << "\n"
     << "service.degraded_plans " << service.degraded_plans << "\n"
     << "service.cancelled " << service.cancelled << "\n"
     << "service.admission_sheds " << service.admission_sheds << "\n"
     << "service.degraded_on_memory " << service.degraded_on_memory << "\n"
     << "cache.entries " << service.cache.entries << "\n"
     << "cache.bytes_in_use " << service.cache.bytes_in_use << "\n";
  const auto governor_lines = [&os](const char* name,
                                    const util::MemoryBudget* budget) {
    if (budget == nullptr) return;
    os << "governor." << name << ".limit_bytes " << budget->limit_bytes()
       << "\n"
       << "governor." << name << ".used_bytes " << budget->used_bytes()
       << "\n"
       << "governor." << name << ".peak_bytes " << budget->peak_bytes()
       << "\n"
       << "governor." << name << ".denials " << budget->denials() << "\n";
  };
  governor_lines("root", options_.governor);
  governor_lines("planning", service_.options().planning_budget);
  governor_lines("sessions", pool_.options().arena_budget);
  reply.body = os.str();
  return reply;
}

TcpServerStats TcpServer::stats() const {
  TcpServerStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = counters_;
  }
  out.draining = draining();
  return out;
}

}  // namespace serenity::serve
