// TcpServer + TcpClient: the serve wire protocol end to end over real
// loopback sockets — roundtrips, structured errors, overload shedding,
// deadline propagation and graceful drain.
#include "serve/tcp_server.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "models/swiftnet.h"
#include "runtime/executor.h"
#include "serialize/serialize.h"
#include "serve/tcp_client.h"
#include "testing/runtime_inputs.h"
#include "testing/sink_compare.h"

namespace serenity::serve {
namespace {

struct Harness {
  SchedulerService service;
  SessionPool pool;
  TcpServer server;

  explicit Harness(TcpServerOptions options = {})
      : server(service, pool, options) {
    const util::Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
};

TEST(TcpServer, HealthAndStatsRoundtrip) {
  Harness h;
  util::StatusOr<TcpClient> client = TcpClient::Connect(h.server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  util::StatusOr<std::string> health = client->Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(*health, "ok");
  util::StatusOr<std::string> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("pool.checkouts 0"), std::string::npos);
  EXPECT_NE(stats->find("server.requests"), std::string::npos);
}

TEST(TcpServer, PlanThenInferMatchesReferenceBitForBit) {
  Harness h;
  const graph::Graph g = models::MakeSwiftNetCellA();
  util::StatusOr<TcpClient> client = TcpClient::Connect(h.server.port());
  ASSERT_TRUE(client.ok());

  util::StatusOr<RemotePlan> plan = client->Plan(serialize::ToText(g));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->cache_hit);
  EXPECT_GT(plan->arena_bytes, 0);

  // The served sinks must be the reference executor's, bit for bit, on the
  // scheduled graph the server planned.
  const std::shared_ptr<const CachedPlan> cached =
      h.service.cache().Lookup(plan->hash);
  ASSERT_NE(cached, nullptr);
  const std::vector<runtime::Tensor> inputs =
      serenity::testing::RandomInputsFor(cached->result.scheduled_graph, 7);
  util::StatusOr<std::vector<runtime::Tensor>> sinks =
      client->Infer(plan->hash, inputs);
  ASSERT_TRUE(sinks.ok()) << sinks.status().ToString();

  runtime::ReferenceExecutor reference(cached->result.scheduled_graph);
  reference.Run(inputs, cached->plan.schedule);
  EXPECT_EQ(serenity::testing::DescribeSinkDivergence(*sinks,
                                                      reference.SinkValues()),
            "");

  // Re-planning the same structural graph is a cache hit.
  util::StatusOr<RemotePlan> again = client->Plan(serialize::ToText(g));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  EXPECT_EQ(again->hash, plan->hash);
}

TEST(TcpServer, MalformedGraphAndUnknownHashAreStructuredErrors) {
  Harness h;
  util::StatusOr<TcpClient> client = TcpClient::Connect(h.server.port());
  ASSERT_TRUE(client.ok());

  util::StatusOr<RemotePlan> bad =
      client->Plan("node 0 conv2d float32 x shape=banana buffer=0 inputs=");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);

  graph::GraphHash unknown{0xdead, 0xbeef};
  util::StatusOr<std::vector<runtime::Tensor>> sinks =
      client->Infer(unknown, {});
  ASSERT_FALSE(sinks.ok());
  EXPECT_EQ(sinks.status().code(), util::StatusCode::kNotFound);

  // The connection survived both errors: a good request still works.
  EXPECT_TRUE(client->Health().ok());
}

TEST(TcpServer, InferShapeMismatchRejectedBeforeExecution) {
  Harness h;
  const graph::Graph g = models::MakeSwiftNetCellB();
  util::StatusOr<TcpClient> client = TcpClient::Connect(h.server.port());
  ASSERT_TRUE(client.ok());
  util::StatusOr<RemotePlan> plan = client->Plan(serialize::ToText(g));
  ASSERT_TRUE(plan.ok());

  // Wrong-shaped input: structured kInvalidArgument, no abort, no crash.
  std::vector<runtime::Tensor> wrong;
  wrong.push_back(runtime::Tensor(graph::TensorShape{1, 1, 1, 1}));
  util::StatusOr<std::vector<runtime::Tensor>> sinks =
      client->Infer(plan->hash, wrong);
  ASSERT_FALSE(sinks.ok());
  EXPECT_EQ(sinks.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(client->Health().ok());
}

TEST(TcpServer, PoolSaturationShedsWithRetryAfter) {
  Harness h;
  const graph::Graph g = models::MakeSwiftNetCellA();
  util::StatusOr<TcpClient> client = TcpClient::Connect(h.server.port());
  ASSERT_TRUE(client.ok());
  util::StatusOr<RemotePlan> plan = client->Plan(serialize::ToText(g));
  ASSERT_TRUE(plan.ok());

  // Hold every session the pool may build for this plan, then send an
  // infer with a tiny deadline: it must shed with retry-after, fast.
  std::vector<SessionPool::Lease> held;
  const std::shared_ptr<const CachedPlan> cached =
      h.service.cache().Lookup(plan->hash);
  for (int i = 0; i < h.pool.options().max_sessions_per_plan; ++i) {
    util::StatusOr<SessionPool::Lease> lease = h.pool.Checkout(cached, 0);
    ASSERT_TRUE(lease.ok());
    held.push_back(std::move(*lease));
  }
  const std::vector<runtime::Tensor> inputs =
      serenity::testing::RandomInputsFor(cached->result.scheduled_graph, 1);
  util::StatusOr<std::vector<runtime::Tensor>> shed =
      client->Infer(plan->hash, inputs, /*deadline_seconds=*/0.05);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_GT(client->retry_after_millis(), 0u);

  // Capacity back: the same request now serves.
  held.clear();
  EXPECT_TRUE(client->Infer(plan->hash, inputs).ok());
}

TEST(TcpServer, DrainStopsNewWorkAndJoinFinishes) {
  Harness h;
  const graph::Graph g = models::MakeSwiftNetCellA();
  util::StatusOr<TcpClient> client = TcpClient::Connect(h.server.port());
  ASSERT_TRUE(client.ok());
  util::StatusOr<RemotePlan> plan = client->Plan(serialize::ToText(g));
  ASSERT_TRUE(plan.ok());

  ASSERT_TRUE(client->Drain().ok());
  EXPECT_TRUE(h.server.draining());

  // New connections are rejected (shed reply or refused outright).
  util::StatusOr<TcpClient> late = TcpClient::Connect(h.server.port());
  if (late.ok()) {
    util::StatusOr<std::string> health = late->Health();
    EXPECT_FALSE(health.ok());
  }
  h.server.Join();
  const TcpServerStats stats = h.server.stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_GE(stats.replies_ok, 2u);  // plan + drain replies made it out
}

TEST(TcpServer, AdmissionQueueOverflowSheds) {
  TcpServerOptions options;
  options.num_workers = 1;   // one connection in service at a time
  options.max_pending = 1;   // one connection may wait
  Harness h(options);

  // Occupy the single worker with a held-open connection — the completed
  // roundtrip proves the worker popped it off the admission queue.
  util::StatusOr<TcpClient> holder = TcpClient::Connect(h.server.port());
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(holder->Health().ok());

  // This connection fills the one admission slot (it sends nothing and
  // just waits for a worker).
  util::StatusOr<TcpClient> queued = TcpClient::Connect(h.server.port());
  ASSERT_TRUE(queued.ok());

  // Every further connection must now be shed at admission,
  // deterministically, with the structured retry-after reply.
  int sheds = 0;
  for (int i = 0; i < 3; ++i) {
    util::StatusOr<TcpClient> extra = TcpClient::Connect(h.server.port());
    ASSERT_TRUE(extra.ok());
    util::StatusOr<std::string> health = extra->Health();
    ASSERT_FALSE(health.ok());
    EXPECT_EQ(health.status().code(), util::StatusCode::kResourceExhausted);
    EXPECT_GT(extra->retry_after_millis(), 0u);
    ++sheds;
  }
  EXPECT_EQ(sheds, 3);
  EXPECT_EQ(h.server.stats().admission_sheds, 3u);

  // Release the worker: the queued connection gets served after all.
  holder->Close();
  EXPECT_TRUE(queued->Health(/*timeout_seconds=*/10.0).ok());
}

TEST(TcpServer, ConcurrentClientsAllBitIdentical) {
  TcpServerOptions options;
  options.num_workers = 4;
  Harness h(options);
  const graph::Graph g = models::MakeSwiftNetCellC();
  util::StatusOr<TcpClient> planner = TcpClient::Connect(h.server.port());
  ASSERT_TRUE(planner.ok());
  util::StatusOr<RemotePlan> plan = planner->Plan(serialize::ToText(g));
  ASSERT_TRUE(plan.ok());
  const std::shared_ptr<const CachedPlan> cached =
      h.service.cache().Lookup(plan->hash);
  ASSERT_NE(cached, nullptr);

  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::vector<std::string> divergences(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      util::StatusOr<TcpClient> client = TcpClient::Connect(h.server.port());
      if (!client.ok()) {
        divergences[static_cast<std::size_t>(c)] = client.status().ToString();
        return;
      }
      for (int r = 0; r < kRequests; ++r) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(c) * 1000 + static_cast<std::uint64_t>(r);
        const std::vector<runtime::Tensor> inputs =
            serenity::testing::RandomInputsFor(cached->result.scheduled_graph,
                                               seed);
        util::StatusOr<std::vector<runtime::Tensor>> sinks =
            client->Infer(plan->hash, inputs, /*deadline_seconds=*/30.0);
        if (!sinks.ok()) {
          divergences[static_cast<std::size_t>(c)] = sinks.status().ToString();
          return;
        }
        runtime::ReferenceExecutor reference(cached->result.scheduled_graph);
        reference.Run(inputs, cached->plan.schedule);
        const std::string divergence = serenity::testing::DescribeSinkDivergence(
            *sinks, reference.SinkValues());
        if (!divergence.empty()) {
          divergences[static_cast<std::size_t>(c)] = divergence;
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(divergences[static_cast<std::size_t>(c)], "") << "client " << c;
  }
  const SessionPoolStats pool = h.pool.stats();
  EXPECT_EQ(pool.checkouts, static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(pool.returns, pool.checkouts);
  EXPECT_EQ(pool.sessions_leased, 0u);
}

}  // namespace
}  // namespace serenity::serve
