// The SERENITY intermediate representation: a DAG of operator nodes whose
// output values map onto activation buffers.
//
// Values vs. buffers (DESIGN.md §3.1): every node defines one value; by
// default each value owns a fresh buffer sized to its output tensor. The
// identity graph rewriter introduces ops whose value lives inside an
// existing buffer (in-place accumulation, concat views), which is how the
// paper's µpeak = max_i(|x_i| + |y|) memory behaviour is expressed without
// special-casing the scheduler.
#ifndef SERENITY_GRAPH_GRAPH_H_
#define SERENITY_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace serenity::graph {

struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  OpKind kind = OpKind::kIdentity;
  DataType dtype = DataType::kFloat32;
  TensorShape shape;            // output tensor shape
  std::vector<NodeId> inputs;   // data dependencies, in operand order
  ConvAttrs conv;               // meaningful iff IsConvLike(kind)
  int concat_axis = 3;          // channel axis for concat/concat-view

  // Output buffer. kInvalidBuffer at AddNode time means "allocate a fresh
  // buffer sized to `shape`".
  BufferId buffer = kInvalidBuffer;
  // Channel offset of this value inside its buffer (used by partial
  // depthwise convolutions writing into a slice of the shared output).
  int buffer_channel_offset = 0;

  // Identity-preservation metadata for the reference runtime: partial ops
  // must read the same (virtual) weight tensor as the op they replaced.
  std::uint64_t weight_seed = 0;
  int in_channel_offset = 0;  // slice origin into the virtual weight tensor
  int weight_in_channels = 0;  // in-channels of the virtual weight tensor

  std::int64_t weight_count = 0;  // parameter count (Table 1)

  std::int64_t OutputBytes() const {
    return shape.NumElements() *
           static_cast<std::int64_t>(SizeOf(dtype));
  }
};

struct Buffer {
  std::int64_t size_bytes = 0;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  // Appends a node. `node.inputs` must reference existing nodes. Assigns the
  // node id; creates a dedicated buffer when node.buffer is kInvalidBuffer.
  // Returns the id.
  NodeId AddNode(Node node);

  // Creates a standalone buffer (for rewriter-shared accumulators/views).
  BufferId AddBuffer(std::int64_t size_bytes);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_buffers() const { return static_cast<int>(buffers_.size()); }
  int num_edges() const { return num_edges_; }

  const Node& node(NodeId id) const {
    SERENITY_CHECK_GE(id, 0);
    SERENITY_CHECK_LT(id, num_nodes());
    return nodes_[static_cast<std::size_t>(id)];
  }
  Node& mutable_node(NodeId id) {
    return const_cast<Node&>(static_cast<const Graph*>(this)->node(id));
  }
  const std::vector<Node>& nodes() const { return nodes_; }

  const Buffer& buffer(BufferId id) const {
    SERENITY_CHECK_GE(id, 0);
    SERENITY_CHECK_LT(id, num_buffers());
    return buffers_[static_cast<std::size_t>(id)];
  }

  // Nodes that consume `id`'s value, in insertion order (with duplicates for
  // multi-operand reads collapsed).
  const std::vector<NodeId>& consumers(NodeId id) const {
    SERENITY_CHECK_GE(id, 0);
    SERENITY_CHECK_LT(id, num_nodes());
    return consumers_[static_cast<std::size_t>(id)];
  }

  std::vector<NodeId> Sources() const;  // nodes with no inputs
  std::vector<NodeId> Sinks() const;    // nodes with no consumers

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Structural validation: referenced ids in range, acyclicity (AddNode's
  // append-only discipline guarantees it, re-checked defensively), shape
  // consistency per op kind, aliasing metadata sanity. Returns a list of
  // human-readable problems; empty means valid.
  std::vector<std::string> Validate() const;
  void ValidateOrDie() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Buffer> buffers_;
  std::vector<std::vector<NodeId>> consumers_;
  int num_edges_ = 0;
};

// Total multiply-accumulate operations of the graph (Table 1 "# MAC").
std::int64_t CountMacs(const Graph& graph);

// Total parameter count of the graph (Table 1 "# WEIGHT").
std::int64_t CountWeights(const Graph& graph);

// MACs contributed by a single node.
std::int64_t NodeMacs(const Node& node, const Graph& graph);

}  // namespace serenity::graph

#endif  // SERENITY_GRAPH_GRAPH_H_
