#include "graph/analysis.h"

#include <algorithm>

namespace serenity::graph {

AdjacencyBitsets BuildAdjacency(const Graph& graph) {
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  AdjacencyBitsets adj;
  adj.preds.assign(n, util::Bitset64(n));
  adj.succs.assign(n, util::Bitset64(n));
  for (const Node& node : graph.nodes()) {
    for (NodeId input : node.inputs) {
      adj.preds[static_cast<std::size_t>(node.id)].Set(
          static_cast<std::size_t>(input));
      adj.succs[static_cast<std::size_t>(input)].Set(
          static_cast<std::size_t>(node.id));
    }
  }
  return adj;
}

ReachabilityBitsets BuildReachability(const Graph& graph) {
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  ReachabilityBitsets reach;
  reach.ancestors.assign(n, util::Bitset64(n));
  reach.descendants.assign(n, util::Bitset64(n));
  // Insertion order is topological (enforced by Graph::AddNode), so a single
  // forward pass accumulates ancestors and a backward pass descendants.
  for (const Node& node : graph.nodes()) {
    auto& anc = reach.ancestors[static_cast<std::size_t>(node.id)];
    for (NodeId input : node.inputs) {
      anc |= reach.ancestors[static_cast<std::size_t>(input)];
      anc.Set(static_cast<std::size_t>(input));
    }
  }
  for (int id = graph.num_nodes() - 1; id >= 0; --id) {
    auto& desc = reach.descendants[static_cast<std::size_t>(id)];
    for (NodeId consumer : graph.consumers(static_cast<NodeId>(id))) {
      desc |= reach.descendants[static_cast<std::size_t>(consumer)];
      desc.Set(static_cast<std::size_t>(consumer));
    }
  }
  return reach;
}

BufferUseTable BufferUseTable::Build(const Graph& graph) {
  const std::size_t num_nodes = static_cast<std::size_t>(graph.num_nodes());
  const std::size_t num_buffers =
      static_cast<std::size_t>(graph.num_buffers());
  BufferUseTable table;
  table.buffers.assign(num_buffers, BufferUse{});
  for (std::size_t b = 0; b < num_buffers; ++b) {
    table.buffers[b].size_bytes =
        graph.buffer(static_cast<BufferId>(b)).size_bytes;
    table.buffers[b].touchers = util::Bitset64(num_nodes);
  }
  table.read_buffers.assign(num_nodes, {});
  table.touched_buffers.assign(num_nodes, {});

  for (const Node& node : graph.nodes()) {
    const std::size_t id = static_cast<std::size_t>(node.id);
    BufferUse& own = table.buffers[static_cast<std::size_t>(node.buffer)];
    own.writers.push_back(node.id);
    own.touchers.Set(id);

    auto& reads = table.read_buffers[id];
    for (NodeId input : node.inputs) {
      const BufferId rb = graph.node(input).buffer;
      if (std::find(reads.begin(), reads.end(), rb) == reads.end()) {
        reads.push_back(rb);
        BufferUse& use = table.buffers[static_cast<std::size_t>(rb)];
        use.readers.push_back(node.id);
        use.touchers.Set(id);
      }
    }
    auto& touched = table.touched_buffers[id];
    touched = reads;
    if (std::find(touched.begin(), touched.end(), node.buffer) ==
        touched.end()) {
      touched.push_back(node.buffer);
    }
  }
  for (BufferUse& use : table.buffers) {
    use.is_sink = use.readers.empty();
  }
  return table;
}

std::vector<std::int64_t> BufferUseTable::MinStepFootprints() const {
  std::vector<std::int64_t> bytes(touched_buffers.size(), 0);
  for (std::size_t u = 0; u < touched_buffers.size(); ++u) {
    for (const BufferId b : touched_buffers[u]) {
      bytes[u] += buffers[static_cast<std::size_t>(b)].size_bytes;
    }
  }
  return bytes;
}

}  // namespace serenity::graph
