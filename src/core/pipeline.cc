#include "core/pipeline.h"

#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace serenity::core {

PipelineResult Pipeline::Run(const graph::Graph& graph) const {
  util::Stopwatch total_clock;
  PipelineResult result;

  // Stage 1: identity graph rewriting.
  util::Stopwatch stage_clock;
  if (options_.enable_rewriting) {
    rewrite::RewriteResult rewritten =
        rewrite::RewriteGraph(graph, options_.rewrite);
    result.scheduled_graph = std::move(rewritten.graph);
    result.rewrite_report = rewritten.report;
  } else {
    result.scheduled_graph = graph;
    result.rewrite_report.nodes_before = graph.num_nodes();
    result.rewrite_report.nodes_after = graph.num_nodes();
  }
  result.rewrite_seconds = stage_clock.ElapsedSeconds();

  // Stage 2: divide and conquer.
  stage_clock.Restart();
  Partition partition;
  if (options_.enable_partitioning) {
    partition = PartitionAtCuts(result.scheduled_graph, options_.partition);
  } else {
    // One segment: the whole graph.
    Segment whole;
    whole.subgraph = result.scheduled_graph;
    whole.orig_ids.resize(
        static_cast<std::size_t>(result.scheduled_graph.num_nodes()));
    for (graph::NodeId id = 0; id < result.scheduled_graph.num_nodes();
         ++id) {
      whole.orig_ids[static_cast<std::size_t>(id)] = id;
    }
    partition.segments.push_back(std::move(whole));
  }
  result.segment_sizes = partition.SegmentSizes();
  result.partition_seconds = stage_clock.ElapsedSeconds();

  // Stage 3: schedule each segment (conquer), then combine.
  stage_clock.Restart();
  std::vector<sched::Schedule> segment_schedules;
  segment_schedules.reserve(partition.segments.size());
  for (const Segment& segment : partition.segments) {
    if (options_.enable_soft_budgeting) {
      SoftBudgetResult sb =
          ScheduleWithSoftBudget(segment.subgraph, options_.soft_budget);
      result.states_expanded += sb.TotalStates();
      if (sb.status != DpStatus::kSolution) {
        result.failure_reason = "segment '" + segment.subgraph.name() +
                                "' did not converge: " + ToString(sb.status);
        result.schedule_seconds = stage_clock.ElapsedSeconds();
        result.total_seconds = total_clock.ElapsedSeconds();
        return result;
      }
      segment_schedules.push_back(std::move(sb.schedule));
    } else {
      const DpResult dp = ScheduleDp(segment.subgraph, options_.dp);
      result.states_expanded += dp.states_expanded;
      if (dp.status != DpStatus::kSolution) {
        result.failure_reason = "segment '" + segment.subgraph.name() +
                                "' failed: " + ToString(dp.status);
        result.schedule_seconds = stage_clock.ElapsedSeconds();
        result.total_seconds = total_clock.ElapsedSeconds();
        return result;
      }
      segment_schedules.push_back(dp.schedule);
    }
  }
  result.schedule = CombineSegmentSchedules(partition, segment_schedules);
  result.schedule_seconds = stage_clock.ElapsedSeconds();

  SERENITY_CHECK(
      sched::IsTopologicalOrder(result.scheduled_graph, result.schedule))
      << "combined schedule is not a valid topological order";
  result.peak_bytes =
      sched::PeakFootprint(result.scheduled_graph, result.schedule);
  result.success = true;
  result.total_seconds = total_clock.ElapsedSeconds();
  return result;
}

}  // namespace serenity::core
