#include "core/soft_budget.h"

#include <algorithm>

#include "core/state_store.h"
#include "sched/baselines.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace serenity::core {

SoftBudgetResult ScheduleWithSoftBudget(const graph::Graph& graph,
                                        const SoftBudgetOptions& options) {
  util::Stopwatch clock;
  SoftBudgetResult result;

  // Hard budget τmax: the peak of Kahn's schedule (Algorithm 2 line 3).
  // Any τ ≥ τmax admits at least that schedule, so τmax is always feasible.
  const sched::Schedule kahn = sched::KahnFifoSchedule(graph);
  result.tau_max = sched::PeakFootprint(graph, kahn);

  // Binary-search window: µ* lies in (lo, hi]. lo rises on 'no solution'
  // (τ < µ*), hi falls on... nothing — a timeout says nothing about µ*, only
  // that this τ explores too slowly, so it bounds the *search* from above.
  std::int64_t lo = 0;
  std::int64_t hi = result.tau_max;
  std::int64_t tau = result.tau_max;

  // Branch-and-bound incumbent: τmax is achievable (it is Kahn's own peak),
  // so it always upper-bounds µ*; a caller-provided achievable bound (e.g.
  // Pipeline's greedy/beam seed) can only tighten it. Bound pruning keeps
  // the returned peak and schedule bit-identical per attempt, so the
  // binary-search trajectory is unchanged wherever attempts complete.
  DpOptions dp_options;
  dp_options.step_timeout_seconds = options.step_timeout_seconds;
  dp_options.max_states = options.max_states_per_attempt;
  dp_options.num_threads = options.num_threads;
  dp_options.adaptive_parallelism = options.adaptive_parallelism;
  dp_options.memory_budget = options.memory_budget;
  dp_options.cancel = options.cancel;
  if (options.enable_bound_pruning) {
    dp_options.incumbent_bytes =
        std::min(options.incumbent_bytes, result.tau_max);
  }

  // Cross-attempt dominance: one table outlives every attempt (and the
  // fallback), keyed on the meta-search's fixed incumbent — that fixity is
  // what makes a dead signature from one τ sound under every other τ
  // (DESIGN.md "Admissible bounds & dominance"). Later attempts re-walk
  // mostly the same lattice prefix, so the table pays for itself on the
  // first re-search.
  DominanceTable dominance;
  if (options.enable_bound_pruning && options.enable_dominance &&
      options.dominance_max_entries > 0) {
    dominance.Init(
        (static_cast<std::size_t>(graph.num_nodes()) + 63) / 64,
        dp_options.incumbent_bytes, options.dominance_max_entries);
    dp_options.dominance = &dominance;
  }

  // Wall-clock guard: seconds left before the caller's deadline. Checked
  // between attempts and clamped onto each attempt's per-level timeout, so
  // overshoot is bounded by one level granule.
  const auto remaining = [&] {
    return options.deadline_seconds - clock.ElapsedSeconds();
  };
  // Every exit path reports how big the shared table got.
  const auto finish = [&]() -> SoftBudgetResult& {
    result.dominance_entries = dominance.size();
    result.total_seconds = clock.ElapsedSeconds();
    return result;
  };

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    if (remaining() <= 0) {
      return finish();  // status stays kTimeout; caller may degrade
    }
    dp_options.budget_bytes = tau;
    dp_options.step_timeout_seconds =
        std::min(options.step_timeout_seconds, remaining());
    const DpResult attempt = ScheduleDp(graph, dp_options);
    result.max_level_states =
        std::max(result.max_level_states, attempt.max_level_states);
    result.attempts.push_back(BudgetAttempt{tau, attempt.status,
                                            attempt.states_expanded,
                                            attempt.states_pruned_by_bound,
                                            attempt.pruned,
                                            attempt.seconds});
    if (attempt.status == DpStatus::kSolution) {
      result.status = DpStatus::kSolution;
      result.schedule = attempt.schedule;
      result.peak_bytes = attempt.peak_bytes;
      result.tau_final = tau;
      return finish();
    }
    if (attempt.status == DpStatus::kCancelled) {
      // The caller abandoned the request: stop the meta-search on the spot.
      result.status = DpStatus::kCancelled;
      return finish();
    }
    if (attempt.status == DpStatus::kTimeout ||
        attempt.status == DpStatus::kResourceExhausted) {
      // Too many surviving paths — in time or in bytes: either way a
      // tighter budget prunes more, so treat both as the "too slow" signal
      // and tighten (Algorithm 2 line 11).
      hi = tau;
      tau = lo + (tau - lo) / 2;
    } else {  // kNoSolution: pruned the optimum away (line 14)
      lo = tau;
      tau = tau + (hi - tau) / 2;
    }
    if (tau <= lo || tau >= hi) break;  // window degenerated
  }

  // Fallback: one untimed run at τmax, the only budget known feasible
  // (timeouts say nothing about feasibility, and every 'no solution' τ is
  // infeasible). The state cap is kept as a memory guard — if even this run
  // exceeds it, the graph is genuinely intractable at this granularity and
  // the caller sees kTimeout (the paper's "N/A: infeasible within practical
  // time").
  if (remaining() <= 0) {
    return finish();  // deadline expired: skip the uncapped fallback run
  }
  result.used_fallback = true;
  DpOptions fallback;
  fallback.budget_bytes = result.tau_max;
  // The fallback is normally untimed, but a finite caller deadline bounds
  // it too — a fallback that overruns is reported as kTimeout and the
  // caller degrades rather than blocking the serving thread.
  fallback.step_timeout_seconds = remaining();
  fallback.num_threads = options.num_threads;
  fallback.adaptive_parallelism = options.adaptive_parallelism;
  fallback.incumbent_bytes = dp_options.incumbent_bytes;
  fallback.memory_budget = options.memory_budget;
  fallback.cancel = options.cancel;
  // The fallback profits from everything the failed attempts learned: its
  // incumbent equals theirs, so the shared table's entries stay sound.
  fallback.dominance = dp_options.dominance;
  // The fallback must never cost more than the attempts that failed: the
  // caller's state cap (a memory guard) and byte budget govern it too. The
  // historical escalation to max(attempts*4, 4M) states let a "degraded"
  // run allocate far beyond anything the caller had sanctioned.
  fallback.max_states = options.max_states_per_attempt;
  const DpResult final_run = ScheduleDp(graph, fallback);
  result.max_level_states =
      std::max(result.max_level_states, final_run.max_level_states);
  result.attempts.push_back(BudgetAttempt{result.tau_max, final_run.status,
                                          final_run.states_expanded,
                                          final_run.states_pruned_by_bound,
                                          final_run.pruned,
                                          final_run.seconds});
  result.status = final_run.status;
  if (final_run.status == DpStatus::kSolution) {
    result.schedule = final_run.schedule;
    result.peak_bytes = final_run.peak_bytes;
    result.tau_final = result.tau_max;
  }
  return finish();
}

}  // namespace serenity::core
