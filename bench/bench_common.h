// Shared helpers for the per-figure/table benchmark binaries.
//
// Every binary prints the paper-shaped rows first (so `./bench_x` with no
// arguments reproduces the experiment), then runs its registered
// google-benchmark timing loops.
#ifndef SERENITY_BENCH_BENCH_COMMON_H_
#define SERENITY_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "alloc/arena_planner.h"
#include "core/pipeline.h"
#include "graph/graph.h"
#include "models/zoo.h"
#include "sched/baselines.h"
#include "sched/schedule.h"

namespace serenity::bench {

inline double Kb(std::int64_t bytes) {
  return static_cast<double>(bytes) / 1024.0;
}

// The three configurations of Figures 10/11/12/13/15.
struct CellMeasurement {
  models::BenchmarkCell cell;
  graph::Graph graph;

  // TensorFlow Lite baseline: declaration order + greedy first-fit arena.
  sched::Schedule tflite_schedule;
  std::int64_t tflite_peak = 0;        // liveness-sum footprint
  std::int64_t tflite_arena = 0;       // with the memory allocator

  // Dynamic programming only (graph unchanged).
  core::PipelineResult dp;
  std::int64_t dp_arena = 0;

  // Dynamic programming + identity graph rewriting.
  core::PipelineResult dp_rw;
  std::int64_t dp_rw_arena = 0;
};

inline CellMeasurement MeasureCell(const models::BenchmarkCell& cell) {
  CellMeasurement m;
  m.cell = cell;
  m.graph = cell.factory();

  m.tflite_schedule = sched::TfLiteOrderSchedule(m.graph);
  m.tflite_peak = sched::PeakFootprint(m.graph, m.tflite_schedule);
  m.tflite_arena =
      alloc::PlanArena(m.graph, m.tflite_schedule).arena_bytes;

  core::PipelineOptions dp_only;
  dp_only.enable_rewriting = false;
  m.dp = core::Pipeline(dp_only).Run(m.graph);
  if (m.dp.success) {
    m.dp_arena =
        alloc::PlanArena(m.dp.scheduled_graph, m.dp.schedule).arena_bytes;
  }

  m.dp_rw = core::Pipeline().Run(m.graph);
  if (m.dp_rw.success) {
    m.dp_rw_arena =
        alloc::PlanArena(m.dp_rw.scheduled_graph, m.dp_rw.schedule)
            .arena_bytes;
  }
  return m;
}

inline std::string CellLabel(const models::BenchmarkCell& cell) {
  return cell.group + " / " + cell.name;
}

inline void PrintRule(int width = 110) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

// ------------------------------------------------------------- JSON emitter
//
// Machine-readable results so CI can track the perf trajectory: a bench
// binary invoked with --json=PATH writes its paper-shaped rows as
// {"rows": [{...}, ...]} next to the human-readable table. Values are
// either numbers or strings; rows are flat.

class JsonRows {
 public:
  // Starts a new row.
  void Begin() { rows_.emplace_back(); }

  void Field(const std::string& key, const std::string& value) {
    rows_.back().push_back({key, Quote(value)});
  }
  void Field(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    rows_.back().push_back({key, buffer});
  }
  void Field(const std::string& key, std::int64_t value) {
    rows_.back().push_back({key, std::to_string(value)});
  }
  void Field(const std::string& key, std::uint64_t value) {
    rows_.back().push_back({key, std::to_string(value)});
  }

  // Writes {"rows": [...]} to `path`. Returns false (with a message on
  // stderr) if the file cannot be written — or if no rows were ever begun,
  // so a silently truncated benchmark fails its CI smoke run instead of
  // uploading an empty trajectory point.
  bool WriteTo(const std::string& path) const {
    if (rows_.empty()) {
      std::fprintf(stderr,
                   "refusing to write %s: benchmark emitted zero rows\n",
                   path.c_str());
      return false;
    }
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs("{\"rows\": [", file);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fputs(r == 0 ? "\n  {" : ",\n  {", file);
      for (std::size_t f = 0; f < rows_[r].size(); ++f) {
        std::fprintf(file, "%s%s: %s", f == 0 ? "" : ", ",
                     Quote(rows_[r][f].first).c_str(),
                     rows_[r][f].second.c_str());
      }
      std::fputc('}', file);
    }
    std::fputs("\n]}\n", file);
    const bool ok = std::ferror(file) == 0;
    if (std::fclose(file) != 0 || !ok) {
      std::fprintf(stderr, "error writing %s\n", path.c_str());
      return false;
    }
    return true;
  }

 private:
  static std::string Quote(const std::string& raw) {
    std::string out = "\"";
    for (const char c : raw) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
    return out;
  }

  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

// Extracts a --<name>=VALUE flag from argv (removing it so google-benchmark
// does not see an unknown flag). Returns the value, or "" when absent.
inline std::string TakePrefixFlag(const std::string& prefix, int* argc,
                                  char** argv) {
  std::string value;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;  // keep main's argv null-terminated
  return value;
}

inline std::string TakeJsonFlag(int* argc, char** argv) {
  return TakePrefixFlag("--json=", argc, argv);
}

}  // namespace serenity::bench

#endif  // SERENITY_BENCH_BENCH_COMMON_H_
