// Network chaos suite for the TCP serving front end: 1000 seeded runs, each
// driving one socket-level fault at a live TcpServer — torn frames,
// truncated headers, mid-stream closes, slow-loris stalls, injected
// checkout exhaustion, oversize declarations, CRC corruption, and
// protocol garbage. The contract (DESIGN.md "Overload policy"): the server
// never aborts, never hangs, answers damage with structured Status replies
// where a reply is still possible, and every *successful* reply stays
// bit-identical to ReferenceExecutor. A persistent well-behaved probe
// connection verifies both liveness and bit-identity after every fault.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "graph/canonical_hash.h"
#include "models/swiftnet.h"
#include "runtime/executor.h"
#include "serialize/serialize.h"
#include "serve/tcp_client.h"
#include "serve/tcp_server.h"
#include "testing/fault_injection.h"
#include "testing/runtime_inputs.h"
#include "testing/sink_compare.h"
#include "util/crc32.h"

namespace serenity::serve {
namespace {

namespace ftest = serenity::testing;

constexpr int kSeeds = 1000;

std::string FrameFor(const std::string& payload) {
  std::string frame;
  wire::AppendU32(&frame, static_cast<std::uint32_t>(payload.size()));
  wire::AppendU32(&frame, util::Crc32(payload));
  frame += payload;
  return frame;
}

class NetChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TcpServerOptions options;
    options.num_workers = 2;
    options.max_pending = 8;
    options.idle_timeout_seconds = 20.0;   // probe stays connected
    options.frame_timeout_seconds = 0.04;  // loris seeds resolve fast
    options.max_frame_bytes = 1u << 20;
    server_ = std::make_unique<TcpServer>(service_, pool_, options);
    ASSERT_TRUE(server_->Start().ok());
    ftest::SetSocketDelayMillis(80);  // stall > frame timeout

    // Plan the probe graph once; every probe infer verifies against these
    // precomputed reference sinks, bit for bit.
    util::StatusOr<TcpClient> probe = TcpClient::Connect(server_->port());
    ASSERT_TRUE(probe.ok());
    probe_ = std::make_unique<TcpClient>(std::move(*probe));
    const graph::Graph g = models::MakeSwiftNetCellA();
    util::StatusOr<RemotePlan> plan = probe_->Plan(serialize::ToText(g));
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    hash_ = plan->hash;
    const std::shared_ptr<const CachedPlan> cached =
        service_.cache().Lookup(hash_);
    ASSERT_NE(cached, nullptr);
    probe_inputs_ = ftest::RandomInputsFor(cached->result.scheduled_graph, 1234);
    runtime::ReferenceExecutor reference(cached->result.scheduled_graph);
    reference.Run(probe_inputs_, cached->plan.schedule);
    probe_expect_ = reference.SinkValues();
  }

  void TearDown() override { ftest::SetSocketDelayMillis(100); }

  // Liveness + correctness gate after every fault: the probe connection
  // (reconnecting if a fault's collateral closed it) serves an inference
  // whose sinks are bit-identical to the precomputed reference.
  void ExpectServerHealthy(int seed) {
    util::StatusOr<std::vector<runtime::Tensor>> sinks =
        probe_->Infer(hash_, probe_inputs_, /*deadline_seconds=*/10.0,
                      /*timeout_seconds=*/10.0);
    if (!sinks.ok()) {
      util::StatusOr<TcpClient> fresh = TcpClient::Connect(server_->port());
      ASSERT_TRUE(fresh.ok()) << "seed " << seed << ": reconnect failed: "
                              << fresh.status().ToString();
      probe_ = std::make_unique<TcpClient>(std::move(*fresh));
      sinks = probe_->Infer(hash_, probe_inputs_, 10.0, 10.0);
    }
    ASSERT_TRUE(sinks.ok()) << "seed " << seed << ": "
                            << sinks.status().ToString();
    ASSERT_EQ(ftest::DescribeSinkDivergence(*sinks, probe_expect_), "")
        << "seed " << seed;
  }

  util::StatusOr<TcpClient> ChaosClient() {
    return TcpClient::Connect(server_->port());
  }

  SchedulerService service_;
  SessionPool pool_;
  std::unique_ptr<TcpServer> server_;
  std::unique_ptr<TcpClient> probe_;
  graph::GraphHash hash_;
  std::vector<runtime::Tensor> probe_inputs_;
  std::vector<runtime::Tensor> probe_expect_;
};

TEST_F(NetChaosTest, ThousandSeededSocketFaultsNoAbortsNoHangs) {
  std::uint64_t checkout_sheds = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    switch (seed % 8) {
      case 0: {
        // Torn frame: only the first half of the request reaches the
        // server, reported locally as kDataLoss; the server is left with a
        // half frame and a closing peer.
        util::StatusOr<TcpClient> client = ChaosClient();
        ASSERT_TRUE(client.ok());
        ftest::ScopedFault fault(ftest::FaultPoint::kSocketTornFrame);
        util::StatusOr<std::vector<runtime::Tensor>> result =
            client->Infer(hash_, probe_inputs_, 1.0, 1.0);
        EXPECT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
        break;
      }
      case 1: {
        // Truncated header: three bytes of length prefix, then the
        // connection vanishes.
        util::StatusOr<TcpClient> client = ChaosClient();
        ASSERT_TRUE(client.ok());
        const char junk[3] = {0x10, 0x00, 0x00};
        EXPECT_TRUE(wire::SendAll(client->fd(), junk, 3, 1.0).ok());
        client->Close();
        break;
      }
      case 2: {
        // Mid-stream close: the full request lands, then the socket dies.
        // The server's reply hits a dead connection (the EPIPE path, which
        // must be an error code, never SIGPIPE).
        util::StatusOr<TcpClient> client = ChaosClient();
        ASSERT_TRUE(client.ok());
        ftest::ScopedFault fault(ftest::FaultPoint::kSocketMidStreamClose);
        util::StatusOr<std::vector<runtime::Tensor>> result =
            client->Infer(hash_, probe_inputs_, 1.0, 1.0);
        EXPECT_FALSE(result.ok());
        break;
      }
      case 3: {
        // Slow-loris: the request trickles with an 80ms stall against a
        // 40ms frame deadline. The server must cut the connection rather
        // than wedge a worker; the client's call fails cleanly.
        util::StatusOr<TcpClient> client = ChaosClient();
        ASSERT_TRUE(client.ok());
        ftest::ScopedFault fault(ftest::FaultPoint::kSocketDelayedByte);
        util::StatusOr<std::string> result = client->Health(2.0);
        EXPECT_FALSE(result.ok());
        break;
      }
      case 4: {
        // Injected pool exhaustion: the checkout sheds and the shed
        // arrives as a structured retryable reply.
        util::StatusOr<TcpClient> client = ChaosClient();
        ASSERT_TRUE(client.ok());
        ftest::ScopedFault fault(ftest::FaultPoint::kSessionCheckout);
        util::StatusOr<std::vector<runtime::Tensor>> result =
            client->Infer(hash_, probe_inputs_, 1.0, 2.0);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(),
                  util::StatusCode::kResourceExhausted);
        EXPECT_GT(client->retry_after_millis(), 0u);
        ++checkout_sheds;
        break;
      }
      case 5: {
        // Oversize declaration: a 4-byte header claiming 512 MB. Rejected
        // from the header — the server must answer kInvalidArgument
        // without ever buffering the claimed payload.
        util::StatusOr<TcpClient> client = ChaosClient();
        ASSERT_TRUE(client.ok());
        std::string header;
        wire::AppendU32(&header, 512u << 20);
        wire::AppendU32(&header, 0xabad1dea);
        ASSERT_TRUE(
            wire::SendAll(client->fd(), header.data(), header.size(), 1.0)
                .ok());
        util::StatusOr<std::string> frame =
            wire::ReadFrame(client->fd(), 1u << 20, 2.0, 2.0);
        ASSERT_TRUE(frame.ok()) << frame.status().ToString();
        util::StatusOr<wire::Reply> reply = wire::DecodeReply(*frame);
        ASSERT_TRUE(reply.ok());
        EXPECT_EQ(reply->code, util::StatusCode::kInvalidArgument);
        break;
      }
      case 6: {
        // CRC corruption: a well-formed frame with one payload bit
        // flipped after the checksum was computed. The server must detect
        // kDataLoss before parsing a single field.
        util::StatusOr<TcpClient> client = ChaosClient();
        ASSERT_TRUE(client.ok());
        wire::Request request;
        request.verb = wire::Verb::kStats;
        std::string frame = FrameFor(wire::EncodeRequest(request));
        const std::size_t bit =
            8 * 8 + static_cast<std::size_t>(seed) % ((frame.size() - 8) * 8);
        frame[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(frame[bit / 8]) ^ (1u << (bit % 8)));
        ASSERT_TRUE(
            wire::SendAll(client->fd(), frame.data(), frame.size(), 1.0)
                .ok());
        util::StatusOr<std::string> raw =
            wire::ReadFrame(client->fd(), 1u << 20, 2.0, 2.0);
        ASSERT_TRUE(raw.ok()) << raw.status().ToString();
        util::StatusOr<wire::Reply> reply = wire::DecodeReply(*raw);
        ASSERT_TRUE(reply.ok());
        EXPECT_EQ(reply->code, util::StatusCode::kDataLoss);
        break;
      }
      case 7: {
        if (seed % 16 == 7) {
          // Unknown verb byte with a valid checksum.
          util::StatusOr<TcpClient> client = ChaosClient();
          ASSERT_TRUE(client.ok());
          std::string payload;
          wire::AppendU8(&payload, 99);
          wire::AppendU32(&payload, 0);
          wire::AppendU8(&payload, 1);
          const std::string frame = FrameFor(payload);
          ASSERT_TRUE(
              wire::SendAll(client->fd(), frame.data(), frame.size(), 1.0)
                  .ok());
          util::StatusOr<std::string> raw =
              wire::ReadFrame(client->fd(), 1u << 20, 2.0, 2.0);
          ASSERT_TRUE(raw.ok()) << raw.status().ToString();
          util::StatusOr<wire::Reply> reply = wire::DecodeReply(*raw);
          ASSERT_TRUE(reply.ok());
          EXPECT_EQ(reply->code, util::StatusCode::kInvalidArgument);
        } else {
          // Unknown plan hash: structured kNotFound on a live connection.
          util::StatusOr<TcpClient> client = ChaosClient();
          ASSERT_TRUE(client.ok());
          graph::GraphHash unknown{static_cast<std::uint64_t>(seed) + 1,
                                   0xfeedull};
          util::StatusOr<std::vector<runtime::Tensor>> result =
              client->Infer(unknown, {}, 1.0, 2.0);
          ASSERT_FALSE(result.ok());
          EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
          EXPECT_TRUE(client->Health().ok());  // connection survived
        }
        break;
      }
    }
    ExpectServerHealthy(seed);
    if (::testing::Test::HasFatalFailure()) break;
  }

  // The damage was really delivered and really answered.
  const TcpServerStats stats = server_->stats();
  EXPECT_GT(stats.bad_frames, 0u);
  EXPECT_GT(stats.timeout_closes, 0u);  // loris connections were cut
  EXPECT_EQ(pool_.stats().sheds, checkout_sheds);
  EXPECT_FALSE(stats.draining);

  // Orderly shutdown still works after 1000 faults.
  server_->RequestDrain();
  server_->Join();
}

// Mid-planning disconnect: the client sends a Plan request for a graph
// whose exact search takes seconds, then vanishes. The server's plan path
// probes the connection while the planning future is pending, fires the
// request's cancel token on the disconnect, and the single-flight run
// unwinds with kCancelled — freeing the worker and the search memory
// instead of finishing a plan nobody will read. The probe connection
// verifies the server stayed healthy after every disconnect, and the
// plan_cancels / service.cancelled counters prove the cancellations
// really happened (a run that merely finished into a dead socket would
// not advance them).
TEST_F(NetChaosTest, MidPlanningDisconnectCancelsTheSearch) {
  // k parallel conv chains joined by one concat: the DP's level widths are
  // the product of per-chain positions, so the exact search reliably
  // outlives the disconnect below while staying well under the state cap.
  graph::GraphBuilder b("slow_to_plan");
  const graph::NodeId in = b.Input(graph::TensorShape{1, 8, 8, 4}, "in");
  std::vector<graph::NodeId> ends;
  for (int chain = 0; chain < 8; ++chain) {
    graph::NodeId x = in;
    for (int hop = 0; hop < 5; ++hop) {
      x = b.Conv1x1(x, 4, "c" + std::to_string(chain) + "_" +
                           std::to_string(hop));
    }
    ends.push_back(x);
  }
  (void)b.Concat(ends, "join");
  const graph::Graph slow = std::move(b).Build();

  wire::Request request;
  request.verb = wire::Verb::kPlan;
  request.body = serialize::ToText(slow);
  const std::string frame = FrameFor(wire::EncodeRequest(request));

  const ServiceStats before = service_.stats();
  for (int attempt = 0; attempt < 6; ++attempt) {
    SCOPED_TRACE("attempt " + std::to_string(attempt));
    util::StatusOr<TcpClient> client = ChaosClient();
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(
        wire::SendAll(client->fd(), frame.data(), frame.size(), 1.0).ok());
    // Give the worker time to decode the frame and enter planning, then
    // disappear without reading the reply.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    client->Close();
    ExpectServerHealthy(10000 + attempt);
  }

  // The disconnects were noticed mid-flight: planning runs were cancelled,
  // not completed into dead sockets. (Every attempt re-plans — a cancelled
  // flight never reaches the cache.)
  const ServiceStats after = service_.stats();
  EXPECT_GT(after.cancelled, before.cancelled);
  EXPECT_GT(server_->stats().plan_cancels, 0u);
  EXPECT_EQ(service_.cache().Lookup(graph::CanonicalGraphHash(slow)),
            nullptr);

  server_->RequestDrain();
  server_->Join();
}

}  // namespace
}  // namespace serenity::serve
