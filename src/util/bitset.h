// Dynamic fixed-capacity bitset used as the dynamic-programming signature.
//
// The DP scheduler (src/core/dp_scheduler.h) memoizes on the set of already
// scheduled nodes, which is in bijection with the paper's zero-indegree set
// (DESIGN.md §3.2). Sets are dense over node ids, so a word-packed bitset
// with a cheap hash is the natural representation.
#ifndef SERENITY_UTIL_BITSET_H_
#define SERENITY_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace serenity::util {

// ---------------------------------------------------------------------------
// Word-span primitives.
//
// The DP state store (src/core/state_store.h) keeps thousands of signatures
// packed back-to-back in one uint64_t arena; these free functions implement
// the bitset operations directly on such spans so the hot path never
// materialises a Bitset64 (and never heap-allocates). `num_words` is the
// span length; bits past the logical size must be kept zero by the caller,
// exactly as Bitset64 guarantees for its own storage.
// ---------------------------------------------------------------------------

inline bool SpanTestBit(const std::uint64_t* words, std::size_t pos) {
  return (words[pos >> 6] >> (pos & 63)) & 1u;
}

inline void SpanSetBit(std::uint64_t* words, std::size_t pos) {
  words[pos >> 6] |= (std::uint64_t{1} << (pos & 63));
}

// True if every bit set in `sub` is also set in `super`.
inline bool SpanIsSubsetOf(const std::uint64_t* sub,
                           const std::uint64_t* super,
                           std::size_t num_words) {
  for (std::size_t i = 0; i < num_words; ++i) {
    if ((sub[i] & ~super[i]) != 0) return false;
  }
  return true;
}

inline bool SpanIntersects(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t num_words) {
  for (std::size_t i = 0; i < num_words; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

inline bool SpanEqual(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t num_words) {
  for (std::size_t i = 0; i < num_words; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

// FNV-1a over the words — the one-shot hash for spans whose hash is not
// maintained incrementally (the state store instead caches a Zobrist hash
// per state and derives child hashes with a single XOR; see
// core/state_store.h).
inline std::size_t SpanHash(const std::uint64_t* words,
                            std::size_t num_words) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (std::size_t i = 0; i < num_words; ++i) {
    hash ^= words[i];
    hash *= 1099511628211ull;  // FNV prime
  }
  return static_cast<std::size_t>(hash);
}

// A bitset whose capacity is fixed at construction. All operands of binary
// operations must have the same capacity.
class Bitset64 {
 public:
  Bitset64() = default;
  explicit Bitset64(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  std::size_t size() const { return num_bits_; }

  bool Test(std::size_t pos) const {
    SERENITY_CHECK_LT(pos, num_bits_);
    return (words_[pos >> 6] >> (pos & 63)) & 1u;
  }

  void Set(std::size_t pos) {
    SERENITY_CHECK_LT(pos, num_bits_);
    words_[pos >> 6] |= (std::uint64_t{1} << (pos & 63));
  }

  void Reset(std::size_t pos) {
    SERENITY_CHECK_LT(pos, num_bits_);
    words_[pos >> 6] &= ~(std::uint64_t{1} << (pos & 63));
  }

  void Clear() { std::fill(words_.begin(), words_.end(), 0); }

  // Number of set bits.
  std::size_t Count() const;

  bool None() const;
  bool Any() const { return !None(); }

  // True if every bit set in *this is also set in other.
  bool IsSubsetOf(const Bitset64& other) const;

  // True if (*this & other) has any bit set.
  bool Intersects(const Bitset64& other) const;

  Bitset64& operator|=(const Bitset64& other);
  Bitset64& operator&=(const Bitset64& other);
  Bitset64& operator^=(const Bitset64& other);

  friend Bitset64 operator|(Bitset64 a, const Bitset64& b) { return a |= b; }
  friend Bitset64 operator&(Bitset64 a, const Bitset64& b) { return a &= b; }

  bool operator==(const Bitset64& other) const = default;

  // Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  // Indices of all set bits, ascending.
  std::vector<std::size_t> ToIndices() const;

  // FNV-1a over the words; adequate for hash-map bucketing of DP states.
  std::size_t Hash() const;

  // Word-span view of the backing storage (bits past size() are zero). The
  // span is invalidated by any mutation through a non-const method.
  const std::uint64_t* words() const { return words_.data(); }
  std::size_t num_words() const { return words_.size(); }

 private:
  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace serenity::util

#endif  // SERENITY_UTIL_BITSET_H_
