#include "sched/schedule.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "sched/baselines.h"
#include "util/rng.h"

namespace serenity::sched {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TensorShape;

// 1 KB per 'unit': shape {1,16,16,1} float32 = 1024 bytes.
TensorShape Units(int c) { return TensorShape{1, 16, 16, c}; }

// in(1) -> a(2) -> c(1); in -> b(4) -> c; c is the sink.
graph::Graph SmallDag() {
  GraphBuilder b("small");
  const NodeId in = b.Input(Units(1), "in");
  const NodeId a = b.Conv1x1(in, 2, "a");
  const NodeId bb = b.Conv1x1(in, 4, "b");
  (void)b.Concat({a, bb}, "c");
  return std::move(b).Build();
}

TEST(IsTopologicalOrder, AcceptsAndRejects) {
  const graph::Graph g = SmallDag();
  EXPECT_TRUE(IsTopologicalOrder(g, {0, 1, 2, 3}));
  EXPECT_TRUE(IsTopologicalOrder(g, {0, 2, 1, 3}));
  EXPECT_FALSE(IsTopologicalOrder(g, {1, 0, 2, 3}));  // a before in
  EXPECT_FALSE(IsTopologicalOrder(g, {0, 1, 2}));     // missing node
  EXPECT_FALSE(IsTopologicalOrder(g, {0, 1, 1, 3}));  // duplicate
  EXPECT_FALSE(IsTopologicalOrder(g, {0, 1, 2, 9}));  // out of range
}

TEST(EvaluateFootprint, HandComputedChain) {
  // Peak model walk-through for {in, a, b, c} (1, 2, 4, 6 KB):
  //  in: alloc 1 -> peak 1, footprint 1 (in read by a and b, stays)
  //  a : alloc 2 -> peak 3, footprint 3
  //  b : alloc 4 -> peak 7, in dies -> footprint 6
  //  c : alloc 6 -> peak 12, a and b die -> footprint 6 (c is a sink)
  const graph::Graph g = SmallDag();
  const FootprintResult r = EvaluateFootprint(g, {0, 1, 2, 3});
  EXPECT_EQ(r.peak_bytes, 12 * 1024);
  EXPECT_EQ(r.peak_at_step,
            (std::vector<std::int64_t>{1024, 3 * 1024, 7 * 1024, 12 * 1024}));
  EXPECT_EQ(r.footprint_after_step,
            (std::vector<std::int64_t>{1024, 3 * 1024, 6 * 1024, 6 * 1024}));
}

TEST(EvaluateFootprint, OrderIndependentForThisGraph) {
  // Both orders peak at the concat here; the footprint trace differs but
  // the peak does not (a+b+c always coexist).
  const graph::Graph g = SmallDag();
  EXPECT_EQ(EvaluateFootprint(g, {0, 1, 2, 3}).peak_bytes,
            EvaluateFootprint(g, {0, 2, 1, 3}).peak_bytes);
}

TEST(EvaluateFootprint, SinkStaysResident) {
  GraphBuilder b("sink");
  const NodeId in = b.Input(Units(1), "in");
  (void)b.Conv1x1(in, 2, "out");
  const graph::Graph g = std::move(b).Build();
  const FootprintResult r = EvaluateFootprint(g, {0, 1});
  // After the conv: input freed, output retained.
  EXPECT_EQ(r.footprint_after_step.back(), 2 * 1024);
}

TEST(EvaluateFootprint, SharedAccumulatorBufferCountedOnce) {
  // x0(1) -> p0 writes acc(4); x1(1) -> p1 accumulates into acc.
  graph::Graph g("accum");
  graph::Node input;
  input.kind = graph::OpKind::kInput;
  input.shape = Units(1);
  const NodeId x0 = g.AddNode(input);

  graph::Node p0;
  p0.kind = graph::OpKind::kPartialConv2d;
  p0.conv = graph::ConvAttrs{1, 1, 1, 1, graph::Padding::kSame};
  p0.shape = Units(4);
  p0.inputs = {x0};
  p0.weight_in_channels = 2;
  p0.buffer = g.AddBuffer(p0.OutputBytes());
  const NodeId p0_id = g.AddNode(p0);

  const NodeId x1 = g.AddNode(input);
  graph::Node p1 = p0;
  p1.kind = graph::OpKind::kPartialConv2dAccum;
  p1.inputs = {p0_id, x1};
  p1.in_channel_offset = 1;
  const NodeId p1_id = g.AddNode(p1);

  graph::Node out;
  out.kind = graph::OpKind::kRelu;
  out.shape = Units(4);
  out.inputs = {p1_id};
  g.AddNode(out);
  g.ValidateOrDie();

  const FootprintResult r = EvaluateFootprint(g, {0, 1, 2, 3, 4});
  // x0: 1 | +acc: 5 (x0 dies) -> 4 | +x1: 5 | p1: acc NOT re-allocated,
  // peak stays 5, x1 dies -> 4 | relu: +4 = 8, acc dies -> 4.
  EXPECT_EQ(r.peak_at_step, (std::vector<std::int64_t>{
                                1024, 5 * 1024, 5 * 1024, 5 * 1024,
                                8 * 1024}));
  EXPECT_EQ(r.peak_bytes, 8 * 1024);
}

TEST(EvaluateFootprint, ConcatViewBufferAllocatedByFirstSliceWriter) {
  // Two partial depthwise ops write slices of a shared 4-unit buffer, then
  // a view reads it.
  graph::Graph g("view");
  graph::Node input;
  input.kind = graph::OpKind::kInput;
  input.shape = Units(2);
  const NodeId x0 = g.AddNode(input);
  const NodeId x1 = g.AddNode(input);

  const graph::BufferId shared = g.AddBuffer(Units(4).NumElements() * 4);
  graph::Node d0;
  d0.kind = graph::OpKind::kPartialDepthwiseConv2d;
  d0.conv = graph::ConvAttrs{3, 3, 1, 1, graph::Padding::kSame};
  d0.shape = Units(2);
  d0.inputs = {x0};
  d0.buffer = shared;
  d0.weight_in_channels = 4;
  const NodeId d0_id = g.AddNode(d0);

  graph::Node d1 = d0;
  d1.inputs = {x1};
  d1.buffer_channel_offset = 2;
  d1.in_channel_offset = 2;
  const NodeId d1_id = g.AddNode(d1);

  graph::Node view;
  view.kind = graph::OpKind::kConcatView;
  view.shape = Units(4);
  view.inputs = {d0_id, d1_id};
  view.buffer = shared;
  const NodeId view_id = g.AddNode(view);

  graph::Node out;
  out.kind = graph::OpKind::kRelu;
  out.shape = Units(4);
  out.inputs = {view_id};
  g.AddNode(out);
  g.ValidateOrDie();

  const FootprintResult r = EvaluateFootprint(g, {0, 1, 2, 3, 4, 5});
  // x0:1, x1:2, d0: +4 shared -> 6 (x0 dies -> 5), d1: no alloc, peak 5
  // (x1 dies -> 4), view: no alloc (4), relu: +4 = 8 (shared dies -> 4).
  EXPECT_EQ(r.peak_bytes, 8 * 1024);
  EXPECT_EQ(r.footprint_after_step.back(), 4 * 1024);
}

TEST(EvaluateFootprint, ViewSliceOrderingFreesInputsEagerly) {
  // With the schedule x0, d0, x1, d1 the two branch inputs never coexist:
  // peak = shared(4) + one branch input(2) = 6 after the first alloc spike.
  graph::Graph g("view_interleaved");
  graph::Node input;
  input.kind = graph::OpKind::kInput;
  input.shape = Units(2);
  const NodeId x0 = g.AddNode(input);
  const graph::BufferId shared = g.AddBuffer(Units(4).NumElements() * 4);
  graph::Node d0;
  d0.kind = graph::OpKind::kPartialDepthwiseConv2d;
  d0.conv = graph::ConvAttrs{3, 3, 1, 1, graph::Padding::kSame};
  d0.shape = Units(2);
  d0.inputs = {x0};
  d0.buffer = shared;
  d0.weight_in_channels = 4;
  const NodeId d0_id = g.AddNode(d0);
  const NodeId x1 = g.AddNode(input);
  graph::Node d1 = d0;
  d1.inputs = {x1};
  d1.buffer_channel_offset = 2;
  d1.in_channel_offset = 2;
  const NodeId d1_id = g.AddNode(d1);
  graph::Node view;
  view.kind = graph::OpKind::kConcatView;
  view.shape = Units(4);
  view.inputs = {d0_id, d1_id};
  view.buffer = shared;
  g.AddNode(view);
  g.ValidateOrDie();

  const FootprintResult r = EvaluateFootprint(g, {0, 1, 2, 3, 4});
  // x0:2 -> d0: 2+4=6 (x0 dies, 4) -> x1: 6 -> d1: 6 (x1 dies, 4) -> view.
  // The branch inputs never coexist: peak = shared(4) + one input(2).
  EXPECT_EQ(r.peak_bytes, 6 * 1024);
}

TEST(EvaluateFootprintDeath, RejectsInvalidSchedule) {
  const graph::Graph g = SmallDag();
  EXPECT_DEATH(EvaluateFootprint(g, {1, 0, 2, 3}), "topological");
}

TEST(PeakFootprint, MatchesEvaluate) {
  const graph::Graph g = SmallDag();
  EXPECT_EQ(PeakFootprint(g, {0, 1, 2, 3}),
            EvaluateFootprint(g, {0, 1, 2, 3}).peak_bytes);
}

}  // namespace
}  // namespace serenity::sched
