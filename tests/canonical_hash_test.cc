#include "graph/canonical_hash.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "graph/builder.h"
#include "models/random_cell.h"
#include "models/zoo.h"
#include "rewrite/rewriter.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace serenity::graph {
namespace {

TEST(CanonicalHash, IgnoresNodeNamesAndGraphName) {
  GraphBuilder a("net_a");
  (void)a.Conv1x1(a.Input(TensorShape{1, 8, 8, 3}, "image"), 4, "conv");
  GraphBuilder b("net_b");
  (void)b.Conv1x1(b.Input(TensorShape{1, 8, 8, 3}, "pixels"), 4, "other");
  EXPECT_EQ(CanonicalGraphHash(std::move(a).Build()),
            CanonicalGraphHash(std::move(b).Build()));
}

TEST(CanonicalHash, SensitiveToShapeOpKindAndWiring) {
  const auto base = [] {
    GraphBuilder b("base");
    const NodeId in = b.Input(TensorShape{1, 8, 8, 3});
    const NodeId c = b.Conv1x1(in, 4);
    (void)b.Relu(c);
    return std::move(b).Build();
  }();
  const GraphHash base_hash = CanonicalGraphHash(base);

  GraphBuilder shape("shape");
  const NodeId sin = shape.Input(TensorShape{1, 8, 8, 3});
  const NodeId sc = shape.Conv1x1(sin, 5);  // 4 -> 5 channels
  (void)shape.Relu(sc);
  EXPECT_NE(CanonicalGraphHash(std::move(shape).Build()), base_hash);

  GraphBuilder kind("kind");
  const NodeId kin = kind.Input(TensorShape{1, 8, 8, 3});
  const NodeId kc = kind.Conv1x1(kin, 4);
  (void)kind.BatchNorm(kc);  // relu -> batchnorm
  EXPECT_NE(CanonicalGraphHash(std::move(kind).Build()), base_hash);

  GraphBuilder wiring("wiring");
  const NodeId win = wiring.Input(TensorShape{1, 8, 8, 3});
  (void)wiring.Conv1x1(win, 4);
  (void)wiring.Relu(win);  // relu moved onto the input
  EXPECT_NE(CanonicalGraphHash(std::move(wiring).Build()), base_hash);
}

TEST(CanonicalHash, OperandOrderIsSemantic) {
  const auto concat_of = [](bool swap) {
    GraphBuilder b("cat");
    const NodeId in = b.Input(TensorShape{1, 8, 8, 2});
    const NodeId x = b.Conv1x1(in, 3);
    const NodeId y = b.Relu(in);
    (void)b.Concat(swap ? std::vector<NodeId>{y, x}
                        : std::vector<NodeId>{x, y});
    return std::move(b).Build();
  };
  EXPECT_NE(CanonicalGraphHash(concat_of(false)),
            CanonicalGraphHash(concat_of(true)));
}

TEST(CanonicalHash, SharedSubgraphDiffersFromDuplicatedSubgraph) {
  // add(conv, conv) reading one conv twice vs. two identical convs: same
  // local structure everywhere, different node/edge counts and sharing.
  GraphBuilder shared("shared");
  const NodeId sin = shared.Input(TensorShape{1, 4, 4, 2});
  const NodeId sconv = shared.Conv1x1(sin, 2);
  (void)shared.Add({sconv, sconv});
  GraphBuilder dup("dup");
  const NodeId din = dup.Input(TensorShape{1, 4, 4, 2});
  (void)dup.Add({dup.Conv1x1(din, 2), dup.Conv1x1(din, 2)});
  EXPECT_NE(CanonicalGraphHash(std::move(shared).Build()),
            CanonicalGraphHash(std::move(dup).Build()));
}

TEST(CanonicalHash, InvariantUnderRandomRelabeling) {
  util::Rng rng(2026'07'30);
  for (int trial = 0; trial < 60; ++trial) {
    serenity::testing::RandomDagOptions opts;
    opts.num_ops = 6 + trial % 24;
    opts.extra_edge_p = 0.2 + 0.02 * (trial % 10);
    const Graph g = serenity::testing::RandomDag(
        rng, opts, "trial" + std::to_string(trial));
    const GraphHash expected = CanonicalGraphHash(g);
    for (int relabel = 0; relabel < 3; ++relabel) {
      const Graph twin = serenity::testing::RelabelIsomorphic(
          g, rng, "twin" + std::to_string(relabel));
      EXPECT_EQ(CanonicalGraphHash(twin), expected)
          << "trial " << trial << " relabel " << relabel;
    }
  }
}

TEST(CanonicalHash, InvariantUnderRelabelingWithBufferAliasing) {
  // Rewritten graphs carry the aliasing ops (partial convs sharing an
  // accumulator, concat views); relabeling must preserve their hash too.
  util::Rng rng(99);
  for (const char* group : {"DARTS ImageNet", "SwiftNet HPD"}) {
    const Graph g =
        models::FindBenchmarkCell(group, group[0] == 'D' ? "Normal Cell"
                                                         : "Cell C")
            .factory();
    const Graph rewritten = rewrite::RewriteGraph(g).graph;
    ASSERT_GT(rewritten.num_buffers(), 0);
    const GraphHash expected = CanonicalGraphHash(rewritten);
    for (int relabel = 0; relabel < 3; ++relabel) {
      const Graph twin =
          serenity::testing::RelabelIsomorphic(rewritten, rng, "twin");
      EXPECT_EQ(CanonicalGraphHash(twin), expected) << group;
    }
  }
}

TEST(CanonicalHash, Distinguishes1000RandomCells) {
  std::unordered_map<GraphHash, int, GraphHashHasher> seen;
  for (int i = 0; i < 1000; ++i) {
    models::RandomCellParams params;
    params.seed = static_cast<std::uint64_t>(i + 1);
    params.num_intermediates = 6 + i % 7;
    params.concat_branches = i % 5;
    params.depthwise_block = (i % 3) != 0;
    const Graph g = models::MakeRandomCellNetwork(params);
    const auto [it, inserted] = seen.emplace(CanonicalGraphHash(g), i);
    EXPECT_TRUE(inserted) << "cell " << i << " collides with cell "
                          << it->second;
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(CanonicalHash, HexRoundTrip) {
  const Graph g = models::FindBenchmarkCell("SwiftNet HPD", "Cell C")
                      .factory();
  const GraphHash h = CanonicalGraphHash(g);
  EXPECT_EQ(h.ToHex().size(), 32u);
  EXPECT_EQ(GraphHashFromHex(h.ToHex()), h);
}

TEST(CanonicalHashDeath, RejectsMalformedHex) {
  EXPECT_DEATH(GraphHashFromHex("short"), "32 hex digits");
  EXPECT_DEATH(GraphHashFromHex(std::string(32, 'z')), "bad hex digit");
}

}  // namespace
}  // namespace serenity::graph
