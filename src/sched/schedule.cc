#include "sched/schedule.h"

#include <algorithm>

#include "util/logging.h"

namespace serenity::sched {

bool IsTopologicalOrder(const graph::Graph& graph, const Schedule& schedule) {
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  if (schedule.size() != n) return false;
  std::vector<int> position(n, -1);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const graph::NodeId id = schedule[i];
    if (id < 0 || static_cast<std::size_t>(id) >= n) return false;
    if (position[static_cast<std::size_t>(id)] != -1) return false;  // dup
    position[static_cast<std::size_t>(id)] = static_cast<int>(i);
  }
  for (const graph::Node& node : graph.nodes()) {
    for (graph::NodeId input : node.inputs) {
      if (position[static_cast<std::size_t>(input)] >=
          position[static_cast<std::size_t>(node.id)]) {
        return false;
      }
    }
  }
  return true;
}

FootprintResult EvaluateFootprint(const graph::Graph& graph,
                                  const graph::BufferUseTable& table,
                                  const Schedule& schedule) {
  SERENITY_CHECK(IsTopologicalOrder(graph, schedule))
      << "footprint evaluation requires a valid topological order of '"
      << graph.name() << "'";
  FootprintResult result;
  result.footprint_after_step.reserve(schedule.size());
  result.peak_at_step.reserve(schedule.size());

  // remaining_uses[b] counts writers + readers of b not yet executed; the
  // buffer is freed when it reaches zero (unless the buffer is a sink).
  std::vector<int> remaining_uses(table.buffers.size());
  std::vector<bool> allocated(table.buffers.size(), false);
  for (std::size_t b = 0; b < table.buffers.size(); ++b) {
    remaining_uses[b] = static_cast<int>(table.buffers[b].writers.size() +
                                         table.buffers[b].readers.size());
  }

  std::int64_t footprint = 0;
  std::int64_t peak = 0;
  for (const graph::NodeId id : schedule) {
    const std::size_t uid = static_cast<std::size_t>(id);
    const graph::BufferId own = graph.node(id).buffer;
    // (1) Allocate the output buffer on its first write.
    if (!allocated[static_cast<std::size_t>(own)]) {
      allocated[static_cast<std::size_t>(own)] = true;
      footprint += table.buffers[static_cast<std::size_t>(own)].size_bytes;
    }
    const std::int64_t step_peak = footprint;
    peak = std::max(peak, step_peak);
    // (2) Retire this node's uses and free fully consumed buffers.
    for (const graph::BufferId b : table.touched_buffers[uid]) {
      const std::size_t ub = static_cast<std::size_t>(b);
      int uses = 0;
      // The node spends one use per role it holds on the buffer: one if it
      // writes it, one if it reads it.
      const graph::BufferUse& use = table.buffers[ub];
      if (graph.node(id).buffer == b) ++uses;
      const auto& reads = table.read_buffers[uid];
      if (std::find(reads.begin(), reads.end(), b) != reads.end()) ++uses;
      remaining_uses[ub] -= uses;
      SERENITY_CHECK_GE(remaining_uses[ub], 0);
      if (remaining_uses[ub] == 0 && !use.is_sink) {
        SERENITY_CHECK(allocated[ub]);
        footprint -= use.size_bytes;
      }
    }
    result.peak_at_step.push_back(step_peak);
    result.footprint_after_step.push_back(footprint);
  }
  result.peak_bytes = peak;
  return result;
}

FootprintResult EvaluateFootprint(const graph::Graph& graph,
                                  const Schedule& schedule) {
  return EvaluateFootprint(graph, graph::BufferUseTable::Build(graph),
                           schedule);
}

std::int64_t PeakFootprint(const graph::Graph& graph,
                           const Schedule& schedule) {
  return EvaluateFootprint(graph, schedule).peak_bytes;
}

}  // namespace serenity::sched
