// Canonical structural graph hashing — the cache key of the serve path.
//
// Two graphs that differ only in builder bookkeeping (node insertion order,
// node/buffer ids, node names, weight seeds) describe the same scheduling
// problem: the DP search, the rewriter and the arena planner see only
// topology, op kinds, tensor shapes and buffer aliasing. CanonicalGraphHash
// fingerprints exactly that semantic content, so a plan computed for one
// construction of a network is reusable for every relabeled construction of
// it (serve/plan_cache.h keys on this hash).
//
// Definition (DESIGN.md "Serve path"): every node gets a local signature
// over its scheduling-relevant attributes (op kind, dtype, output shape,
// conv attrs, concat axis, buffer size and channel offset, weight-slice
// metadata — never its name, id or weight seed). A forward pass folds each
// node's operand hashes in operand order (operand order is semantic); a
// backward pass folds consumer hashes commutatively, tagged with the operand
// position each consumer reads (consumer *order* is builder bookkeeping).
// The per-node hash combines both directions, so it depends on the node's
// full ancestry and full descendance. The graph hash mixes the sorted
// multiset of node hashes, a commutative fold of per-buffer sharing
// signatures (which nodes alias one buffer), and the node/edge/buffer
// counts. The whole computation runs twice with independent seeds to
// produce 128 bits; collisions between distinct real networks are
// vanishingly unlikely (tests/canonical_hash_test.cc pins distinctness over
// 1000 random non-isomorphic cells and invariance under random relabeling).
#ifndef SERENITY_GRAPH_CANONICAL_HASH_H_
#define SERENITY_GRAPH_CANONICAL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace serenity::graph {

struct GraphHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const GraphHash&) const = default;
  // Lexicographic; gives persisted cache files a stable entry order.
  bool operator<(const GraphHash& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }

  std::string ToHex() const;  // 32 lowercase hex digits
};

// Parses ToHex output; dies on malformed input.
GraphHash GraphHashFromHex(const std::string& hex);

// Functor for unordered_map keys.
struct GraphHashHasher {
  std::size_t operator()(const GraphHash& h) const {
    return static_cast<std::size_t>(h.hi ^ (h.lo * 0x9e3779b97f4a7c15ull));
  }
};

GraphHash CanonicalGraphHash(const Graph& graph);

}  // namespace serenity::graph

#endif  // SERENITY_GRAPH_CANONICAL_HASH_H_
