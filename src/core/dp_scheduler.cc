#include "core/dp_scheduler.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "graph/analysis.h"
#include "util/bitset.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace serenity::core {

const char* ToString(DpStatus status) {
  switch (status) {
    case DpStatus::kSolution:
      return "solution";
    case DpStatus::kNoSolution:
      return "no solution";
    case DpStatus::kTimeout:
      return "timeout";
  }
  return "unknown";
}

namespace {

// One memoized state within a level. The signature (scheduled-node bitset)
// is the key of the level's hash map; the entry stores everything needed to
// extend and later reconstruct the schedule.
struct StateEntry {
  std::int64_t footprint = 0;   // µ — a function of the signature alone
  std::int64_t peak_bytes = 0;  // best µpeak reaching this signature
  std::int32_t prev_index = -1;  // index into the previous level's entries
  graph::NodeId last_node = graph::kInvalidNode;
};

struct Level {
  std::vector<util::Bitset64> keys;
  std::vector<StateEntry> entries;
  std::unordered_map<util::Bitset64, std::int32_t, util::Bitset64Hash> index;

  std::size_t size() const { return entries.size(); }
};

class DpRunner {
 public:
  DpRunner(const graph::Graph& graph, const DpOptions& options)
      : graph_(graph),
        options_(options),
        table_(graph::BufferUseTable::Build(graph)),
        adjacency_(graph::BuildAdjacency(graph)),
        num_nodes_(static_cast<std::size_t>(graph.num_nodes())) {}

  DpResult Run() {
    util::Stopwatch total_clock;
    DpResult result;
    levels_.resize(num_nodes_ + 1);

    // Level 0: the empty schedule (Algorithm 1 line 4-5).
    util::Bitset64 empty(num_nodes_);
    levels_[0].keys.push_back(empty);
    levels_[0].entries.push_back(StateEntry{});
    levels_[0].index.emplace(std::move(empty), 0);

    for (std::size_t i = 0; i < num_nodes_; ++i) {
      util::Stopwatch level_clock;
      Level& current = levels_[i];
      Level& next = levels_[i + 1];
      if (current.size() == 0) {
        // Every prefix of length i was pruned: the budget is below µ*.
        result.status = DpStatus::kNoSolution;
        result.levels_completed = static_cast<int>(i);
        result.states_expanded = states_expanded_;
        result.transitions = transitions_;
        result.seconds = total_clock.ElapsedSeconds();
        return result;
      }
      for (std::size_t s = 0; s < current.size(); ++s) {
        ExpandState(current, static_cast<std::int32_t>(s), next);
        if ((s & 0x3f) == 0 &&
            level_clock.ElapsedSeconds() > options_.step_timeout_seconds) {
          return Abort(DpStatus::kTimeout, i, total_clock);
        }
        if (states_expanded_ > options_.max_states) {
          return Abort(DpStatus::kTimeout, i, total_clock);
        }
      }
      // The hash index of the completed level is only needed while merging
      // into it; free it early, keeping keys/entries for reconstruction.
      next.index = {};
      result.levels_completed = static_cast<int>(i) + 1;
      if (level_clock.ElapsedSeconds() > options_.step_timeout_seconds) {
        return Abort(DpStatus::kTimeout, i, total_clock);
      }
    }

    Level& last = levels_[num_nodes_];
    if (last.size() == 0) {
      result.status = DpStatus::kNoSolution;
    } else {
      // A DAG has exactly one full signature (Algorithm 1 line 27).
      SERENITY_CHECK_EQ(last.size(), 1u);
      result.status = DpStatus::kSolution;
      result.peak_bytes = last.entries[0].peak_bytes;
      result.schedule = Reconstruct();
    }
    result.states_expanded = states_expanded_;
    result.transitions = transitions_;
    result.seconds = total_clock.ElapsedSeconds();
    return result;
  }

 private:
  DpResult Abort(DpStatus status, std::size_t level,
                 const util::Stopwatch& clock) {
    DpResult result;
    result.status = status;
    result.levels_completed = static_cast<int>(level);
    result.states_expanded = states_expanded_;
    result.transitions = transitions_;
    result.seconds = clock.ElapsedSeconds();
    return result;
  }

  // Expands one memoized prefix by every schedulable node (Algorithm 1
  // lines 9-24).
  void ExpandState(Level& current, std::int32_t state_index, Level& next) {
    const util::Bitset64& scheduled = current.keys[
        static_cast<std::size_t>(state_index)];
    const StateEntry entry = current.entries[
        static_cast<std::size_t>(state_index)];
    for (std::size_t u = 0; u < num_nodes_; ++u) {
      if (scheduled.Test(u)) continue;
      if (!adjacency_.preds[u].IsSubsetOf(scheduled)) continue;  // not ready
      ++transitions_;
      const graph::NodeId id = static_cast<graph::NodeId>(u);
      const graph::Node& node = graph_.node(id);
      const std::size_t own = static_cast<std::size_t>(node.buffer);

      // Allocate the output on first write (Algorithm 1 line 13).
      std::int64_t footprint = entry.footprint;
      if (!table_.WriterScheduled(node.buffer, scheduled)) {
        footprint += table_.buffers[own].size_bytes;
      }
      const std::int64_t step_peak = footprint;
      if (step_peak > options_.budget_bytes) continue;  // prune (§3.2)
      const std::int64_t peak = std::max(entry.peak_bytes, step_peak);

      // Deallocate buffers whose last use is this node (lines 15-19).
      for (const graph::BufferId b :
           table_.touched_buffers[u]) {
        const auto& use = table_.buffers[static_cast<std::size_t>(b)];
        if (use.is_sink) continue;
        // Freed iff every toucher is in scheduled ∪ {u}.
        bool all_done = true;
        use.touchers.ForEachSetBit([&](std::size_t t) {
          if (t != u && !scheduled.Test(t)) all_done = false;
        });
        if (all_done) footprint -= use.size_bytes;
      }

      util::Bitset64 next_key = scheduled;
      next_key.Set(u);
      auto [it, inserted] = next.index.try_emplace(
          std::move(next_key), static_cast<std::int32_t>(next.size()));
      if (inserted) {
        ++states_expanded_;
        next.keys.push_back(it->first);
        next.entries.push_back(
            StateEntry{footprint, peak, state_index, id});
      } else {
        StateEntry& existing =
            next.entries[static_cast<std::size_t>(it->second)];
        // Same signature ⇒ same µ; keep the better peak (line 21-22).
        SERENITY_CHECK_EQ(existing.footprint, footprint);
        if (peak < existing.peak_bytes) {
          existing.peak_bytes = peak;
          existing.prev_index = state_index;
          existing.last_node = id;
        }
      }
    }
  }

  sched::Schedule Reconstruct() const {
    sched::Schedule schedule(num_nodes_, graph::kInvalidNode);
    std::int32_t index = 0;
    for (std::size_t i = num_nodes_; i > 0; --i) {
      const StateEntry& entry =
          levels_[i].entries[static_cast<std::size_t>(index)];
      schedule[i - 1] = entry.last_node;
      index = entry.prev_index;
    }
    return schedule;
  }

  const graph::Graph& graph_;
  const DpOptions options_;
  const graph::BufferUseTable table_;
  const graph::AdjacencyBitsets adjacency_;
  const std::size_t num_nodes_;
  std::vector<Level> levels_;
  std::uint64_t states_expanded_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace

DpResult ScheduleDp(const graph::Graph& graph, const DpOptions& options) {
  SERENITY_CHECK_GT(graph.num_nodes(), 0) << "cannot schedule an empty graph";
  return DpRunner(graph, options).Run();
}

}  // namespace serenity::core
