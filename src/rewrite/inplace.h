// In-place elementwise execution: a unary elementwise op (ReLU, folded
// batch-norm, identity) whose operand has no other consumer can overwrite
// its input buffer instead of allocating a fresh tensor.
//
// This is the standard runtime optimization TFLite/compiler backends apply
// and is orthogonal to the paper's contributions — it shrinks the
// footprint of *both* SERENITY and the baselines, so it is disabled in the
// paper-reproduction configurations and evaluated separately in
// bench_ablation_design. It reuses the same value/buffer aliasing machinery
// as identity graph rewriting: the op's value joins the producer's buffer,
// adding zero bytes to the running footprint.
#ifndef SERENITY_REWRITE_INPLACE_H_
#define SERENITY_REWRITE_INPLACE_H_

#include "graph/graph.h"

namespace serenity::rewrite {

struct InPlaceResult {
  graph::Graph graph;
  int ops_made_in_place = 0;
};

// Returns a copy of `graph` where every eligible unary elementwise op
// shares its operand's buffer. Eligible: kind in {kRelu, kBatchNorm,
// kIdentity}, the operand value has exactly one consumer, and the operand
// spans its entire buffer (no slice values).
InPlaceResult ApplyInPlaceElementwise(const graph::Graph& graph);

}  // namespace serenity::rewrite

#endif  // SERENITY_REWRITE_INPLACE_H_
