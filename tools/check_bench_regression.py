#!/usr/bin/env python3
"""CI perf-trajectory gate over the BENCH_*.json bench emissions.

Compares freshly emitted bench JSON files against the committed baselines in
bench/baselines/. Every benchmark in this repository separates deterministic
metrics (peak bytes, states expanded, plan sizes, placement counts — exact
reproductions of the scheduler's output) from wall-clock timings. The gate:

  * FAILS (exit 1) on any drift in a deterministic metric, on missing or
    extra rows/fields, and on a baseline file whose fresh counterpart was
    never emitted — silent bench truncation is a failure, not a pass.
  * REPORTS timing fields, and raises a loud warning (GitHub '::warning::'
    annotation) when one moved by more than the alarm factor (default 2x in
    either direction). Timings never fail the gate: CI runners are shared
    and noisy; the deterministic metrics are the regression signal.

Deterministic vs timing is decided by field name: anything containing
"seconds", "per_sec", "speedup", "wall", "rps", "p50", "p99" or "latency"
is a timing; every other numeric field must match the baseline exactly
(1e-9 relative tolerance for float formatting). String fields identify rows
and must match exactly. Fields starting with "states_" — the search-space
counters, including the per-bound prune attribution
(states_pruned_by_{incumbent,residual,frontier_floor,lookahead,dominance})
— are ALWAYS deterministic, marker matches notwithstanding: they are exact
state counts of a deterministic search, identical across machines and
thread counts, and any drift is a behavior change that must be
re-baselined deliberately.

Usage:
  tools/check_bench_regression.py --baselines bench/baselines --fresh . \
      [--timing-alarm 2.0]

stdlib-only by design: CI runs it straight from checkout with no installs.
"""

import argparse
import json
import os
import sys

TIMING_MARKERS = ("seconds", "per_sec", "speedup", "wall", "rps", "p50",
                  "p99", "latency")

# Exact state counts of the deterministic search (states_expanded,
# states_pruned_by_bound and its per-bound breakdown). Deterministic no
# matter what timing markers a future field name happens to contain.
DETERMINISTIC_PREFIXES = ("states_",)


def is_timing_field(name):
    lowered = name.lower()
    if any(lowered.startswith(prefix) for prefix in DETERMINISTIC_PREFIXES):
        return False
    return any(marker in lowered for marker in TIMING_MARKERS)


def load_rows(path):
    """Loads one BENCH_*.json payload, raising ValueError — never a raw
    traceback — for every malformed shape a torn emission can produce."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as err:
        raise ValueError(f"{path}: unreadable ({err.strerror})") from err
    except json.JSONDecodeError as err:
        raise ValueError(f"{path}: not valid JSON ({err})") from err
    if not isinstance(payload, dict):
        raise ValueError(
            f"{path}: top level is {type(payload).__name__}, expected an "
            f"object with a 'rows' list")
    rows = payload.get("rows")
    if rows is None:
        raise ValueError(f"{path}: missing 'rows' key")
    if not isinstance(rows, list) or not rows:
        raise ValueError(f"{path}: no rows (truncated or empty emission)")
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            raise ValueError(
                f"{path}: row {index} is {type(row).__name__}, expected an "
                f"object of metric fields")
    return rows


def numbers_equal(a, b):
    if isinstance(a, bool) or isinstance(b, bool):
        return a == b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if a == b:
            return True
        scale = max(abs(a), abs(b))
        return scale > 0 and abs(a - b) / scale <= 1e-9
    return a == b


def row_label(row, index):
    for key in ("cell", "input", "network", "workload", "configuration"):
        if key in row:
            extras = [str(row[key])]
            for qualifier in ("capacity_kb", "batch_size", "configuration"):
                if qualifier != key and qualifier in row:
                    extras.append(f"{qualifier}={row[qualifier]}")
            return " / ".join(extras)
    return f"row {index}"


def compare_file(name, baseline_rows, fresh_rows, alarm, failures, warnings):
    if len(baseline_rows) != len(fresh_rows):
        failures.append(
            f"{name}: row count changed {len(baseline_rows)} -> "
            f"{len(fresh_rows)}")
        return

    for index, (base, fresh) in enumerate(zip(baseline_rows, fresh_rows)):
        label = row_label(base, index)
        base_keys, fresh_keys = set(base), set(fresh)
        for missing in sorted(base_keys - fresh_keys):
            failures.append(f"{name} [{label}]: field '{missing}' vanished")
        for added in sorted(fresh_keys - base_keys):
            failures.append(
                f"{name} [{label}]: unexpected new field '{added}' "
                f"(re-baseline deliberately)")

        for key in sorted(base_keys & fresh_keys):
            b, f = base[key], fresh[key]
            if is_timing_field(key):
                if (isinstance(b, (int, float)) and not isinstance(b, bool)
                        and isinstance(f, (int, float)) and b > 0 and f > 0):
                    ratio = f / b
                    if ratio > alarm or ratio < 1.0 / alarm:
                        warnings.append(
                            f"{name} [{label}]: timing '{key}' moved "
                            f"{ratio:.2f}x ({b:.6g} -> {f:.6g})")
            elif not numbers_equal(b, f):
                failures.append(
                    f"{name} [{label}]: deterministic '{key}' drifted "
                    f"{b!r} -> {f!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of committed baseline BENCH_*.json")
    parser.add_argument("--fresh", default=".",
                        help="directory holding freshly emitted BENCH_*.json")
    parser.add_argument("--timing-alarm", type=float, default=2.0,
                        help="warn when a timing moves beyond this factor")
    args = parser.parse_args()

    if not os.path.isdir(args.baselines):
        print(f"error: baseline directory '{args.baselines}' does not exist "
              f"(expected the committed bench/baselines checkout)",
              file=sys.stderr)
        return 1
    if not os.path.isdir(args.fresh):
        print(f"error: fresh-results directory '{args.fresh}' does not "
              f"exist (did the bench step run?)", file=sys.stderr)
        return 1

    baseline_files = sorted(
        f for f in os.listdir(args.baselines)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not baseline_files:
        print(f"error: no BENCH_*.json baselines in {args.baselines}",
              file=sys.stderr)
        return 1

    failures, warnings = [], []
    for name in baseline_files:
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            failures.append(f"{name}: baseline exists but bench did not "
                            f"emit it this run")
            continue
        try:
            baseline_rows = load_rows(os.path.join(args.baselines, name))
            fresh_rows = load_rows(fresh_path)
        except (ValueError, json.JSONDecodeError) as err:
            failures.append(str(err))
            continue
        compare_file(name, baseline_rows, fresh_rows, args.timing_alarm,
                     failures, warnings)
        print(f"checked {name}: {len(fresh_rows)} rows")

    for fresh_only in sorted(
            f for f in os.listdir(args.fresh)
            if f.startswith("BENCH_") and f.endswith(".json")
            and f not in baseline_files):
        warnings.append(f"{fresh_only}: emitted but has no committed "
                        f"baseline (add one under {args.baselines})")

    for message in warnings:
        print(f"::warning::bench timing/coverage: {message}")
    if failures:
        for message in failures:
            print(f"::error::bench regression: {message}")
        print(f"\n{len(failures)} deterministic-metric failure(s); "
              f"if the change is intentional, update bench/baselines/.",
              file=sys.stderr)
        return 1
    print(f"\nall {len(baseline_files)} baseline file(s) clean "
          f"({len(warnings)} warning(s)).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
