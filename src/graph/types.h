// Core IR value types: data types, NHWC tensor shapes, operator kinds and
// convolution attributes.
//
// The IR deliberately mirrors what the paper's scheduler needs (§3): a DAG of
// operators annotated with output shapes (hence activation byte sizes) plus
// the aliasing metadata introduced by identity graph rewriting (§3.3).
#ifndef SERENITY_GRAPH_TYPES_H_
#define SERENITY_GRAPH_TYPES_H_

#include <cstdint>
#include <string>

#include "util/logging.h"

namespace serenity::graph {

using NodeId = std::int32_t;
using BufferId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr BufferId kInvalidBuffer = -1;

enum class DataType : std::uint8_t {
  kFloat32,
  kFloat16,
  kInt8,
  kUInt8,
  kInt32,
};

std::size_t SizeOf(DataType dtype);
const char* ToString(DataType dtype);

// Activation tensor shape in NHWC layout (TFLite's native layout). The
// paper's footprint model is the product of the dimensions times the element
// size ("Size of ui is product of ui.shape", §3.1).
struct TensorShape {
  int n = 1;
  int h = 1;
  int w = 1;
  int c = 1;

  std::int64_t NumElements() const {
    return static_cast<std::int64_t>(n) * h * w * c;
  }

  bool operator==(const TensorShape&) const = default;

  std::string ToString() const;
};

enum class OpKind : std::uint8_t {
  kInput,            // graph input; allocates its buffer at schedule start
  kConv2d,           // dense convolution
  kDepthwiseConv2d,  // depthwise convolution (channel multiplier 1)
  kConcat,           // materializing concatenation along channels
  kAdd,              // n-ary elementwise addition
  kMul,              // elementwise multiplication
  kRelu,
  kBatchNorm,        // folded scale+shift
  kMaxPool2d,
  kAvgPool2d,
  kGlobalAvgPool2d,
  kDense,            // fully connected over flattened input
  kIdentity,         // skip connection
  kFusedCell,        // RandWire macro node: sum(inputs) -> relu -> sepconv -> bn

  // --- Ops introduced by identity graph rewriting (paper §3.3) ---
  kPartialConv2d,       // first channel-wise partial conv; allocates the
                        // accumulator buffer (Eq. 6)
  kPartialConv2dAccum,  // subsequent partial conv; accumulates in place into
                        // the shared buffer (reads previous partial value)
  kPartialDepthwiseConv2d,  // kernel-wise partial depthwise conv writing into
                            // a channel slice of the shared output (Eq. 8)
  kConcatView,  // zero-cost view assembling partial-depthwise slices
};

const char* ToString(OpKind kind);

// True for kinds that carry convolution attributes.
bool IsConvLike(OpKind kind);

// True for kinds whose execution reuses an existing buffer instead of
// defining a new tensor allocation (the rewriter's aliasing ops).
bool MayAliasBuffer(OpKind kind);

enum class Padding : std::uint8_t { kSame, kValid };

struct ConvAttrs {
  int kernel_h = 1;
  int kernel_w = 1;
  int stride = 1;
  int dilation = 1;
  Padding padding = Padding::kSame;

  bool operator==(const ConvAttrs&) const = default;
};

// Output spatial extent of a convolution/pooling along one dimension.
int ConvOutputExtent(int input, int kernel, int stride, int dilation,
                     Padding padding);

// Shape inference for conv-like ops; `out_channels` is the number of filters
// (ignored for depthwise, which preserves channels).
TensorShape InferConv2dShape(const TensorShape& in, const ConvAttrs& attrs,
                             int out_channels);
TensorShape InferDepthwiseShape(const TensorShape& in, const ConvAttrs& attrs);
TensorShape InferPoolShape(const TensorShape& in, const ConvAttrs& attrs);

}  // namespace serenity::graph

#endif  // SERENITY_GRAPH_TYPES_H_
