// Flat-arena state store for the level-by-level schedulers (exact DP and
// beam search).
//
// Both schedulers walk the lattice of schedulable prefixes one level at a
// time, memoizing states on their *signature* — the bitset of scheduled
// nodes. The seed implementation kept each level as
// std::unordered_map<Bitset64, entry>, which heap-allocates a word vector
// per state, rehashes the full signature on every probe, and retains every
// level's keys until reconstruction. This store replaces that with:
//
//  - StateLevel: one level's states in SoA layout. Signature words live
//    back-to-back in a single uint64_t arena (state i occupies words
//    [i*W, (i+1)*W)); footprint, best peak and the cached Zobrist hash live
//    in parallel transient arrays; the back-pointer needed for schedule
//    reconstruction is an 8-byte ReconRecord. Deduplication runs through an
//    open-addressing (linear-probe) table of int32 state indices keyed by
//    the cached hashes — no per-state allocation anywhere.
//
//  - SignatureHasher: Zobrist hashing. Every node gets a fixed SplitMix64
//    key; hash(S) = XOR of the keys of S's members, so a child state's hash
//    is parent_hash ^ key(u) — one XOR instead of re-hashing the words.
//    Equality is always confirmed on the signature words, so hash collisions
//    cost a probe, never correctness.
//
//  - ExpansionTables: the graph-side constants of Algorithm 1 flattened
//    into contiguous word arenas — predecessor masks (for the zero-indegree
//    frontier scan), per-buffer writer masks (allocate-on-first-write) and
//    per-node freeable-buffer lists (deallocate-after-last-use as a
//    word-wise `touchers ⊆ scheduled ∪ {u}` subset check).
//
// Lifecycle of a level: Init → InsertOrRelax (during expansion of the
// previous level; shardable, see below) → Seal → read-only expansion →
// TakeReconAndRelease, which frees everything but the 8-byte records. A
// finished level therefore costs 8 bytes/state instead of the seed's
// ~(8*W + 40 + unordered_map node) bytes/state.
//
// Sharded parallel insertion: a level may be built by several threads, each
// owning a disjoint subset of `num_shards` sub-tables; a state's shard is a
// function of its hash (top bits, so it is independent of the table index
// bits). Each shard is only ever touched by one thread, and each thread
// scans parent states in the same ascending order, so the contents and
// ordering of every shard — and of the level after Seal() concatenates the
// shards — are deterministic for a fixed shard count. See DESIGN.md
// ("Flat-arena DP state store") for the full argument.
#ifndef SERENITY_CORE_STATE_STORE_H_
#define SERENITY_CORE_STATE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/analysis.h"
#include "graph/graph.h"
#include "util/bitset.h"

namespace serenity::core {

// Back-pointer kept per state after its level's transients are dropped:
// which previous-level state it extends and by which node.
struct ReconRecord {
  std::int32_t prev_index = -1;
  std::int32_t last_node = -1;  // graph::NodeId of the appended node
};

// Reserve hint for the next level's arena and hash table, derived from the
// previous level's state count. Level widths on the paper's cells grow by
// well under 2× per level in the expanding phase of the search, so 2× the
// parent level makes rehashes rare without over-reserving: a too-small hint
// costs O(level) amortised rehash/copy work, a too-large one costs idle
// arena memory that is freed when the level's transients are dropped — the
// bias is slightly toward memory since the arena dominates (8·W+32
// bytes/state vs 8 bytes/slot). Shared by the DP and beam schedulers.
inline std::size_t NextLevelReserveHint(std::size_t prev_level_size) {
  return std::max<std::size_t>(64, prev_level_size * 2);
}

// Zobrist signature hashing with a fixed seed: deterministic across runs,
// platforms and thread counts.
class SignatureHasher {
 public:
  explicit SignatureHasher(std::size_t num_nodes);

  std::uint64_t key(std::size_t node) const { return keys_[node]; }

  // Hash of the empty signature (level 0).
  static constexpr std::uint64_t kEmptyHash = 0x9ae16a3b2f90404full;

 private:
  std::vector<std::uint64_t> keys_;
};

// One scheduler level. See the file comment for layout and lifecycle.
class StateLevel {
 public:
  StateLevel() = default;

  // `expected_states` pre-sizes the arena and the hash table (split evenly
  // across shards); `num_shards` must be a power of two.
  void Init(std::size_t words_per_state, std::size_t expected_states,
            int num_shards = 1);

  std::size_t words_per_state() const { return words_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Owning shard of a hash. Uses the top 6 bits (so at most 64 shards can
  // be addressed — callers must clamp `num_shards` accordingly): the probe
  // sequence uses the low bits, keeping shard and slot choice independent.
  int ShardOf(std::uint64_t hash) const {
    return static_cast<int>(hash >> 58) & (num_shards() - 1);
  }

  // Inserts the state or relaxes the existing one (same signature ⇒ same
  // footprint; the lower peak and its back-pointer win, first writer wins
  // ties). Thread-safe across *different* shards: callers in a sharded
  // build must only pass hashes they own. Returns true iff a new state was
  // created. Only valid before Seal().
  bool InsertOrRelax(const std::uint64_t* sig, std::uint64_t hash,
                     std::int64_t footprint, std::int64_t peak,
                     std::int32_t prev_index, std::int32_t last_node);

  // Concatenates the shards into one contiguous SoA block (no-op for a
  // single shard) and drops the hash tables. States are numbered shard by
  // shard, insertion order within each — deterministic for a fixed shard
  // count. Accessors below are only valid after Seal().
  void Seal();

  std::size_t size() const;

  const std::uint64_t* signature(std::size_t i) const {
    return shards_[0].sig_arena.data() + i * words_;
  }
  std::uint64_t hash(std::size_t i) const { return shards_[0].hashes[i]; }
  std::int64_t footprint(std::size_t i) const {
    return shards_[0].footprint[i];
  }
  std::int64_t peak(std::size_t i) const { return shards_[0].peak[i]; }
  const ReconRecord& recon(std::size_t i) const {
    return shards_[0].recon[i];
  }

  // Moves out the reconstruction records and frees every transient array
  // (signatures, hashes, footprints, peaks, table). The level is dead
  // afterwards.
  std::vector<ReconRecord> TakeReconAndRelease();

  // Compacted copy holding exactly the states in `keep` (sealed, in the
  // given order) — the beam-search pruning step. Only valid after Seal().
  StateLevel Select(const std::vector<std::int32_t>& keep) const;

 private:
  struct Shard {
    std::vector<std::uint64_t> sig_arena;  // count * words signature words
    std::vector<std::uint64_t> hashes;     // cached Zobrist hash per state
    std::vector<std::int64_t> footprint;
    std::vector<std::int64_t> peak;
    std::vector<ReconRecord> recon;
    std::vector<std::int32_t> slots;  // open addressing; -1 = empty
    std::size_t count = 0;
  };

  bool InsertOrRelaxShard(Shard& shard, const std::uint64_t* sig,
                          std::uint64_t hash, std::int64_t footprint,
                          std::int64_t peak, std::int32_t prev_index,
                          std::int32_t last_node);
  void GrowTable(Shard& shard);

  std::size_t words_ = 0;
  std::vector<Shard> shards_;
  bool sealed_ = false;
};

// Graph-side constants of Algorithm 1, flattened for the expansion hot
// loop. Self-contained: copies every word it needs into its own arenas.
class ExpansionTables {
 public:
  ExpansionTables(const graph::Graph& graph,
                  const graph::BufferUseTable& table,
                  const graph::AdjacencyBitsets& adjacency);

  // Builds the use table and adjacency as temporaries: everything the hot
  // loop needs is copied into the arenas, so callers that only schedule
  // should not keep their own copies alive.
  static ExpansionTables Build(const graph::Graph& graph) {
    return ExpansionTables(graph, graph::BufferUseTable::Build(graph),
                           graph::BuildAdjacency(graph));
  }

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t words_per_state() const { return words_; }

  // Appends the zero-indegree frontier of `sig` (unscheduled nodes whose
  // predecessors are all scheduled) to `out` in ascending node order. `out`
  // is a caller-owned scratch buffer — the frontier is a function of the
  // signature, so it is recomputed here instead of being stored per state.
  void AppendFrontier(const std::uint64_t* sig,
                      std::vector<std::int32_t>* out) const;

  struct Transition {
    std::int64_t footprint;  // µ after scheduling `node` and freeing
    std::int64_t step_peak;  // transient µ (output live, dead inputs not yet
                             // freed) — what the soft budget prunes on
  };

  // Schedules `node` on top of state `sig` (which must not contain it and
  // must contain its predecessors). If step_peak exceeds `budget` the free
  // scan is skipped and `footprint` is unspecified — callers prune on
  // step_peak first.
  Transition Apply(const std::uint64_t* sig, std::int32_t node,
                   std::int64_t footprint, std::int64_t budget) const;

 private:
  std::size_t num_nodes_ = 0;
  std::size_t words_ = 0;
  std::uint64_t last_word_mask_ = 0;  // valid bits of the final word

  std::vector<std::uint64_t> preds_;           // node-major, num_nodes * W
  std::vector<std::uint64_t> buffer_writers_;  // buffer-major, buffers * W
  std::vector<std::int32_t> own_buffer_;       // node -> output buffer
  std::vector<std::int64_t> own_size_;         // node -> output buffer bytes

  // Flattened non-sink touched buffers per node (sinks are never freed, so
  // they are dropped at build time).
  struct Freeable {
    std::uint32_t touchers_offset;  // into touchers_arena_, W words
    std::int64_t size_bytes;
  };
  std::vector<Freeable> freeables_;
  std::vector<std::uint32_t> freeable_begin_;  // num_nodes + 1 offsets
  std::vector<std::uint64_t> touchers_arena_;
};

}  // namespace serenity::core

#endif  // SERENITY_CORE_STATE_STORE_H_
