#include "runtime/executor.h"

#include <algorithm>
#include <utility>

#include "runtime/weights.h"
#include "util/logging.h"

namespace serenity::runtime {

ReferenceExecutor::ReferenceExecutor(const graph::Graph& graph,
                                     Backend backend)
    : graph_(graph), kernels_(&GetKernelBackend(backend)) {
  buffer_tensors_.resize(static_cast<std::size_t>(graph.num_buffers()));
  buffer_ready_.assign(static_cast<std::size_t>(graph.num_buffers()), false);
  // Shape each buffer tensor after its widest value (the full accumulator /
  // concat-view shape for shared buffers, the node's own shape otherwise).
  std::vector<graph::TensorShape> widest(
      static_cast<std::size_t>(graph.num_buffers()));
  std::vector<std::int64_t> widest_elems(
      static_cast<std::size_t>(graph.num_buffers()), 0);
  for (const graph::Node& node : graph.nodes()) {
    const std::size_t b = static_cast<std::size_t>(node.buffer);
    if (node.shape.NumElements() > widest_elems[b]) {
      widest_elems[b] = node.shape.NumElements();
      widest[b] = node.shape;
    }
  }
  for (std::size_t b = 0; b < buffer_tensors_.size(); ++b) {
    if (widest_elems[b] == 0) continue;  // unused buffer
    SERENITY_CHECK_EQ(
        widest_elems[b] * static_cast<std::int64_t>(sizeof(float)),
        graph.buffer(static_cast<graph::BufferId>(b)).size_bytes)
        << "buffer " << b << " size does not match its widest value";
    buffer_tensors_[b] = Tensor(widest[b]);
  }
}

Tensor ReferenceExecutor::Value(graph::NodeId id) const {
  const graph::Node& node = graph_.node(id);
  const std::size_t b = static_cast<std::size_t>(node.buffer);
  SERENITY_CHECK(buffer_ready_[b])
      << "value of '" << node.name << "' read before it was produced";
  const Tensor& backing = buffer_tensors_[b];
  if (backing.shape() == node.shape) return backing;
  // The value is a channel slice of the shared buffer.
  Tensor slice(node.shape);
  for (int n = 0; n < node.shape.n; ++n) {
    for (int h = 0; h < node.shape.h; ++h) {
      for (int w = 0; w < node.shape.w; ++w) {
        for (int c = 0; c < node.shape.c; ++c) {
          slice.At(n, h, w, c) =
              backing.At(n, h, w, node.buffer_channel_offset + c);
        }
      }
    }
  }
  return slice;
}

void ReferenceExecutor::Run(const std::vector<Tensor>& inputs,
                            const sched::Schedule& order) {
  SERENITY_CHECK(sched::IsTopologicalOrder(graph_, order));
  buffer_ready_.assign(buffer_ready_.size(), false);
  std::size_t num_inputs = 0;
  for (const graph::Node& node : graph_.nodes()) {
    if (node.kind == graph::OpKind::kInput) ++num_inputs;
  }
  SERENITY_CHECK_EQ(inputs.size(), num_inputs)
      << "graph expects a tensor per kInput node";
  for (const graph::NodeId id : order) {
    Execute(graph_.node(id), inputs);
  }
}

void ReferenceExecutor::Run(const std::vector<Tensor>& inputs) {
  sched::Schedule order(static_cast<std::size_t>(graph_.num_nodes()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<graph::NodeId>(i);
  }
  Run(inputs, order);
}

std::vector<Tensor> ReferenceExecutor::SinkValues() const {
  std::vector<Tensor> values;
  for (const graph::NodeId sink : graph_.Sinks()) {
    values.push_back(Value(sink));
  }
  return values;
}

void ReferenceExecutor::Execute(const graph::Node& node,
                                const std::vector<Tensor>& graph_inputs) {
  const std::size_t own = static_cast<std::size_t>(node.buffer);
  Tensor& out = buffer_tensors_[own];
  const auto in_value = [&](std::size_t i) {
    return Value(node.inputs[i]);
  };
  const auto in_values = [&]() {
    std::vector<Tensor> values;
    values.reserve(node.inputs.size());
    for (std::size_t i = 0; i < node.inputs.size(); ++i) {
      values.push_back(in_value(i));
    }
    return values;
  };
  const auto pointers = [](const std::vector<Tensor>& ts) {
    std::vector<const Tensor*> ps;
    ps.reserve(ts.size());
    for (const Tensor& t : ts) ps.push_back(&t);
    return ps;
  };
  // Weights are re-materialized on every execution — wasteful on purpose:
  // the reference runtime trades speed for statelessness. Identical values
  // to the ArenaExecutor's per-session materialization by construction.
  const auto weights = [&]() { return MaterializeNodeWeights(node); };
  const KernelBackend& k = *kernels_;

  switch (node.kind) {
    case graph::OpKind::kInput: {
      // Inputs arrive in ascending node-id order.
      int ordinal = 0;
      for (const graph::Node& other : graph_.nodes()) {
        if (other.id == node.id) break;
        if (other.kind == graph::OpKind::kInput) ++ordinal;
      }
      const Tensor& provided =
          graph_inputs[static_cast<std::size_t>(ordinal)];
      SERENITY_CHECK(provided.shape() == node.shape)
          << "input tensor shape mismatch for '" << node.name << "'";
      out = provided;
      break;
    }
    case graph::OpKind::kConv2d: {
      Tensor r(node.shape);
      k.Conv2dInto(in_value(0), weights().conv, node.conv, r);
      out = std::move(r);
      break;
    }
    case graph::OpKind::kPartialConv2d:
    case graph::OpKind::kPartialConv2dAccum: {
      const bool first = node.kind == graph::OpKind::kPartialConv2d;
      // Operand layout: first partial reads {x_i}; accumulating partials
      // read {accumulator, x_i} and update the shared buffer in place.
      const Tensor x = first ? in_value(0) : in_value(1);
      k.Conv2dPartial(x, weights().conv, node.conv, node.in_channel_offset,
                      /*overwrite=*/first, /*add_bias=*/first, out);
      break;
    }
    case graph::OpKind::kDepthwiseConv2d: {
      Tensor r(node.shape);
      k.DepthwiseConv2dInto(in_value(0), weights().dw, node.conv, r);
      out = std::move(r);
      break;
    }
    case graph::OpKind::kPartialDepthwiseConv2d:
      k.DepthwiseConv2dPartial(in_value(0), weights().dw, node.conv,
                               node.in_channel_offset, out,
                               node.buffer_channel_offset);
      break;
    case graph::OpKind::kConcatView:
      // The partial depthwise writers already populated the shared buffer.
      break;
    case graph::OpKind::kConcat: {
      const std::vector<Tensor> values = in_values();
      Tensor r(node.shape);
      k.ConcatInto(pointers(values), r);
      out = std::move(r);
      break;
    }
    case graph::OpKind::kAdd: {
      const std::vector<Tensor> values = in_values();
      Tensor r(node.shape);
      k.AddInto(pointers(values), r);
      out = std::move(r);
      break;
    }
    case graph::OpKind::kMul: {
      const std::vector<Tensor> values = in_values();
      Tensor r(node.shape);
      k.MulInto(pointers(values), r);
      out = std::move(r);
      break;
    }
    case graph::OpKind::kRelu: {
      Tensor r = in_value(0);
      k.ReluInto(r, r);  // elementwise, in place on the owned copy
      out = std::move(r);
      break;
    }
    case graph::OpKind::kBatchNorm: {
      Tensor r = in_value(0);
      k.BatchNormInto(r, weights().bn, r);
      out = std::move(r);
      break;
    }
    case graph::OpKind::kIdentity:
      out = in_value(0);
      break;
    case graph::OpKind::kMaxPool2d: {
      Tensor r(node.shape);
      k.MaxPool2dInto(in_value(0), node.conv, r);
      out = std::move(r);
      break;
    }
    case graph::OpKind::kAvgPool2d: {
      Tensor r(node.shape);
      k.AvgPool2dInto(in_value(0), node.conv, r);
      out = std::move(r);
      break;
    }
    case graph::OpKind::kGlobalAvgPool2d: {
      Tensor r(node.shape);
      k.GlobalAvgPool2dInto(in_value(0), r);
      out = std::move(r);
      break;
    }
    case graph::OpKind::kDense: {
      Tensor r(node.shape);
      k.DenseInto(in_value(0), weights().dense, r);
      out = std::move(r);
      break;
    }
    case graph::OpKind::kFusedCell: {
      const std::vector<Tensor> values = in_values();
      const NodeWeights w = weights();
      Tensor x(values[0].shape());
      if (values.size() == 1) {
        x = values[0];
      } else {
        k.AddInto(pointers(values), x);
      }
      k.ReluInto(x, x);  // elementwise, in place
      Tensor dw(graph::InferDepthwiseShape(x.shape(), node.conv));
      k.DepthwiseConv2dInto(x, w.dw, node.conv, dw);
      const graph::ConvAttrs pointwise{1, 1, 1, 1, graph::Padding::kSame};
      Tensor pw(node.shape);
      k.Conv2dInto(dw, w.conv, pointwise, pw);
      k.BatchNormInto(pw, w.bn, pw);  // elementwise, in place
      out = std::move(pw);
      break;
    }
  }
  buffer_ready_[own] = true;
}

}  // namespace serenity::runtime
