#include "rewrite/rewriter.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "rewrite/pattern.h"
#include "util/logging.h"

namespace serenity::rewrite {

namespace {

// A planned substitution: the consuming conv/depthwise node and the concat
// feeding it, both of which the rebuilt graph replaces with partial ops.
struct PlannedRewrite {
  graph::NodeId concat = graph::kInvalidNode;
  graph::NodeId conv = graph::kInvalidNode;
  bool depthwise = false;
};

std::vector<PlannedRewrite> PlanRewrites(const graph::Graph& graph,
                                         const RewriteOptions& options) {
  std::vector<PlannedRewrite> plans;
  // The concat must have a single consumer (the conv); otherwise its value
  // is needed materialized anyway and removing it would not save memory.
  const auto concat_pattern = []() {
    return Pattern::Op(graph::OpKind::kConcat)
        .Bind("concat")
        .Where(HasSingleConsumer())
        .Where(HasMinOperands(2));
  };
  if (options.channel_wise_conv) {
    const Pattern p = Pattern::Op(graph::OpKind::kConv2d)
                          .Bind("conv")
                          .WithOperands({concat_pattern()});
    for (const MatchBindings& m : p.MatchAll(graph)) {
      plans.push_back(
          PlannedRewrite{m.at("concat"), m.at("conv"), /*depthwise=*/false});
    }
  }
  if (options.kernel_wise_depthwise) {
    const Pattern p = Pattern::Op(graph::OpKind::kDepthwiseConv2d)
                          .Bind("conv")
                          .WithOperands({concat_pattern()});
    for (const MatchBindings& m : p.MatchAll(graph)) {
      plans.push_back(
          PlannedRewrite{m.at("concat"), m.at("conv"), /*depthwise=*/true});
    }
  }
  return plans;
}

class Rebuilder {
 public:
  Rebuilder(const graph::Graph& source, const RewriteOptions& options)
      : source_(source) {
    for (const PlannedRewrite& plan : PlanRewrites(source, options)) {
      by_conv_.emplace(plan.conv, plan);
      skipped_concats_.emplace(plan.concat, plan.conv);
    }
  }

  RewriteResult Run() {
    RewriteResult result;
    result.graph.set_name(source_.name());
    result.report.nodes_before = source_.num_nodes();
    remap_.assign(static_cast<std::size_t>(source_.num_nodes()),
                  graph::kInvalidNode);
    for (const graph::Node& node : source_.nodes()) {
      if (skipped_concats_.count(node.id) != 0) continue;  // dissolved
      const auto plan = by_conv_.find(node.id);
      if (plan == by_conv_.end()) {
        CopyNode(result.graph, node);
      } else if (plan->second.depthwise) {
        EmitKernelWise(result.graph, node, plan->second);
        ++result.report.depthwise_patterns;
      } else {
        EmitChannelWise(result.graph, node, plan->second);
        ++result.report.conv_patterns;
      }
    }
    result.report.nodes_after = result.graph.num_nodes();
    result.graph.ValidateOrDie();
    return result;
  }

 private:
  graph::NodeId Remapped(graph::NodeId old_id) const {
    const graph::NodeId mapped = remap_[static_cast<std::size_t>(old_id)];
    SERENITY_CHECK_NE(mapped, graph::kInvalidNode);
    return mapped;
  }

  // Maps a source buffer into the output graph, preserving sharing so that
  // pre-existing aliasing groups (e.g. re-running the rewriter on an
  // already rewritten graph) survive the copy.
  graph::BufferId RemapBuffer(graph::Graph& out, const graph::Graph& source,
                              graph::BufferId buffer) {
    if (buffer_remap_.empty()) {
      buffer_remap_.assign(static_cast<std::size_t>(source.num_buffers()),
                           graph::kInvalidBuffer);
    }
    auto& mapped = buffer_remap_[static_cast<std::size_t>(buffer)];
    if (mapped == graph::kInvalidBuffer) {
      mapped = out.AddBuffer(source.buffer(buffer).size_bytes);
    }
    return mapped;
  }

  void CopyNode(graph::Graph& out, const graph::Node& node) {
    graph::Node copy = node;
    copy.id = graph::kInvalidNode;
    copy.buffer = RemapBuffer(out, source_, node.buffer);
    copy.inputs.clear();
    for (const graph::NodeId input : node.inputs) {
      copy.inputs.push_back(Remapped(input));
    }
    remap_[static_cast<std::size_t>(node.id)] = out.AddNode(std::move(copy));
  }

  // concat + conv → partial conv; partial conv accumulate ... (Eq. 3-6).
  void EmitChannelWise(graph::Graph& out, const graph::Node& conv,
                       const PlannedRewrite& plan) {
    const graph::Node& concat = source_.node(plan.concat);
    const graph::BufferId accumulator =
        out.AddBuffer(conv.OutputBytes());
    graph::NodeId prev = graph::kInvalidNode;
    int channel_offset = 0;
    for (std::size_t i = 0; i < concat.inputs.size(); ++i) {
      const graph::NodeId branch = concat.inputs[i];
      const int branch_channels = source_.node(branch).shape.c;
      graph::Node partial;
      partial.kind = (i == 0) ? graph::OpKind::kPartialConv2d
                              : graph::OpKind::kPartialConv2dAccum;
      partial.name =
          conv.name + "/partial" + std::to_string(i);
      partial.dtype = conv.dtype;
      partial.shape = conv.shape;  // every partial spans the full output
      partial.conv = conv.conv;
      partial.buffer = accumulator;
      partial.weight_seed = conv.weight_seed;
      partial.weight_in_channels = concat.shape.c;
      partial.in_channel_offset = channel_offset;
      // Kernel parameters split by in-channel slice; bias rides on the
      // first partial so the totals match the original conv.
      partial.weight_count =
          static_cast<std::int64_t>(conv.conv.kernel_h) * conv.conv.kernel_w *
              branch_channels * conv.shape.c +
          (i == 0 ? conv.shape.c : 0);
      if (i == 0) {
        partial.inputs = {Remapped(branch)};
      } else {
        partial.inputs = {prev, Remapped(branch)};
      }
      prev = out.AddNode(std::move(partial));
      channel_offset += branch_channels;
    }
    remap_[static_cast<std::size_t>(conv.id)] = prev;
  }

  // concat + depthwise → partial depthwise ... + concat view (Eq. 7-8).
  void EmitKernelWise(graph::Graph& out, const graph::Node& dwconv,
                      const PlannedRewrite& plan) {
    const graph::Node& concat = source_.node(plan.concat);
    const graph::BufferId shared = out.AddBuffer(dwconv.OutputBytes());
    std::vector<graph::NodeId> partials;
    partials.reserve(concat.inputs.size());
    int channel_offset = 0;
    for (std::size_t i = 0; i < concat.inputs.size(); ++i) {
      const graph::NodeId branch = concat.inputs[i];
      const int branch_channels = source_.node(branch).shape.c;
      graph::Node partial;
      partial.kind = graph::OpKind::kPartialDepthwiseConv2d;
      partial.name = dwconv.name + "/partial" + std::to_string(i);
      partial.dtype = dwconv.dtype;
      partial.shape = dwconv.shape;
      partial.shape.c = branch_channels;  // this branch's slice of y
      partial.conv = dwconv.conv;
      partial.buffer = shared;
      partial.buffer_channel_offset = channel_offset;
      partial.weight_seed = dwconv.weight_seed;
      partial.weight_in_channels = concat.shape.c;
      partial.in_channel_offset = channel_offset;
      partial.weight_count =
          static_cast<std::int64_t>(dwconv.conv.kernel_h) *
              dwconv.conv.kernel_w * branch_channels +
          branch_channels;
      partial.inputs = {Remapped(branch)};
      partials.push_back(out.AddNode(std::move(partial)));
      channel_offset += branch_channels;
    }
    graph::Node view;
    view.kind = graph::OpKind::kConcatView;
    view.name = dwconv.name + "/view";
    view.dtype = dwconv.dtype;
    view.shape = dwconv.shape;
    view.buffer = shared;
    view.inputs = partials;
    remap_[static_cast<std::size_t>(dwconv.id)] = out.AddNode(std::move(view));
  }

  const graph::Graph& source_;
  std::map<graph::NodeId, PlannedRewrite> by_conv_;
  std::map<graph::NodeId, graph::NodeId> skipped_concats_;
  std::vector<graph::NodeId> remap_;
  std::vector<graph::BufferId> buffer_remap_;
};

// Pre-pass: relu(concat(x...)) -> concat(relu(x)...). ReLU is elementwise,
// so it commutes with concatenation exactly; afterwards the concat directly
// feeds whatever consumed the ReLU, exposing the partitioning patterns.
graph::Graph PushReluThroughConcat(const graph::Graph& source, int* pushes) {
  const Pattern pattern =
      Pattern::Op(graph::OpKind::kRelu)
          .Bind("relu")
          .WithOperands({Pattern::Op(graph::OpKind::kConcat)
                             .Bind("concat")
                             .Where(HasSingleConsumer())
                             .Where(HasMinOperands(2))});
  std::map<graph::NodeId, graph::NodeId> relu_of_concat;
  for (const MatchBindings& m : pattern.MatchAll(source)) {
    relu_of_concat.emplace(m.at("concat"), m.at("relu"));
  }
  if (relu_of_concat.empty()) return source;

  graph::Graph out(source.name());
  std::vector<graph::NodeId> remap(
      static_cast<std::size_t>(source.num_nodes()), graph::kInvalidNode);
  std::vector<graph::BufferId> buffer_remap(
      static_cast<std::size_t>(source.num_buffers()), graph::kInvalidBuffer);
  const auto map_buffer = [&](graph::BufferId b) {
    auto& mapped = buffer_remap[static_cast<std::size_t>(b)];
    if (mapped == graph::kInvalidBuffer) {
      mapped = out.AddBuffer(source.buffer(b).size_bytes);
    }
    return mapped;
  };
  std::map<graph::NodeId, graph::NodeId> pending;  // relu -> new concat
  for (const graph::Node& node : source.nodes()) {
    if (const auto it = relu_of_concat.find(node.id);
        it != relu_of_concat.end()) {
      // Emit a per-branch ReLU, then the concat over them.
      std::vector<graph::NodeId> relu_branches;
      for (std::size_t i = 0; i < node.inputs.size(); ++i) {
        const graph::Node& branch = source.node(node.inputs[i]);
        graph::Node r;
        r.kind = graph::OpKind::kRelu;
        r.name = node.name + "/relu" + std::to_string(i);
        r.dtype = node.dtype;
        r.shape = branch.shape;
        r.inputs = {remap[static_cast<std::size_t>(branch.id)]};
        relu_branches.push_back(out.AddNode(std::move(r)));
      }
      graph::Node cat = node;
      cat.id = graph::kInvalidNode;
      cat.buffer = graph::kInvalidBuffer;
      cat.inputs = relu_branches;
      const graph::NodeId new_cat = out.AddNode(std::move(cat));
      remap[static_cast<std::size_t>(node.id)] = new_cat;
      pending.emplace(it->second, new_cat);
      ++*pushes;
      continue;
    }
    if (const auto it = pending.find(node.id); it != pending.end()) {
      // The old ReLU: its value is the new concat.
      remap[static_cast<std::size_t>(node.id)] = it->second;
      continue;
    }
    graph::Node copy = node;
    copy.id = graph::kInvalidNode;
    copy.buffer = map_buffer(node.buffer);
    copy.inputs.clear();
    for (const graph::NodeId input : node.inputs) {
      SERENITY_CHECK_NE(remap[static_cast<std::size_t>(input)],
                        graph::kInvalidNode);
      copy.inputs.push_back(remap[static_cast<std::size_t>(input)]);
    }
    remap[static_cast<std::size_t>(node.id)] = out.AddNode(std::move(copy));
  }
  out.ValidateOrDie();
  return out;
}

}  // namespace

RewriteResult RewriteGraph(const graph::Graph& graph,
                           const RewriteOptions& options) {
  int pushes = 0;
  if (options.push_relu_through_concat) {
    const graph::Graph pushed = PushReluThroughConcat(graph, &pushes);
    RewriteResult result = Rebuilder(pushed, options).Run();
    result.report.relu_pushes = pushes;
    result.report.nodes_before = graph.num_nodes();
    return result;
  }
  return Rebuilder(graph, options).Run();
}

}  // namespace serenity::rewrite
