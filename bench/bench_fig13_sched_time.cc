// Figure 13 — static scheduling time of SERENITY for every benchmark cell,
// with and without identity graph rewriting.
//
// The paper reports 40.6s / 48.8s averages for its Python implementation;
// this C++ implementation is orders of magnitude faster, so the comparison
// point is the *relative* shape: rewriting increases scheduling time on the
// cells where it adds nodes (SwiftNet, DARTS) and leaves RandWire
// unchanged, and all times stay within interactive-compilation budgets.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/stats.h"

namespace {

using namespace serenity;

double MedianSeconds(const graph::Graph& g, bool rewriting) {
  core::PipelineOptions options;
  options.enable_rewriting = rewriting;
  std::vector<double> runs;
  for (int i = 0; i < 3; ++i) {
    const core::PipelineResult r = core::Pipeline(options).Run(g);
    if (!r.success) return -1.0;
    runs.push_back(r.total_seconds);
  }
  return util::Percentile(runs, 50);
}

// Returns false iff a requested --json write failed.
bool PrintFigure(const std::string& json_path) {
  std::printf("Figure 13: SERENITY scheduling time per cell (median of 3; "
              "paper numbers from its Python implementation)\n\n");
  std::printf("%-32s %12s %12s %12s %12s %12s %12s\n", "cell", "DP (s)",
              "paper (s)", "DP+GR (s)", "paper (s)", "states DP+GR",
              "B&B pruned");
  bench::PrintRule();
  std::vector<double> dp_times, rw_times;
  bench::JsonRows rows;
  for (const models::BenchmarkCell& cell : models::AllBenchmarkCells()) {
    const graph::Graph g = cell.factory();
    const double dp_seconds = MedianSeconds(g, /*rewriting=*/false);
    const double rw_seconds = MedianSeconds(g, /*rewriting=*/true);
    core::PipelineResult full = core::Pipeline().Run(g);
    dp_times.push_back(dp_seconds);
    rw_times.push_back(rw_seconds);
    std::printf("%-32s %12.4f %12.1f %12.4f %12.1f %12llu %12llu\n",
                bench::CellLabel(cell).c_str(), dp_seconds,
                cell.paper_sched_seconds_dp, rw_seconds,
                cell.paper_sched_seconds_rw,
                static_cast<unsigned long long>(full.states_expanded),
                static_cast<unsigned long long>(
                    full.states_pruned_by_bound));
    rows.Begin();
    rows.Field("cell", bench::CellLabel(cell));
    rows.Field("dp_seconds", dp_seconds);
    rows.Field("dp_rw_seconds", rw_seconds);
    rows.Field("states_expanded", full.states_expanded);
    rows.Field("states_pruned_by_bound", full.states_pruned_by_bound);
    rows.Field("states_pruned_by_incumbent", full.pruned.incumbent);
    rows.Field("states_pruned_by_residual", full.pruned.residual);
    rows.Field("states_pruned_by_frontier_floor", full.pruned.frontier_floor);
    rows.Field("states_pruned_by_lookahead", full.pruned.lookahead);
    rows.Field("states_pruned_by_dominance", full.pruned.dominance);
  }
  bench::PrintRule();
  std::printf("%-32s %12.4f %12.1f %12.4f %12.1f\n", "mean",
              util::ArithmeticMean(dp_times), 40.6,
              util::ArithmeticMean(rw_times), 48.8);
  std::printf("\n");
  if (!json_path.empty()) {
    rows.Begin();
    rows.Field("cell", std::string("mean"));
    rows.Field("dp_seconds", util::ArithmeticMean(dp_times));
    rows.Field("dp_rw_seconds", util::ArithmeticMean(rw_times));
    return rows.WriteTo(json_path);
  }
  return true;
}

void BM_ScheduleCell(benchmark::State& state) {
  const auto& cells = models::AllBenchmarkCells();
  const graph::Graph g =
      cells[static_cast<std::size_t>(state.range(0))].factory();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Pipeline().Run(g).peak_bytes);
  }
  state.SetLabel(cells[static_cast<std::size_t>(state.range(0))].group +
                 "/" + cells[static_cast<std::size_t>(state.range(0))].name);
}
BENCHMARK(BM_ScheduleCell)->DenseRange(0, 8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = serenity::bench::TakeJsonFlag(&argc, argv);
  const bool json_ok = PrintFigure(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return json_ok ? 0 : 1;
}
