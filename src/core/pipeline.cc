#include "core/pipeline.h"

#include <algorithm>
#include <utility>

#include "sched/baselines.h"
#include "sched/beam.h"
#include "testing/fault_injection.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace serenity::core {

const char* ToString(PlanQuality quality) {
  switch (quality) {
    case PlanQuality::kExact: return "exact";
    case PlanQuality::kBeam: return "beam";
    case PlanQuality::kGreedy: return "greedy";
  }
  return "unknown";
}

namespace {

// Achievable upper bound on a segment's optimal peak: the better of the
// greedy memory baseline and a narrow beam. Both produce complete, valid
// schedules, so their peaks are incumbents the branch-and-bound search can
// prune against; the beam usually tightens the greedy seed substantially at
// a cost that is negligible next to the DP it accelerates.
std::int64_t SeedIncumbent(const graph::Graph& segment, int beam_width,
                           util::MemoryBudget* budget,
                           const util::CancelToken* cancel) {
  // Greedy is O(|V|+|E|) with no level storage — it stays ungoverned; the
  // beam pass charges the budget and polls the token, and a refused or
  // cancelled beam simply leaves the greedy seed in place (the DP that
  // follows will surface the budget/cancel signal itself).
  std::int64_t incumbent = sched::PeakFootprint(
      segment, sched::GreedyMemorySchedule(segment));
  if (beam_width > 0) {
    sched::BeamOptions beam_options;
    beam_options.width = beam_width;
    beam_options.memory_budget = budget;
    beam_options.cancel = cancel;
    // The greedy peak is already achievable, so the beam only needs to
    // find something strictly better: let it prune against the greedy
    // bound with the same admissible floors the DP uses. A beam that comes
    // back NotFound (every path cut) just leaves the greedy seed standing.
    beam_options.prune_above_bytes = incumbent;
    const sched::BeamResult beam = sched::ScheduleBeam(segment, beam_options);
    if (beam.status.ok()) {
      incumbent = std::min(incumbent, beam.peak_bytes);
    }
  }
  return incumbent;
}

}  // namespace

PipelineResult Pipeline::Run(const graph::Graph& graph) const {
  util::Stopwatch total_clock;
  PipelineResult result;

  // Soft wall-clock budget for the whole run. Checked between segments and
  // attempts; forwarded into the soft-budget meta-search so a single DP
  // attempt cannot silently outlive it. The fault-injection point lets the
  // chaos suite force the deadline-expired path deterministically.
  const double deadline = options_.deadline_seconds;
  const bool injected_timeout =
      testing::FaultTriggered(testing::FaultPoint::kSchedulerTimeout);
  const auto remaining = [&] {
    return deadline - total_clock.ElapsedSeconds();
  };

  // Stage 1: identity graph rewriting.
  util::Stopwatch stage_clock;
  if (options_.enable_rewriting) {
    rewrite::RewriteResult rewritten =
        rewrite::RewriteGraph(graph, options_.rewrite);
    result.scheduled_graph = std::move(rewritten.graph);
    result.rewrite_report = rewritten.report;
  } else {
    result.scheduled_graph = graph;
    result.rewrite_report.nodes_before = graph.num_nodes();
    result.rewrite_report.nodes_after = graph.num_nodes();
  }
  result.rewrite_seconds = stage_clock.ElapsedSeconds();

  // Stage 2: divide and conquer.
  stage_clock.Restart();
  Partition partition;
  if (options_.enable_partitioning) {
    partition = PartitionAtCuts(result.scheduled_graph, options_.partition);
  } else {
    // One segment: the whole graph.
    Segment whole;
    whole.subgraph = result.scheduled_graph;
    whole.orig_ids.resize(
        static_cast<std::size_t>(result.scheduled_graph.num_nodes()));
    for (graph::NodeId id = 0; id < result.scheduled_graph.num_nodes();
         ++id) {
      whole.orig_ids[static_cast<std::size_t>(id)] = id;
    }
    partition.segments.push_back(std::move(whole));
  }
  result.segment_sizes = partition.SegmentSizes();
  result.partition_seconds = stage_clock.ElapsedSeconds();

  // Stage 3: schedule each segment (conquer), then combine. A blown
  // deadline (real or injected) either degrades — beam/greedy over the
  // whole rewritten graph, always feasible — or fails, per options.
  stage_clock.Restart();
  bool deadline_blown = injected_timeout || remaining() <= 0;
  bool memory_blown = false;   // kResourceExhausted: degradable like time
  bool cancelled = false;      // kCancelled: clean failure, never degrade
  bool infeasible = false;  // kNoSolution: degradation cannot help
  std::string segment_failure;
  std::vector<sched::Schedule> segment_schedules;
  segment_schedules.reserve(partition.segments.size());
  for (const Segment& segment : partition.segments) {
    if (deadline_blown || memory_blown) break;
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      cancelled = true;
      break;
    }
    // Branch-and-bound seeding (strict pruning: same peak, same schedule,
    // fewer states — DESIGN.md "Branch-and-bound over levels").
    std::int64_t incumbent = kNoBudget;
    if (options_.enable_bound_pruning) {
      incumbent =
          SeedIncumbent(segment.subgraph, options_.incumbent_beam_width,
                        options_.memory_budget, options_.cancel);
      result.incumbent_seed_bytes =
          result.incumbent_seed_bytes < 0
              ? incumbent
              : std::min(result.incumbent_seed_bytes, incumbent);
    }
    if (options_.enable_soft_budgeting) {
      SoftBudgetOptions sb_options = options_.soft_budget;
      sb_options.incumbent_bytes =
          std::min(sb_options.incumbent_bytes, incumbent);
      sb_options.enable_bound_pruning = options_.enable_bound_pruning &&
                                        sb_options.enable_bound_pruning;
      sb_options.adaptive_parallelism = sb_options.adaptive_parallelism ||
                                        options_.adaptive_parallelism;
      sb_options.deadline_seconds =
          std::min(sb_options.deadline_seconds, remaining());
      sb_options.memory_budget = options_.memory_budget;
      sb_options.cancel = options_.cancel;
      SoftBudgetResult sb =
          ScheduleWithSoftBudget(segment.subgraph, sb_options);
      result.states_expanded += sb.TotalStates();
      result.states_pruned_by_bound += sb.TotalPrunedByBound();
      result.pruned += sb.TotalPruned();
      result.max_level_states =
          std::max(result.max_level_states, sb.max_level_states);
      if (sb.status != DpStatus::kSolution) {
        // A timeout or exhausted byte budget is degradable (beam/greedy
        // still satisfy the caller); kCancelled fails cleanly (the caller
        // left); kNoSolution means the hard budget itself is infeasible —
        // no fallback schedule could honor it either, so fail cleanly.
        if (sb.status == DpStatus::kNoSolution) {
          infeasible = true;
        } else if (sb.status == DpStatus::kCancelled) {
          cancelled = true;
        } else if (sb.status == DpStatus::kResourceExhausted) {
          memory_blown = true;
        } else {
          deadline_blown = true;
        }
        segment_failure = "segment '" + segment.subgraph.name() +
                          "' did not converge: " + ToString(sb.status);
        break;
      }
      segment_schedules.push_back(std::move(sb.schedule));
    } else {
      DpOptions dp_options = options_.dp;
      dp_options.incumbent_bytes =
          std::min(dp_options.incumbent_bytes, incumbent);
      dp_options.adaptive_parallelism = dp_options.adaptive_parallelism ||
                                        options_.adaptive_parallelism;
      dp_options.step_timeout_seconds =
          std::min(dp_options.step_timeout_seconds, remaining());
      dp_options.memory_budget = options_.memory_budget;
      dp_options.cancel = options_.cancel;
      const DpResult dp = ScheduleDp(segment.subgraph, dp_options);
      result.states_expanded += dp.states_expanded;
      result.states_pruned_by_bound += dp.states_pruned_by_bound;
      result.pruned += dp.pruned;
      result.max_level_states =
          std::max(result.max_level_states, dp.max_level_states);
      if (dp.status != DpStatus::kSolution) {
        if (dp.status == DpStatus::kNoSolution) {
          infeasible = true;
        } else if (dp.status == DpStatus::kCancelled) {
          cancelled = true;
        } else if (dp.status == DpStatus::kResourceExhausted) {
          memory_blown = true;
        } else {
          deadline_blown = true;
        }
        segment_failure = "segment '" + segment.subgraph.name() +
                          "' failed: " + ToString(dp.status);
        break;
      }
      segment_schedules.push_back(dp.schedule);
    }
    if (remaining() <= 0) deadline_blown = true;
  }

  if (cancelled) {
    // Clean failure: the requester is gone, so degrading would burn work
    // nobody reads. Partial levels were unwound (and their budget charges
    // refunded) inside the aborted search.
    result.cancelled = true;
    result.failure_reason = !segment_failure.empty()
                                ? segment_failure
                                : "planning cancelled by the caller";
    result.schedule_seconds = stage_clock.ElapsedSeconds();
    result.total_seconds = total_clock.ElapsedSeconds();
    return result;
  }

  if (infeasible) {
    result.failure_reason = segment_failure;
    result.schedule_seconds = stage_clock.ElapsedSeconds();
    result.total_seconds = total_clock.ElapsedSeconds();
    return result;
  }

  if (deadline_blown || memory_blown) {
    result.deadline_exceeded = deadline_blown;
    result.memory_exhausted = memory_blown;
    if (!options_.degrade_on_deadline) {
      result.failure_reason =
          !segment_failure.empty()
              ? segment_failure
              : "deadline of " + std::to_string(deadline) +
                    "s expired before scheduling completed";
      result.schedule_seconds = stage_clock.ElapsedSeconds();
      result.total_seconds = total_clock.ElapsedSeconds();
      return result;
    }
    // Degradation ladder: beam, then the greedy floor, over the whole
    // rewritten graph (partial segment schedules are discarded — both
    // fallbacks are orders of magnitude cheaper than what just timed
    // out). The better peak wins; quality records the winning rung.
    const sched::Schedule greedy =
        sched::GreedyMemorySchedule(result.scheduled_graph);
    const std::int64_t greedy_peak =
        sched::PeakFootprint(result.scheduled_graph, greedy);
    result.schedule = greedy;
    result.peak_bytes = greedy_peak;
    result.quality = PlanQuality::kGreedy;
    result.best_known_peak_bytes = greedy_peak;
    if (options_.degraded_beam_width > 0) {
      sched::BeamOptions beam_options;
      beam_options.width = options_.degraded_beam_width;
      beam_options.memory_budget = options_.memory_budget;
      beam_options.cancel = options_.cancel;
      sched::BeamResult beam =
          sched::ScheduleBeam(result.scheduled_graph, beam_options);
      result.states_expanded += beam.states_expanded;
      // A beam refused by the budget (or cancelled) leaves the greedy
      // floor standing — greedy needs no level storage, so a degraded
      // answer always exists.
      if (beam.status.ok()) {
        result.best_known_peak_bytes =
            std::min(result.best_known_peak_bytes, beam.peak_bytes);
        if (beam.peak_bytes < greedy_peak) {
          result.schedule = std::move(beam.schedule);
          result.peak_bytes = beam.peak_bytes;
          result.quality = PlanQuality::kBeam;
        }
      }
    }
    if (result.incumbent_seed_bytes >= 0) {
      result.best_known_peak_bytes = std::min(result.best_known_peak_bytes,
                                              result.incumbent_seed_bytes);
    }
    result.degraded = true;
    result.success = true;
    result.schedule_seconds = stage_clock.ElapsedSeconds();
    result.total_seconds = total_clock.ElapsedSeconds();
    SERENITY_CHECK(
        sched::IsTopologicalOrder(result.scheduled_graph, result.schedule))
        << "degraded schedule is not a valid topological order";
    return result;
  }

  result.schedule = CombineSegmentSchedules(partition, segment_schedules);
  result.schedule_seconds = stage_clock.ElapsedSeconds();

  SERENITY_CHECK(
      sched::IsTopologicalOrder(result.scheduled_graph, result.schedule))
      << "combined schedule is not a valid topological order";
  result.peak_bytes =
      sched::PeakFootprint(result.scheduled_graph, result.schedule);
  result.quality = PlanQuality::kExact;
  result.best_known_peak_bytes = result.peak_bytes;
  result.success = true;
  result.total_seconds = total_clock.ElapsedSeconds();
  return result;
}

}  // namespace serenity::core
