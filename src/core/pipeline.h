// The end-to-end SERENITY pipeline (paper Fig. 4):
//
//   G --IdentityGraphRewriter--> G' --divide&conquer--> segments
//     --DP + adaptive soft budgeting--> per-segment schedules --combine--> s*
//
// Pipeline::Run is the one-call public entry point used by the examples and
// benches; each stage can be toggled for the ablations in Table 2/Figure 13.
#ifndef SERENITY_CORE_PIPELINE_H_
#define SERENITY_CORE_PIPELINE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/dp_scheduler.h"
#include "core/partitioner.h"
#include "core/soft_budget.h"
#include "graph/graph.h"
#include "rewrite/rewriter.h"
#include "sched/schedule.h"

namespace serenity::core {

struct PipelineOptions {
  // Stage toggles. All on = full SERENITY; rewrite off = the paper's
  // "Dynamic Programming + Memory Allocator" configuration.
  bool enable_rewriting = true;
  bool enable_partitioning = true;
  bool enable_soft_budgeting = true;

  // Branch-and-bound seeding: before a segment's DP runs, the pipeline
  // obtains an achievable peak from the greedy memory baseline and a narrow
  // beam (whichever is lower) and hands it to the search as the incumbent
  // (DpOptions::incumbent_bytes). Pruning on the incumbent is strict, so
  // the returned peak and schedule are bit-identical to the unseeded search
  // — only states_expanded drops. The incumbent tightens whenever a better
  // complete schedule lands: greedy first, then the beam, then per-attempt
  // Kahn inside soft budgeting.
  bool enable_bound_pruning = true;
  // Seed-beam width. A few hundred states per level is still orders of
  // magnitude cheaper than the exact search, and a tighter incumbent
  // multiplies the branch-and-bound cut (on rewritten SwiftNet segments
  // width 8 leaves the incumbent ~40% above µ* and most of the cut on the
  // table; 256 reaches the two-step lookahead's ceiling on every paper
  // cell).
  int incumbent_beam_width = 256;

  // Expand big DP levels with min(hardware_concurrency, 64) threads
  // (DpOptions::adaptive_parallelism); small levels stay sequential. Safe
  // to default on: state counts are shard-count invariant by construction,
  // and the intrinsic relax tie-break makes the reconstructed schedule
  // shard-count invariant too, so results do not depend on the machine's
  // core count.
  bool adaptive_parallelism = true;

  rewrite::RewriteOptions rewrite;
  PartitionOptions partition;
  SoftBudgetOptions soft_budget;
  // Used when soft budgeting is disabled (plain Algorithm 1 per segment).
  DpOptions dp;
};

struct PipelineResult {
  bool success = false;        // false iff some segment hit kTimeout
  std::string failure_reason;  // human-readable, set when !success

  graph::Graph scheduled_graph;  // the (possibly rewritten) graph s* indexes
  sched::Schedule schedule;      // s*, over scheduled_graph's node ids
  std::int64_t peak_bytes = -1;  // µpeak of s* on scheduled_graph

  rewrite::RewriteReport rewrite_report;  // zeros when rewriting disabled
  std::vector<int> segment_sizes;         // Table 2's "{21, 19, 22}"
  std::uint64_t states_expanded = 0;      // summed across segments/attempts
  // Search-space cut by the branch-and-bound incumbent, summed like
  // states_expanded (0 when bound pruning is disabled).
  std::uint64_t states_pruned_by_bound = 0;
  // Widest sealed DP level across segments/attempts (shard-count
  // invariant); what the adaptive-parallelism threshold compares against.
  std::uint64_t max_level_states = 0;
  // Peak of the cheapest incumbent seed (greedy/beam) across segments — the
  // bound the DP had to beat; -1 when seeding is off.
  std::int64_t incumbent_seed_bytes = -1;
  double rewrite_seconds = 0.0;
  double partition_seconds = 0.0;
  double schedule_seconds = 0.0;
  double total_seconds = 0.0;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {})
      : options_(std::move(options)) {}

  PipelineResult Run(const graph::Graph& graph) const;

 private:
  PipelineOptions options_;
};

}  // namespace serenity::core

#endif  // SERENITY_CORE_PIPELINE_H_
