// SchedulerService: a long-lived scheduler-as-a-service front end.
//
// The serve-path contract (DESIGN.md "Serve path"): callers hand in graphs,
// the service hands back immutable CachedPlan snapshots. Three paths, in
// decreasing frequency under real traffic:
//
//   1. Cache hit — the canonical hash is already in the PlanCache; the plan
//      is returned immediately on the caller's thread, O(hash + lookup).
//   2. Coalesced — another request for the same structural graph is being
//      planned right now; the caller attaches to that request's future
//      instead of planning again (single-flight: one Pipeline::Run per
//      distinct graph no matter how many concurrent requesters).
//   3. Planned — the graph is enqueued to a worker pool; a worker runs the
//      full Pipeline (whose DP expansion can itself shard across
//      DpOptions::num_threads), inserts the plan into the cache, and
//      fulfills every attached future.
//
// Batching: ScheduleBatch submits a whole request batch up front — so
// distinct graphs plan concurrently across the pool while duplicates
// coalesce — then gathers the results in request order.
//
// Persistence rides on the cache: cache().SaveToFile / LoadFromFile give a
// restarted service a warm start (see examples/serenity_serve.cpp).
#ifndef SERENITY_SERVE_SCHEDULER_SERVICE_H_
#define SERENITY_SERVE_SCHEDULER_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/pipeline.h"
#include "graph/canonical_hash.h"
#include "serve/plan_cache.h"

namespace serenity::serve {

struct ServeOptions {
  core::PipelineOptions pipeline;    // how misses are planned
  int num_workers = 1;               // planning threads in the pool
  std::int64_t cache_capacity_bytes = 256ll << 20;
};

struct ServeResult {
  graph::GraphHash hash;
  // The served plan; nullptr iff planning failed (failure_reason says why).
  std::shared_ptr<const CachedPlan> plan;
  bool cache_hit = false;   // path 1: served from cache, no wait
  bool coalesced = false;   // path 2: waited on another request's planning
  std::string failure_reason;
};

// An in-flight submission. `cache_hit`/`coalesced` describe *this*
// submission (the shared future's ServeResult describes the planning run).
struct Submission {
  graph::GraphHash hash;
  std::shared_future<ServeResult> future;
  bool cache_hit = false;
  bool coalesced = false;
};

struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t planned = 0;
  std::uint64_t failures = 0;
  PlanCacheStats cache;
};

class SchedulerService {
 public:
  explicit SchedulerService(ServeOptions options = {});
  // Drains the queue (queued requests still complete) and joins the pool.
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  // Hashes `graph` and serves it via the fastest applicable path. The graph
  // is copied only when a planning job must be enqueued.
  Submission Submit(const graph::Graph& graph);

  // Submit + wait, with the per-submission path flags folded in.
  ServeResult Schedule(const graph::Graph& graph);

  // Submits the whole batch, then gathers results in request order.
  std::vector<ServeResult> ScheduleBatch(
      const std::vector<const graph::Graph*>& batch);

  ServiceStats stats() const;
  PlanCache& cache() { return cache_; }
  const ServeOptions& options() const { return options_; }

 private:
  struct Job {
    graph::GraphHash hash;
    graph::Graph graph;
    std::shared_ptr<std::promise<ServeResult>> promise;
  };

  void WorkerLoop();

  ServeOptions options_;
  PlanCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<Job> queue_;
  std::unordered_map<graph::GraphHash, std::shared_future<ServeResult>,
                     graph::GraphHashHasher>
      in_flight_;
  ServiceStats counters_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serenity::serve

#endif  // SERENITY_SERVE_SCHEDULER_SERVICE_H_
