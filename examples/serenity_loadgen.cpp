// Load generator for the serve TCP front end.
//
//   $ build/serenity_serve --serve 0 &      # prints "serving on port N"
//   $ build/serenity_loadgen --port N [--connections 4] [--requests 8]
//
// Plans a set of zoo cells over the wire, then hammers the server with
// --connections concurrent clients, each replaying the SAME deterministic
// request sequence (same plans, same input seeds). Verification is twofold:
//
//   1. bit-identity across connections — every connection's reply for
//      request r must match connection 0's reply for request r, bit for
//      bit. A server that leaks activations between pooled sessions, races
//      arena reuse, or corrupts frames under concurrency fails here.
//   2. a tolerance check against a local ReferenceExecutor run of the
//      original (pre-rewrite) graph — catching a server that is
//      self-consistent but wrong.
//
// Load sheds (kResourceExhausted) are retried after the server's
// retry-after hint; anything else fails the run. Exit 0 = all requests
// served and verified.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "models/zoo.h"
#include "runtime/executor.h"
#include "runtime/kernel_backend.h"
#include "serialize/serialize.h"
#include "serve/tcp_client.h"
#include "testing/runtime_inputs.h"
#include "testing/sink_compare.h"
#include "util/stopwatch.h"

namespace {

using namespace serenity;

struct RequestSpec {
  std::size_t plan_index = 0;
  std::uint64_t input_seed = 0;
};

struct ConnectionReport {
  std::string error;          // empty = clean
  int served = 0;
  int sheds_retried = 0;
  std::vector<std::vector<runtime::Tensor>> sinks;  // per request
};

constexpr int kMaxShedRetries = 50;

// Runs the shared request sequence on one fresh connection.
ConnectionReport RunConnection(int port,
                               const std::vector<serve::RemotePlan>& plans,
                               const std::vector<graph::Graph>& graphs,
                               const std::vector<RequestSpec>& sequence) {
  ConnectionReport report;
  util::StatusOr<serve::TcpClient> client = serve::TcpClient::Connect(port);
  if (!client.ok()) {
    report.error = client.status().ToString();
    return report;
  }
  for (const RequestSpec& spec : sequence) {
    const std::vector<runtime::Tensor> inputs =
        serenity::testing::RandomInputsFor(graphs[spec.plan_index],
                                           spec.input_seed);
    util::StatusOr<std::vector<runtime::Tensor>> sinks =
        util::UnavailableError("not attempted");
    for (int attempt = 0; attempt <= kMaxShedRetries; ++attempt) {
      sinks = client->Infer(plans[spec.plan_index].hash, inputs,
                            /*deadline_seconds=*/30.0);
      if (sinks.ok() ||
          sinks.status().code() != util::StatusCode::kResourceExhausted) {
        break;
      }
      ++report.sheds_retried;  // honor the server's back-off hint
      const std::uint32_t backoff =
          client->retry_after_millis() ? client->retry_after_millis() : 10;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    if (!sinks.ok()) {
      report.error = sinks.status().ToString();
      return report;
    }
    report.sinks.push_back(std::move(*sinks));
    ++report.served;
  }
  return report;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--connections N] [--requests M] "
               "[--backend=reference|blocked|avx2|auto]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  int connections = 4;
  int requests = 8;
  // Backend for the local cross-check executor (gate 2). Defaults to the
  // reference oracle; any other choice checks the server against that
  // backend's (bit-identical) kernels instead.
  runtime::Backend backend = runtime::Backend::kReference;
  for (int a = 1; a < argc; ++a) {
    auto next_int = [&](int* out) {
      if (a + 1 >= argc) return false;
      *out = std::atoi(argv[++a]);
      return true;
    };
    if (std::strcmp(argv[a], "--port") == 0) {
      if (!next_int(&port)) return Usage(argv[0]);
    } else if (std::strcmp(argv[a], "--connections") == 0) {
      if (!next_int(&connections)) return Usage(argv[0]);
    } else if (std::strcmp(argv[a], "--requests") == 0) {
      if (!next_int(&requests)) return Usage(argv[0]);
    } else if (std::strncmp(argv[a], "--backend=", 10) == 0) {
      const std::optional<runtime::Backend> parsed =
          runtime::ParseBackend(argv[a] + 10);
      if (!parsed.has_value()) return Usage(argv[0]);
      backend = *parsed;
    } else {
      return Usage(argv[0]);
    }
  }
  if (port <= 0 || connections < 1 || requests < 1) return Usage(argv[0]);

  // Plan the working set over the wire on a control connection.
  std::vector<graph::Graph> graphs;
  for (const char* name : {"Cell A", "Cell B", "Cell C"}) {
    graphs.push_back(
        models::FindBenchmarkCell("SwiftNet HPD", name).factory());
  }
  util::StatusOr<serve::TcpClient> control = serve::TcpClient::Connect(port);
  if (!control.ok()) {
    std::fprintf(stderr, "connect: %s\n", control.status().ToString().c_str());
    return 1;
  }
  std::vector<serve::RemotePlan> plans;
  for (const graph::Graph& g : graphs) {
    util::StatusOr<serve::RemotePlan> plan =
        control->Plan(serialize::ToText(g));
    if (!plan.ok()) {
      std::fprintf(stderr, "plan '%s': %s\n", g.name().c_str(),
                   plan.status().ToString().c_str());
      return 1;
    }
    std::printf("planned %-24s %s arena %.1f KB\n", g.name().c_str(),
                plan->cache_hit ? "(cache hit)" : "           ",
                static_cast<double>(plan->arena_bytes) / 1024.0);
    plans.push_back(*plan);
  }

  // One deterministic sequence, replayed verbatim by every connection.
  std::vector<RequestSpec> sequence;
  for (int r = 0; r < requests; ++r) {
    sequence.push_back(RequestSpec{static_cast<std::size_t>(r) % plans.size(),
                                   9000 + static_cast<std::uint64_t>(r)});
  }

  std::printf("loadgen: %d connections x %d requests against port %d\n",
              connections, requests, port);
  util::Stopwatch clock;
  std::vector<ConnectionReport> reports(
      static_cast<std::size_t>(connections));
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      reports[static_cast<std::size_t>(c)] =
          RunConnection(port, plans, graphs, sequence);
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = clock.ElapsedSeconds();

  int served = 0;
  int sheds_retried = 0;
  for (int c = 0; c < connections; ++c) {
    const ConnectionReport& report = reports[static_cast<std::size_t>(c)];
    if (!report.error.empty()) {
      std::fprintf(stderr, "connection %d failed: %s\n", c,
                   report.error.c_str());
      return 1;
    }
    served += report.served;
    sheds_retried += report.sheds_retried;
  }

  // Gate 1: every connection's replies are bit-identical to connection 0's.
  for (int c = 1; c < connections; ++c) {
    for (int r = 0; r < requests; ++r) {
      const std::string divergence =
          serenity::testing::DescribeSinkDivergence(
              reports[static_cast<std::size_t>(c)]
                  .sinks[static_cast<std::size_t>(r)],
              reports[0].sinks[static_cast<std::size_t>(r)]);
      if (!divergence.empty()) {
        std::fprintf(stderr,
                     "connection %d request %d diverged from connection 0: "
                     "%s\n",
                     c, r, divergence.c_str());
        return 1;
      }
    }
  }

  // Gate 2: connection 0's replies agree with a local reference run of the
  // original graph (tolerance: the server executes a rewritten twin).
  for (int r = 0; r < requests; ++r) {
    const RequestSpec& spec = sequence[static_cast<std::size_t>(r)];
    const graph::Graph& g = graphs[spec.plan_index];
    runtime::ReferenceExecutor reference(g, backend);
    reference.Run(serenity::testing::RandomInputsFor(g, spec.input_seed));
    const std::vector<runtime::Tensor> expect = reference.SinkValues();
    const std::vector<runtime::Tensor>& got =
        reports[0].sinks[static_cast<std::size_t>(r)];
    if (got.size() != expect.size()) {
      std::fprintf(stderr, "request %d: %zu sinks, reference has %zu\n", r,
                   got.size(), expect.size());
      return 1;
    }
    for (std::size_t s = 0; s < got.size(); ++s) {
      const float diff = got[s].MaxAbsDiff(expect[s]);
      if (!(diff <= 1e-4f)) {
        std::fprintf(stderr, "request %d sink %zu off reference by %g\n", r,
                     s, static_cast<double>(diff));
        return 1;
      }
    }
  }

  std::printf("served %d requests in %.3f s (%.1f req/s), %d sheds retried\n",
              served, seconds, static_cast<double>(served) / seconds,
              sheds_retried);
  std::printf("bit-identity: %d connections agree on all %d requests\n",
              connections, requests);
  util::StatusOr<std::string> stats = control->Stats();
  if (stats.ok()) std::printf("--- server stats ---\n%s", stats->c_str());
  return 0;
}
