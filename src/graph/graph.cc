#include "graph/graph.h"

#include <algorithm>
#include <queue>
#include <sstream>

namespace serenity::graph {

NodeId AddNodeImplCheck(const Node& node, int num_nodes) {
  for (NodeId input : node.inputs) {
    SERENITY_CHECK_GE(input, 0) << "node '" << node.name << "' has invalid input";
    SERENITY_CHECK_LT(input, num_nodes)
        << "node '" << node.name << "' references future node " << input
        << "; graphs are built in topological insertion order";
  }
  return static_cast<NodeId>(num_nodes);
}

NodeId Graph::AddNode(Node node) {
  node.id = AddNodeImplCheck(node, num_nodes());
  if (node.buffer == kInvalidBuffer) {
    SERENITY_CHECK(!MayAliasBuffer(node.kind))
        << "aliasing op '" << node.name << "' must be given an explicit buffer";
    node.buffer = AddBuffer(node.OutputBytes());
  } else {
    SERENITY_CHECK_GE(node.buffer, 0);
    SERENITY_CHECK_LT(node.buffer, num_buffers());
  }
  num_edges_ += static_cast<int>(node.inputs.size());
  for (NodeId input : node.inputs) {
    auto& list = consumers_[static_cast<std::size_t>(input)];
    if (std::find(list.begin(), list.end(), node.id) == list.end()) {
      list.push_back(node.id);
    }
  }
  consumers_.emplace_back();
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

BufferId Graph::AddBuffer(std::int64_t size_bytes) {
  SERENITY_CHECK_GE(size_bytes, 0);
  buffers_.push_back(Buffer{size_bytes});
  return static_cast<BufferId>(buffers_.size() - 1);
}

std::vector<NodeId> Graph::Sources() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.inputs.empty()) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Graph::Sinks() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (consumers(n.id).empty()) out.push_back(n.id);
  }
  return out;
}

namespace {

void ValidateNodeShapes(const Graph& graph, const Node& node,
                        std::vector<std::string>& problems) {
  const auto problem = [&](const std::string& msg) {
    std::ostringstream os;
    os << "node " << node.id << " ('" << node.name << "', "
       << ToString(node.kind) << "): " << msg;
    problems.push_back(os.str());
  };
  const auto in_shape = [&](std::size_t i) {
    return graph.node(node.inputs[i]).shape;
  };
  switch (node.kind) {
    case OpKind::kInput:
      if (!node.inputs.empty()) problem("input op must have no operands");
      break;
    case OpKind::kConv2d:
    case OpKind::kPartialConv2d:
      if (node.inputs.size() != 1) problem("expects exactly one operand");
      break;
    case OpKind::kPartialConv2dAccum:
      // Operand 0 is the running accumulator, operand 1 the input slice.
      if (node.inputs.size() != 2) problem("expects accumulator + input");
      if (node.inputs.size() == 2 &&
          graph.node(node.inputs[0]).buffer != node.buffer) {
        problem("accumulator operand must share the output buffer");
      }
      if (node.inputs.size() == 2 && !(in_shape(0) == node.shape)) {
        problem("accumulator shape must equal output shape");
      }
      break;
    case OpKind::kDepthwiseConv2d:
    case OpKind::kPartialDepthwiseConv2d:
      if (node.inputs.size() != 1) problem("expects exactly one operand");
      break;
    case OpKind::kConcat:
    case OpKind::kConcatView: {
      if (node.inputs.size() < 2) {
        problem("expects at least two operands");
        break;
      }
      int channel_sum = 0;
      for (std::size_t i = 0; i < node.inputs.size(); ++i) {
        const TensorShape s = in_shape(i);
        channel_sum += s.c;
        if (s.n != node.shape.n || s.h != node.shape.h ||
            s.w != node.shape.w) {
          problem("operand spatial dims mismatch concat output");
        }
      }
      if (channel_sum != node.shape.c) {
        problem("operand channels do not sum to output channels");
      }
      if (node.kind == OpKind::kConcatView) {
        for (NodeId input : node.inputs) {
          if (graph.node(input).buffer != node.buffer) {
            problem("concat-view operand must live in the shared buffer");
          }
        }
      }
      break;
    }
    case OpKind::kAdd:
    case OpKind::kMul:
      if (node.inputs.size() < 2) problem("expects at least two operands");
      for (std::size_t i = 0; i < node.inputs.size(); ++i) {
        if (!(in_shape(i) == node.shape)) {
          problem("elementwise operand shape mismatch");
        }
      }
      break;
    case OpKind::kRelu:
    case OpKind::kBatchNorm:
    case OpKind::kIdentity:
      if (node.inputs.size() != 1) problem("expects exactly one operand");
      if (!node.inputs.empty() && !(in_shape(0) == node.shape)) {
        problem("unary elementwise op must preserve shape");
      }
      break;
    case OpKind::kMaxPool2d:
    case OpKind::kAvgPool2d:
      if (node.inputs.size() != 1) problem("expects exactly one operand");
      if (!node.inputs.empty() && in_shape(0).c != node.shape.c) {
        problem("pooling must preserve channels");
      }
      break;
    case OpKind::kGlobalAvgPool2d:
      if (node.inputs.size() != 1) problem("expects exactly one operand");
      if (node.shape.h != 1 || node.shape.w != 1) {
        problem("global pool output must be 1x1 spatial");
      }
      break;
    case OpKind::kDense:
      if (node.inputs.size() != 1) problem("expects exactly one operand");
      break;
    case OpKind::kFusedCell:
      if (node.inputs.empty()) problem("expects at least one operand");
      for (std::size_t i = 0; i < node.inputs.size(); ++i) {
        if (!(in_shape(i) == in_shape(0))) {
          problem("fused-cell operands must agree in shape");
        }
      }
      break;
  }
}

}  // namespace

std::vector<std::string> Graph::Validate() const {
  std::vector<std::string> problems;
  // Referential integrity and acyclicity. AddNode enforces inputs < id, which
  // makes insertion order a topological order; verify the invariant held.
  for (const Node& n : nodes_) {
    for (NodeId input : n.inputs) {
      if (input < 0 || input >= num_nodes()) {
        problems.push_back("node " + std::to_string(n.id) +
                           " has out-of-range input");
      } else if (input >= n.id) {
        problems.push_back("node " + std::to_string(n.id) +
                           " breaks topological insertion order");
      }
    }
    if (n.buffer < 0 || n.buffer >= num_buffers()) {
      problems.push_back("node " + std::to_string(n.id) +
                         " has out-of-range buffer");
      continue;
    }
    const std::int64_t buffer_bytes = buffer(n.buffer).size_bytes;
    // A value must fit inside its buffer (equality for non-aliasing ops).
    const std::int64_t value_bytes = n.OutputBytes();
    if (MayAliasBuffer(n.kind) || n.kind == OpKind::kPartialConv2d) {
      if (value_bytes > buffer_bytes) {
        problems.push_back("node " + std::to_string(n.id) +
                           " value exceeds its shared buffer");
      }
      if (n.buffer_channel_offset < 0) {
        problems.push_back("node " + std::to_string(n.id) +
                           " negative buffer channel offset");
      }
    } else if (value_bytes != buffer_bytes) {
      problems.push_back("node " + std::to_string(n.id) +
                         " buffer size mismatch: value " +
                         std::to_string(value_bytes) + "B vs buffer " +
                         std::to_string(buffer_bytes) + "B");
    }
    if (n.shape.n <= 0 || n.shape.h <= 0 || n.shape.w <= 0 || n.shape.c <= 0) {
      problems.push_back("node " + std::to_string(n.id) +
                         " has non-positive shape dimension");
    }
  }
  if (!problems.empty()) return problems;  // shape checks need valid refs
  for (const Node& n : nodes_) {
    ValidateNodeShapes(*this, n, problems);
  }
  return problems;
}

void Graph::ValidateOrDie() const {
  const std::vector<std::string> problems = Validate();
  if (problems.empty()) return;
  for (const std::string& p : problems) {
    std::fprintf(stderr, "graph '%s': %s\n", name_.c_str(), p.c_str());
  }
  SERENITY_CHECK(false) << "graph validation failed with " << problems.size()
                        << " problem(s)";
}

std::int64_t NodeMacs(const Node& node, const Graph& graph) {
  const std::int64_t out_elems = node.shape.NumElements();
  switch (node.kind) {
    case OpKind::kConv2d:
      return out_elems * node.conv.kernel_h * node.conv.kernel_w *
             graph.node(node.inputs[0]).shape.c;
    case OpKind::kPartialConv2d:
      return out_elems * node.conv.kernel_h * node.conv.kernel_w *
             graph.node(node.inputs[0]).shape.c;
    case OpKind::kPartialConv2dAccum:
      // Operand 1 is the input slice; operand 0 is the accumulator.
      return out_elems * node.conv.kernel_h * node.conv.kernel_w *
             graph.node(node.inputs[1]).shape.c;
    case OpKind::kDepthwiseConv2d:
    case OpKind::kPartialDepthwiseConv2d:
      return out_elems * node.conv.kernel_h * node.conv.kernel_w;
    case OpKind::kFusedCell: {
      // sum of inputs + relu are free-ish; count the separable conv:
      // depthwise 3x3 plus pointwise 1x1.
      const int in_c = graph.node(node.inputs[0]).shape.c;
      return out_elems * node.conv.kernel_h * node.conv.kernel_w +
             out_elems * in_c;
    }
    case OpKind::kDense:
      return graph.node(node.inputs[0]).shape.NumElements() * node.shape.c;
    case OpKind::kAdd:
    case OpKind::kMul:
      return out_elems * static_cast<std::int64_t>(node.inputs.size() - 1);
    case OpKind::kBatchNorm:
      return out_elems;
    default:
      return 0;
  }
}

std::int64_t CountMacs(const Graph& graph) {
  std::int64_t total = 0;
  for (const Node& n : graph.nodes()) total += NodeMacs(n, graph);
  return total;
}

std::int64_t CountWeights(const Graph& graph) {
  std::int64_t total = 0;
  for (const Node& n : graph.nodes()) total += n.weight_count;
  return total;
}

}  // namespace serenity::graph
