#include "core/soft_budget.h"

#include <gtest/gtest.h>

#include "core/dp_scheduler.h"
#include "graph/builder.h"
#include "models/swiftnet.h"
#include "sched/baselines.h"
#include "sched/schedule.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace serenity::core {
namespace {

TEST(SoftBudget, FindsTheOptimalPeak) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  const SoftBudgetResult sb = ScheduleWithSoftBudget(g);
  ASSERT_EQ(sb.status, DpStatus::kSolution);
  const DpResult exact = ScheduleDp(g);
  ASSERT_EQ(exact.status, DpStatus::kSolution);
  EXPECT_EQ(sb.peak_bytes, exact.peak_bytes);
  EXPECT_TRUE(sched::IsTopologicalOrder(g, sb.schedule));
}

TEST(SoftBudget, HardBudgetComesFromKahn) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  const SoftBudgetResult sb = ScheduleWithSoftBudget(g);
  EXPECT_EQ(sb.tau_max,
            sched::PeakFootprint(g, sched::KahnFifoSchedule(g)));
  EXPECT_LE(sb.peak_bytes, sb.tau_max);
  EXPECT_LE(sb.tau_final, sb.tau_max);
}

TEST(SoftBudget, OptimalOnRandomDags) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    testing::RandomDagOptions opts;
    opts.num_ops = 12;
    const graph::Graph g =
        testing::RandomDag(rng, opts, "sb" + std::to_string(trial));
    const SoftBudgetResult sb = ScheduleWithSoftBudget(g);
    ASSERT_EQ(sb.status, DpStatus::kSolution);
    const DpResult exact = ScheduleDp(g);
    EXPECT_EQ(sb.peak_bytes, exact.peak_bytes) << g.name();
  }
}

TEST(SoftBudget, TimeoutPressureTriggersBinarySearch) {
  // With a per-step timeout of zero, every attempt except a final fallback
  // reports timeout; the search must still converge via the fallback and
  // remain optimal.
  const graph::Graph g = models::MakeSwiftNetCellA();
  SoftBudgetOptions options;
  options.step_timeout_seconds = 0.0;
  options.max_iterations = 6;
  const SoftBudgetResult sb = ScheduleWithSoftBudget(g, options);
  ASSERT_EQ(sb.status, DpStatus::kSolution);
  EXPECT_TRUE(sb.used_fallback);
  EXPECT_GT(sb.attempts.size(), 1u);
  const DpResult exact = ScheduleDp(g);
  EXPECT_EQ(sb.peak_bytes, exact.peak_bytes);
}

TEST(SoftBudget, AttemptLogIsCoherent) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  const SoftBudgetResult sb = ScheduleWithSoftBudget(g);
  ASSERT_FALSE(sb.attempts.empty());
  // First probe is at the hard budget.
  EXPECT_EQ(sb.attempts.front().budget_bytes, sb.tau_max);
  // The final attempt is the one that succeeded.
  EXPECT_EQ(sb.attempts.back().status, DpStatus::kSolution);
  EXPECT_EQ(sb.attempts.back().budget_bytes, sb.tau_final);
  EXPECT_EQ(sb.TotalStates(), [&] {
    std::uint64_t total = 0;
    for (const BudgetAttempt& a : sb.attempts) total += a.states_expanded;
    return total;
  }());
}

TEST(SoftBudget, TrivialGraphOneAttempt) {
  graph::GraphBuilder b("tiny");
  const graph::NodeId in = b.Input(graph::TensorShape{1, 4, 4, 1}, "in");
  (void)b.Relu(in, "out");
  const graph::Graph g = std::move(b).Build();
  const SoftBudgetResult sb = ScheduleWithSoftBudget(g);
  ASSERT_EQ(sb.status, DpStatus::kSolution);
  EXPECT_EQ(sb.attempts.size(), 1u);
  EXPECT_FALSE(sb.used_fallback);
}

}  // namespace
}  // namespace serenity::core
