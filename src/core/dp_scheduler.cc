#include "core/dp_scheduler.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/state_store.h"
#include "graph/analysis.h"
#include "testing/fault_injection.h"
#include "util/bitset.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace serenity::core {

const char* ToString(DpStatus status) {
  switch (status) {
    case DpStatus::kSolution:
      return "solution";
    case DpStatus::kNoSolution:
      return "no solution";
    case DpStatus::kTimeout:
      return "timeout";
    case DpStatus::kResourceExhausted:
      return "resource exhausted";
    case DpStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace {

// StateLevel::ShardOf derives the shard from the top 6 hash bits, so at
// most 64 shards can ever be populated; clamp thread/shard counts there.
constexpr int kMaxShards = 64;

int ShardCountFor(int num_threads) {
  int shards = 1;
  while (shards < num_threads && shards < kMaxShards) shards <<= 1;
  return shards;
}

class DpRunner {
 public:
  DpRunner(const graph::Graph& graph, const DpOptions& options)
      : options_(options),
        tables_(ExpansionTables::Build(graph)),
        hasher_(static_cast<std::size_t>(graph.num_nodes())),
        num_nodes_(static_cast<std::size_t>(graph.num_nodes())),
        words_(tables_.words_per_state()),
        bound_pruning_(options.incumbent_bytes != kNoBudget),
        incumbent_(options.incumbent_bytes),
        step_limit_(std::min(options.budget_bytes, options.incumbent_bytes)),
        lookahead_depth_(std::min(std::max(options.lookahead_depth, 2), 16)),
        cancel_(options.cancel),
        dominance_(options.dominance != nullptr &&
                           options.dominance->initialized()
                       ? options.dominance
                       : nullptr),
        reservation_(options.memory_budget) {
    if (dominance_ != nullptr) {
      // A mismatched table would prune against the wrong incumbent or read
      // the wrong signature width — both silent wrong-answer bugs.
      SERENITY_CHECK(bound_pruning_)
          << "a dominance table requires bound pruning";
      SERENITY_CHECK_EQ(dominance_->words_per_state(), words_);
      SERENITY_CHECK_EQ(dominance_->incumbent(), incumbent_);
    }
  }

  DpResult Run() {
    util::Stopwatch total_clock;
    DpResult result;
    recon_.resize(num_nodes_ + 1);

    // Fixed overhead of the run: graph-side expansion tables plus the two
    // Zobrist key streams. Charged up front so a budget below even the
    // constants fails before any level is built.
    fixed_bytes_ = tables_.ResidentBytes() +
                   static_cast<std::int64_t>(2 * num_nodes_ * 8);
    if (!reservation_.EnsureAtLeast(fixed_bytes_)) {
      result.status = DpStatus::kResourceExhausted;
      return Finish(result, total_clock);
    }

    const int configured =
        std::min(std::max(1, options_.num_threads), kMaxShards);
    // Adaptive mode: the thread pool a big level may escalate to. Derived
    // from the hardware once; whether a given level uses it is decided from
    // that level's reserve hint below.
    int auto_threads = 1;
    if (configured == 1 && options_.adaptive_parallelism) {
      auto_threads = std::min<int>(
          kMaxShards,
          std::max<int>(1, static_cast<int>(
                               std::thread::hardware_concurrency())));
    }

    // Level 0: the empty schedule (Algorithm 1 lines 4-5). When bounding,
    // the root's one-step floor is computed directly (every other state
    // gets its floor stored by the parent that inserts it).
    StateLevel current;
    current.Init(words_, 1, 1);
    const std::vector<std::uint64_t> empty(words_, 0);
    std::int64_t root_floor = StateLevel::kFloorUnknown;
    if (bound_pruning_) {
      std::vector<std::int32_t> root_frontier;
      ExpansionTables::FrontierAllocs root_allocs;
      tables_.AppendFrontier(empty.data(), &root_frontier, nullptr);
      tables_.ComputeFrontierAllocs(empty.data(), root_frontier,
                                    &root_allocs);
      root_floor = root_allocs.min1;
    }
    current.InsertOrRelax(empty.data(), SignatureHasher::kEmptyHash, 0, 0,
                          0, -1, -1, root_floor);
    current.Seal();

    for (std::size_t i = 0; i < num_nodes_; ++i) {
      util::Stopwatch level_clock;
      if (current.size() == 0) {
        // Every prefix of length i was pruned: the budget is below µ*.
        // (Bound pruning alone cannot empty a level — states on an optimal
        // path never exceed a valid incumbent.)
        result.status = DpStatus::kNoSolution;
        result.levels_completed = static_cast<int>(i);
        return Finish(result, total_clock);
      }
      if (CancelRequested()) {
        result.status = DpStatus::kCancelled;
        result.levels_completed = static_cast<int>(i);
        return Finish(result, total_clock);
      }
      const std::size_t hint =
          NextLevelReserveHint(current.size(), options_.max_states);
      int level_threads = configured;
      if (configured == 1 && auto_threads > 1 &&
          hint >= options_.parallel_threshold_states) {
        level_threads = auto_threads;
      }
      const int level_shards =
          level_threads > 1 ? ShardCountFor(level_threads) : 1;
      // Charge the next level's reserve before it allocates. The estimate
      // mirrors Init's reserve math exactly, so a successful charge means
      // Init itself stays within the reservation.
      if (!EnsureResident(current.ResidentBytes() +
                          StateLevel::EstimateBytes(words_, hint,
                                                    level_shards))) {
        result.status = DpStatus::kResourceExhausted;
        result.levels_completed = static_cast<int>(i);
        return Finish(result, total_clock);
      }
      StateLevel next;
      next.Init(words_, hint, level_shards);
      const bool last_level = i + 1 == num_nodes_;
      // Lookahead gate: the residual, frontier floor and dominance probes
      // are cheap enough (stored floors, has_cowriter fast paths, O(1)
      // lookups) to stay on whenever an incumbent exists; only the exact
      // depth-k probe — a bounded DFS per candidate — is gated.
      // Probe by default, back off after two consecutive zero-yield
      // levels, re-probe every 8th level, and re-arm immediately when the
      // floor pruned anything last level (a tight region: the deeper probe
      // likely pays too — this keeps the probe alive on sink-dominated
      // graphs whose tightness arrives late). The gate state is a pure
      // function of per-level totals, so it is identical across thread
      // counts.
      const bool probe_lookahead =
          bound_pruning_ && (lookahead_zero_streak_ < 2 || (i & 7) == 0 ||
                             floor_yield_last_level_);
      level_bounds_.push_back(!bound_pruning_ ? LevelBounds::kDisabled
                              : probe_lookahead ? LevelBounds::kFull
                                               : LevelBounds::kFloorOnly);
      level_pruned_ = PruneBreakdown{};
      const bool completed =
          level_threads > 1
              ? ExpandLevelSharded(current, next, level_threads, last_level,
                                   probe_lookahead, level_clock)
              : ExpandLevel(current, next, last_level, probe_lookahead,
                            level_clock);
      pruned_ += level_pruned_;
      if (probe_lookahead) {
        lookahead_zero_streak_ =
            level_pruned_.lookahead == 0 ? lookahead_zero_streak_ + 1 : 0;
      }
      floor_yield_last_level_ = level_pruned_.frontier_floor != 0;
      if (!completed ||
          level_clock.ElapsedSeconds() > options_.step_timeout_seconds) {
        // An aborted level's learned signatures are discarded: its batch
        // may be partial and thread-timing-dependent, and the dominance
        // table must stay deterministic.
        level_batch_.clear();
        result.status = completed ? DpStatus::kTimeout : AbortStatus();
        result.levels_completed = static_cast<int>(i);
        return Finish(result, total_clock);
      }
      if (dominance_ != nullptr && !level_batch_.empty()) {
        dominance_->Merge(&level_batch_);
      }
      next.Seal();
      max_level_states_ =
          std::max(max_level_states_,
                   static_cast<std::uint64_t>(next.size()));
      // The finished level keeps only its 8-byte reconstruction records;
      // signatures, hashes, footprints and peaks are freed here.
      recon_[i] = current.TakeReconAndRelease();
      recon_bytes_ += static_cast<std::int64_t>(recon_[i].capacity() *
                                                sizeof(ReconRecord));
      current = std::move(next);
      result.levels_completed = static_cast<int>(i) + 1;
    }

    if (current.size() == 0) {
      result.status = DpStatus::kNoSolution;
    } else {
      // A DAG has exactly one full signature (Algorithm 1 line 27).
      SERENITY_CHECK_EQ(current.size(), 1u);
      result.status = DpStatus::kSolution;
      result.peak_bytes = current.peak(0);
      recon_[num_nodes_] = current.TakeReconAndRelease();
      result.schedule = Reconstruct();
    }
    return Finish(result, total_clock);
  }

 private:
  // Why an expansion returned false. kTimeout keeps its historical meaning
  // (step timeout or state cap); memory and cancellation get their own
  // statuses so the pipeline can degrade or unwind accordingly.
  enum class Abort { kTimeout, kMemory, kCancelled };

  DpResult Finish(DpResult result, const util::Stopwatch& clock) const {
    result.states_expanded = states_expanded_;
    result.transitions = transitions_;
    result.pruned = pruned_;
    result.states_pruned_by_bound = pruned_.Total();
    result.level_bounds = level_bounds_;
    result.max_level_states = max_level_states_;
    result.seconds = clock.ElapsedSeconds();
    return result;
  }

  DpStatus AbortStatus() const {
    switch (abort_) {
      case Abort::kMemory: return DpStatus::kResourceExhausted;
      case Abort::kCancelled: return DpStatus::kCancelled;
      case Abort::kTimeout: break;
    }
    return DpStatus::kTimeout;
  }

  // Sticky cancellation poll. The kCancelPoll fault is consulted only when
  // a token is attached (a cancellable context), so runs without one are
  // immune to an armed countdown; sticky because the one-shot fault cannot
  // re-fire on the next poll. Thread-safe: workers of a sharded level poll
  // it concurrently.
  bool CancelRequested() {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (cancel_ == nullptr) return false;
    if (cancel_->cancelled() ||
        testing::FaultTriggered(testing::FaultPoint::kCancelPoll)) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  // Grows the run's high-water reservation to cover the state store's
  // current resident bytes (plus the fixed overhead and the accumulated
  // reconstruction records). Monotone: completed-level transients are
  // dropped eagerly but the reservation keeps the run's peak until the
  // whole run ends — the budget governs peaks, not instantaneous usage.
  bool EnsureResident(std::int64_t store_bytes) {
    // The dominance table grows only at level boundaries (single-threaded
    // merges), so reading its capacity here is race-free; the overshoot
    // between true-ups is bounded by one level's learned batch.
    const std::int64_t dominance_bytes =
        dominance_ != nullptr ? dominance_->ResidentBytes() : 0;
    return reservation_.EnsureAtLeast(fixed_bytes_ + recon_bytes_ +
                                      dominance_bytes + store_bytes);
  }

  // Records a signature proven dead (lower bound strictly above the
  // incumbent) into the level's pending dominance batch. No-op without an
  // attached table. The batch merges only if the level completes.
  void Learn(DominanceTable::PendingBatch* batch, std::uint64_t hash,
             const std::uint64_t* sig, std::int64_t lower_bound) {
    if (dominance_ != nullptr) batch->Add(hash, sig, words_, lower_bound);
  }

  // Sequential expansion of one level (Algorithm 1 lines 9-24, plus the
  // branch-and-bound cuts of DESIGN.md "Admissible bounds & dominance").
  // Returns false on step timeout or state-cap overrun.
  bool ExpandLevel(const StateLevel& current, StateLevel& next,
                   bool last_level, bool probe_lookahead,
                   const util::Stopwatch& level_clock) {
    std::vector<std::int32_t> frontier;
    std::vector<std::uint64_t> child(words_);
    ExpansionTables::FrontierAllocs allocs;
    ExpansionTables::LookaheadScratch scratch;
    for (std::size_t s = 0; s < current.size(); ++s) {
      if ((s & 0x3f) == 0 && s != 0 &&
          !CheckLimits(current, next, level_clock)) {
        return false;
      }
      const std::uint64_t* sig = current.signature(s);
      const std::int64_t peak = current.peak(s);
      const std::int64_t footprint = current.footprint(s);
      const std::uint64_t hash = current.hash(s);
      if (bound_pruning_) {
        // O(1) pre-frontier cuts. The stored floor was already tested when
        // this state was inserted, so it normally cannot fire here — it is
        // a defense against callers that seed levels without bounding (the
        // root path computes its floor directly).
        const std::int64_t sfloor = current.floor(s);
        if (sfloor >= 0 && sfloor != ExpansionTables::kNoAlloc &&
            footprint + sfloor > incumbent_) {
          ++level_pruned_.frontier_floor;
          Learn(&level_batch_, hash, sig, footprint + sfloor);
          continue;
        }
        if (dominance_ != nullptr &&
            dominance_->Lookup(hash, sig) > incumbent_) {
          // An earlier attempt (or level) proved every completion of this
          // signature peaks above the incumbent.
          ++level_pruned_.dominance;
          continue;
        }
      }
      frontier.clear();
      std::int64_t residual = 0;
      tables_.AppendFrontier(sig, &frontier,
                             bound_pruning_ ? &residual : nullptr);
      if (bound_pruning_ && std::max(peak, residual) > incumbent_) {
        // Every completion of this state peaks above a schedule we already
        // hold: cut the whole subtree before expanding a single child.
        // Only the residual half is a pure function of the signature, so
        // only it is learnable.
        if (residual > incumbent_) {
          ++level_pruned_.residual;
          Learn(&level_batch_, hash, sig, residual);
        } else {
          ++level_pruned_.incumbent;
        }
        continue;
      }
      if (bound_pruning_) {
        // Always computed (not gated): the children's stored floors come
        // from these allocs, and the has_cowriter fast path makes the scan
        // cheap enough to keep on for every level.
        tables_.ComputeFrontierAllocs(sig, frontier, &allocs);
      }
      for (const std::int32_t u : frontier) {
        ++transitions_;
        // Re-check the limits every ~4096 transitions so a single
        // pathological state expansion cannot overshoot them unboundedly.
        if ((transitions_ & 0xfff) == 0 &&
            !CheckLimits(current, next, level_clock)) {
          return false;
        }
        const ExpansionTables::Transition t =
            tables_.Apply(sig, u, footprint, step_limit_);
        if (t.step_peak > options_.budget_bytes) continue;  // prune (§3.2)
        if (t.step_peak > incumbent_) {
          ++level_pruned_.incumbent;
          continue;
        }
        std::copy(sig, sig + words_, child.data());
        util::SpanSetBit(child.data(), static_cast<std::size_t>(u));
        const std::uint64_t child_hash =
            hash ^ hasher_.key(static_cast<std::size_t>(u));
        std::int64_t child_floor = StateLevel::kFloorUnknown;
        if (bound_pruning_) {
          if (dominance_ != nullptr &&
              dominance_->Lookup(child_hash, child.data()) > incumbent_) {
            ++level_pruned_.dominance;
            continue;
          }
          // Child lookahead, cheap pass first: whatever the child
          // schedules next must peak at least child footprint + its
          // frontier's min alloc; if that survives, the (gated) exact
          // depth-k probe checks that some k-step start stays under the
          // incumbent. Both are admissible and pure functions of
          // the child signature, so every duplicate candidate agrees and
          // relax winners (hence the reconstructed schedule) are
          // preserved. A survivor's floor is stored in the child's SoA
          // slot — the memoized residual the next level reads back in O(1).
          child_floor = tables_.ChildNextAllocFloor(child.data(), u, allocs);
          if (child_floor != ExpansionTables::kNoAlloc &&
              t.footprint + child_floor > incumbent_) {
            ++level_pruned_.frontier_floor;
            Learn(&level_batch_, child_hash, child.data(),
                  t.footprint + child_floor);
            continue;
          }
          if (probe_lookahead && !last_level &&
              tables_.ChildLookaheadExceeds(
                  child.data(), t.footprint, u, frontier, incumbent_,
                  lookahead_depth_, &scratch, dominance_, &hasher_,
                  child_hash,
                  dominance_ != nullptr ? &level_batch_ : nullptr)) {
            ++level_pruned_.lookahead;
            // The probe proves every completion exceeds the incumbent; the
            // tightest sound sig-pure bound it certifies is I+1.
            Learn(&level_batch_, child_hash, child.data(), incumbent_ + 1);
            continue;
          }
        }
        if (next.InsertOrRelax(child.data(), child_hash,
                               t.footprint, std::max(peak, t.step_peak),
                               hasher_.candidate_tie(
                                   hash, static_cast<std::size_t>(u)),
                               static_cast<std::int32_t>(s), u,
                               child_floor)) {
          ++states_expanded_;
        }
      }
      if (states_expanded_ > options_.max_states) {
        abort_ = Abort::kTimeout;
        return false;
      }
    }
    return true;
  }

  // The sequential per-cadence limit probe: step timeout (and state cap,
  // checked per parent below) stay kTimeout; cancellation and a denied
  // budget true-up get their own abort reasons.
  bool CheckLimits(const StateLevel& current, const StateLevel& next,
                   const util::Stopwatch& level_clock) {
    if (level_clock.ElapsedSeconds() > options_.step_timeout_seconds) {
      abort_ = Abort::kTimeout;
      return false;
    }
    if (CancelRequested()) {
      abort_ = Abort::kCancelled;
      return false;
    }
    if (!EnsureResident(current.ResidentBytes() + next.ResidentBytes())) {
      abort_ = Abort::kMemory;
      return false;
    }
    return true;
  }

  // Sharded parallel expansion: every thread scans the whole parent level
  // (the frontier recomputation is duplicated — it is cheap) but computes
  // and inserts only the transitions whose child hash falls in its shards,
  // so each sub-table has exactly one writer and per-shard insertion order
  // is the same ascending (state, node) order regardless of scheduling —
  // the determinism argument in DESIGN.md. Bound pruning is a pure
  // function of the parent state and the transition, so every thread skips
  // the same parents and transitions; the pruned counter attributes each
  // skipped parent to one thread (s % num_threads) and each pruned
  // transition to its shard owner, keeping the total independent of the
  // thread count.
  bool ExpandLevelSharded(const StateLevel& current, StateLevel& next,
                          int num_threads, bool last_level,
                          bool probe_lookahead,
                          const util::Stopwatch& level_clock) {
    std::atomic<bool> abort{false};
    std::atomic<int> abort_reason{-1};  // first aborting worker's Abort
    std::atomic<std::uint64_t> transitions{0};
    std::atomic<std::uint64_t> created{0};
    // Per-thread prune attribution and learned-dead batches, summed and
    // concatenated in thread-index order after the join — the dominance
    // table itself is frozen (read-only) while the level runs, so workers
    // share it without synchronization.
    std::vector<PruneBreakdown> thread_pruned(
        static_cast<std::size_t>(num_threads));
    std::vector<DominanceTable::PendingBatch> thread_batch(
        static_cast<std::size_t>(num_threads));
    auto request_abort = [&](Abort reason) {
      int expected = -1;
      abort_reason.compare_exchange_strong(expected,
                                           static_cast<int>(reason),
                                           std::memory_order_relaxed);
      abort.store(true, std::memory_order_relaxed);
    };
    auto worker = [&](int thread_index) {
      std::vector<std::int32_t> frontier;
      std::vector<std::uint64_t> child(words_);
      ExpansionTables::FrontierAllocs allocs;
      ExpansionTables::LookaheadScratch scratch;
      PruneBreakdown& local_pruned =
          thread_pruned[static_cast<std::size_t>(thread_index)];
      DominanceTable::PendingBatch& local_batch =
          thread_batch[static_cast<std::size_t>(thread_index)];
      std::uint64_t local_transitions = 0;
      std::uint64_t local_created = 0;
      std::uint64_t since_check = 0;
      for (std::size_t s = 0; s < current.size(); ++s) {
        if (abort.load(std::memory_order_relaxed)) break;
        const std::uint64_t* sig = current.signature(s);
        const std::int64_t peak = current.peak(s);
        const std::int64_t footprint = current.footprint(s);
        const std::uint64_t hash = current.hash(s);
        // Every thread evaluates the same parent cuts (they are pure
        // functions of the state), but exactly one — the parent's owner —
        // counts and learns it.
        const bool owns_parent =
            static_cast<int>(s % static_cast<std::size_t>(num_threads)) ==
            thread_index;
        if (bound_pruning_) {
          const std::int64_t sfloor = current.floor(s);
          if (sfloor >= 0 && sfloor != ExpansionTables::kNoAlloc &&
              footprint + sfloor > incumbent_) {
            if (owns_parent) {
              ++local_pruned.frontier_floor;
              Learn(&local_batch, hash, sig, footprint + sfloor);
            }
            continue;
          }
          if (dominance_ != nullptr &&
              dominance_->Lookup(hash, sig) > incumbent_) {
            if (owns_parent) ++local_pruned.dominance;
            continue;
          }
        }
        frontier.clear();
        std::int64_t residual = 0;
        tables_.AppendFrontier(sig, &frontier,
                               bound_pruning_ ? &residual : nullptr);
        if (bound_pruning_ && std::max(peak, residual) > incumbent_) {
          if (owns_parent) {
            if (residual > incumbent_) {
              ++local_pruned.residual;
              Learn(&local_batch, hash, sig, residual);
            } else {
              ++local_pruned.incumbent;
            }
          }
          continue;
        }
        if (bound_pruning_) {
          tables_.ComputeFrontierAllocs(sig, frontier, &allocs);
        }
        for (const std::int32_t u : frontier) {
          const std::uint64_t child_hash =
              hash ^ hasher_.key(static_cast<std::size_t>(u));
          if (next.ShardOf(child_hash) % num_threads != thread_index) {
            continue;  // another thread owns this child's shard
          }
          ++local_transitions;
          if ((++since_check & 0xfff) == 0) {
            // Publish this worker's states before checking the cap, so the
            // cap is enforced *within* a level (overshoot is bounded by
            // ~4096 transitions per thread, matching the sequential path's
            // granularity) rather than only after it is fully materialized.
            created.fetch_add(local_created, std::memory_order_relaxed);
            local_created = 0;
            if (level_clock.ElapsedSeconds() >
                    options_.step_timeout_seconds ||
                states_expanded_ + created.load(std::memory_order_relaxed) >
                    options_.max_states) {
              request_abort(Abort::kTimeout);
              break;
            }
            // Budget true-ups wait for the level boundary (a worker cannot
            // read sibling shards' capacities while they grow), but
            // cancellation is just an atomic poll.
            if (CancelRequested()) {
              request_abort(Abort::kCancelled);
              break;
            }
          }
          const ExpansionTables::Transition t =
              tables_.Apply(sig, u, footprint, step_limit_);
          if (t.step_peak > options_.budget_bytes) continue;
          if (t.step_peak > incumbent_) {
            ++local_pruned.incumbent;
            continue;
          }
          std::copy(sig, sig + words_, child.data());
          util::SpanSetBit(child.data(), static_cast<std::size_t>(u));
          std::int64_t child_floor = StateLevel::kFloorUnknown;
          if (bound_pruning_) {
            if (dominance_ != nullptr &&
                dominance_->Lookup(child_hash, child.data()) > incumbent_) {
              ++local_pruned.dominance;
              continue;
            }
            child_floor =
                tables_.ChildNextAllocFloor(child.data(), u, allocs);
            if (child_floor != ExpansionTables::kNoAlloc &&
                t.footprint + child_floor > incumbent_) {
              ++local_pruned.frontier_floor;
              Learn(&local_batch, child_hash, child.data(),
                    t.footprint + child_floor);
              continue;
            }
            if (probe_lookahead && !last_level &&
                tables_.ChildLookaheadExceeds(
                    child.data(), t.footprint, u, frontier, incumbent_,
                    lookahead_depth_, &scratch, dominance_, &hasher_,
                    child_hash,
                    dominance_ != nullptr ? &local_batch : nullptr)) {
              ++local_pruned.lookahead;
              Learn(&local_batch, child_hash, child.data(), incumbent_ + 1);
              continue;
            }
          }
          if (next.InsertOrRelax(child.data(), child_hash, t.footprint,
                                 std::max(peak, t.step_peak),
                                 hasher_.candidate_tie(
                                   hash, static_cast<std::size_t>(u)),
                                 static_cast<std::int32_t>(s), u,
                                 child_floor)) {
            ++local_created;
          }
        }
      }
      transitions.fetch_add(local_transitions, std::memory_order_relaxed);
      created.fetch_add(local_created, std::memory_order_relaxed);
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
    for (std::thread& t : threads) t.join();
    transitions_ += transitions.load();
    states_expanded_ += created.load();
    for (int t = 0; t < num_threads; ++t) {
      level_pruned_ += thread_pruned[static_cast<std::size_t>(t)];
      // Thread-index concatenation order is cosmetic: Merge re-sorts by an
      // intrinsic key, so the retained set depends only on the batch
      // contents, which are a thread-count-invariant multiset.
      level_batch_.Append(
          std::move(thread_batch[static_cast<std::size_t>(t)]));
    }
    if (abort.load()) {
      abort_ = static_cast<Abort>(abort_reason.load());
      return false;
    }
    if (states_expanded_ > options_.max_states) {
      abort_ = Abort::kTimeout;
      return false;
    }
    return true;
  }

  sched::Schedule Reconstruct() const {
    sched::Schedule schedule(num_nodes_, graph::kInvalidNode);
    std::int32_t index = 0;
    for (std::size_t i = num_nodes_; i > 0; --i) {
      const ReconRecord& record =
          recon_[i][static_cast<std::size_t>(index)];
      schedule[i - 1] = static_cast<graph::NodeId>(record.last_node);
      index = record.prev_index;
    }
    return schedule;
  }

  const DpOptions options_;
  const ExpansionTables tables_;
  const SignatureHasher hasher_;
  const std::size_t num_nodes_;
  const std::size_t words_;
  const bool bound_pruning_;
  const std::int64_t incumbent_;
  // Transitions peaking above min(τ, incumbent) are dead either way, so
  // Apply may skip their free scan.
  const std::int64_t step_limit_;
  const int lookahead_depth_;
  const util::CancelToken* const cancel_;
  // Shared cross-attempt dominance table; nullptr when the caller did not
  // attach one (or attached an uninitialized one).
  DominanceTable* const dominance_;
  // High-water byte reservation against options_.memory_budget; refunded
  // in full when the runner is destroyed.
  util::BudgetReservation reservation_;
  std::int64_t fixed_bytes_ = 0;
  std::int64_t recon_bytes_ = 0;
  std::atomic<bool> cancelled_{false};
  Abort abort_ = Abort::kTimeout;
  std::vector<std::vector<ReconRecord>> recon_;
  std::uint64_t states_expanded_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t max_level_states_ = 0;
  // Prune attribution: per-level (reset in Run, filled by the expanders)
  // and whole-run totals.
  PruneBreakdown level_pruned_;
  PruneBreakdown pruned_;
  // Dead signatures learned during the current level; merged into
  // dominance_ at the level boundary iff the level completes.
  DominanceTable::PendingBatch level_batch_;
  // Per-level bound-configuration audit trail (DpResult::level_bounds).
  std::vector<LevelBounds> level_bounds_;
  // Lookahead gate state (see Run).
  int lookahead_zero_streak_ = 0;
  bool floor_yield_last_level_ = false;
};

}  // namespace

DpResult ScheduleDp(const graph::Graph& graph, const DpOptions& options) {
  SERENITY_CHECK_GT(graph.num_nodes(), 0) << "cannot schedule an empty graph";
  return DpRunner(graph, options).Run();
}

}  // namespace serenity::core
