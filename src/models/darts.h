// DARTS (Liu et al., ICLR 2019) — the learned normal cell for ImageNet.
//
// The paper schedules "only the first cell because it has the highest peak
// memory footprint" (§4.1). This generator encodes the published DARTS-V2
// normal-cell genotype: four intermediate states, each the sum of two ops
// applied to earlier states, with the cell output concatenating all four.
// Ops are built from primitives (separable and dilated separable convs as
// relu/dw/pw/bn chains), which is the granularity TFLite executes at.
//
//   normal = [(sep_conv_3x3, c_{k-2}), (sep_conv_3x3, c_{k-1}),   -> s2
//             (sep_conv_3x3, c_{k-2}), (sep_conv_3x3, c_{k-1}),   -> s3
//             (sep_conv_3x3, c_{k-1}), (skip_connect, c_{k-2}),   -> s4
//             (skip_connect, c_{k-2}), (dil_conv_3x3, s2)]        -> s5
//
// Nodes are declared in genotype order (each op's chain contiguous), the
// construction order a converter would serialize — i.e., TFLite's execution
// order for this cell.
#ifndef SERENITY_MODELS_DARTS_H_
#define SERENITY_MODELS_DARTS_H_

#include "graph/graph.h"

namespace serenity::models {

// The first ImageNet normal cell: two 28x28x48 input states (the stem
// outputs), C = 48 channels per op, output concat of 4 states (192ch).
graph::Graph MakeDartsNormalCell();

}  // namespace serenity::models

#endif  // SERENITY_MODELS_DARTS_H_
