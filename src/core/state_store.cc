#include "core/state_store.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace serenity::core {

namespace {

// SplitMix64 step — same generator as util::Rng, inlined so the hasher has
// no dependency on the RNG's stream position semantics.
std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::size_t NextPowerOfTwo(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Probe-table cell markers for the bounded mode. kEmpty terminates probe
// chains; tombstones (left by evictions) do not, so lookups stay correct
// after deletions and insertions may reuse the dead cell.
constexpr std::int32_t kEmptyCell = -1;
constexpr std::int32_t kTombstoneCell = -2;

}  // namespace

SignatureHasher::SignatureHasher(std::size_t num_nodes) {
  // Fixed seeds: hashes and tie keys (and therefore shard assignment and
  // back-pointer tie-breaks) are reproducible across runs and platforms.
  std::uint64_t state = 0x5e7e217f9a3c4d1bull;
  keys_.resize(num_nodes);
  for (std::uint64_t& key : keys_) key = SplitMix64(state);
  std::uint64_t tie_state = 0x3c6ef372fe94f82aull;
  tie_keys_.resize(num_nodes);
  for (std::uint64_t& key : tie_keys_) key = SplitMix64(tie_state);
}

void StateLevel::Init(std::size_t words_per_state,
                      std::size_t expected_states, int num_shards) {
  SERENITY_CHECK_GT(words_per_state, 0u);
  SERENITY_CHECK_GT(num_shards, 0);
  SERENITY_CHECK_EQ(num_shards & (num_shards - 1), 0)
      << "shard count must be a power of two";
  words_ = words_per_state;
  sealed_ = false;
  width_ = 0;  // unbounded mode
  shards_.assign(static_cast<std::size_t>(num_shards), Shard{});
  const std::size_t per_shard =
      expected_states / static_cast<std::size_t>(num_shards) + 1;
  for (Shard& shard : shards_) {
    shard.sig_arena.reserve(per_shard * words_);
    shard.hashes.reserve(per_shard);
    shard.footprint.reserve(per_shard);
    shard.peak.reserve(per_shard);
    shard.tie.reserve(per_shard);
    shard.recon.reserve(per_shard);
    // Open-addressing capacity for load factor <= 2/3 at the expected size.
    shard.slots.assign(
        NextPowerOfTwo(std::max<std::size_t>(16, per_shard * 3 / 2)), -1);
  }
}

bool StateLevel::InsertOrRelax(const std::uint64_t* sig, std::uint64_t hash,
                               std::int64_t footprint, std::int64_t peak,
                               std::uint64_t tie_key,
                               std::int32_t prev_index,
                               std::int32_t last_node) {
  SERENITY_CHECK(!sealed_);
  SERENITY_CHECK_EQ(width_, 0u) << "bounded level: use InsertBounded";
  return InsertOrRelaxShard(shards_[static_cast<std::size_t>(ShardOf(hash))],
                            sig, hash, footprint, peak, tie_key, prev_index,
                            last_node);
}

// ----------------------------------------------------- bounded (beam) mode

void StateLevel::InitBounded(std::size_t words_per_state, std::size_t width) {
  SERENITY_CHECK_GT(words_per_state, 0u);
  SERENITY_CHECK_GT(width, 0u);
  words_ = words_per_state;
  sealed_ = false;
  width_ = width;
  live_ = 0;
  tombstones_ = 0;
  evict_heap_.clear();
  free_slots_.clear();
  slot_gen_.clear();
  slot_live_.clear();
  shards_.assign(1, Shard{});
  Shard& shard = shards_[0];
  // At most width + 1 slots ever exist (the +1 is the state whose insertion
  // displaces the worst); reserve modestly — wide beams rarely fill.
  const std::size_t reserve = std::min<std::size_t>(width + 1, 1024);
  shard.sig_arena.reserve(reserve * words_);
  shard.hashes.reserve(reserve);
  shard.footprint.reserve(reserve);
  shard.peak.reserve(reserve);
  shard.tie.reserve(reserve);
  shard.recon.reserve(reserve);
  // Capacity >= 2*(width+2): live + tombstones stay under the 2/3 load
  // factor after every rebuild, so the table never needs to grow.
  shard.slots.assign(
      NextPowerOfTwo(std::max<std::size_t>(16, (width + 2) * 2)), kEmptyCell);
}

bool StateLevel::EvictLess(const EvictEntry& a, const EvictEntry& b) {
  // Max-heap ("worst survivor on top") over the intrinsic rank. Slot and
  // generation only make the comparator a total order for the heap; ties on
  // (peak, footprint, hash) between *live* entries require a 64-bit Zobrist
  // collision inside one level, which the fresh-top users treat as
  // unreachable.
  if (a.peak != b.peak) return a.peak < b.peak;
  if (a.footprint != b.footprint) return a.footprint < b.footprint;
  if (a.hash != b.hash) return a.hash < b.hash;
  if (a.slot != b.slot) return a.slot < b.slot;
  return a.gen < b.gen;
}

bool StateLevel::BoundedValueLess(std::int64_t peak, std::int64_t footprint,
                                  std::uint64_t hash,
                                  const std::uint64_t* sig,
                                  std::size_t si) const {
  const Shard& shard = shards_[0];
  if (peak != shard.peak[si]) return peak < shard.peak[si];
  if (footprint != shard.footprint[si]) return footprint < shard.footprint[si];
  if (hash != shard.hashes[si]) return hash < shard.hashes[si];
  const std::uint64_t* other = shard.sig_arena.data() + si * words_;
  for (std::size_t w = 0; w < words_; ++w) {
    if (sig[w] != other[w]) return sig[w] < other[w];
  }
  return false;  // identical value (same signature)
}

void StateLevel::PushEvictEntry(std::size_t si) {
  const Shard& shard = shards_[0];
  evict_heap_.push_back(EvictEntry{shard.peak[si], shard.footprint[si],
                                   shard.hashes[si],
                                   static_cast<std::int32_t>(si),
                                   slot_gen_[si]});
  std::push_heap(evict_heap_.begin(), evict_heap_.end(), EvictLess);
  // Relax chains and evictions leave stale snapshots behind; compact once
  // they dominate so the heap stays O(width), amortised O(1) per insert.
  if (evict_heap_.size() > std::max<std::size_t>(64, 4 * width_)) {
    std::vector<EvictEntry> fresh;
    fresh.reserve(live_);
    for (const EvictEntry& e : evict_heap_) {
      const std::size_t slot = static_cast<std::size_t>(e.slot);
      if (slot_live_[slot] && slot_gen_[slot] == e.gen &&
          shard.peak[slot] == e.peak) {
        fresh.push_back(e);
      }
    }
    evict_heap_ = std::move(fresh);
    std::make_heap(evict_heap_.begin(), evict_heap_.end(), EvictLess);
  }
}

std::size_t StateLevel::FreshWorstSlot() {
  const Shard& shard = shards_[0];
  for (;;) {
    SERENITY_CHECK(!evict_heap_.empty());
    const EvictEntry& top = evict_heap_.front();
    const std::size_t si = static_cast<std::size_t>(top.slot);
    if (slot_live_[si] && slot_gen_[si] == top.gen &&
        shard.peak[si] == top.peak) {
      return si;
    }
    std::pop_heap(evict_heap_.begin(), evict_heap_.end(), EvictLess);
    evict_heap_.pop_back();
  }
}

void StateLevel::EvictSlot(std::size_t si) {
  Shard& shard = shards_[0];
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t cell = static_cast<std::size_t>(shard.hashes[si]) & mask;
  while (shard.slots[cell] != static_cast<std::int32_t>(si)) {
    SERENITY_CHECK(shard.slots[cell] != kEmptyCell);
    cell = (cell + 1) & mask;
  }
  shard.slots[cell] = kTombstoneCell;
  ++tombstones_;
  ++slot_gen_[si];  // invalidates every heap snapshot of this tenancy
  slot_live_[si] = 0;
  --live_;
  free_slots_.push_back(static_cast<std::int32_t>(si));
}

void StateLevel::RebuildBoundedTable() {
  Shard& shard = shards_[0];
  std::fill(shard.slots.begin(), shard.slots.end(), kEmptyCell);
  tombstones_ = 0;
  const std::size_t mask = shard.slots.size() - 1;
  for (std::size_t i = 0; i < shard.count; ++i) {
    if (!slot_live_[i]) continue;
    std::size_t cell = static_cast<std::size_t>(shard.hashes[i]) & mask;
    while (shard.slots[cell] != kEmptyCell) cell = (cell + 1) & mask;
    shard.slots[cell] = static_cast<std::int32_t>(i);
  }
}

bool StateLevel::InsertBounded(const std::uint64_t* sig, std::uint64_t hash,
                               std::int64_t footprint, std::int64_t peak,
                               std::uint64_t tie_key,
                               std::int32_t prev_index,
                               std::int32_t last_node) {
  SERENITY_CHECK(!sealed_);
  SERENITY_CHECK_GT(width_, 0u) << "unbounded level: use InsertOrRelax";
  Shard& shard = shards_[0];
  if ((live_ + tombstones_ + 1) * 3 > shard.slots.size() * 2) {
    RebuildBoundedTable();
  }
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t cell = static_cast<std::size_t>(hash) & mask;
  std::size_t reuse_cell = shard.slots.size();  // first tombstone on the path
  for (;;) {
    const std::int32_t s = shard.slots[cell];
    if (s == kEmptyCell) break;
    if (s == kTombstoneCell) {
      if (reuse_cell == shard.slots.size()) reuse_cell = cell;
    } else {
      const std::size_t si = static_cast<std::size_t>(s);
      if (shard.hashes[si] == hash &&
          util::SpanEqual(shard.sig_arena.data() + si * words_, sig,
                          words_)) {
        // Live duplicate: relax exactly as InsertOrRelax does. A strictly
        // lower peak improves the slot's rank, so its heap snapshot is
        // re-pushed (the old one goes stale via the peak mismatch).
        SERENITY_CHECK_EQ(shard.footprint[si], footprint);
        if (peak < shard.peak[si]) {
          shard.peak[si] = peak;
          shard.tie[si] = tie_key;
          shard.recon[si] = ReconRecord{prev_index, last_node};
          PushEvictEntry(si);
        } else if (peak == shard.peak[si] && tie_key < shard.tie[si]) {
          shard.tie[si] = tie_key;
          shard.recon[si] = ReconRecord{prev_index, last_node};
        }
        return false;
      }
    }
    cell = (cell + 1) & mask;
  }
  if (reuse_cell == shard.slots.size()) reuse_cell = cell;

  if (live_ >= width_) {
    // Full level: entering is equivalent to insert-then-evict-the-worst,
    // decided without the churn. Because the rank is intrinsic to the
    // state's value — never its arrival position — a signature that was
    // evicted earlier and arrives again with a better peak re-enters with
    // exactly the rank batch dedup would have given it, which is what makes
    // the streaming survivors identical to seal-and-copy pruning.
    const std::size_t worst = FreshWorstSlot();
    if (!BoundedValueLess(peak, footprint, hash, sig, worst)) return false;
    EvictSlot(worst);
  }

  std::int32_t target;
  if (!free_slots_.empty()) {
    target = free_slots_.back();
    free_slots_.pop_back();
    const std::size_t ti = static_cast<std::size_t>(target);
    std::copy(sig, sig + words_, shard.sig_arena.data() + ti * words_);
    shard.hashes[ti] = hash;
    shard.footprint[ti] = footprint;
    shard.peak[ti] = peak;
    shard.tie[ti] = tie_key;
    shard.recon[ti] = ReconRecord{prev_index, last_node};
    slot_live_[ti] = 1;
  } else {
    target = static_cast<std::int32_t>(shard.count);
    shard.sig_arena.insert(shard.sig_arena.end(), sig, sig + words_);
    shard.hashes.push_back(hash);
    shard.footprint.push_back(footprint);
    shard.peak.push_back(peak);
    shard.tie.push_back(tie_key);
    shard.recon.push_back(ReconRecord{prev_index, last_node});
    slot_gen_.push_back(0);
    slot_live_.push_back(1);
    ++shard.count;
  }
  if (shard.slots[reuse_cell] == kTombstoneCell) {
    --tombstones_;  // the new entry resurrects a dead cell
  }
  shard.slots[reuse_cell] = target;
  ++live_;
  PushEvictEntry(static_cast<std::size_t>(target));
  return true;
}

void StateLevel::SealBounded() {
  SERENITY_CHECK(!sealed_);
  SERENITY_CHECK_GT(width_, 0u);
  Shard& shard = shards_[0];
  std::vector<std::int32_t> keep;
  keep.reserve(live_);
  for (std::size_t i = 0; i < shard.count; ++i) {
    if (slot_live_[i]) keep.push_back(static_cast<std::int32_t>(i));
  }
  SERENITY_CHECK_EQ(keep.size(), live_);
  // Best-first intrinsic order: deterministic, independent of arrival and
  // eviction history — the order the reference seal-and-copy path must
  // reproduce for the bit-identity property suite.
  std::sort(keep.begin(), keep.end(),
            [this, &shard](std::int32_t a, std::int32_t b) {
              const std::size_t ia = static_cast<std::size_t>(a);
              return BoundedValueLess(
                  shard.peak[ia], shard.footprint[ia], shard.hashes[ia],
                  shard.sig_arena.data() + ia * words_,
                  static_cast<std::size_t>(b));
            });
  Shard out;
  out.count = keep.size();
  out.sig_arena.reserve(keep.size() * words_);
  out.hashes.reserve(keep.size());
  out.footprint.reserve(keep.size());
  out.peak.reserve(keep.size());
  out.tie.reserve(keep.size());
  out.recon.reserve(keep.size());
  for (const std::int32_t index : keep) {
    const std::size_t i = static_cast<std::size_t>(index);
    const std::uint64_t* sig = shard.sig_arena.data() + i * words_;
    out.sig_arena.insert(out.sig_arena.end(), sig, sig + words_);
    out.hashes.push_back(shard.hashes[i]);
    out.footprint.push_back(shard.footprint[i]);
    out.peak.push_back(shard.peak[i]);
    out.tie.push_back(shard.tie[i]);
    out.recon.push_back(shard.recon[i]);
  }
  shards_[0] = std::move(out);
  sealed_ = true;
  evict_heap_ = {};
  free_slots_ = {};
  slot_gen_ = {};
  slot_live_ = {};
}

bool StateLevel::InsertOrRelaxShard(Shard& shard, const std::uint64_t* sig,
                                    std::uint64_t hash,
                                    std::int64_t footprint,
                                    std::int64_t peak,
                                    std::uint64_t tie_key,
                                    std::int32_t prev_index,
                                    std::int32_t last_node) {
  if ((shard.count + 1) * 3 > shard.slots.size() * 2) GrowTable(shard);
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t slot = static_cast<std::size_t>(hash) & mask;
  for (;;) {
    const std::int32_t s = shard.slots[slot];
    if (s < 0) {
      shard.slots[slot] = static_cast<std::int32_t>(shard.count);
      shard.sig_arena.insert(shard.sig_arena.end(), sig, sig + words_);
      shard.hashes.push_back(hash);
      shard.footprint.push_back(footprint);
      shard.peak.push_back(peak);
      shard.tie.push_back(tie_key);
      shard.recon.push_back(ReconRecord{prev_index, last_node});
      ++shard.count;
      return true;
    }
    const std::size_t si = static_cast<std::size_t>(s);
    if (shard.hashes[si] == hash &&
        util::SpanEqual(shard.sig_arena.data() + si * words_, sig, words_)) {
      // Same signature ⇒ same µ (mechanically re-checked here); the lower
      // peak wins, equal peaks resolve to the lower intrinsic tie key so
      // the surviving back-pointer is independent of candidate arrival
      // order (and therefore of pruning and shard count).
      SERENITY_CHECK_EQ(shard.footprint[si], footprint);
      if (peak < shard.peak[si] ||
          (peak == shard.peak[si] && tie_key < shard.tie[si])) {
        shard.peak[si] = peak;
        shard.tie[si] = tie_key;
        shard.recon[si] = ReconRecord{prev_index, last_node};
      }
      return false;
    }
    slot = (slot + 1) & mask;
  }
}

void StateLevel::GrowTable(Shard& shard) {
  const std::size_t capacity = shard.slots.size() * 2;
  shard.slots.assign(capacity, -1);
  const std::size_t mask = capacity - 1;
  for (std::size_t i = 0; i < shard.count; ++i) {
    std::size_t slot = static_cast<std::size_t>(shard.hashes[i]) & mask;
    while (shard.slots[slot] >= 0) slot = (slot + 1) & mask;
    shard.slots[slot] = static_cast<std::int32_t>(i);
  }
}

void StateLevel::Seal() {
  SERENITY_CHECK(!sealed_);
  SERENITY_CHECK_EQ(width_, 0u) << "bounded level: use SealBounded";
  sealed_ = true;
  if (shards_.size() == 1) {
    shards_[0].slots = {};
    return;
  }
  Shard merged;
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.count;
  merged.sig_arena.reserve(total * words_);
  merged.hashes.reserve(total);
  merged.footprint.reserve(total);
  merged.peak.reserve(total);
  merged.tie.reserve(total);
  merged.recon.reserve(total);
  merged.count = total;
  for (Shard& shard : shards_) {
    merged.sig_arena.insert(merged.sig_arena.end(), shard.sig_arena.begin(),
                            shard.sig_arena.end());
    merged.hashes.insert(merged.hashes.end(), shard.hashes.begin(),
                         shard.hashes.end());
    merged.footprint.insert(merged.footprint.end(), shard.footprint.begin(),
                            shard.footprint.end());
    merged.peak.insert(merged.peak.end(), shard.peak.begin(),
                       shard.peak.end());
    merged.tie.insert(merged.tie.end(), shard.tie.begin(),
                      shard.tie.end());
    merged.recon.insert(merged.recon.end(), shard.recon.begin(),
                        shard.recon.end());
    shard = Shard{};  // free as we go
  }
  shards_.assign(1, Shard{});
  shards_[0] = std::move(merged);
}

std::size_t StateLevel::size() const {
  if (sealed_) return shards_[0].count;
  if (width_ > 0) return live_;  // bounded mode: slots may hold dead states
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.count;
  return total;
}

std::int64_t StateLevel::ResidentBytes() const {
  std::int64_t bytes = 0;
  for (const Shard& shard : shards_) {
    bytes += static_cast<std::int64_t>(shard.sig_arena.capacity()) * 8;
    bytes += static_cast<std::int64_t>(shard.hashes.capacity()) * 8;
    bytes += static_cast<std::int64_t>(shard.footprint.capacity()) * 8;
    bytes += static_cast<std::int64_t>(shard.peak.capacity()) * 8;
    bytes += static_cast<std::int64_t>(shard.tie.capacity()) * 8;
    bytes += static_cast<std::int64_t>(shard.recon.capacity() *
                                       sizeof(ReconRecord));
    bytes += static_cast<std::int64_t>(shard.slots.capacity()) * 4;
  }
  bytes += static_cast<std::int64_t>(evict_heap_.capacity() *
                                     sizeof(EvictEntry));
  bytes += static_cast<std::int64_t>(free_slots_.capacity()) * 4;
  bytes += static_cast<std::int64_t>(slot_gen_.capacity()) * 4;
  bytes += static_cast<std::int64_t>(slot_live_.capacity());
  return bytes;
}

std::int64_t StateLevel::EstimateBytes(std::size_t words_per_state,
                                       std::size_t expected_states,
                                       int num_shards) {
  const std::size_t per_shard =
      expected_states / static_cast<std::size_t>(num_shards) + 1;
  const std::size_t slots =
      NextPowerOfTwo(std::max<std::size_t>(16, per_shard * 3 / 2));
  const std::int64_t per_shard_bytes =
      static_cast<std::int64_t>(per_shard * words_per_state) * 8 +  // arena
      static_cast<std::int64_t>(per_shard) *
          (8 + 8 + 8 + 8 + static_cast<std::int64_t>(sizeof(ReconRecord))) +
      static_cast<std::int64_t>(slots) * 4;
  return per_shard_bytes * num_shards;
}

std::vector<ReconRecord> StateLevel::TakeReconAndRelease() {
  SERENITY_CHECK(sealed_);
  std::vector<ReconRecord> recon = std::move(shards_[0].recon);
  shards_.clear();
  return recon;
}

StateLevel StateLevel::Select(const std::vector<std::int32_t>& keep) const {
  SERENITY_CHECK(sealed_);
  StateLevel out;
  out.words_ = words_;
  out.sealed_ = true;
  out.shards_.assign(1, Shard{});
  Shard& dst = out.shards_[0];
  const Shard& src = shards_[0];
  dst.count = keep.size();
  dst.sig_arena.reserve(keep.size() * words_);
  dst.hashes.reserve(keep.size());
  dst.footprint.reserve(keep.size());
  dst.peak.reserve(keep.size());
  dst.tie.reserve(keep.size());
  dst.recon.reserve(keep.size());
  for (const std::int32_t index : keep) {
    const std::size_t i = static_cast<std::size_t>(index);
    SERENITY_CHECK_LT(i, src.count);
    const std::uint64_t* sig = src.sig_arena.data() + i * words_;
    dst.sig_arena.insert(dst.sig_arena.end(), sig, sig + words_);
    dst.hashes.push_back(src.hashes[i]);
    dst.footprint.push_back(src.footprint[i]);
    dst.peak.push_back(src.peak[i]);
    dst.tie.push_back(src.tie[i]);
    dst.recon.push_back(src.recon[i]);
  }
  return out;
}

ExpansionTables::ExpansionTables(const graph::Graph& graph,
                                 const graph::BufferUseTable& table,
                                 const graph::AdjacencyBitsets& adjacency) {
  num_nodes_ = static_cast<std::size_t>(graph.num_nodes());
  words_ = (num_nodes_ + 63) / 64;
  const std::size_t tail = num_nodes_ & 63;
  last_word_mask_ =
      tail == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail) - 1;

  preds_.resize(num_nodes_ * words_);
  for (std::size_t u = 0; u < num_nodes_; ++u) {
    const util::Bitset64& p = adjacency.preds[u];
    SERENITY_CHECK_EQ(p.num_words(), words_);
    std::copy(p.words(), p.words() + words_, preds_.data() + u * words_);
  }

  const std::size_t num_buffers =
      static_cast<std::size_t>(graph.num_buffers());
  buffer_writers_.assign(num_buffers * words_, 0);
  touchers_arena_.resize(num_buffers * words_);
  for (std::size_t b = 0; b < num_buffers; ++b) {
    const graph::BufferUse& use = table.buffers[b];
    for (const graph::NodeId w : use.writers) {
      util::SpanSetBit(buffer_writers_.data() + b * words_,
                       static_cast<std::size_t>(w));
    }
    SERENITY_CHECK_EQ(use.touchers.num_words(), words_);
    std::copy(use.touchers.words(), use.touchers.words() + words_,
              touchers_arena_.data() + b * words_);
  }

  own_buffer_.resize(num_nodes_);
  own_size_.resize(num_nodes_);
  freeable_begin_.assign(num_nodes_ + 1, 0);
  for (std::size_t u = 0; u < num_nodes_; ++u) {
    const graph::Node& node = graph.node(static_cast<graph::NodeId>(u));
    own_buffer_[u] = static_cast<std::int32_t>(node.buffer);
    own_size_[u] =
        table.buffers[static_cast<std::size_t>(node.buffer)].size_bytes;
    for (const graph::BufferId b : table.touched_buffers[u]) {
      const graph::BufferUse& use =
          table.buffers[static_cast<std::size_t>(b)];
      if (use.is_sink) continue;  // never freed — drop at build time
      freeables_.push_back(Freeable{
          static_cast<std::uint32_t>(static_cast<std::size_t>(b) * words_),
          use.size_bytes});
    }
    freeable_begin_[u + 1] = static_cast<std::uint32_t>(freeables_.size());
  }
  min_step_bytes_ = table.MinStepFootprints();
  succ_begin_.assign(num_nodes_ + 1, 0);
  for (std::size_t u = 0; u < num_nodes_; ++u) {
    const auto& consumers = graph.consumers(static_cast<graph::NodeId>(u));
    for (const graph::NodeId c : consumers) {
      succs_arena_.push_back(static_cast<std::int32_t>(c));
    }
    succ_begin_[u + 1] = static_cast<std::uint32_t>(succs_arena_.size());
  }
}

void ExpansionTables::AppendFrontier(const std::uint64_t* sig,
                                     std::vector<std::int32_t>* out,
                                     std::int64_t* residual_bound) const {
  // The residual max rides the candidate scan only when a caller asks for
  // it (the nullptr test is loop-invariant, so the beam and unpruned DP
  // paths pay nothing beyond the unswitched branch).
  std::int64_t residual = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t candidates = ~sig[w];
    if (w + 1 == words_) candidates &= last_word_mask_;
    while (candidates != 0) {
      const std::size_t u =
          w * 64 + static_cast<std::size_t>(__builtin_ctzll(candidates));
      candidates &= candidates - 1;
      if (residual_bound != nullptr) {
        residual = std::max(residual, min_step_bytes_[u]);
      }
      if (util::SpanIsSubsetOf(preds_.data() + u * words_, sig, words_)) {
        out->push_back(static_cast<std::int32_t>(u));
      }
    }
  }
  if (residual_bound != nullptr) *residual_bound = residual;
}

void ExpansionTables::ComputeFrontierAllocs(
    const std::uint64_t* sig, const std::vector<std::int32_t>& frontier,
    FrontierAllocs* out) const {
  out->alloc.clear();
  out->shared_positive.clear();
  out->min1 = kNoAlloc;
  out->min2 = kNoAlloc;
  out->argmin_node = -1;
  for (const std::int32_t v : frontier) {
    const std::size_t vi = static_cast<std::size_t>(v);
    const std::int32_t buffer = own_buffer_[vi];
    const std::uint64_t* writers =
        buffer_writers_.data() + static_cast<std::size_t>(buffer) * words_;
    const bool allocated = util::SpanIntersects(writers, sig, words_);
    const std::int64_t alloc = allocated ? 0 : own_size_[vi];
    out->alloc.push_back(alloc);
    if (alloc < out->min1) {
      out->min2 = out->min1;
      out->min1 = alloc;
      out->argmin_node = v;
    } else if (alloc < out->min2) {
      out->min2 = alloc;
    }
    if (alloc > 0) {
      // A positive alloc on a *shared* buffer can be zeroed by a sibling
      // writer in the same frontier; remember it for ChildNextAllocFloor.
      bool shared = false;
      for (std::size_t w = 0; w < words_; ++w) {
        const std::uint64_t others =
            w == vi / 64 ? writers[w] & ~(std::uint64_t{1} << (vi & 63))
                         : writers[w];
        if (others != 0) {
          shared = true;
          break;
        }
      }
      if (shared) out->shared_positive.push_back({buffer, v});
    }
  }
  std::sort(out->shared_positive.begin(), out->shared_positive.end());
}

bool ExpansionTables::ChildTwoStepExceeds(
    const std::uint64_t* child_sig, std::int64_t child_footprint,
    std::int32_t u, const std::vector<std::int32_t>& frontier,
    std::int64_t incumbent, TwoStepScratch* scratch) const {
  // Materialize the child's frontier: surviving parent-frontier nodes plus
  // u's newly-ready successors.
  std::vector<std::int32_t>& cf = scratch->child_frontier;
  cf.clear();
  for (const std::int32_t v : frontier) {
    if (v != u) cf.push_back(v);
  }
  const std::size_t ui = static_cast<std::size_t>(u);
  for (std::uint32_t i = succ_begin_[ui]; i < succ_begin_[ui + 1]; ++i) {
    const std::int32_t w = succs_arena_[i];
    if (util::SpanIsSubsetOf(
            preds_.data() + static_cast<std::size_t>(w) * words_, child_sig,
            words_)) {
      cf.push_back(w);
    }
  }
  if (cf.empty()) return false;  // full state: no lookahead to fail

  std::vector<std::uint64_t>& gc = scratch->gc_sig;
  gc.resize(words_);
  for (const std::int32_t v : cf) {
    const std::size_t vi = static_cast<std::size_t>(v);
    const std::uint64_t* writers =
        buffer_writers_.data() +
        static_cast<std::size_t>(own_buffer_[vi]) * words_;
    const std::int64_t alloc =
        util::SpanIntersects(writers, child_sig, words_) ? 0 : own_size_[vi];
    const std::int64_t step1 = child_footprint + alloc;
    if (step1 > incumbent) continue;  // this start is already dead
    // Second step: grandchild = child + v. If the grandchild is full the
    // start is viable on its first step alone.
    const Transition t = Apply(child_sig, v, child_footprint, incumbent);
    std::copy(child_sig, child_sig + words_, gc.data());
    util::SpanSetBit(gc.data(), vi);
    std::vector<std::int32_t>& gf = scratch->gc_frontier;
    gf.clear();
    for (const std::int32_t x : cf) {
      if (x != v) gf.push_back(x);
    }
    for (std::uint32_t i = succ_begin_[vi]; i < succ_begin_[vi + 1]; ++i) {
      const std::int32_t w = succs_arena_[i];
      if (util::SpanIsSubsetOf(
              preds_.data() + static_cast<std::size_t>(w) * words_,
              gc.data(), words_)) {
        gf.push_back(w);
      }
    }
    if (gf.empty()) return false;  // grandchild full: viable start
    std::int64_t min_step2 = kNoAlloc;
    for (const std::int32_t x : gf) {
      const std::size_t xi = static_cast<std::size_t>(x);
      const std::uint64_t* xw =
          buffer_writers_.data() +
          static_cast<std::size_t>(own_buffer_[xi]) * words_;
      const std::int64_t xalloc =
          util::SpanIntersects(xw, gc.data(), words_) ? 0 : own_size_[xi];
      min_step2 = std::min(min_step2, t.footprint + xalloc);
      if (min_step2 <= incumbent) break;
    }
    if (min_step2 <= incumbent) return false;  // viable (step1, step2) pair
  }
  return true;  // every two-step start exceeds the incumbent
}

std::int64_t ExpansionTables::ChildNextAllocFloor(
    const std::uint64_t* child_sig, std::int32_t u,
    const FrontierAllocs& fa) const {
  // Part 1: surviving parent-frontier nodes. Their alloc in the child
  // equals their alloc in the parent, except that scheduling u zeroes any
  // sibling writer of u's own buffer (u writes exactly its output buffer).
  std::int64_t floor = u == fa.argmin_node ? fa.min2 : fa.min1;
  if (!fa.shared_positive.empty()) {
    const std::size_t ui = static_cast<std::size_t>(u);
    const std::int32_t buffer = own_buffer_[ui];
    const auto begin = std::lower_bound(
        fa.shared_positive.begin(), fa.shared_positive.end(),
        std::pair<std::int32_t, std::int32_t>{buffer, -1});
    for (auto it = begin;
         it != fa.shared_positive.end() && it->first == buffer; ++it) {
      if (it->second != u) {
        floor = 0;
        break;
      }
    }
  }
  // Part 2: successors of u that just became ready.
  const std::size_t ui = static_cast<std::size_t>(u);
  for (std::uint32_t i = succ_begin_[ui]; i < succ_begin_[ui + 1]; ++i) {
    const std::size_t w = static_cast<std::size_t>(succs_arena_[i]);
    if (!util::SpanIsSubsetOf(preds_.data() + w * words_, child_sig,
                              words_)) {
      continue;
    }
    const std::uint64_t* writers =
        buffer_writers_.data() +
        static_cast<std::size_t>(own_buffer_[w]) * words_;
    const std::int64_t alloc =
        util::SpanIntersects(writers, child_sig, words_) ? 0 : own_size_[w];
    floor = std::min(floor, alloc);
    if (floor == 0) break;
  }
  return floor;
}

std::int64_t ExpansionTables::ResidentBytes() const {
  return static_cast<std::int64_t>(
      preds_.capacity() * 8 + buffer_writers_.capacity() * 8 +
      touchers_arena_.capacity() * 8 + own_buffer_.capacity() * 4 +
      own_size_.capacity() * 8 + freeables_.capacity() * sizeof(Freeable) +
      freeable_begin_.capacity() * 4 + min_step_bytes_.capacity() * 8 +
      succs_arena_.capacity() * 4 + succ_begin_.capacity() * 4);
}

ExpansionTables::Transition ExpansionTables::Apply(
    const std::uint64_t* sig, std::int32_t node, std::int64_t footprint,
    std::int64_t budget) const {
  const std::size_t u = static_cast<std::size_t>(node);
  // Allocate the output on first write (Algorithm 1 line 13).
  const std::uint64_t* writers =
      buffer_writers_.data() +
      static_cast<std::size_t>(own_buffer_[u]) * words_;
  if (!util::SpanIntersects(writers, sig, words_)) footprint += own_size_[u];
  const std::int64_t step_peak = footprint;
  if (step_peak > budget) return Transition{footprint, step_peak};

  // Deallocate buffers whose last use is this node (lines 15-19): freed iff
  // touchers ⊆ scheduled ∪ {u}, tested word-wise.
  const std::size_t u_word = u >> 6;
  const std::uint64_t u_bit = std::uint64_t{1} << (u & 63);
  for (std::uint32_t f = freeable_begin_[u]; f < freeable_begin_[u + 1];
       ++f) {
    const std::uint64_t* touchers =
        touchers_arena_.data() + freeables_[f].touchers_offset;
    bool freed = true;
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t scheduled = sig[w];
      if (w == u_word) scheduled |= u_bit;
      if ((touchers[w] & ~scheduled) != 0) {
        freed = false;
        break;
      }
    }
    if (freed) footprint -= freeables_[f].size_bytes;
  }
  return Transition{footprint, step_peak};
}

}  // namespace serenity::core
