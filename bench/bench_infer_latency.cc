// End-to-end inference latency through the serve path: every zoo cell is
// planned by a SchedulerService, opened as an InferenceSession, and
// executed out of its planned arena.
//
// Deterministic metrics per cell (exact-match gated by
// tools/check_bench_regression.py):
//   * arena_bytes           — the planned activation arena
//   * touched_peak_bytes    — highest arena byte actually written by a
//                             canary-measured inference; must equal
//                             arena_bytes ("measured peak == planned peak")
//   * allocs_per_inference  — heap allocations during a timed Run; the
//                             binary overrides operator new to count them
//                             and CHECK-fails unless the count is ZERO
//   * nodes / plan_text_bytes — schedule length and serialized plan size
// Timing (report-only): median seconds per inference.
//
// The binary also certifies, per cell, that the arena executor's sink
// values are bit-identical to the ReferenceExecutor's under the served
// schedule — the whole-zoo version of arena_executor_property_test.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/executor.h"
#include "runtime/kernel_backend.h"
#include "serve/inference_session.h"
#include "testing/alloc_counter.h"
#include "testing/runtime_inputs.h"
#include "testing/sink_compare.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stopwatch.h"


namespace {

using namespace serenity;

struct CellRun {
  std::string label;
  runtime::Backend backend = runtime::Backend::kAuto;
  std::int64_t nodes = 0;
  std::int64_t arena_bytes = 0;
  std::int64_t touched_peak_bytes = 0;
  std::int64_t plan_text_bytes = 0;
  std::uint64_t allocs_per_inference = 0;
  double infer_seconds = 0;
};

CellRun MeasureCell(serve::SchedulerService& service,
                    const models::BenchmarkCell& cell,
                    runtime::Backend backend) {
  CellRun run;
  run.label = bench::CellLabel(cell);
  run.backend = backend;
  const graph::Graph g = cell.factory();

  // Certification session: canary-measured peak + reference bit-identity.
  serve::InferenceSessionOptions measured;
  measured.executor.measure_touched_peak = true;
  measured.executor.backend = backend;
  serve::InferenceSession certify =
      serve::InferenceSession::Open(service, g, measured);
  const std::vector<runtime::Tensor> inputs =
      testing::RandomInputsFor(certify.graph(), 0xbe9c4);
  certify.Run(inputs);
  run.nodes = static_cast<std::int64_t>(certify.plan().plan.schedule.size());
  run.arena_bytes = certify.arena_bytes();
  run.touched_peak_bytes = certify.executor().touched_peak_bytes();
  run.plan_text_bytes =
      static_cast<std::int64_t>(certify.plan().plan_text.size());
  SERENITY_CHECK_EQ(run.touched_peak_bytes, run.arena_bytes)
      << run.label << ": an inference did not touch the planned peak";

  runtime::ReferenceExecutor reference(certify.graph());
  reference.Run(inputs, certify.plan().plan.schedule);
  const std::string divergence = testing::DescribeSinkDivergence(
      certify.executor().SinkValues(), reference.SinkValues());
  SERENITY_CHECK(divergence.empty())
      << run.label << ": arena executor diverges from reference: "
      << divergence;

  // Timed session: no canary passes, allocation-counted.
  serve::InferenceSessionOptions timed;
  timed.executor.backend = backend;
  serve::InferenceSession session =
      serve::InferenceSession::Open(service, g, timed);
  session.Run(inputs);  // touch everything once
  std::vector<double> seconds;
  seconds.reserve(5);  // growth must not land inside the counted window
  for (int rep = 0; rep < 5; ++rep) {
    const std::uint64_t before = testing::ThreadAllocationCount();
    util::Stopwatch clock;
    session.Run(inputs);
    const std::uint64_t allocs = testing::ThreadAllocationCount() - before;
    seconds.push_back(clock.ElapsedSeconds());
    SERENITY_CHECK_EQ(allocs, 0u)
        << run.label << ": inference " << rep << " heap-allocated";
    run.allocs_per_inference = allocs;
  }
  run.infer_seconds = util::Percentile(seconds, 50);
  return run;
}

// The requested-backend row set is fixed (machine-independent) so the CI
// baseline compare sees the same rows everywhere; an unavailable ISA
// backend resolves to the blocked kernels (runtime::ResolveBackend), which
// the "resolved" column makes visible.
std::vector<runtime::Backend> RowBackends(const std::string& backend_flag) {
  if (!backend_flag.empty()) {
    const std::optional<runtime::Backend> parsed =
        runtime::ParseBackend(backend_flag);
    SERENITY_CHECK(parsed.has_value())
        << "unknown --backend=" << backend_flag
        << " (want reference|blocked|avx2|auto)";
    return {*parsed};
  }
  return {runtime::Backend::kReference, runtime::Backend::kBlocked,
          runtime::Backend::kAvx2};
}

// Returns false iff a requested --json write failed.
bool PrintRows(const std::string& json_path,
               const std::string& backend_flag) {
  std::printf("Inference latency through InferenceSession (plan once, run "
              "out of the planned arena)\n\n");
  std::printf("%-32s %-10s %-10s %6s %10s %7s %12s\n", "cell", "backend",
              "resolved", "nodes", "arena KB", "allocs", "median s");
  bench::PrintRule(94);
  serve::ServeOptions options;
  options.num_workers = 2;
  serve::SchedulerService service(options);
  bench::JsonRows rows;
  for (const models::BenchmarkCell& cell : models::AllBenchmarkCells()) {
    for (const runtime::Backend backend : RowBackends(backend_flag)) {
      const CellRun run = MeasureCell(service, cell, backend);
      std::printf("%-32s %-10s %-10s %6lld %10.1f %7llu %12.6f\n",
                  run.label.c_str(), runtime::ToString(backend),
                  runtime::ToString(runtime::ResolveBackend(backend)),
                  static_cast<long long>(run.nodes),
                  bench::Kb(run.arena_bytes),
                  static_cast<unsigned long long>(run.allocs_per_inference),
                  run.infer_seconds);
      rows.Begin();
      rows.Field("cell", run.label);
      rows.Field("backend", std::string(runtime::ToString(backend)));
      rows.Field("nodes", run.nodes);
      rows.Field("arena_bytes", run.arena_bytes);
      rows.Field("touched_peak_bytes", run.touched_peak_bytes);
      rows.Field("plan_text_bytes", run.plan_text_bytes);
      rows.Field("allocs_per_inference",
                 static_cast<std::int64_t>(run.allocs_per_inference));
      rows.Field("infer_seconds", run.infer_seconds);
    }
  }
  bench::PrintRule(94);
  std::printf("\nall cells x backends: touched peak == planned arena, 0 "
              "allocations per inference, sinks bit-identical to the "
              "reference executor\n\n");
  if (!json_path.empty()) return rows.WriteTo(json_path);
  return true;
}

void BM_InferLatency(benchmark::State& state) {
  const models::BenchmarkCell& cell = models::AllBenchmarkCells()
      [static_cast<std::size_t>(state.range(0))];
  serve::SchedulerService service;
  serve::InferenceSession session =
      serve::InferenceSession::Open(service, cell.factory());
  const std::vector<runtime::Tensor> inputs =
      testing::RandomInputsFor(session.graph(), 0xbe9c4);
  for (auto _ : state) {
    session.Run(inputs);
    benchmark::DoNotOptimize(session.executor().SinkViews());
  }
  state.SetLabel(bench::CellLabel(cell));
}
BENCHMARK(BM_InferLatency)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = serenity::bench::TakeJsonFlag(&argc, argv);
  const std::string backend =
      serenity::bench::TakePrefixFlag("--backend=", &argc, argv);
  const bool json_ok = PrintRows(json_path, backend);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return json_ok ? 0 : 1;
}
