// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte strings.
//
// Used by the persistence layer (serialize/plan.cc, serve/plan_cache.cc) to
// detect corruption — bit flips, torn writes, truncation — in stored plan
// artifacts before any parser consumes them. Integrity first, parsing
// second: once a payload's checksum verifies, the strict parsers' internal
// CHECKs are back to guarding programming errors only (DESIGN.md "Failure
// taxonomy").
#ifndef SERENITY_UTIL_CRC32_H_
#define SERENITY_UTIL_CRC32_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace serenity::util {

namespace internal {

inline const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace internal

// One-shot CRC-32 of `data`. Matches zlib's crc32() for the same bytes.
inline std::uint32_t Crc32(std::string_view data) {
  const auto& table = internal::Crc32Table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace serenity::util

#endif  // SERENITY_UTIL_CRC32_H_
