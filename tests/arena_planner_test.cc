#include "alloc/arena_planner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.h"
#include "graph/builder.h"
#include "models/swiftnet.h"
#include "rewrite/rewriter.h"
#include "sched/baselines.h"
#include "sched/schedule.h"
#include "util/rng.h"

namespace serenity::alloc {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TensorShape;

TEST(ArenaPlanner, ChainReusesSpace) {
  // a -> b -> c -> d of equal 1KB tensors: at most two alive at once, so
  // the arena never needs more than 2 aligned slots.
  GraphBuilder b("chain");
  NodeId x = b.Input(TensorShape{1, 16, 16, 1}, "in");
  for (int i = 0; i < 3; ++i) x = b.Conv1x1(x, 1, "c" + std::to_string(i));
  const graph::Graph g = std::move(b).Build();
  const ArenaPlan plan = PlanArena(g, sched::TfLiteOrderSchedule(g));
  EXPECT_TRUE(ValidatePlacements(plan));
  EXPECT_EQ(plan.arena_bytes, 2 * 1024);
}

TEST(ArenaPlanner, ArenaIsAtLeastThePureFootprint) {
  // Fragmentation can only add memory on top of the liveness-sum model.
  const graph::Graph g = models::MakeSwiftNetCellA();
  for (const sched::Schedule& s :
       {sched::TfLiteOrderSchedule(g), sched::KahnFifoSchedule(g),
        sched::GreedyMemorySchedule(g)}) {
    const ArenaPlan plan = PlanArena(g, s);
    EXPECT_GE(plan.arena_bytes, sched::PeakFootprint(g, s));
  }
}

TEST(ArenaPlanner, NoOverlapOnRandomSchedules) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const sched::Schedule s = sched::RandomTopologicalSchedule(g, rng);
    const ArenaPlan plan = PlanArena(g, s);
    EXPECT_TRUE(ValidatePlacements(plan));
  }
}

TEST(ArenaPlanner, NoOverlapWithAliasedBuffersAfterRewriting) {
  const rewrite::RewriteResult rw =
      rewrite::RewriteGraph(models::MakeSwiftNetCellA());
  util::Rng rng(78);
  for (int trial = 0; trial < 10; ++trial) {
    const sched::Schedule s =
        sched::RandomTopologicalSchedule(rw.graph, rng);
    const ArenaPlan plan = PlanArena(rw.graph, s);
    EXPECT_TRUE(ValidatePlacements(plan));
  }
}

TEST(ArenaPlanner, AlignmentRoundsOffsets) {
  GraphBuilder b("align");
  const NodeId in = b.Input(TensorShape{1, 5, 5, 1}, "in");  // 100 bytes
  const NodeId c1 = b.Relu(in, "r1");
  (void)b.Add({in, c1}, "out");
  const graph::Graph g = std::move(b).Build();
  const ArenaPlan plan =
      PlanArena(g, sched::TfLiteOrderSchedule(g), FitStrategy::kFirstFit,
                /*alignment=*/64);
  EXPECT_TRUE(ValidatePlacements(plan));
  for (const BufferPlacement& p : plan.placements) {
    EXPECT_EQ(p.offset % 64, 0);
  }
}

TEST(ArenaPlanner, HighwaterTraceIsConsistent) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  const sched::Schedule s = sched::TfLiteOrderSchedule(g);
  const ArenaPlan plan = PlanArena(g, s);
  ASSERT_EQ(plan.highwater_at_step.size(), s.size());
  const std::int64_t max_hw = *std::max_element(
      plan.highwater_at_step.begin(), plan.highwater_at_step.end());
  EXPECT_EQ(max_hw, plan.arena_bytes);
  for (const std::int64_t hw : plan.highwater_at_step) {
    EXPECT_GE(hw, 0);
    EXPECT_LE(hw, plan.arena_bytes);
  }
}

TEST(ArenaPlanner, BestFitNeverLargerThanFirstFitHere) {
  // Not a theorem in general, but on these workloads best-fit should not
  // lose; this guards the strategy plumbing.
  const graph::Graph g = models::MakeSwiftNetCellB();
  util::Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const sched::Schedule s = sched::RandomTopologicalSchedule(g, rng);
    const ArenaPlan first = PlanArena(g, s, FitStrategy::kFirstFit);
    const ArenaPlan best = PlanArena(g, s, FitStrategy::kBestFit);
    EXPECT_TRUE(ValidatePlacements(first));
    EXPECT_TRUE(ValidatePlacements(best));
  }
}

TEST(ArenaPlanner, SinkLifetimesExtendToEnd) {
  GraphBuilder b("sink");
  const NodeId in = b.Input(TensorShape{1, 16, 16, 1}, "in");
  const NodeId out = b.Conv1x1(in, 1, "out");  // sink
  const NodeId side = b.Relu(in, "side");      // another sink
  (void)side;
  const graph::Graph g = std::move(b).Build();
  const ArenaPlan plan = PlanArena(g, sched::TfLiteOrderSchedule(g));
  for (const BufferPlacement& p : plan.placements) {
    if (p.buffer == g.node(out).buffer ||
        p.buffer == g.node(side).buffer) {
      EXPECT_EQ(p.last_step, g.num_nodes() - 1);
    }
  }
}

TEST(ArenaPlanner, SharedBufferPlacedOnce) {
  const rewrite::RewriteResult rw =
      rewrite::RewriteGraph(models::MakeSwiftNetCellA());
  const ArenaPlan plan =
      PlanArena(rw.graph, sched::TfLiteOrderSchedule(rw.graph));
  std::vector<graph::BufferId> seen;
  for (const BufferPlacement& p : plan.placements) {
    EXPECT_TRUE(std::find(seen.begin(), seen.end(), p.buffer) == seen.end());
    seen.push_back(p.buffer);
  }
}

}  // namespace
}  // namespace serenity::alloc
