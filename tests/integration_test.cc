// Cross-module integration tests: the full SERENITY pipeline against every
// benchmark cell, with end-to-end invariants spanning scheduler, rewriter,
// allocator, hierarchy simulator, serializer and reference runtime.
#include <gtest/gtest.h>

#include "alloc/arena_planner.h"
#include "core/pipeline.h"
#include "memsim/hierarchy_sim.h"
#include "models/zoo.h"
#include "rewrite/rewriter.h"
#include "runtime/executor.h"
#include "runtime/tensor.h"
#include "sched/baselines.h"
#include "sched/beam.h"
#include "sched/schedule.h"
#include "serialize/serialize.h"
#include "util/rng.h"

namespace serenity {
namespace {

class EveryCellTest
    : public ::testing::TestWithParam<models::BenchmarkCell> {};

TEST_P(EveryCellTest, FullPipelineProducesValidOptimalSchedules) {
  const graph::Graph g = GetParam().factory();
  const core::PipelineResult full = core::Pipeline().Run(g);
  ASSERT_TRUE(full.success) << full.failure_reason;
  EXPECT_TRUE(sched::IsTopologicalOrder(full.scheduled_graph, full.schedule));

  core::PipelineOptions dp_only;
  dp_only.enable_rewriting = false;
  const core::PipelineResult dp = core::Pipeline(dp_only).Run(g);
  ASSERT_TRUE(dp.success);

  // SERENITY's central inequality chain.
  const std::int64_t tflite =
      sched::PeakFootprint(g, sched::TfLiteOrderSchedule(g));
  EXPECT_LE(dp.peak_bytes, tflite);
  EXPECT_LE(full.peak_bytes, dp.peak_bytes);
}

TEST_P(EveryCellTest, DpMatchesSoftBudgetedAndPartitionedVariants) {
  const graph::Graph g = GetParam().factory();
  core::PipelineOptions a;  // everything on, rewriting off
  a.enable_rewriting = false;
  core::PipelineOptions b = a;
  b.enable_soft_budgeting = false;
  core::PipelineOptions c = a;
  c.enable_partitioning = false;
  const auto ra = core::Pipeline(a).Run(g);
  const auto rb = core::Pipeline(b).Run(g);
  const auto rc = core::Pipeline(c).Run(g);
  ASSERT_TRUE(ra.success && rb.success && rc.success);
  EXPECT_EQ(ra.peak_bytes, rb.peak_bytes);
  EXPECT_EQ(ra.peak_bytes, rc.peak_bytes);
}

TEST_P(EveryCellTest, ArenaPlansAreSoundForAllConfigurations) {
  const graph::Graph g = GetParam().factory();
  const core::PipelineResult full = core::Pipeline().Run(g);
  ASSERT_TRUE(full.success);
  for (const alloc::FitStrategy strategy :
       {alloc::FitStrategy::kGreedyBySize, alloc::FitStrategy::kFirstFit,
        alloc::FitStrategy::kBestFit}) {
    const alloc::ArenaPlan plan = alloc::PlanArena(
        full.scheduled_graph, full.schedule, strategy);
    EXPECT_TRUE(alloc::ValidatePlacements(plan));
    EXPECT_GE(plan.arena_bytes, full.peak_bytes);
  }
}

TEST_P(EveryCellTest, TrafficNeverNegativeAndBoundedBySumOfActivations) {
  const graph::Graph g = GetParam().factory();
  const sched::Schedule s = sched::TfLiteOrderSchedule(g);
  std::int64_t total_activation_bytes = 0;
  for (graph::BufferId b = 0; b < g.num_buffers(); ++b) {
    total_activation_bytes += g.buffer(b).size_bytes;
  }
  memsim::SimOptions options;
  options.onchip_bytes = 128 * 1024;
  const memsim::SimResult r = memsim::SimulateHierarchy(g, s, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.read_bytes, 0);
  EXPECT_GE(r.write_bytes, 0);
  // Each page is written back at most once per production and read back at
  // most once per subsequent use; the schedule touches each buffer at most
  // (1 + consumers) times, giving a loose sanity ceiling.
  EXPECT_LE(r.write_bytes, total_activation_bytes *
                               static_cast<std::int64_t>(g.num_nodes()));
}

TEST_P(EveryCellTest, SerializationRoundTripsTheRewrittenGraph) {
  const graph::Graph g = GetParam().factory();
  const rewrite::RewriteResult rw = rewrite::RewriteGraph(g);
  const graph::Graph back =
      serialize::FromText(serialize::ToText(rw.graph));
  EXPECT_EQ(serialize::ToText(back), serialize::ToText(rw.graph));
  // The round-tripped graph schedules to the same optimum.
  const core::DpResult a = core::ScheduleDp(rw.graph);
  const core::DpResult b = core::ScheduleDp(back);
  ASSERT_EQ(a.status, core::DpStatus::kSolution);
  ASSERT_EQ(b.status, core::DpStatus::kSolution);
  EXPECT_EQ(a.peak_bytes, b.peak_bytes);
}

TEST_P(EveryCellTest, BeamBracketsTheOptimum) {
  const graph::Graph g = GetParam().factory();
  const core::DpResult dp = core::ScheduleDp(g);
  ASSERT_EQ(dp.status, core::DpStatus::kSolution);
  sched::BeamOptions narrow;
  narrow.width = 4;
  const sched::BeamResult beam = sched::ScheduleBeam(g, narrow);
  EXPECT_GE(beam.peak_bytes, dp.peak_bytes);
  EXPECT_LE(beam.peak_bytes,
            sched::PeakFootprint(g, sched::KahnFifoSchedule(g)) * 2);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, EveryCellTest, ::testing::ValuesIn(models::AllBenchmarkCells()),
    [](const ::testing::TestParamInfo<models::BenchmarkCell>& info) {
      std::string name = info.param.group + "_" + info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Integration, RewritingPlusExecutionOnEveryConcatCell) {
  // End-to-end semantic check on the cells that actually rewrite:
  // schedule the rewritten graph with the full pipeline, execute original
  // and rewritten in their respective schedules, compare outputs.
  for (const models::BenchmarkCell& cell : models::AllBenchmarkCells()) {
    const graph::Graph g = cell.factory();
    const core::PipelineResult full = core::Pipeline().Run(g);
    ASSERT_TRUE(full.success);
    if (full.rewrite_report.TotalPatterns() == 0) continue;

    util::Rng rng(17);
    std::vector<runtime::Tensor> inputs;
    for (const graph::Node& n : g.nodes()) {
      if (n.kind == graph::OpKind::kInput) {
        inputs.push_back(runtime::Tensor::Random(n.shape, rng));
      }
    }
    runtime::ReferenceExecutor original(g);
    original.Run(inputs);
    runtime::ReferenceExecutor rewritten(full.scheduled_graph);
    rewritten.Run(inputs, full.schedule);  // the memory-optimal order
    const auto a = original.SinkValues();
    const auto b = rewritten.SinkValues();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_LE(a[i].MaxAbsDiff(b[i]), 5e-3f)
          << cell.group << "/" << cell.name;
    }
  }
}

TEST(Integration, BudgetedCompilationContract) {
  // The user-facing contract: given a hard budget above the optimum, the
  // pipeline produces a schedule within it; below the optimum, the DP
  // reports no solution rather than silently overshooting.
  const graph::Graph g =
      models::FindBenchmarkCell("SwiftNet HPD", "Cell B").factory();
  const core::DpResult optimal = core::ScheduleDp(g);
  ASSERT_EQ(optimal.status, core::DpStatus::kSolution);

  core::DpOptions within;
  within.budget_bytes = optimal.peak_bytes + 1024;
  const core::DpResult ok = core::ScheduleDp(g, within);
  ASSERT_EQ(ok.status, core::DpStatus::kSolution);
  EXPECT_LE(ok.peak_bytes, within.budget_bytes);

  core::DpOptions impossible;
  impossible.budget_bytes = optimal.peak_bytes / 2;
  EXPECT_EQ(core::ScheduleDp(g, impossible).status,
            core::DpStatus::kNoSolution);
}

}  // namespace
}  // namespace serenity
