// Internal declarations shared by the kernel backends behind the dispatch
// API (runtime/kernel_backend.h). Not part of the public surface: code
// outside runtime/ resolves a KernelBackend and calls through it.
//
// Every backend computes the SAME arithmetic in the SAME per-output-element
// order as the reference kernels (runtime/kernels.h): blocking and
// vectorization run across *independent* output channels, never across a
// single output's summation, and no backend uses fused multiply-add. That
// is the mechanism behind the bit-identity contract the parity suite pins
// (tests/kernel_parity_property_test.cc) — see DESIGN.md "Kernel backends
// & dispatch" for the ULP policy if a future backend has to relax it.
#ifndef SERENITY_RUNTIME_KERNELS_BACKENDS_H_
#define SERENITY_RUNTIME_KERNELS_BACKENDS_H_

#include <algorithm>
#include <vector>

#include "graph/types.h"
#include "runtime/tensor.h"
#include "runtime/weights.h"

namespace serenity::runtime {

namespace internal {

struct Padding2d {
  int top = 0;
  int left = 0;
};

// TF-style padding: SAME pads to ceil(in/stride) outputs with the smaller
// half before; VALID pads nothing. Shared by every backend so they agree on
// tap geometry by construction.
inline Padding2d ComputePadding(const graph::TensorShape& in,
                                const graph::ConvAttrs& attrs, int out_h,
                                int out_w) {
  if (attrs.padding == graph::Padding::kValid) return {};
  const int eff_kh = attrs.dilation * (attrs.kernel_h - 1) + 1;
  const int eff_kw = attrs.dilation * (attrs.kernel_w - 1) + 1;
  const int pad_h = std::max(0, (out_h - 1) * attrs.stride + eff_kh - in.h);
  const int pad_w = std::max(0, (out_w - 1) * attrs.stride + eff_kw - in.w);
  return {pad_h / 2, pad_w / 2};
}

// First kernel tap k with 0 <= pos + k * dilation given pos (may be
// negative): the lowest k the reference loop's bounds check admits.
inline int FirstValidTap(int pos, int dilation) {
  return pos >= 0 ? 0 : (-pos + dilation - 1) / dilation;
}

// One past the last kernel tap k with pos + k * dilation < extent.
inline int EndValidTap(int pos, int dilation, int kernel, int extent) {
  if (pos >= extent) return 0;
  return std::min(kernel, (extent - 1 - pos) / dilation + 1);
}

}  // namespace internal

// Portable blocked backend (runtime/kernels_blocked.cc): raw pixel-run
// pointers instead of per-element checked At(), output-channel tiles sized
// for auto-vectorization. Always compiled; the fallback every unavailable
// ISA backend resolves to.
namespace blocked {
void Conv2dPartial(const Tensor& input, const ConvWeights& weights,
                   const graph::ConvAttrs& attrs, int ic_offset,
                   bool overwrite, bool add_bias, Tensor& acc);
void DepthwiseConv2dPartial(const Tensor& input,
                            const DepthwiseWeights& weights,
                            const graph::ConvAttrs& attrs,
                            int weight_c_offset, Tensor& out,
                            int out_c_offset);
void DenseInto(const Tensor& input, const DenseWeights& weights, Tensor& out);
void ConcatInto(const std::vector<const Tensor*>& inputs, Tensor& out);
void AddInto(const std::vector<const Tensor*>& inputs, Tensor& out);
void MulInto(const std::vector<const Tensor*>& inputs, Tensor& out);
void ReluInto(const Tensor& input, Tensor& out);
void BatchNormInto(const Tensor& input, const BatchNormWeights& weights,
                   Tensor& out);
void MaxPool2dInto(const Tensor& input, const graph::ConvAttrs& attrs,
                   Tensor& out);
void AvgPool2dInto(const Tensor& input, const graph::ConvAttrs& attrs,
                   Tensor& out);
void GlobalAvgPool2dInto(const Tensor& input, Tensor& out);
}  // namespace blocked

#if defined(SERENITY_HAVE_AVX2)
// AVX2 backend (runtime/kernels_avx2.cc, compiled with -mavx2): 8-lane
// vectors across output channels, scalar tails, explicitly NO FMA — mul
// then add, matching C arithmetic, so lanes are bit-identical to the
// reference. Only entered through the dispatch table's runtime cpuid guard.
namespace avx2 {
void Conv2dPartial(const Tensor& input, const ConvWeights& weights,
                   const graph::ConvAttrs& attrs, int ic_offset,
                   bool overwrite, bool add_bias, Tensor& acc);
void DepthwiseConv2dPartial(const Tensor& input,
                            const DepthwiseWeights& weights,
                            const graph::ConvAttrs& attrs,
                            int weight_c_offset, Tensor& out,
                            int out_c_offset);
void DenseInto(const Tensor& input, const DenseWeights& weights, Tensor& out);
void AddInto(const std::vector<const Tensor*>& inputs, Tensor& out);
void MulInto(const std::vector<const Tensor*>& inputs, Tensor& out);
void ReluInto(const Tensor& input, Tensor& out);
void BatchNormInto(const Tensor& input, const BatchNormWeights& weights,
                   Tensor& out);
}  // namespace avx2
#endif  // SERENITY_HAVE_AVX2

}  // namespace serenity::runtime

#endif  // SERENITY_RUNTIME_KERNELS_BACKENDS_H_
