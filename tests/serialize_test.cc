#include "serialize/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "models/randwire.h"
#include "models/swiftnet.h"
#include "rewrite/rewriter.h"
#include "sched/schedule.h"

namespace serenity::serialize {
namespace {

void ExpectGraphsEqual(const graph::Graph& a, const graph::Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_buffers(), b.num_buffers());
  EXPECT_EQ(a.name(), b.name());
  for (graph::BufferId id = 0; id < a.num_buffers(); ++id) {
    EXPECT_EQ(a.buffer(id).size_bytes, b.buffer(id).size_bytes);
  }
  for (graph::NodeId id = 0; id < a.num_nodes(); ++id) {
    const graph::Node& x = a.node(id);
    const graph::Node& y = b.node(id);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.dtype, y.dtype);
    EXPECT_EQ(x.shape, y.shape);
    EXPECT_EQ(x.inputs, y.inputs);
    EXPECT_EQ(x.conv, y.conv);
    EXPECT_EQ(x.buffer, y.buffer);
    EXPECT_EQ(x.buffer_channel_offset, y.buffer_channel_offset);
    EXPECT_EQ(x.weight_seed, y.weight_seed);
    EXPECT_EQ(x.weight_in_channels, y.weight_in_channels);
    EXPECT_EQ(x.in_channel_offset, y.in_channel_offset);
    EXPECT_EQ(x.weight_count, y.weight_count);
    EXPECT_EQ(x.concat_axis, y.concat_axis);
  }
}

TEST(Serialize, RoundTripSwiftNet) {
  const graph::Graph g = models::MakeSwiftNet();
  ExpectGraphsEqual(g, FromText(ToText(g)));
}

TEST(Serialize, RoundTripRewrittenGraphWithAliasedBuffers) {
  const graph::Graph g =
      rewrite::RewriteGraph(models::MakeSwiftNetCellA()).graph;
  ExpectGraphsEqual(g, FromText(ToText(g)));
}

TEST(Serialize, RoundTripRandWire) {
  const graph::Graph g = models::MakeRandWireCifar10CellA();
  ExpectGraphsEqual(g, FromText(ToText(g)));
}

TEST(Serialize, NamesWithSpacesSurvive) {
  graph::Graph g("a name with spaces");
  graph::Node n;
  n.kind = graph::OpKind::kInput;
  n.name = "weird node name";
  n.shape = graph::TensorShape{1, 2, 2, 1};
  g.AddNode(n);
  const graph::Graph back = FromText(ToText(g));
  EXPECT_EQ(back.name(), "a name with spaces");
  EXPECT_EQ(back.node(0).name, "weird node name");
}

TEST(Serialize, FileRoundTrip) {
  const graph::Graph g = models::MakeSwiftNetCellB();
  const std::string path = ::testing::TempDir() + "/swiftnet_b.serenity";
  SaveToFile(g, path);
  ExpectGraphsEqual(g, LoadFromFile(path));
  std::remove(path.c_str());
}

TEST(Serialize, DotContainsAllNodesAndEdges) {
  const graph::Graph g = models::MakeSwiftNetCellB();
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (const graph::Node& n : g.nodes()) {
    EXPECT_NE(dot.find(n.name), std::string::npos) << n.name;
  }
  // Edge count: one arrow per operand slot.
  std::size_t arrows = 0;
  for (std::size_t at = dot.find(" -> "); at != std::string::npos;
       at = dot.find(" -> ", at + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, static_cast<std::size_t>(g.num_edges()));
}

TEST(SerializeDeath, MalformedInputRejected) {
  EXPECT_DEATH(FromText("node 0 bogus_kind float32 x shape=1,1,1,1 "
                        "buffer=0 inputs="),
               "unknown");
  EXPECT_DEATH(FromText("frobnicate 1 2 3"), "unknown record");
}

TEST(SerializeDeath, MissingFileRejected) {
  EXPECT_DEATH(LoadFromFile("/nonexistent/path/graph.txt"), "cannot open");
}

}  // namespace
}  // namespace serenity::serialize
