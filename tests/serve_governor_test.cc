// The server-wide resource governor over real loopback sockets: one
// --mem-budget-style byte cap partitioned across planning and session
// arenas, with the admission lower bound shedding graphs that provably
// cannot fit. The adversarial case: a client submits an enormous graph
// (one tensor far above the cap). The server must shed it at admission —
// before any planning memory is spent — with a structured
// kResourceExhausted carrying retry-after, stay healthy for concurrent
// small requests the whole time, and surface the governor ledgers through
// the stats verb.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "models/swiftnet.h"
#include "serialize/serialize.h"
#include "serve/tcp_client.h"
#include "serve/tcp_server.h"
#include "util/memory_budget.h"

namespace serenity::serve {
namespace {

// 64 MB shared cap, carved into planning + session children like
// examples/serenity_serve.cpp does for --mem-budget.
constexpr std::int64_t kGovernorCap = std::int64_t{64} << 20;

struct GovernedHarness {
  util::MemoryBudget root{kGovernorCap};
  util::MemoryBudget planning{kGovernorCap, &root};
  util::MemoryBudget sessions{kGovernorCap, &root};
  SchedulerService service;
  SessionPool pool;
  TcpServer server;

  static ServeOptions MakeServeOptions(util::MemoryBudget* planning) {
    ServeOptions options;
    options.planning_budget = planning;
    options.admission_floor_budget_bytes = kGovernorCap;
    options.pipeline.degrade_on_deadline = true;
    return options;
  }
  static SessionPoolOptions MakePoolOptions(util::MemoryBudget* sessions) {
    SessionPoolOptions options;
    options.arena_budget = sessions;
    return options;
  }
  static TcpServerOptions MakeServerOptions(
      const util::MemoryBudget* root) {
    TcpServerOptions options;
    options.num_workers = 4;
    options.governor = root;
    return options;
  }

  GovernedHarness()
      : service(MakeServeOptions(&planning)),
        pool(MakePoolOptions(&sessions)),
        server(service, pool, MakeServerOptions(&root)) {
    const util::Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
};

// A two-node graph whose single activation tensor dwarfs the governor cap:
// every schedule of it must pass through a step holding those bytes, so
// the admission lower bound proves it unservable without planning it.
graph::Graph EnormousGraph() {
  graph::GraphBuilder b("enormous");
  // 1024 x 1024 x 128 float32 = 512 MB for one buffer, 8x the 64 MB cap.
  const graph::NodeId in =
      b.Input(graph::TensorShape{1, 1024, 1024, 128}, "in");
  (void)b.Relu(in, "relu");
  return std::move(b).Build();
}

TEST(ServeGovernor, EnormousGraphShedsAtAdmissionWhileSmallOnesServe) {
  GovernedHarness h;

  // Concurrent small clients hammer the server with plans + infers for the
  // whole duration of the adversarial submissions.
  std::vector<std::string> small_failures(3);
  std::vector<std::thread> small_clients;
  for (int c = 0; c < 3; ++c) {
    small_clients.emplace_back([&h, &small_failures, c] {
      util::StatusOr<TcpClient> client =
          TcpClient::Connect(h.server.port());
      if (!client.ok()) {
        small_failures[static_cast<std::size_t>(c)] =
            client.status().ToString();
        return;
      }
      const graph::Graph g = c % 2 == 0 ? models::MakeSwiftNetCellA()
                                        : models::MakeSwiftNetCellB();
      for (int r = 0; r < 4; ++r) {
        util::StatusOr<RemotePlan> plan =
            client->Plan(serialize::ToText(g));
        if (!plan.ok()) {
          small_failures[static_cast<std::size_t>(c)] =
              plan.status().ToString();
          return;
        }
      }
    });
  }

  // The adversary: repeatedly submits the unservable graph.
  util::StatusOr<TcpClient> adversary =
      TcpClient::Connect(h.server.port());
  ASSERT_TRUE(adversary.ok()) << adversary.status().ToString();
  const std::string enormous_text = serialize::ToText(EnormousGraph());
  for (int i = 0; i < 4; ++i) {
    util::StatusOr<RemotePlan> shed = adversary->Plan(enormous_text);
    ASSERT_FALSE(shed.ok()) << "adversarial graph was planned";
    EXPECT_EQ(shed.status().code(), util::StatusCode::kResourceExhausted)
        << shed.status().ToString();
    EXPECT_GT(adversary->retry_after_millis(), 0u);
  }
  for (std::thread& t : small_clients) t.join();
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(small_failures[static_cast<std::size_t>(c)], "")
        << "small client " << c;
  }

  // Shed before planning: the sheds are counted, no planning worker ever
  // touched the enormous graph, and no planning bytes leaked.
  const ServiceStats stats = h.service.stats();
  EXPECT_EQ(stats.admission_sheds, 4u);
  EXPECT_GE(stats.planned, 2u);  // the small cells really were planned
  EXPECT_EQ(h.planning.used_bytes(), 0);
  EXPECT_LE(h.root.peak_bytes(), kGovernorCap);

  // The governor ledgers are on the operator surface: stats reports the
  // root and both children with limits, usage, peaks and denials.
  util::StatusOr<std::string> text = adversary->Stats();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  for (const char* line :
       {"governor.root.limit_bytes", "governor.root.peak_bytes",
        "governor.planning.peak_bytes", "governor.sessions.limit_bytes",
        "governor.sessions.denials", "service.admission_sheds 4"}) {
    EXPECT_NE(text->find(line), std::string::npos)
        << "stats output missing \"" << line << "\":\n"
        << *text;
  }

  // After the adversarial barrage the server serves a brand-new small
  // graph end to end — admission shedding costs the healthy path nothing.
  util::StatusOr<RemotePlan> after =
      adversary->Plan(serialize::ToText(models::MakeSwiftNetCellC()));
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

// An ungoverned server (no --mem-budget) must keep the previous behavior:
// no governor stats lines, no admission floor.
TEST(ServeGovernor, UngovernedServerOmitsGovernorStats) {
  SchedulerService service;
  SessionPool pool;
  TcpServer server(service, pool);
  ASSERT_TRUE(server.Start().ok());
  util::StatusOr<TcpClient> client = TcpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  util::StatusOr<std::string> text = client->Stats();
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->find("governor."), std::string::npos);
  util::StatusOr<RemotePlan> plan =
      client->Plan(serialize::ToText(EnormousGraph()));
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
}

}  // namespace
}  // namespace serenity::serve
