// ASCII line charts for the benchmark harnesses (e.g. the Figure 12
// footprint-over-time traces). Renders one or more series over a shared
// y-axis into a fixed-size character grid.
#ifndef SERENITY_UTIL_CHART_H_
#define SERENITY_UTIL_CHART_H_

#include <cstdint>
#include <string>
#include <vector>

namespace serenity::util {

struct ChartSeries {
  std::string label;
  char marker = '*';
  std::vector<double> values;  // y per step; series may differ in length
};

struct ChartOptions {
  int height = 12;  // plot rows (excluding axis labels)
  int width = 72;   // plot columns
  std::string y_unit = "";
};

// Renders the series into a multi-line string: y-axis labels on the left,
// one marker column per (scaled) step, and a legend underneath.
std::string RenderChart(const std::vector<ChartSeries>& series,
                        const ChartOptions& options = {});

}  // namespace serenity::util

#endif  // SERENITY_UTIL_CHART_H_
