// Shared helpers for the per-figure/table benchmark binaries.
//
// Every binary prints the paper-shaped rows first (so `./bench_x` with no
// arguments reproduces the experiment), then runs its registered
// google-benchmark timing loops.
#ifndef SERENITY_BENCH_BENCH_COMMON_H_
#define SERENITY_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "alloc/arena_planner.h"
#include "core/pipeline.h"
#include "graph/graph.h"
#include "models/zoo.h"
#include "sched/baselines.h"
#include "sched/schedule.h"

namespace serenity::bench {

inline double Kb(std::int64_t bytes) {
  return static_cast<double>(bytes) / 1024.0;
}

// The three configurations of Figures 10/11/12/13/15.
struct CellMeasurement {
  models::BenchmarkCell cell;
  graph::Graph graph;

  // TensorFlow Lite baseline: declaration order + greedy first-fit arena.
  sched::Schedule tflite_schedule;
  std::int64_t tflite_peak = 0;        // liveness-sum footprint
  std::int64_t tflite_arena = 0;       // with the memory allocator

  // Dynamic programming only (graph unchanged).
  core::PipelineResult dp;
  std::int64_t dp_arena = 0;

  // Dynamic programming + identity graph rewriting.
  core::PipelineResult dp_rw;
  std::int64_t dp_rw_arena = 0;
};

inline CellMeasurement MeasureCell(const models::BenchmarkCell& cell) {
  CellMeasurement m;
  m.cell = cell;
  m.graph = cell.factory();

  m.tflite_schedule = sched::TfLiteOrderSchedule(m.graph);
  m.tflite_peak = sched::PeakFootprint(m.graph, m.tflite_schedule);
  m.tflite_arena =
      alloc::PlanArena(m.graph, m.tflite_schedule).arena_bytes;

  core::PipelineOptions dp_only;
  dp_only.enable_rewriting = false;
  m.dp = core::Pipeline(dp_only).Run(m.graph);
  if (m.dp.success) {
    m.dp_arena =
        alloc::PlanArena(m.dp.scheduled_graph, m.dp.schedule).arena_bytes;
  }

  m.dp_rw = core::Pipeline().Run(m.graph);
  if (m.dp_rw.success) {
    m.dp_rw_arena =
        alloc::PlanArena(m.dp_rw.scheduled_graph, m.dp_rw.schedule)
            .arena_bytes;
  }
  return m;
}

inline std::string CellLabel(const models::BenchmarkCell& cell) {
  return cell.group + " / " + cell.name;
}

inline void PrintRule(int width = 110) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace serenity::bench

#endif  // SERENITY_BENCH_BENCH_COMMON_H_
