// SessionPool: bounded per-plan session pools with arena checkout/return.
//
// Includes the zero-heap-allocation proof for the steady-state serve hot
// path: alloc_counter.h replaces global operator new, so this file must be
// the only TU of this binary that includes it.
#include "serve/session_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <thread>

#include "models/swiftnet.h"
#include "runtime/executor.h"
#include "serve/scheduler_service.h"
#include "testing/alloc_counter.h"
#include "testing/fault_injection.h"
#include "testing/runtime_inputs.h"
#include "testing/sink_compare.h"

namespace serenity::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::shared_ptr<const CachedPlan> PlanFor(SchedulerService& service,
                                          const graph::Graph& graph) {
  const ServeResult result = service.Schedule(graph);
  EXPECT_NE(result.plan, nullptr) << result.status.ToString();
  return result.plan;
}

TEST(SessionPool, CheckoutRunsRealInferenceAndReturnsForReuse) {
  SchedulerService service;
  SessionPool pool;
  const auto plan = PlanFor(service, models::MakeSwiftNetCellA());

  {
    util::StatusOr<SessionPool::Lease> lease = pool.Checkout(plan, kInf);
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    const std::vector<runtime::Tensor> inputs =
        serenity::testing::RandomInputsFor((*lease)->graph(), 11);
    (*lease)->Run(inputs);
    runtime::ReferenceExecutor reference((*lease)->graph());
    reference.Run(inputs, plan->plan.schedule);
    EXPECT_EQ(serenity::testing::DescribeSinkDivergence(
                  (*lease)->executor().SinkValues(), reference.SinkValues()),
              "");
  }
  SessionPoolStats stats = pool.stats();
  EXPECT_EQ(stats.checkouts, 1u);
  EXPECT_EQ(stats.creations, 1u);
  EXPECT_EQ(stats.returns, 1u);
  EXPECT_EQ(stats.sessions_idle, 1u);
  EXPECT_EQ(stats.sessions_leased, 0u);

  // The second checkout reuses the pooled session — no new arena.
  util::StatusOr<SessionPool::Lease> again = pool.Checkout(plan, kInf);
  ASSERT_TRUE(again.ok());
  stats = pool.stats();
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.creations, 1u);
  EXPECT_EQ(stats.arena_bytes_pooled, plan->plan.arena.arena_bytes);
}

TEST(SessionPool, ReturnedSessionIsWipedByReset) {
  SchedulerService service;
  SessionPool pool;
  const auto plan = PlanFor(service, models::MakeSwiftNetCellB());

  {
    util::StatusOr<SessionPool::Lease> lease = pool.Checkout(plan, kInf);
    ASSERT_TRUE(lease.ok());
    (*lease)->Run(serenity::testing::RandomInputsFor((*lease)->graph(), 3));
    // A real inference leaves nonzero activations behind.
    bool any_nonzero = false;
    for (const runtime::Tensor& sink : (*lease)->executor().SinkValues()) {
      for (const float v : sink.ToVector()) any_nonzero |= (v != 0.0f);
    }
    EXPECT_TRUE(any_nonzero);
  }
  // The same pooled session comes back — its arena must read all zeros
  // (no activation leak between requests).
  util::StatusOr<SessionPool::Lease> lease = pool.Checkout(plan, kInf);
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(pool.stats().reuses, 1u);
  for (const runtime::Tensor& sink : (*lease)->executor().SinkValues()) {
    for (const float v : sink.ToVector()) EXPECT_EQ(v, 0.0f);
  }
}

TEST(SessionPool, PerPlanCapShedsAfterBoundedWait) {
  SchedulerService service;
  SessionPoolOptions options;
  options.max_sessions_per_plan = 1;
  SessionPool pool(options);
  const auto plan = PlanFor(service, models::MakeSwiftNetCellA());

  util::StatusOr<SessionPool::Lease> held = pool.Checkout(plan, kInf);
  ASSERT_TRUE(held.ok());
  const auto start = std::chrono::steady_clock::now();
  util::StatusOr<SessionPool::Lease> blocked = pool.Checkout(plan, 0.05);
  const auto waited = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_GE(std::chrono::duration<double>(waited).count(), 0.05);
  const SessionPoolStats stats = pool.stats();
  EXPECT_EQ(stats.waits, 1u);
  EXPECT_EQ(stats.sheds, 1u);
}

TEST(SessionPool, FailFastWithZeroBudgetNeverQueues) {
  SchedulerService service;
  SessionPoolOptions options;
  options.max_sessions_per_plan = 1;
  SessionPool pool(options);
  const auto plan = PlanFor(service, models::MakeSwiftNetCellA());

  util::StatusOr<SessionPool::Lease> held = pool.Checkout(plan, kInf);
  ASSERT_TRUE(held.ok());
  util::StatusOr<SessionPool::Lease> shed = pool.Checkout(plan, 0);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.stats().waits, 0u);  // deadline-aware: no pointless queue
}

TEST(SessionPool, ReturnUnblocksWaiterWithinDeadline) {
  SchedulerService service;
  SessionPoolOptions options;
  options.max_sessions_per_plan = 1;
  SessionPool pool(options);
  const auto plan = PlanFor(service, models::MakeSwiftNetCellA());

  std::atomic<bool> released{false};
  util::StatusOr<SessionPool::Lease> held = pool.Checkout(plan, kInf);
  ASSERT_TRUE(held.ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    released.store(true);
    held = util::ResourceExhaustedError("dropped");  // returns the lease
  });
  util::StatusOr<SessionPool::Lease> waiter = pool.Checkout(plan, 10.0);
  releaser.join();
  ASSERT_TRUE(waiter.ok()) << waiter.status().ToString();
  EXPECT_TRUE(released.load());  // the wait really blocked until the return
  const SessionPoolStats stats = pool.stats();
  EXPECT_EQ(stats.waits, 1u);
  EXPECT_EQ(stats.reuses, 1u);
}

TEST(SessionPool, ByteCapEvictsIdleSessionsOfOtherPlans) {
  SchedulerService service;
  const auto plan_a = PlanFor(service, models::MakeSwiftNetCellA());
  const auto plan_b = PlanFor(service, models::MakeSwiftNetCellB());
  SessionPoolOptions options;
  // Room for the larger arena alone, never both.
  options.max_total_arena_bytes =
      std::max(plan_a->plan.arena.arena_bytes, plan_b->plan.arena.arena_bytes);
  SessionPool pool(options);

  { auto lease = pool.Checkout(plan_a, kInf); ASSERT_TRUE(lease.ok()); }
  EXPECT_EQ(pool.stats().sessions_idle, 1u);

  // Checking out plan B cannot fit next to A's idle session: A is evicted.
  util::StatusOr<SessionPool::Lease> lease_b = pool.Checkout(plan_b, kInf);
  ASSERT_TRUE(lease_b.ok()) << lease_b.status().ToString();
  const SessionPoolStats stats = pool.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.creations, 2u);
  EXPECT_EQ(stats.arena_bytes_pooled, plan_b->plan.arena.arena_bytes);
}

TEST(SessionPool, PlanLargerThanCapShedsImmediately) {
  SchedulerService service;
  const auto plan = PlanFor(service, models::MakeSwiftNetCellA());
  SessionPoolOptions options;
  options.max_total_arena_bytes = 1;
  SessionPool pool(options);

  util::StatusOr<SessionPool::Lease> lease = pool.Checkout(plan, kInf);
  ASSERT_FALSE(lease.ok());
  EXPECT_EQ(lease.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.stats().waits, 0u);  // a wait could never have helped
}

TEST(SessionPool, InjectedCheckoutFaultShedsStructurally) {
  SchedulerService service;
  SessionPool pool;
  const auto plan = PlanFor(service, models::MakeSwiftNetCellA());
  {
    serenity::testing::ScopedFault fault(
        serenity::testing::FaultPoint::kSessionCheckout);
    util::StatusOr<SessionPool::Lease> lease = pool.Checkout(plan, kInf);
    ASSERT_FALSE(lease.ok());
    EXPECT_EQ(lease.status().code(), util::StatusCode::kResourceExhausted);
    EXPECT_EQ(pool.stats().sheds, 1u);
  }
  // Disarmed again: the next checkout succeeds.
  EXPECT_TRUE(pool.Checkout(plan, kInf).ok());
}

// The tentpole invariant: once a plan's session exists in the pool, the
// whole checkout -> infer -> return cycle performs ZERO heap allocations
// on the serving thread. Measured, not claimed: operator new is replaced
// (alloc_counter.h) and the count must not move.
TEST(SessionPool, SteadyStateCheckoutInferReturnIsZeroAlloc) {
  SchedulerService service;
  SessionPool pool;
  const auto plan = PlanFor(service, models::MakeSwiftNetCellA());
  const std::vector<runtime::Tensor> inputs = serenity::testing::RandomInputsFor(
      plan->result.scheduled_graph, 42);

  // Warm-up: builds the session (allocates) and returns it to the pool.
  {
    util::StatusOr<SessionPool::Lease> lease = pool.Checkout(plan, kInf);
    ASSERT_TRUE(lease.ok());
    (*lease)->Run(inputs);
  }
  ASSERT_EQ(pool.stats().sessions_idle, 1u);

  const std::uint64_t before = serenity::testing::ThreadAllocationCount();
  for (int i = 0; i < 16; ++i) {
    util::StatusOr<SessionPool::Lease> lease = pool.Checkout(plan, kInf);
    (*lease)->Run(inputs);
  }
  const std::uint64_t after = serenity::testing::ThreadAllocationCount();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations leaked into the hot path";
  EXPECT_EQ(pool.stats().reuses, 16u);
}

}  // namespace
}  // namespace serenity::serve
