// Allocating kernel conveniences for tests: `Tensor Foo(inputs)` forms that
// size the output, run the Backend::kReference `...Into` kernel, and return
// the owning result.
//
// These used to be the third leg of the public kernel API; production code
// now routes exclusively through a resolved KernelBackend's `...Into`
// surface (runtime/kernel_backend.h), so the allocating forms live here,
// test-only. They always run the reference backend — hand-computed
// expectations in tests are pinned against the oracle, never against
// whatever backend happens to be fastest.
//
// Usage inside a test in namespace serenity::runtime:
//   using namespace wrappers;   // Conv2d(x, w, attrs), Relu(x), ...
#ifndef SERENITY_TESTS_TESTING_KERNEL_WRAPPERS_H_
#define SERENITY_TESTS_TESTING_KERNEL_WRAPPERS_H_

#include <vector>

#include "graph/types.h"
#include "runtime/kernels.h"
#include "runtime/tensor.h"
#include "runtime/weights.h"
#include "util/logging.h"

namespace serenity::runtime::wrappers {

inline Tensor Conv2d(const Tensor& input, const ConvWeights& weights,
                     const graph::ConvAttrs& attrs) {
  Tensor out(graph::InferConv2dShape(input.shape(), attrs, weights.out_c));
  Conv2dInto(input, weights, attrs, out);
  return out;
}

inline Tensor DepthwiseConv2d(const Tensor& input,
                              const DepthwiseWeights& weights,
                              const graph::ConvAttrs& attrs) {
  Tensor out(graph::InferDepthwiseShape(input.shape(), attrs));
  DepthwiseConv2dInto(input, weights, attrs, out);
  return out;
}

inline Tensor Concat(const std::vector<const Tensor*>& inputs) {
  SERENITY_CHECK_GE(inputs.size(), 2u);
  graph::TensorShape cat_shape = inputs[0]->shape();
  cat_shape.c = 0;
  for (const Tensor* t : inputs) cat_shape.c += t->shape().c;
  Tensor out(cat_shape);
  ConcatInto(inputs, out);
  return out;
}

inline Tensor Add(const std::vector<const Tensor*>& inputs) {
  SERENITY_CHECK_GE(inputs.size(), 2u);
  Tensor out(inputs[0]->shape());
  AddInto(inputs, out);
  return out;
}

inline Tensor Mul(const std::vector<const Tensor*>& inputs) {
  SERENITY_CHECK_GE(inputs.size(), 2u);
  Tensor out(inputs[0]->shape());
  MulInto(inputs, out);
  return out;
}

inline Tensor Relu(const Tensor& input) {
  Tensor out(input.shape());
  ReluInto(input, out);
  return out;
}

inline Tensor BatchNorm(const Tensor& input,
                        const BatchNormWeights& weights) {
  Tensor out(input.shape());
  BatchNormInto(input, weights, out);
  return out;
}

inline Tensor MaxPool2d(const Tensor& input, const graph::ConvAttrs& attrs) {
  Tensor out(graph::InferPoolShape(input.shape(), attrs));
  MaxPool2dInto(input, attrs, out);
  return out;
}

inline Tensor AvgPool2d(const Tensor& input, const graph::ConvAttrs& attrs) {
  Tensor out(graph::InferPoolShape(input.shape(), attrs));
  AvgPool2dInto(input, attrs, out);
  return out;
}

inline Tensor GlobalAvgPool2d(const Tensor& input) {
  Tensor out(
      graph::TensorShape{input.shape().n, 1, 1, input.shape().c});
  GlobalAvgPool2dInto(input, out);
  return out;
}

inline Tensor Dense(const Tensor& input, const DenseWeights& weights) {
  Tensor out(graph::TensorShape{input.shape().n, 1, 1, weights.units});
  DenseInto(input, weights, out);
  return out;
}

}  // namespace serenity::runtime::wrappers

#endif  // SERENITY_TESTS_TESTING_KERNEL_WRAPPERS_H_
