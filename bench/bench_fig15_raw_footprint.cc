// Figure 15 (appendix B) — raw peak memory footprint of every benchmark
// cell under TensorFlow Lite and the two SERENITY configurations, with the
// memory allocator applied (the absolute-number companion to Figure 10).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace serenity;

void PrintFigure() {
  std::printf("Figure 15: raw peak memory footprint (KB), smaller is "
              "better\n");
  std::printf("(ours = synthetic cells with the published topologies; "
              "paper = the authors' checkpoints)\n\n");
  std::printf("%-32s | %9s %9s | %9s %9s | %9s %9s\n", "cell", "TFLite",
              "paper", "DP", "paper", "DP+GR", "paper");
  bench::PrintRule();
  for (const models::BenchmarkCell& cell : models::AllBenchmarkCells()) {
    const bench::CellMeasurement m = bench::MeasureCell(cell);
    std::printf("%-32s | %9.1f %9.0f | %9.1f %9.0f | %9.1f %9.0f\n",
                bench::CellLabel(cell).c_str(), bench::Kb(m.tflite_arena),
                cell.paper_tflite_kb, bench::Kb(m.dp_arena),
                cell.paper_dp_kb, bench::Kb(m.dp_rw_arena),
                cell.paper_dp_rw_kb);
  }
  std::printf("\n");
}

void BM_MeasureCellEndToEnd(benchmark::State& state) {
  const models::BenchmarkCell& cell =
      models::AllBenchmarkCells()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MeasureCell(cell).dp_rw_arena);
  }
  state.SetLabel(cell.group + "/" + cell.name);
}
BENCHMARK(BM_MeasureCellEndToEnd)->Arg(1)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
