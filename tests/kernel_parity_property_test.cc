// Parity property suite for the kernel-dispatch backends: across ~1000
// random shapes per operator, every non-reference backend (kBlocked always,
// kAvx2 when the machine has it) produces *bit-identical* results to the
// Backend::kReference oracle for the same call sequence.
//
// Bit-identity is the contract, not a tolerance: the blocked and AVX2
// kernels block/vectorize only across independent outputs, preserve each
// output's summation order, and use no FMA, so they compute the exact same
// float sequence the reference loops compute (see DESIGN.md "Kernel
// backends & dispatch"). The shapes exercise channel-window views on inputs
// and outputs, SAME/VALID padding, strides, dilations, and the partial-op
// channel offsets the rewriter emits.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "graph/types.h"
#include "runtime/kernel_backend.h"
#include "runtime/tensor.h"
#include "runtime/weights.h"
#include "util/rng.h"

namespace serenity::runtime {
namespace {

using graph::ConvAttrs;
using graph::Padding;
using graph::TensorShape;

constexpr int kIters = 1000;

// The backends under test, pinned against kReference.
std::vector<Backend> BackendsUnderTest() {
  std::vector<Backend> b{Backend::kBlocked};
  if (BackendAvailable(Backend::kAvx2)) b.push_back(Backend::kAvx2);
  return b;
}

// Bitwise comparison — 0.0f == -0.0f and NaN != NaN under operator==, so
// parity is checked on the raw bit patterns instead.
void ExpectBitIdentical(const Tensor& got, const Tensor& want,
                        const std::string& ctx) {
  ASSERT_EQ(got.shape(), want.shape()) << ctx;
  const std::vector<float> g = got.ToVector();
  const std::vector<float> w = want.ToVector();
  for (std::size_t i = 0; i < g.size(); ++i) {
    std::uint32_t gb, wb;
    std::memcpy(&gb, &g[i], sizeof(gb));
    std::memcpy(&wb, &w[i], sizeof(wb));
    ASSERT_EQ(gb, wb) << ctx << " first bit divergence at flat index " << i
                      << ": got " << g[i] << " want " << w[i];
  }
}

// Geometry of a (possibly channel-windowed) tensor, chosen once per
// iteration and reused so the per-backend outputs share layout.
struct WindowGeom {
  int extra = 0;   // backing_c - shape.c; 0 means plain contiguous
  int offset = 0;  // first backing channel of the window
};

WindowGeom RandomGeom(util::Rng& rng) {
  WindowGeom g;
  if (rng.NextBool(0.4)) {
    g.extra = rng.NextInt(1, 5);
    g.offset = rng.NextInt(0, g.extra);
  }
  return g;
}

// Materializes `shape` with geometry `geom`, filled from `fill`. The owning
// backing lives in `store`; the returned tensor is a view into it, so view
// semantics (pixel strides, channel offsets) reach the kernels even when
// geom is contiguous.
Tensor MakeTensor(const TensorShape& shape, const WindowGeom& geom,
                  util::Rng& fill, std::deque<Tensor>& store) {
  const int backing_c = shape.c + geom.extra;
  store.push_back(Tensor::Random(
      TensorShape{shape.n, shape.h, shape.w, backing_c}, fill));
  Tensor& b = store.back();
  if (geom.extra == 0) return Tensor::View(b.data(), b.size(), shape);
  return Tensor::ChannelView(b.data(), b.size(), shape, backing_c,
                             geom.offset);
}

ConvAttrs RandomConvAttrs(util::Rng& rng) {
  ConvAttrs a;
  a.kernel_h = rng.NextInt(1, 4);
  a.kernel_w = rng.NextInt(1, 4);
  a.stride = rng.NextInt(1, 2);
  a.dilation = rng.NextInt(1, 2);
  a.padding = rng.NextBool(0.5) ? Padding::kSame : Padding::kValid;
  return a;
}

// Smallest input extent so the op yields at least one output pixel.
int MinExtent(const ConvAttrs& a) {
  if (a.padding == Padding::kSame) return 1;
  return (std::max(a.kernel_h, a.kernel_w) - 1) * a.dilation + 1;
}

TEST(KernelParity, Conv2dFullAndPartial) {
  const std::vector<Backend> backends = BackendsUnderTest();
  util::Rng rng(0xC04Fu);
  for (int iter = 0; iter < kIters; ++iter) {
    const ConvAttrs attrs = RandomConvAttrs(rng);
    const int lo = MinExtent(attrs);
    const TensorShape in_shape{rng.NextInt(1, 2),
                               rng.NextInt(lo, lo + 6),
                               rng.NextInt(lo, lo + 6),
                               rng.NextInt(1, 12)};
    const int out_c = rng.NextInt(1, 20);
    const ConvWeights w = MakeConvWeights(1000u + iter, attrs.kernel_h,
                                          attrs.kernel_w, in_shape.c, out_c);
    const WindowGeom in_geom = RandomGeom(rng);
    const WindowGeom out_geom = RandomGeom(rng);
    util::Rng fill(7000u + iter);
    std::deque<Tensor> store;
    const Tensor in = MakeTensor(in_shape, in_geom, fill, store);
    const TensorShape out_shape =
        graph::InferConv2dShape(in_shape, attrs, out_c);

    // Either a single full conv, or the rewriter's shape of the call: two
    // channel-slice partials accumulated into a pre-seeded accumulator.
    const bool split = in_shape.c >= 2 && rng.NextBool(0.5);
    const int c0 = split ? rng.NextInt(1, in_shape.c - 1) : in_shape.c;

    bool have_ref = false;
    Tensor ref_out;
    const std::string ctx = "conv iter " + std::to_string(iter);
    for (const Backend b :
         std::vector<Backend>{Backend::kReference, backends.front(),
                              backends.back()}) {
      const KernelBackend& k = GetKernelBackend(b);
      util::Rng out_fill(9000u + iter);  // same garbage for every backend
      std::deque<Tensor> out_store;
      Tensor out = MakeTensor(out_shape, out_geom, out_fill, out_store);
      if (!split) {
        k.Conv2dInto(in, w, attrs, out);
      } else {
        const TensorShape s0{in_shape.n, in_shape.h, in_shape.w, c0};
        const TensorShape s1{in_shape.n, in_shape.h, in_shape.w,
                             in_shape.c - c0};
        // Slices are channel windows over the *same* storage `in` reads.
        store.push_back(in);  // owning deep copy, contiguous
        Tensor& whole = store.back();
        const Tensor x0 = Tensor::ChannelView(whole.data(), whole.size(),
                                              s0, in_shape.c, 0);
        const Tensor x1 = Tensor::ChannelView(whole.data(), whole.size(),
                                              s1, in_shape.c, c0);
        k.Conv2dPartial(x0, w, attrs, 0, /*overwrite=*/true,
                        /*add_bias=*/true, out);
        k.Conv2dPartial(x1, w, attrs, c0, /*overwrite=*/false,
                        /*add_bias=*/false, out);
      }
      if (!have_ref) {
        ref_out = out;  // deep owning snapshot of the oracle's result
        have_ref = true;
      } else {
        ExpectBitIdentical(out, ref_out, ctx + " backend " + ToString(b));
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

TEST(KernelParity, DepthwiseFullAndPartial) {
  const std::vector<Backend> backends = BackendsUnderTest();
  util::Rng rng(0xD330u);
  for (int iter = 0; iter < kIters; ++iter) {
    const ConvAttrs attrs = RandomConvAttrs(rng);
    const int lo = MinExtent(attrs);
    const TensorShape in_shape{rng.NextInt(1, 2),
                               rng.NextInt(lo, lo + 6),
                               rng.NextInt(lo, lo + 6),
                               rng.NextInt(1, 16)};
    const DepthwiseWeights w = MakeDepthwiseWeights(
        2000u + iter, attrs.kernel_h, attrs.kernel_w, in_shape.c);
    const WindowGeom in_geom = RandomGeom(rng);
    const WindowGeom out_geom = RandomGeom(rng);
    util::Rng fill(7100u + iter);
    std::deque<Tensor> store;
    const Tensor in = MakeTensor(in_shape, in_geom, fill, store);
    const TensorShape out_shape =
        graph::InferDepthwiseShape(in_shape, attrs);
    const bool split = in_shape.c >= 2 && rng.NextBool(0.5);
    const int c0 = split ? rng.NextInt(1, in_shape.c - 1) : in_shape.c;

    bool have_ref = false;
    Tensor ref_out;
    const std::string ctx = "dw iter " + std::to_string(iter);
    for (const Backend b :
         std::vector<Backend>{Backend::kReference, backends.front(),
                              backends.back()}) {
      const KernelBackend& k = GetKernelBackend(b);
      util::Rng out_fill(9100u + iter);
      std::deque<Tensor> out_store;
      Tensor out = MakeTensor(out_shape, out_geom, out_fill, out_store);
      if (!split) {
        k.DepthwiseConv2dInto(in, w, attrs, out);
      } else {
        const TensorShape s0{in_shape.n, in_shape.h, in_shape.w, c0};
        const TensorShape s1{in_shape.n, in_shape.h, in_shape.w,
                             in_shape.c - c0};
        store.push_back(in);
        Tensor& whole = store.back();
        const Tensor x0 = Tensor::ChannelView(whole.data(), whole.size(),
                                              s0, in_shape.c, 0);
        const Tensor x1 = Tensor::ChannelView(whole.data(), whole.size(),
                                              s1, in_shape.c, c0);
        k.DepthwiseConv2dPartial(x0, w, attrs, 0, out, 0);
        k.DepthwiseConv2dPartial(x1, w, attrs, c0, out, c0);
      }
      if (!have_ref) {
        ref_out = out;
        have_ref = true;
      } else {
        ExpectBitIdentical(out, ref_out, ctx + " backend " + ToString(b));
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

// One shared driver for the ops whose call shape is (inputs...) -> out.
template <typename RunFn>
void ElementwiseStyleParity(std::uint64_t seed, const char* what,
                            RunFn&& run) {
  util::Rng rng(seed);
  for (int iter = 0; iter < kIters; ++iter) {
    const Tensor* first = nullptr;
    Tensor snapshot;
    const std::string ctx = std::string(what) + " iter " +
                            std::to_string(iter);
    const std::uint64_t iter_salt = seed * 31u + iter;
    // Re-seed per backend so every backend sees bit-identical inputs.
    for (const Backend b : std::vector<Backend>{
             Backend::kReference, BackendsUnderTest().front(),
             BackendsUnderTest().back()}) {
      util::Rng shape_rng(iter_salt);
      util::Rng fill(iter_salt ^ 0x9e3779b97f4a7c15ull);
      Tensor out = run(GetKernelBackend(b), shape_rng, fill);
      if (first == nullptr) {
        snapshot = out;  // deep copy
        first = &snapshot;
      } else {
        ExpectBitIdentical(out, *first, ctx + " backend " + ToString(b));
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

TEST(KernelParity, ConcatAddMul) {
  ElementwiseStyleParity(
      0xCA7u, "concat/add/mul",
      [](const KernelBackend& k, util::Rng& rng, util::Rng& fill) {
        const TensorShape base{rng.NextInt(1, 2), rng.NextInt(1, 6),
                               rng.NextInt(1, 6), rng.NextInt(1, 12)};
        const int num = rng.NextInt(2, 4);
        const int op = rng.NextInt(0, 2);  // 0=concat, 1=add, 2=mul
        std::deque<Tensor> store;
        std::vector<const Tensor*> ins;
        int total_c = 0;
        for (int i = 0; i < num; ++i) {
          TensorShape s = base;
          if (op == 0) s.c = rng.NextInt(1, 8);  // concat: ragged channels
          total_c += s.c;
          const WindowGeom geom = RandomGeom(rng);
          store.push_back(MakeTensor(s, geom, fill, store));
          ins.push_back(&store.back());
        }
        TensorShape out_shape = base;
        if (op == 0) out_shape.c = total_c;
        const WindowGeom out_geom = RandomGeom(rng);
        Tensor out = MakeTensor(out_shape, out_geom, fill, store);
        if (op == 0) {
          k.ConcatInto(ins, out);
        } else if (op == 1) {
          k.AddInto(ins, out);
        } else {
          k.MulInto(ins, out);
        }
        return Tensor(out);  // deep copy outlives store
      });
}

TEST(KernelParity, ReluAndBatchNorm) {
  ElementwiseStyleParity(
      0xBEEFu, "relu/bn",
      [](const KernelBackend& k, util::Rng& rng, util::Rng& fill) {
        const TensorShape s{rng.NextInt(1, 2), rng.NextInt(1, 7),
                            rng.NextInt(1, 7), rng.NextInt(1, 20)};
        std::deque<Tensor> store;
        const Tensor in = MakeTensor(s, RandomGeom(rng), fill, store);
        Tensor out = MakeTensor(s, RandomGeom(rng), fill, store);
        if (rng.NextBool(0.5)) {
          k.ReluInto(in, out);
        } else {
          const BatchNormWeights w =
              MakeBatchNormWeights(rng.NextInt(0, 1 << 20), s.c);
          k.BatchNormInto(in, w, out);
        }
        return Tensor(out);
      });
}

TEST(KernelParity, Pooling) {
  ElementwiseStyleParity(
      0xF001u, "pool",
      [](const KernelBackend& k, util::Rng& rng, util::Rng& fill) {
        ConvAttrs attrs = RandomConvAttrs(rng);
        attrs.dilation = 1;  // pooling contract: dilation unused
        const int lo = MinExtent(attrs);
        const TensorShape s{rng.NextInt(1, 2), rng.NextInt(lo, lo + 6),
                            rng.NextInt(lo, lo + 6), rng.NextInt(1, 16)};
        std::deque<Tensor> store;
        const Tensor in = MakeTensor(s, RandomGeom(rng), fill, store);
        const int op = rng.NextInt(0, 2);  // 0=max, 1=avg, 2=gap
        if (op == 2) {
          Tensor out = MakeTensor(TensorShape{s.n, 1, 1, s.c},
                                  RandomGeom(rng), fill, store);
          k.GlobalAvgPool2dInto(in, out);
          return Tensor(out);
        }
        const TensorShape out_shape = graph::InferPoolShape(s, attrs);
        Tensor out = MakeTensor(out_shape, RandomGeom(rng), fill, store);
        if (op == 0) {
          k.MaxPool2dInto(in, attrs, out);
        } else {
          k.AvgPool2dInto(in, attrs, out);
        }
        return Tensor(out);
      });
}

TEST(KernelParity, Dense) {
  ElementwiseStyleParity(
      0xDE45u, "dense",
      [](const KernelBackend& k, util::Rng& rng, util::Rng& fill) {
        const TensorShape s{rng.NextInt(1, 2), rng.NextInt(1, 5),
                            rng.NextInt(1, 5), rng.NextInt(1, 10)};
        const int units = rng.NextInt(1, 24);
        const DenseWeights w = MakeDenseWeights(rng.NextInt(0, 1 << 20),
                                                s.h * s.w * s.c, units);
        std::deque<Tensor> store;
        const Tensor in = MakeTensor(s, RandomGeom(rng), fill, store);
        Tensor out = MakeTensor(TensorShape{s.n, 1, 1, units},
                                RandomGeom(rng), fill, store);
        k.DenseInto(in, w, out);
        return Tensor(out);
      });
}

// out may alias any input — the contract the executors' in-place Relu /
// BatchNorm / fused-cell chains rely on. Each backend gets its own fresh
// copy of the aliased storage.
TEST(KernelParity, AliasedElementwiseMatchesReference) {
  util::Rng rng(0xA11A5u);
  for (int iter = 0; iter < 200; ++iter) {
    const TensorShape s{1, rng.NextInt(1, 6), rng.NextInt(1, 6),
                        rng.NextInt(1, 20)};
    util::Rng fill(5000u + iter);
    const Tensor a = Tensor::Random(s, fill);
    const Tensor b = Tensor::Random(s, fill);
    const int op = rng.NextInt(0, 2);  // 0=add, 1=mul, 2=relu

    const Tensor* first = nullptr;
    Tensor snapshot;
    for (const Backend back : std::vector<Backend>{
             Backend::kReference, BackendsUnderTest().front(),
             BackendsUnderTest().back()}) {
      const KernelBackend& k = GetKernelBackend(back);
      Tensor x = a;  // fresh aliased storage per backend
      const Tensor y = b;
      if (op == 0) {
        k.AddInto({&x, &y}, x);
      } else if (op == 1) {
        k.MulInto({&x, &y}, x);
      } else {
        k.ReluInto(x, x);
      }
      if (first == nullptr) {
        snapshot = x;
        first = &snapshot;
      } else {
        ExpectBitIdentical(x, *first,
                           "alias iter " + std::to_string(iter) +
                               " backend " + ToString(back));
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

// Special values: NaN, infinities, signed zeros, denormals must flow
// through every backend exactly as the reference propagates them.
TEST(KernelParity, SpecialValuesBitExact) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  constexpr float kDen = std::numeric_limits<float>::denorm_min();
  const std::vector<float> specials{kNan,  -kNan, kInf,  -kInf, 0.0f,
                                    -0.0f, kDen,  -kDen, 1.0f,  -1.0f,
                                    3.5f,  -2.25f};
  const TensorShape s{1, 2, 3, 17};  // 102 elements, odd lane tail
  Tensor in(s);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in.data()[i] = specials[i % specials.size()];
  }
  const BatchNormWeights bn = MakeBatchNormWeights(42, s.c);

  for (const Backend b : BackendsUnderTest()) {
    const KernelBackend& k = GetKernelBackend(b);
    const KernelBackend& ref = GetKernelBackend(Backend::kReference);
    Tensor got(s), want(s);
    k.ReluInto(in, got);
    ref.ReluInto(in, want);
    ExpectBitIdentical(got, want, std::string("relu specials ") +
                                      ToString(b));
    k.BatchNormInto(in, bn, got);
    ref.BatchNormInto(in, bn, want);
    ExpectBitIdentical(got, want, std::string("bn specials ") +
                                      ToString(b));
    k.AddInto({&in, &in}, got);
    ref.AddInto({&in, &in}, want);
    ExpectBitIdentical(got, want, std::string("add specials ") +
                                      ToString(b));
  }
}

// The dispatch/resolution surface itself.
TEST(KernelDispatch, ResolutionIsTotalAndConsistent) {
  for (const Backend b : {Backend::kReference, Backend::kBlocked,
                          Backend::kAvx2, Backend::kAuto}) {
    const Backend r = ResolveBackend(b);
    EXPECT_NE(r, Backend::kAuto);
    EXPECT_TRUE(BackendAvailable(r)) << ToString(b);
    EXPECT_EQ(GetKernelBackend(b).id, r) << ToString(b);
    EXPECT_EQ(ParseBackend(ToString(b)), b);
  }
  EXPECT_EQ(ResolveBackend(Backend::kReference), Backend::kReference);
  EXPECT_EQ(ResolveBackend(Backend::kBlocked), Backend::kBlocked);
  EXPECT_FALSE(ParseBackend("neon").has_value());
  // kAuto must not resolve to the (slow) reference oracle.
  EXPECT_NE(ResolveBackend(Backend::kAuto), Backend::kReference);
  // Alignment contract: reference is scalar, everything else vectorized.
  EXPECT_EQ(PlacementAlignment(Backend::kReference),
            static_cast<std::int64_t>(sizeof(float)));
  EXPECT_EQ(PlacementAlignment(Backend::kBlocked), 32);
  const std::vector<Backend> avail = AvailableBackends();
  EXPECT_GE(avail.size(), 2u);  // blocked + reference at minimum
}

}  // namespace
}  // namespace serenity::runtime
