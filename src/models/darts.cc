#include "models/darts.h"

#include <array>
#include <string>

#include "graph/builder.h"

namespace serenity::models {

namespace {

using graph::GraphBuilder;
using graph::NodeId;

constexpr int kChannels = 48;

// One stage of a separable-conv chain (relu/dw/pw/bn repeated twice).
NodeId SepConvStage(GraphBuilder& b, NodeId x, int stage,
                    const std::string& p) {
  switch (stage) {
    case 0:
      return b.Relu(x, p + "/relu1");
    case 1:
      return b.DepthwiseConv2d(x, 3, 1, graph::Padding::kSame, 1, p + "/dw1");
    case 2:
      return b.Conv1x1(x, kChannels, p + "/pw1");
    case 3:
      return b.BatchNorm(x, p + "/bn1");
    case 4:
      return b.Relu(x, p + "/relu2");
    case 5:
      return b.DepthwiseConv2d(x, 3, 1, graph::Padding::kSame, 1, p + "/dw2");
    case 6:
      return b.Conv1x1(x, kChannels, p + "/pw2");
    default:
      return b.BatchNorm(x, p + "/bn2");
  }
}

}  // namespace

graph::Graph MakeDartsNormalCell() {
  GraphBuilder b("darts_normal");
  const graph::TensorShape state_shape{1, 28, 28, kChannels};

  // The two input states from the preceding cells / stem.
  const NodeId c_prev_prev = b.Input(state_shape, "c_k-2");
  const NodeId c_prev = b.Input(state_shape, "c_k-1");

  // Preprocessing 1x1 projections (ReLU-Conv-BN), one per input state.
  const NodeId s0 = b.ReluConvBn(c_prev_prev, kChannels, 1, 1, "pre0");
  const NodeId s1 = b.ReluConvBn(c_prev, kChannels, 1, 1, "pre1");

  // Genotype ops 0-4 are separable 3x3 convs on {s0, s1, s0, s1, s1}.
  // Converters serialize NAS cells layer-major, so the five chains are
  // emitted stage by stage (breadth across ops) — the order TFLite runs.
  const std::array<NodeId, 5> op_input = {s0, s1, s0, s1, s1};
  std::array<NodeId, 5> chain = op_input;
  for (int stage = 0; stage < 8; ++stage) {
    for (std::size_t op = 0; op < chain.size(); ++op) {
      chain[op] = SepConvStage(b, chain[op], stage,
                               "op" + std::to_string(op) + "_sep3");
    }
  }
  // Skip connections (ops 5 and 6) both forward s0.
  const NodeId skip5 = b.Identity(s0, "op5_skip");
  const NodeId skip6 = b.Identity(s0, "op6_skip");

  // Intermediate states (sums of op pairs, DARTS-V2 normal genotype).
  const NodeId s2 = b.Add({chain[0], chain[1]}, "s2");
  const NodeId s3 = b.Add({chain[2], chain[3]}, "s3");
  const NodeId s4 = b.Add({chain[4], skip5}, "s4");

  // Op 7: dilated separable 3x3 on s2 (relu -> dilated dw -> pw -> bn).
  NodeId dil = b.Relu(s2, "op7_dil3/relu");
  dil = b.DepthwiseConv2d(dil, 3, 1, graph::Padding::kSame, 2,
                          "op7_dil3/dw");
  dil = b.Conv1x1(dil, kChannels, "op7_dil3/pw");
  dil = b.BatchNorm(dil, "op7_dil3/bn");
  const NodeId s5 = b.Add({skip6, dil}, "s5");

  const NodeId cell_out = b.Concat({s2, s3, s4, s5}, "cell_out");

  // The first op of the next cell's preprocessing consumes the concat
  // (ReLU -> 1x1 conv -> BN). The paper schedules the cell in situ, and
  // this consumer is what makes the output concat channel-wise
  // partitionable (§3.3).
  (void)b.ReluConvBn(cell_out, kChannels, 1, 1, "next_pre");
  return std::move(b).Build();
}

}  // namespace serenity::models
