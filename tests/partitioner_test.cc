#include "core/partitioner.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/dp_scheduler.h"
#include "graph/builder.h"
#include "models/swiftnet.h"
#include "rewrite/rewriter.h"
#include "sched/schedule.h"

namespace serenity::core {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TensorShape;

TensorShape Units(int c) { return TensorShape{1, 16, 16, c}; }

// Two diamond "cells" joined by a single node: in -> (a|b) -> join1 ->
// (c|d) -> join2.
graph::Graph StackedDiamonds() {
  GraphBuilder b("stacked");
  const NodeId in = b.Input(Units(2), "in");
  const NodeId a = b.Conv1x1(in, 2, "a");
  const NodeId bb = b.Conv1x1(in, 3, "b");
  const NodeId j1 = b.Concat({a, bb}, "join1");
  const NodeId c = b.Conv1x1(j1, 2, "c");
  const NodeId d = b.Conv1x1(j1, 2, "d");
  (void)b.Concat({c, d}, "join2");
  return std::move(b).Build();
}

TEST(FindCutNodes, DiamondJoinIsACut) {
  const graph::Graph g = StackedDiamonds();
  const std::vector<NodeId> cuts = FindCutNodes(g);
  // in(0), join1(3) and join2(6) are comparable to everything; a/b/c/d are
  // not (parallel siblings).
  EXPECT_EQ(cuts, (std::vector<NodeId>{0, 3, 6}));
}

TEST(FindCutNodes, BypassEdgeDisqualifies) {
  GraphBuilder b("bypass");
  const NodeId in = b.Input(Units(2), "in");
  const NodeId a = b.Conv1x1(in, 2, "a");
  const NodeId mid = b.Relu(a, "mid");
  // Skip connection from a around mid: a stays live across mid.
  const NodeId c = b.Conv1x1(mid, 2, "c");
  (void)b.Add({c, a}, "out");
  const graph::Graph g = std::move(b).Build();
  const std::vector<NodeId> cuts = FindCutNodes(g);
  // mid and c are comparable to all nodes, but the a->out edge bypasses
  // them; a IS a valid cut (everything passes through it).
  EXPECT_EQ(cuts, (std::vector<NodeId>{0, 1, 4}));
}

TEST(FindCutNodes, ChainIsAllCuts) {
  GraphBuilder b("chain");
  NodeId x = b.Input(Units(1), "in");
  for (int i = 0; i < 3; ++i) x = b.Relu(x, "r" + std::to_string(i));
  const graph::Graph g = std::move(b).Build();
  EXPECT_EQ(FindCutNodes(g).size(), 4u);
}

// Mechanics tests use min_segment_nodes = 1 (no coalescing) so every cut
// becomes a boundary.
PartitionOptions NoCoalescing() {
  PartitionOptions options;
  options.min_segment_nodes = 1;
  return options;
}

TEST(Partition, SegmentsCoverGraphExactlyOnce) {
  const graph::Graph g = StackedDiamonds();
  const Partition partition = PartitionAtCuts(g, NoCoalescing());
  std::vector<int> seen(static_cast<std::size_t>(g.num_nodes()), 0);
  for (const Segment& segment : partition.segments) {
    for (std::size_t local = static_cast<std::size_t>(
             segment.num_placeholders);
         local < segment.orig_ids.size(); ++local) {
      seen[static_cast<std::size_t>(segment.orig_ids[local])]++;
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(Partition, PlaceholdersCarryBoundaryShape) {
  const graph::Graph g = StackedDiamonds();
  const Partition partition = PartitionAtCuts(g, NoCoalescing());
  ASSERT_GE(partition.segments.size(), 2u);
  const Segment& second = partition.segments[1];
  ASSERT_EQ(second.num_placeholders, 1);
  const graph::Node& placeholder = second.subgraph.node(0);
  EXPECT_EQ(placeholder.kind, graph::OpKind::kInput);
  // The boundary it stands for:
  const graph::NodeId boundary = second.orig_ids[0];
  EXPECT_EQ(placeholder.shape, g.node(boundary).shape);
}

TEST(Partition, CombinedScheduleIsValidAndOptimal) {
  const graph::Graph g = StackedDiamonds();
  const Partition partition = PartitionAtCuts(g, NoCoalescing());
  std::vector<sched::Schedule> locals;
  for (const Segment& segment : partition.segments) {
    const DpResult r = ScheduleDp(segment.subgraph);
    ASSERT_EQ(r.status, DpStatus::kSolution) << segment.subgraph.name();
    locals.push_back(r.schedule);
  }
  const sched::Schedule combined =
      CombineSegmentSchedules(partition, locals);
  EXPECT_TRUE(sched::IsTopologicalOrder(g, combined));
  // Divide-and-conquer must not cost optimality on a cleanly cut graph.
  const DpResult whole = ScheduleDp(g);
  ASSERT_EQ(whole.status, DpStatus::kSolution);
  EXPECT_EQ(sched::PeakFootprint(g, combined), whole.peak_bytes);
}

TEST(Partition, SwiftNetCombinedMatchesWholeGraphDp) {
  // The end-to-end divide-and-conquer optimality check on a real model.
  const graph::Graph g = models::MakeSwiftNet();
  const Partition partition = PartitionAtCuts(g);
  EXPECT_GE(partition.segments.size(), 3u) << "expected the 3-cell split";
  std::vector<sched::Schedule> locals;
  for (const Segment& segment : partition.segments) {
    const DpResult r = ScheduleDp(segment.subgraph);
    ASSERT_EQ(r.status, DpStatus::kSolution);
    locals.push_back(r.schedule);
  }
  const sched::Schedule combined =
      CombineSegmentSchedules(partition, locals);
  EXPECT_TRUE(sched::IsTopologicalOrder(g, combined));
  const DpResult whole = ScheduleDp(g);
  ASSERT_EQ(whole.status, DpStatus::kSolution);
  EXPECT_EQ(sched::PeakFootprint(g, combined), whole.peak_bytes);
}

TEST(Partition, SegmentSizesSumToNodeCount) {
  const graph::Graph g = models::MakeSwiftNet();
  for (int min_nodes : {1, 2, 4, 16}) {
    PartitionOptions options;
    options.min_segment_nodes = min_nodes;
    const Partition partition = PartitionAtCuts(g, options);
    const std::vector<int> sizes = partition.SegmentSizes();
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), g.num_nodes())
        << "min_segment_nodes=" << min_nodes;
  }
}

TEST(Partition, SwiftNetSegmentsMatchThePaperScale) {
  // Table 2 reports 62 = {21, 19, 22} and, after rewriting, {33, 28, 29}
  // (cell-aligned). Our boundaries are chosen structurally, landing at the
  // end of each cell's entry chain rather than exactly at the cell output
  // — a ±2-node shift along a linear chain, where every split point yields
  // the same optimal schedule. Three segments of the same scale result.
  const Partition plain = PartitionAtCuts(models::MakeSwiftNet());
  EXPECT_EQ(plain.SegmentSizes(), (std::vector<int>{23, 19, 20}));
  const Partition rewritten = PartitionAtCuts(
      rewrite::RewriteGraph(models::MakeSwiftNet()).graph);
  EXPECT_EQ(rewritten.SegmentSizes(), (std::vector<int>{35, 28, 27}));
}

TEST(Partition, CoalescingPreservesOptimality) {
  const graph::Graph g = models::MakeSwiftNet();
  for (int min_nodes : {1, 4, 8}) {
    PartitionOptions options;
    options.min_segment_nodes = min_nodes;
    const Partition partition = PartitionAtCuts(g, options);
    std::vector<sched::Schedule> locals;
    for (const Segment& segment : partition.segments) {
      const DpResult r = ScheduleDp(segment.subgraph);
      ASSERT_EQ(r.status, DpStatus::kSolution);
      locals.push_back(r.schedule);
    }
    const sched::Schedule combined =
        CombineSegmentSchedules(partition, locals);
    EXPECT_EQ(sched::PeakFootprint(g, combined),
              ScheduleDp(g).peak_bytes)
        << "min_segment_nodes=" << min_nodes;
  }
}

TEST(Partition, SingleSegmentWhenNoCuts) {
  // Two parallel chains from two inputs: nothing is comparable to all.
  GraphBuilder b("nocut");
  const NodeId i1 = b.Input(Units(1), "i1");
  const NodeId i2 = b.Input(Units(1), "i2");
  const NodeId a = b.Relu(i1, "a");
  const NodeId c = b.Relu(i2, "c");
  (void)b.Concat({a, c}, "out");
  const graph::Graph g = std::move(b).Build();
  EXPECT_TRUE(FindCutNodes(g).empty() ||
              FindCutNodes(g) == std::vector<NodeId>{4});
  const Partition partition = PartitionAtCuts(g);
  EXPECT_EQ(partition.segments.size(), 1u);
  EXPECT_EQ(partition.segments[0].subgraph.num_nodes(), g.num_nodes());
}

}  // namespace
}  // namespace serenity::core
