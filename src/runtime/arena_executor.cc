#include "runtime/arena_executor.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <new>

#include "alloc/arena_planner.h"
#include "sched/schedule.h"
#include "testing/fault_injection.h"
#include "util/logging.h"

namespace serenity::runtime {

namespace {

// A *quiet*-NaN bit pattern (bit 22 set) no kernel computes in practice:
// real outputs are sums/products of finite synthetic weights and inputs.
// Quiet rather than signaling so a platform that canonicalizes sNaNs on FP
// stores cannot silently rewrite the fill and blind the scan; the canary is
// only ever filled and compared bit-wise by the measure_touched_peak
// diagnostic.
constexpr std::uint32_t kCanaryBits = 0x7fe5a5a5u;

// The arena base is aligned up to this many bytes (a cache line, and a
// multiple of every backend's PlacementAlignment), so a placement's
// alignment relative to the plan is its alignment in memory.
constexpr std::size_t kArenaBaseAlign = 64;

}  // namespace

ArenaExecutor::ArenaExecutor(const graph::Graph& graph,
                             const serialize::ExecutionPlan& plan,
                             ArenaExecutorOptions options)
    : graph_(graph),
      plan_(plan),
      options_(options),
      kernels_(&GetKernelBackend(options.backend)) {
  const std::size_t num_nodes = static_cast<std::size_t>(graph.num_nodes());
  const std::size_t num_buffers =
      static_cast<std::size_t>(graph.num_buffers());

  // --- Static plan certification: a plan that lies about the graph, about
  // placement geometry, or about lifetimes dies here, before any kernel
  // touches the arena (alloc::ValidatePlanForGraph is the same gauntlet
  // serialize::PlanFromText runs on cache files).
  SERENITY_CHECK_EQ(plan_.schedule.size(), num_nodes)
      << "plan schedules a different node count than the graph";
  SERENITY_CHECK(sched::IsTopologicalOrder(graph_, plan_.schedule))
      << "plan schedule is not a topological order of the graph";
  // Placements must be aligned for the resolved backend's vector loads
  // (sizeof(float) for kReference, 32 B for the blocked/SIMD backends); the
  // planner's 64-byte default satisfies every backend.
  const std::vector<std::string> problems = alloc::ValidatePlanForGraph(
      plan_.arena, graph_, plan_.schedule, PlacementAlignment(kernels_->id));
  SERENITY_CHECK(problems.empty())
      << "invalid execution plan: " << problems.front() << " ("
      << problems.size() << " problem(s))";
  SERENITY_CHECK_EQ(
      plan_.arena.arena_bytes % static_cast<std::int64_t>(sizeof(float)), 0)
      << "arena size is not float-aligned";

  std::vector<const alloc::BufferPlacement*> placement(num_buffers, nullptr);
  for (const alloc::BufferPlacement& p : plan_.arena.placements) {
    placement[static_cast<std::size_t>(p.buffer)] = &p;
  }

  // Shape each buffer after its widest value, exactly like the
  // ReferenceExecutor, so both executors agree on backing layouts.
  std::vector<graph::TensorShape> widest(num_buffers);
  std::vector<std::int64_t> widest_elems(num_buffers, 0);
  for (const graph::Node& node : graph.nodes()) {
    const std::size_t b = static_cast<std::size_t>(node.buffer);
    if (node.shape.NumElements() > widest_elems[b]) {
      widest_elems[b] = node.shape.NumElements();
      widest[b] = node.shape;
    }
  }

  // Fault-injection point: arena exhaustion surfaces as the same
  // std::bad_alloc the real allocation below would throw, so callers'
  // kResourceExhausted mapping is exercised end to end.
  if (testing::FaultTriggered(testing::FaultPoint::kArenaAllocation)) {
    throw std::bad_alloc();
  }
  // One allocation, over-sized by a cache line of slack so the usable base
  // can be aligned up to kArenaBaseAlign regardless of what the allocator
  // returned — placements then hit memory at their planned alignment.
  arena_floats_ =
      static_cast<std::size_t>(plan_.arena.arena_bytes / sizeof(float));
  arena_.assign(arena_floats_ + kArenaBaseAlign / sizeof(float), 0.0f);
  const std::uintptr_t raw =
      reinterpret_cast<std::uintptr_t>(arena_.data());
  const std::uintptr_t aligned =
      (raw + kArenaBaseAlign - 1) & ~(std::uintptr_t{kArenaBaseAlign} - 1);
  arena_base_ = arena_.data() + (aligned - raw) / sizeof(float);

  // --- Bind one view per used buffer at its planned placement (validated
  // above: present, exact byte size, float-aligned, inside the arena).
  buffer_views_.resize(num_buffers);
  for (std::size_t b = 0; b < num_buffers; ++b) {
    if (widest_elems[b] == 0) continue;  // unused buffer: no placement
    const graph::BufferId id = static_cast<graph::BufferId>(b);
    SERENITY_CHECK_EQ(
        widest_elems[b] * static_cast<std::int64_t>(sizeof(float)),
        graph.buffer(id).size_bytes)
        << "buffer " << b << " size does not match its widest value";
    const alloc::BufferPlacement* p = placement[b];
    buffer_views_[b] = Tensor::View(
        arena_base_ + p->offset / static_cast<std::int64_t>(sizeof(float)),
        static_cast<std::size_t>(widest_elems[b]), widest[b]);
  }

  // --- Per-node bindings: value views, operand pointer lists, weights,
  // fused-cell scratch, and input ordinals.
  value_views_.resize(num_nodes);
  input_views_.resize(num_nodes);
  weights_.resize(num_nodes);
  fused_sum_scratch_.resize(num_nodes);
  fused_dw_scratch_.resize(num_nodes);
  input_ordinal_.assign(num_nodes, -1);

  for (const graph::Node& node : graph.nodes()) {
    const std::size_t id = static_cast<std::size_t>(node.id);
    const std::size_t b = static_cast<std::size_t>(node.buffer);
    const alloc::BufferPlacement* p = placement[b];

    // The node's value view: the whole buffer, or a channel window of it.
    if (node.shape == widest[b]) {
      value_views_[id] = Tensor::View(
          arena_base_ +
              p->offset / static_cast<std::int64_t>(sizeof(float)),
          static_cast<std::size_t>(widest_elems[b]), node.shape);
    } else {
      SERENITY_CHECK(node.shape.n == widest[b].n &&
                     node.shape.h == widest[b].h &&
                     node.shape.w == widest[b].w)
          << "value of '" << node.name
          << "' is not a channel slice of its buffer";
      value_views_[id] = Tensor::ChannelView(
          arena_base_ +
              p->offset / static_cast<std::int64_t>(sizeof(float)),
          static_cast<std::size_t>(widest_elems[b]), node.shape,
          widest[b].c, node.buffer_channel_offset);
    }

    weights_[id] = MaterializeNodeWeights(node);
    if (node.kind == graph::OpKind::kInput) {
      input_ordinal_[id] = static_cast<int>(num_graph_inputs_++);
    }
    if (node.kind == graph::OpKind::kFusedCell) {
      const graph::TensorShape in_shape =
          graph.node(node.inputs[0]).shape;
      fused_sum_scratch_[id] = Tensor(in_shape);
      fused_dw_scratch_[id] =
          Tensor(graph::InferDepthwiseShape(in_shape, node.conv));
    }
  }
  // Operand pointers are taken only after value_views_ stops reallocating.
  for (const graph::Node& node : graph.nodes()) {
    std::vector<const Tensor*>& operands =
        input_views_[static_cast<std::size_t>(node.id)];
    operands.reserve(node.inputs.size());
    for (const graph::NodeId input : node.inputs) {
      operands.push_back(&value_views_[static_cast<std::size_t>(input)]);
    }
  }
  for (const graph::NodeId sink : graph.Sinks()) {
    sink_views_.push_back(&value_views_[static_cast<std::size_t>(sink)]);
  }
}

void ArenaExecutor::Run(const std::vector<Tensor>& inputs) {
  SERENITY_CHECK_EQ(inputs.size(), num_graph_inputs_)
      << "graph expects a tensor per kInput node";
  touched_peak_bytes_ = -1;
  if (options_.measure_touched_peak) {
    std::fill_n(arena_base_, arena_floats_,
                std::bit_cast<float>(kCanaryBits));
  }
  for (const graph::NodeId id : plan_.schedule) {
    const graph::Node& node = graph_.node(id);
    if (node.kind == graph::OpKind::kInput) {
      const Tensor& provided = inputs[static_cast<std::size_t>(
          input_ordinal_[static_cast<std::size_t>(id)])];
      SERENITY_CHECK(provided.shape() == node.shape)
          << "input tensor shape mismatch for '" << node.name << "'";
      value_views_[static_cast<std::size_t>(id)].CopyFrom(provided);
    } else {
      Execute(node);
    }
  }
  if (options_.measure_touched_peak) {
    std::size_t top = arena_floats_;
    while (top > 0 && std::bit_cast<std::uint32_t>(arena_base_[top - 1]) ==
                          kCanaryBits) {
      --top;
    }
    touched_peak_bytes_ =
        static_cast<std::int64_t>(top * sizeof(float));
  }
}

void ArenaExecutor::ResetArena() {
  std::fill(arena_.begin(), arena_.end(), 0.0f);
  for (Tensor& scratch : fused_sum_scratch_) {
    if (scratch.size() > 0) std::fill_n(scratch.data(), scratch.size(), 0.0f);
  }
  for (Tensor& scratch : fused_dw_scratch_) {
    if (scratch.size() > 0) std::fill_n(scratch.data(), scratch.size(), 0.0f);
  }
  touched_peak_bytes_ = -1;
}

void ArenaExecutor::Execute(const graph::Node& node) {
  const std::size_t id = static_cast<std::size_t>(node.id);
  Tensor& out = value_views_[id];
  const std::vector<const Tensor*>& in = input_views_[id];
  const NodeWeights& w = weights_[id];
  const KernelBackend& k = *kernels_;

  switch (node.kind) {
    case graph::OpKind::kInput:
      SERENITY_CHECK(false) << "inputs are bound in Run";
      break;
    case graph::OpKind::kConv2d:
      k.Conv2dInto(*in[0], w.conv, node.conv, out);
      break;
    case graph::OpKind::kPartialConv2d:
      k.Conv2dPartial(*in[0], w.conv, node.conv, node.in_channel_offset,
                      /*overwrite=*/true, /*add_bias=*/true, out);
      break;
    case graph::OpKind::kPartialConv2dAccum:
      // Operand layout {accumulator, x_i}: the accumulator is `out` itself
      // (same buffer, same placement), updated in place.
      k.Conv2dPartial(*in[1], w.conv, node.conv, node.in_channel_offset,
                      /*overwrite=*/false, /*add_bias=*/false, out);
      break;
    case graph::OpKind::kDepthwiseConv2d:
      k.DepthwiseConv2dInto(*in[0], w.dw, node.conv, out);
      break;
    case graph::OpKind::kPartialDepthwiseConv2d:
      // Writes channels [buffer_channel_offset, +in.c) of the shared buffer.
      k.DepthwiseConv2dPartial(
          *in[0], w.dw, node.conv, node.in_channel_offset,
          buffer_views_[static_cast<std::size_t>(node.buffer)],
          node.buffer_channel_offset);
      break;
    case graph::OpKind::kConcatView:
      // The partial depthwise writers already populated the shared buffer.
      break;
    case graph::OpKind::kConcat:
      k.ConcatInto(in, out);
      break;
    case graph::OpKind::kAdd:
      k.AddInto(in, out);
      break;
    case graph::OpKind::kMul:
      k.MulInto(in, out);
      break;
    case graph::OpKind::kRelu:
      k.ReluInto(*in[0], out);
      break;
    case graph::OpKind::kBatchNorm:
      k.BatchNormInto(*in[0], w.bn, out);
      break;
    case graph::OpKind::kIdentity:
      out.CopyFrom(*in[0]);
      break;
    case graph::OpKind::kMaxPool2d:
      k.MaxPool2dInto(*in[0], node.conv, out);
      break;
    case graph::OpKind::kAvgPool2d:
      k.AvgPool2dInto(*in[0], node.conv, out);
      break;
    case graph::OpKind::kGlobalAvgPool2d:
      k.GlobalAvgPool2dInto(*in[0], out);
      break;
    case graph::OpKind::kDense:
      k.DenseInto(*in[0], w.dense, out);
      break;
    case graph::OpKind::kFusedCell: {
      Tensor& sum = fused_sum_scratch_[id];
      if (in.size() == 1) {
        sum.CopyFrom(*in[0]);
      } else {
        k.AddInto(in, sum);
      }
      k.ReluInto(sum, sum);  // elementwise, in place
      Tensor& dw = fused_dw_scratch_[id];
      k.DepthwiseConv2dInto(sum, w.dw, node.conv, dw);
      const graph::ConvAttrs pointwise{1, 1, 1, 1, graph::Padding::kSame};
      k.Conv2dInto(dw, w.conv, pointwise, out);
      k.BatchNormInto(out, w.bn, out);  // elementwise, in place
      break;
    }
  }
}

Tensor ArenaExecutor::Value(graph::NodeId id) const {
  SERENITY_CHECK_GE(id, 0);
  SERENITY_CHECK_LT(id, graph_.num_nodes());
  // Copying a view snapshots it into an owning tensor (runtime/tensor.h).
  return value_views_[static_cast<std::size_t>(id)];
}

std::vector<Tensor> ArenaExecutor::SinkValues() const {
  std::vector<Tensor> values;
  values.reserve(sink_views_.size());
  for (const Tensor* view : sink_views_) values.push_back(*view);
  return values;
}

}  // namespace serenity::runtime
