// Quickstart: build an irregularly wired network, schedule it with
// SERENITY, and compare the peak activation footprint against the
// TensorFlow-Lite-style baseline order.
//
//   $ build/examples/quickstart
//
// Walks through the whole public API surface: GraphBuilder -> Pipeline ->
// footprint evaluation -> arena allocation.
#include <cstdio>

#include "alloc/arena_planner.h"
#include "core/pipeline.h"
#include "graph/builder.h"
#include "sched/baselines.h"
#include "sched/schedule.h"

namespace {

// A miniature NAS-style cell: one concat+conv block plus a skip branch.
serenity::graph::Graph BuildExampleNetwork() {
  using serenity::graph::TensorShape;
  serenity::graph::GraphBuilder b("quickstart");
  const auto input = b.Input(TensorShape{1, 32, 32, 3}, "image");
  const auto stem = b.Conv2d(input, 16, 3, /*stride=*/1,
                             serenity::graph::Padding::kSame, 1, "stem");
  // Three parallel branches of different depths.
  const auto b0 = b.Conv1x1(stem, 8, "branch0");
  const auto b1 = b.DepthwiseConv2d(stem, 3, 1,
                                    serenity::graph::Padding::kSame, 1,
                                    "branch1/dw");
  const auto b1p = b.Conv1x1(b1, 8, "branch1/pw");
  const auto b2 = b.DepthwiseConv2d(stem, 5, 1,
                                    serenity::graph::Padding::kSame, 1,
                                    "branch2/dw");
  const auto b2p = b.Conv1x1(b2, 8, "branch2/pw");
  // Concat feeding a conv: the pattern identity graph rewriting optimizes.
  const auto cat = b.Concat({b0, b1p, b2p}, "concat");
  const auto fuse = b.Conv1x1(cat, 24, "fuse");
  const auto skip = b.Conv1x1(stem, 24, "skip");
  (void)b.Add({fuse, skip}, "out");
  return std::move(b).Build();
}

double Kb(std::int64_t bytes) { return static_cast<double>(bytes) / 1024.0; }

}  // namespace

int main() {
  const serenity::graph::Graph network = BuildExampleNetwork();
  std::printf("network '%s': %d nodes, %d edges\n", network.name().c_str(),
              network.num_nodes(), network.num_edges());

  // Baseline: TFLite executes in declaration order.
  const auto tflite_order = serenity::sched::TfLiteOrderSchedule(network);
  const auto tflite_peak =
      serenity::sched::PeakFootprint(network, tflite_order);
  std::printf("TFLite order peak footprint : %8.1f KB\n", Kb(tflite_peak));

  // SERENITY without graph rewriting (pure memory-aware scheduling).
  serenity::core::PipelineOptions dp_only;
  dp_only.enable_rewriting = false;
  const auto dp_result = serenity::core::Pipeline(dp_only).Run(network);
  if (!dp_result.success) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 dp_result.failure_reason.c_str());
    return 1;
  }
  std::printf("SERENITY (DP) peak footprint: %8.1f KB  (%.2fx reduction)\n",
              Kb(dp_result.peak_bytes),
              static_cast<double>(tflite_peak) /
                  static_cast<double>(dp_result.peak_bytes));

  // Full SERENITY: identity graph rewriting + DP scheduling.
  const auto full_result = serenity::core::Pipeline().Run(network);
  if (!full_result.success) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 full_result.failure_reason.c_str());
    return 1;
  }
  std::printf("SERENITY (DP+rewriting)     : %8.1f KB  (%.2fx reduction)\n",
              Kb(full_result.peak_bytes),
              static_cast<double>(tflite_peak) /
                  static_cast<double>(full_result.peak_bytes));
  std::printf("rewriting applied %d pattern(s): %d -> %d nodes\n",
              full_result.rewrite_report.TotalPatterns(),
              full_result.rewrite_report.nodes_before,
              full_result.rewrite_report.nodes_after);

  // Map the schedule onto a flat arena, TFLite style.
  const auto plan = serenity::alloc::PlanArena(full_result.scheduled_graph,
                                               full_result.schedule);
  std::printf("arena size with allocator   : %8.1f KB (%zu placements)\n",
              Kb(plan.arena_bytes), plan.placements.size());

  std::printf("schedule (first 10 ops):\n");
  for (std::size_t i = 0; i < full_result.schedule.size() && i < 10; ++i) {
    const auto& node =
        full_result.scheduled_graph.node(full_result.schedule[i]);
    std::printf("  %2zu: %s\n", i, node.name.c_str());
  }
  return 0;
}
