#include "util/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace serenity::util {

std::string RenderChart(const std::vector<ChartSeries>& series,
                        const ChartOptions& options) {
  SERENITY_CHECK(!series.empty());
  SERENITY_CHECK_GE(options.height, 2);
  SERENITY_CHECK_GE(options.width, 8);
  double max_value = 0.0;
  std::size_t max_len = 0;
  for (const ChartSeries& s : series) {
    for (const double v : s.values) max_value = std::max(max_value, v);
    max_len = std::max(max_len, s.values.size());
  }
  SERENITY_CHECK_GT(max_len, 0u) << "cannot chart empty series";
  if (max_value <= 0.0) max_value = 1.0;

  const int h = options.height;
  const int w = options.width;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w),
                                            ' '));
  for (const ChartSeries& s : series) {
    if (s.values.empty()) continue;
    for (int col = 0; col < w; ++col) {
      // Map the column back to a step (nearest-sample downscale).
      const std::size_t step = static_cast<std::size_t>(
          static_cast<double>(col) * static_cast<double>(s.values.size()) /
          static_cast<double>(w));
      if (step >= s.values.size()) continue;
      const double v = s.values[step];
      const int row = static_cast<int>(
          std::lround(v / max_value * static_cast<double>(h - 1)));
      const int clamped = std::clamp(row, 0, h - 1);
      // Row 0 is the bottom of the chart.
      grid[static_cast<std::size_t>(h - 1 - clamped)]
          [static_cast<std::size_t>(col)] = s.marker;
    }
  }

  std::string out;
  char label[32];
  for (int row = 0; row < h; ++row) {
    const double y =
        max_value * static_cast<double>(h - 1 - row) /
        static_cast<double>(h - 1);
    std::snprintf(label, sizeof(label), "%8.1f%s |", y,
                  options.y_unit.c_str());
    out += label;
    out += grid[static_cast<std::size_t>(row)];
    out += '\n';
  }
  std::snprintf(label, sizeof(label), "%8s%s +", "",
                std::string(options.y_unit.size(), ' ').c_str());
  out += label;
  out += std::string(static_cast<std::size_t>(w), '-');
  out += "> step\n";
  for (const ChartSeries& s : series) {
    out += "          ";
    out += s.marker;
    out += " ";
    out += s.label;
    out += '\n';
  }
  return out;
}

}  // namespace serenity::util
