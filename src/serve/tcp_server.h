// TcpServer: the network front end of the serve path.
//
// Architecture (DESIGN.md "Overload policy"): one accept thread feeds a
// *bounded* admission queue; a fixed pool of connection workers pops
// accepted sockets and owns one connection each for its lifetime
// (thread-per-connection, persistent connections). Every resource a remote
// peer can consume is capped and every cap has a structured answer:
//
//   * Admission queue full  -> the connection is shed at accept time with a
//     kResourceExhausted reply carrying retry_after_millis, then closed.
//     Queues never grow without bound; backpressure is explicit.
//   * Frame too large       -> rejected from its 4-byte header, before the
//     payload is read (a malicious length prefix cannot allocate memory).
//   * Frame trickles        -> the per-frame deadline cuts the connection
//     (slow-loris: a slow writer cannot wedge a worker).
//   * Idle too long         -> the connection is closed (idle peers cannot
//     hold workers hostage).
//   * Pool saturated        -> the infer-path session checkout waits only
//     as long as the request's own deadline allows, then sheds.
//
// Request deadlines travel on the wire (wire::Request::deadline_seconds)
// and bound both planning (serve::RequestOptions) and session checkout, so
// a client's budget is honored end to end — queue wait included.
//
// Graceful drain: RequestDrain() (or the kDrain verb) stops the accept
// loop; connection workers finish the request in flight, close their
// connections, reply kUnavailable("draining") to anything still queued,
// and exit. Join() returns when all of it is done — the binary then
// persists the plan cache and exits 0 (examples/serenity_serve.cpp wires
// this to SIGTERM).
#ifndef SERENITY_SERVE_TCP_SERVER_H_
#define SERENITY_SERVE_TCP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/scheduler_service.h"
#include "serve/session_pool.h"
#include "serve/wire.h"
#include "util/cancel_token.h"
#include "util/memory_budget.h"
#include "util/status.h"

namespace serenity::serve {

struct TcpServerOptions {
  // 0 = let the kernel pick an ephemeral port (read it back via port()).
  int port = 0;
  // Connection workers == max concurrent connections being served.
  int num_workers = 4;
  // Accepted connections waiting for a worker beyond this are shed.
  int max_pending = 16;
  // Suggested client back-off, attached to every load-shed reply.
  std::uint32_t retry_after_millis = 50;
  // A connection with no frame *started* for this long is closed.
  double idle_timeout_seconds = 30.0;
  // A frame that started must complete within this (slow-loris guard).
  double frame_timeout_seconds = 5.0;
  // Budget for writing one reply to a slow reader.
  double write_timeout_seconds = 5.0;
  // Checkout wait for infer requests that carry no deadline of their own.
  double default_checkout_wait_seconds = 5.0;
  std::uint32_t max_frame_bytes = wire::kMaxFrameBytesDefault;
  // Server-wide resource governor (read-only here): surfaced through the
  // stats verb so operators see used/peak/denials next to the serving
  // counters. The planning child is read from the SchedulerService and the
  // session child from the SessionPool; this is the shared root. nullptr =
  // ungoverned, the stats lines are omitted.
  const util::MemoryBudget* governor = nullptr;
};

struct TcpServerStats {
  std::uint64_t accepted = 0;        // connections taken from the kernel
  std::uint64_t admitted = 0;        // ... handed to a worker
  std::uint64_t admission_sheds = 0; // ... shed because the queue was full
  std::uint64_t drain_rejects = 0;   // queued connections rejected at drain
  std::uint64_t requests = 0;        // frames decoded into requests
  std::uint64_t replies_ok = 0;
  std::uint64_t replies_error = 0;   // structured non-OK replies sent
  std::uint64_t bad_frames = 0;      // torn/oversize/corrupt/undecodable
  std::uint64_t idle_closes = 0;     // connections closed for idleness
  std::uint64_t timeout_closes = 0;  // connections cut mid-frame or on a
                                     // failed reply write
  // Plan requests whose cancel token fired (peer disconnect mid-planning,
  // or a drain) and whose planning run ended kCancelled.
  std::uint64_t plan_cancels = 0;
  bool draining = false;
};

class TcpServer {
 public:
  // Serves plans out of `service` and runs inferences through `pool`; both
  // must outlive the server.
  TcpServer(SchedulerService& service, SessionPool& pool,
            TcpServerOptions options = {});
  ~TcpServer();  // RequestDrain + Join if still running

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds, listens and spawns the accept loop + worker pool. kUnavailable
  // when the port cannot be bound.
  util::Status Start();

  // The bound port (valid after Start; the ephemeral port when options.port
  // was 0).
  int port() const { return port_; }

  // Stops accepting and tells workers to finish their in-flight request and
  // close. Idempotent, callable from any thread (including a connection
  // worker handling the kDrain verb, and a signal-watching main loop).
  void RequestDrain();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  // Blocks until the accept loop and every worker have exited (requires a
  // prior RequestDrain, or one racing in). Safe to call once.
  void Join();

  TcpServerStats stats() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  // Decodes and executes one request; never throws, never aborts — every
  // failure is a structured Reply. `fd` lets the plan path probe the
  // connection for a peer disconnect while the planning future is pending.
  wire::Reply Handle(const wire::Request& request, int fd);
  wire::Reply HandlePlan(const wire::Request& request, int fd);
  wire::Reply HandleInfer(const wire::Request& request);
  wire::Reply HandleStats();
  // Best-effort shed reply (used at admission and drain time, where no
  // worker owns the connection).
  void SendShedAndClose(int fd, const char* why,
                        std::uint64_t TcpServerStats::* counter);

  SchedulerService& service_;
  SessionPool& pool_;
  const TcpServerOptions options_;

  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> draining_{false};
  // Fired by RequestDrain: unblocks saturated session-checkout waits (the
  // pool polls it in slices) so drain latency is bounded even when every
  // worker is parked on the pool.
  util::CancelToken drain_cancel_;
  bool started_ = false;
  bool joined_ = false;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable queue_ready_;
  std::deque<int> pending_;      // accepted fds awaiting a worker
  bool accept_done_ = false;     // accept loop has exited
  TcpServerStats counters_;
};

}  // namespace serenity::serve

#endif  // SERENITY_SERVE_TCP_SERVER_H_
