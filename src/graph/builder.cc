#include "graph/builder.h"

#include <functional>

namespace serenity::graph {

GraphBuilder::GraphBuilder(std::string graph_name, DataType dtype)
    : graph_(std::move(graph_name)), dtype_(dtype) {}

std::string GraphBuilder::AutoName(const char* stem) {
  return std::string(stem) + "_" + std::to_string(anon_counter_++);
}

std::uint64_t GraphBuilder::NextWeightSeed() {
  // Mix the graph name into the seed stream so two different models do not
  // share weights, while keeping the stream reproducible per model.
  const std::uint64_t base = std::hash<std::string>{}(graph_.name());
  return base ^ (0x9e3779b97f4a7c15ull * ++seed_counter_);
}

NodeId GraphBuilder::AddOp(Node node) {
  if (node.name.empty()) node.name = AutoName(ToString(node.kind));
  node.dtype = dtype_;
  return graph_.AddNode(std::move(node));
}

NodeId GraphBuilder::Input(const TensorShape& shape, const std::string& name) {
  Node n;
  n.kind = OpKind::kInput;
  n.shape = shape;
  n.name = name;
  return AddOp(std::move(n));
}

NodeId GraphBuilder::Conv2d(NodeId input, int out_channels, int kernel,
                            int stride, Padding padding, int dilation,
                            const std::string& name) {
  const TensorShape in_shape = shape(input);
  Node n;
  n.kind = OpKind::kConv2d;
  n.conv = ConvAttrs{kernel, kernel, stride, dilation, padding};
  n.shape = InferConv2dShape(in_shape, n.conv, out_channels);
  n.inputs = {input};
  n.name = name;
  n.weight_seed = NextWeightSeed();
  n.weight_in_channels = in_shape.c;
  n.weight_count = static_cast<std::int64_t>(kernel) * kernel * in_shape.c *
                       out_channels +
                   out_channels;  // + bias
  return AddOp(std::move(n));
}

NodeId GraphBuilder::DepthwiseConv2d(NodeId input, int kernel, int stride,
                                     Padding padding, int dilation,
                                     const std::string& name) {
  const TensorShape in_shape = shape(input);
  Node n;
  n.kind = OpKind::kDepthwiseConv2d;
  n.conv = ConvAttrs{kernel, kernel, stride, dilation, padding};
  n.shape = InferDepthwiseShape(in_shape, n.conv);
  n.inputs = {input};
  n.name = name;
  n.weight_seed = NextWeightSeed();
  n.weight_in_channels = in_shape.c;
  n.weight_count =
      static_cast<std::int64_t>(kernel) * kernel * in_shape.c + in_shape.c;
  return AddOp(std::move(n));
}

NodeId GraphBuilder::Conv1x1(NodeId input, int out_channels,
                             const std::string& name) {
  return Conv2d(input, out_channels, /*kernel=*/1, /*stride=*/1,
                Padding::kSame, /*dilation=*/1, name);
}

NodeId GraphBuilder::Concat(const std::vector<NodeId>& inputs,
                            const std::string& name) {
  SERENITY_CHECK_GE(inputs.size(), 2u);
  TensorShape out = shape(inputs[0]);
  out.c = 0;
  for (NodeId input : inputs) out.c += shape(input).c;
  Node n;
  n.kind = OpKind::kConcat;
  n.shape = out;
  n.inputs = inputs;
  n.name = name;
  return AddOp(std::move(n));
}

NodeId GraphBuilder::Add(const std::vector<NodeId>& inputs,
                         const std::string& name) {
  SERENITY_CHECK_GE(inputs.size(), 2u);
  Node n;
  n.kind = OpKind::kAdd;
  n.shape = shape(inputs[0]);
  n.inputs = inputs;
  n.name = name;
  return AddOp(std::move(n));
}

NodeId GraphBuilder::Mul(const std::vector<NodeId>& inputs,
                         const std::string& name) {
  SERENITY_CHECK_GE(inputs.size(), 2u);
  Node n;
  n.kind = OpKind::kMul;
  n.shape = shape(inputs[0]);
  n.inputs = inputs;
  n.name = name;
  return AddOp(std::move(n));
}

NodeId GraphBuilder::Relu(NodeId input, const std::string& name) {
  Node n;
  n.kind = OpKind::kRelu;
  n.shape = shape(input);
  n.inputs = {input};
  n.name = name;
  return AddOp(std::move(n));
}

NodeId GraphBuilder::BatchNorm(NodeId input, const std::string& name) {
  Node n;
  n.kind = OpKind::kBatchNorm;
  n.shape = shape(input);
  n.inputs = {input};
  n.name = name;
  n.weight_seed = NextWeightSeed();
  n.weight_count = 2 * static_cast<std::int64_t>(n.shape.c);
  return AddOp(std::move(n));
}

NodeId GraphBuilder::Identity(NodeId input, const std::string& name) {
  Node n;
  n.kind = OpKind::kIdentity;
  n.shape = shape(input);
  n.inputs = {input};
  n.name = name;
  return AddOp(std::move(n));
}

NodeId GraphBuilder::MaxPool2d(NodeId input, int kernel, int stride,
                               Padding padding, const std::string& name) {
  Node n;
  n.kind = OpKind::kMaxPool2d;
  n.conv = ConvAttrs{kernel, kernel, stride, /*dilation=*/1, padding};
  n.shape = InferPoolShape(shape(input), n.conv);
  n.inputs = {input};
  n.name = name;
  return AddOp(std::move(n));
}

NodeId GraphBuilder::AvgPool2d(NodeId input, int kernel, int stride,
                               Padding padding, const std::string& name) {
  Node n;
  n.kind = OpKind::kAvgPool2d;
  n.conv = ConvAttrs{kernel, kernel, stride, /*dilation=*/1, padding};
  n.shape = InferPoolShape(shape(input), n.conv);
  n.inputs = {input};
  n.name = name;
  return AddOp(std::move(n));
}

NodeId GraphBuilder::GlobalAvgPool2d(NodeId input, const std::string& name) {
  const TensorShape in_shape = shape(input);
  Node n;
  n.kind = OpKind::kGlobalAvgPool2d;
  n.shape = TensorShape{in_shape.n, 1, 1, in_shape.c};
  n.inputs = {input};
  n.name = name;
  return AddOp(std::move(n));
}

NodeId GraphBuilder::Dense(NodeId input, int units, const std::string& name) {
  const TensorShape in_shape = shape(input);
  Node n;
  n.kind = OpKind::kDense;
  n.shape = TensorShape{in_shape.n, 1, 1, units};
  n.inputs = {input};
  n.name = name;
  n.weight_seed = NextWeightSeed();
  n.weight_in_channels = static_cast<int>(in_shape.NumElements());
  n.weight_count = in_shape.NumElements() * units + units;
  return AddOp(std::move(n));
}

NodeId GraphBuilder::FusedCell(const std::vector<NodeId>& inputs,
                               int out_channels, int stride,
                               const std::string& name) {
  SERENITY_CHECK(!inputs.empty());
  const TensorShape in_shape = shape(inputs[0]);
  Node n;
  n.kind = OpKind::kFusedCell;
  n.conv = ConvAttrs{3, 3, stride, /*dilation=*/1, Padding::kSame};
  n.shape = InferConv2dShape(in_shape, n.conv, out_channels);
  n.inputs = inputs;
  n.name = name;
  n.weight_seed = NextWeightSeed();
  n.weight_in_channels = in_shape.c;
  // depthwise 3x3 + pointwise in_c x out_c + BN.
  n.weight_count = 9LL * in_shape.c + in_shape.c +
                   static_cast<std::int64_t>(in_shape.c) * out_channels +
                   out_channels + 2LL * out_channels;
  return AddOp(std::move(n));
}

NodeId GraphBuilder::ReluConvBn(NodeId input, int out_channels, int kernel,
                                int stride, const std::string& prefix) {
  const std::string p = prefix.empty() ? AutoName("rcb") : prefix;
  NodeId x = Relu(input, p + "/relu");
  x = Conv2d(x, out_channels, kernel, stride, Padding::kSame, 1, p + "/conv");
  return BatchNorm(x, p + "/bn");
}

NodeId GraphBuilder::SepConv(NodeId input, int out_channels, int kernel,
                             int stride, const std::string& prefix) {
  const std::string p = prefix.empty() ? AutoName("sep") : prefix;
  NodeId x = Relu(input, p + "/relu1");
  x = DepthwiseConv2d(x, kernel, stride, Padding::kSame, 1, p + "/dw1");
  x = Conv1x1(x, out_channels, p + "/pw1");
  x = BatchNorm(x, p + "/bn1");
  x = Relu(x, p + "/relu2");
  x = DepthwiseConv2d(x, kernel, /*stride=*/1, Padding::kSame, 1, p + "/dw2");
  x = Conv1x1(x, out_channels, p + "/pw2");
  return BatchNorm(x, p + "/bn2");
}

NodeId GraphBuilder::DilConv(NodeId input, int out_channels, int kernel,
                             int stride, const std::string& prefix) {
  const std::string p = prefix.empty() ? AutoName("dil") : prefix;
  NodeId x = Relu(input, p + "/relu");
  x = DepthwiseConv2d(x, kernel, stride, Padding::kSame, /*dilation=*/2,
                      p + "/dw");
  x = Conv1x1(x, out_channels, p + "/pw");
  return BatchNorm(x, p + "/bn");
}

Graph GraphBuilder::Build() && {
  graph_.ValidateOrDie();
  return std::move(graph_);
}

}  // namespace serenity::graph
