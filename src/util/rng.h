// Deterministic pseudo-random number generation.
//
// All stochastic components (RandWire graph generation, random schedule
// sampling, synthetic weights in the reference runtime) draw from this
// SplitMix64 generator so that every experiment in the repository is
// reproducible from a seed recorded in DESIGN.md / the bench output.
#ifndef SERENITY_UTIL_RNG_H_
#define SERENITY_UTIL_RNG_H_

#include <cstdint>

#include "util/logging.h"

namespace serenity::util {

// SplitMix64 (Steele et al.): tiny state, passes BigCrush, and — unlike
// std::mt19937 — guaranteed identical output across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t NextU64() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be positive.
  std::uint64_t NextBounded(std::uint64_t bound) {
    SERENITY_CHECK_GT(bound, 0u);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t value = NextU64();
      if (value >= threshold) return value % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int NextInt(int lo, int hi) {
    SERENITY_CHECK_LE(lo, hi);
    return lo + static_cast<int>(NextBounded(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Uniform float in [-scale, scale); used for synthetic weights/inputs.
  float NextFloat(float scale) {
    return (static_cast<float>(NextDouble()) * 2.0f - 1.0f) * scale;
  }

 private:
  std::uint64_t state_;
};

}  // namespace serenity::util

#endif  // SERENITY_UTIL_RNG_H_
