#include "graph/canonical_hash.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/logging.h"

namespace serenity::graph {
namespace {

// splitmix64 finalizer: a cheap full-avalanche mixer.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Order-sensitive fold.
std::uint64_t Fold(std::uint64_t state, std::uint64_t value) {
  return Mix(state ^ (value + 0x165667b19e3779f9ull + (state << 6) +
                      (state >> 2)));
}

// Local signature: every attribute the scheduler/rewriter/planner reads,
// none of the builder bookkeeping (name, id, weight_seed).
std::uint64_t LocalSignature(const Graph& graph, const Node& node,
                             std::uint64_t seed) {
  std::uint64_t h = Fold(seed, static_cast<std::uint64_t>(node.kind));
  h = Fold(h, static_cast<std::uint64_t>(node.dtype));
  h = Fold(h, static_cast<std::uint64_t>(node.shape.n));
  h = Fold(h, static_cast<std::uint64_t>(node.shape.h));
  h = Fold(h, static_cast<std::uint64_t>(node.shape.w));
  h = Fold(h, static_cast<std::uint64_t>(node.shape.c));
  if (IsConvLike(node.kind)) {
    h = Fold(h, static_cast<std::uint64_t>(node.conv.kernel_h));
    h = Fold(h, static_cast<std::uint64_t>(node.conv.kernel_w));
    h = Fold(h, static_cast<std::uint64_t>(node.conv.stride));
    h = Fold(h, static_cast<std::uint64_t>(node.conv.dilation));
    h = Fold(h, static_cast<std::uint64_t>(node.conv.padding));
  }
  h = Fold(h, static_cast<std::uint64_t>(node.concat_axis));
  h = Fold(h, static_cast<std::uint64_t>(
                  graph.buffer(node.buffer).size_bytes));
  h = Fold(h, static_cast<std::uint64_t>(node.buffer_channel_offset));
  h = Fold(h, static_cast<std::uint64_t>(node.in_channel_offset));
  h = Fold(h, static_cast<std::uint64_t>(node.weight_in_channels));
  h = Fold(h, static_cast<std::uint64_t>(node.weight_count));
  return h;
}

// One 64-bit canonicalization pass under `seed`.
std::uint64_t HashWithSeed(const Graph& graph, std::uint64_t seed) {
  const int n = graph.num_nodes();
  std::vector<std::uint64_t> local(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    local[static_cast<std::size_t>(id)] =
        LocalSignature(graph, graph.node(id), seed);
  }

  // Forward: ancestry in operand order. Node ids are a topological order by
  // the Graph's append-only construction discipline, for *any* relabeling.
  std::vector<std::uint64_t> forward(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    std::uint64_t h = local[static_cast<std::size_t>(id)];
    for (const NodeId input : graph.node(id).inputs) {
      h = Fold(h, forward[static_cast<std::size_t>(input)]);
    }
    forward[static_cast<std::size_t>(id)] = h;
  }

  // Backward: descendance. Consumer insertion order is builder bookkeeping,
  // so contributions combine commutatively — but the operand position a
  // consumer reads us at is semantic and tags each contribution.
  std::vector<std::uint64_t> backward(static_cast<std::size_t>(n));
  for (NodeId id = n - 1; id >= 0; --id) {
    std::uint64_t sum = 0;
    for (const NodeId consumer : graph.consumers(id)) {
      const Node& c = graph.node(consumer);
      for (std::size_t pos = 0; pos < c.inputs.size(); ++pos) {
        if (c.inputs[pos] != id) continue;
        sum += Fold(backward[static_cast<std::size_t>(consumer)],
                    static_cast<std::uint64_t>(pos));
      }
    }
    backward[static_cast<std::size_t>(id)] =
        Fold(local[static_cast<std::size_t>(id)], sum);
  }

  std::vector<std::uint64_t> node_hash(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    node_hash[static_cast<std::size_t>(id)] =
        Fold(forward[static_cast<std::size_t>(id)],
             backward[static_cast<std::size_t>(id)]);
  }

  // Buffer sharing structure: which nodes alias one buffer (the rewriter's
  // accumulators and concat views), independent of buffer ids.
  std::vector<std::uint64_t> buffer_hash(
      static_cast<std::size_t>(graph.num_buffers()));
  for (BufferId b = 0; b < graph.num_buffers(); ++b) {
    buffer_hash[static_cast<std::size_t>(b)] =
        Fold(seed, static_cast<std::uint64_t>(graph.buffer(b).size_bytes));
  }
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    buffer_hash[static_cast<std::size_t>(node.buffer)] +=
        Fold(node_hash[static_cast<std::size_t>(id)],
             static_cast<std::uint64_t>(node.buffer_channel_offset));
  }

  // Sorted multisets make the final fold order-independent yet strictly
  // stronger than a plain commutative sum.
  std::sort(node_hash.begin(), node_hash.end());
  std::sort(buffer_hash.begin(), buffer_hash.end());
  std::uint64_t h = Fold(seed, static_cast<std::uint64_t>(n));
  h = Fold(h, static_cast<std::uint64_t>(graph.num_edges()));
  h = Fold(h, static_cast<std::uint64_t>(graph.num_buffers()));
  for (const std::uint64_t v : node_hash) h = Fold(h, v);
  for (const std::uint64_t v : buffer_hash) h = Fold(h, v);
  return h;
}

}  // namespace

std::string GraphHash::ToHex() const {
  char buffer[33];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buffer;
}

GraphHash GraphHashFromHex(const std::string& hex) {
  SERENITY_CHECK_EQ(hex.size(), 32u) << "graph hash must be 32 hex digits";
  GraphHash h;
  for (int half = 0; half < 2; ++half) {
    std::uint64_t value = 0;
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<std::size_t>(half * 16 + i)];
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else {
        SERENITY_CHECK(false) << "bad hex digit '" << c << "' in graph hash";
        digit = 0;
      }
      value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    (half == 0 ? h.hi : h.lo) = value;
  }
  return h;
}

GraphHash CanonicalGraphHash(const Graph& graph) {
  GraphHash h;
  h.hi = HashWithSeed(graph, 0x5345524e49545931ull);  // "SERENITY1"
  h.lo = HashWithSeed(graph, 0x68617368327632aaull);  // independent seed
  return h;
}

}  // namespace serenity::graph
