#include "sched/baselines.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/builder.h"
#include "models/swiftnet.h"
#include "models/randwire.h"
#include "sched/schedule.h"
#include "util/rng.h"

namespace serenity::sched {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TensorShape;

graph::Graph Irregular() {
  GraphBuilder b("irregular");
  const NodeId in = b.Input(TensorShape{1, 8, 8, 4}, "in");
  const NodeId a = b.Relu(in, "a");
  const NodeId c = b.Identity(in, "c");
  const NodeId d = b.Relu(a, "d");
  const NodeId e = b.Add({a, c}, "e");
  (void)b.Add({d, e}, "out");
  return std::move(b).Build();
}

TEST(Baselines, AllProduceValidTopologicalOrders) {
  for (const graph::Graph& g :
       {Irregular(), models::MakeSwiftNet(), models::MakeSwiftNetCellA(),
        models::MakeRandWireCifar10CellA()}) {
    EXPECT_TRUE(IsTopologicalOrder(g, TfLiteOrderSchedule(g))) << g.name();
    EXPECT_TRUE(IsTopologicalOrder(g, KahnFifoSchedule(g))) << g.name();
    EXPECT_TRUE(IsTopologicalOrder(g, DfsPostorderSchedule(g))) << g.name();
    EXPECT_TRUE(IsTopologicalOrder(g, GreedyMemorySchedule(g))) << g.name();
  }
}

TEST(Baselines, TfLiteOrderIsDeclarationOrder) {
  const graph::Graph g = Irregular();
  const Schedule s = TfLiteOrderSchedule(g);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i], static_cast<NodeId>(i));
  }
}

TEST(Baselines, KahnFifoIsBreadthFirst) {
  const graph::Graph g = Irregular();
  // FIFO Kahn on Irregular: in, then a and c (ready together), then d and
  // e, then out.
  EXPECT_EQ(KahnFifoSchedule(g), (Schedule{0, 1, 2, 3, 4, 5}));
}

TEST(Baselines, DfsFinishesOperandChainsFirst) {
  const graph::Graph g = Irregular();
  const Schedule s = DfsPostorderSchedule(g);
  // DFS from the sink completes d's chain (in, a, d) before touching e.
  const auto pos = [&](NodeId id) {
    return std::find(s.begin(), s.end(), id) - s.begin();
  };
  EXPECT_LT(pos(3), pos(4));  // d before e
}

TEST(RandomTopological, ValidAndSeedDeterministic) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  util::Rng rng1(42), rng2(42), rng3(43);
  const Schedule a = RandomTopologicalSchedule(g, rng1);
  const Schedule b = RandomTopologicalSchedule(g, rng2);
  const Schedule c = RandomTopologicalSchedule(g, rng3);
  EXPECT_TRUE(IsTopologicalOrder(g, a));
  EXPECT_TRUE(IsTopologicalOrder(g, c));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed, overwhelmingly likely different order
}

TEST(RandomTopological, ExploresTheScheduleSpace) {
  // On a graph with many topological orders, 100 samples should produce
  // many distinct schedules.
  const graph::Graph g = models::MakeSwiftNetCellA();
  util::Rng rng(7);
  std::set<Schedule> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(RandomTopologicalSchedule(g, rng));
  }
  EXPECT_GT(seen.size(), 90u);
}

TEST(GreedyMemory, BeatsDeclarationOrderOnABadLayout) {
  // Two deep chains declared breadth-major: declaration order keeps both
  // chains' intermediates alive; greedy walks one chain to its end first.
  GraphBuilder b("two_chains");
  const NodeId in = b.Input(TensorShape{1, 16, 16, 4}, "in");
  NodeId left = in;
  NodeId right = in;
  for (int i = 0; i < 4; ++i) {
    left = b.Conv1x1(left, 4, "L" + std::to_string(i));
    right = b.Conv1x1(right, 4, "R" + std::to_string(i));
  }
  (void)b.Concat({left, right}, "out");
  const graph::Graph g = std::move(b).Build();
  const auto declaration = PeakFootprint(g, TfLiteOrderSchedule(g));
  const auto greedy = PeakFootprint(g, GreedyMemorySchedule(g));
  EXPECT_LE(greedy, declaration);
}

}  // namespace
}  // namespace serenity::sched
