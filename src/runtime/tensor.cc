#include "runtime/tensor.h"

#include <cmath>

namespace serenity::runtime {

float Tensor::MaxAbsDiff(const Tensor& other) const {
  SERENITY_CHECK(shape_ == other.shape_) << "shape mismatch in MaxAbsDiff";
  float worst = 0.0f;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

}  // namespace serenity::runtime
