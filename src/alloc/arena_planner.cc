#include "alloc/arena_planner.h"

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "util/logging.h"

namespace serenity::alloc {

namespace {

std::int64_t AlignUp(std::int64_t value, std::int64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

struct Lifetime {
  int first_step = -1;  // first write
  int last_step = -1;   // last use; schedule end for sinks
  bool used = false;
};

std::vector<Lifetime> ComputeLifetimes(const graph::Graph& graph,
                                       const graph::BufferUseTable& table,
                                       const sched::Schedule& schedule) {
  std::vector<Lifetime> lifetimes(table.buffers.size());
  for (std::size_t step = 0; step < schedule.size(); ++step) {
    const graph::NodeId id = schedule[step];
    for (const graph::BufferId b :
         table.touched_buffers[static_cast<std::size_t>(id)]) {
      Lifetime& life = lifetimes[static_cast<std::size_t>(b)];
      const bool writes = graph.node(id).buffer == b;
      if (writes && life.first_step < 0) {
        life.first_step = static_cast<int>(step);
        life.used = true;
      }
      life.last_step = static_cast<int>(step);
    }
  }
  const int last = static_cast<int>(schedule.size()) - 1;
  for (std::size_t b = 0; b < table.buffers.size(); ++b) {
    if (lifetimes[b].used && table.buffers[b].is_sink) {
      lifetimes[b].last_step = last;  // outputs persist to inference end
    }
  }
  return lifetimes;
}

// Lifetime-interval index for the gap scan (DESIGN.md "Interval-indexed
// arena planner"). All placements live in one persistent array kept sorted
// by arena offset (insertion is a binary search plus a contiguous shift of
// 24-byte PODs), so the per-buffer scan consumes conflicts in offset order
// directly — the seed rebuilt and re-sorted a `conflicts` vector for every
// buffer. On top of the array sit fixed-width blocks carrying the min
// first_step / max last_step of their entries: a block whose lifetime
// envelope misses the query is skipped whole, so a buffer touches only
// (blocks of) true lifetime overlaps.
class PlacementIndex {
 public:
  struct Entry {
    std::int64_t offset = 0;  // sort key
    std::int64_t end = 0;     // offset + size
    std::int32_t first_step = 0;
    std::int32_t last_step = 0;
  };

  static constexpr std::size_t kBlock = 64;

  void Insert(std::int64_t offset, std::int64_t end, int first_step,
              int last_step) {
    const Entry entry{offset, end, first_step, last_step};
    const auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), entry,
        [](const Entry& a, const Entry& b) { return a.offset < b.offset; });
    const std::size_t at = static_cast<std::size_t>(pos - entries_.begin());
    entries_.insert(pos, entry);
    // Blocks from the insertion point on shifted by one entry; their
    // envelopes are rebuilt in the same pass the insertion's memmove
    // already paid for.
    const std::size_t num_blocks = (entries_.size() + kBlock - 1) / kBlock;
    block_min_first_.resize(num_blocks);
    block_max_last_.resize(num_blocks);
    for (std::size_t blk = at / kBlock; blk < num_blocks; ++blk) {
      std::int32_t min_first = std::numeric_limits<std::int32_t>::max();
      std::int32_t max_last = -1;
      const std::size_t hi = std::min(entries_.size(), (blk + 1) * kBlock);
      for (std::size_t i = blk * kBlock; i < hi; ++i) {
        min_first = std::min(min_first, entries_[i].first_step);
        max_last = std::max(max_last, entries_[i].last_step);
      }
      block_min_first_[blk] = min_first;
      block_max_last_[blk] = max_last;
    }
  }

  // Calls visit(entry) for every placement whose lifetime overlaps
  // [first_step, last_step], in ascending offset order. Stops early when
  // visit returns false.
  template <typename Visit>
  void Scan(int first_step, int last_step, const Visit& visit) const {
    const std::size_t num_blocks = block_min_first_.size();
    for (std::size_t blk = 0; blk < num_blocks; ++blk) {
      if (block_min_first_[blk] > last_step ||
          block_max_last_[blk] < first_step) {
        continue;  // no entry in this block overlaps the lifetime
      }
      const std::size_t hi = std::min(entries_.size(), (blk + 1) * kBlock);
      for (std::size_t i = blk * kBlock; i < hi; ++i) {
        const Entry& e = entries_[i];
        if (e.first_step > last_step || e.last_step < first_step) continue;
        if (!visit(e)) return;
      }
    }
  }

 private:
  std::vector<Entry> entries_;  // always sorted by offset
  std::vector<std::int32_t> block_min_first_;
  std::vector<std::int32_t> block_max_last_;
};

}  // namespace

ArenaPlan PlanArena(const graph::Graph& graph,
                    const graph::BufferUseTable& table,
                    const sched::Schedule& schedule, FitStrategy strategy,
                    std::int64_t alignment) {
  SERENITY_CHECK(sched::IsTopologicalOrder(graph, schedule));
  SERENITY_CHECK_GT(alignment, 0);
  const std::vector<Lifetime> lifetimes =
      ComputeLifetimes(graph, table, schedule);

  // Placement order: TFLite's greedy-by-size plans the largest tensors
  // first (ties broken by first use); the first-use strategies replay
  // allocation-time order instead.
  std::vector<graph::BufferId> order;
  for (std::size_t b = 0; b < lifetimes.size(); ++b) {
    if (lifetimes[b].used) order.push_back(static_cast<graph::BufferId>(b));
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](graph::BufferId a, graph::BufferId b) {
                     const Lifetime& la = lifetimes[static_cast<std::size_t>(a)];
                     const Lifetime& lb = lifetimes[static_cast<std::size_t>(b)];
                     const std::int64_t sa =
                         table.buffers[static_cast<std::size_t>(a)].size_bytes;
                     const std::int64_t sb =
                         table.buffers[static_cast<std::size_t>(b)].size_bytes;
                     if (strategy == FitStrategy::kGreedyBySize) {
                       if (sa != sb) return sa > sb;
                       return la.first_step < lb.first_step;
                     }
                     if (la.first_step != lb.first_step) {
                       return la.first_step < lb.first_step;
                     }
                     return sa > sb;
                   });

  ArenaPlan plan;
  plan.placements.reserve(order.size());
  PlacementIndex index;
  for (const graph::BufferId b : order) {
    const Lifetime& life = lifetimes[static_cast<std::size_t>(b)];
    const std::int64_t size =
        std::max<std::int64_t>(table.buffers[static_cast<std::size_t>(b)]
                                   .size_bytes,
                               1);
    // Stream the already placed buffers whose lifetimes overlap this one
    // in ascending offset order and scan the gaps.
    std::int64_t best_offset = -1;
    std::int64_t best_gap = std::numeric_limits<std::int64_t>::max();
    std::int64_t cursor = 0;
    const auto consider = [&](std::int64_t gap_start, std::int64_t gap_end) {
      const std::int64_t start = AlignUp(gap_start, alignment);
      if (gap_end - start < size) return;
      if (strategy == FitStrategy::kBestFit) {
        if (gap_end - start < best_gap) {
          best_gap = gap_end - start;
          best_offset = start;
        }
      } else if (best_offset < 0) {
        best_offset = start;  // lowest feasible offset
      }
    };
    index.Scan(life.first_step, life.last_step,
               [&](const PlacementIndex::Entry& e) {
                 if (e.offset > cursor) consider(cursor, e.offset);
                 cursor = std::max(cursor, e.end);
                 // First-fit strategies are decided by the lowest feasible
                 // gap; once one is found the rest of the stream cannot
                 // change the answer.
                 return strategy == FitStrategy::kBestFit || best_offset < 0;
               });
    // Open-ended gap above the last conflict.
    const std::int64_t open_start = AlignUp(cursor, alignment);
    if (best_offset < 0 ||
        (strategy == FitStrategy::kBestFit &&
         best_gap == std::numeric_limits<std::int64_t>::max())) {
      best_offset = open_start;
    }
    plan.placements.push_back(BufferPlacement{
        b, best_offset, size, life.first_step, life.last_step});
    index.Insert(best_offset, best_offset + size, life.first_step,
                 life.last_step);
    plan.arena_bytes = std::max(plan.arena_bytes, best_offset + size);
  }

  // Allocator-view footprint trace via a start/end event sweep: placements
  // enter a lazy max-heap of (top-of-arena, expiry) at first_step and are
  // popped once the step passes their last_step; the per-step highwater is
  // the surviving heap top. O(n log n + S), no per-element allocation —
  // the seed refilled every step of every placement's lifetime.
  plan.highwater_at_step.assign(schedule.size(), 0);
  struct HwEvent {
    std::int64_t top = 0;      // offset + size
    std::int32_t first_step = 0;
    std::int32_t last_step = 0;
  };
  std::vector<HwEvent> events;
  events.reserve(plan.placements.size());
  for (const BufferPlacement& p : plan.placements) {
    events.push_back(HwEvent{p.offset + p.size,
                             static_cast<std::int32_t>(p.first_step),
                             static_cast<std::int32_t>(p.last_step)});
  }
  std::sort(events.begin(), events.end(),
            [](const HwEvent& a, const HwEvent& b) {
              return a.first_step < b.first_step;
            });
  const auto by_top = [](const HwEvent& a, const HwEvent& b) {
    return a.top < b.top;  // max-heap on top-of-arena
  };
  std::vector<HwEvent> active;  // heap; expired entries removed lazily
  active.reserve(events.size());
  std::size_t next_event = 0;
  for (std::size_t step = 0; step < schedule.size(); ++step) {
    const std::int32_t now = static_cast<std::int32_t>(step);
    while (next_event < events.size() &&
           events[next_event].first_step == now) {
      active.push_back(events[next_event++]);
      std::push_heap(active.begin(), active.end(), by_top);
    }
    while (!active.empty() && active.front().last_step < now) {
      std::pop_heap(active.begin(), active.end(), by_top);
      active.pop_back();
    }
    if (!active.empty()) plan.highwater_at_step[step] = active.front().top;
  }
  return plan;
}

ArenaPlan PlanArena(const graph::Graph& graph,
                    const sched::Schedule& schedule, FitStrategy strategy,
                    std::int64_t alignment) {
  return PlanArena(graph, graph::BufferUseTable::Build(graph), schedule,
                   strategy, alignment);
}

std::int64_t EstimatePlannerBytes(const graph::BufferUseTable& table,
                                  const sched::Schedule& schedule) {
  const std::int64_t buffers =
      static_cast<std::int64_t>(table.buffers.size());
  const std::int64_t steps = static_cast<std::int64_t>(schedule.size());
  // Per buffer: a Lifetime, a BufferPlacement in the plan, an index entry
  // plus its block envelope, and an event in the highwater sweep (each
  // well under 64 bytes). Per step: one highwater entry plus the active
  // heap slot (<= 32 bytes). Headroom over the true footprint is fine —
  // this is an admission estimate, not an accounting ledger.
  return buffers * 64 + steps * 32;
}

util::StatusOr<ArenaPlan> PlanArenaGoverned(const graph::Graph& graph,
                                            const sched::Schedule& schedule,
                                            util::MemoryBudget* budget,
                                            FitStrategy strategy,
                                            std::int64_t alignment) {
  const graph::BufferUseTable table = graph::BufferUseTable::Build(graph);
  util::BudgetReservation reservation(budget);
  if (!reservation.EnsureAtLeast(EstimatePlannerBytes(table, schedule))) {
    return util::ResourceExhaustedError(
        "arena planner: memory budget exhausted");
  }
  // The reservation covers the planning run and unwinds at scope exit.
  return PlanArena(graph, table, schedule, strategy, alignment);
}

namespace {

// Exact pairwise check, kept for degenerate plans the sweep cannot model
// (a placement with first_step > last_step "overlaps" exactly the
// placements spanning both of its reversed endpoints under the symmetric
// interval test; no real plan contains one).
bool ValidatePlacementsPairwise(const ArenaPlan& plan) {
  for (std::size_t i = 0; i < plan.placements.size(); ++i) {
    const BufferPlacement& a = plan.placements[i];
    for (std::size_t j = i + 1; j < plan.placements.size(); ++j) {
      const BufferPlacement& b = plan.placements[j];
      const bool time_overlap =
          a.first_step <= b.last_step && b.first_step <= a.last_step;
      const bool space_overlap =
          a.offset < b.offset + b.size && b.offset < a.offset + a.size;
      if (time_overlap && space_overlap) return false;
    }
  }
  return true;
}

}  // namespace

bool ValidatePlacements(const ArenaPlan& plan, std::int64_t alignment) {
  SERENITY_CHECK_GT(alignment, 0);
  // Start/end sweep over steps: placements active at the same time must be
  // pairwise disjoint in address range, so keeping the active set ordered
  // by offset reduces the check to each insertion's two neighbours —
  // O(n log n) against the seed's pairwise O(n^2).
  struct Event {
    int step = 0;
    bool is_start = false;  // ends (at last_step + 1) sort before starts
    std::int32_t index = 0;
  };
  std::vector<Event> events;
  events.reserve(2 * plan.placements.size());
  bool inverted_lifetime = false;
  for (std::size_t i = 0; i < plan.placements.size(); ++i) {
    const BufferPlacement& p = plan.placements[i];
    if (p.offset < 0 || p.size <= 0) return false;
    if (p.offset % alignment != 0) return false;
    if (p.offset + p.size > plan.arena_bytes) return false;
    inverted_lifetime |= p.first_step > p.last_step;
    events.push_back(Event{p.first_step, true, static_cast<std::int32_t>(i)});
    events.push_back(
        Event{p.last_step + 1, false, static_cast<std::int32_t>(i)});
  }
  if (inverted_lifetime) return ValidatePlacementsPairwise(plan);
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.step != b.step) return a.step < b.step;
    return a.is_start < b.is_start;  // process removals first
  });

  std::set<std::pair<std::int64_t, std::int32_t>> active;  // (offset, index)
  for (const Event& e : events) {
    const BufferPlacement& p =
        plan.placements[static_cast<std::size_t>(e.index)];
    const auto key = std::make_pair(p.offset, e.index);
    if (!e.is_start) {
      active.erase(key);
      continue;
    }
    const auto next = active.lower_bound(key);
    if (next != active.end()) {
      const BufferPlacement& n =
          plan.placements[static_cast<std::size_t>(next->second)];
      if (p.offset + p.size > n.offset) return false;
    }
    if (next != active.begin()) {
      const BufferPlacement& prev =
          plan.placements[static_cast<std::size_t>(std::prev(next)->second)];
      if (prev.offset + prev.size > p.offset) return false;
    }
    active.insert(key);
  }
  return true;
}

std::vector<std::string> ValidatePlanForGraph(
    const ArenaPlan& plan, const graph::Graph& graph,
    const sched::Schedule& schedule, std::int64_t alignment) {
  SERENITY_CHECK_GT(alignment, 0);
  std::vector<std::string> problems;
  const auto complain = [&problems](std::string message) {
    problems.push_back(std::move(message));
  };

  // One placement per *used* buffer — no more, no less — with geometry
  // inside the arena. A spurious placement for a buffer no node touches
  // would silently inflate the arena (nothing ever writes it), so it is
  // rejected just like a missing one.
  std::vector<char> used(static_cast<std::size_t>(graph.num_buffers()), 0);
  for (const graph::Node& node : graph.nodes()) {
    used[static_cast<std::size_t>(node.buffer)] = 1;
  }
  std::vector<const BufferPlacement*> placement(
      static_cast<std::size_t>(graph.num_buffers()), nullptr);
  for (const BufferPlacement& p : plan.placements) {
    if (p.buffer < 0 || p.buffer >= graph.num_buffers()) {
      complain("placement references unknown buffer " +
               std::to_string(p.buffer));
      continue;
    }
    auto*& slot = placement[static_cast<std::size_t>(p.buffer)];
    if (slot != nullptr) {
      complain("buffer " + std::to_string(p.buffer) + " placed twice");
      continue;
    }
    slot = &p;
    if (!used[static_cast<std::size_t>(p.buffer)]) {
      complain("placement for buffer " + std::to_string(p.buffer) +
               ", which no node uses");
    }
    // Escape check phrased to stay overflow-free on crafted offsets near
    // INT64_MAX: with offset >= 0, "offset + size > arena" <=> this.
    if (p.offset < 0 || p.size <= 0 ||
        p.size > plan.arena_bytes - p.offset) {
      complain("placement of buffer " + std::to_string(p.buffer) +
               " escapes the arena");
    }
    if (p.offset % static_cast<std::int64_t>(sizeof(float)) != 0) {
      complain("placement offset of buffer " + std::to_string(p.buffer) +
               " is not float-aligned");
    } else if (p.offset % alignment != 0) {
      complain("placement offset of buffer " + std::to_string(p.buffer) +
               " is not " + std::to_string(alignment) + "-byte aligned");
    }
    if (p.size != graph.buffer(p.buffer).size_bytes) {
      complain("placement of buffer " + std::to_string(p.buffer) +
               " disagrees with its byte size");
    }
  }

  // Liveness: every producer and consumer step must fall inside its
  // buffer's planned lifetime — otherwise another placement may own those
  // bytes while the value is still needed.
  std::vector<int> step_of(static_cast<std::size_t>(graph.num_nodes()), -1);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const graph::NodeId id = schedule[i];
    if (id >= 0 && id < graph.num_nodes()) {
      step_of[static_cast<std::size_t>(id)] = static_cast<int>(i);
    }
  }
  const auto live_at = [&](graph::BufferId buffer, int step) {
    const BufferPlacement* p = placement[static_cast<std::size_t>(buffer)];
    return p != nullptr && p->first_step <= step && step <= p->last_step;
  };
  for (const graph::Node& node : graph.nodes()) {
    const BufferPlacement* own =
        placement[static_cast<std::size_t>(node.buffer)];
    if (own == nullptr) {
      complain("used buffer " + std::to_string(node.buffer) + " of '" +
               node.name + "' has no placement");
      continue;
    }
    const int step = step_of[static_cast<std::size_t>(node.id)];
    if (step < 0) {
      complain("'" + node.name + "' is missing from the schedule");
      continue;
    }
    if (!live_at(node.buffer, step)) {
      complain("'" + node.name + "' writes buffer " +
               std::to_string(node.buffer) +
               " outside its planned lifetime");
    }
    for (const graph::NodeId input : node.inputs) {
      if (!live_at(graph.node(input).buffer, step)) {
        complain("'" + node.name + "' reads buffer " +
                 std::to_string(graph.node(input).buffer) +
                 " outside its planned lifetime");
      }
    }
  }

  if (!ValidatePlacements(plan)) {
    complain("placements overlap in lifetime and address");
  }
  return problems;
}

}  // namespace serenity::alloc
