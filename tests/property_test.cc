// Cross-module property tests over randomly generated irregular networks
// (models::MakeRandomCellNetwork): for a sweep of seeds, every invariant
// that ties the scheduler stack together must hold simultaneously.
#include <gtest/gtest.h>

#include "alloc/arena_planner.h"
#include "core/dp_scheduler.h"
#include "core/partitioner.h"
#include "core/pipeline.h"
#include "core/soft_budget.h"
#include "models/random_cell.h"
#include "rewrite/inplace.h"
#include "rewrite/rewriter.h"
#include "runtime/executor.h"
#include "runtime/tensor.h"
#include "sched/baselines.h"
#include "sched/beam.h"
#include "sched/schedule.h"
#include "util/rng.h"

namespace serenity {
namespace {

models::RandomCellParams ParamsForSeed(int seed) {
  models::RandomCellParams p;
  p.seed = static_cast<std::uint64_t>(seed) * 2654435761u + 17;
  p.num_intermediates = 5 + seed % 6;
  p.concat_branches = (seed % 3 == 0) ? 0 : 3 + seed % 3;
  p.depthwise_block = seed % 2 == 0;
  p.num_cells = 1 + seed % 3;
  p.spatial = 8;
  p.name = "prop_net";
  return p;
}

class RandomNetworkProperties : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetworkProperties, SchedulerStackInvariants) {
  const graph::Graph g = models::MakeRandomCellNetwork(
      ParamsForSeed(GetParam()));
  ASSERT_TRUE(g.Validate().empty());

  // --- DP is optimal within every baseline's reach and self-consistent.
  const core::DpResult dp = core::ScheduleDp(g);
  ASSERT_EQ(dp.status, core::DpStatus::kSolution);
  EXPECT_EQ(dp.peak_bytes, sched::PeakFootprint(g, dp.schedule));
  for (const sched::Schedule& s :
       {sched::TfLiteOrderSchedule(g), sched::KahnFifoSchedule(g),
        sched::DfsPostorderSchedule(g), sched::GreedyMemorySchedule(g)}) {
    EXPECT_LE(dp.peak_bytes, sched::PeakFootprint(g, s));
  }

  // --- Soft budgeting and a wide beam agree with the exact optimum.
  const core::SoftBudgetResult sb = core::ScheduleWithSoftBudget(g);
  ASSERT_EQ(sb.status, core::DpStatus::kSolution);
  EXPECT_EQ(sb.peak_bytes, dp.peak_bytes);
  sched::BeamOptions wide;
  wide.width = 1 << 14;
  EXPECT_EQ(sched::ScheduleBeam(g, wide).peak_bytes, dp.peak_bytes);

  // --- Divide-and-conquer composes to the same optimum.
  const core::Partition partition = core::PartitionAtCuts(g);
  std::vector<sched::Schedule> locals;
  for (const core::Segment& segment : partition.segments) {
    const core::DpResult r = core::ScheduleDp(segment.subgraph);
    ASSERT_EQ(r.status, core::DpStatus::kSolution);
    locals.push_back(r.schedule);
  }
  const sched::Schedule combined =
      core::CombineSegmentSchedules(partition, locals);
  ASSERT_TRUE(sched::IsTopologicalOrder(g, combined));
  EXPECT_EQ(sched::PeakFootprint(g, combined), dp.peak_bytes);
}

TEST_P(RandomNetworkProperties, RewritingInvariants) {
  const graph::Graph g = models::MakeRandomCellNetwork(
      ParamsForSeed(GetParam()));
  const rewrite::RewriteResult rw = rewrite::RewriteGraph(g);
  ASSERT_TRUE(rw.graph.Validate().empty());
  EXPECT_EQ(graph::CountWeights(rw.graph), graph::CountWeights(g));
  EXPECT_EQ(graph::CountMacs(rw.graph), graph::CountMacs(g));

  // Rewriting only enlarges the schedule space: its optimum never regresses
  // (the rewritten graph can always emulate the original order).
  const core::DpResult before = core::ScheduleDp(g);
  const core::DpResult after = core::ScheduleDp(rw.graph);
  ASSERT_EQ(before.status, core::DpStatus::kSolution);
  ASSERT_EQ(after.status, core::DpStatus::kSolution);
  EXPECT_LE(after.peak_bytes, before.peak_bytes) << g.name();

  // And it computes the same function.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<runtime::Tensor> inputs;
  for (const graph::Node& n : g.nodes()) {
    if (n.kind == graph::OpKind::kInput) {
      inputs.push_back(runtime::Tensor::Random(n.shape, rng));
    }
  }
  runtime::ReferenceExecutor original(g);
  original.Run(inputs);
  runtime::ReferenceExecutor rewritten(rw.graph);
  rewritten.Run(inputs, after.schedule);
  const auto a = original.SinkValues();
  const auto b = rewritten.SinkValues();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(a[i].MaxAbsDiff(b[i]), 1e-3f) << g.name();
  }
}

TEST_P(RandomNetworkProperties, AllocatorInvariants) {
  const graph::Graph g = models::MakeRandomCellNetwork(
      ParamsForSeed(GetParam()));
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  for (int trial = 0; trial < 3; ++trial) {
    const sched::Schedule s = sched::RandomTopologicalSchedule(g, rng);
    for (const alloc::FitStrategy strategy :
         {alloc::FitStrategy::kGreedyBySize, alloc::FitStrategy::kFirstFit,
          alloc::FitStrategy::kBestFit}) {
      const alloc::ArenaPlan plan = alloc::PlanArena(g, s, strategy);
      EXPECT_TRUE(alloc::ValidatePlacements(plan));
      EXPECT_GE(plan.arena_bytes, sched::PeakFootprint(g, s));
    }
  }
}

TEST_P(RandomNetworkProperties, InPlacePassInvariants) {
  const graph::Graph g = models::MakeRandomCellNetwork(
      ParamsForSeed(GetParam()));
  const rewrite::InPlaceResult ip = rewrite::ApplyInPlaceElementwise(g);
  ASSERT_TRUE(ip.graph.Validate().empty());
  // Never hurts the achievable optimum.
  const core::DpResult before = core::ScheduleDp(g);
  const core::DpResult after = core::ScheduleDp(ip.graph);
  ASSERT_EQ(after.status, core::DpStatus::kSolution);
  EXPECT_LE(after.peak_bytes, before.peak_bytes);
  // Still computes the same function.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 7);
  std::vector<runtime::Tensor> inputs;
  for (const graph::Node& n : g.nodes()) {
    if (n.kind == graph::OpKind::kInput) {
      inputs.push_back(runtime::Tensor::Random(n.shape, rng));
    }
  }
  runtime::ReferenceExecutor original(g);
  original.Run(inputs);
  runtime::ReferenceExecutor inplace(ip.graph);
  inplace.Run(inputs);
  const auto a = original.SinkValues();
  const auto b = inplace.SinkValues();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(a[i].MaxAbsDiff(b[i]), 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkProperties,
                         ::testing::Range(0, 18));

TEST(RandomCellGenerator, DeterministicAndScalable) {
  models::RandomCellParams p;
  p.seed = 5;
  p.num_cells = 4;
  const graph::Graph a = models::MakeRandomCellNetwork(p);
  const graph::Graph b = models::MakeRandomCellNetwork(p);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_GT(a.num_nodes(), 40);
  EXPECT_EQ(a.Sinks().size(), 1u);
}

}  // namespace
}  // namespace serenity
