#include "models/zoo.h"

#include "models/darts.h"
#include "models/randwire.h"
#include "models/swiftnet.h"
#include "util/logging.h"

namespace serenity::models {

const std::vector<BenchmarkCell>& AllBenchmarkCells() {
  static const auto* kCells = new std::vector<BenchmarkCell>{
      {"DARTS ImageNet", "Normal Cell", &MakeDartsNormalCell,
       1656, 903, 753, 3.2, 3.2},
      {"SwiftNet HPD", "Cell A", &MakeSwiftNetCellA,
       552, 251, 226, 5.7, 42.1},
      {"SwiftNet HPD", "Cell B", &MakeSwiftNetCellB,
       194, 82, 72, 4.5, 30.5},
      {"SwiftNet HPD", "Cell C", &MakeSwiftNetCellC,
       70, 33, 20, 27.8, 39.3},
      {"RandWire CIFAR10", "Cell A", &MakeRandWireCifar10CellA,
       645, 459, 459, 118.1, 118.1},
      {"RandWire CIFAR10", "Cell B", &MakeRandWireCifar10CellB,
       330, 260, 260, 15.1, 15.1},
      {"RandWire CIFAR100", "Cell A", &MakeRandWireCifar100CellA,
       605, 359, 359, 28.5, 28.5},
      {"RandWire CIFAR100", "Cell B", &MakeRandWireCifar100CellB,
       350, 280, 280, 74.4, 74.4},
      {"RandWire CIFAR100", "Cell C", &MakeRandWireCifar100CellC,
       160, 115, 115, 87.9, 87.9},
  };
  return *kCells;
}

const BenchmarkCell& FindBenchmarkCell(const std::string& group,
                                       const std::string& name) {
  for (const BenchmarkCell& cell : AllBenchmarkCells()) {
    if (cell.group == group && cell.name == name) return cell;
  }
  SERENITY_CHECK(false) << "unknown benchmark cell " << group << "/" << name;
  // Unreachable; silences the compiler.
  return AllBenchmarkCells().front();
}

}  // namespace serenity::models
