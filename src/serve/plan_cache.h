// PlanCache: the amortization layer of the serve path.
//
// SERENITY's expensive memory-aware search runs once per *structural* graph;
// the resulting schedule + arena plan is then reused across millions of
// inferences. The cache maps CanonicalGraphHash (graph/canonical_hash.h) to
// an immutable CachedPlan holding the full PipelineResult plus its
// serialized execution plan (serialize/plan.h), so a hit serves in O(hash +
// lookup) and hands the caller the exact artifact an edge runtime consumes.
//
// Eviction is LRU bounded by a byte budget: every entry is charged its
// retained footprint (graph nodes, schedule, placements, serialized texts)
// and least-recently-served entries are dropped until the budget holds.
// Lookups and inserts are thread-safe; returned plans are shared_ptr<const>
// snapshots, so an entry evicted mid-use stays alive for its holders.
//
// Persistence ("warm restart"): SaveToFile writes every entry as
//   entry <hash_hex> <graph_bytes> <plan_bytes> <peak> <states> ...
// followed by the length-prefixed serialized scheduled graph and plan
// texts. LoadFromFile parses the graphs back (serialize::FromText), re-reads
// each plan against its graph (full validation) and re-inserts, so a
// restarted service answers its first request for a known graph from cache
// instead of re-planning. Search timings are not persisted — they describe
// the planning run, not the plan — and load as zero.
#ifndef SERENITY_SERVE_PLAN_CACHE_H_
#define SERENITY_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/pipeline.h"
#include "graph/canonical_hash.h"
#include "serialize/plan.h"

namespace serenity::serve {

struct CachedPlan {
  graph::GraphHash hash;
  core::PipelineResult result;  // success is always true for cached entries
  std::string plan_text;        // serialize::PlanToText of `plan`
  serialize::ExecutionPlan plan;  // arena plan over result.scheduled_graph
  std::int64_t bytes = 0;       // retained-footprint charge for eviction
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::int64_t bytes_in_use = 0;
  std::int64_t capacity_bytes = 0;
  std::uint64_t entries = 0;
};

class PlanCache {
 public:
  explicit PlanCache(std::int64_t capacity_bytes = 256ll << 20)
      : capacity_bytes_(capacity_bytes) {}

  // Returns the cached plan and bumps it most-recently-used, or nullptr.
  std::shared_ptr<const CachedPlan> Lookup(const graph::GraphHash& hash);

  // Builds a CachedPlan from a successful pipeline run (serializes the
  // execution plan internally), inserts it and returns it. Replaces any
  // existing entry for `hash`; evicts LRU entries beyond the byte budget.
  // Dies if `result.success` is false — failures are not cacheable.
  std::shared_ptr<const CachedPlan> Insert(const graph::GraphHash& hash,
                                           core::PipelineResult result);

  PlanCacheStats stats() const;
  void ResetStats();

  // Persists all entries, most-recently-used first (so a truncated LoadFrom
  // of a smaller cache keeps the hottest plans). Dies on I/O failure.
  void SaveToFile(const std::string& path) const;

  // Loads entries from `path` into this cache (on top of whatever it
  // holds); counts as insertions, not hits. Returns entries loaded. Dies on
  // malformed input.
  int LoadFromFile(const std::string& path);

 private:
  struct Entry {
    std::shared_ptr<const CachedPlan> plan;
    std::list<graph::GraphHash>::iterator lru_pos;
  };

  // All private helpers assume mu_ is held.
  void InsertLocked(std::shared_ptr<const CachedPlan> plan);
  void EvictToCapacityLocked();

  mutable std::mutex mu_;
  std::int64_t capacity_bytes_;
  std::int64_t bytes_in_use_ = 0;
  std::list<graph::GraphHash> lru_;  // front = most recently used
  std::unordered_map<graph::GraphHash, Entry, graph::GraphHashHasher>
      entries_;
  PlanCacheStats counters_;  // hits/misses/insertions/evictions only
};

// The retained-footprint charge of one entry (exposed for tests).
std::int64_t CachedPlanBytes(const CachedPlan& plan);

}  // namespace serenity::serve

#endif  // SERENITY_SERVE_PLAN_CACHE_H_
