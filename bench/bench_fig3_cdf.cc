// Figure 3(b) — CDF of peak memory footprint over the schedule space of
// SwiftNet Cell A.
//
// Samples uniform random topological orders, reports the empirical CDF of
// their peak footprints, the fraction satisfying a hard edge-device
// constraint (the paper uses the SparkFun Edge's 250KB), and the fraction
// achieving the DP optimum (paper: 4.1% and 0.04% respectively).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/dp_scheduler.h"
#include "models/swiftnet.h"
#include "rewrite/rewriter.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace serenity;

constexpr int kSamples = 100000;
constexpr std::int64_t kConstraintBytes = 250 * 1024;  // SparkFun Edge

void RunCdf(const graph::Graph& g, const char* label) {
  const graph::BufferUseTable table = graph::BufferUseTable::Build(g);
  util::Rng rng(2020);
  std::vector<double> peaks;
  peaks.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    const sched::Schedule s = sched::RandomTopologicalSchedule(g, rng);
    peaks.push_back(static_cast<double>(
        sched::EvaluateFootprint(g, table, s).peak_bytes));
  }
  const core::DpResult dp = core::ScheduleDp(g);
  const double optimal = static_cast<double>(dp.peak_bytes);

  std::printf("\n%s (%d nodes, %d random schedules)\n", label, g.num_nodes(),
              kSamples);
  std::printf("  optimal peak (DP)        : %8.1f KB\n", bench::Kb(dp.peak_bytes));
  std::printf("  schedule-space min / max : %8.1f / %.1f KB\n",
              bench::Kb(static_cast<std::int64_t>(
                  *std::min_element(peaks.begin(), peaks.end()))),
              bench::Kb(static_cast<std::int64_t>(
                  *std::max_element(peaks.begin(), peaks.end()))));
  std::printf("  within %ldKB constraint  : %7.3f%%   (paper: 4.1%%)\n",
              static_cast<long>(kConstraintBytes / 1024),
              100.0 * util::FractionAtOrBelow(
                          peaks, static_cast<double>(kConstraintBytes)));
  std::printf("  achieving the optimum    : %7.3f%%   (paper: 0.04%%)\n",
              100.0 * util::FractionAtOrBelow(peaks, optimal));
  std::printf("\n  cumulative distribution (peak KB -> %% of schedules):\n");
  for (const util::CdfPoint& point : util::EmpiricalCdf(peaks, 16)) {
    std::printf("    %8.1f KB  %6.2f%%  |%s\n",
                point.value / 1024.0, 100.0 * point.fraction,
                std::string(static_cast<std::size_t>(point.fraction * 50),
                            '#')
                    .c_str());
  }
}

void PrintFigure() {
  std::printf("Figure 3(b): CDF of peak memory footprint across the "
              "schedule space\n");
  // The paper plots the original graph; the rewritten graph (the space the
  // full SERENITY pipeline searches) is included to show how rewriting
  // shifts the whole distribution down.
  RunCdf(models::MakeSwiftNetCellA(), "SwiftNet Cell A");
  RunCdf(rewrite::RewriteGraph(models::MakeSwiftNetCellA()).graph,
         "SwiftNet Cell A after identity graph rewriting");
  std::printf("\n");
}

void BM_SampleAndEvaluateSchedule(benchmark::State& state) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  const graph::BufferUseTable table = graph::BufferUseTable::Build(g);
  util::Rng rng(7);
  for (auto _ : state) {
    const sched::Schedule s = sched::RandomTopologicalSchedule(g, rng);
    benchmark::DoNotOptimize(
        sched::EvaluateFootprint(g, table, s).peak_bytes);
  }
}
BENCHMARK(BM_SampleAndEvaluateSchedule);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
