#include "rewrite/inplace.h"

#include <vector>

#include "util/logging.h"

namespace serenity::rewrite {

namespace {

bool IsUnaryElementwise(graph::OpKind kind) {
  switch (kind) {
    case graph::OpKind::kRelu:
    case graph::OpKind::kBatchNorm:
    case graph::OpKind::kIdentity:
      return true;
    default:
      return false;
  }
}

}  // namespace

InPlaceResult ApplyInPlaceElementwise(const graph::Graph& source) {
  InPlaceResult result;
  result.graph.set_name(source.name());
  std::vector<graph::NodeId> remap(
      static_cast<std::size_t>(source.num_nodes()), graph::kInvalidNode);
  std::vector<graph::BufferId> buffer_remap(
      static_cast<std::size_t>(source.num_buffers()), graph::kInvalidBuffer);
  const auto map_buffer = [&](graph::BufferId b) {
    auto& mapped = buffer_remap[static_cast<std::size_t>(b)];
    if (mapped == graph::kInvalidBuffer) {
      mapped = result.graph.AddBuffer(source.buffer(b).size_bytes);
    }
    return mapped;
  };

  for (const graph::Node& node : source.nodes()) {
    graph::Node copy = node;
    copy.id = graph::kInvalidNode;
    copy.inputs.clear();
    for (const graph::NodeId input : node.inputs) {
      copy.inputs.push_back(remap[static_cast<std::size_t>(input)]);
    }
    bool in_place = false;
    if (IsUnaryElementwise(node.kind) && node.inputs.size() == 1) {
      const graph::Node& producer = source.node(node.inputs[0]);
      const bool sole_consumer =
          source.consumers(producer.id).size() == 1;
      const bool spans_buffer =
          producer.OutputBytes() ==
              source.buffer(producer.buffer).size_bytes &&
          producer.buffer_channel_offset == 0;
      if (sole_consumer && spans_buffer) {
        // Share the producer's buffer *as materialized in the new graph*,
        // so chains of elementwise ops collapse onto one buffer.
        copy.buffer = result.graph.node(copy.inputs[0]).buffer;
        copy.buffer_channel_offset = 0;
        in_place = true;
        ++result.ops_made_in_place;
      }
    }
    if (!in_place) {
      copy.buffer = map_buffer(node.buffer);
    }
    remap[static_cast<std::size_t>(node.id)] =
        result.graph.AddNode(std::move(copy));
  }
  result.graph.ValidateOrDie();
  return result;
}

}  // namespace serenity::rewrite
