// Exhaustive minimum-peak-footprint scheduler.
//
// Enumerates every topological order (the paper's S_T space, §2.3) and keeps
// the one with the smallest peak footprint. Complexity O(|V|!): usable only
// as a test oracle for the dynamic-programming scheduler's optimality proof
// obligations (paper Appendix C) on graphs of ~10 nodes and below.
#ifndef SERENITY_SCHED_BRUTE_FORCE_H_
#define SERENITY_SCHED_BRUTE_FORCE_H_

#include <cstdint>

#include "graph/graph.h"
#include "sched/schedule.h"

namespace serenity::sched {

struct BruteForceResult {
  Schedule schedule;
  std::int64_t peak_bytes = 0;
  std::uint64_t orders_enumerated = 0;
};

// `max_orders` aborts the run (via SERENITY_CHECK) if the space is larger
// than expected — a guard against accidentally calling the oracle on a big
// graph rather than a soft limit.
BruteForceResult BruteForceOptimalSchedule(const graph::Graph& graph,
                                           std::uint64_t max_orders =
                                               50'000'000);

}  // namespace serenity::sched

#endif  // SERENITY_SCHED_BRUTE_FORCE_H_
