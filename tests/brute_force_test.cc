#include "sched/brute_force.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "sched/baselines.h"
#include "sched/schedule.h"
#include "util/rng.h"

namespace serenity::sched {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TensorShape;

TensorShape Units(int c) { return TensorShape{1, 16, 16, c}; }

TEST(BruteForce, CountsOrdersOfParallelChains) {
  // in -> (a, b) -> out: orders of {a, b} are free: 2 orders.
  GraphBuilder b("two");
  const NodeId in = b.Input(Units(1), "in");
  const NodeId a = b.Conv1x1(in, 1, "a");
  const NodeId bb = b.Conv1x1(in, 1, "b");
  (void)b.Concat({a, bb}, "out");
  const graph::Graph g = std::move(b).Build();
  EXPECT_EQ(BruteForceOptimalSchedule(g).orders_enumerated, 2u);
}

TEST(BruteForce, CountsOrdersOfIndependentNodes) {
  // Three independent sources feeding one sink: 3! = 6 prefixes.
  GraphBuilder b("three");
  const NodeId a = b.Input(Units(1), "a");
  const NodeId c = b.Input(Units(1), "b");
  const NodeId d = b.Input(Units(1), "c");
  (void)b.Concat({a, c, d}, "out");
  const graph::Graph g = std::move(b).Build();
  EXPECT_EQ(BruteForceOptimalSchedule(g).orders_enumerated, 6u);
}

TEST(BruteForce, FindsTheObviousBetterOrder) {
  // in(1KB) fans out to heavy(8) and light(1); both feed dedicated sinks...
  // heavy's consumer frees it. Scheduling heavy's subtree first then
  // light's gives peak in+heavy+s1 = 1+8+1; interleaving badly gives
  // 1+8+1+1. The oracle must find the minimum.
  GraphBuilder b("choice");
  const NodeId in = b.Input(Units(1), "in");
  const NodeId heavy = b.Conv1x1(in, 8, "heavy");
  const NodeId s1 = b.Conv1x1(heavy, 1, "s1");
  const NodeId light = b.Conv1x1(in, 1, "light");
  const NodeId s2 = b.Conv1x1(light, 1, "s2");
  (void)b.Concat({s1, s2}, "out");
  const graph::Graph g = std::move(b).Build();
  const BruteForceResult r = BruteForceOptimalSchedule(g);
  EXPECT_TRUE(IsTopologicalOrder(g, r.schedule));
  EXPECT_EQ(r.peak_bytes, PeakFootprint(g, r.schedule));
  // Optimum: in, heavy, s1 (heavy dies), light, s2 (in dies), out.
  // peak = max(1+8, 1+8+1, ...) at s1: in+heavy+s1 = 10KB... concat adds
  // s1(1)+s2(1)+out(2) on top of nothing else: 4. So 10KB.
  EXPECT_EQ(r.peak_bytes, 10 * 1024);
}

TEST(BruteForce, NeverWorseThanAnyBaseline) {
  util::Rng seed_rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    GraphBuilder b("rand" + std::to_string(trial));
    util::Rng rng(seed_rng.NextU64());
    std::vector<NodeId> pool;
    pool.push_back(b.Input(Units(rng.NextInt(1, 3)), "in"));
    for (int i = 0; i < 7; ++i) {
      const NodeId src = pool[static_cast<std::size_t>(
          rng.NextInt(0, static_cast<int>(pool.size()) - 1))];
      pool.push_back(b.Conv1x1(src, rng.NextInt(1, 4),
                               "n" + std::to_string(i)));
    }
    // Join all frontier nodes so there is a single sink.
    std::vector<NodeId> frontier;
    const graph::Graph& gb = b.graph();
    for (const NodeId id : pool) {
      if (gb.consumers(id).empty()) frontier.push_back(id);
    }
    if (frontier.size() >= 2) (void)b.Concat(frontier, "out");
    const graph::Graph g = std::move(b).Build();

    const BruteForceResult r = BruteForceOptimalSchedule(g);
    EXPECT_LE(r.peak_bytes, PeakFootprint(g, TfLiteOrderSchedule(g)));
    EXPECT_LE(r.peak_bytes, PeakFootprint(g, KahnFifoSchedule(g)));
    EXPECT_LE(r.peak_bytes, PeakFootprint(g, DfsPostorderSchedule(g)));
    EXPECT_LE(r.peak_bytes, PeakFootprint(g, GreedyMemorySchedule(g)));
  }
}

TEST(BruteForceDeath, RefusesOversizedSearch) {
  GraphBuilder b("wide");
  std::vector<NodeId> inputs;
  for (int i = 0; i < 12; ++i) {
    inputs.push_back(b.Input(Units(1), "i" + std::to_string(i)));
  }
  (void)b.Concat(inputs, "out");
  const graph::Graph g = std::move(b).Build();
  // 12! = 479M orders > the 1M cap we pass.
  EXPECT_DEATH(BruteForceOptimalSchedule(g, /*max_orders=*/1'000'000),
               "too many orders");
}

}  // namespace
}  // namespace serenity::sched
