// Unified kernel-dispatch API: one Backend enum, one per-op dispatch table
// resolved once at executor construction.
//
// The triplicated `Tensor Foo(...)` / `FooInto(...)` / `FooPartial(...)`
// surface collapsed into this: every operator has exactly one public entry
// point — the `...Into` form on a resolved KernelBackend — and the backend
// decides how the arithmetic is carried out:
//
//   * kReference — the naive bounds-checked loops of runtime/kernels.h.
//     Trivially auditable against the paper's equations; the oracle the
//     parity suite pins every other backend against.
//   * kBlocked   — portable blocked/tiled C++ (runtime/kernels_blocked.cc):
//     raw pixel-run pointers, clamped tap ranges instead of per-tap bounds
//     checks, output-channel tiles the compiler can auto-vectorize. Always
//     built; the fallback for every unavailable ISA backend.
//   * kAvx2      — AVX2 intrinsics (runtime/kernels_avx2.cc, compiled with
//     -mavx2), 8-lane vectors across output channels. Compiled in only on
//     x86-64 builds and entered only when cpuid reports AVX2 at runtime.
//   * kAuto      — resolves to the fastest available backend at dispatch
//     resolution. What production callers should ask for; a NEON backend
//     slots into the same resolution point when an AArch64 leg lands.
//
// Bit-identity contract: every backend blocks/vectorizes across
// *independent* outputs only, preserves each output's summation order, and
// uses no FMA — so all backends produce bit-identical results and the
// executors' sink-vs-reference gates hold unchanged under any backend
// (DESIGN.md "Kernel backends & dispatch" documents the ULP policy a
// future order-relaxing backend would fall under).
//
// Resolution is pure and total: GetKernelBackend(b) never fails — an
// unavailable backend resolves to kBlocked (the cpuid guard), so a binary
// built with AVX2 runs correctly on a machine without it. The env var
// SERENITY_DISABLE_AVX2=1 forces that fallback path for testing.
#ifndef SERENITY_RUNTIME_KERNEL_BACKEND_H_
#define SERENITY_RUNTIME_KERNEL_BACKEND_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "graph/types.h"
#include "runtime/tensor.h"
#include "runtime/weights.h"
#include "util/logging.h"

namespace serenity::runtime {

enum class Backend : std::uint8_t {
  kReference,  // naive loops, the bit-exact oracle
  kBlocked,    // portable blocked/tiled C++, always built
  kAvx2,       // AVX2 intrinsics behind a runtime cpuid guard
  kAuto,       // fastest available, resolved at dispatch resolution
};

const char* ToString(Backend backend);

// Parses "reference" / "blocked" / "avx2" / "auto" (the --backend= values).
std::optional<Backend> ParseBackend(std::string_view name);

// True when `backend`'s code is compiled into this binary.
bool BackendCompiled(Backend backend);

// True when `backend` can actually execute here: compiled in, the runtime
// ISA guard (cpuid for kAvx2) passes, and it is not disabled by env
// (SERENITY_DISABLE_AVX2). kReference/kBlocked/kAuto are always available.
bool BackendAvailable(Backend backend);

// The backend `requested` resolves to: kAuto picks the fastest available;
// an unavailable ISA backend falls back to kBlocked. Never kAuto itself.
Backend ResolveBackend(Backend requested);

// Backends available on this machine, in resolution preference order —
// what `bench_infer_latency` iterates for its per-backend rows.
std::vector<Backend> AvailableBackends();

// Arena placement alignment `backend` wants for vector loads: sizeof(float)
// for kReference, 32 bytes for the blocked/SIMD backends (the planner's
// 64-byte default satisfies both; ValidatePlanForGraph enforces it).
std::int64_t PlacementAlignment(Backend backend);

// The per-op dispatch table. Resolved once (GetKernelBackend) and then
// called through for every node execution — no per-call branching on the
// backend, no allocation. The raw pointers are the backend's op entry
// points; the inline methods are the public shape-checked surface.
struct KernelBackend {
  Backend id = Backend::kReference;

  void (*conv2d_partial)(const Tensor&, const ConvWeights&,
                         const graph::ConvAttrs&, int, bool, bool,
                         Tensor&) = nullptr;
  void (*depthwise_partial)(const Tensor&, const DepthwiseWeights&,
                            const graph::ConvAttrs&, int, Tensor&,
                            int) = nullptr;
  void (*dense)(const Tensor&, const DenseWeights&, Tensor&) = nullptr;
  void (*concat)(const std::vector<const Tensor*>&, Tensor&) = nullptr;
  void (*add)(const std::vector<const Tensor*>&, Tensor&) = nullptr;
  void (*mul)(const std::vector<const Tensor*>&, Tensor&) = nullptr;
  void (*relu)(const Tensor&, Tensor&) = nullptr;
  void (*batch_norm)(const Tensor&, const BatchNormWeights&,
                     Tensor&) = nullptr;
  void (*max_pool)(const Tensor&, const graph::ConvAttrs&,
                   Tensor&) = nullptr;
  void (*avg_pool)(const Tensor&, const graph::ConvAttrs&,
                   Tensor&) = nullptr;
  void (*global_avg_pool)(const Tensor&, Tensor&) = nullptr;

  // ---- the public `...Into` surface (shape checks live here, once) ----

  void Conv2dInto(const Tensor& input, const ConvWeights& weights,
                  const graph::ConvAttrs& attrs, Tensor& out) const {
    SERENITY_CHECK_EQ(input.shape().c, weights.in_c);
    SERENITY_CHECK(out.shape() == graph::InferConv2dShape(input.shape(),
                                                          attrs,
                                                          weights.out_c))
        << "Conv2d output shape mismatch";
    conv2d_partial(input, weights, attrs, /*ic_offset=*/0,
                   /*overwrite=*/true, /*add_bias=*/true, out);
  }

  void Conv2dPartial(const Tensor& input, const ConvWeights& weights,
                     const graph::ConvAttrs& attrs, int ic_offset,
                     bool overwrite, bool add_bias, Tensor& acc) const {
    conv2d_partial(input, weights, attrs, ic_offset, overwrite, add_bias,
                   acc);
  }

  void DepthwiseConv2dInto(const Tensor& input,
                           const DepthwiseWeights& weights,
                           const graph::ConvAttrs& attrs, Tensor& out) const {
    SERENITY_CHECK_EQ(input.shape().c, weights.c);
    SERENITY_CHECK(out.shape() ==
                   graph::InferDepthwiseShape(input.shape(), attrs))
        << "DepthwiseConv2d output shape mismatch";
    depthwise_partial(input, weights, attrs, /*weight_c_offset=*/0, out,
                      /*out_c_offset=*/0);
  }

  void DepthwiseConv2dPartial(const Tensor& input,
                              const DepthwiseWeights& weights,
                              const graph::ConvAttrs& attrs,
                              int weight_c_offset, Tensor& out,
                              int out_c_offset) const {
    depthwise_partial(input, weights, attrs, weight_c_offset, out,
                      out_c_offset);
  }

  void DenseInto(const Tensor& input, const DenseWeights& weights,
                 Tensor& out) const {
    dense(input, weights, out);
  }
  void ConcatInto(const std::vector<const Tensor*>& inputs,
                  Tensor& out) const {
    concat(inputs, out);
  }
  void AddInto(const std::vector<const Tensor*>& inputs, Tensor& out) const {
    add(inputs, out);
  }
  void MulInto(const std::vector<const Tensor*>& inputs, Tensor& out) const {
    mul(inputs, out);
  }
  void ReluInto(const Tensor& input, Tensor& out) const { relu(input, out); }
  void BatchNormInto(const Tensor& input, const BatchNormWeights& weights,
                     Tensor& out) const {
    batch_norm(input, weights, out);
  }
  void MaxPool2dInto(const Tensor& input, const graph::ConvAttrs& attrs,
                     Tensor& out) const {
    max_pool(input, attrs, out);
  }
  void AvgPool2dInto(const Tensor& input, const graph::ConvAttrs& attrs,
                     Tensor& out) const {
    avg_pool(input, attrs, out);
  }
  void GlobalAvgPool2dInto(const Tensor& input, Tensor& out) const {
    global_avg_pool(input, out);
  }
};

// The dispatch table `backend` resolves to on this machine. The returned
// reference is to an immutable static table; resolving is cheap but
// executors still do it exactly once, at construction.
const KernelBackend& GetKernelBackend(Backend backend);

}  // namespace serenity::runtime

#endif  // SERENITY_RUNTIME_KERNEL_BACKEND_H_
