#include "memsim/hierarchy_sim.h"

#include <gtest/gtest.h>

#include "core/dp_scheduler.h"
#include "graph/builder.h"
#include "models/swiftnet.h"
#include "sched/baselines.h"
#include "sched/schedule.h"
#include "util/rng.h"

namespace serenity::memsim {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TensorShape;

TensorShape Units(int c) { return TensorShape{1, 16, 16, c}; }

TEST(HierarchySim, ZeroTrafficWhenFootprintFits) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  const sched::Schedule s = sched::TfLiteOrderSchedule(g);
  SimOptions options;
  // Page rounding can push residency slightly past the liveness-sum peak.
  options.onchip_bytes =
      sched::PeakFootprint(g, s) +
      static_cast<std::int64_t>(g.num_buffers()) * options.page_bytes;
  const SimResult r = SimulateHierarchy(g, s, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.TotalTraffic(), 0);
  EXPECT_EQ(r.evictions, 0);
  EXPECT_LE(r.peak_resident_bytes, options.onchip_bytes);
}

TEST(HierarchySim, TrafficAppearsWellBelowThePeak) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  const sched::Schedule s = sched::TfLiteOrderSchedule(g);
  SimOptions options;
  options.onchip_bytes = sched::PeakFootprint(g, s) / 2;
  const SimResult r = SimulateHierarchy(g, s, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.TotalTraffic(), 0);
  EXPECT_GT(r.evictions, 0);
}

TEST(HierarchySim, HandExample) {
  // in(1K) is re-used late. While a2 is produced the 5K cache cannot hold
  // {in, a1, a2} = 6K, so `in` (farthest next use) is spilled (write 1K)
  // and refilled for the final add (read 1K).
  GraphBuilder b("spill");
  const NodeId in = b.Input(Units(1), "in");
  const NodeId a1 = b.Conv1x1(in, 4, "a1");
  const NodeId a2 = b.Conv1x1(a1, 1, "a2");
  (void)b.Add({a2, in}, "late_use");
  const graph::Graph g = std::move(b).Build();
  SimOptions options;
  options.onchip_bytes = 5 * 1024;
  options.page_bytes = 4 * 1024;
  const SimResult r = SimulateHierarchy(
      g, sched::TfLiteOrderSchedule(g), options);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.write_bytes, 1024);
  EXPECT_EQ(r.read_bytes, 1024);
  EXPECT_EQ(r.evictions, 1);
}

TEST(HierarchySim, PageGranularityStreamsOversizedTensors) {
  // A 64KB tensor streams through a 16KB cache page by page: feasible and,
  // when nothing is re-read, free of traffic.
  GraphBuilder b("stream");
  const NodeId in = b.Input(Units(16), "in");  // 16 KB
  (void)b.Conv1x1(in, 64, "big");              // 64 KB
  const graph::Graph g = std::move(b).Build();
  SimOptions options;
  options.onchip_bytes = 20 * 1024;
  const SimResult r = SimulateHierarchy(
      g, sched::TfLiteOrderSchedule(g), options);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.read_bytes, 0);  // inputs stay resident until consumed
}

TEST(HierarchySim, TrafficMonotoneInCapacity) {
  const graph::Graph g = models::MakeSwiftNetCellB();
  const sched::Schedule s = sched::KahnFifoSchedule(g);
  std::int64_t previous = -1;
  for (const std::int64_t kb : {48, 64, 96, 128, 192, 256}) {
    SimOptions options;
    options.onchip_bytes = kb * 1024;
    const SimResult r = SimulateHierarchy(g, s, options);
    if (!r.feasible) continue;
    if (previous >= 0) {
      EXPECT_LE(r.TotalTraffic(), previous) << kb;
    }
    previous = r.TotalTraffic();
  }
}

TEST(HierarchySim, BeladyNeverWorseThanLru) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  util::Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    const sched::Schedule s = sched::RandomTopologicalSchedule(g, rng);
    for (const std::int64_t kb : {64, 128, 200}) {
      SimOptions belady;
      belady.onchip_bytes = kb * 1024;
      belady.policy = ReplacementPolicy::kBelady;
      SimOptions lru = belady;
      lru.policy = ReplacementPolicy::kLru;
      const SimResult rb = SimulateHierarchy(g, s, belady);
      const SimResult rl = SimulateHierarchy(g, s, lru);
      ASSERT_EQ(rb.feasible, rl.feasible);
      if (rb.feasible) {
        EXPECT_LE(rb.TotalTraffic(), rl.TotalTraffic())
            << "capacity " << kb << "KB, trial " << trial;
      }
    }
  }
}

TEST(HierarchySim, BetterScheduleLowersTraffic) {
  // The Figure 11 effect: the memory-optimal schedule communicates less
  // under the same cache, and eliminates traffic once it fits on-chip.
  const graph::Graph g = models::MakeSwiftNetCellA();
  const core::DpResult dp = core::ScheduleDp(g);
  ASSERT_EQ(dp.status, core::DpStatus::kSolution);
  SimOptions options;
  options.onchip_bytes = (dp.peak_bytes + sched::PeakFootprint(
                              g, sched::TfLiteOrderSchedule(g))) / 2;
  const SimResult serenity = SimulateHierarchy(g, dp.schedule, options);
  const SimResult tflite =
      SimulateHierarchy(g, sched::TfLiteOrderSchedule(g), options);
  ASSERT_TRUE(serenity.feasible);
  ASSERT_TRUE(tflite.feasible);
  EXPECT_LT(serenity.TotalTraffic(), tflite.TotalTraffic());
  if (serenity.peak_resident_bytes <= options.onchip_bytes) {
    EXPECT_EQ(serenity.TotalTraffic(), 0);
  }
  EXPECT_GT(tflite.TotalTraffic(), 0);
}

TEST(HierarchySim, InfeasibleOnlyBelowPageSize) {
  GraphBuilder b("big");
  const NodeId in = b.Input(Units(64), "in");  // 64KB single tensor
  (void)b.Conv1x1(in, 64, "out");
  const graph::Graph g = std::move(b).Build();
  SimOptions options;
  options.onchip_bytes = 2 * 1024;  // below the 4KB page
  EXPECT_FALSE(SimulateHierarchy(g, sched::TfLiteOrderSchedule(g), options)
                   .feasible);
  options.onchip_bytes = 8 * 1024;  // two pages: streams fine
  EXPECT_TRUE(SimulateHierarchy(g, sched::TfLiteOrderSchedule(g), options)
                  .feasible);
}

TEST(HierarchySim, EvictionTiesBreakToLowestPageId) {
  // Two dirty sink pages tie at a Belady distance of infinity (neither is
  // ever used again). The eviction must deterministically pick the lowest
  // page id — NOT whichever page happened to be fetched first. Scheduling
  // `b` (the higher page id, 512B) before `a` (the lower, 1024B) makes the
  // two orders observable: insertion-order eviction would write back 512B,
  // lowest-page-id eviction writes back 1024B.
  GraphBuilder builder("tie");
  const NodeId in = builder.Input(TensorShape{1, 8, 8, 4}, "in");  // 1KB
  const NodeId a = builder.Relu(in, "a");           // 1KB sink, lower page
  const NodeId b = builder.Conv1x1(in, 2, "b");     // 512B sink, higher page
  const NodeId c = builder.Conv1x1(in, 4, "c");     // 1KB sink
  const graph::Graph g = std::move(builder).Build();
  const sched::Schedule s = {in, b, a, c};
  ASSERT_TRUE(sched::IsTopologicalOrder(g, s));
  SimOptions options;
  options.onchip_bytes = 3 * 1024;  // in + b + a fit; producing c evicts one
  options.page_bytes = 1024;
  const SimResult r = SimulateHierarchy(g, s, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.evictions, 1);
  EXPECT_EQ(r.write_bytes, 1024);  // page of `a`, the lowest tied page id
  EXPECT_EQ(r.read_bytes, 0);
}

TEST(HierarchySim, DirtyRewritesInvalidateOffchipCopy) {
  // An accumulator evicted between partial writes must be written back
  // again after the second write (its off-chip copy went stale).
  graph::Graph g("accum_evict");
  graph::Node input;
  input.kind = graph::OpKind::kInput;
  input.shape = Units(2);
  const NodeId x0 = g.AddNode(input);

  graph::Node p0;
  p0.kind = graph::OpKind::kPartialConv2d;
  p0.conv = graph::ConvAttrs{1, 1, 1, 1, graph::Padding::kSame};
  p0.shape = Units(2);
  p0.inputs = {x0};
  p0.weight_in_channels = 4;
  p0.buffer = g.AddBuffer(p0.OutputBytes());
  const NodeId p0_id = g.AddNode(p0);

  // A fat intermediate that forces the accumulator out of the cache.
  const NodeId x1 = g.AddNode(input);
  graph::Node fat;
  fat.kind = graph::OpKind::kConv2d;
  fat.conv = graph::ConvAttrs{1, 1, 1, 1, graph::Padding::kSame};
  fat.shape = Units(4);
  fat.inputs = {x1};
  fat.weight_in_channels = 2;
  const NodeId fat_id = g.AddNode(fat);

  graph::Node p1 = p0;
  p1.kind = graph::OpKind::kPartialConv2dAccum;
  p1.inputs = {p0_id, fat_id};
  p1.in_channel_offset = 2;
  const NodeId p1_id = g.AddNode(p1);

  graph::Node out;
  out.kind = graph::OpKind::kRelu;
  out.shape = Units(2);
  out.inputs = {p1_id};
  g.AddNode(out);
  g.ValidateOrDie();

  SimOptions options;
  options.onchip_bytes = 5 * 1024;  // x1(2) + fat(3) evicts acc(2)
  const SimResult r = SimulateHierarchy(
      g, sched::TfLiteOrderSchedule(g), options);
  ASSERT_TRUE(r.feasible);
  // acc written back once when evicted, read back for p1.
  EXPECT_GE(r.write_bytes, 2 * 1024);
  EXPECT_GE(r.read_bytes, 2 * 1024);
}

}  // namespace
}  // namespace serenity::memsim
