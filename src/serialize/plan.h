// Execution-plan persistence: the compilation artifact an edge runtime
// consumes — the node execution order plus the arena offset of every
// activation buffer. This is the single artifact that flows scheduler ->
// arena planner -> plan cache -> ArenaExecutor (runtime/arena_executor.h).
//
// Text format (versioned; see DESIGN.md "Plan text format"):
//
//   serenity-plan v3
//   plan <graph_name> <num_nodes> <arena_bytes>
//   order <id0> <id1> ...
//   place <buffer_id> <offset> <size> <first_step> <last_step>
//   crc <8 hex digits>
//
// The header line names the format version; PlanFromText rejects unknown
// versions outright, so a runtime never mis-parses a plan written by a
// different serializer generation. The mandatory trailing crc record is the
// CRC-32 of everything before it: any bit flip or truncation anywhere in
// the text fails integrity *before* parsing, so a mutated plan can never be
// silently accepted. Loading then re-validates everything an executor
// depends on — topological order, placement geometry
// (alloc::ValidatePlanForGraph), declared-vs-derived arena size.
//
// Failure contract (DESIGN.md "Failure taxonomy"): corrupt, truncated or
// mismatched plan text is *environment* damage, not a programming error —
// PlanFromText returns util::Status instead of aborting, so a serving
// process quarantines the artifact and re-plans rather than dying.
#ifndef SERENITY_SERIALIZE_PLAN_H_
#define SERENITY_SERIALIZE_PLAN_H_

#include <string>

#include "alloc/arena_planner.h"
#include "graph/graph.h"
#include "sched/schedule.h"
#include "util/status.h"

namespace serenity::serialize {

// Bump when the text format changes shape. v1 (pre-header) and v2
// (pre-checksum) files are no longer accepted; re-plan and re-persist.
inline constexpr int kPlanFormatVersion = 3;

struct ExecutionPlan {
  std::string graph_name;
  sched::Schedule schedule;
  alloc::ArenaPlan arena;
};

// Builds a plan for `schedule` on `graph` (plans the arena internally).
// CHECKs that `schedule` is a topological order — the caller computed it,
// so a bad one is a programming error.
ExecutionPlan MakePlan(const graph::Graph& graph,
                       const sched::Schedule& schedule);

// MakePlan with the arena-planning pass charged against `budget`
// (alloc::PlanArenaGoverned): a denied charge surfaces as a clean
// kResourceExhausted instead of an ungoverned allocation. Null budget ==
// MakePlan.
util::StatusOr<ExecutionPlan> MakePlanOr(const graph::Graph& graph,
                                         const sched::Schedule& schedule,
                                         util::MemoryBudget* budget);

std::string PlanToText(const ExecutionPlan& plan);

// Appends the trailing `crc` record to a plan body. Exposed for corruption
// test suites that edit the body and need the integrity layer re-stamped so
// structural validation (not the checksum) is what rejects the edit.
std::string AppendPlanChecksum(const std::string& body);

// Parses a plan. Returns a non-OK Status on malformed, truncated,
// unversioned, wrong-version or checksum-failing input — never aborts.
// `graph` is used to validate the schedule (must be a topological order of
// it) and the buffer references.
util::StatusOr<ExecutionPlan> PlanFromText(const std::string& text,
                                           const graph::Graph& graph);

// Atomic write-temp-then-rename: a crash mid-save leaves either the old
// file or the new one, never a torn mix.
util::Status SavePlanToFile(const ExecutionPlan& plan,
                            const std::string& path);
util::StatusOr<ExecutionPlan> LoadPlanFromFile(const std::string& path,
                                               const graph::Graph& graph);

// Shared by the persistence layers: writes `contents` to `path` via a
// temporary file in the same directory plus std::rename, fsyncing before
// the swap. On failure the temporary is removed and `path` is untouched.
util::Status AtomicWriteFile(const std::string& path,
                             const std::string& contents);

}  // namespace serenity::serialize

#endif  // SERENITY_SERIALIZE_PLAN_H_
