// MemoryBudget: a thread-safe hierarchical byte ledger for the scheduler's
// own search memory.
//
// The paper's premise is executing irregularly wired networks under a hard
// memory ceiling — but the *scheduler's* memory (signature arenas, SoA
// state levels, probe tables) was ungoverned: DpOptions::max_states is a
// count cap, and state bytes vary with signature width, so count != bytes.
// A MemoryBudget closes that gap: every layer that allocates proportionally
// to graph size charges the budget before growing and refunds what it
// releases, so exhaustion surfaces as a clean kResourceExhausted that the
// pipeline degrades on (exact -> beam -> greedy) instead of a bad_alloc or
// an OOM kill taking down every healthy session in the process.
//
// Budgets form a tree: a server-wide parent (--mem-budget) with child
// sub-budgets carved out per subsystem (concurrent plannings, session-pool
// arenas). A charge must fit every ancestor: TryCharge forwards to the
// parent and unwinds its own charge when the parent refuses, so the global
// cap holds across all children while each child still reports its own
// usage. Charges and refunds are atomic; the ledger is advisory (it bounds
// what cooperating code *requests*, it does not hook the allocator), which
// is why resource_chaos_test cross-checks it against operator-new
// accounting: peak live bytes <= budget + documented slack.
#ifndef SERENITY_UTIL_MEMORY_BUDGET_H_
#define SERENITY_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>

namespace serenity::util {

class MemoryBudget {
 public:
  // A budget enforcing `limit_bytes` for everything charged against it.
  // When `parent` is non-null every charge must also fit the parent (and
  // all of its ancestors); the parent must outlive this child.
  explicit MemoryBudget(std::int64_t limit_bytes,
                        MemoryBudget* parent = nullptr)
      : limit_bytes_(limit_bytes), parent_(parent) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  // Charges `bytes` against this budget and every ancestor. Returns false —
  // with all partial charges unwound — when any level would exceed its
  // limit. A testing hook (FaultPoint::kBudgetDenial) can force a denial.
  bool TryCharge(std::int64_t bytes);

  // Returns `bytes` previously charged; propagates to ancestors. Refunding
  // more than was charged is a programming error (the ledger would go
  // negative and the global cap would stop meaning anything).
  void Refund(std::int64_t bytes);

  std::int64_t limit_bytes() const { return limit_bytes_; }
  std::int64_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  std::int64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  // Lifetime counters for the governor's stats surface.
  std::uint64_t total_charges() const {
    return charges_.load(std::memory_order_relaxed);
  }
  std::uint64_t denials() const {
    return denials_.load(std::memory_order_relaxed);
  }

 private:
  bool ChargeLocal(std::int64_t bytes);
  void RefundLocal(std::int64_t bytes);

  const std::int64_t limit_bytes_;
  MemoryBudget* const parent_;
  std::atomic<std::int64_t> used_{0};
  std::atomic<std::int64_t> peak_{0};
  std::atomic<std::uint64_t> charges_{0};
  std::atomic<std::uint64_t> denials_{0};
};

// Monotone high-water reservation against a budget. Search loops don't
// track individual allocations; they periodically re-estimate their total
// resident bytes and call EnsureAtLeast — which charges only the delta
// above the current reservation. The destructor refunds everything, so a
// run that fails (or is cancelled) mid-level unwinds its whole footprint
// in one place.
class BudgetReservation {
 public:
  // A null budget means "ungoverned": every Ensure succeeds, nothing is
  // tracked. This keeps call sites branch-free.
  explicit BudgetReservation(MemoryBudget* budget) : budget_(budget) {}
  ~BudgetReservation() { ReleaseAll(); }

  BudgetReservation(const BudgetReservation&) = delete;
  BudgetReservation& operator=(const BudgetReservation&) = delete;

  // Grows the reservation to at least `target_bytes` (no-op when already
  // covered). Returns false when the budget denies the delta; the existing
  // reservation stays intact so the caller can unwind cleanly.
  bool EnsureAtLeast(std::int64_t target_bytes);

  // Refunds the entire reservation now (idempotent).
  void ReleaseAll();

  std::int64_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }

 private:
  MemoryBudget* const budget_;
  std::atomic<std::int64_t> reserved_{0};
};

}  // namespace serenity::util

#endif  // SERENITY_UTIL_MEMORY_BUDGET_H_
