#include "sched/brute_force.h"

#include <algorithm>

#include "graph/analysis.h"
#include "util/logging.h"

namespace serenity::sched {

namespace {

// Depth-first enumeration carrying the incremental footprint state, so each
// complete order costs O(|V|) rather than a fresh O(|V|+|E|) evaluation.
class Enumerator {
 public:
  Enumerator(const graph::Graph& graph, std::uint64_t max_orders)
      : graph_(graph),
        table_(graph::BufferUseTable::Build(graph)),
        max_orders_(max_orders) {
    indegree_.resize(static_cast<std::size_t>(graph.num_nodes()));
    for (const graph::Node& node : graph.nodes()) {
      indegree_[static_cast<std::size_t>(node.id)] =
          static_cast<int>(node.inputs.size());
      if (node.inputs.empty()) ready_.push_back(node.id);
    }
    remaining_uses_.resize(table_.buffers.size());
    for (std::size_t b = 0; b < table_.buffers.size(); ++b) {
      remaining_uses_[b] = static_cast<int>(
          table_.buffers[b].writers.size() + table_.buffers[b].readers.size());
    }
    allocated_.assign(table_.buffers.size(), false);
  }

  BruteForceResult Run() {
    Recurse(/*footprint=*/0, /*peak=*/0);
    SERENITY_CHECK_GT(result_.orders_enumerated, 0u)
        << "graph has no topological order (cycle?)";
    return result_;
  }

 private:
  // Uses this node spends on buffer b (1 as writer, +1 as reader).
  int UsesOf(graph::NodeId id, graph::BufferId b) const {
    int uses = (graph_.node(id).buffer == b) ? 1 : 0;
    const auto& reads = table_.read_buffers[static_cast<std::size_t>(id)];
    if (std::find(reads.begin(), reads.end(), b) != reads.end()) ++uses;
    return uses;
  }

  void Recurse(std::int64_t footprint, std::int64_t peak) {
    if (current_.size() == static_cast<std::size_t>(graph_.num_nodes())) {
      ++result_.orders_enumerated;
      SERENITY_CHECK_LE(result_.orders_enumerated, max_orders_)
          << "brute-force oracle called on a graph with too many orders";
      if (result_.schedule.empty() || peak < result_.peak_bytes) {
        result_.schedule = current_;
        result_.peak_bytes = peak;
      }
      return;
    }
    // Iterate over a snapshot: ready_ mutates during recursion.
    const std::vector<graph::NodeId> candidates = ready_;
    for (const graph::NodeId id : candidates) {
      const std::size_t uid = static_cast<std::size_t>(id);
      const graph::BufferId own = graph_.node(id).buffer;
      const std::size_t uown = static_cast<std::size_t>(own);

      // --- apply ---
      const bool alloc = !allocated_[uown];
      std::int64_t new_footprint =
          footprint + (alloc ? table_.buffers[uown].size_bytes : 0);
      const std::int64_t step_peak = new_footprint;
      if (alloc) allocated_[uown] = true;
      std::vector<graph::BufferId> freed;
      for (const graph::BufferId b : table_.touched_buffers[uid]) {
        const std::size_t ub = static_cast<std::size_t>(b);
        remaining_uses_[ub] -= UsesOf(id, b);
        if (remaining_uses_[ub] == 0 && !table_.buffers[ub].is_sink) {
          new_footprint -= table_.buffers[ub].size_bytes;
          freed.push_back(b);
        }
      }
      const std::size_t ready_pos = static_cast<std::size_t>(
          std::find(ready_.begin(), ready_.end(), id) - ready_.begin());
      ready_[ready_pos] = ready_.back();
      ready_.pop_back();
      std::vector<graph::NodeId> newly_ready;
      for (const graph::NodeId consumer : graph_.consumers(id)) {
        if (--indegree_[static_cast<std::size_t>(consumer)] == 0) {
          newly_ready.push_back(consumer);
          ready_.push_back(consumer);
        }
      }
      current_.push_back(id);

      Recurse(new_footprint, std::max(peak, step_peak));

      // --- undo ---
      current_.pop_back();
      for (const graph::NodeId consumer : graph_.consumers(id)) {
        ++indegree_[static_cast<std::size_t>(consumer)];
      }
      for (const graph::NodeId nr : newly_ready) {
        ready_.erase(std::find(ready_.begin(), ready_.end(), nr));
      }
      ready_.push_back(id);
      for (const graph::BufferId b : table_.touched_buffers[uid]) {
        remaining_uses_[static_cast<std::size_t>(b)] += UsesOf(id, b);
      }
      if (alloc) allocated_[uown] = false;
    }
  }

  const graph::Graph& graph_;
  const graph::BufferUseTable table_;
  const std::uint64_t max_orders_;
  std::vector<int> indegree_;
  std::vector<graph::NodeId> ready_;
  std::vector<int> remaining_uses_;
  std::vector<bool> allocated_;
  Schedule current_;
  BruteForceResult result_;
};

}  // namespace

BruteForceResult BruteForceOptimalSchedule(const graph::Graph& graph,
                                           std::uint64_t max_orders) {
  return Enumerator(graph, max_orders).Run();
}

}  // namespace serenity::sched
