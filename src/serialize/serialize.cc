#include "serialize/serialize.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "util/logging.h"

namespace serenity::serialize {

namespace {

const std::map<std::string, graph::OpKind>& KindByName() {
  static const auto* kMap = [] {
    auto* m = new std::map<std::string, graph::OpKind>();
    for (int k = 0; k <= static_cast<int>(graph::OpKind::kConcatView); ++k) {
      const auto kind = static_cast<graph::OpKind>(k);
      (*m)[graph::ToString(kind)] = kind;
    }
    return m;
  }();
  return *kMap;
}

const std::map<std::string, graph::DataType>& DtypeByName() {
  static const auto* kMap = [] {
    auto* m = new std::map<std::string, graph::DataType>();
    for (const auto dtype :
         {graph::DataType::kFloat32, graph::DataType::kFloat16,
          graph::DataType::kInt8, graph::DataType::kUInt8,
          graph::DataType::kInt32}) {
      (*m)[graph::ToString(dtype)] = dtype;
    }
    return m;
  }();
  return *kMap;
}

// Node names may contain spaces; escape them minimally.
std::string EscapeName(const std::string& name) {
  std::string out;
  for (const char c : name) {
    if (c == ' ') {
      out += "\\s";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out += c;
    }
  }
  return out.empty() ? std::string("_") : out;
}

std::string UnescapeName(const std::string& escaped) {
  if (escaped == "_") return "";
  std::string out;
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '\\' && i + 1 < escaped.size()) {
      out += (escaped[i + 1] == 's') ? ' ' : escaped[i + 1];
      ++i;
    } else {
      out += escaped[i];
    }
  }
  return out;
}

// Exception-free number parsing (untrusted input never reaches std::stoll,
// which throws). Requires the token to be fully numeric; rejects overflow.
bool ParseI64(const std::string& token, std::int64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size()) return false;
  *out = value;
  return true;
}

bool ParseU64(const std::string& token, std::uint64_t* out) {
  if (token.empty() || token[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size()) return false;
  *out = value;
  return true;
}

bool ParseIntListOr(const std::string& csv, std::vector<std::int64_t>* out) {
  out->clear();
  if (csv.empty()) return true;
  std::istringstream is(csv);
  std::string token;
  while (std::getline(is, token, ',')) {
    std::int64_t value = 0;
    if (!ParseI64(token, &value)) return false;
    out->push_back(value);
  }
  return true;
}


// key=value field extraction; returns empty string if absent.
std::string Field(const std::vector<std::string>& tokens,
                  const std::string& key) {
  const std::string prefix = key + "=";
  for (const std::string& t : tokens) {
    if (t.rfind(prefix, 0) == 0) return t.substr(prefix.size());
  }
  return "";
}

}  // namespace

void WriteText(const graph::Graph& graph, std::ostream& os) {
  os << "# serenity graph v1\n";
  os << "graph " << EscapeName(graph.name()) << "\n";
  for (graph::BufferId b = 0; b < graph.num_buffers(); ++b) {
    os << "buffer " << b << " " << graph.buffer(b).size_bytes << "\n";
  }
  for (const graph::Node& n : graph.nodes()) {
    os << "node " << n.id << " " << graph::ToString(n.kind) << " "
       << graph::ToString(n.dtype) << " " << EscapeName(n.name)
       << " shape=" << n.shape.n << "," << n.shape.h << "," << n.shape.w
       << "," << n.shape.c << " buffer=" << n.buffer << " inputs=";
    for (std::size_t i = 0; i < n.inputs.size(); ++i) {
      if (i > 0) os << ",";
      os << n.inputs[i];
    }
    os << " conv=" << n.conv.kernel_h << "," << n.conv.kernel_w << ","
       << n.conv.stride << "," << n.conv.dilation << ","
       << (n.conv.padding == graph::Padding::kSame ? "same" : "valid");
    os << " coff=" << n.buffer_channel_offset << " wseed=" << n.weight_seed
       << " wic=" << n.weight_in_channels << " woff=" << n.in_channel_offset
       << " wcount=" << n.weight_count << " axis=" << n.concat_axis << "\n";
  }
}

std::string ToText(const graph::Graph& graph) {
  std::ostringstream os;
  WriteText(graph, os);
  return os.str();
}

graph::Graph FromText(const std::string& text) {
  util::StatusOr<graph::Graph> graph = GraphFromTextOr(text);
  SERENITY_CHECK(graph.ok()) << "malformed graph text: "
                             << graph.status().ToString();
  return std::move(graph).value();
}

util::StatusOr<graph::Graph> GraphFromTextOr(const std::string& text) {
  // Every value is range-checked before it reaches Graph::AddNode /
  // AddBuffer, whose contracts are CHECKs — untrusted bytes must earn a
  // kInvalidArgument, not an abort. Dimension bounds keep element counts
  // (and therefore OutputBytes) far from int64 overflow.
  constexpr std::int64_t kMaxDim = 1 << 20;
  constexpr std::int64_t kMaxElements = 1ll << 31;
  const auto bad = [](const std::string& why) {
    return util::InvalidArgumentError("graph text: " + why);
  };

  std::istringstream is(text);
  std::string line;
  graph::Graph graph;
  int buffers_declared = 0;
  std::vector<std::int64_t> list;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string token;
    while (ls >> token) tokens.push_back(token);
    if (tokens.empty()) continue;
    if (tokens[0] == "graph") {
      if (tokens.size() < 2u) return bad("graph record missing name");
      graph.set_name(UnescapeName(tokens[1]));
    } else if (tokens[0] == "buffer") {
      if (tokens.size() != 3u) return bad("buffer record wants id + size");
      std::int64_t id = 0;
      std::int64_t size_bytes = 0;
      if (!ParseI64(tokens[1], &id) || !ParseI64(tokens[2], &size_bytes)) {
        return bad("unparsable buffer record '" + line + "'");
      }
      if (id != buffers_declared) return bad("buffers must be in order");
      if (size_bytes < 0 || size_bytes > kMaxElements * 4) {
        return bad("buffer size out of range");
      }
      graph.AddBuffer(size_bytes);
      ++buffers_declared;
    } else if (tokens[0] == "node") {
      if (tokens.size() < 7u) return bad("truncated node record");
      graph::Node node;
      std::int64_t id = 0;
      if (!ParseI64(tokens[1], &id)) return bad("unparsable node id");
      if (id != graph.num_nodes()) return bad("nodes must be in order");
      const auto kind_it = KindByName().find(tokens[2]);
      if (kind_it == KindByName().end()) {
        return bad("unknown op kind '" + tokens[2] + "'");
      }
      node.kind = kind_it->second;
      const auto dtype_it = DtypeByName().find(tokens[3]);
      if (dtype_it == DtypeByName().end()) {
        return bad("unknown dtype '" + tokens[3] + "'");
      }
      node.dtype = dtype_it->second;
      node.name = UnescapeName(tokens[4]);
      if (!ParseIntListOr(Field(tokens, "shape"), &list) ||
          list.size() != 4u) {
        return bad("node shape wants four integers");
      }
      std::int64_t elements = 1;
      for (const std::int64_t dim : list) {
        if (dim < 0 || dim > kMaxDim) return bad("shape dimension out of range");
        elements *= dim;  // bounded: 4 factors of <= 2^20 fit in int64
      }
      if (elements > kMaxElements) return bad("shape element count too large");
      node.shape = graph::TensorShape{
          static_cast<int>(list[0]), static_cast<int>(list[1]),
          static_cast<int>(list[2]), static_cast<int>(list[3])};
      std::int64_t buffer = 0;
      if (!ParseI64(Field(tokens, "buffer"), &buffer)) {
        return bad("unparsable node buffer id");
      }
      if (buffer == graph::kInvalidBuffer) {
        if (graph::MayAliasBuffer(node.kind)) {
          return bad("aliasing node without an explicit buffer");
        }
      } else if (buffer < 0 || buffer >= buffers_declared) {
        return bad("node buffer id out of range");
      }
      node.buffer = static_cast<graph::BufferId>(buffer);
      if (!ParseIntListOr(Field(tokens, "inputs"), &list)) {
        return bad("unparsable node inputs");
      }
      for (const std::int64_t input : list) {
        if (input < 0 || input >= graph.num_nodes()) {
          return bad("node input id out of range");
        }
        node.inputs.push_back(static_cast<graph::NodeId>(input));
      }
      const std::string conv = Field(tokens, "conv");
      if (!conv.empty()) {
        std::istringstream cs(conv);
        std::string part;
        std::vector<std::string> parts;
        while (std::getline(cs, part, ',')) parts.push_back(part);
        if (parts.size() != 5u) return bad("conv attrs want five fields");
        std::int64_t attrs[4] = {0, 0, 0, 0};
        for (int i = 0; i < 4; ++i) {
          if (!ParseI64(parts[static_cast<std::size_t>(i)], &attrs[i]) ||
              attrs[i] < 0 || attrs[i] > kMaxDim) {
            return bad("conv attr out of range");
          }
        }
        node.conv.kernel_h = static_cast<int>(attrs[0]);
        node.conv.kernel_w = static_cast<int>(attrs[1]);
        node.conv.stride = static_cast<int>(attrs[2]);
        node.conv.dilation = static_cast<int>(attrs[3]);
        if (parts[4] != "same" && parts[4] != "valid") {
          return bad("conv padding wants same|valid");
        }
        node.conv.padding = parts[4] == "same" ? graph::Padding::kSame
                                               : graph::Padding::kValid;
      }
      bool fields_ok = true;
      const auto int_field = [&](const char* key, std::int64_t lo,
                                 std::int64_t hi, auto setter) {
        const std::string value = Field(tokens, key);
        if (value.empty()) return;
        std::int64_t v = 0;
        if (!ParseI64(value, &v) || v < lo || v > hi) {
          fields_ok = false;
          return;
        }
        setter(v);
      };
      int_field("coff", 0, kMaxDim, [&](std::int64_t v) {
        node.buffer_channel_offset = static_cast<int>(v);
      });
      const std::string wseed = Field(tokens, "wseed");
      if (!wseed.empty() && !ParseU64(wseed, &node.weight_seed)) {
        return bad("unparsable weight seed");
      }
      int_field("wic", 0, kMaxDim, [&](std::int64_t v) {
        node.weight_in_channels = static_cast<int>(v);
      });
      int_field("woff", 0, kMaxDim, [&](std::int64_t v) {
        node.in_channel_offset = static_cast<int>(v);
      });
      int_field("wcount", 0, kMaxElements,
                [&](std::int64_t v) { node.weight_count = v; });
      int_field("axis", 0, 3, [&](std::int64_t v) {
        node.concat_axis = static_cast<int>(v);
      });
      if (!fields_ok) return bad("node attribute out of range");
      graph.AddNode(std::move(node));
    } else {
      return bad("unknown record '" + tokens[0] + "'");
    }
  }
  std::vector<std::string> problems = graph.Validate();
  if (!problems.empty()) {
    return bad("validation failed: " + problems.front());
  }
  return graph;
}

std::string ToDot(const graph::Graph& graph) {
  std::ostringstream os;
  os << "digraph \"" << graph.name() << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  for (const graph::Node& n : graph.nodes()) {
    os << "  n" << n.id << " [label=\"" << n.name << "\\n"
       << graph::ToString(n.kind) << " " << n.shape.ToString() << "\\n"
       << n.OutputBytes() / 1024.0 << " KB\"];\n";
  }
  for (const graph::Node& n : graph.nodes()) {
    for (const graph::NodeId input : n.inputs) {
      os << "  n" << input << " -> n" << n.id << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

void SaveToFile(const graph::Graph& graph, const std::string& path) {
  std::ofstream os(path);
  SERENITY_CHECK(os.good()) << "cannot open '" << path << "' for writing";
  WriteText(graph, os);
}

graph::Graph LoadFromFile(const std::string& path) {
  std::ifstream is(path);
  SERENITY_CHECK(is.good()) << "cannot open '" << path << "' for reading";
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return FromText(buffer.str());
}

}  // namespace serenity::serialize
