// AVX2 kernel backend (Backend::kAvx2). This TU is compiled with -mavx2
// (and ONLY -mavx2 — see the FMA note below); every entry point is reached
// exclusively through the dispatch table's runtime cpuid guard
// (runtime/kernel_backend.cc), so building it in never executes AVX2 on a
// machine without it.
//
// Vectorization runs 8-lane across *independent* outputs — output channels
// for conv/depthwise, units for dense, channels for the elementwise ops —
// the dimension that is contiguous in the weight layouts. Each output
// element's summation order is exactly the reference's (taps (ky, kx, ic)
// ascending, dense i ascending), just computed for 8 outputs at once.
//
// NO FMA, by construction twice over: the arithmetic is explicit
// _mm256_mul_ps followed by _mm256_add_ps, and the TU's ISA (-mavx2 without
// -mfma) has no FMA instructions for GCC's default fp-contract to fuse
// into. Mul-then-add with one rounding each is precisely the scalar float
// arithmetic of the reference kernels, which is what makes every lane
// bit-identical to Backend::kReference (pinned by
// tests/kernel_parity_property_test.cc).
#if defined(SERENITY_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <type_traits>

#include "runtime/kernels_backends.h"
#include "util/logging.h"

namespace serenity::runtime::avx2 {

namespace {

constexpr int kLanes = 8;       // floats per __m256
constexpr int kMaxInputs = 16;  // elementwise arity cap (stack row arrays)
constexpr int kMaxKernelH = 16; // per-pixel tap-row pointer cache bound

template <int N>
using VecCount = std::integral_constant<int, N>;

void CheckSameShape(const std::vector<const Tensor*>& inputs) {
  SERENITY_CHECK_GE(inputs.size(), 2u);
  SERENITY_CHECK_LE(inputs.size(), static_cast<std::size_t>(kMaxInputs));
  for (const Tensor* t : inputs) {
    SERENITY_CHECK(t->shape() == inputs[0]->shape());
  }
}

}  // namespace

void Conv2dPartial(const Tensor& input, const ConvWeights& weights,
                   const graph::ConvAttrs& attrs, int ic_offset,
                   bool overwrite, bool add_bias, Tensor& acc) {
  const graph::TensorShape in = input.shape();
  const graph::TensorShape out = acc.shape();
  SERENITY_CHECK_EQ(out.c, weights.out_c);
  SERENITY_CHECK_LE(ic_offset + in.c, weights.in_c);
  SERENITY_CHECK_LE(attrs.kernel_h, kMaxKernelH);
  const internal::Padding2d pad =
      internal::ComputePadding(in, attrs, out.h, out.w);
  const float* kern = weights.kernel.data();
  const float* bias = weights.bias.data();
  const std::size_t kern_in_c = static_cast<std::size_t>(weights.in_c);
  const std::size_t kern_out_c = static_cast<std::size_t>(weights.out_c);
  const int in_stride = input.pixel_stride();

  for (int n = 0; n < out.n; ++n) {
    for (int oh = 0; oh < out.h; ++oh) {
      const int ph = oh * attrs.stride - pad.top;
      const int ky_lo = internal::FirstValidTap(ph, attrs.dilation);
      const int ky_end =
          internal::EndValidTap(ph, attrs.dilation, attrs.kernel_h, in.h);
      for (int ow = 0; ow < out.w; ++ow) {
        const int pw = ow * attrs.stride - pad.left;
        const int kx_lo = internal::FirstValidTap(pw, attrs.dilation);
        const int kx_end =
            internal::EndValidTap(pw, attrs.dilation, attrs.kernel_w, in.w);
        const bool any_taps = ky_lo < ky_end && kx_lo < kx_end;
        // One bounds-checked PixelRun per valid tap row, cached for every
        // output-channel chunk of this pixel.
        const float* tap_rows[kMaxKernelH];
        if (any_taps) {
          const int iw0 = pw + kx_lo * attrs.dilation;
          const int iw_run = (kx_end - 1 - kx_lo) * attrs.dilation + 1;
          for (int ky = ky_lo; ky < ky_end; ++ky) {
            tap_rows[ky - ky_lo] =
                input.PixelRun(n, ph + ky * attrs.dilation, iw0, iw_run);
          }
        }
        float* acc_px = acc.PixelRun(n, oh, ow, 1);

        const auto chunk = [&](int oc, auto vecs) {
          constexpr int kVecs = decltype(vecs)::value;
          __m256 a[kVecs];
          if (overwrite) {
            for (int v = 0; v < kVecs; ++v) a[v] = _mm256_setzero_ps();
          } else {
            for (int v = 0; v < kVecs; ++v) {
              a[v] = _mm256_loadu_ps(acc_px + oc + v * kLanes);
            }
          }
          if (any_taps) {
            for (int ky = ky_lo; ky < ky_end; ++ky) {
              const float* row = tap_rows[ky - ky_lo];
              for (int kx = kx_lo; kx < kx_end; ++kx) {
                const float* in_px =
                    row + static_cast<std::ptrdiff_t>(kx - kx_lo) *
                              attrs.dilation * in_stride;
                const std::size_t tap_base =
                    (static_cast<std::size_t>(ky) * attrs.kernel_w + kx) *
                    kern_in_c;
                for (int ic = 0; ic < in.c; ++ic) {
                  const __m256 x = _mm256_set1_ps(in_px[ic]);
                  const float* w_row =
                      kern +
                      (tap_base + static_cast<std::size_t>(ic_offset + ic)) *
                          kern_out_c +
                      oc;
                  for (int v = 0; v < kVecs; ++v) {
                    a[v] = _mm256_add_ps(
                        a[v],
                        _mm256_mul_ps(x, _mm256_loadu_ps(w_row + v * kLanes)));
                  }
                }
              }
            }
          }
          if (add_bias) {
            for (int v = 0; v < kVecs; ++v) {
              a[v] = _mm256_add_ps(a[v],
                                   _mm256_loadu_ps(bias + oc + v * kLanes));
            }
          }
          for (int v = 0; v < kVecs; ++v) {
            _mm256_storeu_ps(acc_px + oc + v * kLanes, a[v]);
          }
        };

        int oc = 0;
        for (; oc + 4 * kLanes <= out.c; oc += 4 * kLanes) {
          chunk(oc, VecCount<4>{});
        }
        for (; oc + kLanes <= out.c; oc += kLanes) chunk(oc, VecCount<1>{});
        for (; oc < out.c; ++oc) {  // scalar tail, reference order
          float sum = overwrite ? 0.0f : acc_px[oc];
          if (any_taps) {
            for (int ky = ky_lo; ky < ky_end; ++ky) {
              const float* row = tap_rows[ky - ky_lo];
              for (int kx = kx_lo; kx < kx_end; ++kx) {
                const float* in_px =
                    row + static_cast<std::ptrdiff_t>(kx - kx_lo) *
                              attrs.dilation * in_stride;
                const std::size_t tap_base =
                    (static_cast<std::size_t>(ky) * attrs.kernel_w + kx) *
                    kern_in_c;
                for (int ic = 0; ic < in.c; ++ic) {
                  sum += in_px[ic] *
                         kern[(tap_base +
                               static_cast<std::size_t>(ic_offset + ic)) *
                                  kern_out_c +
                              oc];
                }
              }
            }
          }
          if (add_bias) sum += bias[oc];
          acc_px[oc] = sum;
        }
      }
    }
  }
}

void DepthwiseConv2dPartial(const Tensor& input,
                            const DepthwiseWeights& weights,
                            const graph::ConvAttrs& attrs,
                            int weight_c_offset, Tensor& out,
                            int out_c_offset) {
  const graph::TensorShape in = input.shape();
  SERENITY_CHECK_LE(weight_c_offset + in.c, weights.c);
  SERENITY_CHECK_LE(out_c_offset + in.c, out.shape().c);
  SERENITY_CHECK_LE(attrs.kernel_h, kMaxKernelH);
  const internal::Padding2d pad =
      internal::ComputePadding(in, attrs, out.shape().h, out.shape().w);
  const float* kern = weights.kernel.data();
  const float* bias = weights.bias.data();
  const std::size_t kern_c = static_cast<std::size_t>(weights.c);
  const int in_stride = input.pixel_stride();

  for (int n = 0; n < out.shape().n; ++n) {
    for (int oh = 0; oh < out.shape().h; ++oh) {
      const int ph = oh * attrs.stride - pad.top;
      const int ky_lo = internal::FirstValidTap(ph, attrs.dilation);
      const int ky_end =
          internal::EndValidTap(ph, attrs.dilation, attrs.kernel_h, in.h);
      for (int ow = 0; ow < out.shape().w; ++ow) {
        const int pw = ow * attrs.stride - pad.left;
        const int kx_lo = internal::FirstValidTap(pw, attrs.dilation);
        const int kx_end =
            internal::EndValidTap(pw, attrs.dilation, attrs.kernel_w, in.w);
        const bool any_taps = ky_lo < ky_end && kx_lo < kx_end;
        const float* tap_rows[kMaxKernelH];
        if (any_taps) {
          const int iw0 = pw + kx_lo * attrs.dilation;
          const int iw_run = (kx_end - 1 - kx_lo) * attrs.dilation + 1;
          for (int ky = ky_lo; ky < ky_end; ++ky) {
            tap_rows[ky - ky_lo] =
                input.PixelRun(n, ph + ky * attrs.dilation, iw0, iw_run);
          }
        }
        float* out_px = out.PixelRun(n, oh, ow, 1) + out_c_offset;

        int c = 0;
        for (; c + kLanes <= in.c; c += kLanes) {
          __m256 a =
              _mm256_loadu_ps(bias + weight_c_offset + c);  // bias first
          if (any_taps) {
            for (int ky = ky_lo; ky < ky_end; ++ky) {
              const float* row = tap_rows[ky - ky_lo];
              for (int kx = kx_lo; kx < kx_end; ++kx) {
                const float* in_px =
                    row + static_cast<std::ptrdiff_t>(kx - kx_lo) *
                              attrs.dilation * in_stride;
                const float* w_row =
                    kern +
                    (static_cast<std::size_t>(ky) * attrs.kernel_w + kx) *
                        kern_c +
                    weight_c_offset + c;
                a = _mm256_add_ps(
                    a, _mm256_mul_ps(_mm256_loadu_ps(in_px + c),
                                     _mm256_loadu_ps(w_row)));
              }
            }
          }
          _mm256_storeu_ps(out_px + c, a);
        }
        for (; c < in.c; ++c) {  // scalar tail, reference order
          float sum = bias[weight_c_offset + c];
          if (any_taps) {
            for (int ky = ky_lo; ky < ky_end; ++ky) {
              const float* row = tap_rows[ky - ky_lo];
              for (int kx = kx_lo; kx < kx_end; ++kx) {
                const float* in_px =
                    row + static_cast<std::ptrdiff_t>(kx - kx_lo) *
                              attrs.dilation * in_stride;
                sum += in_px[c] *
                       kern[(static_cast<std::size_t>(ky) * attrs.kernel_w +
                             kx) *
                                kern_c +
                            weight_c_offset + c];
              }
            }
          }
          out_px[c] = sum;
        }
      }
    }
  }
}

void DenseInto(const Tensor& input, const DenseWeights& weights,
               Tensor& out) {
  const graph::TensorShape in = input.shape();
  SERENITY_CHECK_EQ(in.NumElements() / in.n, weights.in);
  SERENITY_CHECK(out.shape() ==
                 (graph::TensorShape{in.n, 1, 1, weights.units}))
      << "Dense output shape mismatch";
  const float* kern = weights.kernel.data();
  const float* bias = weights.bias.data();
  const std::size_t units = static_cast<std::size_t>(weights.units);
  const int in_stride = input.pixel_stride();

  for (int n = 0; n < in.n; ++n) {
    float* out_px = out.PixelRun(n, 0, 0, 1);

    const auto chunk = [&](int u, auto vecs) {
      constexpr int kVecs = decltype(vecs)::value;
      __m256 a[kVecs];
      for (int v = 0; v < kVecs; ++v) {
        a[v] = _mm256_loadu_ps(bias + u + v * kLanes);  // bias first
      }
      std::size_t i = 0;
      for (int h = 0; h < in.h; ++h) {
        const float* in_row = input.PixelRun(n, h, 0, in.w);
        for (int w = 0; w < in.w; ++w) {
          const float* in_px =
              in_row + static_cast<std::ptrdiff_t>(w) * in_stride;
          for (int c = 0; c < in.c; ++c) {
            const __m256 x = _mm256_set1_ps(in_px[c]);
            const float* w_row = kern + i * units + u;
            for (int v = 0; v < kVecs; ++v) {
              a[v] = _mm256_add_ps(
                  a[v], _mm256_mul_ps(x, _mm256_loadu_ps(w_row + v * kLanes)));
            }
            ++i;
          }
        }
      }
      for (int v = 0; v < kVecs; ++v) {
        _mm256_storeu_ps(out_px + u + v * kLanes, a[v]);
      }
    };

    int u = 0;
    for (; u + 4 * kLanes <= weights.units; u += 4 * kLanes) {
      chunk(u, VecCount<4>{});
    }
    for (; u + kLanes <= weights.units; u += kLanes) chunk(u, VecCount<1>{});
    for (; u < weights.units; ++u) {  // scalar tail, reference order
      float sum = bias[u];
      std::size_t i = 0;
      for (int h = 0; h < in.h; ++h) {
        const float* in_row = input.PixelRun(n, h, 0, in.w);
        for (int w = 0; w < in.w; ++w) {
          const float* in_px =
              in_row + static_cast<std::ptrdiff_t>(w) * in_stride;
          for (int c = 0; c < in.c; ++c) {
            sum += in_px[c] * kern[i * units + u];
            ++i;
          }
        }
      }
      out_px[u] = sum;
    }
  }
}

void AddInto(const std::vector<const Tensor*>& inputs, Tensor& out) {
  CheckSameShape(inputs);
  const graph::TensorShape s = inputs[0]->shape();
  SERENITY_CHECK(out.shape() == s) << "Add output shape mismatch";
  const int num = static_cast<int>(inputs.size());
  const int os = out.pixel_stride();
  const float* rows[kMaxInputs];
  int strides[kMaxInputs];
  for (int t = 0; t < num; ++t) strides[t] = inputs[t]->pixel_stride();
  for (int n = 0; n < s.n; ++n) {
    for (int h = 0; h < s.h; ++h) {
      float* out_row = out.PixelRun(n, h, 0, s.w);
      for (int t = 0; t < num; ++t) {
        rows[t] = inputs[t]->PixelRun(n, h, 0, s.w);
      }
      for (int w = 0; w < s.w; ++w) {
        // Each 8-lane group reads every input before writing, so `out` may
        // alias any input (the in-place contract).
        float* o = out_row + static_cast<std::ptrdiff_t>(w) * os;
        int c = 0;
        for (; c + kLanes <= s.c; c += kLanes) {
          __m256 sum = _mm256_setzero_ps();
          for (int t = 0; t < num; ++t) {
            sum = _mm256_add_ps(
                sum, _mm256_loadu_ps(
                         rows[t] +
                         static_cast<std::ptrdiff_t>(w) * strides[t] + c));
          }
          _mm256_storeu_ps(o + c, sum);
        }
        for (; c < s.c; ++c) {
          float sum = 0.0f;
          for (int t = 0; t < num; ++t) {
            sum += rows[t][static_cast<std::ptrdiff_t>(w) * strides[t] + c];
          }
          o[c] = sum;
        }
      }
    }
  }
}

void MulInto(const std::vector<const Tensor*>& inputs, Tensor& out) {
  CheckSameShape(inputs);
  const graph::TensorShape s = inputs[0]->shape();
  SERENITY_CHECK(out.shape() == s) << "Mul output shape mismatch";
  const int num = static_cast<int>(inputs.size());
  const int os = out.pixel_stride();
  const float* rows[kMaxInputs];
  int strides[kMaxInputs];
  for (int t = 0; t < num; ++t) strides[t] = inputs[t]->pixel_stride();
  for (int n = 0; n < s.n; ++n) {
    for (int h = 0; h < s.h; ++h) {
      float* out_row = out.PixelRun(n, h, 0, s.w);
      for (int t = 0; t < num; ++t) {
        rows[t] = inputs[t]->PixelRun(n, h, 0, s.w);
      }
      for (int w = 0; w < s.w; ++w) {
        float* o = out_row + static_cast<std::ptrdiff_t>(w) * os;
        int c = 0;
        for (; c + kLanes <= s.c; c += kLanes) {
          __m256 product = _mm256_set1_ps(1.0f);
          for (int t = 0; t < num; ++t) {
            product = _mm256_mul_ps(
                product, _mm256_loadu_ps(
                             rows[t] +
                             static_cast<std::ptrdiff_t>(w) * strides[t] +
                             c));
          }
          _mm256_storeu_ps(o + c, product);
        }
        for (; c < s.c; ++c) {
          float product = 1.0f;
          for (int t = 0; t < num; ++t) {
            product *=
                rows[t][static_cast<std::ptrdiff_t>(w) * strides[t] + c];
          }
          o[c] = product;
        }
      }
    }
  }
}

void ReluInto(const Tensor& input, Tensor& out) {
  const graph::TensorShape s = input.shape();
  SERENITY_CHECK(out.shape() == s) << "Relu output shape mismatch";
  const int is = input.pixel_stride();
  const int os = out.pixel_stride();
  const __m256 zero = _mm256_setzero_ps();
  for (int n = 0; n < s.n; ++n) {
    for (int h = 0; h < s.h; ++h) {
      const float* in_row = input.PixelRun(n, h, 0, s.w);
      float* out_row = out.PixelRun(n, h, 0, s.w);
      for (int w = 0; w < s.w; ++w) {
        const float* x = in_row + static_cast<std::ptrdiff_t>(w) * is;
        float* o = out_row + static_cast<std::ptrdiff_t>(w) * os;
        int c = 0;
        for (; c + kLanes <= s.c; c += kLanes) {
          // max(x, 0) with x as the first operand: maxps returns the second
          // operand on NaN, matching std::max(0.0f, x)'s 0-on-NaN result.
          _mm256_storeu_ps(o + c,
                           _mm256_max_ps(_mm256_loadu_ps(x + c), zero));
        }
        for (; c < s.c; ++c) o[c] = std::max(0.0f, x[c]);
      }
    }
  }
}

void BatchNormInto(const Tensor& input, const BatchNormWeights& weights,
                   Tensor& out) {
  const graph::TensorShape s = input.shape();
  SERENITY_CHECK_EQ(weights.scale.size(), static_cast<std::size_t>(s.c));
  SERENITY_CHECK(out.shape() == s) << "BatchNorm output shape mismatch";
  const float* scale = weights.scale.data();
  const float* shift = weights.shift.data();
  const int is = input.pixel_stride();
  const int os = out.pixel_stride();
  for (int n = 0; n < s.n; ++n) {
    for (int h = 0; h < s.h; ++h) {
      const float* in_row = input.PixelRun(n, h, 0, s.w);
      float* out_row = out.PixelRun(n, h, 0, s.w);
      for (int w = 0; w < s.w; ++w) {
        const float* x = in_row + static_cast<std::ptrdiff_t>(w) * is;
        float* o = out_row + static_cast<std::ptrdiff_t>(w) * os;
        int c = 0;
        for (; c + kLanes <= s.c; c += kLanes) {
          _mm256_storeu_ps(
              o + c, _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(x + c),
                                                 _mm256_loadu_ps(scale + c)),
                                   _mm256_loadu_ps(shift + c)));
        }
        for (; c < s.c; ++c) o[c] = x[c] * scale[c] + shift[c];
      }
    }
  }
}

}  // namespace serenity::runtime::avx2

#endif  // SERENITY_HAVE_AVX2
