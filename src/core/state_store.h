// Flat-arena state store for the level-by-level schedulers (exact DP and
// beam search).
//
// Both schedulers walk the lattice of schedulable prefixes one level at a
// time, memoizing states on their *signature* — the bitset of scheduled
// nodes. The seed implementation kept each level as
// std::unordered_map<Bitset64, entry>, which heap-allocates a word vector
// per state, rehashes the full signature on every probe, and retains every
// level's keys until reconstruction. This store replaces that with:
//
//  - StateLevel: one level's states in SoA layout. Signature words live
//    back-to-back in a single uint64_t arena (state i occupies words
//    [i*W, (i+1)*W)); footprint, best peak and the cached Zobrist hash live
//    in parallel transient arrays; the back-pointer needed for schedule
//    reconstruction is an 8-byte ReconRecord. Deduplication runs through an
//    open-addressing (linear-probe) table of int32 state indices keyed by
//    the cached hashes — no per-state allocation anywhere.
//
//  - SignatureHasher: Zobrist hashing. Every node gets a fixed SplitMix64
//    key; hash(S) = XOR of the keys of S's members, so a child state's hash
//    is parent_hash ^ key(u) — one XOR instead of re-hashing the words.
//    Equality is always confirmed on the signature words, so hash collisions
//    cost a probe, never correctness.
//
//  - ExpansionTables: the graph-side constants of Algorithm 1 flattened
//    into contiguous word arenas — predecessor masks (for the zero-indegree
//    frontier scan), per-buffer writer masks (allocate-on-first-write) and
//    per-node freeable-buffer lists (deallocate-after-last-use as a
//    word-wise `touchers ⊆ scheduled ∪ {u}` subset check).
//
// Lifecycle of a level: Init → InsertOrRelax (during expansion of the
// previous level; shardable, see below) → Seal → read-only expansion →
// TakeReconAndRelease, which frees everything but the 8-byte records. A
// finished level therefore costs 8 bytes/state instead of the seed's
// ~(8*W + 40 + unordered_map node) bytes/state.
//
// Beam search instead uses the bounded lifecycle InitBounded →
// InsertBounded → SealBounded: top-`width` pruning is fused into insertion
// through an eviction heap over the open-addressing table, so a beam level
// never materializes more than `width` live states (plus the probe table)
// no matter how many children the parent level generates.
//
// Sharded parallel insertion: a level may be built by several threads, each
// owning a disjoint subset of `num_shards` sub-tables; a state's shard is a
// function of its hash (top bits, so it is independent of the table index
// bits). Each shard is only ever touched by one thread, and each thread
// scans parent states in the same ascending order, so the contents and
// ordering of every shard — and of the level after Seal() concatenates the
// shards — are deterministic for a fixed shard count. See DESIGN.md
// ("Flat-arena DP state store") for the full argument.
#ifndef SERENITY_CORE_STATE_STORE_H_
#define SERENITY_CORE_STATE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "graph/analysis.h"
#include "graph/graph.h"
#include "util/bitset.h"

namespace serenity::core {

// Back-pointer kept per state after its level's transients are dropped:
// which previous-level state it extends and by which node.
struct ReconRecord {
  std::int32_t prev_index = -1;
  std::int32_t last_node = -1;  // graph::NodeId of the appended node
};

// Reserve hint for the next level's arena and hash table, derived from the
// previous level's state count. Level widths on the paper's cells grow by
// well under 2× per level in the expanding phase of the search, so 2× the
// parent level makes rehashes rare without over-reserving: a too-small hint
// costs O(level) amortised rehash/copy work, a too-large one costs idle
// arena memory that is freed when the level's transients are dropped — the
// bias is slightly toward memory since the arena dominates (8·W+32
// bytes/state vs 8 bytes/slot). The hint is clamped against the search's
// state cap: a run that exceeds `max_states` aborts anyway, so a huge
// sealed level must never pre-allocate an arena past the cap (the +1 keeps
// room for the state whose insertion trips it).
inline std::size_t NextLevelReserveHint(std::size_t prev_level_size,
                                        std::uint64_t max_states) {
  std::uint64_t hint = std::max<std::uint64_t>(
      64, static_cast<std::uint64_t>(prev_level_size) * 2);
  if (max_states < hint) hint = std::max<std::uint64_t>(64, max_states + 1);
  return static_cast<std::size_t>(hint);
}

// Zobrist signature hashing with a fixed seed: deterministic across runs,
// platforms and thread counts.
class SignatureHasher {
 public:
  explicit SignatureHasher(std::size_t num_nodes);

  std::uint64_t key(std::size_t node) const { return keys_[node]; }

  // Independent second key stream for candidate tie-breaking:
  // `parent_hash ^ tie_key(u)` identifies the transition (parent state,
  // appended node) intrinsically — it does not depend on state numbering,
  // insertion order, shard count or pruning. Equal-peak back-pointer ties
  // resolve to the lowest such key, which is what makes the reconstructed
  // schedule bit-identical across thread counts and with branch-and-bound
  // pruning on or off (pruning reorders state *creation* within a level, so
  // any arrival-based tie-break would drift). Distinct from key(): the
  // natural `parent_hash ^ key(u)` is the child's hash, identical for every
  // candidate of one child and useless as a discriminator.
  std::uint64_t tie_key(std::size_t node) const { return tie_keys_[node]; }

  // The candidate tie key used by both schedulers: appended node in the
  // high bits, *descending* (among equally optimal histories the chain
  // prefers appending the latest-declared node, which empirically keeps
  // the reconstructed schedule's arena placement and off-chip traffic at
  // the quality of the historical first-writer tie-break), with the mixed
  // parent hash below as a total-order discriminator.
  std::uint64_t candidate_tie(std::uint64_t parent_hash,
                              std::size_t node) const {
    return (static_cast<std::uint64_t>(
                ~static_cast<std::uint32_t>(node) & 0xffffffu)
            << 40) |
           ((parent_hash ^ tie_keys_[node]) >> 24);
  }

  // Hash of the empty signature (level 0).
  static constexpr std::uint64_t kEmptyHash = 0x9ae16a3b2f90404full;

 private:
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> tie_keys_;
};

// One scheduler level. See the file comment for layout and lifecycle.
class StateLevel {
 public:
  StateLevel() = default;

  // `expected_states` pre-sizes the arena and the hash table (split evenly
  // across shards); `num_shards` must be a power of two.
  void Init(std::size_t words_per_state, std::size_t expected_states,
            int num_shards = 1);

  // Bounded (streaming top-`width`) mode — beam search's per-level pruning
  // fused into insertion. The level retains at most `width` live states at
  // any moment: an insertion into a full level either displaces the current
  // worst survivor or is rejected on the spot, so the transient high-water
  // memory is `width + 1` states plus the probe table and an amortised
  // eviction heap — never the pre-prune level size. States are ranked by
  // the *intrinsic* total order (peak, footprint, hash, signature words):
  // because the rank of a state does not depend on its arrival position,
  // the surviving set is exactly the top `width` of the fully deduplicated
  // level (see DESIGN.md "Streaming beam levels" for the argument that
  // evict-then-reinsert converges to batch dedup + nth_element). Single
  // shard only; use InsertBounded/SealBounded instead of
  // InsertOrRelax/Seal.
  void InitBounded(std::size_t words_per_state, std::size_t width);

  // Bounded-mode insertion. Deduplicates and relaxes exactly like
  // InsertOrRelax (including the intrinsic tie_key rule); a novel signature
  // enters the level iff it is better than the current worst survivor (or
  // the level holds fewer than `width`). Returns true iff a new live state
  // was created.
  bool InsertBounded(const std::uint64_t* sig, std::uint64_t hash,
                     std::int64_t footprint, std::int64_t peak,
                     std::uint64_t tie_key, std::int32_t prev_index,
                     std::int32_t last_node,
                     std::int64_t next_floor = kFloorUnknown);

  // Seals a bounded level: compacts the (at most `width`) survivors, orders
  // them by the intrinsic total order — best first, deterministic and
  // arrival-independent — and drops the probe table, eviction heap and slot
  // bookkeeping. Accessors and TakeReconAndRelease are valid afterwards.
  void SealBounded();

  std::size_t words_per_state() const { return words_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Owning shard of a hash. Uses the top 6 bits (so at most 64 shards can
  // be addressed — callers must clamp `num_shards` accordingly): the probe
  // sequence uses the low bits, keeping shard and slot choice independent.
  int ShardOf(std::uint64_t hash) const {
    return static_cast<int>(hash >> 58) & (num_shards() - 1);
  }

  // Inserts the state or relaxes the existing one (same signature ⇒ same
  // footprint; the lower peak and its back-pointer win, equal peaks resolve
  // to the lower `tie_key` — an intrinsic candidate id, see
  // SignatureHasher::tie_key, so the winner is independent of arrival
  // order). Thread-safe across *different* shards: callers in a sharded
  // build must only pass hashes they own. Returns true iff a new state was
  // created. Only valid before Seal().
  //
  // `next_floor` is the state's memoized one-step frontier-alloc floor
  // (ExpansionTables::ChildNextAllocFloor) — a pure function of the
  // signature, so every duplicate candidate passes the same value and it is
  // written once at creation. kFloorUnknown for callers that do not bound
  // (the beam's default path, unit tests).
  bool InsertOrRelax(const std::uint64_t* sig, std::uint64_t hash,
                     std::int64_t footprint, std::int64_t peak,
                     std::uint64_t tie_key, std::int32_t prev_index,
                     std::int32_t last_node,
                     std::int64_t next_floor = kFloorUnknown);

  // Sentinel floor for states inserted by non-bounding callers. Negative,
  // so it can never pass a `footprint + floor > incumbent` test by
  // accident.
  static constexpr std::int64_t kFloorUnknown = -1;

  // Concatenates the shards into one contiguous SoA block (no-op for a
  // single shard) and drops the hash tables. States are numbered shard by
  // shard, insertion order within each — deterministic for a fixed shard
  // count. Accessors below are only valid after Seal().
  void Seal();

  std::size_t size() const;

  const std::uint64_t* signature(std::size_t i) const {
    return shards_[0].sig_arena.data() + i * words_;
  }
  std::uint64_t hash(std::size_t i) const { return shards_[0].hashes[i]; }
  std::int64_t footprint(std::size_t i) const {
    return shards_[0].footprint[i];
  }
  std::int64_t peak(std::size_t i) const { return shards_[0].peak[i]; }
  // Memoized one-step floor recorded at creation (kFloorUnknown when the
  // inserting caller did not bound; ExpansionTables::kNoAlloc for the full
  // state).
  std::int64_t floor(std::size_t i) const { return shards_[0].floor[i]; }
  const ReconRecord& recon(std::size_t i) const {
    return shards_[0].recon[i];
  }

  // Moves out the reconstruction records and frees every transient array
  // (signatures, hashes, footprints, peaks, table). The level is dead
  // afterwards.
  std::vector<ReconRecord> TakeReconAndRelease();

  // Bytes this level currently holds resident, by vector *capacity* (what
  // the allocator actually handed out, not just what is filled) — the
  // quantity a util::MemoryBudget reservation must cover. Valid in every
  // lifecycle phase.
  std::int64_t ResidentBytes() const;

  // What Init(words_per_state, expected_states, num_shards) will reserve,
  // computed without allocating — used to charge a budget *before* the
  // level grows. Mirrors Init's reserve math exactly.
  static std::int64_t EstimateBytes(std::size_t words_per_state,
                                    std::size_t expected_states,
                                    int num_shards);

  // Compacted copy holding exactly the states in `keep` (sealed, in the
  // given order) — the beam-search pruning step. Only valid after Seal().
  StateLevel Select(const std::vector<std::int32_t>& keep) const;

 private:
  struct Shard {
    std::vector<std::uint64_t> sig_arena;  // count * words signature words
    std::vector<std::uint64_t> hashes;     // cached Zobrist hash per state
    std::vector<std::int64_t> footprint;
    std::vector<std::int64_t> peak;
    std::vector<std::int64_t> floor;  // memoized one-step frontier floor
    std::vector<std::uint64_t> tie;  // winning candidate's intrinsic id
    std::vector<ReconRecord> recon;
    std::vector<std::int32_t> slots;  // open addressing; -1 = empty
    std::size_t count = 0;
  };

  // Lazy eviction-heap entry for the bounded mode: a snapshot of a slot's
  // rank at push time. An entry is stale once its slot was freed/reused
  // (generation mismatch) or relaxed (peak mismatch); stale entries are
  // discarded on pop, exactly like the hierarchy simulator's heap.
  struct EvictEntry {
    std::int64_t peak = 0;
    std::int64_t footprint = 0;
    std::uint64_t hash = 0;
    std::int32_t slot = -1;
    std::uint32_t gen = 0;
  };
  static bool EvictLess(const EvictEntry& a, const EvictEntry& b);

  bool InsertOrRelaxShard(Shard& shard, const std::uint64_t* sig,
                          std::uint64_t hash, std::int64_t footprint,
                          std::int64_t peak, std::uint64_t tie_key,
                          std::int32_t prev_index, std::int32_t last_node,
                          std::int64_t next_floor);
  void GrowTable(Shard& shard);

  // True iff the value (peak, footprint, hash, sig) ranks strictly better
  // (lower) than live slot `si` in the intrinsic total order.
  bool BoundedValueLess(std::int64_t peak, std::int64_t footprint,
                        std::uint64_t hash, const std::uint64_t* sig,
                        std::size_t si) const;
  std::size_t FreshWorstSlot();
  void EvictSlot(std::size_t si);
  void PushEvictEntry(std::size_t si);
  void RebuildBoundedTable();

  std::size_t words_ = 0;
  std::vector<Shard> shards_;
  bool sealed_ = false;

  // Bounded-mode bookkeeping; width_ == 0 means unbounded mode.
  std::size_t width_ = 0;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::vector<EvictEntry> evict_heap_;
  std::vector<std::int32_t> free_slots_;
  std::vector<std::uint32_t> slot_gen_;
  std::vector<std::uint8_t> slot_live_;
};

// Cross-attempt transposition/dominance layer for the soft-budget
// meta-search (DESIGN.md "Admissible bounds & dominance"). The table
// memoizes signatures proven DEAD for a fixed incumbent I: an admissible
// lower bound on the peak of every completion of the signature — its
// residual bound, footprint + one-step frontier floor, or I+1 when the
// exact two-step probe showed every start exceeds I — strictly above I.
// Every stored bound is a pure function of the signature (never of the
// arriving path's peak or of the attempt's budget τ), and the incumbent is
// fixed for the whole meta-search, so a hit is a sound prune in ANY later
// attempt: with τ ≤ I the pruned subtree is τ-infeasible too, and with
// τ > I it cannot contain the optimum (µ* ≤ I). Only bounds that EXCEED
// the incumbent are worth memoizing — a surviving state's bound can never
// combine with its (≤ I) peak to prune later — which keeps the table
// proportional to the pruned frontier, not the explored lattice.
//
// Determinism contract: the table is frozen (read-only) while a level
// expands; learned records are buffered per thread, concatenated and merged
// single-threaded at the level boundary after sorting by an intrinsic key
// (hash, signature words, bound descending), so the retained set under the
// entry cap is identical across thread counts. Runs that abort mid-level
// discard that level's batch.
//
// Layout mirrors StateLevel: SoA arrays (hash, bound) over a contiguous
// signature-word arena, deduplicated through an open-addressing table of
// int32 entry indices; hash collisions are confirmed on the words.
class DominanceTable {
 public:
  DominanceTable() = default;

  // `incumbent_bytes` pins the meta-search's fixed incumbent; every merged
  // bound must strictly exceed it (checked), every lookup compares against
  // it. `max_entries` caps resident memory; once full, novel signatures
  // are dropped (existing entries still take bound maxima).
  void Init(std::size_t words_per_state, std::int64_t incumbent_bytes,
            std::size_t max_entries = std::size_t{1} << 20);

  bool initialized() const { return words_ != 0; }
  std::size_t words_per_state() const { return words_; }
  std::int64_t incumbent() const { return incumbent_; }
  std::size_t size() const { return count_; }

  // Memoized residual lower bound of the signature; 0 when absent. By the
  // dead-only contract any non-zero return strictly exceeds incumbent(),
  // so a hit prunes the state outright.
  std::int64_t Lookup(std::uint64_t hash, const std::uint64_t* sig) const;

  // Per-thread buffer of dead signatures learned while a level expands.
  // Owned by the expansion worker; the runner concatenates the batches in
  // thread-index order and merges once the level completes.
  class PendingBatch {
   public:
    void Add(std::uint64_t hash, const std::uint64_t* sig,
             std::size_t words, std::int64_t lower_bound);
    void Append(PendingBatch&& other);
    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    void clear();

   private:
    friend class DominanceTable;
    struct Record {
      std::uint64_t hash;
      std::int64_t lb;
      std::uint32_t offset;  // into sig_arena_, words_per_state words
    };
    std::vector<Record> records_;
    std::vector<std::uint64_t> sig_arena_;
  };

  // Single-threaded merge at a level boundary. Sorts the batch by the
  // intrinsic key first (see the class comment), takes the maximum bound
  // per signature, and drops novel signatures beyond the entry cap. The
  // batch is consumed.
  void Merge(PendingBatch* batch);

  // Entry iteration for the bound-audit suite: every stored bound must be
  // admissible (≤ the true completion peak of its signature) and > I.
  std::uint64_t entry_hash(std::size_t i) const { return hashes_[i]; }
  const std::uint64_t* entry_signature(std::size_t i) const {
    return sig_arena_.data() + i * words_;
  }
  std::int64_t entry_bound(std::size_t i) const { return bounds_[i]; }

  // Bytes resident by vector capacity — included in the DP run's
  // memory-budget reservation alongside the state store.
  std::int64_t ResidentBytes() const;

 private:
  void GrowSlots();

  std::size_t words_ = 0;
  std::size_t max_entries_ = 0;
  std::int64_t incumbent_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> hashes_;
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> sig_arena_;
  std::vector<std::int32_t> slots_;  // open addressing; -1 = empty
};

// Graph-side constants of Algorithm 1, flattened for the expansion hot
// loop. Self-contained: copies every word it needs into its own arenas.
class ExpansionTables {
 public:
  ExpansionTables(const graph::Graph& graph,
                  const graph::BufferUseTable& table,
                  const graph::AdjacencyBitsets& adjacency);

  // Builds the use table and adjacency as temporaries: everything the hot
  // loop needs is copied into the arenas, so callers that only schedule
  // should not keep their own copies alive.
  static ExpansionTables Build(const graph::Graph& graph) {
    return ExpansionTables(graph, graph::BufferUseTable::Build(graph),
                           graph::BuildAdjacency(graph));
  }

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t words_per_state() const { return words_; }

  // Appends the zero-indegree frontier of `sig` (unscheduled nodes whose
  // predecessors are all scheduled) to `out` in ascending node order. `out`
  // is a caller-owned scratch buffer — the frontier is a function of the
  // signature, so it is recomputed here instead of being stored per state.
  //
  // When `residual_bound` is non-null it receives the residual lower bound
  // of the state: max over the *unscheduled* nodes of their minimum step
  // footprint (graph::BufferUseTable::MinStepFootprints) — every completion
  // of `sig` must pass through a step at least that large. Computed in the
  // same candidate scan the frontier already pays for; it only fires
  // against incumbents below the optimum (a contract violation), and is
  // kept as the safety net of the branch-and-bound cut.
  void AppendFrontier(const std::uint64_t* sig, std::vector<std::int32_t>* out,
                      std::int64_t* residual_bound = nullptr) const;

  // Minimum transient footprint of the step scheduling `node`, in any
  // topological order (the per-node constant behind the residual bound).
  std::int64_t min_step_bytes(std::int32_t node) const {
    return min_step_bytes_[static_cast<std::size_t>(node)];
  }

  // Per-parent-state scratch for the branch-and-bound one-step lookahead
  // (DESIGN.md "Branch-and-bound over levels"). For every frontier node v,
  // `alloc[v-index]` is the EXACT number of bytes the step scheduling v
  // from this state allocates (its output size when no writer of v's
  // buffer has run, else 0). min1/min2/argmin summarize the array so the
  // per-transition child floor is O(1) + the newly-ready scan.
  struct FrontierAllocs {
    std::vector<std::int64_t> alloc;  // aligned with the frontier vector
    std::int64_t min1 = 0;            // min over the frontier (kNoAlloc if empty)
    std::int64_t min2 = 0;            // min excluding argmin
    std::int32_t argmin_node = -1;
    // Frontier nodes with alloc > 0 whose output buffer is shared with
    // another writer, as (buffer, node) sorted by buffer — the rare case
    // (co-frontier co-writers) where scheduling one zeroes the other's
    // alloc in the child.
    std::vector<std::pair<std::int32_t, std::int32_t>> shared_positive;
  };

  // Sentinel for "no frontier": an empty min. Any state with unscheduled
  // nodes has a non-empty frontier in a DAG, so callers only see this for
  // the full state (which they must not bound with a lookahead anyway).
  static constexpr std::int64_t kNoAlloc =
      std::numeric_limits<std::int64_t>::max();

  void ComputeFrontierAllocs(const std::uint64_t* sig,
                             const std::vector<std::int32_t>& frontier,
                             FrontierAllocs* out) const;

  // Exact one-step lookahead floor of the child `sig ∪ {u}` (whose
  // signature words are `child_sig`): min over the child's frontier of the
  // bytes its next step must allocate. The child's frontier is
  // (parent frontier \ {u}) ∪ {newly ready successors of u}, and the
  // returned value is a pure function of the child signature — every
  // duplicate candidate computes the same floor, which keeps relax winners
  // (and the reconstructed schedule) bit-identical under pruning. Returns
  // kNoAlloc when the child is the full state.
  std::int64_t ChildNextAllocFloor(const std::uint64_t* child_sig,
                                   std::int32_t u,
                                   const FrontierAllocs& fa) const;

  // Scratch buffers for ChildLookaheadExceeds, owned by the caller so the
  // probe allocates nothing per transition once warm: one frontier and one
  // signature buffer per probed depth, plus a per-probe transposition
  // cache. The prefix lattice is graded (every path to a signature has the
  // same length), so within one probe a signature is always reached with
  // the same remaining horizon — caching its DFS verdict is exact, and it
  // collapses the probe's permutation blow-up (b^k step sequences) to the
  // number of distinct signatures within k steps. Generation-stamped slots
  // make the between-probe reset O(1).
  struct LookaheadScratch {
    std::vector<std::vector<std::int32_t>> frontier;
    std::vector<std::vector<std::uint64_t>> sig;
    struct MemoEntry {
      std::uint64_t hash = 0;
      std::uint32_t gen = 0;
      std::uint8_t viable = 0;
    };
    std::vector<MemoEntry> memo;       // open addressing, power-of-two
    std::vector<std::uint64_t> memo_sigs;  // slot-indexed signature words
    std::uint32_t memo_gen = 0;
  };

  // Exact depth-`depth` lookahead on the child `sig ∪ {u}`: true iff EVERY
  // way of scheduling the child's next `depth` steps takes some step whose
  // transient footprint strictly exceeds `incumbent` — an admissible reason
  // to prune the child, since every completion of the child starts with
  // some such sequence (a sequence that reaches the full state early is
  // judged on the steps it has). Depth-first with early exit: the common
  // kept child settles on the first viable chain in O(depth) transitions;
  // only near-dead children pay a wider scan, and a per-probe node cap
  // bounds even those (a capped probe reports "viable" — never a wrong
  // prune, and the cap is part of the bound's definition, so probes stay
  // pure functions of the child signature). Depth 2 is the historical
  // two-step probe.
  //
  // When `dominance`/`hasher`/`child_hash` are supplied the probe is
  // extended with the memoized residuals: a start whose signature is
  // recorded dead (every continuation through it peaks above the
  // incumbent) is rejected without scanning deeper. Still a pure function
  // of the child signature for a fixed (frozen-per-level) table, so
  // duplicate candidates keep agreeing. `hasher` alone (no table) still
  // enables the per-probe transposition cache.
  //
  // When `learn` is supplied, every interior DFS signature proven to have
  // no viable continuation — a genuine certificate: the node cap can only
  // force "viable", never "exceeds" — is recorded with bound incumbent+1.
  // Such a signature is dead outright (every completion of it takes a step
  // above the incumbent within its horizon), so later levels and attempts
  // prune it by dominance lookup instead of re-running the DFS; this is
  // what keeps consecutive levels' deep probes from re-exploring the same
  // dead region.
  bool ChildLookaheadExceeds(const std::uint64_t* child_sig,
                             std::int64_t child_footprint, std::int32_t u,
                             const std::vector<std::int32_t>& frontier,
                             std::int64_t incumbent, int depth,
                             LookaheadScratch* scratch,
                             const DominanceTable* dominance = nullptr,
                             const SignatureHasher* hasher = nullptr,
                             std::uint64_t child_hash = 0,
                             DominanceTable::PendingBatch* learn =
                                 nullptr) const;

  struct Transition {
    std::int64_t footprint;  // µ after scheduling `node` and freeing
    std::int64_t step_peak;  // transient µ (output live, dead inputs not yet
                             // freed) — what the soft budget prunes on
  };

  // Schedules `node` on top of state `sig` (which must not contain it and
  // must contain its predecessors). If step_peak exceeds `budget` the free
  // scan is skipped and `footprint` is unspecified — callers prune on
  // step_peak first.
  Transition Apply(const std::uint64_t* sig, std::int32_t node,
                   std::int64_t footprint, std::int64_t budget) const;

  // Bytes of the flattened graph-side constants (by vector capacity) — the
  // fixed part of a run's memory-budget reservation.
  std::int64_t ResidentBytes() const;

 private:
  // Depth-first viability scan behind ChildLookaheadExceeds: true iff some
  // way of scheduling the next `remaining` steps from (sig, footprint),
  // whose ready set is `frontier`, keeps every transient footprint at or
  // under `incumbent`. `depth_index` picks this recursion level's scratch
  // buffers; `node_budget` is the shared per-probe cap (exhaustion returns
  // viable). `dominance`/`hasher` are either both set or both null.
  bool LookaheadViable(const std::uint64_t* sig, std::int64_t footprint,
                       std::uint64_t hash,
                       const std::vector<std::int32_t>& frontier,
                       std::int64_t incumbent, int remaining,
                       std::size_t depth_index, LookaheadScratch* scratch,
                       const DominanceTable* dominance,
                       const SignatureHasher* hasher,
                       DominanceTable::PendingBatch* learn,
                       int* node_budget) const;

  std::size_t num_nodes_ = 0;
  std::size_t words_ = 0;
  std::uint64_t last_word_mask_ = 0;  // valid bits of the final word

  std::vector<std::uint64_t> preds_;           // node-major, num_nodes * W
  std::vector<std::uint64_t> buffer_writers_;  // buffer-major, buffers * W
  std::vector<std::int32_t> own_buffer_;       // node -> output buffer
  std::vector<std::int64_t> own_size_;         // node -> output buffer bytes
  // Whether the node's output buffer has another writer (a pure graph
  // property). A sole writer that is itself unscheduled — always the case
  // for the frontier/lookahead nodes the alloc probes test — cannot have an
  // allocated output, so the common case skips the writer-word intersect
  // entirely; this is what makes the always-on one-step floor cheap.
  std::vector<std::uint8_t> has_cowriter_;     // node -> shared output buffer

  // Flattened non-sink touched buffers per node (sinks are never freed, so
  // they are dropped at build time).
  struct Freeable {
    std::uint32_t touchers_offset;  // into touchers_arena_, W words
    std::int64_t size_bytes;
  };
  std::vector<Freeable> freeables_;
  std::vector<std::uint32_t> freeable_begin_;  // num_nodes + 1 offsets
  std::vector<std::uint64_t> touchers_arena_;
  std::vector<std::int64_t> min_step_bytes_;  // node -> admissible step floor

  // Flattened successor adjacency for the newly-ready scan of
  // ChildNextAllocFloor.
  std::vector<std::int32_t> succs_arena_;
  std::vector<std::uint32_t> succ_begin_;  // num_nodes + 1 offsets
};

}  // namespace serenity::core

#endif  // SERENITY_CORE_STATE_STORE_H_
