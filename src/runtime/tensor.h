// Dense float32 NHWC tensor for the runtime: an owning buffer or a
// non-owning view over external storage.
//
// The runtime exists to *prove semantics*, not to be fast: identity graph
// rewriting claims bit-level mathematical integrity (§3.3), and the tests
// execute a graph and its rewritten twin on identical synthetic weights and
// inputs, comparing outputs to tolerance. Plain nested loops keep every
// kernel auditable against the paper's equations.
//
// Two storage modes (DESIGN.md "Plan-driven execution"):
//   * Owning — the tensor holds its own zero-initialized buffer. What the
//     ReferenceExecutor materializes per graph buffer.
//   * View — the tensor aliases external storage it does not free. The
//     ArenaExecutor binds one view per activation buffer at its ArenaPlan
//     offset inside the preallocated arena block, so inference runs without
//     per-inference heap allocation. A *channel-window* view additionally
//     addresses channels [channel_offset, channel_offset + shape.c) of a
//     wider backing tensor (stride backing_c), which is how values living
//     inside a shared buffer — concat views, partial-depthwise slices — are
//     read in place instead of being copied out.
//
// Copying a tensor (copy constructor/assignment) always materializes an
// owning, contiguous deep copy: a view never silently aliases into a second
// tensor. Every element access is bounds-checked against both the logical
// shape and the backing span, so a view can never read or write outside the
// storage it was bound to — inside the arena executor that means no access
// escapes its planned [offset, offset + size) placement.
#ifndef SERENITY_RUNTIME_TENSOR_H_
#define SERENITY_RUNTIME_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"
#include "util/rng.h"

namespace serenity::runtime {

class Tensor {
 public:
  Tensor() = default;

  // Owning, zero-initialized.
  explicit Tensor(const graph::TensorShape& shape)
      : shape_(shape),
        backing_c_(shape.c),
        owned_(static_cast<std::size_t>(shape.NumElements()), 0.0f) {
    data_ = owned_.data();
    span_elements_ = owned_.size();
  }

  static Tensor Zeros(const graph::TensorShape& shape) {
    return Tensor(shape);
  }

  // Uniform values in [-scale, scale], deterministic from `rng`'s state.
  static Tensor Random(const graph::TensorShape& shape, util::Rng& rng,
                       float scale = 1.0f) {
    Tensor t(shape);
    for (float& v : t.owned_) v = rng.NextFloat(scale);
    return t;
  }

  // Non-owning contiguous view over `span_elements` floats at `storage`,
  // interpreted as `shape` (which must fill the span exactly). The caller
  // guarantees the storage outlives the view.
  static Tensor View(float* storage, std::size_t span_elements,
                     const graph::TensorShape& shape) {
    SERENITY_CHECK_EQ(static_cast<std::int64_t>(span_elements),
                      shape.NumElements())
        << "view span does not match its shape";
    Tensor t;
    t.shape_ = shape;
    t.backing_c_ = shape.c;
    t.data_ = storage;
    t.span_elements_ = span_elements;
    return t;
  }

  // Non-owning channel-window view: logical shape `shape`, reading channels
  // [channel_offset, channel_offset + shape.c) of a backing NHWC tensor
  // with `backing_c` channels whose storage starts at `storage` and spans
  // `span_elements` floats (the *backing* tensor's element count).
  static Tensor ChannelView(float* storage, std::size_t span_elements,
                            const graph::TensorShape& shape, int backing_c,
                            int channel_offset) {
    SERENITY_CHECK_GE(channel_offset, 0);
    SERENITY_CHECK_LE(channel_offset + shape.c, backing_c);
    SERENITY_CHECK_EQ(
        static_cast<std::int64_t>(span_elements),
        static_cast<std::int64_t>(shape.n) * shape.h * shape.w * backing_c)
        << "backing span does not match the window's backing shape";
    Tensor t;
    t.shape_ = shape;
    t.backing_c_ = backing_c;
    t.channel_offset_ = channel_offset;
    t.data_ = storage;
    t.span_elements_ = span_elements;
    return t;
  }

  // Copying snapshots into an owning, contiguous tensor (views included).
  Tensor(const Tensor& other) { *this = other; }
  Tensor& operator=(const Tensor& other) {
    if (this == &other) return *this;
    shape_ = other.shape_;
    backing_c_ = shape_.c;
    channel_offset_ = 0;
    owned_.resize(static_cast<std::size_t>(shape_.NumElements()));
    data_ = owned_.data();
    span_elements_ = owned_.size();
    CopyFrom(other);
    return *this;
  }

  // Moving preserves the storage mode; a moved owning tensor keeps its heap
  // buffer (vector moves never reallocate), a moved view keeps aliasing.
  Tensor(Tensor&& other) noexcept { *this = std::move(other); }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this == &other) return *this;
    shape_ = other.shape_;
    backing_c_ = other.backing_c_;
    channel_offset_ = other.channel_offset_;
    const bool was_owning = !other.owned_.empty();
    owned_ = std::move(other.owned_);
    data_ = was_owning ? owned_.data() : other.data_;
    span_elements_ = other.span_elements_;
    other.data_ = nullptr;
    other.span_elements_ = 0;
    other.shape_ = graph::TensorShape{0, 0, 0, 0};
    return *this;
  }

  const graph::TensorShape& shape() const { return shape_; }
  std::size_t size() const {
    return static_cast<std::size_t>(shape_.NumElements());
  }

  // True when logical NHWC order equals storage order (no channel window).
  bool contiguous() const {
    return backing_c_ == shape_.c && channel_offset_ == 0;
  }

  // Raw storage of a *contiguous* tensor; element i is the i-th value in
  // NHWC order. Channel windows have no meaningful linear layout, so this
  // refuses them — use At().
  float* data() {
    SERENITY_CHECK(contiguous()) << "linear access into a channel window";
    return data_;
  }
  const float* data() const {
    SERENITY_CHECK(contiguous()) << "linear access into a channel window";
    return data_;
  }

  float At(int n, int h, int w, int c) const {
    return data_[Index(n, h, w, c)];
  }
  float& At(int n, int h, int w, int c) { return data_[Index(n, h, w, c)]; }

  // Raw pixel-run access for the blocked/SIMD kernel backends
  // (runtime/kernel_backend.h): a pointer to the first channel of pixel
  // (n, h, w), valid for the whole run of `w_count` consecutive pixels in w.
  // Each pixel's shape().c channels are contiguous — channel windows
  // included, because a window's channels are consecutive inside its backing
  // row — and the next pixel in w is pixel_stride() floats away. ONE bounds
  // check covers the entire run, so kernels iterating whole rows keep the
  // no-access-escapes-its-placement guarantee without paying a checked At()
  // per element.
  const float* PixelRun(int n, int h, int w, int w_count) const {
    return data_ + RunIndex(n, h, w, w_count);
  }
  float* PixelRun(int n, int h, int w, int w_count) {
    return data_ + RunIndex(n, h, w, w_count);
  }

  // Floats between pixel (n, h, w) and pixel (n, h, w + 1) in storage:
  // shape().c for contiguous tensors, the backing channel count for channel
  // windows.
  int pixel_stride() const { return backing_c_; }

  // Elementwise copy from `other` (same shape) into this tensor's existing
  // storage — never reallocates, so a bound view stays bound.
  void CopyFrom(const Tensor& other) {
    SERENITY_CHECK(shape_ == other.shape_) << "shape mismatch in CopyFrom";
    ForEachIndex([&](int n, int h, int w, int c) {
      At(n, h, w, c) = other.At(n, h, w, c);
    });
  }

  // Test conveniences: flatten to / fill from logical NHWC order.
  std::vector<float> ToVector() const;
  void Assign(std::initializer_list<float> values);

  // Largest absolute elementwise difference; shapes must match.
  float MaxAbsDiff(const Tensor& other) const;

 private:
  // Visits every logical index in NHWC order — the single definition of
  // the tensor's iteration contract (CopyFrom, ToVector, Assign,
  // MaxAbsDiff all walk through here).
  template <typename Fn>
  void ForEachIndex(Fn&& fn) const {
    for (int n = 0; n < shape_.n; ++n) {
      for (int h = 0; h < shape_.h; ++h) {
        for (int w = 0; w < shape_.w; ++w) {
          for (int c = 0; c < shape_.c; ++c) {
            fn(n, h, w, c);
          }
        }
      }
    }
  }

  // First flat index of the pixel run [(n, h, w) .. (n, h, w + w_count)),
  // with both endpoints bounds-checked against the logical shape and the
  // backing span.
  std::size_t RunIndex(int n, int h, int w, int w_count) const {
    SERENITY_CHECK_GT(w_count, 0);
    const std::size_t first = Index(n, h, w, 0);
    (void)Index(n, h, w + w_count - 1, shape_.c - 1);  // run stays in bounds
    return first;
  }

  std::size_t Index(int n, int h, int w, int c) const {
    SERENITY_CHECK(n >= 0 && n < shape_.n && h >= 0 && h < shape_.h &&
                   w >= 0 && w < shape_.w && c >= 0 && c < shape_.c)
        << "tensor index out of range";
    const std::size_t flat = static_cast<std::size_t>(
        ((static_cast<std::int64_t>(n) * shape_.h + h) * shape_.w + w) *
            backing_c_ +
        channel_offset_ + c);
    SERENITY_CHECK_LT(flat, span_elements_)
        << "tensor access escapes its backing span";
    return flat;
  }

  graph::TensorShape shape_{0, 0, 0, 0};
  int backing_c_ = 0;       // storage channel stride (== shape_.c unless a
                            // channel window)
  int channel_offset_ = 0;  // first storage channel of this view
  float* data_ = nullptr;
  std::size_t span_elements_ = 0;  // floats addressable from data_
  std::vector<float> owned_;       // empty for views
};

}  // namespace serenity::runtime

#endif  // SERENITY_RUNTIME_TENSOR_H_
