#include "core/state_store.h"

#include <algorithm>

#include "util/logging.h"

namespace serenity::core {

namespace {

// SplitMix64 step — same generator as util::Rng, inlined so the hasher has
// no dependency on the RNG's stream position semantics.
std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::size_t NextPowerOfTwo(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

SignatureHasher::SignatureHasher(std::size_t num_nodes) {
  // Fixed seed: hashes (and therefore shard assignment and state ordering)
  // are reproducible across runs and platforms.
  std::uint64_t state = 0x5e7e217f9a3c4d1bull;
  keys_.resize(num_nodes);
  for (std::uint64_t& key : keys_) key = SplitMix64(state);
}

void StateLevel::Init(std::size_t words_per_state,
                      std::size_t expected_states, int num_shards) {
  SERENITY_CHECK_GT(words_per_state, 0u);
  SERENITY_CHECK_GT(num_shards, 0);
  SERENITY_CHECK_EQ(num_shards & (num_shards - 1), 0)
      << "shard count must be a power of two";
  words_ = words_per_state;
  sealed_ = false;
  shards_.assign(static_cast<std::size_t>(num_shards), Shard{});
  const std::size_t per_shard =
      expected_states / static_cast<std::size_t>(num_shards) + 1;
  for (Shard& shard : shards_) {
    shard.sig_arena.reserve(per_shard * words_);
    shard.hashes.reserve(per_shard);
    shard.footprint.reserve(per_shard);
    shard.peak.reserve(per_shard);
    shard.recon.reserve(per_shard);
    // Open-addressing capacity for load factor <= 2/3 at the expected size.
    shard.slots.assign(
        NextPowerOfTwo(std::max<std::size_t>(16, per_shard * 3 / 2)), -1);
  }
}

bool StateLevel::InsertOrRelax(const std::uint64_t* sig, std::uint64_t hash,
                               std::int64_t footprint, std::int64_t peak,
                               std::int32_t prev_index,
                               std::int32_t last_node) {
  SERENITY_CHECK(!sealed_);
  return InsertOrRelaxShard(shards_[static_cast<std::size_t>(ShardOf(hash))],
                            sig, hash, footprint, peak, prev_index,
                            last_node);
}

bool StateLevel::InsertOrRelaxShard(Shard& shard, const std::uint64_t* sig,
                                    std::uint64_t hash,
                                    std::int64_t footprint,
                                    std::int64_t peak,
                                    std::int32_t prev_index,
                                    std::int32_t last_node) {
  if ((shard.count + 1) * 3 > shard.slots.size() * 2) GrowTable(shard);
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t slot = static_cast<std::size_t>(hash) & mask;
  for (;;) {
    const std::int32_t s = shard.slots[slot];
    if (s < 0) {
      shard.slots[slot] = static_cast<std::int32_t>(shard.count);
      shard.sig_arena.insert(shard.sig_arena.end(), sig, sig + words_);
      shard.hashes.push_back(hash);
      shard.footprint.push_back(footprint);
      shard.peak.push_back(peak);
      shard.recon.push_back(ReconRecord{prev_index, last_node});
      ++shard.count;
      return true;
    }
    const std::size_t si = static_cast<std::size_t>(s);
    if (shard.hashes[si] == hash &&
        util::SpanEqual(shard.sig_arena.data() + si * words_, sig, words_)) {
      // Same signature ⇒ same µ (mechanically re-checked here); the lower
      // peak wins, the incumbent keeps ties.
      SERENITY_CHECK_EQ(shard.footprint[si], footprint);
      if (peak < shard.peak[si]) {
        shard.peak[si] = peak;
        shard.recon[si] = ReconRecord{prev_index, last_node};
      }
      return false;
    }
    slot = (slot + 1) & mask;
  }
}

void StateLevel::GrowTable(Shard& shard) {
  const std::size_t capacity = shard.slots.size() * 2;
  shard.slots.assign(capacity, -1);
  const std::size_t mask = capacity - 1;
  for (std::size_t i = 0; i < shard.count; ++i) {
    std::size_t slot = static_cast<std::size_t>(shard.hashes[i]) & mask;
    while (shard.slots[slot] >= 0) slot = (slot + 1) & mask;
    shard.slots[slot] = static_cast<std::int32_t>(i);
  }
}

void StateLevel::Seal() {
  SERENITY_CHECK(!sealed_);
  sealed_ = true;
  if (shards_.size() == 1) {
    shards_[0].slots = {};
    return;
  }
  Shard merged;
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.count;
  merged.sig_arena.reserve(total * words_);
  merged.hashes.reserve(total);
  merged.footprint.reserve(total);
  merged.peak.reserve(total);
  merged.recon.reserve(total);
  merged.count = total;
  for (Shard& shard : shards_) {
    merged.sig_arena.insert(merged.sig_arena.end(), shard.sig_arena.begin(),
                            shard.sig_arena.end());
    merged.hashes.insert(merged.hashes.end(), shard.hashes.begin(),
                         shard.hashes.end());
    merged.footprint.insert(merged.footprint.end(), shard.footprint.begin(),
                            shard.footprint.end());
    merged.peak.insert(merged.peak.end(), shard.peak.begin(),
                       shard.peak.end());
    merged.recon.insert(merged.recon.end(), shard.recon.begin(),
                        shard.recon.end());
    shard = Shard{};  // free as we go
  }
  shards_.assign(1, Shard{});
  shards_[0] = std::move(merged);
}

std::size_t StateLevel::size() const {
  if (sealed_) return shards_[0].count;
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.count;
  return total;
}

std::vector<ReconRecord> StateLevel::TakeReconAndRelease() {
  SERENITY_CHECK(sealed_);
  std::vector<ReconRecord> recon = std::move(shards_[0].recon);
  shards_.clear();
  return recon;
}

StateLevel StateLevel::Select(const std::vector<std::int32_t>& keep) const {
  SERENITY_CHECK(sealed_);
  StateLevel out;
  out.words_ = words_;
  out.sealed_ = true;
  out.shards_.assign(1, Shard{});
  Shard& dst = out.shards_[0];
  const Shard& src = shards_[0];
  dst.count = keep.size();
  dst.sig_arena.reserve(keep.size() * words_);
  dst.hashes.reserve(keep.size());
  dst.footprint.reserve(keep.size());
  dst.peak.reserve(keep.size());
  dst.recon.reserve(keep.size());
  for (const std::int32_t index : keep) {
    const std::size_t i = static_cast<std::size_t>(index);
    SERENITY_CHECK_LT(i, src.count);
    const std::uint64_t* sig = src.sig_arena.data() + i * words_;
    dst.sig_arena.insert(dst.sig_arena.end(), sig, sig + words_);
    dst.hashes.push_back(src.hashes[i]);
    dst.footprint.push_back(src.footprint[i]);
    dst.peak.push_back(src.peak[i]);
    dst.recon.push_back(src.recon[i]);
  }
  return out;
}

ExpansionTables::ExpansionTables(const graph::Graph& graph,
                                 const graph::BufferUseTable& table,
                                 const graph::AdjacencyBitsets& adjacency) {
  num_nodes_ = static_cast<std::size_t>(graph.num_nodes());
  words_ = (num_nodes_ + 63) / 64;
  const std::size_t tail = num_nodes_ & 63;
  last_word_mask_ =
      tail == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail) - 1;

  preds_.resize(num_nodes_ * words_);
  for (std::size_t u = 0; u < num_nodes_; ++u) {
    const util::Bitset64& p = adjacency.preds[u];
    SERENITY_CHECK_EQ(p.num_words(), words_);
    std::copy(p.words(), p.words() + words_, preds_.data() + u * words_);
  }

  const std::size_t num_buffers =
      static_cast<std::size_t>(graph.num_buffers());
  buffer_writers_.assign(num_buffers * words_, 0);
  touchers_arena_.resize(num_buffers * words_);
  for (std::size_t b = 0; b < num_buffers; ++b) {
    const graph::BufferUse& use = table.buffers[b];
    for (const graph::NodeId w : use.writers) {
      util::SpanSetBit(buffer_writers_.data() + b * words_,
                       static_cast<std::size_t>(w));
    }
    SERENITY_CHECK_EQ(use.touchers.num_words(), words_);
    std::copy(use.touchers.words(), use.touchers.words() + words_,
              touchers_arena_.data() + b * words_);
  }

  own_buffer_.resize(num_nodes_);
  own_size_.resize(num_nodes_);
  freeable_begin_.assign(num_nodes_ + 1, 0);
  for (std::size_t u = 0; u < num_nodes_; ++u) {
    const graph::Node& node = graph.node(static_cast<graph::NodeId>(u));
    own_buffer_[u] = static_cast<std::int32_t>(node.buffer);
    own_size_[u] =
        table.buffers[static_cast<std::size_t>(node.buffer)].size_bytes;
    for (const graph::BufferId b : table.touched_buffers[u]) {
      const graph::BufferUse& use =
          table.buffers[static_cast<std::size_t>(b)];
      if (use.is_sink) continue;  // never freed — drop at build time
      freeables_.push_back(Freeable{
          static_cast<std::uint32_t>(static_cast<std::size_t>(b) * words_),
          use.size_bytes});
    }
    freeable_begin_[u + 1] = static_cast<std::uint32_t>(freeables_.size());
  }
}

void ExpansionTables::AppendFrontier(const std::uint64_t* sig,
                                     std::vector<std::int32_t>* out) const {
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t candidates = ~sig[w];
    if (w + 1 == words_) candidates &= last_word_mask_;
    while (candidates != 0) {
      const std::size_t u =
          w * 64 + static_cast<std::size_t>(__builtin_ctzll(candidates));
      candidates &= candidates - 1;
      if (util::SpanIsSubsetOf(preds_.data() + u * words_, sig, words_)) {
        out->push_back(static_cast<std::int32_t>(u));
      }
    }
  }
}

ExpansionTables::Transition ExpansionTables::Apply(
    const std::uint64_t* sig, std::int32_t node, std::int64_t footprint,
    std::int64_t budget) const {
  const std::size_t u = static_cast<std::size_t>(node);
  // Allocate the output on first write (Algorithm 1 line 13).
  const std::uint64_t* writers =
      buffer_writers_.data() +
      static_cast<std::size_t>(own_buffer_[u]) * words_;
  if (!util::SpanIntersects(writers, sig, words_)) footprint += own_size_[u];
  const std::int64_t step_peak = footprint;
  if (step_peak > budget) return Transition{footprint, step_peak};

  // Deallocate buffers whose last use is this node (lines 15-19): freed iff
  // touchers ⊆ scheduled ∪ {u}, tested word-wise.
  const std::size_t u_word = u >> 6;
  const std::uint64_t u_bit = std::uint64_t{1} << (u & 63);
  for (std::uint32_t f = freeable_begin_[u]; f < freeable_begin_[u + 1];
       ++f) {
    const std::uint64_t* touchers =
        touchers_arena_.data() + freeables_[f].touchers_offset;
    bool freed = true;
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t scheduled = sig[w];
      if (w == u_word) scheduled |= u_bit;
      if ((touchers[w] & ~scheduled) != 0) {
        freed = false;
        break;
      }
    }
    if (freed) footprint -= freeables_[f].size_bytes;
  }
  return Transition{footprint, step_peak};
}

}  // namespace serenity::core
