#include "graph/types.h"

#include <gtest/gtest.h>

namespace serenity::graph {
namespace {

TEST(DataType, Sizes) {
  EXPECT_EQ(SizeOf(DataType::kFloat32), 4u);
  EXPECT_EQ(SizeOf(DataType::kFloat16), 2u);
  EXPECT_EQ(SizeOf(DataType::kInt8), 1u);
  EXPECT_EQ(SizeOf(DataType::kUInt8), 1u);
  EXPECT_EQ(SizeOf(DataType::kInt32), 4u);
}

TEST(TensorShape, NumElements) {
  EXPECT_EQ((TensorShape{1, 28, 28, 16}).NumElements(), 12544);
  EXPECT_EQ((TensorShape{2, 1, 1, 10}).NumElements(), 20);
  EXPECT_EQ((TensorShape{}).NumElements(), 1);
}

TEST(TensorShape, Equality) {
  EXPECT_EQ((TensorShape{1, 2, 3, 4}), (TensorShape{1, 2, 3, 4}));
  EXPECT_NE((TensorShape{1, 2, 3, 4}), (TensorShape{1, 2, 3, 5}));
}

TEST(ConvOutputExtent, SamePaddingCeilDiv) {
  EXPECT_EQ(ConvOutputExtent(28, 3, 1, 1, Padding::kSame), 28);
  EXPECT_EQ(ConvOutputExtent(28, 3, 2, 1, Padding::kSame), 14);
  EXPECT_EQ(ConvOutputExtent(29, 3, 2, 1, Padding::kSame), 15);
  EXPECT_EQ(ConvOutputExtent(5, 7, 1, 1, Padding::kSame), 5);
}

TEST(ConvOutputExtent, ValidPadding) {
  EXPECT_EQ(ConvOutputExtent(28, 3, 1, 1, Padding::kValid), 26);
  EXPECT_EQ(ConvOutputExtent(28, 3, 2, 1, Padding::kValid), 13);
  EXPECT_EQ(ConvOutputExtent(7, 7, 1, 1, Padding::kValid), 1);
}

TEST(ConvOutputExtent, DilationGrowsEffectiveKernel) {
  // dilation 2 on a 3-tap kernel = effective extent 5.
  EXPECT_EQ(ConvOutputExtent(28, 3, 1, 2, Padding::kValid), 24);
  EXPECT_EQ(ConvOutputExtent(28, 3, 1, 2, Padding::kSame), 28);
}

TEST(ShapeInference, Conv2d) {
  const TensorShape in{1, 56, 56, 3};
  const ConvAttrs attrs{3, 3, 2, 1, Padding::kSame};
  EXPECT_EQ(InferConv2dShape(in, attrs, 16), (TensorShape{1, 28, 28, 16}));
}

TEST(ShapeInference, DepthwisePreservesChannels) {
  const TensorShape in{1, 28, 28, 40};
  const ConvAttrs attrs{5, 5, 1, 1, Padding::kSame};
  EXPECT_EQ(InferDepthwiseShape(in, attrs), (TensorShape{1, 28, 28, 40}));
}

TEST(OpKind, Predicates) {
  EXPECT_TRUE(IsConvLike(OpKind::kConv2d));
  EXPECT_TRUE(IsConvLike(OpKind::kDepthwiseConv2d));
  EXPECT_TRUE(IsConvLike(OpKind::kPartialConv2dAccum));
  EXPECT_FALSE(IsConvLike(OpKind::kConcat));
  EXPECT_FALSE(IsConvLike(OpKind::kAdd));

  EXPECT_TRUE(MayAliasBuffer(OpKind::kPartialConv2dAccum));
  EXPECT_TRUE(MayAliasBuffer(OpKind::kPartialDepthwiseConv2d));
  EXPECT_TRUE(MayAliasBuffer(OpKind::kConcatView));
  EXPECT_FALSE(MayAliasBuffer(OpKind::kPartialConv2d));
  EXPECT_FALSE(MayAliasBuffer(OpKind::kConv2d));
}

TEST(OpKind, NamesRoundTripish) {
  EXPECT_STREQ(ToString(OpKind::kConv2d), "conv2d");
  EXPECT_STREQ(ToString(OpKind::kConcatView), "concat_view");
  EXPECT_STREQ(ToString(OpKind::kPartialConv2dAccum),
               "partial_conv2d_accum");
}

TEST(ConvOutputExtentDeath, RejectsNonPositive) {
  EXPECT_DEATH(ConvOutputExtent(0, 3, 1, 1, Padding::kSame), "CHECK");
  EXPECT_DEATH(ConvOutputExtent(8, 3, 0, 1, Padding::kSame), "CHECK");
}

}  // namespace
}  // namespace serenity::graph
