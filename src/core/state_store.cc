#include "core/state_store.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace serenity::core {

namespace {

// SplitMix64 step — same generator as util::Rng, inlined so the hasher has
// no dependency on the RNG's stream position semantics.
std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::size_t NextPowerOfTwo(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Probe-table cell markers for the bounded mode. kEmpty terminates probe
// chains; tombstones (left by evictions) do not, so lookups stay correct
// after deletions and insertions may reuse the dead cell.
constexpr std::int32_t kEmptyCell = -1;
constexpr std::int32_t kTombstoneCell = -2;

}  // namespace

SignatureHasher::SignatureHasher(std::size_t num_nodes) {
  // Fixed seeds: hashes and tie keys (and therefore shard assignment and
  // back-pointer tie-breaks) are reproducible across runs and platforms.
  std::uint64_t state = 0x5e7e217f9a3c4d1bull;
  keys_.resize(num_nodes);
  for (std::uint64_t& key : keys_) key = SplitMix64(state);
  std::uint64_t tie_state = 0x3c6ef372fe94f82aull;
  tie_keys_.resize(num_nodes);
  for (std::uint64_t& key : tie_keys_) key = SplitMix64(tie_state);
}

void StateLevel::Init(std::size_t words_per_state,
                      std::size_t expected_states, int num_shards) {
  SERENITY_CHECK_GT(words_per_state, 0u);
  SERENITY_CHECK_GT(num_shards, 0);
  SERENITY_CHECK_EQ(num_shards & (num_shards - 1), 0)
      << "shard count must be a power of two";
  words_ = words_per_state;
  sealed_ = false;
  width_ = 0;  // unbounded mode
  shards_.assign(static_cast<std::size_t>(num_shards), Shard{});
  const std::size_t per_shard =
      expected_states / static_cast<std::size_t>(num_shards) + 1;
  for (Shard& shard : shards_) {
    shard.sig_arena.reserve(per_shard * words_);
    shard.hashes.reserve(per_shard);
    shard.footprint.reserve(per_shard);
    shard.peak.reserve(per_shard);
    shard.floor.reserve(per_shard);
    shard.tie.reserve(per_shard);
    shard.recon.reserve(per_shard);
    // Open-addressing capacity for load factor <= 2/3 at the expected size.
    shard.slots.assign(
        NextPowerOfTwo(std::max<std::size_t>(16, per_shard * 3 / 2)), -1);
  }
}

bool StateLevel::InsertOrRelax(const std::uint64_t* sig, std::uint64_t hash,
                               std::int64_t footprint, std::int64_t peak,
                               std::uint64_t tie_key,
                               std::int32_t prev_index,
                               std::int32_t last_node,
                               std::int64_t next_floor) {
  SERENITY_CHECK(!sealed_);
  SERENITY_CHECK_EQ(width_, 0u) << "bounded level: use InsertBounded";
  return InsertOrRelaxShard(shards_[static_cast<std::size_t>(ShardOf(hash))],
                            sig, hash, footprint, peak, tie_key, prev_index,
                            last_node, next_floor);
}

// ----------------------------------------------------- bounded (beam) mode

void StateLevel::InitBounded(std::size_t words_per_state, std::size_t width) {
  SERENITY_CHECK_GT(words_per_state, 0u);
  SERENITY_CHECK_GT(width, 0u);
  words_ = words_per_state;
  sealed_ = false;
  width_ = width;
  live_ = 0;
  tombstones_ = 0;
  evict_heap_.clear();
  free_slots_.clear();
  slot_gen_.clear();
  slot_live_.clear();
  shards_.assign(1, Shard{});
  Shard& shard = shards_[0];
  // At most width + 1 slots ever exist (the +1 is the state whose insertion
  // displaces the worst); reserve modestly — wide beams rarely fill.
  const std::size_t reserve = std::min<std::size_t>(width + 1, 1024);
  shard.sig_arena.reserve(reserve * words_);
  shard.hashes.reserve(reserve);
  shard.footprint.reserve(reserve);
  shard.peak.reserve(reserve);
  shard.floor.reserve(reserve);
  shard.tie.reserve(reserve);
  shard.recon.reserve(reserve);
  // Capacity >= 2*(width+2): live + tombstones stay under the 2/3 load
  // factor after every rebuild, so the table never needs to grow.
  shard.slots.assign(
      NextPowerOfTwo(std::max<std::size_t>(16, (width + 2) * 2)), kEmptyCell);
}

bool StateLevel::EvictLess(const EvictEntry& a, const EvictEntry& b) {
  // Max-heap ("worst survivor on top") over the intrinsic rank. Slot and
  // generation only make the comparator a total order for the heap; ties on
  // (peak, footprint, hash) between *live* entries require a 64-bit Zobrist
  // collision inside one level, which the fresh-top users treat as
  // unreachable.
  if (a.peak != b.peak) return a.peak < b.peak;
  if (a.footprint != b.footprint) return a.footprint < b.footprint;
  if (a.hash != b.hash) return a.hash < b.hash;
  if (a.slot != b.slot) return a.slot < b.slot;
  return a.gen < b.gen;
}

bool StateLevel::BoundedValueLess(std::int64_t peak, std::int64_t footprint,
                                  std::uint64_t hash,
                                  const std::uint64_t* sig,
                                  std::size_t si) const {
  const Shard& shard = shards_[0];
  if (peak != shard.peak[si]) return peak < shard.peak[si];
  if (footprint != shard.footprint[si]) return footprint < shard.footprint[si];
  if (hash != shard.hashes[si]) return hash < shard.hashes[si];
  const std::uint64_t* other = shard.sig_arena.data() + si * words_;
  for (std::size_t w = 0; w < words_; ++w) {
    if (sig[w] != other[w]) return sig[w] < other[w];
  }
  return false;  // identical value (same signature)
}

void StateLevel::PushEvictEntry(std::size_t si) {
  const Shard& shard = shards_[0];
  evict_heap_.push_back(EvictEntry{shard.peak[si], shard.footprint[si],
                                   shard.hashes[si],
                                   static_cast<std::int32_t>(si),
                                   slot_gen_[si]});
  std::push_heap(evict_heap_.begin(), evict_heap_.end(), EvictLess);
  // Relax chains and evictions leave stale snapshots behind; compact once
  // they dominate so the heap stays O(width), amortised O(1) per insert.
  if (evict_heap_.size() > std::max<std::size_t>(64, 4 * width_)) {
    std::vector<EvictEntry> fresh;
    fresh.reserve(live_);
    for (const EvictEntry& e : evict_heap_) {
      const std::size_t slot = static_cast<std::size_t>(e.slot);
      if (slot_live_[slot] && slot_gen_[slot] == e.gen &&
          shard.peak[slot] == e.peak) {
        fresh.push_back(e);
      }
    }
    evict_heap_ = std::move(fresh);
    std::make_heap(evict_heap_.begin(), evict_heap_.end(), EvictLess);
  }
}

std::size_t StateLevel::FreshWorstSlot() {
  const Shard& shard = shards_[0];
  for (;;) {
    SERENITY_CHECK(!evict_heap_.empty());
    const EvictEntry& top = evict_heap_.front();
    const std::size_t si = static_cast<std::size_t>(top.slot);
    if (slot_live_[si] && slot_gen_[si] == top.gen &&
        shard.peak[si] == top.peak) {
      return si;
    }
    std::pop_heap(evict_heap_.begin(), evict_heap_.end(), EvictLess);
    evict_heap_.pop_back();
  }
}

void StateLevel::EvictSlot(std::size_t si) {
  Shard& shard = shards_[0];
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t cell = static_cast<std::size_t>(shard.hashes[si]) & mask;
  while (shard.slots[cell] != static_cast<std::int32_t>(si)) {
    SERENITY_CHECK(shard.slots[cell] != kEmptyCell);
    cell = (cell + 1) & mask;
  }
  shard.slots[cell] = kTombstoneCell;
  ++tombstones_;
  ++slot_gen_[si];  // invalidates every heap snapshot of this tenancy
  slot_live_[si] = 0;
  --live_;
  free_slots_.push_back(static_cast<std::int32_t>(si));
}

void StateLevel::RebuildBoundedTable() {
  Shard& shard = shards_[0];
  std::fill(shard.slots.begin(), shard.slots.end(), kEmptyCell);
  tombstones_ = 0;
  const std::size_t mask = shard.slots.size() - 1;
  for (std::size_t i = 0; i < shard.count; ++i) {
    if (!slot_live_[i]) continue;
    std::size_t cell = static_cast<std::size_t>(shard.hashes[i]) & mask;
    while (shard.slots[cell] != kEmptyCell) cell = (cell + 1) & mask;
    shard.slots[cell] = static_cast<std::int32_t>(i);
  }
}

bool StateLevel::InsertBounded(const std::uint64_t* sig, std::uint64_t hash,
                               std::int64_t footprint, std::int64_t peak,
                               std::uint64_t tie_key,
                               std::int32_t prev_index,
                               std::int32_t last_node,
                               std::int64_t next_floor) {
  SERENITY_CHECK(!sealed_);
  SERENITY_CHECK_GT(width_, 0u) << "unbounded level: use InsertOrRelax";
  Shard& shard = shards_[0];
  if ((live_ + tombstones_ + 1) * 3 > shard.slots.size() * 2) {
    RebuildBoundedTable();
  }
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t cell = static_cast<std::size_t>(hash) & mask;
  std::size_t reuse_cell = shard.slots.size();  // first tombstone on the path
  for (;;) {
    const std::int32_t s = shard.slots[cell];
    if (s == kEmptyCell) break;
    if (s == kTombstoneCell) {
      if (reuse_cell == shard.slots.size()) reuse_cell = cell;
    } else {
      const std::size_t si = static_cast<std::size_t>(s);
      if (shard.hashes[si] == hash &&
          util::SpanEqual(shard.sig_arena.data() + si * words_, sig,
                          words_)) {
        // Live duplicate: relax exactly as InsertOrRelax does. A strictly
        // lower peak improves the slot's rank, so its heap snapshot is
        // re-pushed (the old one goes stale via the peak mismatch).
        SERENITY_CHECK_EQ(shard.footprint[si], footprint);
        if (peak < shard.peak[si]) {
          shard.peak[si] = peak;
          shard.tie[si] = tie_key;
          shard.recon[si] = ReconRecord{prev_index, last_node};
          PushEvictEntry(si);
        } else if (peak == shard.peak[si] && tie_key < shard.tie[si]) {
          shard.tie[si] = tie_key;
          shard.recon[si] = ReconRecord{prev_index, last_node};
        }
        return false;
      }
    }
    cell = (cell + 1) & mask;
  }
  if (reuse_cell == shard.slots.size()) reuse_cell = cell;

  if (live_ >= width_) {
    // Full level: entering is equivalent to insert-then-evict-the-worst,
    // decided without the churn. Because the rank is intrinsic to the
    // state's value — never its arrival position — a signature that was
    // evicted earlier and arrives again with a better peak re-enters with
    // exactly the rank batch dedup would have given it, which is what makes
    // the streaming survivors identical to seal-and-copy pruning.
    const std::size_t worst = FreshWorstSlot();
    if (!BoundedValueLess(peak, footprint, hash, sig, worst)) return false;
    EvictSlot(worst);
  }

  std::int32_t target;
  if (!free_slots_.empty()) {
    target = free_slots_.back();
    free_slots_.pop_back();
    const std::size_t ti = static_cast<std::size_t>(target);
    std::copy(sig, sig + words_, shard.sig_arena.data() + ti * words_);
    shard.hashes[ti] = hash;
    shard.footprint[ti] = footprint;
    shard.peak[ti] = peak;
    shard.floor[ti] = next_floor;
    shard.tie[ti] = tie_key;
    shard.recon[ti] = ReconRecord{prev_index, last_node};
    slot_live_[ti] = 1;
  } else {
    target = static_cast<std::int32_t>(shard.count);
    shard.sig_arena.insert(shard.sig_arena.end(), sig, sig + words_);
    shard.hashes.push_back(hash);
    shard.footprint.push_back(footprint);
    shard.peak.push_back(peak);
    shard.floor.push_back(next_floor);
    shard.tie.push_back(tie_key);
    shard.recon.push_back(ReconRecord{prev_index, last_node});
    slot_gen_.push_back(0);
    slot_live_.push_back(1);
    ++shard.count;
  }
  if (shard.slots[reuse_cell] == kTombstoneCell) {
    --tombstones_;  // the new entry resurrects a dead cell
  }
  shard.slots[reuse_cell] = target;
  ++live_;
  PushEvictEntry(static_cast<std::size_t>(target));
  return true;
}

void StateLevel::SealBounded() {
  SERENITY_CHECK(!sealed_);
  SERENITY_CHECK_GT(width_, 0u);
  Shard& shard = shards_[0];
  std::vector<std::int32_t> keep;
  keep.reserve(live_);
  for (std::size_t i = 0; i < shard.count; ++i) {
    if (slot_live_[i]) keep.push_back(static_cast<std::int32_t>(i));
  }
  SERENITY_CHECK_EQ(keep.size(), live_);
  // Best-first intrinsic order: deterministic, independent of arrival and
  // eviction history — the order the reference seal-and-copy path must
  // reproduce for the bit-identity property suite.
  std::sort(keep.begin(), keep.end(),
            [this, &shard](std::int32_t a, std::int32_t b) {
              const std::size_t ia = static_cast<std::size_t>(a);
              return BoundedValueLess(
                  shard.peak[ia], shard.footprint[ia], shard.hashes[ia],
                  shard.sig_arena.data() + ia * words_,
                  static_cast<std::size_t>(b));
            });
  Shard out;
  out.count = keep.size();
  out.sig_arena.reserve(keep.size() * words_);
  out.hashes.reserve(keep.size());
  out.footprint.reserve(keep.size());
  out.peak.reserve(keep.size());
  out.floor.reserve(keep.size());
  out.tie.reserve(keep.size());
  out.recon.reserve(keep.size());
  for (const std::int32_t index : keep) {
    const std::size_t i = static_cast<std::size_t>(index);
    const std::uint64_t* sig = shard.sig_arena.data() + i * words_;
    out.sig_arena.insert(out.sig_arena.end(), sig, sig + words_);
    out.hashes.push_back(shard.hashes[i]);
    out.footprint.push_back(shard.footprint[i]);
    out.peak.push_back(shard.peak[i]);
    out.floor.push_back(shard.floor[i]);
    out.tie.push_back(shard.tie[i]);
    out.recon.push_back(shard.recon[i]);
  }
  shards_[0] = std::move(out);
  sealed_ = true;
  evict_heap_ = {};
  free_slots_ = {};
  slot_gen_ = {};
  slot_live_ = {};
}

bool StateLevel::InsertOrRelaxShard(Shard& shard, const std::uint64_t* sig,
                                    std::uint64_t hash,
                                    std::int64_t footprint,
                                    std::int64_t peak,
                                    std::uint64_t tie_key,
                                    std::int32_t prev_index,
                                    std::int32_t last_node,
                                    std::int64_t next_floor) {
  if ((shard.count + 1) * 3 > shard.slots.size() * 2) GrowTable(shard);
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t slot = static_cast<std::size_t>(hash) & mask;
  for (;;) {
    const std::int32_t s = shard.slots[slot];
    if (s < 0) {
      shard.slots[slot] = static_cast<std::int32_t>(shard.count);
      shard.sig_arena.insert(shard.sig_arena.end(), sig, sig + words_);
      shard.hashes.push_back(hash);
      shard.footprint.push_back(footprint);
      shard.peak.push_back(peak);
      shard.floor.push_back(next_floor);
      shard.tie.push_back(tie_key);
      shard.recon.push_back(ReconRecord{prev_index, last_node});
      ++shard.count;
      return true;
    }
    const std::size_t si = static_cast<std::size_t>(s);
    if (shard.hashes[si] == hash &&
        util::SpanEqual(shard.sig_arena.data() + si * words_, sig, words_)) {
      // Same signature ⇒ same µ (mechanically re-checked here); the lower
      // peak wins, equal peaks resolve to the lower intrinsic tie key so
      // the surviving back-pointer is independent of candidate arrival
      // order (and therefore of pruning and shard count).
      SERENITY_CHECK_EQ(shard.footprint[si], footprint);
      if (peak < shard.peak[si] ||
          (peak == shard.peak[si] && tie_key < shard.tie[si])) {
        shard.peak[si] = peak;
        shard.tie[si] = tie_key;
        shard.recon[si] = ReconRecord{prev_index, last_node};
      }
      return false;
    }
    slot = (slot + 1) & mask;
  }
}

void StateLevel::GrowTable(Shard& shard) {
  const std::size_t capacity = shard.slots.size() * 2;
  shard.slots.assign(capacity, -1);
  const std::size_t mask = capacity - 1;
  for (std::size_t i = 0; i < shard.count; ++i) {
    std::size_t slot = static_cast<std::size_t>(shard.hashes[i]) & mask;
    while (shard.slots[slot] >= 0) slot = (slot + 1) & mask;
    shard.slots[slot] = static_cast<std::int32_t>(i);
  }
}

void StateLevel::Seal() {
  SERENITY_CHECK(!sealed_);
  SERENITY_CHECK_EQ(width_, 0u) << "bounded level: use SealBounded";
  sealed_ = true;
  if (shards_.size() == 1) {
    shards_[0].slots = {};
    return;
  }
  Shard merged;
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.count;
  merged.sig_arena.reserve(total * words_);
  merged.hashes.reserve(total);
  merged.footprint.reserve(total);
  merged.peak.reserve(total);
  merged.floor.reserve(total);
  merged.tie.reserve(total);
  merged.recon.reserve(total);
  merged.count = total;
  for (Shard& shard : shards_) {
    merged.sig_arena.insert(merged.sig_arena.end(), shard.sig_arena.begin(),
                            shard.sig_arena.end());
    merged.hashes.insert(merged.hashes.end(), shard.hashes.begin(),
                         shard.hashes.end());
    merged.footprint.insert(merged.footprint.end(), shard.footprint.begin(),
                            shard.footprint.end());
    merged.peak.insert(merged.peak.end(), shard.peak.begin(),
                       shard.peak.end());
    merged.floor.insert(merged.floor.end(), shard.floor.begin(),
                        shard.floor.end());
    merged.tie.insert(merged.tie.end(), shard.tie.begin(),
                      shard.tie.end());
    merged.recon.insert(merged.recon.end(), shard.recon.begin(),
                        shard.recon.end());
    shard = Shard{};  // free as we go
  }
  shards_.assign(1, Shard{});
  shards_[0] = std::move(merged);
}

std::size_t StateLevel::size() const {
  if (sealed_) return shards_[0].count;
  if (width_ > 0) return live_;  // bounded mode: slots may hold dead states
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.count;
  return total;
}

std::int64_t StateLevel::ResidentBytes() const {
  std::int64_t bytes = 0;
  for (const Shard& shard : shards_) {
    bytes += static_cast<std::int64_t>(shard.sig_arena.capacity()) * 8;
    bytes += static_cast<std::int64_t>(shard.hashes.capacity()) * 8;
    bytes += static_cast<std::int64_t>(shard.footprint.capacity()) * 8;
    bytes += static_cast<std::int64_t>(shard.peak.capacity()) * 8;
    bytes += static_cast<std::int64_t>(shard.floor.capacity()) * 8;
    bytes += static_cast<std::int64_t>(shard.tie.capacity()) * 8;
    bytes += static_cast<std::int64_t>(shard.recon.capacity() *
                                       sizeof(ReconRecord));
    bytes += static_cast<std::int64_t>(shard.slots.capacity()) * 4;
  }
  bytes += static_cast<std::int64_t>(evict_heap_.capacity() *
                                     sizeof(EvictEntry));
  bytes += static_cast<std::int64_t>(free_slots_.capacity()) * 4;
  bytes += static_cast<std::int64_t>(slot_gen_.capacity()) * 4;
  bytes += static_cast<std::int64_t>(slot_live_.capacity());
  return bytes;
}

std::int64_t StateLevel::EstimateBytes(std::size_t words_per_state,
                                       std::size_t expected_states,
                                       int num_shards) {
  const std::size_t per_shard =
      expected_states / static_cast<std::size_t>(num_shards) + 1;
  const std::size_t slots =
      NextPowerOfTwo(std::max<std::size_t>(16, per_shard * 3 / 2));
  const std::int64_t per_shard_bytes =
      static_cast<std::int64_t>(per_shard * words_per_state) * 8 +  // arena
      static_cast<std::int64_t>(per_shard) *
          // hashes + footprint + peak + floor + tie + recon
          (8 + 8 + 8 + 8 + 8 +
           static_cast<std::int64_t>(sizeof(ReconRecord))) +
      static_cast<std::int64_t>(slots) * 4;
  return per_shard_bytes * num_shards;
}

std::vector<ReconRecord> StateLevel::TakeReconAndRelease() {
  SERENITY_CHECK(sealed_);
  std::vector<ReconRecord> recon = std::move(shards_[0].recon);
  shards_.clear();
  return recon;
}

StateLevel StateLevel::Select(const std::vector<std::int32_t>& keep) const {
  SERENITY_CHECK(sealed_);
  StateLevel out;
  out.words_ = words_;
  out.sealed_ = true;
  out.shards_.assign(1, Shard{});
  Shard& dst = out.shards_[0];
  const Shard& src = shards_[0];
  dst.count = keep.size();
  dst.sig_arena.reserve(keep.size() * words_);
  dst.hashes.reserve(keep.size());
  dst.footprint.reserve(keep.size());
  dst.peak.reserve(keep.size());
  dst.floor.reserve(keep.size());
  dst.tie.reserve(keep.size());
  dst.recon.reserve(keep.size());
  for (const std::int32_t index : keep) {
    const std::size_t i = static_cast<std::size_t>(index);
    SERENITY_CHECK_LT(i, src.count);
    const std::uint64_t* sig = src.sig_arena.data() + i * words_;
    dst.sig_arena.insert(dst.sig_arena.end(), sig, sig + words_);
    dst.hashes.push_back(src.hashes[i]);
    dst.footprint.push_back(src.footprint[i]);
    dst.peak.push_back(src.peak[i]);
    dst.floor.push_back(src.floor[i]);
    dst.tie.push_back(src.tie[i]);
    dst.recon.push_back(src.recon[i]);
  }
  return out;
}

// ----------------------------------------------------- dominance table

void DominanceTable::Init(std::size_t words_per_state,
                          std::int64_t incumbent_bytes,
                          std::size_t max_entries) {
  SERENITY_CHECK_GT(words_per_state, 0u);
  SERENITY_CHECK_GT(max_entries, 0u);
  words_ = words_per_state;
  incumbent_ = incumbent_bytes;
  max_entries_ = max_entries;
  count_ = 0;
  hashes_.clear();
  bounds_.clear();
  sig_arena_.clear();
  slots_.assign(64, -1);
}

std::int64_t DominanceTable::Lookup(std::uint64_t hash,
                                    const std::uint64_t* sig) const {
  if (count_ == 0) return 0;
  const std::size_t mask = slots_.size() - 1;
  std::size_t cell = static_cast<std::size_t>(hash) & mask;
  for (;;) {
    const std::int32_t e = slots_[cell];
    if (e < 0) return 0;
    const std::size_t ei = static_cast<std::size_t>(e);
    if (hashes_[ei] == hash &&
        util::SpanEqual(sig_arena_.data() + ei * words_, sig, words_)) {
      return bounds_[ei];
    }
    cell = (cell + 1) & mask;
  }
}

void DominanceTable::PendingBatch::Add(std::uint64_t hash,
                                       const std::uint64_t* sig,
                                       std::size_t words,
                                       std::int64_t lower_bound) {
  records_.push_back(Record{
      hash, lower_bound, static_cast<std::uint32_t>(sig_arena_.size())});
  sig_arena_.insert(sig_arena_.end(), sig, sig + words);
}

void DominanceTable::PendingBatch::Append(PendingBatch&& other) {
  const std::uint32_t base = static_cast<std::uint32_t>(sig_arena_.size());
  for (Record record : other.records_) {
    record.offset += base;
    records_.push_back(record);
  }
  sig_arena_.insert(sig_arena_.end(), other.sig_arena_.begin(),
                    other.sig_arena_.end());
  other.clear();
}

void DominanceTable::PendingBatch::clear() {
  records_.clear();
  sig_arena_.clear();
}

void DominanceTable::GrowSlots() {
  const std::size_t capacity = slots_.size() * 2;
  slots_.assign(capacity, -1);
  const std::size_t mask = capacity - 1;
  for (std::size_t i = 0; i < count_; ++i) {
    std::size_t cell = static_cast<std::size_t>(hashes_[i]) & mask;
    while (slots_[cell] >= 0) cell = (cell + 1) & mask;
    slots_[cell] = static_cast<std::int32_t>(i);
  }
}

void DominanceTable::Merge(PendingBatch* batch) {
  SERENITY_CHECK(initialized());
  if (batch->records_.empty()) return;
  // Intrinsic order first: (hash, signature words, bound descending). The
  // retained set under the entry cap then depends only on the batch's
  // CONTENTS — a set, identical across thread counts — never on the order
  // per-thread buffers were concatenated in.
  const std::uint64_t* arena = batch->sig_arena_.data();
  const std::size_t words = words_;
  std::sort(batch->records_.begin(), batch->records_.end(),
            [arena, words](const PendingBatch::Record& a,
                           const PendingBatch::Record& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              const std::uint64_t* sa = arena + a.offset;
              const std::uint64_t* sb = arena + b.offset;
              for (std::size_t w = 0; w < words; ++w) {
                if (sa[w] != sb[w]) return sa[w] < sb[w];
              }
              return a.lb > b.lb;  // max bound first among duplicates
            });
  const PendingBatch::Record* prev = nullptr;
  for (const PendingBatch::Record& record : batch->records_) {
    SERENITY_CHECK_GT(record.lb, incumbent_)
        << "dominance table only memoizes dead signatures";
    if (prev != nullptr && prev->hash == record.hash &&
        util::SpanEqual(arena + prev->offset, arena + record.offset,
                        words_)) {
      continue;  // duplicate signature: the sort put the max bound first
    }
    prev = &record;
    if ((count_ + 1) * 3 > slots_.size() * 2) GrowSlots();
    const std::size_t mask = slots_.size() - 1;
    std::size_t cell = static_cast<std::size_t>(record.hash) & mask;
    bool found = false;
    for (;;) {
      const std::int32_t e = slots_[cell];
      if (e < 0) break;
      const std::size_t ei = static_cast<std::size_t>(e);
      if (hashes_[ei] == record.hash &&
          util::SpanEqual(sig_arena_.data() + ei * words_,
                          arena + record.offset, words_)) {
        bounds_[ei] = std::max(bounds_[ei], record.lb);
        found = true;
        break;
      }
      cell = (cell + 1) & mask;
    }
    if (found) continue;
    if (count_ >= max_entries_) continue;  // full: drop novel signatures
    slots_[cell] = static_cast<std::int32_t>(count_);
    hashes_.push_back(record.hash);
    bounds_.push_back(record.lb);
    sig_arena_.insert(sig_arena_.end(), arena + record.offset,
                      arena + record.offset + words_);
    ++count_;
  }
  batch->clear();
}

std::int64_t DominanceTable::ResidentBytes() const {
  return static_cast<std::int64_t>(
      hashes_.capacity() * 8 + bounds_.capacity() * 8 +
      sig_arena_.capacity() * 8 + slots_.capacity() * 4);
}

ExpansionTables::ExpansionTables(const graph::Graph& graph,
                                 const graph::BufferUseTable& table,
                                 const graph::AdjacencyBitsets& adjacency) {
  num_nodes_ = static_cast<std::size_t>(graph.num_nodes());
  words_ = (num_nodes_ + 63) / 64;
  const std::size_t tail = num_nodes_ & 63;
  last_word_mask_ =
      tail == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail) - 1;

  preds_.resize(num_nodes_ * words_);
  for (std::size_t u = 0; u < num_nodes_; ++u) {
    const util::Bitset64& p = adjacency.preds[u];
    SERENITY_CHECK_EQ(p.num_words(), words_);
    std::copy(p.words(), p.words() + words_, preds_.data() + u * words_);
  }

  const std::size_t num_buffers =
      static_cast<std::size_t>(graph.num_buffers());
  buffer_writers_.assign(num_buffers * words_, 0);
  touchers_arena_.resize(num_buffers * words_);
  for (std::size_t b = 0; b < num_buffers; ++b) {
    const graph::BufferUse& use = table.buffers[b];
    for (const graph::NodeId w : use.writers) {
      util::SpanSetBit(buffer_writers_.data() + b * words_,
                       static_cast<std::size_t>(w));
    }
    SERENITY_CHECK_EQ(use.touchers.num_words(), words_);
    std::copy(use.touchers.words(), use.touchers.words() + words_,
              touchers_arena_.data() + b * words_);
  }

  own_buffer_.resize(num_nodes_);
  own_size_.resize(num_nodes_);
  has_cowriter_.resize(num_nodes_);
  freeable_begin_.assign(num_nodes_ + 1, 0);
  for (std::size_t u = 0; u < num_nodes_; ++u) {
    const graph::Node& node = graph.node(static_cast<graph::NodeId>(u));
    own_buffer_[u] = static_cast<std::int32_t>(node.buffer);
    own_size_[u] =
        table.buffers[static_cast<std::size_t>(node.buffer)].size_bytes;
    has_cowriter_[u] =
        table.buffers[static_cast<std::size_t>(node.buffer)].writers.size() >=
                2
            ? 1
            : 0;
    for (const graph::BufferId b : table.touched_buffers[u]) {
      const graph::BufferUse& use =
          table.buffers[static_cast<std::size_t>(b)];
      if (use.is_sink) continue;  // never freed — drop at build time
      freeables_.push_back(Freeable{
          static_cast<std::uint32_t>(static_cast<std::size_t>(b) * words_),
          use.size_bytes});
    }
    freeable_begin_[u + 1] = static_cast<std::uint32_t>(freeables_.size());
  }
  min_step_bytes_ = table.MinStepFootprints();
  succ_begin_.assign(num_nodes_ + 1, 0);
  for (std::size_t u = 0; u < num_nodes_; ++u) {
    const auto& consumers = graph.consumers(static_cast<graph::NodeId>(u));
    for (const graph::NodeId c : consumers) {
      succs_arena_.push_back(static_cast<std::int32_t>(c));
    }
    succ_begin_[u + 1] = static_cast<std::uint32_t>(succs_arena_.size());
  }
}

void ExpansionTables::AppendFrontier(const std::uint64_t* sig,
                                     std::vector<std::int32_t>* out,
                                     std::int64_t* residual_bound) const {
  // The residual max rides the candidate scan only when a caller asks for
  // it (the nullptr test is loop-invariant, so the beam and unpruned DP
  // paths pay nothing beyond the unswitched branch).
  std::int64_t residual = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t candidates = ~sig[w];
    if (w + 1 == words_) candidates &= last_word_mask_;
    while (candidates != 0) {
      const std::size_t u =
          w * 64 + static_cast<std::size_t>(__builtin_ctzll(candidates));
      candidates &= candidates - 1;
      if (residual_bound != nullptr) {
        residual = std::max(residual, min_step_bytes_[u]);
      }
      if (util::SpanIsSubsetOf(preds_.data() + u * words_, sig, words_)) {
        out->push_back(static_cast<std::int32_t>(u));
      }
    }
  }
  if (residual_bound != nullptr) *residual_bound = residual;
}

void ExpansionTables::ComputeFrontierAllocs(
    const std::uint64_t* sig, const std::vector<std::int32_t>& frontier,
    FrontierAllocs* out) const {
  out->alloc.clear();
  out->shared_positive.clear();
  out->min1 = kNoAlloc;
  out->min2 = kNoAlloc;
  out->argmin_node = -1;
  for (const std::int32_t v : frontier) {
    const std::size_t vi = static_cast<std::size_t>(v);
    const std::int32_t buffer = own_buffer_[vi];
    // Fast path: a frontier node is unscheduled, so a sole-writer output
    // cannot be allocated yet — only shared buffers need the writer-word
    // intersect (has_cowriter_ is the per-node precompute).
    std::int64_t alloc = own_size_[vi];
    if (has_cowriter_[vi] != 0) {
      const std::uint64_t* writers =
          buffer_writers_.data() + static_cast<std::size_t>(buffer) * words_;
      if (util::SpanIntersects(writers, sig, words_)) alloc = 0;
    }
    out->alloc.push_back(alloc);
    if (alloc < out->min1) {
      out->min2 = out->min1;
      out->min1 = alloc;
      out->argmin_node = v;
    } else if (alloc < out->min2) {
      out->min2 = alloc;
    }
    if (alloc > 0 && has_cowriter_[vi] != 0) {
      // A positive alloc on a *shared* buffer can be zeroed by a sibling
      // writer in the same frontier; remember it for ChildNextAllocFloor.
      out->shared_positive.push_back({buffer, v});
    }
  }
  std::sort(out->shared_positive.begin(), out->shared_positive.end());
}

// Per-probe state cap for the depth-k lookahead: a probe that expands this
// many lookahead states without settling reports "viable" (no prune). The
// cap is part of the bound's definition — the DFS order and the cap are
// pure functions of the probed signature, so capped probes stay
// deterministic across runs and thread counts. With the per-probe
// transposition cache the cap counts distinct signatures, not step
// sequences, so it is rarely reached in practice.
constexpr int kLookaheadNodeCap = 32768;
// Slots of the per-probe transposition cache. Power of two, and at least
// 2x the node cap so the open-addressing load factor stays under 1/2.
constexpr std::size_t kLookaheadMemoSlots = 65536;

bool ExpansionTables::LookaheadViable(
    const std::uint64_t* sig, std::int64_t footprint, std::uint64_t hash,
    const std::vector<std::int32_t>& frontier, std::int64_t incumbent,
    int remaining, std::size_t depth_index, LookaheadScratch* scratch,
    const DominanceTable* dominance, const SignatureHasher* hasher,
    DominanceTable::PendingBatch* learn, int* node_budget) const {
  constexpr std::size_t kMemoMask = kLookaheadMemoSlots - 1;
  for (const std::int32_t v : frontier) {
    const std::size_t vi = static_cast<std::size_t>(v);
    // v is unscheduled in sig, so a sole-writer output cannot be allocated
    // yet (same fast path as ComputeFrontierAllocs).
    std::int64_t alloc = own_size_[vi];
    if (has_cowriter_[vi] != 0) {
      const std::uint64_t* writers =
          buffer_writers_.data() +
          static_cast<std::size_t>(own_buffer_[vi]) * words_;
      if (util::SpanIntersects(writers, sig, words_)) alloc = 0;
    }
    if (footprint + alloc > incumbent) continue;  // this start is dead
    // The step fits; at the probe horizon that alone settles viability.
    if (remaining == 1) return true;
    std::vector<std::uint64_t>& next_sig = scratch->sig[depth_index];
    next_sig.assign(sig, sig + words_);
    util::SpanSetBit(next_sig.data(), vi);
    const std::uint64_t next_hash =
        hasher != nullptr ? hash ^ hasher->key(vi) : 0;
    // Per-probe transposition cache: the lattice is graded, so this
    // signature always carries the same remaining horizon within one probe
    // and its cached verdict is exact. Lookup stops at the first
    // stale-generation slot (stale slots are reused on insert, so entries
    // of the current probe always precede one).
    std::size_t memo_slot = kLookaheadMemoSlots;
    if (hasher != nullptr) {
      std::size_t cell = static_cast<std::size_t>(next_hash) & kMemoMask;
      bool cached = false, cached_viable = false;
      for (;;) {
        LookaheadScratch::MemoEntry& e = scratch->memo[cell];
        if (e.gen != scratch->memo_gen) {
          memo_slot = cell;  // free slot: remember it for the insert below
          break;
        }
        if (e.hash == next_hash &&
            util::SpanEqual(scratch->memo_sigs.data() + cell * words_,
                            next_sig.data(), words_)) {
          cached = true;
          cached_viable = e.viable != 0;
          break;
        }
        cell = (cell + 1) & kMemoMask;
      }
      if (cached) {
        if (cached_viable) return true;
        continue;  // proven non-viable earlier in this probe
      }
    }
    if (dominance != nullptr) {
      // Memoized residual: a signature the dominance table has proven dead
      // (every completion takes a step above the incumbent) kills this
      // start outright — any schedule through it inherits that step.
      if (dominance->Lookup(next_hash, next_sig.data()) > incumbent) {
        continue;
      }
    }
    if (--*node_budget <= 0) return true;  // capped: assume viable
    const Transition t = Apply(sig, v, footprint, incumbent);
    std::vector<std::int32_t>& next_frontier =
        scratch->frontier[depth_index];
    next_frontier.clear();
    for (const std::int32_t x : frontier) {
      if (x != v) next_frontier.push_back(x);
    }
    for (std::uint32_t i = succ_begin_[vi]; i < succ_begin_[vi + 1]; ++i) {
      const std::int32_t w = succs_arena_[i];
      if (util::SpanIsSubsetOf(
              preds_.data() + static_cast<std::size_t>(w) * words_,
              next_sig.data(), words_)) {
        next_frontier.push_back(w);
      }
    }
    // Reaching the full state within the horizon is viable: every step so
    // far fit under the incumbent.
    if (next_frontier.empty()) return true;
    const bool viable = LookaheadViable(
        next_sig.data(), t.footprint, next_hash, next_frontier, incumbent,
        remaining - 1, depth_index + 1, scratch, dominance, hasher, learn,
        node_budget);
    if (memo_slot != kLookaheadMemoSlots) {
      // The recursion may have reused our remembered slot; re-probe from it
      // for the first free cell (never far: load factor is capped at 1/2).
      std::size_t cell = memo_slot;
      while (scratch->memo[cell].gen == scratch->memo_gen) {
        cell = (cell + 1) & kMemoMask;
      }
      LookaheadScratch::MemoEntry& e = scratch->memo[cell];
      e.hash = next_hash;
      e.gen = scratch->memo_gen;
      e.viable = viable ? 1 : 0;
      std::copy(next_sig.data(), next_sig.data() + words_,
                scratch->memo_sigs.data() + cell * words_);
    }
    if (viable) return true;
    if (learn != nullptr) {
      // A false verdict is a genuine certificate (the cap only ever forces
      // "viable"): every completion of next_sig takes a step above the
      // incumbent within its horizon, so the signature is dead outright.
      learn->Add(next_hash, next_sig.data(), words_, incumbent + 1);
    }
  }
  return false;  // every start within the horizon exceeds the incumbent
}

bool ExpansionTables::ChildLookaheadExceeds(
    const std::uint64_t* child_sig, std::int64_t child_footprint,
    std::int32_t u, const std::vector<std::int32_t>& frontier,
    std::int64_t incumbent, int depth, LookaheadScratch* scratch,
    const DominanceTable* dominance, const SignatureHasher* hasher,
    std::uint64_t child_hash, DominanceTable::PendingBatch* learn) const {
  SERENITY_CHECK_GE(depth, 1);
  // Warm the per-depth scratch (no-op once grown; recursion level d writes
  // buffers [d] and the deepest level, remaining == 1, never writes).
  if (scratch->frontier.size() < static_cast<std::size_t>(depth)) {
    scratch->frontier.resize(static_cast<std::size_t>(depth));
    scratch->sig.resize(static_cast<std::size_t>(depth));
  }
  if (hasher != nullptr && scratch->memo.empty()) {
    scratch->memo.resize(kLookaheadMemoSlots);
    scratch->memo_sigs.resize(kLookaheadMemoSlots * words_);
  }
  // New probe generation; on uint32 wrap-around every stored generation is
  // invalidated by hand (stale slots must never alias a new probe).
  if (hasher != nullptr && ++scratch->memo_gen == 0) {
    for (auto& e : scratch->memo) e.gen = 0;
    scratch->memo_gen = 1;
  }
  // Materialize the child's frontier: surviving parent-frontier nodes plus
  // u's newly-ready successors.
  std::vector<std::int32_t>& cf = scratch->frontier[0];
  cf.clear();
  for (const std::int32_t v : frontier) {
    if (v != u) cf.push_back(v);
  }
  const std::size_t ui = static_cast<std::size_t>(u);
  for (std::uint32_t i = succ_begin_[ui]; i < succ_begin_[ui + 1]; ++i) {
    const std::int32_t w = succs_arena_[i];
    if (util::SpanIsSubsetOf(
            preds_.data() + static_cast<std::size_t>(w) * words_, child_sig,
            words_)) {
      cf.push_back(w);
    }
  }
  if (cf.empty()) return false;  // full state: no lookahead to fail
  const bool memoized = dominance != nullptr && hasher != nullptr &&
                        dominance->size() > 0;
  int node_budget = kLookaheadNodeCap;
  return !LookaheadViable(child_sig, child_footprint, child_hash, cf,
                          incumbent, depth, 1, scratch,
                          memoized ? dominance : nullptr, hasher,
                          hasher != nullptr ? learn : nullptr,
                          &node_budget);
}

std::int64_t ExpansionTables::ChildNextAllocFloor(
    const std::uint64_t* child_sig, std::int32_t u,
    const FrontierAllocs& fa) const {
  // Part 1: surviving parent-frontier nodes. Their alloc in the child
  // equals their alloc in the parent, except that scheduling u zeroes any
  // sibling writer of u's own buffer (u writes exactly its output buffer).
  std::int64_t floor = u == fa.argmin_node ? fa.min2 : fa.min1;
  if (!fa.shared_positive.empty()) {
    const std::size_t ui = static_cast<std::size_t>(u);
    const std::int32_t buffer = own_buffer_[ui];
    const auto begin = std::lower_bound(
        fa.shared_positive.begin(), fa.shared_positive.end(),
        std::pair<std::int32_t, std::int32_t>{buffer, -1});
    for (auto it = begin;
         it != fa.shared_positive.end() && it->first == buffer; ++it) {
      if (it->second != u) {
        floor = 0;
        break;
      }
    }
  }
  // Part 2: successors of u that just became ready.
  const std::size_t ui = static_cast<std::size_t>(u);
  for (std::uint32_t i = succ_begin_[ui]; i < succ_begin_[ui + 1]; ++i) {
    const std::size_t w = static_cast<std::size_t>(succs_arena_[i]);
    if (!util::SpanIsSubsetOf(preds_.data() + w * words_, child_sig,
                              words_)) {
      continue;
    }
    std::int64_t alloc = own_size_[w];
    if (has_cowriter_[w] != 0) {
      const std::uint64_t* writers =
          buffer_writers_.data() +
          static_cast<std::size_t>(own_buffer_[w]) * words_;
      if (util::SpanIntersects(writers, child_sig, words_)) alloc = 0;
    }
    floor = std::min(floor, alloc);
    if (floor == 0) break;
  }
  return floor;
}

std::int64_t ExpansionTables::ResidentBytes() const {
  return static_cast<std::int64_t>(
      preds_.capacity() * 8 + buffer_writers_.capacity() * 8 +
      touchers_arena_.capacity() * 8 + own_buffer_.capacity() * 4 +
      own_size_.capacity() * 8 + has_cowriter_.capacity() +
      freeables_.capacity() * sizeof(Freeable) +
      freeable_begin_.capacity() * 4 + min_step_bytes_.capacity() * 8 +
      succs_arena_.capacity() * 4 + succ_begin_.capacity() * 4);
}

ExpansionTables::Transition ExpansionTables::Apply(
    const std::uint64_t* sig, std::int32_t node, std::int64_t footprint,
    std::int64_t budget) const {
  const std::size_t u = static_cast<std::size_t>(node);
  // Allocate the output on first write (Algorithm 1 line 13). A sole-writer
  // node always allocates: u itself is unscheduled in sig, so nothing can
  // have written its buffer yet.
  bool allocate = true;
  if (has_cowriter_[u] != 0) {
    const std::uint64_t* writers =
        buffer_writers_.data() +
        static_cast<std::size_t>(own_buffer_[u]) * words_;
    allocate = !util::SpanIntersects(writers, sig, words_);
  }
  if (allocate) footprint += own_size_[u];
  const std::int64_t step_peak = footprint;
  if (step_peak > budget) return Transition{footprint, step_peak};

  // Deallocate buffers whose last use is this node (lines 15-19): freed iff
  // touchers ⊆ scheduled ∪ {u}, tested word-wise.
  const std::size_t u_word = u >> 6;
  const std::uint64_t u_bit = std::uint64_t{1} << (u & 63);
  for (std::uint32_t f = freeable_begin_[u]; f < freeable_begin_[u + 1];
       ++f) {
    const std::uint64_t* touchers =
        touchers_arena_.data() + freeables_[f].touchers_offset;
    bool freed = true;
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t scheduled = sig[w];
      if (w == u_word) scheduled |= u_bit;
      if ((touchers[w] & ~scheduled) != 0) {
        freed = false;
        break;
      }
    }
    if (freed) footprint -= freeables_[f].size_bytes;
  }
  return Transition{footprint, step_peak};
}

}  // namespace serenity::core
