// Execution-plan persistence: the compilation artifact an edge runtime
// consumes — the node execution order plus the arena offset of every
// activation buffer. This is the single artifact that flows scheduler ->
// arena planner -> plan cache -> ArenaExecutor (runtime/arena_executor.h).
//
// Text format (versioned; see DESIGN.md "Plan text format"):
//
//   serenity-plan v2
//   plan <graph_name> <num_nodes> <arena_bytes>
//   order <id0> <id1> ...
//   place <buffer_id> <offset> <size> <first_step> <last_step>
//
// The header line names the format version; PlanFromText rejects unknown
// versions outright, so a runtime never mis-parses a plan written by a
// different serializer generation. Loading also re-validates everything an
// executor depends on — topological order, placement geometry
// (alloc::ValidatePlacements), declared-vs-derived arena size — so a
// corrupt or truncated cache file dies at load instead of executing.
#ifndef SERENITY_SERIALIZE_PLAN_H_
#define SERENITY_SERIALIZE_PLAN_H_

#include <string>

#include "alloc/arena_planner.h"
#include "graph/graph.h"
#include "sched/schedule.h"

namespace serenity::serialize {

// Bump when the text format changes shape. v1 (pre-header) files are no
// longer accepted; re-plan and re-persist.
inline constexpr int kPlanFormatVersion = 2;

struct ExecutionPlan {
  std::string graph_name;
  sched::Schedule schedule;
  alloc::ArenaPlan arena;
};

// Builds a plan for `schedule` on `graph` (plans the arena internally).
ExecutionPlan MakePlan(const graph::Graph& graph,
                       const sched::Schedule& schedule);

std::string PlanToText(const ExecutionPlan& plan);

// Parses a plan; dies on malformed, truncated, unversioned or
// wrong-version input. `graph` is used to validate the schedule (must be a
// topological order of it) and the buffer references.
ExecutionPlan PlanFromText(const std::string& text,
                           const graph::Graph& graph);

void SavePlanToFile(const ExecutionPlan& plan, const std::string& path);
ExecutionPlan LoadPlanFromFile(const std::string& path,
                               const graph::Graph& graph);

}  // namespace serenity::serialize

#endif  // SERENITY_SERIALIZE_PLAN_H_
