// Randomly wired network explorer: generate a Watts-Strogatz RandWire cell
// from command-line parameters, schedule it with SERENITY, and compare
// every baseline — the workflow of evaluating whether a candidate random
// wiring fits a target device.
//
//   $ build/examples/randwire_explorer [seed] [nodes] [channels] [dot_file]
//
// Passing a .dot path writes a Graphviz rendering of the wiring.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "models/randwire.h"
#include "sched/baselines.h"
#include "sched/schedule.h"
#include "serialize/serialize.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

double Kb(std::int64_t bytes) { return static_cast<double>(bytes) / 1024.0; }

}  // namespace

int main(int argc, char** argv) {
  serenity::models::RandWireParams params;
  params.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  params.num_nodes = argc > 2 ? std::atoi(argv[2]) : 24;
  params.channels = argc > 3 ? std::atoi(argv[3]) : 48;
  params.name = "randwire_explorer";

  const serenity::graph::Graph g = serenity::models::MakeRandWireCell(params);
  std::printf("RandWire WS(N=%d, K=%d, P=%.2f) seed=%llu: %d ops, %d "
              "edges\n\n", params.num_nodes, params.k, params.p,
              static_cast<unsigned long long>(params.seed), g.num_nodes(),
              g.num_edges());

  const struct {
    const char* name;
    serenity::sched::Schedule schedule;
  } baselines[] = {
      {"declaration order (TFLite)",
       serenity::sched::TfLiteOrderSchedule(g)},
      {"Kahn FIFO (breadth-first)", serenity::sched::KahnFifoSchedule(g)},
      {"DFS post-order", serenity::sched::DfsPostorderSchedule(g)},
      {"memory-greedy heuristic", serenity::sched::GreedyMemorySchedule(g)},
  };
  std::printf("%-28s %12s\n", "scheduler", "peak KB");
  for (const auto& baseline : baselines) {
    std::printf("%-28s %12.1f\n", baseline.name,
                Kb(serenity::sched::PeakFootprint(g, baseline.schedule)));
  }

  const auto serenity_result = serenity::core::Pipeline().Run(g);
  if (!serenity_result.success) {
    std::fprintf(stderr, "SERENITY failed: %s\n",
                 serenity_result.failure_reason.c_str());
    return 1;
  }
  std::printf("%-28s %12.1f   (optimal, %.3fs)\n", "SERENITY",
              Kb(serenity_result.peak_bytes), serenity_result.total_seconds);

  // How lucky would a random order get? (cf. paper Figure 3(b))
  serenity::util::Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) {
    samples.push_back(static_cast<double>(serenity::sched::PeakFootprint(
        g, serenity::sched::RandomTopologicalSchedule(g, rng))));
  }
  std::printf("\nrandom-schedule peak: p10 %.1f KB / median %.1f KB / p90 "
              "%.1f KB over 2000 draws\n",
              serenity::util::Percentile(samples, 10) / 1024.0,
              serenity::util::Percentile(samples, 50) / 1024.0,
              serenity::util::Percentile(samples, 90) / 1024.0);

  if (argc > 4) {
    const std::string path = argv[4];
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    const std::string dot = serenity::serialize::ToDot(g);
    std::fwrite(dot.data(), 1, dot.size(), f);
    std::fclose(f);
    std::printf("wrote wiring diagram to %s\n", path.c_str());
  }
  return 0;
}
