#include "serve/plan_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "graph/builder.h"
#include "graph/canonical_hash.h"
#include "models/zoo.h"
#include "sched/schedule.h"

namespace serenity::serve {
namespace {

core::PipelineResult PlanCell(const std::string& group,
                              const std::string& name) {
  const graph::Graph g = models::FindBenchmarkCell(group, name).factory();
  core::PipelineResult result = core::Pipeline().Run(g);
  EXPECT_TRUE(result.success);
  return result;
}

graph::GraphHash CellHash(const std::string& group,
                          const std::string& name) {
  return graph::CanonicalGraphHash(
      models::FindBenchmarkCell(group, name).factory());
}

TEST(PlanCache, MissThenHitReturnsTheInsertedPlan) {
  PlanCache cache;
  const graph::GraphHash hash = CellHash("SwiftNet HPD", "Cell C");
  EXPECT_EQ(cache.Lookup(hash), nullptr);

  core::PipelineResult result = PlanCell("SwiftNet HPD", "Cell C");
  const sched::Schedule schedule = result.schedule;
  const auto inserted = cache.Insert(hash, std::move(result));
  const auto hit = cache.Lookup(hash);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), inserted.get());
  EXPECT_EQ(hit->result.schedule, schedule);
  EXPECT_TRUE(alloc::ValidatePlacements(hit->plan.arena));

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes_in_use, inserted->bytes);
}

TEST(PlanCache, CachedPlanMatchesAFreshPipelineRunBitForBit) {
  PlanCache cache;
  const graph::Graph g =
      models::FindBenchmarkCell("SwiftNet HPD", "Cell B").factory();
  const graph::GraphHash hash = graph::CanonicalGraphHash(g);
  cache.Insert(hash, core::Pipeline().Run(g));

  const core::PipelineResult fresh = core::Pipeline().Run(g);
  const auto hit = cache.Lookup(hash);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result.schedule, fresh.schedule);
  EXPECT_EQ(hit->result.peak_bytes, fresh.peak_bytes);
  EXPECT_EQ(hit->result.states_expanded, fresh.states_expanded);
  EXPECT_EQ(hit->plan_text,
            serialize::PlanToText(serialize::MakePlan(fresh.scheduled_graph,
                                                      fresh.schedule)));
}

TEST(PlanCache, LruEvictionBoundedByBytes) {
  core::PipelineResult a = PlanCell("SwiftNet HPD", "Cell A");
  core::PipelineResult b = PlanCell("SwiftNet HPD", "Cell B");
  core::PipelineResult c = PlanCell("SwiftNet HPD", "Cell C");
  const graph::GraphHash ha = CellHash("SwiftNet HPD", "Cell A");
  const graph::GraphHash hb = CellHash("SwiftNet HPD", "Cell B");
  const graph::GraphHash hc = CellHash("SwiftNet HPD", "Cell C");

  // Budget for A plus either of B/C, but never all three: inserting C with
  // A freshly touched must evict exactly B.
  PlanCache probe;
  const std::int64_t a_bytes = probe.Insert(ha, a)->bytes;
  const std::int64_t b_bytes = probe.Insert(hb, b)->bytes;
  const std::int64_t c_bytes = probe.Insert(hc, c)->bytes;

  PlanCache cache(a_bytes + std::max(b_bytes, c_bytes));
  cache.Insert(ha, std::move(a));
  cache.Insert(hb, std::move(b));
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch A so B is least recently used, then overflow with C.
  ASSERT_NE(cache.Lookup(ha), nullptr);
  cache.Insert(hc, std::move(c));
  EXPECT_EQ(cache.Lookup(hb), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(cache.Lookup(ha), nullptr);
  EXPECT_NE(cache.Lookup(hc), nullptr);

  const PlanCacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes_in_use, stats.capacity_bytes);
}

TEST(PlanCache, SingleOversizedEntryIsRetained) {
  PlanCache cache(/*capacity_bytes=*/1);
  const graph::GraphHash hash = CellHash("SwiftNet HPD", "Cell C");
  cache.Insert(hash, PlanCell("SwiftNet HPD", "Cell C"));
  EXPECT_NE(cache.Lookup(hash), nullptr)
      << "the only entry must survive even when over budget";
}

TEST(PlanCache, ReinsertReplacesWithoutLeakingBytes) {
  PlanCache cache;
  const graph::GraphHash hash = CellHash("SwiftNet HPD", "Cell C");
  const auto first = cache.Insert(hash, PlanCell("SwiftNet HPD", "Cell C"));
  cache.Insert(hash, PlanCell("SwiftNet HPD", "Cell C"));
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.bytes_in_use, first->bytes);
}

TEST(PlanCache, EvictedEntryStaysAliveForHolders) {
  core::PipelineResult big = PlanCell("SwiftNet HPD", "Cell A");
  const graph::GraphHash ha = CellHash("SwiftNet HPD", "Cell A");
  PlanCache probe;
  const std::int64_t a_bytes = probe.Insert(ha, big)->bytes;

  PlanCache cache(a_bytes + a_bytes / 4);
  const auto held = cache.Insert(ha, std::move(big));
  cache.Insert(CellHash("SwiftNet HPD", "Cell B"),
               PlanCell("SwiftNet HPD", "Cell B"));
  EXPECT_EQ(cache.Lookup(ha), nullptr);
  // The snapshot we held across the eviction is still fully usable.
  EXPECT_TRUE(sched::IsTopologicalOrder(held->result.scheduled_graph,
                                        held->result.schedule));
}

TEST(PlanCache, PersistenceRoundTripsThroughPlanText) {
  PlanCache cache;
  // Cell A rewrites (aliasing buffers) — the harder persistence case.
  for (const char* name : {"Cell A", "Cell C"}) {
    cache.Insert(CellHash("SwiftNet HPD", name),
                 PlanCell("SwiftNet HPD", name));
  }
  const std::string path = ::testing::TempDir() + "/plan_cache.v1";
  cache.SaveToFile(path);

  PlanCache warm;
  EXPECT_EQ(warm.LoadFromFile(path), 2);
  std::remove(path.c_str());

  for (const char* name : {"Cell A", "Cell C"}) {
    const auto original = cache.Lookup(CellHash("SwiftNet HPD", name));
    const auto loaded = warm.Lookup(CellHash("SwiftNet HPD", name));
    ASSERT_NE(loaded, nullptr) << name;
    EXPECT_EQ(loaded->plan_text, original->plan_text) << name;
    EXPECT_EQ(loaded->result.schedule, original->result.schedule);
    EXPECT_EQ(loaded->result.peak_bytes, original->result.peak_bytes);
    EXPECT_EQ(loaded->result.states_expanded,
              original->result.states_expanded);
    EXPECT_EQ(loaded->result.segment_sizes, original->result.segment_sizes);
    EXPECT_EQ(loaded->result.rewrite_report.TotalPatterns(),
              original->result.rewrite_report.TotalPatterns());
    EXPECT_TRUE(loaded->result.success);
    EXPECT_TRUE(alloc::ValidatePlacements(loaded->plan.arena));
    EXPECT_EQ(loaded->plan.arena.highwater_at_step,
              original->plan.arena.highwater_at_step);
  }
  EXPECT_EQ(warm.stats().entries, 2u);
}

TEST(PlanCacheDeath, RejectsFailedResults) {
  PlanCache cache;
  core::PipelineResult failed;  // success == false
  EXPECT_DEATH(cache.Insert(graph::GraphHash{1, 2}, std::move(failed)),
               "cacheable");
}

TEST(PlanCacheDeath, RejectsCorruptCacheFiles) {
  const std::string path = ::testing::TempDir() + "/bogus_cache.v1";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not-a-cache v9 1\n", f);
  std::fclose(f);
  PlanCache cache;
  EXPECT_DEATH(cache.LoadFromFile(path), "not a plan-cache");
  std::remove(path.c_str());
}

TEST(PlanCache, StaleFormatVersionLoadsNothingInsteadOfAborting) {
  // A cache persisted by a previous serializer generation is an
  // optimization gone stale, not a fatal error: the service must start
  // cold, not wedge on the file.
  const std::string path = ::testing::TempDir() + "/stale_cache.v1";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("serenity-plan-cache v1 1\nentry deadbeef 0 0\n", f);
  std::fclose(f);
  PlanCache cache;
  EXPECT_EQ(cache.LoadFromFile(path), 0);
  EXPECT_EQ(cache.stats().entries, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace serenity::serve
