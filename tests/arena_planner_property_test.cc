// Randomized property suite pinning the interval-index arena planner to
// the seed's quadratic algorithm (`testing::ReferencePlanArena`): every
// placement field, the arena size and the per-step highwater trace must be
// bit-identical across strategies, alignments and schedules. Also pins the
// sweep-line ValidatePlacements to the quadratic pairwise check, including
// on corrupted plans.
#include "alloc/arena_planner.h"

#include <gtest/gtest.h>

#include <vector>

#include "sched/baselines.h"
#include "sched/schedule.h"
#include "testing/random_graphs.h"
#include "testing/reference_impls.h"
#include "util/rng.h"

namespace serenity::alloc {
namespace {

void ExpectPlansIdentical(const ArenaPlan& got, const ArenaPlan& want,
                          const std::string& context) {
  ASSERT_EQ(got.placements.size(), want.placements.size()) << context;
  for (std::size_t i = 0; i < got.placements.size(); ++i) {
    const BufferPlacement& g = got.placements[i];
    const BufferPlacement& w = want.placements[i];
    EXPECT_EQ(g.buffer, w.buffer) << context << " placement " << i;
    EXPECT_EQ(g.offset, w.offset) << context << " placement " << i;
    EXPECT_EQ(g.size, w.size) << context << " placement " << i;
    EXPECT_EQ(g.first_step, w.first_step) << context << " placement " << i;
    EXPECT_EQ(g.last_step, w.last_step) << context << " placement " << i;
  }
  EXPECT_EQ(got.arena_bytes, want.arena_bytes) << context;
  EXPECT_EQ(got.highwater_at_step, want.highwater_at_step) << context;
}

TEST(ArenaPlannerProperty, BitIdenticalToReferenceOnRandomGraphs) {
  util::Rng rng(2024);
  constexpr int kGraphs = 1000;
  const FitStrategy kStrategies[] = {FitStrategy::kGreedyBySize,
                                     FitStrategy::kFirstFit,
                                     FitStrategy::kBestFit};
  for (int i = 0; i < kGraphs; ++i) {
    testing::RandomDagOptions opts;
    opts.num_ops = 4 + i % 13;
    opts.max_channels = 1 + i % 5;
    opts.extra_edge_p = (i % 4) * 0.2;
    opts.join_sinks = i % 3 != 0;
    const graph::Graph g =
        testing::RandomDag(rng, opts, "prop" + std::to_string(i));
    const sched::Schedule s = (i % 2 == 0)
                                  ? sched::TfLiteOrderSchedule(g)
                                  : sched::RandomTopologicalSchedule(g, rng);
    const graph::BufferUseTable table = graph::BufferUseTable::Build(g);
    const std::int64_t alignment = (i % 3 == 0) ? 1 : 64;
    for (const FitStrategy strategy : kStrategies) {
      const ArenaPlan plan = PlanArena(g, table, s, strategy, alignment);
      const ArenaPlan ref =
          testing::ReferencePlanArena(g, table, s, strategy, alignment);
      ExpectPlansIdentical(
          plan, ref,
          "graph " + std::to_string(i) + " strategy " +
              std::to_string(static_cast<int>(strategy)));
      EXPECT_TRUE(ValidatePlacements(plan));
      if (::testing::Test::HasFailure()) return;  // one counterexample
    }
  }
}

TEST(ArenaPlannerProperty, SweepValidatorMatchesQuadratic) {
  util::Rng rng(777);
  for (int i = 0; i < 300; ++i) {
    testing::RandomDagOptions opts;
    opts.num_ops = 4 + i % 10;
    const graph::Graph g =
        testing::RandomDag(rng, opts, "val" + std::to_string(i));
    const sched::Schedule s = sched::TfLiteOrderSchedule(g);
    ArenaPlan plan = PlanArena(g, s);
    EXPECT_TRUE(ValidatePlacements(plan));
    EXPECT_TRUE(testing::ReferenceValidatePlacements(plan));
    // Corrupt offsets, sizes, arena bounds and lifetimes — including
    // degenerate inverted lifetimes (first_step > last_step) — and
    // require both validators to agree on the verdict.
    for (int c = 0; c < 10 && !plan.placements.empty(); ++c) {
      ArenaPlan bad = plan;
      const std::size_t victim = static_cast<std::size_t>(rng.NextInt(
          0, static_cast<int>(bad.placements.size()) - 1));
      switch (rng.NextInt(0, 4)) {
        case 0:
          bad.placements[victim].offset -= 1 + rng.NextInt(0, 4096);
          break;
        case 1:
          bad.placements[victim].size += 1 + rng.NextInt(0, 4096);
          break;
        case 2:
          bad.placements[victim].size -=
              bad.placements[victim].size + rng.NextInt(0, 3);
          break;
        case 3:
          std::swap(bad.placements[victim].first_step,
                    bad.placements[victim].last_step);
          bad.placements[victim].first_step += rng.NextInt(0, 6);
          break;
        default:
          bad.arena_bytes -= 1 + rng.NextInt(0, 512);
          break;
      }
      EXPECT_EQ(ValidatePlacements(bad),
                testing::ReferenceValidatePlacements(bad))
          << "graph " << i << " corruption " << c;
    }
  }
}

TEST(ArenaPlannerProperty, SweepValidatorCatchesCrossPlacementOverlap) {
  // Force a same-time overlap that is not adjacent in placement order.
  ArenaPlan plan;
  plan.arena_bytes = 300;
  plan.placements.push_back(BufferPlacement{0, 0, 100, 0, 9});
  plan.placements.push_back(BufferPlacement{1, 200, 100, 0, 9});
  plan.placements.push_back(BufferPlacement{2, 48, 100, 0, 9});
  EXPECT_FALSE(ValidatePlacements(plan));
  EXPECT_FALSE(testing::ReferenceValidatePlacements(plan));
  // Same addresses, disjoint lifetimes: valid.
  plan.placements[2].first_step = 10;
  plan.placements[2].last_step = 12;
  EXPECT_TRUE(ValidatePlacements(plan));
  EXPECT_TRUE(testing::ReferenceValidatePlacements(plan));
}

}  // namespace
}  // namespace serenity::alloc
