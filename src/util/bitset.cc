#include "util/bitset.h"

#include <algorithm>

namespace serenity::util {

std::size_t Bitset64::Count() const {
  std::size_t total = 0;
  for (std::uint64_t word : words_) {
    total += static_cast<std::size_t>(__builtin_popcountll(word));
  }
  return total;
}

bool Bitset64::None() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

bool Bitset64::IsSubsetOf(const Bitset64& other) const {
  SERENITY_CHECK_EQ(num_bits_, other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool Bitset64::Intersects(const Bitset64& other) const {
  SERENITY_CHECK_EQ(num_bits_, other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

Bitset64& Bitset64::operator|=(const Bitset64& other) {
  SERENITY_CHECK_EQ(num_bits_, other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset64& Bitset64::operator&=(const Bitset64& other) {
  SERENITY_CHECK_EQ(num_bits_, other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset64& Bitset64::operator^=(const Bitset64& other) {
  SERENITY_CHECK_EQ(num_bits_, other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

std::vector<std::size_t> Bitset64::ToIndices() const {
  std::vector<std::size_t> indices;
  indices.reserve(Count());
  ForEachSetBit([&indices](std::size_t i) { indices.push_back(i); });
  return indices;
}

std::size_t Bitset64::Hash() const {
  return SpanHash(words_.data(), words_.size());
}

}  // namespace serenity::util
