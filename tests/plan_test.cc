#include "serialize/plan.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/pipeline.h"
#include "graph/builder.h"
#include "models/swiftnet.h"
#include "sched/baselines.h"

namespace serenity::serialize {
namespace {

ExecutionPlan SwiftNetPlan() {
  const graph::Graph g = models::MakeSwiftNet();
  const core::PipelineResult r = core::Pipeline().Run(g);
  return MakePlan(r.scheduled_graph, r.schedule);
}

// Strips the trailing crc record from serialized plan text so a test can
// tamper with the body, then re-stamps the checksum. This keeps the
// corruption tests aimed at the *structural* validators — without the
// re-stamp every edit would (correctly) die at the integrity gate instead.
std::string Restamped(std::string text) {
  const std::size_t at = text.rfind("\ncrc ");
  EXPECT_NE(at, std::string::npos);
  text.resize(at + 1);
  return AppendPlanChecksum(text);
}

TEST(Plan, RoundTripsExactly) {
  const graph::Graph g = models::MakeSwiftNet();
  const core::PipelineResult r = core::Pipeline().Run(g);
  const ExecutionPlan plan = MakePlan(r.scheduled_graph, r.schedule);
  const util::StatusOr<ExecutionPlan> parsed =
      PlanFromText(PlanToText(plan), r.scheduled_graph);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ExecutionPlan& back = parsed.value();
  EXPECT_EQ(back.graph_name, plan.graph_name);
  EXPECT_EQ(back.schedule, plan.schedule);
  EXPECT_EQ(back.arena.arena_bytes, plan.arena.arena_bytes);
  ASSERT_EQ(back.arena.placements.size(), plan.arena.placements.size());
  for (std::size_t i = 0; i < plan.arena.placements.size(); ++i) {
    EXPECT_EQ(back.arena.placements[i].buffer,
              plan.arena.placements[i].buffer);
    EXPECT_EQ(back.arena.placements[i].offset,
              plan.arena.placements[i].offset);
    EXPECT_EQ(back.arena.placements[i].size, plan.arena.placements[i].size);
  }
  EXPECT_EQ(back.arena.highwater_at_step, plan.arena.highwater_at_step);
}

TEST(Plan, FileRoundTrip) {
  const graph::Graph g = models::MakeSwiftNet();
  const sched::Schedule s = sched::TfLiteOrderSchedule(g);
  const ExecutionPlan plan = MakePlan(g, s);
  const std::string path = ::testing::TempDir() + "/swiftnet.plan";
  ASSERT_TRUE(SavePlanToFile(plan, path).ok());
  const util::StatusOr<ExecutionPlan> back = LoadPlanFromFile(path, g);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().schedule, plan.schedule);
  EXPECT_EQ(back.value().arena.arena_bytes, plan.arena.arena_bytes);
  std::remove(path.c_str());
}

TEST(Plan, LoadMissingFileIsNotFound) {
  const graph::Graph g = models::MakeSwiftNet();
  const util::StatusOr<ExecutionPlan> missing =
      LoadPlanFromFile(::testing::TempDir() + "/no-such.plan", g);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

TEST(Plan, LoadedPlacementsStillNonOverlapping) {
  const ExecutionPlan plan = SwiftNetPlan();
  const graph::Graph g = models::MakeSwiftNet();
  const core::PipelineResult r = core::Pipeline().Run(g);
  const util::StatusOr<ExecutionPlan> back =
      PlanFromText(PlanToText(plan), r.scheduled_graph);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(alloc::ValidatePlacements(back.value().arena));
}

TEST(Plan, RejectsPlansForOtherGraphs) {
  const ExecutionPlan plan = SwiftNetPlan();
  graph::GraphBuilder b("other");
  const graph::NodeId in = b.Input(graph::TensorShape{1, 4, 4, 2}, "in");
  (void)b.Relu(in, "out");
  const graph::Graph other = std::move(b).Build();
  const util::StatusOr<ExecutionPlan> parsed =
      PlanFromText(PlanToText(plan), other);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("different graph"),
            std::string::npos);
}

TEST(Plan, TextStartsWithVersionHeader) {
  const ExecutionPlan plan = SwiftNetPlan();
  const std::string text = PlanToText(plan);
  EXPECT_EQ(text.rfind("serenity-plan v3\n", 0), 0u) << text.substr(0, 40);
}

TEST(Plan, TextEndsWithChecksumRecord) {
  const std::string text = PlanToText(SwiftNetPlan());
  ASSERT_GE(text.size(), 13u);
  const std::string record = text.substr(text.size() - 13);
  EXPECT_EQ(record.rfind("crc ", 0), 0u) << record;
  EXPECT_EQ(record.back(), '\n');
}

TEST(Plan, RejectsCorruptedArenaSize) {
  const graph::Graph g = models::MakeSwiftNet();
  const ExecutionPlan plan = MakePlan(g, sched::TfLiteOrderSchedule(g));
  std::string text = PlanToText(plan);
  // Tamper with the declared arena size (last token of the plan record;
  // "\nplan " skips the "serenity-plan v3" header).
  const std::size_t plan_at = text.find("\nplan ") + 1;
  const std::size_t line_end = text.find('\n', plan_at);
  const std::size_t value_at = text.rfind(' ', line_end) + 1;
  text.replace(value_at, line_end - value_at, "12345");
  const util::StatusOr<ExecutionPlan> parsed =
      PlanFromText(Restamped(text), g);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("disagrees"), std::string::npos);
}

TEST(Plan, RejectsMissingVersionHeader) {
  const graph::Graph g = models::MakeSwiftNet();
  const ExecutionPlan plan = MakePlan(g, sched::TfLiteOrderSchedule(g));
  std::string text = PlanToText(plan);
  text.erase(0, text.find('\n') + 1);  // drop the header line
  const util::StatusOr<ExecutionPlan> parsed =
      PlanFromText(Restamped(text), g);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("missing format header"),
            std::string::npos);
}

TEST(Plan, RejectsUnknownFormatVersion) {
  const graph::Graph g = models::MakeSwiftNet();
  const ExecutionPlan plan = MakePlan(g, sched::TfLiteOrderSchedule(g));
  std::string text = PlanToText(plan);
  const std::size_t at = text.find("v3");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 2, "v7");
  const util::StatusOr<ExecutionPlan> parsed =
      PlanFromText(Restamped(text), g);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(parsed.status().message().find("unsupported plan format version"),
            std::string::npos);
}

TEST(Plan, RejectsTruncatedOrder) {
  const graph::Graph g = models::MakeSwiftNet();
  const ExecutionPlan plan = MakePlan(g, sched::TfLiteOrderSchedule(g));
  std::string text = PlanToText(plan);
  // Cut the order line short: the declared node count no longer matches.
  const std::size_t order_at = text.find("order");
  const std::size_t order_end = text.find('\n', order_at);
  const std::size_t cut = text.rfind(' ', order_end);
  text.erase(cut, order_end - cut);
  const util::StatusOr<ExecutionPlan> parsed =
      PlanFromText(Restamped(text), g);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("order lists"), std::string::npos);
}

TEST(Plan, RejectsPlacementForUnusedBuffer) {
  // A spurious extra place record for a buffer no node touches would
  // silently inflate the arena (nothing ever writes those bytes); it must
  // be rejected at load like every other corruption.
  graph::GraphBuilder b("spurious");
  const graph::NodeId in = b.Input(graph::TensorShape{1, 4, 4, 2}, "in");
  (void)b.Relu(in, "out");
  graph::Graph g = std::move(b).Build();
  const graph::BufferId orphan = g.AddBuffer(64);
  ExecutionPlan plan = MakePlan(g, sched::TfLiteOrderSchedule(g));
  plan.arena.placements.push_back(
      alloc::BufferPlacement{orphan, plan.arena.arena_bytes, 64, 0, 0});
  plan.arena.arena_bytes += 64;
  const util::StatusOr<ExecutionPlan> parsed =
      PlanFromText(PlanToText(plan), g);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("no node uses"),
            std::string::npos);
}

TEST(Plan, RejectsInvalidScheduleOrder) {
  const graph::Graph g = models::MakeSwiftNet();
  const ExecutionPlan plan = MakePlan(g, sched::TfLiteOrderSchedule(g));
  std::string text = PlanToText(plan);
  // Reverse two adjacent ids in the order line (breaking a dependency).
  const std::size_t order_at = text.find("order 0 1");
  ASSERT_NE(order_at, std::string::npos);
  text.replace(order_at, 9, "order 1 0");
  const util::StatusOr<ExecutionPlan> parsed =
      PlanFromText(Restamped(text), g);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("not a valid order"),
            std::string::npos);
}

TEST(Plan, RejectsBitFlipWithoutRestamp) {
  // The same arena-size tamper *without* re-stamping the checksum dies at
  // the integrity gate — a mutated artifact can never be silently parsed.
  const graph::Graph g = models::MakeSwiftNet();
  const ExecutionPlan plan = MakePlan(g, sched::TfLiteOrderSchedule(g));
  std::string text = PlanToText(plan);
  const std::size_t plan_at = text.find("\nplan ") + 1;
  text[plan_at + 8] ^= 0x01;
  const util::StatusOr<ExecutionPlan> parsed = PlanFromText(text, g);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kDataLoss);
}

TEST(Plan, RejectsMissingChecksumRecord) {
  const graph::Graph g = models::MakeSwiftNet();
  const ExecutionPlan plan = MakePlan(g, sched::TfLiteOrderSchedule(g));
  std::string text = PlanToText(plan);
  text.resize(text.rfind("\ncrc ") + 1);  // drop the crc record entirely
  const util::StatusOr<ExecutionPlan> parsed = PlanFromText(text, g);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kDataLoss);
  EXPECT_NE(parsed.status().message().find("crc"), std::string::npos);
}

TEST(Plan, AtomicWriteLeavesNoTempFile) {
  const std::string path = ::testing::TempDir() + "/atomic.plan";
  const ExecutionPlan plan = SwiftNetPlan();
  ASSERT_TRUE(SavePlanToFile(plan, path).ok());
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr) << "temporary staging file left behind";
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace serenity::serialize
