#include "core/dp_scheduler.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/state_store.h"
#include "graph/analysis.h"
#include "testing/fault_injection.h"
#include "util/bitset.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace serenity::core {

const char* ToString(DpStatus status) {
  switch (status) {
    case DpStatus::kSolution:
      return "solution";
    case DpStatus::kNoSolution:
      return "no solution";
    case DpStatus::kTimeout:
      return "timeout";
    case DpStatus::kResourceExhausted:
      return "resource exhausted";
    case DpStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace {

// StateLevel::ShardOf derives the shard from the top 6 hash bits, so at
// most 64 shards can ever be populated; clamp thread/shard counts there.
constexpr int kMaxShards = 64;

int ShardCountFor(int num_threads) {
  int shards = 1;
  while (shards < num_threads && shards < kMaxShards) shards <<= 1;
  return shards;
}

class DpRunner {
 public:
  DpRunner(const graph::Graph& graph, const DpOptions& options)
      : options_(options),
        tables_(ExpansionTables::Build(graph)),
        hasher_(static_cast<std::size_t>(graph.num_nodes())),
        num_nodes_(static_cast<std::size_t>(graph.num_nodes())),
        words_(tables_.words_per_state()),
        bound_pruning_(options.incumbent_bytes != kNoBudget),
        incumbent_(options.incumbent_bytes),
        step_limit_(std::min(options.budget_bytes, options.incumbent_bytes)),
        cancel_(options.cancel),
        reservation_(options.memory_budget) {}

  DpResult Run() {
    util::Stopwatch total_clock;
    DpResult result;
    recon_.resize(num_nodes_ + 1);

    // Fixed overhead of the run: graph-side expansion tables plus the two
    // Zobrist key streams. Charged up front so a budget below even the
    // constants fails before any level is built.
    fixed_bytes_ = tables_.ResidentBytes() +
                   static_cast<std::int64_t>(2 * num_nodes_ * 8);
    if (!reservation_.EnsureAtLeast(fixed_bytes_)) {
      result.status = DpStatus::kResourceExhausted;
      return Finish(result, total_clock);
    }

    const int configured =
        std::min(std::max(1, options_.num_threads), kMaxShards);
    // Adaptive mode: the thread pool a big level may escalate to. Derived
    // from the hardware once; whether a given level uses it is decided from
    // that level's reserve hint below.
    int auto_threads = 1;
    if (configured == 1 && options_.adaptive_parallelism) {
      auto_threads = std::min<int>(
          kMaxShards,
          std::max<int>(1, static_cast<int>(
                               std::thread::hardware_concurrency())));
    }

    // Level 0: the empty schedule (Algorithm 1 lines 4-5).
    StateLevel current;
    current.Init(words_, 1, 1);
    const std::vector<std::uint64_t> empty(words_, 0);
    current.InsertOrRelax(empty.data(), SignatureHasher::kEmptyHash, 0, 0,
                          0, -1, -1);
    current.Seal();

    for (std::size_t i = 0; i < num_nodes_; ++i) {
      util::Stopwatch level_clock;
      if (current.size() == 0) {
        // Every prefix of length i was pruned: the budget is below µ*.
        // (Bound pruning alone cannot empty a level — states on an optimal
        // path never exceed a valid incumbent.)
        result.status = DpStatus::kNoSolution;
        result.levels_completed = static_cast<int>(i);
        return Finish(result, total_clock);
      }
      if (CancelRequested()) {
        result.status = DpStatus::kCancelled;
        result.levels_completed = static_cast<int>(i);
        return Finish(result, total_clock);
      }
      const std::size_t hint =
          NextLevelReserveHint(current.size(), options_.max_states);
      int level_threads = configured;
      if (configured == 1 && auto_threads > 1 &&
          hint >= options_.parallel_threshold_states) {
        level_threads = auto_threads;
      }
      const int level_shards =
          level_threads > 1 ? ShardCountFor(level_threads) : 1;
      // Charge the next level's reserve before it allocates. The estimate
      // mirrors Init's reserve math exactly, so a successful charge means
      // Init itself stays within the reservation.
      if (!EnsureResident(current.ResidentBytes() +
                          StateLevel::EstimateBytes(words_, hint,
                                                    level_shards))) {
        result.status = DpStatus::kResourceExhausted;
        result.levels_completed = static_cast<int>(i);
        return Finish(result, total_clock);
      }
      StateLevel next;
      next.Init(words_, hint, level_shards);
      const bool last_level = i + 1 == num_nodes_;
      // Lookahead gate: the frontier-alloc probes (lb1 + two-step) pay for
      // themselves only on memory-tight graphs. Probe by default, back off
      // after two consecutive zero-yield levels, and re-probe every 8th
      // level so late-graph tightness is rediscovered. The gate state is a
      // pure function of per-level totals, so it is identical across
      // thread counts.
      const bool lookahead = bound_pruning_ &&
                             (lookahead_zero_streak_ < 2 || (i & 7) == 0);
      level_lookahead_prunes_ = 0;
      const bool completed =
          level_threads > 1
              ? ExpandLevelSharded(current, next, level_threads, last_level,
                                   lookahead, level_clock)
              : ExpandLevel(current, next, last_level, lookahead,
                            level_clock);
      if (lookahead) {
        lookahead_zero_streak_ =
            level_lookahead_prunes_ == 0 ? lookahead_zero_streak_ + 1 : 0;
      }
      if (!completed ||
          level_clock.ElapsedSeconds() > options_.step_timeout_seconds) {
        result.status = completed ? DpStatus::kTimeout : AbortStatus();
        result.levels_completed = static_cast<int>(i);
        return Finish(result, total_clock);
      }
      next.Seal();
      max_level_states_ =
          std::max(max_level_states_,
                   static_cast<std::uint64_t>(next.size()));
      // The finished level keeps only its 8-byte reconstruction records;
      // signatures, hashes, footprints and peaks are freed here.
      recon_[i] = current.TakeReconAndRelease();
      recon_bytes_ += static_cast<std::int64_t>(recon_[i].capacity() *
                                                sizeof(ReconRecord));
      current = std::move(next);
      result.levels_completed = static_cast<int>(i) + 1;
    }

    if (current.size() == 0) {
      result.status = DpStatus::kNoSolution;
    } else {
      // A DAG has exactly one full signature (Algorithm 1 line 27).
      SERENITY_CHECK_EQ(current.size(), 1u);
      result.status = DpStatus::kSolution;
      result.peak_bytes = current.peak(0);
      recon_[num_nodes_] = current.TakeReconAndRelease();
      result.schedule = Reconstruct();
    }
    return Finish(result, total_clock);
  }

 private:
  // Why an expansion returned false. kTimeout keeps its historical meaning
  // (step timeout or state cap); memory and cancellation get their own
  // statuses so the pipeline can degrade or unwind accordingly.
  enum class Abort { kTimeout, kMemory, kCancelled };

  DpResult Finish(DpResult result, const util::Stopwatch& clock) const {
    result.states_expanded = states_expanded_;
    result.transitions = transitions_;
    result.states_pruned_by_bound = states_pruned_by_bound_;
    result.max_level_states = max_level_states_;
    result.seconds = clock.ElapsedSeconds();
    return result;
  }

  DpStatus AbortStatus() const {
    switch (abort_) {
      case Abort::kMemory: return DpStatus::kResourceExhausted;
      case Abort::kCancelled: return DpStatus::kCancelled;
      case Abort::kTimeout: break;
    }
    return DpStatus::kTimeout;
  }

  // Sticky cancellation poll. The kCancelPoll fault is consulted only when
  // a token is attached (a cancellable context), so runs without one are
  // immune to an armed countdown; sticky because the one-shot fault cannot
  // re-fire on the next poll. Thread-safe: workers of a sharded level poll
  // it concurrently.
  bool CancelRequested() {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (cancel_ == nullptr) return false;
    if (cancel_->cancelled() ||
        testing::FaultTriggered(testing::FaultPoint::kCancelPoll)) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  // Grows the run's high-water reservation to cover the state store's
  // current resident bytes (plus the fixed overhead and the accumulated
  // reconstruction records). Monotone: completed-level transients are
  // dropped eagerly but the reservation keeps the run's peak until the
  // whole run ends — the budget governs peaks, not instantaneous usage.
  bool EnsureResident(std::int64_t store_bytes) {
    return reservation_.EnsureAtLeast(fixed_bytes_ + recon_bytes_ +
                                      store_bytes);
  }

  // Sequential expansion of one level (Algorithm 1 lines 9-24, plus the
  // branch-and-bound cut of DESIGN.md). Returns false on step timeout or
  // state-cap overrun.
  bool ExpandLevel(const StateLevel& current, StateLevel& next,
                   bool last_level, bool lookahead,
                   const util::Stopwatch& level_clock) {
    std::vector<std::int32_t> frontier;
    std::vector<std::uint64_t> child(words_);
    ExpansionTables::FrontierAllocs allocs;
    ExpansionTables::TwoStepScratch scratch;
    for (std::size_t s = 0; s < current.size(); ++s) {
      if ((s & 0x3f) == 0 && s != 0 &&
          !CheckLimits(current, next, level_clock)) {
        return false;
      }
      const std::uint64_t* sig = current.signature(s);
      const std::int64_t peak = current.peak(s);
      const std::int64_t footprint = current.footprint(s);
      frontier.clear();
      std::int64_t residual = 0;
      tables_.AppendFrontier(sig, &frontier,
                             bound_pruning_ ? &residual : nullptr);
      if (bound_pruning_ && std::max(peak, residual) > incumbent_) {
        // Every completion of this state peaks above a schedule we already
        // hold: cut the whole subtree before expanding a single child.
        ++states_pruned_by_bound_;
        continue;
      }
      if (lookahead) {
        tables_.ComputeFrontierAllocs(sig, frontier, &allocs);
        if (allocs.min1 != ExpansionTables::kNoAlloc &&
            footprint + allocs.min1 > incumbent_) {
          // One-step lookahead on the parent: whatever runs next peaks
          // above the incumbent.
          ++states_pruned_by_bound_;
          ++level_lookahead_prunes_;
          continue;
        }
      }
      const std::uint64_t hash = current.hash(s);
      for (const std::int32_t u : frontier) {
        ++transitions_;
        // Re-check the limits every ~4096 transitions so a single
        // pathological state expansion cannot overshoot them unboundedly.
        if ((transitions_ & 0xfff) == 0 &&
            !CheckLimits(current, next, level_clock)) {
          return false;
        }
        const ExpansionTables::Transition t =
            tables_.Apply(sig, u, footprint, step_limit_);
        if (t.step_peak > options_.budget_bytes) continue;  // prune (§3.2)
        if (t.step_peak > incumbent_) {
          ++states_pruned_by_bound_;
          continue;
        }
        std::copy(sig, sig + words_, child.data());
        util::SpanSetBit(child.data(), static_cast<std::size_t>(u));
        if (lookahead && !last_level) {
          // Child lookahead, cheap pass first: whatever the child schedules
          // next must peak at least child footprint + its frontier's min
          // alloc; if that survives, the exact two-step probe checks that
          // some (next, next-next) start stays under the incumbent. Both
          // are admissible and pure functions of the child signature, so
          // every duplicate candidate agrees and relax winners (hence the
          // reconstructed schedule) are preserved.
          const std::int64_t floor =
              tables_.ChildNextAllocFloor(child.data(), u, allocs);
          if ((floor != ExpansionTables::kNoAlloc &&
               t.footprint + floor > incumbent_) ||
              tables_.ChildTwoStepExceeds(child.data(), t.footprint, u,
                                          frontier, incumbent_,
                                          &scratch)) {
            ++states_pruned_by_bound_;
            ++level_lookahead_prunes_;
            continue;
          }
        }
        if (next.InsertOrRelax(child.data(), hash ^ hasher_.key(
                                   static_cast<std::size_t>(u)),
                               t.footprint, std::max(peak, t.step_peak),
                               hasher_.candidate_tie(
                                   hash, static_cast<std::size_t>(u)),
                               static_cast<std::int32_t>(s), u)) {
          ++states_expanded_;
        }
      }
      if (states_expanded_ > options_.max_states) {
        abort_ = Abort::kTimeout;
        return false;
      }
    }
    return true;
  }

  // The sequential per-cadence limit probe: step timeout (and state cap,
  // checked per parent below) stay kTimeout; cancellation and a denied
  // budget true-up get their own abort reasons.
  bool CheckLimits(const StateLevel& current, const StateLevel& next,
                   const util::Stopwatch& level_clock) {
    if (level_clock.ElapsedSeconds() > options_.step_timeout_seconds) {
      abort_ = Abort::kTimeout;
      return false;
    }
    if (CancelRequested()) {
      abort_ = Abort::kCancelled;
      return false;
    }
    if (!EnsureResident(current.ResidentBytes() + next.ResidentBytes())) {
      abort_ = Abort::kMemory;
      return false;
    }
    return true;
  }

  // Sharded parallel expansion: every thread scans the whole parent level
  // (the frontier recomputation is duplicated — it is cheap) but computes
  // and inserts only the transitions whose child hash falls in its shards,
  // so each sub-table has exactly one writer and per-shard insertion order
  // is the same ascending (state, node) order regardless of scheduling —
  // the determinism argument in DESIGN.md. Bound pruning is a pure
  // function of the parent state and the transition, so every thread skips
  // the same parents and transitions; the pruned counter attributes each
  // skipped parent to one thread (s % num_threads) and each pruned
  // transition to its shard owner, keeping the total independent of the
  // thread count.
  bool ExpandLevelSharded(const StateLevel& current, StateLevel& next,
                          int num_threads, bool last_level, bool lookahead,
                          const util::Stopwatch& level_clock) {
    std::atomic<bool> abort{false};
    std::atomic<int> abort_reason{-1};  // first aborting worker's Abort
    std::atomic<std::uint64_t> transitions{0};
    std::atomic<std::uint64_t> created{0};
    std::atomic<std::uint64_t> pruned{0};
    std::atomic<std::uint64_t> lookahead_pruned{0};
    auto request_abort = [&](Abort reason) {
      int expected = -1;
      abort_reason.compare_exchange_strong(expected,
                                           static_cast<int>(reason),
                                           std::memory_order_relaxed);
      abort.store(true, std::memory_order_relaxed);
    };
    auto worker = [&](int thread_index) {
      std::vector<std::int32_t> frontier;
      std::vector<std::uint64_t> child(words_);
      ExpansionTables::FrontierAllocs allocs;
      ExpansionTables::TwoStepScratch scratch;
      std::uint64_t local_transitions = 0;
      std::uint64_t local_created = 0;
      std::uint64_t local_pruned = 0;
      std::uint64_t local_lookahead_pruned = 0;
      std::uint64_t since_check = 0;
      for (std::size_t s = 0; s < current.size(); ++s) {
        if (abort.load(std::memory_order_relaxed)) break;
        const std::uint64_t* sig = current.signature(s);
        const std::int64_t peak = current.peak(s);
        const std::int64_t footprint = current.footprint(s);
        frontier.clear();
        std::int64_t residual = 0;
        tables_.AppendFrontier(sig, &frontier,
                               bound_pruning_ ? &residual : nullptr);
        const bool owns_parent =
            static_cast<int>(s % static_cast<std::size_t>(num_threads)) ==
            thread_index;
        if (bound_pruning_ && std::max(peak, residual) > incumbent_) {
          if (owns_parent) ++local_pruned;
          continue;
        }
        if (lookahead) {
          tables_.ComputeFrontierAllocs(sig, frontier, &allocs);
          if (allocs.min1 != ExpansionTables::kNoAlloc &&
              footprint + allocs.min1 > incumbent_) {
            if (owns_parent) {
              ++local_pruned;
              ++local_lookahead_pruned;
            }
            continue;
          }
        }
        const std::uint64_t hash = current.hash(s);
        for (const std::int32_t u : frontier) {
          const std::uint64_t child_hash =
              hash ^ hasher_.key(static_cast<std::size_t>(u));
          if (next.ShardOf(child_hash) % num_threads != thread_index) {
            continue;  // another thread owns this child's shard
          }
          ++local_transitions;
          if ((++since_check & 0xfff) == 0) {
            // Publish this worker's states before checking the cap, so the
            // cap is enforced *within* a level (overshoot is bounded by
            // ~4096 transitions per thread, matching the sequential path's
            // granularity) rather than only after it is fully materialized.
            created.fetch_add(local_created, std::memory_order_relaxed);
            local_created = 0;
            if (level_clock.ElapsedSeconds() >
                    options_.step_timeout_seconds ||
                states_expanded_ + created.load(std::memory_order_relaxed) >
                    options_.max_states) {
              request_abort(Abort::kTimeout);
              break;
            }
            // Budget true-ups wait for the level boundary (a worker cannot
            // read sibling shards' capacities while they grow), but
            // cancellation is just an atomic poll.
            if (CancelRequested()) {
              request_abort(Abort::kCancelled);
              break;
            }
          }
          const ExpansionTables::Transition t =
              tables_.Apply(sig, u, footprint, step_limit_);
          if (t.step_peak > options_.budget_bytes) continue;
          if (t.step_peak > incumbent_) {
            ++local_pruned;
            continue;
          }
          std::copy(sig, sig + words_, child.data());
          util::SpanSetBit(child.data(), static_cast<std::size_t>(u));
          if (lookahead && !last_level) {
            const std::int64_t floor = tables_.ChildNextAllocFloor(
                child.data(), u, allocs);
            if ((floor != ExpansionTables::kNoAlloc &&
                 t.footprint + floor > incumbent_) ||
                tables_.ChildTwoStepExceeds(child.data(), t.footprint, u,
                                            frontier, incumbent_,
                                            &scratch)) {
              ++local_pruned;
              ++local_lookahead_pruned;
              continue;
            }
          }
          if (next.InsertOrRelax(child.data(), child_hash, t.footprint,
                                 std::max(peak, t.step_peak),
                                 hasher_.candidate_tie(
                                   hash, static_cast<std::size_t>(u)),
                                 static_cast<std::int32_t>(s), u)) {
            ++local_created;
          }
        }
      }
      transitions.fetch_add(local_transitions, std::memory_order_relaxed);
      created.fetch_add(local_created, std::memory_order_relaxed);
      pruned.fetch_add(local_pruned, std::memory_order_relaxed);
      lookahead_pruned.fetch_add(local_lookahead_pruned,
                                 std::memory_order_relaxed);
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
    for (std::thread& t : threads) t.join();
    transitions_ += transitions.load();
    states_expanded_ += created.load();
    states_pruned_by_bound_ += pruned.load();
    level_lookahead_prunes_ += lookahead_pruned.load();
    if (abort.load()) {
      abort_ = static_cast<Abort>(abort_reason.load());
      return false;
    }
    if (states_expanded_ > options_.max_states) {
      abort_ = Abort::kTimeout;
      return false;
    }
    return true;
  }

  sched::Schedule Reconstruct() const {
    sched::Schedule schedule(num_nodes_, graph::kInvalidNode);
    std::int32_t index = 0;
    for (std::size_t i = num_nodes_; i > 0; --i) {
      const ReconRecord& record =
          recon_[i][static_cast<std::size_t>(index)];
      schedule[i - 1] = static_cast<graph::NodeId>(record.last_node);
      index = record.prev_index;
    }
    return schedule;
  }

  const DpOptions options_;
  const ExpansionTables tables_;
  const SignatureHasher hasher_;
  const std::size_t num_nodes_;
  const std::size_t words_;
  const bool bound_pruning_;
  const std::int64_t incumbent_;
  // Transitions peaking above min(τ, incumbent) are dead either way, so
  // Apply may skip their free scan.
  const std::int64_t step_limit_;
  const util::CancelToken* const cancel_;
  // High-water byte reservation against options_.memory_budget; refunded
  // in full when the runner is destroyed.
  util::BudgetReservation reservation_;
  std::int64_t fixed_bytes_ = 0;
  std::int64_t recon_bytes_ = 0;
  std::atomic<bool> cancelled_{false};
  Abort abort_ = Abort::kTimeout;
  std::vector<std::vector<ReconRecord>> recon_;
  std::uint64_t states_expanded_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t states_pruned_by_bound_ = 0;
  std::uint64_t max_level_states_ = 0;
  // Lookahead gate state (see Run); level_lookahead_prunes_ is reset per
  // level and aggregated after a sharded level joins.
  std::uint64_t level_lookahead_prunes_ = 0;
  int lookahead_zero_streak_ = 0;
};

}  // namespace

DpResult ScheduleDp(const graph::Graph& graph, const DpOptions& options) {
  SERENITY_CHECK_GT(graph.num_nodes(), 0) << "cannot schedule an empty graph";
  return DpRunner(graph, options).Run();
}

}  // namespace serenity::core
