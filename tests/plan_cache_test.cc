#include "serve/plan_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "graph/builder.h"
#include "graph/canonical_hash.h"
#include "models/zoo.h"
#include "sched/schedule.h"
#include "testing/fault_injection.h"

namespace serenity::serve {
namespace {

core::PipelineResult PlanCell(const std::string& group,
                              const std::string& name) {
  const graph::Graph g = models::FindBenchmarkCell(group, name).factory();
  core::PipelineResult result = core::Pipeline().Run(g);
  EXPECT_TRUE(result.success);
  return result;
}

graph::GraphHash CellHash(const std::string& group,
                          const std::string& name) {
  return graph::CanonicalGraphHash(
      models::FindBenchmarkCell(group, name).factory());
}

TEST(PlanCache, MissThenHitReturnsTheInsertedPlan) {
  PlanCache cache;
  const graph::GraphHash hash = CellHash("SwiftNet HPD", "Cell C");
  EXPECT_EQ(cache.Lookup(hash), nullptr);

  core::PipelineResult result = PlanCell("SwiftNet HPD", "Cell C");
  const sched::Schedule schedule = result.schedule;
  const auto inserted = cache.Insert(hash, std::move(result));
  const auto hit = cache.Lookup(hash);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), inserted.get());
  EXPECT_EQ(hit->result.schedule, schedule);
  EXPECT_TRUE(alloc::ValidatePlacements(hit->plan.arena));

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes_in_use, inserted->bytes);
}

TEST(PlanCache, CachedPlanMatchesAFreshPipelineRunBitForBit) {
  PlanCache cache;
  const graph::Graph g =
      models::FindBenchmarkCell("SwiftNet HPD", "Cell B").factory();
  const graph::GraphHash hash = graph::CanonicalGraphHash(g);
  cache.Insert(hash, core::Pipeline().Run(g));

  const core::PipelineResult fresh = core::Pipeline().Run(g);
  const auto hit = cache.Lookup(hash);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result.schedule, fresh.schedule);
  EXPECT_EQ(hit->result.peak_bytes, fresh.peak_bytes);
  EXPECT_EQ(hit->result.states_expanded, fresh.states_expanded);
  EXPECT_EQ(hit->plan_text,
            serialize::PlanToText(serialize::MakePlan(fresh.scheduled_graph,
                                                      fresh.schedule)));
}

TEST(PlanCache, LruEvictionBoundedByBytes) {
  core::PipelineResult a = PlanCell("SwiftNet HPD", "Cell A");
  core::PipelineResult b = PlanCell("SwiftNet HPD", "Cell B");
  core::PipelineResult c = PlanCell("SwiftNet HPD", "Cell C");
  const graph::GraphHash ha = CellHash("SwiftNet HPD", "Cell A");
  const graph::GraphHash hb = CellHash("SwiftNet HPD", "Cell B");
  const graph::GraphHash hc = CellHash("SwiftNet HPD", "Cell C");

  // Budget for A plus either of B/C, but never all three: inserting C with
  // A freshly touched must evict exactly B.
  PlanCache probe;
  const std::int64_t a_bytes = probe.Insert(ha, a)->bytes;
  const std::int64_t b_bytes = probe.Insert(hb, b)->bytes;
  const std::int64_t c_bytes = probe.Insert(hc, c)->bytes;

  PlanCache cache(a_bytes + std::max(b_bytes, c_bytes));
  cache.Insert(ha, std::move(a));
  cache.Insert(hb, std::move(b));
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch A so B is least recently used, then overflow with C.
  ASSERT_NE(cache.Lookup(ha), nullptr);
  cache.Insert(hc, std::move(c));
  EXPECT_EQ(cache.Lookup(hb), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(cache.Lookup(ha), nullptr);
  EXPECT_NE(cache.Lookup(hc), nullptr);

  const PlanCacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes_in_use, stats.capacity_bytes);
}

TEST(PlanCache, SingleOversizedEntryIsRetained) {
  PlanCache cache(/*capacity_bytes=*/1);
  const graph::GraphHash hash = CellHash("SwiftNet HPD", "Cell C");
  cache.Insert(hash, PlanCell("SwiftNet HPD", "Cell C"));
  EXPECT_NE(cache.Lookup(hash), nullptr)
      << "the only entry must survive even when over budget";
}

TEST(PlanCache, ReinsertReplacesWithoutLeakingBytes) {
  PlanCache cache;
  const graph::GraphHash hash = CellHash("SwiftNet HPD", "Cell C");
  const auto first = cache.Insert(hash, PlanCell("SwiftNet HPD", "Cell C"));
  cache.Insert(hash, PlanCell("SwiftNet HPD", "Cell C"));
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.bytes_in_use, first->bytes);
}

TEST(PlanCache, EvictedEntryStaysAliveForHolders) {
  core::PipelineResult big = PlanCell("SwiftNet HPD", "Cell A");
  const graph::GraphHash ha = CellHash("SwiftNet HPD", "Cell A");
  PlanCache probe;
  const std::int64_t a_bytes = probe.Insert(ha, big)->bytes;

  PlanCache cache(a_bytes + a_bytes / 4);
  const auto held = cache.Insert(ha, std::move(big));
  cache.Insert(CellHash("SwiftNet HPD", "Cell B"),
               PlanCell("SwiftNet HPD", "Cell B"));
  EXPECT_EQ(cache.Lookup(ha), nullptr);
  // The snapshot we held across the eviction is still fully usable.
  EXPECT_TRUE(sched::IsTopologicalOrder(held->result.scheduled_graph,
                                        held->result.schedule));
}

TEST(PlanCache, PersistenceRoundTripsThroughPlanText) {
  PlanCache cache;
  // Cell A rewrites (aliasing buffers) — the harder persistence case.
  for (const char* name : {"Cell A", "Cell C"}) {
    cache.Insert(CellHash("SwiftNet HPD", name),
                 PlanCell("SwiftNet HPD", name));
  }
  const std::string path = ::testing::TempDir() + "/plan_cache.v1";
  ASSERT_TRUE(cache.SaveToFile(path).ok());

  PlanCache warm;
  const util::StatusOr<CacheLoadReport> report = warm.LoadFromFile(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().entries_loaded, 2);
  EXPECT_EQ(report.value().entries_quarantined, 0);
  std::remove(path.c_str());

  for (const char* name : {"Cell A", "Cell C"}) {
    const auto original = cache.Lookup(CellHash("SwiftNet HPD", name));
    const auto loaded = warm.Lookup(CellHash("SwiftNet HPD", name));
    ASSERT_NE(loaded, nullptr) << name;
    EXPECT_EQ(loaded->plan_text, original->plan_text) << name;
    EXPECT_EQ(loaded->result.schedule, original->result.schedule);
    EXPECT_EQ(loaded->result.peak_bytes, original->result.peak_bytes);
    EXPECT_EQ(loaded->result.states_expanded,
              original->result.states_expanded);
    EXPECT_EQ(loaded->result.segment_sizes, original->result.segment_sizes);
    EXPECT_EQ(loaded->result.rewrite_report.TotalPatterns(),
              original->result.rewrite_report.TotalPatterns());
    EXPECT_TRUE(loaded->result.success);
    EXPECT_TRUE(alloc::ValidatePlacements(loaded->plan.arena));
    EXPECT_EQ(loaded->plan.arena.highwater_at_step,
              original->plan.arena.highwater_at_step);
  }
  EXPECT_EQ(warm.stats().entries, 2u);
}

TEST(PlanCacheDeath, RejectsFailedResults) {
  PlanCache cache;
  core::PipelineResult failed;  // success == false
  EXPECT_DEATH(cache.Insert(graph::GraphHash{1, 2}, std::move(failed)),
               "cacheable");
}

TEST(PlanCache, RejectsCorruptCacheFilesWithStatus) {
  const std::string path = ::testing::TempDir() + "/bogus_cache.v1";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not-a-cache v9 1\n", f);
  std::fclose(f);
  PlanCache cache;
  const util::StatusOr<CacheLoadReport> report = cache.LoadFromFile(path);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kDataLoss);
  EXPECT_NE(report.status().message().find("not a plan-cache"),
            std::string::npos);
  EXPECT_EQ(cache.stats().load_errors, 1u);
  std::remove(path.c_str());
}

TEST(PlanCache, MissingCacheFileIsNotFound) {
  PlanCache cache;
  const util::StatusOr<CacheLoadReport> report =
      cache.LoadFromFile(::testing::TempDir() + "/no_such_cache.v1");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(cache.stats().load_errors, 1u);
}

TEST(PlanCache, StaleFormatVersionLoadsNothingInsteadOfAborting) {
  // A cache persisted by a previous serializer generation is an
  // optimization gone stale, not a fatal error: the service must start
  // cold, not wedge on the file.
  const std::string path = ::testing::TempDir() + "/stale_cache.v1";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("serenity-plan-cache v1 1\nentry deadbeef 0 0\n", f);
  std::fclose(f);
  PlanCache cache;
  const util::StatusOr<CacheLoadReport> report = cache.LoadFromFile(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().stale_version);
  EXPECT_EQ(report.value().entries_loaded, 0);
  EXPECT_EQ(cache.stats().entries, 0u);
  std::remove(path.c_str());
}

TEST(PlanCache, BitFlipQuarantinesOneEntryNotTheWarmStart) {
  PlanCache cache;
  for (const char* name : {"Cell A", "Cell B", "Cell C"}) {
    cache.Insert(CellHash("SwiftNet HPD", name),
                 PlanCell("SwiftNet HPD", name));
  }
  const std::string path = ::testing::TempDir() + "/flipped_cache.v3";
  ASSERT_TRUE(cache.SaveToFile(path).ok());

  // Flip one bit ~60% into the file: inside some entry's payload or
  // metadata, past the header.
  const std::int64_t size = serenity::testing::FileSizeBytes(path);
  ASSERT_GT(size, 0);
  ASSERT_TRUE(serenity::testing::CorruptFileBit(
      path, static_cast<std::uint64_t>(size) * 8 * 6 / 10));

  PlanCache warm;
  const util::StatusOr<CacheLoadReport> report = warm.LoadFromFile(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().entries_quarantined, 1);
  EXPECT_EQ(report.value().entries_loaded, 2);
  EXPECT_EQ(warm.stats().entries_quarantined, 1u);
  EXPECT_EQ(warm.stats().entries, 2u);
  // Every surviving entry is fully validated and usable.
  int usable = 0;
  for (const char* name : {"Cell A", "Cell B", "Cell C"}) {
    const auto hit = warm.Lookup(CellHash("SwiftNet HPD", name));
    if (hit == nullptr) continue;
    EXPECT_TRUE(alloc::ValidatePlacements(hit->plan.arena)) << name;
    ++usable;
  }
  EXPECT_EQ(usable, 2);
  std::remove(path.c_str());
}

TEST(PlanCache, TruncationCostsOnlyTheTornEntry) {
  PlanCache cache;
  for (const char* name : {"Cell A", "Cell B", "Cell C"}) {
    cache.Insert(CellHash("SwiftNet HPD", name),
                 PlanCell("SwiftNet HPD", name));
  }
  const std::string path = ::testing::TempDir() + "/torn_cache.v3";
  ASSERT_TRUE(cache.SaveToFile(path).ok());
  const std::int64_t size = serenity::testing::FileSizeBytes(path);
  ASSERT_GT(size, 0);
  // Tear the tail off mid-entry (a crash between write and rename cannot
  // produce this file thanks to AtomicWriteFile, but a disk that lies
  // about durability can).
  ASSERT_TRUE(serenity::testing::TruncateFile(
      path, static_cast<std::uint64_t>(size) * 7 / 10));

  PlanCache warm;
  const util::StatusOr<CacheLoadReport> report = warm.LoadFromFile(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report.value().entries_loaded, 1);
  EXPECT_LE(report.value().entries_loaded, 2);
  EXPECT_GE(report.value().entries_quarantined, 1);
  std::remove(path.c_str());
}

TEST(PlanCache, DegradedEntryMetadataRoundTrips) {
  // A degraded plan persists its quality tier and peak delta, so a warm
  // restart still knows the entry is upgradeable.
  const graph::Graph g =
      models::FindBenchmarkCell("SwiftNet HPD", "Cell C").factory();
  core::PipelineOptions popts;
  popts.deadline_seconds = 0.0;  // expire immediately
  popts.degrade_on_deadline = true;
  core::PipelineResult degraded = core::Pipeline(popts).Run(g);
  ASSERT_TRUE(degraded.success);
  ASSERT_TRUE(degraded.degraded);
  ASSERT_NE(degraded.quality, core::PlanQuality::kExact);

  PlanCache cache;
  const graph::GraphHash hash = graph::CanonicalGraphHash(g);
  const auto inserted = cache.Insert(hash, std::move(degraded));
  EXPECT_EQ(cache.stats().degraded_entries, 1u);

  const std::string path = ::testing::TempDir() + "/degraded_cache.v3";
  ASSERT_TRUE(cache.SaveToFile(path).ok());
  PlanCache warm;
  ASSERT_TRUE(warm.LoadFromFile(path).ok());
  const auto loaded = warm.Lookup(hash);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->quality, inserted->quality);
  EXPECT_EQ(loaded->peak_delta_bytes, inserted->peak_delta_bytes);
  EXPECT_TRUE(loaded->result.degraded);
  EXPECT_EQ(warm.stats().degraded_entries, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace serenity::serve
