// Property suite for the versioned plan text format: over 1000 random
// cells, plan -> text -> plan is bit-identical in every field, and
// malformed or truncated inputs die cleanly instead of loading.
#include <gtest/gtest.h>

#include "models/random_cell.h"
#include "sched/baselines.h"
#include "serialize/plan.h"
#include "util/rng.h"

namespace serenity::serialize {
namespace {

models::RandomCellParams ParamsForSeed(int seed) {
  models::RandomCellParams p;
  p.seed = static_cast<std::uint64_t>(seed) * 2654435761u + 977;
  p.num_intermediates = 4 + seed % 7;
  p.concat_branches = (seed % 3 == 0) ? 0 : 3 + seed % 3;
  p.depthwise_block = seed % 2 == 0;
  p.num_cells = 1 + seed % 3;
  p.spatial = 4;
  p.channels = 4 + seed % 5;
  p.name = "roundtrip_net";
  return p;
}

void ExpectBitIdentical(const ExecutionPlan& a, const ExecutionPlan& b) {
  EXPECT_EQ(a.graph_name, b.graph_name);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.arena.arena_bytes, b.arena.arena_bytes);
  EXPECT_EQ(a.arena.highwater_at_step, b.arena.highwater_at_step);
  ASSERT_EQ(a.arena.placements.size(), b.arena.placements.size());
  for (std::size_t i = 0; i < a.arena.placements.size(); ++i) {
    const alloc::BufferPlacement& pa = a.arena.placements[i];
    const alloc::BufferPlacement& pb = b.arena.placements[i];
    EXPECT_EQ(pa.buffer, pb.buffer) << i;
    EXPECT_EQ(pa.offset, pb.offset) << i;
    EXPECT_EQ(pa.size, pb.size) << i;
    EXPECT_EQ(pa.first_step, pb.first_step) << i;
    EXPECT_EQ(pa.last_step, pb.last_step) << i;
  }
}

TEST(PlanRoundTripProperty, ThousandRandomCellsBitIdentical) {
  for (int seed = 0; seed < 1000; ++seed) {
    const graph::Graph g =
        models::MakeRandomCellNetwork(ParamsForSeed(seed));
    // Alternate schedule flavors so placements exercise different
    // lifetime/fragmentation shapes.
    const sched::Schedule s = (seed % 2 == 0)
                                  ? sched::TfLiteOrderSchedule(g)
                                  : sched::GreedyMemorySchedule(g);
    const ExecutionPlan plan = MakePlan(g, s);
    const ExecutionPlan back = PlanFromText(PlanToText(plan), g);
    ExpectBitIdentical(plan, back);
    // And the round trip is a fixed point of the text form too.
    ASSERT_EQ(PlanToText(back), PlanToText(plan)) << "seed " << seed;
  }
}

// Truncation anywhere before the last record must die cleanly (a CHECK
// abort with a diagnostic), never load a half plan. Death tests fork, so
// sample cut points rather than sweeping every byte.
TEST(PlanRoundTripPropertyDeath, TruncatedInputsDieCleanly) {
  const graph::Graph g = models::MakeRandomCellNetwork(ParamsForSeed(1));
  const std::string text =
      PlanToText(MakePlan(g, sched::TfLiteOrderSchedule(g)));
  // Any strict prefix that ends before the final place record is invalid.
  const std::size_t last_record = text.rfind("\nplace");
  ASSERT_NE(last_record, std::string::npos);
  for (const double fraction : {0.05, 0.2, 0.4, 0.6, 0.8, 0.97}) {
    const std::size_t cut = std::min(
        last_record,
        static_cast<std::size_t>(static_cast<double>(text.size()) *
                                 fraction));
    EXPECT_DEATH(PlanFromText(text.substr(0, cut), g), "CHECK failed")
        << "cut at " << cut << " of " << text.size();
  }
}

TEST(PlanRoundTripPropertyDeath, GarbageRecordsRejected) {
  const graph::Graph g = models::MakeRandomCellNetwork(ParamsForSeed(2));
  const std::string text =
      PlanToText(MakePlan(g, sched::TfLiteOrderSchedule(g)));
  EXPECT_DEATH(PlanFromText("not a plan at all", g),
               "missing format header");
  EXPECT_DEATH(PlanFromText(text + "gibberish 1 2 3\n", g),
               "unknown plan record");
  std::string bad_number = text;
  const std::size_t at = bad_number.find("\nplace ");
  ASSERT_NE(at, std::string::npos);
  bad_number.replace(at + 7, 1, "x");
  EXPECT_DEATH(PlanFromText(bad_number, g), "malformed place record");
}

}  // namespace
}  // namespace serenity::serialize
