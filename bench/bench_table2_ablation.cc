// Table 2 — scheduling-time ablation on SwiftNet: dynamic programming (1),
// + divide-and-conquer (2), + adaptive soft budgeting (3), with and without
// identity graph rewriting.
//
// Fidelity note (also in EXPERIMENTS.md): the paper reports the plain-DP
// row as N/A (infeasible) and 7.2 hours for 1+2 on the rewritten graph.
// Those costs were an artifact of its implementation: with signature
// memoization, stacked cells compose *additively* (an unscheduled suffix
// cell contributes no state blow-up), so our unpartitioned runs complete.
// The ablation still reproduces the paper's two mechanisms directly:
// divide-and-conquer shrinks per-run state counts, and adaptive soft
// budgeting prunes states on top of it.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "models/swiftnet.h"
#include "rewrite/rewriter.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace {

using namespace serenity;

struct AblationRow {
  const char* label;
  bool partition;
  bool soft_budget;
};

std::string PartitionString(const std::vector<int>& sizes) {
  std::string out = "{";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(sizes[i]);
  }
  return out + "}";
}

void RunConfiguration(const graph::Graph& g, bool rewriting,
                      bench::JsonRows* json) {
  static const AblationRow kRows[] = {
      {"(1) DP", false, false},
      {"(1)+(2) DP + divide&conquer", true, false},
      {"(1)+(2)+(3) DP + D&C + adaptive soft budgeting", true, true},
  };
  for (const AblationRow& row : kRows) {
    core::PipelineOptions options;
    options.enable_rewriting = rewriting;
    options.enable_partitioning = row.partition;
    options.enable_soft_budgeting = row.soft_budget;
    util::Stopwatch clock;
    const core::PipelineResult r = core::Pipeline(options).Run(g);
    const double seconds = clock.ElapsedSeconds();
    const std::string time_text =
        r.success ? std::to_string(seconds).substr(0, 8) + "s" : "N/A";
    const std::string states_text =
        r.success ? std::to_string(r.states_expanded) : "-";
    std::printf("  %-48s %3d=%-16s %10s %12s\n", row.label,
                r.scheduled_graph.num_nodes(),
                PartitionString(r.segment_sizes).c_str(), time_text.c_str(),
                states_text.c_str());
    json->Begin();
    json->Field("algorithm", std::string(row.label));
    json->Field("rewriting", static_cast<std::int64_t>(rewriting));
    json->Field("nodes",
                static_cast<std::int64_t>(r.scheduled_graph.num_nodes()));
    json->Field("partitions", PartitionString(r.segment_sizes));
    json->Field("success", static_cast<std::int64_t>(r.success));
    if (r.success) {
      json->Field("seconds", seconds);
      json->Field("states_expanded", r.states_expanded);
    }
  }
}

// Returns false iff a requested --json write failed.
bool PrintTable(const std::string& json_path) {
  std::printf("Table 2: scheduling time for different algorithm "
              "combinations on SwiftNet\n");
  std::printf("(paper: without rewriting N/A -> 56.5s -> 37.9s; with "
              "rewriting N/A -> 7.2h -> 111.9s)\n\n");
  std::printf("  %-48s %-20s %10s %12s\n", "algorithm",
              "# nodes & partitions", "time", "states");
  bench::PrintRule();
  bench::JsonRows json;
  std::printf("  without graph rewriting (62 nodes)\n");
  RunConfiguration(models::MakeSwiftNet(), /*rewriting=*/false, &json);
  std::printf("  with graph rewriting (90 nodes; paper lists 92 = "
              "{33,28,29}, whose parts sum to 90)\n");
  RunConfiguration(models::MakeSwiftNet(), /*rewriting=*/true, &json);
  std::printf("\n");
  if (!json_path.empty()) return json.WriteTo(json_path);
  return true;
}

void BM_AblationConfig(benchmark::State& state) {
  const graph::Graph g = models::MakeSwiftNet();
  core::PipelineOptions options;
  options.enable_rewriting = state.range(0) != 0;
  options.enable_partitioning = state.range(1) != 0;
  options.enable_soft_budgeting = state.range(2) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Pipeline(options).Run(g).peak_bytes);
  }
}
BENCHMARK(BM_AblationConfig)
    ->Args({0, 0, 0})
    ->Args({0, 1, 0})
    ->Args({0, 1, 1})
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Args({1, 1, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = serenity::bench::TakeJsonFlag(&argc, argv);
  const bool json_ok = PrintTable(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return json_ok ? 0 : 1;
}
