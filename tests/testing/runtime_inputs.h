// Shared helper for everything that feeds the runtime executors:
// deterministic random input tensors for a graph's kInput nodes, in
// ascending node-id order (the operand convention of ReferenceExecutor,
// ArenaExecutor and InferenceSession).
#ifndef SERENITY_TESTS_TESTING_RUNTIME_INPUTS_H_
#define SERENITY_TESTS_TESTING_RUNTIME_INPUTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "runtime/tensor.h"
#include "util/rng.h"

namespace serenity::testing {

inline std::vector<runtime::Tensor> RandomInputsFor(const graph::Graph& g,
                                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<runtime::Tensor> inputs;
  for (const graph::Node& n : g.nodes()) {
    if (n.kind == graph::OpKind::kInput) {
      inputs.push_back(runtime::Tensor::Random(n.shape, rng));
    }
  }
  return inputs;
}

}  // namespace serenity::testing

#endif  // SERENITY_TESTS_TESTING_RUNTIME_INPUTS_H_
