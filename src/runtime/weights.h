// Deterministic synthetic weights.
//
// Every weighted op carries a `weight_seed` assigned at graph construction;
// materializing weights from the seed (instead of storing them in the IR)
// keeps graphs light while guaranteeing that a rewritten graph — whose
// partial ops inherit the original op's seed plus a channel offset — reads
// the *same* virtual weight tensor as the op it replaced. That is the
// mechanism behind the identity-preservation tests.
#ifndef SERENITY_RUNTIME_WEIGHTS_H_
#define SERENITY_RUNTIME_WEIGHTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace serenity::runtime {

// Dense convolution kernel, layout [kh][kw][in_c][out_c], plus bias[out_c].
struct ConvWeights {
  int kh = 0, kw = 0, in_c = 0, out_c = 0;
  std::vector<float> kernel;
  std::vector<float> bias;

  float KernelAt(int y, int x, int ic, int oc) const {
    return kernel[static_cast<std::size_t>(
        ((static_cast<std::int64_t>(y) * kw + x) * in_c + ic) * out_c + oc)];
  }
};

// Depthwise kernel, layout [kh][kw][c] (channel multiplier 1), plus bias[c].
struct DepthwiseWeights {
  int kh = 0, kw = 0, c = 0;
  std::vector<float> kernel;
  std::vector<float> bias;

  float KernelAt(int y, int x, int channel) const {
    return kernel[static_cast<std::size_t>(
        (static_cast<std::int64_t>(y) * kw + x) * c + channel)];
  }
};

struct BatchNormWeights {
  std::vector<float> scale;
  std::vector<float> shift;
};

struct DenseWeights {
  int in = 0, units = 0;
  std::vector<float> kernel;  // [in][units]
  std::vector<float> bias;

  float KernelAt(int i, int u) const {
    return kernel[static_cast<std::size_t>(
        static_cast<std::int64_t>(i) * units + u)];
  }
};

// All generators are pure functions of their arguments; the same seed and
// dimensions always produce the same weights.
ConvWeights MakeConvWeights(std::uint64_t seed, int kh, int kw, int in_c,
                            int out_c);
DepthwiseWeights MakeDepthwiseWeights(std::uint64_t seed, int kh, int kw,
                                      int c);
BatchNormWeights MakeBatchNormWeights(std::uint64_t seed, int c);
DenseWeights MakeDenseWeights(std::uint64_t seed, int in, int units);

// Sub-seed salts for ops that bundle several weight tensors (kFusedCell's
// depthwise + pointwise + batch-norm stages).
inline constexpr std::uint64_t kFusedDepthwiseSalt = 0x5eed0001;
inline constexpr std::uint64_t kFusedPointwiseSalt = 0x5eed0002;
inline constexpr std::uint64_t kFusedBatchNormSalt = 0x5eed0003;

// Every weight tensor one node's execution reads, materialized from the
// node's seed. Weights live outside the activation arena: the
// ReferenceExecutor materializes them per Execute call, the ArenaExecutor
// once per session at construction, and both read the *same* virtual weight
// tensors — the mechanism behind the identity-preservation and
// arena-vs-reference bit-identity tests. Only the members the node's kind
// uses are populated; the rest stay empty.
struct NodeWeights {
  ConvWeights conv;      // kConv2d / kPartialConv2d* / fused pointwise
  DepthwiseWeights dw;   // depthwise kinds / fused depthwise
  BatchNormWeights bn;   // kBatchNorm / fused batch norm
  DenseWeights dense;    // kDense
};

NodeWeights MaterializeNodeWeights(const graph::Node& node);

}  // namespace serenity::runtime

#endif  // SERENITY_RUNTIME_WEIGHTS_H_
