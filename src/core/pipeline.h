// The end-to-end SERENITY pipeline (paper Fig. 4):
//
//   G --IdentityGraphRewriter--> G' --divide&conquer--> segments
//     --DP + adaptive soft budgeting--> per-segment schedules --combine--> s*
//
// Pipeline::Run is the one-call public entry point used by the examples and
// benches; each stage can be toggled for the ablations in Table 2/Figure 13.
#ifndef SERENITY_CORE_PIPELINE_H_
#define SERENITY_CORE_PIPELINE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/dp_scheduler.h"
#include "core/partitioner.h"
#include "core/soft_budget.h"
#include "graph/graph.h"
#include "rewrite/rewriter.h"
#include "sched/schedule.h"

namespace serenity::core {

struct PipelineOptions {
  // Stage toggles. All on = full SERENITY; rewrite off = the paper's
  // "Dynamic Programming + Memory Allocator" configuration.
  bool enable_rewriting = true;
  bool enable_partitioning = true;
  bool enable_soft_budgeting = true;

  rewrite::RewriteOptions rewrite;
  PartitionOptions partition;
  SoftBudgetOptions soft_budget;
  // Used when soft budgeting is disabled (plain Algorithm 1 per segment).
  DpOptions dp;
};

struct PipelineResult {
  bool success = false;        // false iff some segment hit kTimeout
  std::string failure_reason;  // human-readable, set when !success

  graph::Graph scheduled_graph;  // the (possibly rewritten) graph s* indexes
  sched::Schedule schedule;      // s*, over scheduled_graph's node ids
  std::int64_t peak_bytes = -1;  // µpeak of s* on scheduled_graph

  rewrite::RewriteReport rewrite_report;  // zeros when rewriting disabled
  std::vector<int> segment_sizes;         // Table 2's "{21, 19, 22}"
  std::uint64_t states_expanded = 0;      // summed across segments/attempts
  double rewrite_seconds = 0.0;
  double partition_seconds = 0.0;
  double schedule_seconds = 0.0;
  double total_seconds = 0.0;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {})
      : options_(std::move(options)) {}

  PipelineResult Run(const graph::Graph& graph) const;

 private:
  PipelineOptions options_;
};

}  // namespace serenity::core

#endif  // SERENITY_CORE_PIPELINE_H_
