#include "sched/baselines.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "util/logging.h"

namespace serenity::sched {

namespace {

std::vector<int> InDegrees(const graph::Graph& graph) {
  std::vector<int> indegree(static_cast<std::size_t>(graph.num_nodes()), 0);
  for (const graph::Node& node : graph.nodes()) {
    indegree[static_cast<std::size_t>(node.id)] =
        static_cast<int>(node.inputs.size());
  }
  return indegree;
}

}  // namespace

Schedule TfLiteOrderSchedule(const graph::Graph& graph) {
  // Graph::AddNode enforces topological insertion order, so declaration
  // order is itself a valid execution order — exactly TFLite's behaviour for
  // converter-produced models.
  Schedule schedule(static_cast<std::size_t>(graph.num_nodes()));
  std::iota(schedule.begin(), schedule.end(), 0);
  return schedule;
}

Schedule KahnFifoSchedule(const graph::Graph& graph) {
  std::vector<int> indegree = InDegrees(graph);
  std::deque<graph::NodeId> ready;
  for (const graph::Node& node : graph.nodes()) {
    if (node.inputs.empty()) ready.push_back(node.id);
  }
  Schedule schedule;
  schedule.reserve(static_cast<std::size_t>(graph.num_nodes()));
  while (!ready.empty()) {
    const graph::NodeId id = ready.front();
    ready.pop_front();
    schedule.push_back(id);
    for (const graph::NodeId consumer : graph.consumers(id)) {
      if (--indegree[static_cast<std::size_t>(consumer)] == 0) {
        ready.push_back(consumer);
      }
    }
  }
  SERENITY_CHECK_EQ(schedule.size(),
                    static_cast<std::size_t>(graph.num_nodes()))
      << "cycle detected in graph '" << graph.name() << "'";
  return schedule;
}

Schedule DfsPostorderSchedule(const graph::Graph& graph) {
  // Iterative DFS from sinks over the reversed graph; emitting a node after
  // all of its inputs yields a topological order biased toward finishing one
  // operand chain before starting the next.
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  std::vector<char> visited(n, 0);
  Schedule schedule;
  schedule.reserve(n);
  // enter=0 phase pushes children; enter=1 phase emits the node.
  std::vector<std::pair<graph::NodeId, int>> stack;
  for (const graph::NodeId sink : graph.Sinks()) {
    stack.emplace_back(sink, 0);
    while (!stack.empty()) {
      auto [id, phase] = stack.back();
      stack.pop_back();
      const std::size_t uid = static_cast<std::size_t>(id);
      if (phase == 1) {
        schedule.push_back(id);
        continue;
      }
      if (visited[uid]) continue;
      visited[uid] = 1;
      stack.emplace_back(id, 1);
      const auto& inputs = graph.node(id).inputs;
      // Push in reverse so the first operand's subtree completes first.
      for (auto it = inputs.rbegin(); it != inputs.rend(); ++it) {
        if (!visited[static_cast<std::size_t>(*it)]) {
          stack.emplace_back(*it, 0);
        }
      }
    }
  }
  SERENITY_CHECK_EQ(schedule.size(), n);
  return schedule;
}

Schedule GreedyMemorySchedule(const graph::Graph& graph) {
  const graph::BufferUseTable table = graph::BufferUseTable::Build(graph);
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  std::vector<int> indegree = InDegrees(graph);
  std::vector<graph::NodeId> ready;
  for (const graph::Node& node : graph.nodes()) {
    if (node.inputs.empty()) ready.push_back(node.id);
  }
  std::vector<int> remaining_uses(table.buffers.size());
  for (std::size_t b = 0; b < table.buffers.size(); ++b) {
    remaining_uses[b] = static_cast<int>(table.buffers[b].writers.size() +
                                         table.buffers[b].readers.size());
  }
  std::vector<bool> allocated(table.buffers.size(), false);

  Schedule schedule;
  schedule.reserve(n);
  while (!ready.empty()) {
    // Score each candidate by (net footprint delta, allocation spike, id).
    std::size_t best_index = 0;
    std::int64_t best_delta = 0;
    std::int64_t best_spike = 0;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const graph::NodeId id = ready[i];
      const std::size_t uid = static_cast<std::size_t>(id);
      const graph::BufferId own = graph.node(id).buffer;
      const std::int64_t spike =
          allocated[static_cast<std::size_t>(own)]
              ? 0
              : table.buffers[static_cast<std::size_t>(own)].size_bytes;
      std::int64_t freed = 0;
      for (const graph::BufferId b : table.touched_buffers[uid]) {
        const std::size_t ub = static_cast<std::size_t>(b);
        int uses = (graph.node(id).buffer == b) ? 1 : 0;
        const auto& reads = table.read_buffers[uid];
        if (std::find(reads.begin(), reads.end(), b) != reads.end()) ++uses;
        if (remaining_uses[ub] == uses && !table.buffers[ub].is_sink) {
          freed += table.buffers[ub].size_bytes;
        }
      }
      const std::int64_t delta = spike - freed;
      if (i == 0 || delta < best_delta ||
          (delta == best_delta && spike < best_spike)) {
        best_index = i;
        best_delta = delta;
        best_spike = spike;
      }
    }
    const graph::NodeId id = ready[best_index];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best_index));
    const std::size_t uid = static_cast<std::size_t>(id);
    const graph::BufferId own = graph.node(id).buffer;
    allocated[static_cast<std::size_t>(own)] = true;
    for (const graph::BufferId b : table.touched_buffers[uid]) {
      const std::size_t ub = static_cast<std::size_t>(b);
      int uses = (own == b) ? 1 : 0;
      const auto& reads = table.read_buffers[uid];
      if (std::find(reads.begin(), reads.end(), b) != reads.end()) ++uses;
      remaining_uses[ub] -= uses;
    }
    schedule.push_back(id);
    for (const graph::NodeId consumer : graph.consumers(id)) {
      if (--indegree[static_cast<std::size_t>(consumer)] == 0) {
        ready.push_back(consumer);
      }
    }
  }
  SERENITY_CHECK_EQ(schedule.size(), n);
  return schedule;
}

Schedule RandomTopologicalSchedule(const graph::Graph& graph,
                                   util::Rng& rng) {
  std::vector<int> indegree = InDegrees(graph);
  std::vector<graph::NodeId> ready;
  for (const graph::Node& node : graph.nodes()) {
    if (node.inputs.empty()) ready.push_back(node.id);
  }
  Schedule schedule;
  schedule.reserve(static_cast<std::size_t>(graph.num_nodes()));
  while (!ready.empty()) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.NextBounded(static_cast<std::uint64_t>(ready.size())));
    const graph::NodeId id = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();
    schedule.push_back(id);
    for (const graph::NodeId consumer : graph.consumers(id)) {
      if (--indegree[static_cast<std::size_t>(consumer)] == 0) {
        ready.push_back(consumer);
      }
    }
  }
  SERENITY_CHECK_EQ(schedule.size(),
                    static_cast<std::size_t>(graph.num_nodes()));
  return schedule;
}

}  // namespace serenity::sched
