// Reference operator kernels (naive loops, NHWC, float32) — the
// `Backend::kReference` implementations behind the kernel-dispatch API
// (runtime/kernel_backend.h) and the arithmetic oracle every other backend
// is pinned against.
//
// Conventions follow TensorFlow/TFLite: SAME padding splits the total pad
// with the smaller half first; average pooling divides by the number of
// valid (in-bounds) elements. The partial variants implement the rewriter's
// ops: channel-slice convolution accumulating into a shared output
// (Eq. 3-6) and per-branch depthwise convolution writing into a channel
// slice of the shared output (Eq. 7-8).
//
// Every kernel exists only in `...Into(inputs, out)` form, writing into
// caller-provided storage — the form both executors drive, with `out` a
// view bound into the planned arena, so inference performs zero heap
// allocations. Inputs may be channel-window views (values living inside
// shared buffers); the elementwise kernels accept `out` aliasing their
// input (in-place). Allocating conveniences for tests live in
// tests/testing/kernel_wrappers.h; production code routes through a
// resolved KernelBackend instead of calling these directly.
#ifndef SERENITY_RUNTIME_KERNELS_H_
#define SERENITY_RUNTIME_KERNELS_H_

#include <vector>

#include "graph/types.h"
#include "runtime/tensor.h"
#include "runtime/weights.h"

namespace serenity::runtime {

// Dense convolution over all input channels: bias + Σ_ic w ∗ x.
void Conv2dInto(const Tensor& input, const ConvWeights& weights,
                const graph::ConvAttrs& attrs, Tensor& out);

// Channel-wise partial convolution: convolves `input` (a channel slice of
// the virtual concatenated input) against kernel in-channels
// [ic_offset, ic_offset + input.c) of `weights`, accumulating into `acc`
// (conv output shape). `overwrite` zeroes the accumulator first (first
// partial); `add_bias` adds the bias once.
void Conv2dPartial(const Tensor& input, const ConvWeights& weights,
                   const graph::ConvAttrs& attrs, int ic_offset,
                   bool overwrite, bool add_bias, Tensor& acc);

void DepthwiseConv2dInto(const Tensor& input, const DepthwiseWeights& weights,
                         const graph::ConvAttrs& attrs, Tensor& out);

// Kernel-wise partial depthwise convolution: filters `input` with kernel
// channels [weight_c_offset, +input.c) and writes the result into channels
// [out_c_offset, +input.c) of `out`.
void DepthwiseConv2dPartial(const Tensor& input,
                            const DepthwiseWeights& weights,
                            const graph::ConvAttrs& attrs,
                            int weight_c_offset, Tensor& out,
                            int out_c_offset);

void ConcatInto(const std::vector<const Tensor*>& inputs, Tensor& out);

void AddInto(const std::vector<const Tensor*>& inputs, Tensor& out);

void MulInto(const std::vector<const Tensor*>& inputs, Tensor& out);

void ReluInto(const Tensor& input, Tensor& out);

void BatchNormInto(const Tensor& input, const BatchNormWeights& weights,
                   Tensor& out);

void MaxPool2dInto(const Tensor& input, const graph::ConvAttrs& attrs,
                   Tensor& out);

void AvgPool2dInto(const Tensor& input, const graph::ConvAttrs& attrs,
                   Tensor& out);

void GlobalAvgPool2dInto(const Tensor& input, Tensor& out);

void DenseInto(const Tensor& input, const DenseWeights& weights, Tensor& out);

}  // namespace serenity::runtime

#endif  // SERENITY_RUNTIME_KERNELS_H_
