// Figure 10 — reduction in peak memory footprint of SERENITY against
// TensorFlow Lite (no memory hierarchy), with the memory allocator applied
// to both systems, for all nine benchmark cells plus the geometric mean.
//
// Two SERENITY configurations, as in the paper:
//   DP   = dynamic-programming scheduler + memory allocator
//   DP+GR = + identity graph rewriting
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/stats.h"

namespace {

using namespace serenity;

// Returns false iff a requested --json write failed.
bool PrintFigure(const std::string& json_path) {
  std::printf("Figure 10: peak-memory reduction vs TensorFlow Lite "
              "(greedy arena allocator applied to every configuration)\n\n");
  std::printf("%-32s %10s %10s %10s  %7s %7s   %7s %7s\n", "cell",
              "TFLite KB", "DP KB", "DP+GR KB", "DP x", "paper", "DP+GR x",
              "paper");
  bench::PrintRule();
  std::vector<double> dp_ratios, rw_ratios, paper_dp, paper_rw;
  bench::JsonRows rows;
  for (const models::BenchmarkCell& cell : models::AllBenchmarkCells()) {
    const bench::CellMeasurement m = bench::MeasureCell(cell);
    if (!m.dp.success || !m.dp_rw.success) {
      std::printf("%-32s  scheduling failed\n",
                  bench::CellLabel(cell).c_str());
      continue;
    }
    const double dp_ratio = static_cast<double>(m.tflite_arena) /
                            static_cast<double>(m.dp_arena);
    const double rw_ratio = static_cast<double>(m.tflite_arena) /
                            static_cast<double>(m.dp_rw_arena);
    dp_ratios.push_back(dp_ratio);
    rw_ratios.push_back(rw_ratio);
    paper_dp.push_back(cell.paper_tflite_kb / cell.paper_dp_kb);
    paper_rw.push_back(cell.paper_tflite_kb / cell.paper_dp_rw_kb);
    std::printf("%-32s %10.1f %10.1f %10.1f  %6.2fx %6.2fx   %6.2fx %6.2fx\n",
                bench::CellLabel(cell).c_str(), bench::Kb(m.tflite_arena),
                bench::Kb(m.dp_arena), bench::Kb(m.dp_rw_arena), dp_ratio,
                paper_dp.back(), rw_ratio, paper_rw.back());
    rows.Begin();
    rows.Field("cell", bench::CellLabel(cell));
    rows.Field("tflite_kb", bench::Kb(m.tflite_arena));
    rows.Field("dp_kb", bench::Kb(m.dp_arena));
    rows.Field("dp_rw_kb", bench::Kb(m.dp_rw_arena));
    rows.Field("dp_ratio", dp_ratio);
    rows.Field("dp_rw_ratio", rw_ratio);
  }
  bench::PrintRule();
  std::printf("%-32s %10s %10s %10s  %6.2fx %6.2fx   %6.2fx %6.2fx\n",
              "geomean", "", "", "", util::GeometricMean(dp_ratios),
              util::GeometricMean(paper_dp), util::GeometricMean(rw_ratios),
              util::GeometricMean(paper_rw));
  std::printf("\npaper geomeans: 1.68x (DP), 1.86x (DP+GR)\n\n");
  if (!json_path.empty()) {
    rows.Begin();
    rows.Field("cell", std::string("geomean"));
    rows.Field("dp_ratio", util::GeometricMean(dp_ratios));
    rows.Field("dp_rw_ratio", util::GeometricMean(rw_ratios));
    return rows.WriteTo(json_path);
  }
  return true;
}

void BM_FullPipelineSwiftNetCellA(benchmark::State& state) {
  const graph::Graph g =
      models::FindBenchmarkCell("SwiftNet HPD", "Cell A").factory();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Pipeline().Run(g).peak_bytes);
  }
}
BENCHMARK(BM_FullPipelineSwiftNetCellA)->Unit(benchmark::kMillisecond);

void BM_ArenaPlanSwiftNetCellA(benchmark::State& state) {
  const graph::Graph g =
      models::FindBenchmarkCell("SwiftNet HPD", "Cell A").factory();
  const sched::Schedule s = sched::TfLiteOrderSchedule(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::PlanArena(g, s).arena_bytes);
  }
}
BENCHMARK(BM_ArenaPlanSwiftNetCellA);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = serenity::bench::TakeJsonFlag(&argc, argv);
  const bool json_ok = PrintFigure(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return json_ok ? 0 : 1;
}
