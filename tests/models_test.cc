#include "models/zoo.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/partitioner.h"
#include "graph/analysis.h"
#include "models/darts.h"
#include "models/randwire.h"
#include "models/swiftnet.h"
#include "rewrite/rewriter.h"
#include "serialize/serialize.h"

namespace serenity::models {
namespace {

TEST(SwiftNet, PaperNodeCounts) {
  // Table 2: 62 nodes split {21, 19, 22}; 90 after rewriting {33, 28, 29}.
  const graph::Graph g = MakeSwiftNet();
  EXPECT_EQ(g.num_nodes(), 62);
  const rewrite::RewriteResult rw = rewrite::RewriteGraph(g);
  EXPECT_EQ(rw.graph.num_nodes(), 90);
}

TEST(SwiftNet, PerCellNodeCounts) {
  // Standalone cells carry a fresh input node for the boundary.
  EXPECT_EQ(MakeSwiftNetCellA().num_nodes(), 21);  // includes graph input
  EXPECT_EQ(MakeSwiftNetCellB().num_nodes(), 20);  // 1 boundary + 19
  EXPECT_EQ(MakeSwiftNetCellC().num_nodes(), 23);  // 1 boundary + 22
}

TEST(SwiftNet, PerCellRewriteDeltas) {
  // Table 2 deltas: +12, +9, +7.
  EXPECT_EQ(rewrite::RewriteGraph(MakeSwiftNetCellA()).graph.num_nodes(),
            21 + 12);
  EXPECT_EQ(rewrite::RewriteGraph(MakeSwiftNetCellB()).graph.num_nodes(),
            20 + 9);
  EXPECT_EQ(rewrite::RewriteGraph(MakeSwiftNetCellC()).graph.num_nodes(),
            23 + 7);
}

TEST(SwiftNet, SingleInputSingleOutput) {
  const graph::Graph g = MakeSwiftNet();
  EXPECT_EQ(g.Sources().size(), 1u);
  EXPECT_EQ(g.Sinks().size(), 1u);
}

TEST(SwiftNet, Deterministic) {
  EXPECT_EQ(serialize::ToText(MakeSwiftNet()),
            serialize::ToText(MakeSwiftNet()));
}

TEST(Darts, GenotypeStructure) {
  const graph::Graph g = MakeDartsNormalCell();
  // 2 inputs + 2 preprocess(3 each) + 5 sep(8 each) + 1 dil(4) + 2 skips +
  // 4 adds + 1 concat + next-cell preprocess(3) = 62 nodes.
  EXPECT_EQ(g.num_nodes(), 62);
  EXPECT_EQ(g.Sources().size(), 2u);  // c_{k-2}, c_{k-1}
  EXPECT_EQ(g.Sinks().size(), 1u);
  // The cell output concatenates the four intermediate states (4 x 48
  // channels) and feeds the next cell's ReLU-Conv-BN preprocessing.
  bool found_concat = false;
  for (const graph::Node& n : g.nodes()) {
    if (n.kind == graph::OpKind::kConcat) {
      found_concat = true;
      EXPECT_EQ(n.shape.c, 192);
      ASSERT_EQ(g.consumers(n.id).size(), 1u);
      EXPECT_EQ(g.node(g.consumers(n.id)[0]).kind, graph::OpKind::kRelu);
    }
  }
  EXPECT_TRUE(found_concat);
  EXPECT_EQ(g.node(g.Sinks()[0]).kind, graph::OpKind::kBatchNorm);
}

TEST(Darts, RewritePushesReluAndPartitionsTheConcat) {
  const graph::Graph g = MakeDartsNormalCell();
  const rewrite::RewriteResult r = rewrite::RewriteGraph(g);
  EXPECT_EQ(r.report.relu_pushes, 1);
  EXPECT_EQ(r.report.conv_patterns, 1);
  // +3 nodes from the relu push (4 branch relus replace 1), +2 from the
  // 4-branch channel-wise partitioning.
  EXPECT_EQ(r.graph.num_nodes(), g.num_nodes() + 3 + 2);
}

TEST(Darts, CellBodyIsUncuttable) {
  // Two entry states make the cell body uncuttable: only the output
  // concat and the linear next-cell preprocess chain can be split off, so
  // the first segment must contain the whole 58-node body.
  const graph::Graph g = MakeDartsNormalCell();
  const core::Partition p = core::PartitionAtCuts(g);
  ASSERT_GE(p.segments.size(), 1u);
  EXPECT_GE(p.segments[0].subgraph.num_nodes(), 58);
}

TEST(RandWire, DagAndConnectivity) {
  for (const auto factory :
       {&MakeRandWireCifar10CellA, &MakeRandWireCifar10CellB,
        &MakeRandWireCifar100CellA, &MakeRandWireCifar100CellB,
        &MakeRandWireCifar100CellC}) {
    const graph::Graph g = factory();
    EXPECT_TRUE(g.Validate().empty()) << g.name();
    EXPECT_EQ(g.Sources().size(), 1u) << g.name();
    EXPECT_EQ(g.Sinks().size(), 1u) << g.name();
    // Every macro node reachable from the stem: descendants of node 0
    // cover the graph.
    const graph::ReachabilityBitsets reach = graph::BuildReachability(g);
    EXPECT_EQ(reach.descendants[0].Count(),
              static_cast<std::size_t>(g.num_nodes()) - 1)
        << g.name();
  }
}

TEST(RandWire, SeedsProduceDistinctWirings) {
  RandWireParams a;
  a.seed = 1;
  RandWireParams b;
  b.seed = 2;
  EXPECT_NE(serialize::ToText(MakeRandWireCell(a)),
            serialize::ToText(MakeRandWireCell(b)));
  RandWireParams c;
  c.seed = 1;
  EXPECT_EQ(serialize::ToText(MakeRandWireCell(a)),
            serialize::ToText(MakeRandWireCell(c)));
}

TEST(RandWire, MacroNodeCountMatchesParams) {
  RandWireParams p;
  p.num_nodes = 12;
  const graph::Graph g = MakeRandWireCell(p);
  int fused = 0;
  for (const graph::Node& n : g.nodes()) {
    if (n.kind == graph::OpKind::kFusedCell) ++fused;
  }
  EXPECT_EQ(fused, 12);
}

TEST(Zoo, AllCellsValidateAndAreIrregular) {
  for (const BenchmarkCell& cell : AllBenchmarkCells()) {
    const graph::Graph g = cell.factory();
    EXPECT_TRUE(g.Validate().empty()) << cell.group << "/" << cell.name;
    EXPECT_GE(g.num_nodes(), 15) << cell.group << "/" << cell.name;
    // Irregular wiring: some node has fan-out > 1.
    bool has_fanout = false;
    for (const graph::Node& n : g.nodes()) {
      if (g.consumers(n.id).size() > 1) has_fanout = true;
    }
    EXPECT_TRUE(has_fanout) << cell.group << "/" << cell.name;
  }
}

TEST(Zoo, NineCellsInPaperOrder) {
  const auto& cells = AllBenchmarkCells();
  ASSERT_EQ(cells.size(), 9u);
  EXPECT_EQ(cells[0].group, "DARTS ImageNet");
  EXPECT_EQ(cells[3].group, "SwiftNet HPD");
  EXPECT_EQ(cells[8].name, "Cell C");
  EXPECT_EQ(&FindBenchmarkCell("SwiftNet HPD", "Cell A"), &cells[1]);
}

TEST(Zoo, PaperReferenceNumbersPresent) {
  for (const BenchmarkCell& cell : AllBenchmarkCells()) {
    EXPECT_GT(cell.paper_tflite_kb, 0);
    EXPECT_GT(cell.paper_dp_kb, 0);
    EXPECT_GT(cell.paper_dp_rw_kb, 0);
    EXPECT_GE(cell.paper_tflite_kb, cell.paper_dp_kb);
    EXPECT_GE(cell.paper_dp_kb, cell.paper_dp_rw_kb);
  }
}

TEST(Zoo, WeightAndMacCountsArePlausible) {
  // Table 1 scale check: SwiftNet is a sub-M parameter, tens-of-MMAC net.
  const graph::Graph g = MakeSwiftNet();
  const std::int64_t macs = graph::CountMacs(g);
  const std::int64_t weights = graph::CountWeights(g);
  EXPECT_GT(macs, 1'000'000);
  EXPECT_LT(macs, 500'000'000);
  EXPECT_GT(weights, 1'000);
  EXPECT_LT(weights, 5'000'000);
}

}  // namespace
}  // namespace serenity::models
