#include "runtime/weights.h"

#include "util/rng.h"

namespace serenity::runtime {

namespace {
// Small magnitude keeps deep synthetic networks numerically tame.
constexpr float kWeightScale = 0.25f;
}  // namespace

ConvWeights MakeConvWeights(std::uint64_t seed, int kh, int kw, int in_c,
                            int out_c) {
  util::Rng rng(seed);
  ConvWeights w;
  w.kh = kh;
  w.kw = kw;
  w.in_c = in_c;
  w.out_c = out_c;
  w.kernel.resize(static_cast<std::size_t>(kh) * kw * in_c * out_c);
  for (float& v : w.kernel) v = rng.NextFloat(kWeightScale);
  w.bias.resize(static_cast<std::size_t>(out_c));
  for (float& v : w.bias) v = rng.NextFloat(kWeightScale);
  return w;
}

DepthwiseWeights MakeDepthwiseWeights(std::uint64_t seed, int kh, int kw,
                                      int c) {
  util::Rng rng(seed);
  DepthwiseWeights w;
  w.kh = kh;
  w.kw = kw;
  w.c = c;
  w.kernel.resize(static_cast<std::size_t>(kh) * kw * c);
  for (float& v : w.kernel) v = rng.NextFloat(kWeightScale);
  w.bias.resize(static_cast<std::size_t>(c));
  for (float& v : w.bias) v = rng.NextFloat(kWeightScale);
  return w;
}

BatchNormWeights MakeBatchNormWeights(std::uint64_t seed, int c) {
  util::Rng rng(seed);
  BatchNormWeights w;
  w.scale.resize(static_cast<std::size_t>(c));
  w.shift.resize(static_cast<std::size_t>(c));
  // Scales near 1 so stacked cells neither explode nor vanish.
  for (float& v : w.scale) v = 1.0f + rng.NextFloat(0.1f);
  for (float& v : w.shift) v = rng.NextFloat(0.1f);
  return w;
}

NodeWeights MaterializeNodeWeights(const graph::Node& node) {
  NodeWeights w;
  switch (node.kind) {
    case graph::OpKind::kConv2d:
    case graph::OpKind::kPartialConv2d:
    case graph::OpKind::kPartialConv2dAccum:
      w.conv = MakeConvWeights(node.weight_seed, node.conv.kernel_h,
                               node.conv.kernel_w, node.weight_in_channels,
                               node.shape.c);
      break;
    case graph::OpKind::kDepthwiseConv2d:
    case graph::OpKind::kPartialDepthwiseConv2d:
      w.dw = MakeDepthwiseWeights(node.weight_seed, node.conv.kernel_h,
                                  node.conv.kernel_w,
                                  node.weight_in_channels);
      break;
    case graph::OpKind::kBatchNorm:
      w.bn = MakeBatchNormWeights(node.weight_seed, node.shape.c);
      break;
    case graph::OpKind::kDense:
      w.dense = MakeDenseWeights(node.weight_seed, node.weight_in_channels,
                                 node.shape.c);
      break;
    case graph::OpKind::kFusedCell:
      w.dw = MakeDepthwiseWeights(node.weight_seed ^ kFusedDepthwiseSalt,
                                  node.conv.kernel_h, node.conv.kernel_w,
                                  node.weight_in_channels);
      w.conv = MakeConvWeights(node.weight_seed ^ kFusedPointwiseSalt, 1, 1,
                               node.weight_in_channels, node.shape.c);
      w.bn = MakeBatchNormWeights(node.weight_seed ^ kFusedBatchNormSalt,
                                  node.shape.c);
      break;
    default:
      break;  // weightless op
  }
  return w;
}

DenseWeights MakeDenseWeights(std::uint64_t seed, int in, int units) {
  util::Rng rng(seed);
  DenseWeights w;
  w.in = in;
  w.units = units;
  w.kernel.resize(static_cast<std::size_t>(in) * units);
  for (float& v : w.kernel) v = rng.NextFloat(kWeightScale);
  w.bias.resize(static_cast<std::size_t>(units));
  for (float& v : w.bias) v = rng.NextFloat(kWeightScale);
  return w;
}

}  // namespace serenity::runtime
