// Ledger semantics of util::MemoryBudget and BudgetReservation: hierarchy
// (child charges must fit every ancestor, partial charges unwind), peak
// tracking, denial counters, the kBudgetDenial testing hook, and the
// monotone high-water reservation (delta charging, wholesale refund).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "testing/fault_injection.h"
#include "util/memory_budget.h"

namespace serenity::util {
namespace {

TEST(MemoryBudget, ChargesRefundsAndTracksPeak) {
  MemoryBudget b(100);
  EXPECT_EQ(b.limit_bytes(), 100);
  EXPECT_TRUE(b.TryCharge(60));
  EXPECT_EQ(b.used_bytes(), 60);
  EXPECT_TRUE(b.TryCharge(40));
  EXPECT_EQ(b.used_bytes(), 100);
  EXPECT_EQ(b.peak_bytes(), 100);
  EXPECT_FALSE(b.TryCharge(1));  // full
  EXPECT_EQ(b.denials(), 1u);
  b.Refund(100);
  EXPECT_EQ(b.used_bytes(), 0);
  EXPECT_EQ(b.peak_bytes(), 100);  // peak is a high-water mark
  EXPECT_EQ(b.total_charges(), 2u);
}

TEST(MemoryBudget, ZeroByteChargeAlwaysFits) {
  MemoryBudget b(10);
  EXPECT_TRUE(b.TryCharge(10));
  EXPECT_TRUE(b.TryCharge(0));
  EXPECT_EQ(b.used_bytes(), 10);
}

TEST(MemoryBudget, ChildChargeMustFitParent) {
  MemoryBudget parent(100);
  MemoryBudget child_a(100, &parent);
  MemoryBudget child_b(100, &parent);
  EXPECT_TRUE(child_a.TryCharge(70));
  EXPECT_EQ(parent.used_bytes(), 70);
  // child_b has local room but the shared parent does not: the charge is
  // refused and child_b's own ledger is unwound to zero.
  EXPECT_FALSE(child_b.TryCharge(40));
  EXPECT_EQ(child_b.used_bytes(), 0);
  EXPECT_EQ(parent.used_bytes(), 70);
  EXPECT_TRUE(child_b.TryCharge(30));
  EXPECT_EQ(parent.used_bytes(), 100);
  child_a.Refund(70);
  child_b.Refund(30);
  EXPECT_EQ(parent.used_bytes(), 0);
  EXPECT_EQ(parent.peak_bytes(), 100);
}

TEST(MemoryBudget, ChildLimitBindsEvenWhenParentHasRoom) {
  MemoryBudget parent(1000);
  MemoryBudget child(10, &parent);
  EXPECT_FALSE(child.TryCharge(11));
  EXPECT_EQ(parent.used_bytes(), 0);  // nothing leaked into the parent
  EXPECT_EQ(child.denials(), 1u);
}

TEST(MemoryBudget, ConcurrentChargesNeverOvershootTheLimit) {
  constexpr std::int64_t kLimit = 1 << 20;
  constexpr std::int64_t kChunk = 64;
  MemoryBudget b(kLimit);
  std::atomic<std::int64_t> held{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        if (b.TryCharge(kChunk)) {
          held.fetch_add(kChunk, std::memory_order_relaxed);
          ASSERT_LE(b.used_bytes(), kLimit);
          if (i % 3 == 0) {
            b.Refund(kChunk);
            held.fetch_sub(kChunk, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(b.used_bytes(), held.load());
  EXPECT_LE(b.peak_bytes(), kLimit);
  b.Refund(held.load());
  EXPECT_EQ(b.used_bytes(), 0);
}

TEST(MemoryBudget, FaultHookForcesDenial) {
  MemoryBudget b(1 << 30);
  {
    testing::ScopedFault fault(testing::FaultPoint::kBudgetDenial);
    EXPECT_FALSE(b.TryCharge(1));
    EXPECT_EQ(b.used_bytes(), 0);
    EXPECT_EQ(b.denials(), 1u);
  }
  EXPECT_TRUE(b.TryCharge(1));
  b.Refund(1);
}

TEST(BudgetReservation, ChargesDeltasAndRefundsWholesale) {
  MemoryBudget b(100);
  {
    BudgetReservation r(&b);
    EXPECT_TRUE(r.EnsureAtLeast(30));
    EXPECT_EQ(b.used_bytes(), 30);
    EXPECT_TRUE(r.EnsureAtLeast(20));  // below high water: no-op
    EXPECT_EQ(b.used_bytes(), 30);
    EXPECT_TRUE(r.EnsureAtLeast(80));  // charges only the 50-byte delta
    EXPECT_EQ(b.used_bytes(), 80);
    EXPECT_EQ(r.reserved_bytes(), 80);
    // A denied growth leaves the existing reservation intact.
    EXPECT_FALSE(r.EnsureAtLeast(101));
    EXPECT_EQ(b.used_bytes(), 80);
    EXPECT_EQ(r.reserved_bytes(), 80);
  }
  EXPECT_EQ(b.used_bytes(), 0);  // destructor refunded everything
}

TEST(BudgetReservation, ReleaseAllIsIdempotent) {
  MemoryBudget b(100);
  BudgetReservation r(&b);
  EXPECT_TRUE(r.EnsureAtLeast(40));
  r.ReleaseAll();
  EXPECT_EQ(b.used_bytes(), 0);
  r.ReleaseAll();
  EXPECT_EQ(b.used_bytes(), 0);
  // Reservations can regrow after a release.
  EXPECT_TRUE(r.EnsureAtLeast(10));
  EXPECT_EQ(b.used_bytes(), 10);
}

TEST(BudgetReservation, NullBudgetIsUngoverned) {
  BudgetReservation r(nullptr);
  EXPECT_TRUE(r.EnsureAtLeast(std::int64_t{1} << 50));
  r.ReleaseAll();
}

}  // namespace
}  // namespace serenity::util
