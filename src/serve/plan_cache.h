// PlanCache: the amortization layer of the serve path.
//
// SERENITY's expensive memory-aware search runs once per *structural* graph;
// the resulting schedule + arena plan is then reused across millions of
// inferences. The cache maps CanonicalGraphHash (graph/canonical_hash.h) to
// an immutable CachedPlan holding the full PipelineResult plus its
// serialized execution plan (serialize/plan.h), so a hit serves in O(hash +
// lookup) and hands the caller the exact artifact an edge runtime consumes.
//
// Eviction is LRU bounded by a byte budget: every entry is charged its
// retained footprint (graph nodes, schedule, placements, serialized texts)
// and least-recently-served entries are dropped until the budget holds.
// Lookups and inserts are thread-safe; returned plans are shared_ptr<const>
// snapshots, so an entry evicted mid-use stays alive for its holders.
//
// Persistence ("warm restart"): SaveToFile writes every entry as
//   entry <hash_hex> <graph_bytes> <plan_bytes> <crc> <peak> <quality> ...
// followed by the length-prefixed serialized scheduled graph and plan
// texts, through the atomic write-temp-then-rename path
// (serialize::AtomicWriteFile) so a crash mid-save never tears the file.
// Each entry carries a CRC-32 over its metadata and payloads; LoadFromFile
// verifies it *before* parsing, quarantines-and-skips entries that fail
// (resynchronizing at the next "entry " record), and reports how many were
// loaded vs quarantined — a torn write or bit flip costs one entry, not the
// warm start. Search timings are not persisted — they describe the planning
// run, not the plan — and load as zero.
#ifndef SERENITY_SERVE_PLAN_CACHE_H_
#define SERENITY_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/pipeline.h"
#include "graph/canonical_hash.h"
#include "serialize/plan.h"
#include "util/memory_budget.h"
#include "util/status.h"

namespace serenity::serve {

struct CachedPlan {
  graph::GraphHash hash;
  core::PipelineResult result;  // success is always true for cached entries
  std::string plan_text;        // serialize::PlanToText of `plan`
  serialize::ExecutionPlan plan;  // arena plan over result.scheduled_graph
  std::int64_t bytes = 0;       // retained-footprint charge for eviction
  // Which rung of the degradation ladder produced this plan. Anything below
  // kExact marks the entry upgradeable: SchedulerService re-plans it in the
  // background and replaces it in place.
  core::PlanQuality quality = core::PlanQuality::kExact;
  // How far this plan's peak sits above the best peak known when it was
  // inserted (0 for exact plans) — the price paid for degrading.
  std::int64_t peak_delta_bytes = 0;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::int64_t bytes_in_use = 0;
  std::int64_t capacity_bytes = 0;
  std::uint64_t entries = 0;
  // Cumulative persistence-failure counters: files that failed to load at
  // all, and per-entry quarantines (checksum/parse failures skipped during
  // otherwise-successful loads).
  std::uint64_t load_errors = 0;
  std::uint64_t entries_quarantined = 0;
  // Entries currently in the cache whose quality is below kExact.
  std::uint64_t degraded_entries = 0;
};

// What LoadFromFile accomplished (returned even when some entries were
// damaged — partial warm starts are the point of per-entry checksums).
struct CacheLoadReport {
  int entries_loaded = 0;
  int entries_quarantined = 0;
  // True when the file was a valid cache of an older format version and was
  // skipped wholesale (stale, not corrupt).
  bool stale_version = false;
};

class PlanCache {
 public:
  explicit PlanCache(std::int64_t capacity_bytes = 256ll << 20)
      : capacity_bytes_(capacity_bytes) {}

  // Returns the cached plan and bumps it most-recently-used, or nullptr.
  std::shared_ptr<const CachedPlan> Lookup(const graph::GraphHash& hash);

  // Builds a CachedPlan from a successful pipeline run (serializes the
  // execution plan internally), inserts it and returns it. Replaces any
  // existing entry for `hash`; evicts LRU entries beyond the byte budget.
  // Degradation metadata (quality, peak delta) is carried over from
  // `result`. Dies if `result.success` is false — failures are not
  // cacheable.
  std::shared_ptr<const CachedPlan> Insert(const graph::GraphHash& hash,
                                           core::PipelineResult result);

  // Insert with the arena-planning pass charged against `budget`
  // (serialize::MakePlanOr): a denied charge returns kResourceExhausted and
  // caches nothing — the serving layer sheds the request with a retry hint
  // instead of allocating past the governor. Null budget == Insert.
  util::StatusOr<std::shared_ptr<const CachedPlan>> InsertGoverned(
      const graph::GraphHash& hash, core::PipelineResult result,
      util::MemoryBudget* budget);

  PlanCacheStats stats() const;
  void ResetStats();

  // Persists all entries, most-recently-used first (so a truncated LoadFrom
  // of a smaller cache keeps the hottest plans), atomically: the file is
  // staged as `path`.tmp and renamed over `path` only once fully written
  // and synced. Returns a non-OK Status on I/O failure (the old file, if
  // any, is untouched).
  util::Status SaveToFile(const std::string& path) const;

  // Loads entries from `path` into this cache (on top of whatever it
  // holds); counts as insertions, not hits. Entries whose checksum or
  // payload fails verification are quarantined (skipped, counted, load
  // continues at the next entry record). Returns a report on success; a
  // non-OK Status only when the file itself is unreadable or not a plan
  // cache at all. Never aborts on damaged input.
  util::StatusOr<CacheLoadReport> LoadFromFile(const std::string& path);

 private:
  struct Entry {
    std::shared_ptr<const CachedPlan> plan;
    std::list<graph::GraphHash>::iterator lru_pos;
  };

  // All private helpers assume mu_ is held.
  void InsertLocked(std::shared_ptr<const CachedPlan> plan);
  void EvictToCapacityLocked();
  void EraseLocked(const graph::GraphHash& hash);

  mutable std::mutex mu_;
  std::int64_t capacity_bytes_;
  std::int64_t bytes_in_use_ = 0;
  std::uint64_t degraded_entries_ = 0;
  std::list<graph::GraphHash> lru_;  // front = most recently used
  std::unordered_map<graph::GraphHash, Entry, graph::GraphHashHasher>
      entries_;
  PlanCacheStats counters_;  // cumulative counters only
};

// The retained-footprint charge of one entry (exposed for tests).
std::int64_t CachedPlanBytes(const CachedPlan& plan);

}  // namespace serenity::serve

#endif  // SERENITY_SERVE_PLAN_CACHE_H_
