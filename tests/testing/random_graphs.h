// Random-graph helpers shared by the property-based tests.
#ifndef SERENITY_TESTS_TESTING_RANDOM_GRAPHS_H_
#define SERENITY_TESTS_TESTING_RANDOM_GRAPHS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace serenity::testing {

struct RandomDagOptions {
  int num_ops = 8;         // ops beyond the input
  int max_channels = 4;    // tensor sizes vary within [1, max_channels]
  int spatial = 16;        // 16x16xC float32 -> C KB
  double extra_edge_p = 0.3;  // chance of a second operand (add/concat)
  bool join_sinks = true;  // concat all leftover sinks into one output
};

// A connected random DAG of conv/relu/add/concat ops. Insertion order is a
// valid topological order; every node is reachable from the input.
inline graph::Graph RandomDag(util::Rng& rng, const RandomDagOptions& opts,
                              const std::string& name) {
  graph::GraphBuilder b(name);
  std::vector<graph::NodeId> pool;
  pool.push_back(b.Input(
      graph::TensorShape{1, opts.spatial, opts.spatial,
                         rng.NextInt(1, opts.max_channels)},
      "in"));
  for (int i = 0; i < opts.num_ops; ++i) {
    const graph::NodeId src = pool[static_cast<std::size_t>(
        rng.NextInt(0, static_cast<int>(pool.size()) - 1))];
    const int out_c = rng.NextInt(1, opts.max_channels);
    const int pick = rng.NextInt(0, 3);
    graph::NodeId id = graph::kInvalidNode;
    if (pick == 0 || pool.size() < 2) {
      id = b.Conv1x1(src, out_c, "conv" + std::to_string(i));
    } else if (pick == 1) {
      id = b.Relu(src, "relu" + std::to_string(i));
    } else {
      graph::NodeId other = pool[static_cast<std::size_t>(
          rng.NextInt(0, static_cast<int>(pool.size()) - 1))];
      if (other == src) {
        id = b.Conv1x1(src, out_c, "conv" + std::to_string(i));
      } else if (pick == 2 &&
                 b.shape(src).c == b.shape(other).c) {
        id = b.Add({src, other}, "add" + std::to_string(i));
      } else {
        id = b.Concat({src, other}, "cat" + std::to_string(i));
      }
    }
    pool.push_back(id);
  }
  if (opts.join_sinks) {
    std::vector<graph::NodeId> frontier;
    for (const graph::NodeId id : pool) {
      if (b.graph().consumers(id).empty()) frontier.push_back(id);
    }
    if (frontier.size() >= 2) (void)b.Concat(frontier, "out");
  }
  return std::move(b).Build();
}

// A structurally identical copy of `g` with nodes inserted in a random
// valid topological order, fresh names, and remapped node/buffer ids — the
// builder-bookkeeping relabeling CanonicalGraphHash must be invariant
// under. Preserves buffer sharing (aliasing ops keep aliasing the same
// remapped buffer) and operand order.
inline graph::Graph RelabelIsomorphic(const graph::Graph& g, util::Rng& rng,
                                      const std::string& name) {
  const int n = g.num_nodes();
  // Indegree over *distinct* producers, matching consumers()'s collapsed
  // duplicate entries.
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (graph::NodeId id = 0; id < n; ++id) {
    std::vector<graph::NodeId> distinct = g.node(id).inputs;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    indegree[static_cast<std::size_t>(id)] =
        static_cast<int>(distinct.size());
  }

  graph::Graph out(name);
  std::vector<graph::NodeId> node_map(static_cast<std::size_t>(n),
                                      graph::kInvalidNode);
  std::vector<graph::BufferId> buffer_map(
      static_cast<std::size_t>(g.num_buffers()), graph::kInvalidBuffer);
  std::vector<graph::NodeId> ready;
  for (graph::NodeId id = 0; id < n; ++id) {
    if (indegree[static_cast<std::size_t>(id)] == 0) ready.push_back(id);
  }
  int emitted = 0;
  while (!ready.empty()) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.NextBounded(static_cast<std::uint64_t>(ready.size())));
    const graph::NodeId orig = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();

    graph::Node node = g.node(orig);
    node.id = graph::kInvalidNode;
    node.name = "relabeled" + std::to_string(emitted++);
    for (graph::NodeId& input : node.inputs) {
      input = node_map[static_cast<std::size_t>(input)];
    }
    graph::BufferId& mapped =
        buffer_map[static_cast<std::size_t>(node.buffer)];
    if (mapped == graph::kInvalidBuffer) {
      mapped = out.AddBuffer(g.buffer(node.buffer).size_bytes);
    }
    node.buffer = mapped;
    node_map[static_cast<std::size_t>(orig)] = out.AddNode(std::move(node));
    for (const graph::NodeId consumer : g.consumers(orig)) {
      if (--indegree[static_cast<std::size_t>(consumer)] == 0) {
        ready.push_back(consumer);
      }
    }
  }
  // Keep any never-referenced buffers so buffer counts stay equal.
  for (graph::BufferId b = 0; b < g.num_buffers(); ++b) {
    if (buffer_map[static_cast<std::size_t>(b)] == graph::kInvalidBuffer) {
      (void)out.AddBuffer(g.buffer(b).size_bytes);
    }
  }
  out.ValidateOrDie();
  return out;
}

}  // namespace serenity::testing

#endif  // SERENITY_TESTS_TESTING_RANDOM_GRAPHS_H_
