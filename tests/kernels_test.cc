#include "runtime/kernels.h"

#include <gtest/gtest.h>

#include <cmath>

#include "runtime/weights.h"
#include "testing/kernel_wrappers.h"
#include "util/rng.h"

namespace serenity::runtime {
namespace {

using namespace wrappers;  // allocating test forms: Conv2d(x, w, attrs), ...

using graph::ConvAttrs;
using graph::Padding;
using graph::TensorShape;

constexpr float kTol = 1e-4f;

TEST(Conv2d, IdentityKernelPassesThrough) {
  // 1x1 kernel w[0][0][i][o] = identity matrix, zero bias.
  ConvWeights w;
  w.kh = w.kw = 1;
  w.in_c = w.out_c = 2;
  w.kernel = {1, 0, 0, 1};  // [ic=0][oc], [ic=1][oc]
  w.bias = {0, 0};
  util::Rng rng(3);
  const Tensor x = Tensor::Random(TensorShape{1, 4, 4, 2}, rng);
  const Tensor y = Conv2d(x, w, ConvAttrs{1, 1, 1, 1, Padding::kSame});
  EXPECT_LE(y.MaxAbsDiff(x), kTol);
}

TEST(Conv2d, HandComputed3x3) {
  // Single channel, 3x3 all-ones kernel on a 3x3 all-ones image: SAME
  // padding means corner outputs see 4 taps, edges 6, center 9.
  ConvWeights w;
  w.kh = w.kw = 3;
  w.in_c = w.out_c = 1;
  w.kernel.assign(9, 1.0f);
  w.bias = {0.0f};
  Tensor x(TensorShape{1, 3, 3, 1});
  std::fill(x.data(), x.data() + x.size(), 1.0f);
  const Tensor y = Conv2d(x, w, ConvAttrs{3, 3, 1, 1, Padding::kSame});
  EXPECT_NEAR(y.At(0, 0, 0, 0), 4.0f, kTol);
  EXPECT_NEAR(y.At(0, 0, 1, 0), 6.0f, kTol);
  EXPECT_NEAR(y.At(0, 1, 1, 0), 9.0f, kTol);
}

TEST(Conv2d, BiasIsAdded) {
  ConvWeights w;
  w.kh = w.kw = 1;
  w.in_c = 1;
  w.out_c = 2;
  w.kernel = {0.0f, 0.0f};
  w.bias = {1.5f, -2.0f};
  Tensor x(TensorShape{1, 2, 2, 1});
  const Tensor y = Conv2d(x, w, ConvAttrs{1, 1, 1, 1, Padding::kSame});
  EXPECT_NEAR(y.At(0, 0, 0, 0), 1.5f, kTol);
  EXPECT_NEAR(y.At(0, 0, 0, 1), -2.0f, kTol);
}

TEST(Conv2d, StrideDownsamples) {
  util::Rng rng(5);
  const ConvWeights w = MakeConvWeights(9, 3, 3, 4, 8);
  const Tensor x = Tensor::Random(TensorShape{1, 8, 8, 4}, rng);
  const Tensor y = Conv2d(x, w, ConvAttrs{3, 3, 2, 1, Padding::kSame});
  EXPECT_EQ(y.shape(), (TensorShape{1, 4, 4, 8}));
}

TEST(Conv2dPartial, SlicesSumToFullConv) {
  // The rewriter's correctness in kernel form (Eq. 3-6): partial convs over
  // channel slices, accumulated, equal the conv of the concatenated input.
  util::Rng rng(11);
  const Tensor x0 = Tensor::Random(TensorShape{1, 6, 6, 3}, rng);
  const Tensor x1 = Tensor::Random(TensorShape{1, 6, 6, 2}, rng);
  const Tensor x2 = Tensor::Random(TensorShape{1, 6, 6, 4}, rng);
  const Tensor whole = Concat({&x0, &x1, &x2});
  const ConvWeights w = MakeConvWeights(77, 3, 3, 9, 5);
  const ConvAttrs attrs{3, 3, 1, 1, Padding::kSame};
  const Tensor expected = Conv2d(whole, w, attrs);

  Tensor acc(expected.shape());
  Conv2dPartial(x0, w, attrs, 0, /*overwrite=*/true, /*add_bias=*/true, acc);
  Conv2dPartial(x1, w, attrs, 3, /*overwrite=*/false, /*add_bias=*/false,
                acc);
  Conv2dPartial(x2, w, attrs, 5, /*overwrite=*/false, /*add_bias=*/false,
                acc);
  EXPECT_LE(acc.MaxAbsDiff(expected), kTol);
}

TEST(Conv2dPartial, StridedAndDilatedSlicesStillSum) {
  util::Rng rng(13);
  const Tensor x0 = Tensor::Random(TensorShape{1, 9, 9, 2}, rng);
  const Tensor x1 = Tensor::Random(TensorShape{1, 9, 9, 2}, rng);
  const Tensor whole = Concat({&x0, &x1});
  for (const ConvAttrs attrs :
       {ConvAttrs{3, 3, 2, 1, Padding::kSame},
        ConvAttrs{3, 3, 1, 2, Padding::kSame},
        ConvAttrs{3, 3, 1, 1, Padding::kValid}}) {
    const ConvWeights w = MakeConvWeights(78, 3, 3, 4, 6);
    const Tensor expected = Conv2d(whole, w, attrs);
    Tensor acc(expected.shape());
    Conv2dPartial(x0, w, attrs, 0, true, true, acc);
    Conv2dPartial(x1, w, attrs, 2, false, false, acc);
    EXPECT_LE(acc.MaxAbsDiff(expected), kTol);
  }
}

TEST(DepthwisePartial, SlicesMatchFullDepthwise) {
  // Eq. 7-8: per-branch depthwise into channel slices == depthwise of the
  // concatenation.
  util::Rng rng(17);
  const Tensor x0 = Tensor::Random(TensorShape{1, 6, 6, 3}, rng);
  const Tensor x1 = Tensor::Random(TensorShape{1, 6, 6, 5}, rng);
  const Tensor whole = Concat({&x0, &x1});
  const DepthwiseWeights w = MakeDepthwiseWeights(55, 3, 3, 8);
  const ConvAttrs attrs{3, 3, 1, 1, Padding::kSame};
  const Tensor expected = DepthwiseConv2d(whole, w, attrs);

  Tensor out(expected.shape());
  DepthwiseConv2dPartial(x0, w, attrs, 0, out, 0);
  DepthwiseConv2dPartial(x1, w, attrs, 3, out, 3);
  EXPECT_LE(out.MaxAbsDiff(expected), kTol);
}

TEST(Concat, OrdersChannels) {
  Tensor a(TensorShape{1, 1, 1, 2});
  a.Assign({1, 2});
  Tensor b(TensorShape{1, 1, 1, 1});
  b.Assign({3});
  const Tensor y = Concat({&a, &b});
  EXPECT_EQ(y.shape(), (TensorShape{1, 1, 1, 3}));
  EXPECT_EQ(y.ToVector(), (std::vector<float>{1, 2, 3}));
}

TEST(AddMulRelu, Elementwise) {
  Tensor a(TensorShape{1, 1, 1, 3});
  a.Assign({1, -2, 3});
  Tensor b(TensorShape{1, 1, 1, 3});
  b.Assign({4, 5, -6});
  EXPECT_EQ(Add({&a, &b}).ToVector(), (std::vector<float>{5, 3, -3}));
  EXPECT_EQ(Mul({&a, &b}).ToVector(), (std::vector<float>{4, -10, -18}));
  EXPECT_EQ(Relu(a).ToVector(), (std::vector<float>{1, 0, 3}));
}

TEST(BatchNorm, ScaleAndShift) {
  Tensor x(TensorShape{1, 1, 2, 2});
  x.Assign({1, 2, 3, 4});
  BatchNormWeights w;
  w.scale = {2, 10};
  w.shift = {0.5f, -1};
  const Tensor y = BatchNorm(x, w);
  EXPECT_EQ(y.ToVector(), (std::vector<float>{2.5f, 19, 6.5f, 39}));
}

TEST(Pooling, MaxAndAvg) {
  Tensor x(TensorShape{1, 2, 2, 1});
  x.Assign({1, 2, 3, 4});
  const ConvAttrs attrs{2, 2, 2, 1, Padding::kSame};
  EXPECT_NEAR(MaxPool2d(x, attrs).At(0, 0, 0, 0), 4.0f, kTol);
  EXPECT_NEAR(AvgPool2d(x, attrs).At(0, 0, 0, 0), 2.5f, kTol);
}

TEST(Pooling, AvgCountsOnlyValidTaps) {
  // 3x3 SAME avg over a 2x2 input: the corner window sees 4 valid values.
  Tensor x(TensorShape{1, 2, 2, 1});
  x.Assign({1, 2, 3, 4});
  const ConvAttrs attrs{3, 3, 1, 1, Padding::kSame};
  const Tensor y = AvgPool2d(x, attrs);
  EXPECT_NEAR(y.At(0, 0, 0, 0), 2.5f, kTol);
}

TEST(GlobalAvgPool, AveragesSpatial) {
  Tensor x(TensorShape{1, 2, 2, 2});
  x.Assign({1, 10, 2, 20, 3, 30, 4, 40});
  const Tensor y = GlobalAvgPool2d(x);
  EXPECT_EQ(y.shape(), (TensorShape{1, 1, 1, 2}));
  EXPECT_NEAR(y.At(0, 0, 0, 0), 2.5f, kTol);
  EXPECT_NEAR(y.At(0, 0, 0, 1), 25.0f, kTol);
}

TEST(Dense, MatrixVector) {
  Tensor x(TensorShape{1, 1, 1, 2});
  x.Assign({1, 2});
  DenseWeights w;
  w.in = 2;
  w.units = 2;
  w.kernel = {1, 3, 2, 4};  // [in][units]
  w.bias = {10, 20};
  const Tensor y = Dense(x, w);
  EXPECT_NEAR(y.At(0, 0, 0, 0), 1 * 1 + 2 * 2 + 10, kTol);
  EXPECT_NEAR(y.At(0, 0, 0, 1), 1 * 3 + 2 * 4 + 20, kTol);
}

TEST(Weights, DeterministicFromSeed) {
  const ConvWeights a = MakeConvWeights(123, 3, 3, 4, 8);
  const ConvWeights b = MakeConvWeights(123, 3, 3, 4, 8);
  const ConvWeights c = MakeConvWeights(124, 3, 3, 4, 8);
  EXPECT_EQ(a.kernel, b.kernel);
  EXPECT_EQ(a.bias, b.bias);
  EXPECT_NE(a.kernel, c.kernel);
}

}  // namespace
}  // namespace serenity::runtime
