#include "memsim/hierarchy_sim.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "util/logging.h"

namespace serenity::memsim {

namespace {

constexpr std::int64_t kNoNextUse = std::numeric_limits<std::int64_t>::max();

enum class TouchKind : std::uint8_t {
  kRead,     // consume existing content
  kProduce,  // overwrite: no old content needed
  kRmw,      // read-modify-write (accumulators, slice writers)
};

// One trace element covers a whole buffer's page range — a *run* — instead
// of one element per page: a kernel always touches every page of a buffer
// back to back, so a run plus arithmetic reconstructs the per-page touch
// sequence exactly (position of page p in a run = base + p - first_page).
// This shrinks the trace ~page_count-fold on large-buffer cells while the
// replay below still walks page-granular touches, keeping every counter
// bit-identical to the per-touch trace.
struct TouchRun {
  std::int32_t first_page = 0;
  std::int32_t page_count = 0;
  TouchKind kind = TouchKind::kRead;
  bool last_use = false;  // final run of a non-sink buffer: pages die here
  std::int64_t base = 0;  // page-granular position of the run's first touch
  std::int64_t next_base = kNoNextUse;  // base of this buffer's next run
};

struct PageState {
  bool produced = false;  // holds defined content (on- or off-chip)
  bool dirty = false;
  bool has_offchip_copy = false;
  std::int32_t slot = -1;            // index into `resident`, -1 if absent
  std::int64_t last_touch = -1;      // LRU recency
  std::int64_t next_use = kNoNextUse;  // Belady distance (set per touch)
};

// Lazy eviction heap entry: max-metric first, ties to the lowest page id.
// An entry is stale once its page was re-touched (the metric moved) or
// dropped; stale entries are discarded on pop.
struct HeapEntry {
  std::int64_t metric = 0;
  std::int32_t page = 0;
};

struct HeapEntryLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.metric != b.metric) return a.metric < b.metric;
    return a.page > b.page;  // equal metrics: lowest page id wins
  }
};

}  // namespace

SimResult SimulateHierarchy(const graph::Graph& graph,
                            const graph::BufferUseTable& table,
                            const sched::Schedule& schedule,
                            const SimOptions& options) {
  SERENITY_CHECK(sched::IsTopologicalOrder(graph, schedule));
  SERENITY_CHECK_GT(options.onchip_bytes, 0);
  SERENITY_CHECK_GT(options.page_bytes, 0);

  SimResult result;
  if (options.onchip_bytes < options.page_bytes) {
    result.feasible = false;
    return result;
  }

  // --- Page table ---
  // Pages are contiguous per buffer; the owning buffer, byte size (the last
  // page of a buffer may be partial) and sink-ness of every page are
  // precomputed once, so the replay never binary-searches `first_page`.
  const std::size_t num_buffers = table.buffers.size();
  std::vector<std::int32_t> first_page(num_buffers + 1, 0);
  for (std::size_t b = 0; b < num_buffers; ++b) {
    const std::int64_t bytes = std::max<std::int64_t>(
        table.buffers[b].size_bytes, 1);
    const std::int64_t pages =
        (bytes + options.page_bytes - 1) / options.page_bytes;
    first_page[b + 1] = first_page[b] + static_cast<std::int32_t>(pages);
  }
  const std::size_t num_pages = static_cast<std::size_t>(
      first_page[num_buffers]);
  std::vector<std::int64_t> page_bytes_of(num_pages, 0);
  std::vector<std::uint8_t> page_is_sink(num_pages, 0);
  for (std::size_t b = 0; b < num_buffers; ++b) {
    for (std::int32_t p = first_page[b]; p < first_page[b + 1]; ++p) {
      const std::int64_t offset = static_cast<std::int64_t>(
                                      p - first_page[b]) *
                                  options.page_bytes;
      page_bytes_of[static_cast<std::size_t>(p)] = std::min(
          options.page_bytes, table.buffers[b].size_bytes - offset);
      page_is_sink[static_cast<std::size_t>(p)] = table.buffers[b].is_sink;
    }
  }

  // --- Access trace ---
  // A kernel consumes its inputs throughout output production, so input
  // pages are touched before AND after the output pages: under pressure,
  // Belady may stream input pages out and back (costing reads), but they
  // cannot silently die before the output exists — preserving the
  // working-set semantics the footprint model is built on. Emitted as
  // per-buffer page runs; `position` counts page-granular touches so run
  // bases equal the positions the per-touch trace would have assigned.
  std::vector<bool> written_once(num_buffers, false);
  std::vector<TouchRun> trace;
  std::int64_t position = 0;
  const auto emit_run = [&](graph::BufferId b, TouchKind kind) {
    const std::size_t bi = static_cast<std::size_t>(b);
    const std::int32_t pages = first_page[bi + 1] - first_page[bi];
    trace.push_back(TouchRun{first_page[bi], pages, kind, false, position,
                             kNoNextUse});
    position += pages;
  };
  for (const graph::NodeId id : schedule) {
    const std::size_t uid = static_cast<std::size_t>(id);
    const graph::BufferId own = graph.node(id).buffer;
    const auto& reads = table.read_buffers[uid];
    const auto emit_reads = [&] {
      for (const graph::BufferId b : reads) {
        if (b == own) continue;  // folded into the write touches
        emit_run(b, TouchKind::kRead);
      }
    };
    emit_reads();
    // Accumulators and slice writers must preserve prior content
    // (read-modify-write); a buffer's first writer overwrites cleanly.
    emit_run(own, written_once[static_cast<std::size_t>(own)]
                      ? TouchKind::kRmw
                      : TouchKind::kProduce);
    emit_reads();
    written_once[static_cast<std::size_t>(own)] = true;
  }

  // Belady OPT linkage at run granularity: one backward pass threads every
  // run to the same buffer's next run. A run always covers the buffer's
  // full page range, so page p's next use is next_base + (p - first_page) —
  // exactly the position the per-touch linkage produced. The same pass
  // marks each non-sink buffer's final run as its pages' death (liveness
  // ends at the last touching node, as in the footprint evaluator). Keyed
  // by first_page, which identifies the buffer.
  std::vector<std::int64_t> next_seen(num_pages + 1, kNoNextUse);
  for (std::size_t i = trace.size(); i-- > 0;) {
    TouchRun& run = trace[i];
    const std::size_t key = static_cast<std::size_t>(run.first_page);
    run.next_base = next_seen[key];
    if (next_seen[key] == kNoNextUse &&
        !page_is_sink[static_cast<std::size_t>(run.first_page)]) {
      run.last_use = true;
    }
    next_seen[key] = run.base;
  }

  // --- Replay ---
  std::vector<PageState> state(num_pages);
  std::vector<std::int32_t> resident;
  std::int64_t resident_bytes = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapEntryLess> heap;

  // The eviction metric of a resident page as of its latest touch; a heap
  // entry is current iff it still matches (Belady distances strictly grow
  // and LRU recency strictly shrinks across touches of one page, so only
  // the entry pushed at the latest touch can match).
  const auto metric_of = [&](std::int32_t page) {
    const PageState& ps = state[static_cast<std::size_t>(page)];
    return options.policy == ReplacementPolicy::kBelady ? ps.next_use
                                                        : -ps.last_touch;
  };
  const auto drop = [&](std::int32_t page) {
    PageState& ps = state[static_cast<std::size_t>(page)];
    const std::int32_t back = resident.back();
    resident[static_cast<std::size_t>(ps.slot)] = back;
    state[static_cast<std::size_t>(back)].slot = ps.slot;
    resident.pop_back();
    ps.slot = -1;
    resident_bytes -= page_bytes_of[static_cast<std::size_t>(page)];
  };
  const auto evict_one = [&] {
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      PageState& vs = state[static_cast<std::size_t>(top.page)];
      if (vs.slot < 0 || top.metric != metric_of(top.page)) {
        continue;  // stale: page dropped or re-touched since the push
      }
      if (vs.dirty) {
        result.write_bytes += page_bytes_of[static_cast<std::size_t>(top.page)];
        vs.dirty = false;
        vs.has_offchip_copy = true;
      }
      drop(top.page);
      ++result.evictions;
      return;
    }
    SERENITY_CHECK(false) << "cache too small for a single page";
  };

  // The replay expands each run back into its page-granular touches, so
  // every decision (eviction order, traffic, peaks) replays the per-touch
  // trace exactly; only the trace representation shrank.
  for (const TouchRun& run : trace) {
    for (std::int32_t offset = 0; offset < run.page_count; ++offset) {
      const std::int32_t page = run.first_page + offset;
      PageState& ps = state[static_cast<std::size_t>(page)];
      if (ps.slot < 0) {
        const std::int64_t bytes =
            page_bytes_of[static_cast<std::size_t>(page)];
        while (resident_bytes + bytes > options.onchip_bytes) {
          evict_one();
        }
        // Fetch old content for reads and read-modify-writes.
        if (ps.produced && run.kind != TouchKind::kProduce) {
          SERENITY_CHECK(ps.has_offchip_copy);
          result.read_bytes += bytes;
        }
        ps.slot = static_cast<std::int32_t>(resident.size());
        resident.push_back(page);
        resident_bytes += bytes;
      }
      ps.last_touch = run.base + offset;
      ps.next_use =
          run.next_base == kNoNextUse ? kNoNextUse : run.next_base + offset;
      if (run.kind != TouchKind::kRead) {
        ps.produced = true;
        ps.dirty = true;
        ps.has_offchip_copy = false;
      }
      heap.push(HeapEntry{metric_of(page), page});
      result.peak_resident_bytes =
          std::max(result.peak_resident_bytes, resident_bytes);
      if (run.last_use) {
        ps.dirty = false;  // dead data is never read again: no write-back
        drop(page);
      }
    }
  }
  return result;
}

SimResult SimulateHierarchy(const graph::Graph& graph,
                            const sched::Schedule& schedule,
                            const SimOptions& options) {
  return SimulateHierarchy(graph, graph::BufferUseTable::Build(graph),
                           schedule, options);
}

}  // namespace serenity::memsim
