#include "models/swiftnet.h"

#include <string>
#include <vector>

#include "graph/builder.h"
#include "util/logging.h"

namespace serenity::models {

namespace {

using graph::GraphBuilder;
using graph::NodeId;

// Each cell couples a wide stem to two partitionable blocks:
//
//   stem -> [k pointwise branches] -> concat -> 1x1 conv   (channel-wise
//                                                            partitionable)
//        -> [m branches, incl. skips from the stem] -> concat -> depthwise
//                                                  (kernel-wise partitionable)
//
// The skip branches read the *stem* but are declared after the first
// concat block — the irregular wiring signature of SwiftNet's graph-
// propagation NAS (Fig. 3(a)). Declaration order (what TFLite executes)
// therefore keeps the stem alive across the first concat, while a
// memory-aware schedule computes the skips early and retires the stem —
// the ordering freedom the paper's Figure 3(b) CDF quantifies.

// Cell A: 20 nodes + the graph input = the paper's 21 (Table 2).
NodeId CellA(GraphBuilder& b, NodeId input) {
  const std::string p = "cellA";
  // Stem: 56x56x3 -> 28x28x48 (147 KB), the cell's dominant tensor.
  const NodeId stem = b.Conv2d(input, 48, 3, 2, graph::Padding::kSame, 1,
                               p + "/stem");                          // 1
  // Channel-wise-partitionable block: 8 slim branches + concat + 1x1 conv.
  std::vector<NodeId> p1;
  for (int i = 0; i < 8; ++i) {
    p1.push_back(b.Conv1x1(stem, 6, p + "/b" + std::to_string(i)));
  }                                                                   // 9
  const NodeId cat1 = b.Concat(p1, p + "/concat1");                   // 10
  const NodeId mid = b.Conv1x1(cat1, 16, p + "/conv1");               // 11
  // Kernel-wise-partitionable block: 5 branches from the conv plus 2 skip
  // branches from the stem, declared last (late stem reuse).
  std::vector<NodeId> p2;
  for (int i = 0; i < 5; ++i) {
    p2.push_back(b.Conv1x1(mid, 6, p + "/c" + std::to_string(i)));
  }                                                                   // 16
  p2.push_back(b.Conv1x1(stem, 6, p + "/skip0"));                     // 17
  p2.push_back(b.Conv1x1(stem, 6, p + "/skip1"));                     // 18
  const NodeId cat2 = b.Concat(p2, p + "/concat2");                   // 19
  return b.DepthwiseConv2d(cat2, 3, 1, graph::Padding::kSame, 1,
                           p + "/dwout");                             // 20
}

// Cell B: 19 nodes (Table 2). Same shape at 28x28, downsampling at its
// output depthwise (stride 2) so cell C runs at 14x14.
NodeId CellB(GraphBuilder& b, NodeId input) {
  const std::string p = "cellB";
  const NodeId entry = b.Conv1x1(input, 36, p + "/entry");            // 1
  const NodeId ebn = b.BatchNorm(entry, p + "/entry_bn");             // 2
  std::vector<NodeId> p1;
  for (int i = 0; i < 6; ++i) {
    p1.push_back(b.Conv1x1(ebn, 6, p + "/b" + std::to_string(i)));
  }                                                                   // 8
  const NodeId cat1 = b.Concat(p1, p + "/concat1");                   // 9
  const NodeId mid = b.Conv1x1(cat1, 16, p + "/conv1");               // 10
  const NodeId midbn = b.BatchNorm(mid, p + "/conv1_bn");             // 11
  std::vector<NodeId> p2;
  for (int i = 0; i < 4; ++i) {
    p2.push_back(b.Conv1x1(midbn, 6, p + "/c" + std::to_string(i)));
  }                                                                   // 15
  p2.push_back(b.Conv1x1(ebn, 6, p + "/skip0"));                      // 16
  p2.push_back(b.Conv1x1(ebn, 6, p + "/skip1"));                      // 17
  const NodeId cat2 = b.Concat(p2, p + "/concat2");                   // 18
  return b.DepthwiseConv2d(cat2, 5, 2, graph::Padding::kSame, 1,
                           p + "/dwout");                             // 19
}

// Cell C: 22 nodes (Table 2), at 14x14, ending in the HPD classifier head
// (global average pool + 2-way dense).
NodeId CellC(GraphBuilder& b, NodeId input) {
  const std::string p = "cellC";
  const NodeId entry = b.Conv1x1(input, 32, p + "/entry");            // 1
  const NodeId ebn = b.BatchNorm(entry, p + "/entry_bn");             // 2
  std::vector<NodeId> p1;
  for (int i = 0; i < 5; ++i) {
    p1.push_back(b.Conv1x1(ebn, 8, p + "/b" + std::to_string(i)));
  }                                                                   // 7
  const NodeId cat1 = b.Concat(p1, p + "/concat1");                   // 8
  const NodeId mid = b.Conv1x1(cat1, 32, p + "/conv1");               // 9
  const NodeId midbn = b.BatchNorm(mid, p + "/conv1_bn");             // 10
  // Side chain from the entry, declared after the first block and merged
  // by addition — the bypass that keeps the cell's wiring irregular.
  const NodeId side = b.DepthwiseConv2d(ebn, 3, 1, graph::Padding::kSame, 1,
                                        p + "/side_dw3");             // 11
  const NodeId merged = b.Add({midbn, side}, p + "/merge");           // 12
  const NodeId act = b.Relu(merged, p + "/relu");                     // 13
  std::vector<NodeId> p2;
  for (int i = 0; i < 4; ++i) {
    p2.push_back(b.Conv1x1(act, 8, p + "/c" + std::to_string(i)));
  }                                                                   // 17
  p2.push_back(b.Conv1x1(ebn, 8, p + "/skip0"));                      // 18
  const NodeId cat2 = b.Concat(p2, p + "/concat2");                   // 19
  const NodeId dw = b.DepthwiseConv2d(cat2, 3, 1, graph::Padding::kSame, 1,
                                      p + "/dwout");                  // 20
  const NodeId gap = b.GlobalAvgPool2d(dw, p + "/gap");               // 21
  return b.Dense(gap, 2, p + "/logits");                              // 22
}

}  // namespace

graph::Graph MakeSwiftNet() {
  GraphBuilder b("swiftnet");
  const NodeId input = b.Input(graph::TensorShape{1, 56, 56, 3}, "image");
  const NodeId a = CellA(b, input);
  const NodeId bb = CellB(b, a);
  (void)CellC(b, bb);
  return std::move(b).Build();
}

graph::Graph MakeSwiftNetCellA() {
  GraphBuilder b("swiftnet_cell_a");
  const NodeId input = b.Input(graph::TensorShape{1, 56, 56, 3}, "image");
  (void)CellA(b, input);
  return std::move(b).Build();
}

graph::Graph MakeSwiftNetCellB() {
  // Cell A's output (28x28x42) feeds cell B.
  GraphBuilder b("swiftnet_cell_b");
  const NodeId input = b.Input(graph::TensorShape{1, 28, 28, 42}, "cell_in");
  (void)CellB(b, input);
  return std::move(b).Build();
}

graph::Graph MakeSwiftNetCellC() {
  // Cell B's strided output (14x14x36) feeds cell C.
  GraphBuilder b("swiftnet_cell_c");
  const NodeId input = b.Input(graph::TensorShape{1, 14, 14, 36}, "cell_in");
  (void)CellC(b, input);
  return std::move(b).Build();
}

}  // namespace serenity::models
