#include "rewrite/rewriter.h"

#include <gtest/gtest.h>

#include "core/dp_scheduler.h"
#include "graph/analysis.h"
#include "graph/builder.h"
#include "models/darts.h"
#include "models/randwire.h"
#include "models/swiftnet.h"

namespace serenity::rewrite {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::OpKind;
using graph::TensorShape;

graph::Graph ConcatConv(int branches) {
  GraphBuilder b("cc" + std::to_string(branches));
  const NodeId in = b.Input(TensorShape{1, 8, 8, 4}, "in");
  std::vector<NodeId> xs;
  for (int i = 0; i < branches; ++i) {
    xs.push_back(b.Conv1x1(in, 4, "x" + std::to_string(i)));
  }
  const NodeId cat = b.Concat(xs, "cat");
  const NodeId conv = b.Conv2d(cat, 8, 3, 1, graph::Padding::kSame, 1,
                               "conv");
  (void)b.Relu(conv, "out");
  return std::move(b).Build();
}

graph::Graph ConcatDepthwise(int branches) {
  GraphBuilder b("cd" + std::to_string(branches));
  const NodeId in = b.Input(TensorShape{1, 8, 8, 4}, "in");
  std::vector<NodeId> xs;
  for (int i = 0; i < branches; ++i) {
    xs.push_back(b.Conv1x1(in, 4, "x" + std::to_string(i)));
  }
  const NodeId cat = b.Concat(xs, "cat");
  const NodeId dw = b.DepthwiseConv2d(cat, 3, 1, graph::Padding::kSame, 1,
                                      "dw");
  (void)b.Relu(dw, "out");
  return std::move(b).Build();
}

TEST(Rewriter, ChannelWiseNodeDelta) {
  // concat+conv (2 nodes) -> k partials: delta = k - 2.
  for (const int k : {2, 3, 5, 8}) {
    const graph::Graph g = ConcatConv(k);
    const RewriteResult r = RewriteGraph(g);
    EXPECT_EQ(r.report.conv_patterns, 1);
    EXPECT_EQ(r.report.depthwise_patterns, 0);
    EXPECT_EQ(r.graph.num_nodes(), g.num_nodes() + k - 2) << k;
  }
}

TEST(Rewriter, KernelWiseNodeDelta) {
  // concat+dw (2 nodes) -> k partials + view: delta = k - 1.
  for (const int k : {2, 4, 7}) {
    const graph::Graph g = ConcatDepthwise(k);
    const RewriteResult r = RewriteGraph(g);
    EXPECT_EQ(r.report.depthwise_patterns, 1);
    EXPECT_EQ(r.graph.num_nodes(), g.num_nodes() + k - 1) << k;
  }
}

TEST(Rewriter, PartialConvChainStructure) {
  const graph::Graph g = ConcatConv(3);
  const RewriteResult r = RewriteGraph(g);
  // Find the chain: one kPartialConv2d followed by two accumulators in the
  // same buffer.
  std::vector<const graph::Node*> partials;
  for (const graph::Node& n : r.graph.nodes()) {
    if (n.kind == OpKind::kPartialConv2d ||
        n.kind == OpKind::kPartialConv2dAccum) {
      partials.push_back(&n);
    }
  }
  ASSERT_EQ(partials.size(), 3u);
  EXPECT_EQ(partials[0]->kind, OpKind::kPartialConv2d);
  EXPECT_EQ(partials[1]->kind, OpKind::kPartialConv2dAccum);
  EXPECT_EQ(partials[2]->kind, OpKind::kPartialConv2dAccum);
  EXPECT_EQ(partials[0]->buffer, partials[1]->buffer);
  EXPECT_EQ(partials[1]->buffer, partials[2]->buffer);
  // Accumulators chain through their first operand.
  EXPECT_EQ(partials[1]->inputs[0], partials[0]->id);
  EXPECT_EQ(partials[2]->inputs[0], partials[1]->id);
  // In-channel slices tile the concatenated input: offsets 0, 4, 8.
  EXPECT_EQ(partials[0]->in_channel_offset, 0);
  EXPECT_EQ(partials[1]->in_channel_offset, 4);
  EXPECT_EQ(partials[2]->in_channel_offset, 8);
  for (const graph::Node* p : partials) {
    EXPECT_EQ(p->weight_in_channels, 12);
    EXPECT_EQ(p->weight_seed, partials[0]->weight_seed);
  }
}

TEST(Rewriter, PartialDepthwiseSliceStructure) {
  const graph::Graph g = ConcatDepthwise(3);
  const RewriteResult r = RewriteGraph(g);
  std::vector<const graph::Node*> partials;
  const graph::Node* view = nullptr;
  for (const graph::Node& n : r.graph.nodes()) {
    if (n.kind == OpKind::kPartialDepthwiseConv2d) partials.push_back(&n);
    if (n.kind == OpKind::kConcatView) view = &n;
  }
  ASSERT_EQ(partials.size(), 3u);
  ASSERT_NE(view, nullptr);
  for (std::size_t i = 0; i < partials.size(); ++i) {
    EXPECT_EQ(partials[i]->buffer, view->buffer);
    EXPECT_EQ(partials[i]->buffer_channel_offset, static_cast<int>(i) * 4);
    EXPECT_EQ(partials[i]->shape.c, 4);
  }
  EXPECT_EQ(view->shape.c, 12);
  EXPECT_EQ(view->inputs.size(), 3u);
}

TEST(Rewriter, PreservesWeightAndMacTotals) {
  for (const graph::Graph& g : {ConcatConv(4), ConcatDepthwise(5),
                                models::MakeSwiftNet()}) {
    const RewriteResult r = RewriteGraph(g);
    EXPECT_EQ(graph::CountWeights(r.graph), graph::CountWeights(g))
        << g.name();
    EXPECT_EQ(graph::CountMacs(r.graph), graph::CountMacs(g)) << g.name();
  }
}

TEST(Rewriter, SkipsConcatWithMultipleConsumers) {
  GraphBuilder b("multi_consumer");
  const NodeId in = b.Input(TensorShape{1, 8, 8, 4}, "in");
  const NodeId x0 = b.Conv1x1(in, 4, "x0");
  const NodeId x1 = b.Conv1x1(in, 4, "x1");
  const NodeId cat = b.Concat({x0, x1}, "cat");
  const NodeId conv = b.Conv2d(cat, 8, 3, 1, graph::Padding::kSame, 1,
                               "conv");
  const NodeId other = b.Relu(cat, "other_user");  // second consumer
  (void)b.Concat({conv, other}, "out");
  const graph::Graph g = std::move(b).Build();
  const RewriteResult r = RewriteGraph(g);
  EXPECT_EQ(r.report.TotalPatterns(), 0);
  EXPECT_EQ(r.graph.num_nodes(), g.num_nodes());
}

TEST(Rewriter, OptionsDisablePatterns) {
  RewriteOptions conv_only;
  conv_only.kernel_wise_depthwise = false;
  EXPECT_EQ(RewriteGraph(ConcatDepthwise(3), conv_only)
                .report.TotalPatterns(),
            0);
  RewriteOptions dw_only;
  dw_only.channel_wise_conv = false;
  EXPECT_EQ(RewriteGraph(ConcatConv(3), dw_only).report.TotalPatterns(), 0);
}

TEST(Rewriter, IdempotentOnRewrittenGraph) {
  const RewriteResult once = RewriteGraph(models::MakeSwiftNetCellA());
  const RewriteResult twice = RewriteGraph(once.graph);
  EXPECT_EQ(twice.report.TotalPatterns(), 0);
  EXPECT_EQ(twice.graph.num_nodes(), once.graph.num_nodes());
}

TEST(Rewriter, SwiftNetPatternInventory) {
  // Cell A: 8-branch conv pattern + 7-branch depthwise pattern, etc.
  const RewriteResult full = RewriteGraph(models::MakeSwiftNet());
  EXPECT_EQ(full.report.conv_patterns, 3);
  EXPECT_EQ(full.report.depthwise_patterns, 3);
  EXPECT_EQ(full.report.nodes_before, 62);
  EXPECT_EQ(full.report.nodes_after, 90);
}

TEST(Rewriter, RandWireHasNoPatterns) {
  // RandWire aggregates by addition, not concatenation: rewriting is a
  // no-op, matching the paper's Figure 10 (identical DP and DP+GR bars).
  const graph::Graph g = models::MakeRandWireCifar10CellA();
  const RewriteResult r = RewriteGraph(g);
  EXPECT_EQ(r.report.TotalPatterns(), 0);
}

TEST(Rewriter, LowersAchievableOptimalPeak) {
  // The point of §3.3: the rewritten search space contains schedules with
  // strictly lower optimal peaks when concat dominates the footprint.
  const graph::Graph g = ConcatConv(8);
  const core::DpResult before = core::ScheduleDp(g);
  const core::DpResult after = core::ScheduleDp(RewriteGraph(g).graph);
  ASSERT_EQ(before.status, core::DpStatus::kSolution);
  ASSERT_EQ(after.status, core::DpStatus::kSolution);
  EXPECT_LT(after.peak_bytes, before.peak_bytes);
}

}  // namespace
}  // namespace serenity::rewrite
