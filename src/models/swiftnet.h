// SwiftNet (Zhang et al., 2019) — the paper's human-presence-detection NAS
// network, its most heavily analyzed benchmark (Figs. 3, 12; Table 2).
//
// The authors' checkpoints are not public; these generators reproduce the
// published *structure*: three stacked single-input single-output cells of
// irregular multi-branch wiring whose node counts match the paper's
// partition sizes exactly — 62 = {21, 19, 22} nodes, growing to
// {33, 28, 29} after identity graph rewriting (Table 2). Each cell contains
// one concat+conv block (channel-wise-partitionable) and one
// concat+depthwise block (kernel-wise-partitionable), plus irregular
// intermediate wiring, matching the SwiftNet Cell A sketch in Fig. 3(a).
//
// Nodes are declared breadth-major (layer by layer across branches), the
// order NAS cell emitters produce and hence the order TFLite executes.
#ifndef SERENITY_MODELS_SWIFTNET_H_
#define SERENITY_MODELS_SWIFTNET_H_

#include "graph/graph.h"

namespace serenity::models {

// The full three-cell network (62 nodes, input 56x56x3 HPD-style frames).
graph::Graph MakeSwiftNet();

// Standalone per-cell graphs (each with a fresh kInput standing for the
// previous cell's output), used by the per-cell experiments.
graph::Graph MakeSwiftNetCellA();  // 21 nodes
graph::Graph MakeSwiftNetCellB();  // 1 input + 19 cell nodes
graph::Graph MakeSwiftNetCellC();  // 1 input + 22 cell nodes

}  // namespace serenity::models

#endif  // SERENITY_MODELS_SWIFTNET_H_
