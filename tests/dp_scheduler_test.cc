#include "core/dp_scheduler.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "models/swiftnet.h"
#include "sched/baselines.h"
#include "sched/brute_force.h"
#include "sched/schedule.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace serenity::core {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TensorShape;

TEST(DpScheduler, TrivialChain) {
  GraphBuilder b("chain");
  NodeId x = b.Input(TensorShape{1, 16, 16, 1}, "in");
  for (int i = 0; i < 4; ++i) x = b.Conv1x1(x, 1, "c" + std::to_string(i));
  const graph::Graph g = std::move(b).Build();
  const DpResult r = ScheduleDp(g);
  ASSERT_EQ(r.status, DpStatus::kSolution);
  EXPECT_TRUE(sched::IsTopologicalOrder(g, r.schedule));
  // A chain has exactly one schedule: peak = two adjacent 1KB tensors.
  EXPECT_EQ(r.peak_bytes, 2 * 1024);
  // One state per level (chain): states == number of ops.
  EXPECT_EQ(r.states_expanded, static_cast<std::uint64_t>(g.num_nodes()));
}

TEST(DpScheduler, PeakMatchesIndependentEvaluation) {
  util::Rng rng(123);
  testing::RandomDagOptions opts;
  opts.num_ops = 12;
  const graph::Graph g = testing::RandomDag(rng, opts, "eval_check");
  const DpResult r = ScheduleDp(g);
  ASSERT_EQ(r.status, DpStatus::kSolution);
  EXPECT_EQ(r.peak_bytes, sched::PeakFootprint(g, r.schedule));
}

// --- The paper's optimality claim (Appendix C), checked mechanically ---

class DpOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(DpOptimalityTest, MatchesBruteForceOracle) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  testing::RandomDagOptions opts;
  opts.num_ops = 8;  // ~9-10 nodes: oracle-tractable
  const graph::Graph g =
      testing::RandomDag(rng, opts, "opt" + std::to_string(GetParam()));
  const sched::BruteForceResult oracle =
      sched::BruteForceOptimalSchedule(g);
  const DpResult dp = ScheduleDp(g);
  ASSERT_EQ(dp.status, DpStatus::kSolution);
  EXPECT_EQ(dp.peak_bytes, oracle.peak_bytes)
      << "DP peak diverges from exhaustive optimum on seed " << GetParam();
  EXPECT_TRUE(sched::IsTopologicalOrder(g, dp.schedule));
}

INSTANTIATE_TEST_SUITE_P(RandomDags, DpOptimalityTest,
                         ::testing::Range(0, 40));

TEST(DpScheduler, NeverWorseThanBaselinesOnModels) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  const DpResult r = ScheduleDp(g);
  ASSERT_EQ(r.status, DpStatus::kSolution);
  EXPECT_LE(r.peak_bytes,
            sched::PeakFootprint(g, sched::TfLiteOrderSchedule(g)));
  EXPECT_LE(r.peak_bytes,
            sched::PeakFootprint(g, sched::KahnFifoSchedule(g)));
  EXPECT_LE(r.peak_bytes,
            sched::PeakFootprint(g, sched::DfsPostorderSchedule(g)));
  EXPECT_LE(r.peak_bytes,
            sched::PeakFootprint(g, sched::GreedyMemorySchedule(g)));
}

// --- Soft budget semantics (paper §3.2, Fig. 8a) ---

TEST(DpSchedulerBudget, BudgetAtOptimumStillFindsOptimum) {
  util::Rng rng(5);
  testing::RandomDagOptions opts;
  opts.num_ops = 10;
  const graph::Graph g = testing::RandomDag(rng, opts, "budget_eq");
  const DpResult unbounded = ScheduleDp(g);
  ASSERT_EQ(unbounded.status, DpStatus::kSolution);

  DpOptions exact;
  exact.budget_bytes = unbounded.peak_bytes;  // τ = µ*
  const DpResult bounded = ScheduleDp(g, exact);
  ASSERT_EQ(bounded.status, DpStatus::kSolution);
  EXPECT_EQ(bounded.peak_bytes, unbounded.peak_bytes);
}

TEST(DpSchedulerBudget, BudgetBelowOptimumHasNoSolution) {
  util::Rng rng(6);
  testing::RandomDagOptions opts;
  opts.num_ops = 10;
  const graph::Graph g = testing::RandomDag(rng, opts, "budget_lt");
  const DpResult unbounded = ScheduleDp(g);
  ASSERT_EQ(unbounded.status, DpStatus::kSolution);

  DpOptions tight;
  tight.budget_bytes = unbounded.peak_bytes - 1;  // τ < µ*
  const DpResult r = ScheduleDp(g, tight);
  EXPECT_EQ(r.status, DpStatus::kNoSolution);
}

TEST(DpSchedulerBudget, TighterBudgetsExploreFewerStates) {
  // The monotonicity that makes the binary search of Algorithm 2 sound.
  const graph::Graph g = models::MakeSwiftNetCellA();
  const DpResult unbounded = ScheduleDp(g);
  ASSERT_EQ(unbounded.status, DpStatus::kSolution);

  DpOptions loose;
  loose.budget_bytes = unbounded.peak_bytes * 2;
  DpOptions exact;
  exact.budget_bytes = unbounded.peak_bytes;
  const DpResult loose_r = ScheduleDp(g, loose);
  const DpResult exact_r = ScheduleDp(g, exact);
  ASSERT_EQ(loose_r.status, DpStatus::kSolution);
  ASSERT_EQ(exact_r.status, DpStatus::kSolution);
  EXPECT_LE(exact_r.states_expanded, loose_r.states_expanded);
  EXPECT_LE(loose_r.states_expanded, unbounded.states_expanded);
}

TEST(DpSchedulerBudget, PrunedRunIsStillOptimalWhenFeasible) {
  util::Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    testing::RandomDagOptions opts;
    opts.num_ops = 9;
    const graph::Graph g = testing::RandomDag(
        rng, opts, "prune" + std::to_string(trial));
    const DpResult unbounded = ScheduleDp(g);
    ASSERT_EQ(unbounded.status, DpStatus::kSolution);
    // Any budget >= µ* must reproduce exactly µ*.
    for (const double factor : {1.0, 1.1, 1.5}) {
      DpOptions options;
      options.budget_bytes = static_cast<std::int64_t>(
          static_cast<double>(unbounded.peak_bytes) * factor);
      const DpResult r = ScheduleDp(g, options);
      ASSERT_EQ(r.status, DpStatus::kSolution);
      EXPECT_EQ(r.peak_bytes, unbounded.peak_bytes);
    }
  }
}

// --- Resource-limit signalling ---

TEST(DpSchedulerLimits, StateCapReportsTimeout) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  DpOptions options;
  options.max_states = 10;  // absurdly small
  const DpResult r = ScheduleDp(g, options);
  EXPECT_EQ(r.status, DpStatus::kTimeout);
  EXPECT_TRUE(r.schedule.empty());
}

TEST(DpSchedulerLimits, ZeroTimeoutReportsTimeout) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  DpOptions options;
  options.step_timeout_seconds = 0.0;
  const DpResult r = ScheduleDp(g, options);
  EXPECT_EQ(r.status, DpStatus::kTimeout);
}

TEST(DpSchedulerDeath, EmptyGraphRejected) {
  const graph::Graph g("empty");
  EXPECT_DEATH(ScheduleDp(g), "empty graph");
}

// --- Aliasing-aware optimality: rewritten patterns in the state space ---

TEST(DpScheduler, OptimalWithSharedAccumulatorBuffers) {
  // Build a small rewritten-style graph by hand and cross-check against the
  // brute-force oracle, proving the DP's footprint accounting agrees with
  // the evaluator's on aliased buffers.
  graph::Graph g("accum_opt");
  graph::Node input;
  input.kind = graph::OpKind::kInput;
  input.shape = TensorShape{1, 16, 16, 2};
  const NodeId x0 = g.AddNode(input);
  const NodeId x1 = g.AddNode(input);
  const NodeId x2 = g.AddNode(input);

  graph::Node p0;
  p0.kind = graph::OpKind::kPartialConv2d;
  p0.conv = graph::ConvAttrs{1, 1, 1, 1, graph::Padding::kSame};
  p0.shape = TensorShape{1, 16, 16, 4};
  p0.inputs = {x0};
  p0.weight_in_channels = 6;
  p0.buffer = g.AddBuffer(p0.OutputBytes());
  const NodeId p0_id = g.AddNode(p0);

  graph::Node p1 = p0;
  p1.kind = graph::OpKind::kPartialConv2dAccum;
  p1.inputs = {p0_id, x1};
  p1.in_channel_offset = 2;
  const NodeId p1_id = g.AddNode(p1);

  graph::Node p2 = p1;
  p2.inputs = {p1_id, x2};
  p2.in_channel_offset = 4;
  const NodeId p2_id = g.AddNode(p2);

  graph::Node out;
  out.kind = graph::OpKind::kRelu;
  out.shape = p0.shape;
  out.inputs = {p2_id};
  g.AddNode(out);
  g.ValidateOrDie();

  const DpResult dp = ScheduleDp(g);
  ASSERT_EQ(dp.status, DpStatus::kSolution);
  const sched::BruteForceResult oracle =
      sched::BruteForceOptimalSchedule(g);
  EXPECT_EQ(dp.peak_bytes, oracle.peak_bytes);
  // Interleaving x_i with its partial keeps only one branch input alive:
  // peak = acc(4) + x(2) + x(2)... optimal: x0, p0 (x0 dies), x1, p1, ...
  // = 4 + 2 = 6KB at steady state, 2+4=6 at the spike. Plus the final relu
  // step: acc(4) + out(4) = 8KB.
  EXPECT_EQ(dp.peak_bytes, 8 * 1024);
}

// A sink-dominated exemplar: three spines each producing a large buffer
// consumed by six tiny sinks — 19 of 22 nodes are sinks or near-sinks.
// These graphs historically starved the lookahead's yield gate (early
// levels have nothing to prune, so the zero-yield streak switches the
// probe off); the per-level frontier floor is cheap enough to stay on
// everywhere and its yields re-arm the probe for the mid-search levels
// where the real pruning happens.
TEST(DpSchedulerGate, LookaheadGateStaysOnForSinkDominatedGraph) {
  GraphBuilder b("sinkdom");
  const NodeId in = b.Input(TensorShape{1, 16, 16, 2}, "in");
  for (int s = 0; s < 3; ++s) {
    const NodeId big = b.Conv1x1(in, 16 + 8 * s, "big" + std::to_string(s));
    for (int k = 0; k < 6; ++k) {
      (void)b.Conv1x1(big, 1 + (k % 3),
                      "sink" + std::to_string(s) + "_" + std::to_string(k));
    }
  }
  const graph::Graph g = std::move(b).Build();

  const DpResult off = ScheduleDp(g);
  ASSERT_EQ(off.status, DpStatus::kSolution);

  DpOptions options;
  options.incumbent_bytes =
      sched::PeakFootprint(g, sched::GreedyMemorySchedule(g));
  const DpResult r = ScheduleDp(g, options);
  ASSERT_EQ(r.status, DpStatus::kSolution);
  EXPECT_EQ(r.peak_bytes, off.peak_bytes);
  EXPECT_EQ(r.schedule, off.schedule);

  // The audit trail covers every level, and bound machinery never goes
  // fully dark: the floor runs on all levels, and the probe is live on the
  // bulk of them.
  ASSERT_EQ(r.level_bounds.size(), static_cast<std::size_t>(g.num_nodes()));
  std::size_t full = 0;
  for (const LevelBounds lb : r.level_bounds) {
    EXPECT_NE(lb, LevelBounds::kDisabled);
    full += lb == LevelBounds::kFull;
  }
  EXPECT_GE(full, r.level_bounds.size() * 2 / 3);
  EXPECT_GT(r.pruned.frontier_floor, 0u);
  EXPECT_GT(r.pruned.lookahead, 0u);

  // The floor-yield re-arm specifically: some level l with l % 8 != 0 runs
  // the probe right after a probe-off level. The zero-yield streak was
  // still >= 2 there (it only updates on levels that probed), so the only
  // gate clause that can have fired is "the floor yielded last level".
  bool rearmed = false;
  for (std::size_t l = 1; l < r.level_bounds.size(); ++l) {
    if (l % 8 != 0 && r.level_bounds[l] == LevelBounds::kFull &&
        r.level_bounds[l - 1] == LevelBounds::kFloorOnly) {
      rearmed = true;
    }
  }
  EXPECT_TRUE(rearmed);
}

}  // namespace
}  // namespace serenity::core
