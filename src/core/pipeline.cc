#include "core/pipeline.h"

#include <algorithm>
#include <utility>

#include "sched/baselines.h"
#include "sched/beam.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace serenity::core {

namespace {

// Achievable upper bound on a segment's optimal peak: the better of the
// greedy memory baseline and a narrow beam. Both produce complete, valid
// schedules, so their peaks are incumbents the branch-and-bound search can
// prune against; the beam usually tightens the greedy seed substantially at
// a cost that is negligible next to the DP it accelerates.
std::int64_t SeedIncumbent(const graph::Graph& segment, int beam_width) {
  std::int64_t incumbent = sched::PeakFootprint(
      segment, sched::GreedyMemorySchedule(segment));
  if (beam_width > 0) {
    sched::BeamOptions beam_options;
    beam_options.width = beam_width;
    incumbent = std::min(incumbent,
                         sched::ScheduleBeam(segment, beam_options).peak_bytes);
  }
  return incumbent;
}

}  // namespace

PipelineResult Pipeline::Run(const graph::Graph& graph) const {
  util::Stopwatch total_clock;
  PipelineResult result;

  // Stage 1: identity graph rewriting.
  util::Stopwatch stage_clock;
  if (options_.enable_rewriting) {
    rewrite::RewriteResult rewritten =
        rewrite::RewriteGraph(graph, options_.rewrite);
    result.scheduled_graph = std::move(rewritten.graph);
    result.rewrite_report = rewritten.report;
  } else {
    result.scheduled_graph = graph;
    result.rewrite_report.nodes_before = graph.num_nodes();
    result.rewrite_report.nodes_after = graph.num_nodes();
  }
  result.rewrite_seconds = stage_clock.ElapsedSeconds();

  // Stage 2: divide and conquer.
  stage_clock.Restart();
  Partition partition;
  if (options_.enable_partitioning) {
    partition = PartitionAtCuts(result.scheduled_graph, options_.partition);
  } else {
    // One segment: the whole graph.
    Segment whole;
    whole.subgraph = result.scheduled_graph;
    whole.orig_ids.resize(
        static_cast<std::size_t>(result.scheduled_graph.num_nodes()));
    for (graph::NodeId id = 0; id < result.scheduled_graph.num_nodes();
         ++id) {
      whole.orig_ids[static_cast<std::size_t>(id)] = id;
    }
    partition.segments.push_back(std::move(whole));
  }
  result.segment_sizes = partition.SegmentSizes();
  result.partition_seconds = stage_clock.ElapsedSeconds();

  // Stage 3: schedule each segment (conquer), then combine.
  stage_clock.Restart();
  std::vector<sched::Schedule> segment_schedules;
  segment_schedules.reserve(partition.segments.size());
  for (const Segment& segment : partition.segments) {
    // Branch-and-bound seeding (strict pruning: same peak, same schedule,
    // fewer states — DESIGN.md "Branch-and-bound over levels").
    std::int64_t incumbent = kNoBudget;
    if (options_.enable_bound_pruning) {
      incumbent =
          SeedIncumbent(segment.subgraph, options_.incumbent_beam_width);
      result.incumbent_seed_bytes =
          result.incumbent_seed_bytes < 0
              ? incumbent
              : std::min(result.incumbent_seed_bytes, incumbent);
    }
    if (options_.enable_soft_budgeting) {
      SoftBudgetOptions sb_options = options_.soft_budget;
      sb_options.incumbent_bytes =
          std::min(sb_options.incumbent_bytes, incumbent);
      sb_options.enable_bound_pruning = options_.enable_bound_pruning &&
                                        sb_options.enable_bound_pruning;
      sb_options.adaptive_parallelism = sb_options.adaptive_parallelism ||
                                        options_.adaptive_parallelism;
      SoftBudgetResult sb =
          ScheduleWithSoftBudget(segment.subgraph, sb_options);
      result.states_expanded += sb.TotalStates();
      result.states_pruned_by_bound += sb.TotalPrunedByBound();
      result.max_level_states =
          std::max(result.max_level_states, sb.max_level_states);
      if (sb.status != DpStatus::kSolution) {
        result.failure_reason = "segment '" + segment.subgraph.name() +
                                "' did not converge: " + ToString(sb.status);
        result.schedule_seconds = stage_clock.ElapsedSeconds();
        result.total_seconds = total_clock.ElapsedSeconds();
        return result;
      }
      segment_schedules.push_back(std::move(sb.schedule));
    } else {
      DpOptions dp_options = options_.dp;
      dp_options.incumbent_bytes =
          std::min(dp_options.incumbent_bytes, incumbent);
      dp_options.adaptive_parallelism = dp_options.adaptive_parallelism ||
                                        options_.adaptive_parallelism;
      const DpResult dp = ScheduleDp(segment.subgraph, dp_options);
      result.states_expanded += dp.states_expanded;
      result.states_pruned_by_bound += dp.states_pruned_by_bound;
      result.max_level_states =
          std::max(result.max_level_states, dp.max_level_states);
      if (dp.status != DpStatus::kSolution) {
        result.failure_reason = "segment '" + segment.subgraph.name() +
                                "' failed: " + ToString(dp.status);
        result.schedule_seconds = stage_clock.ElapsedSeconds();
        result.total_seconds = total_clock.ElapsedSeconds();
        return result;
      }
      segment_schedules.push_back(dp.schedule);
    }
  }
  result.schedule = CombineSegmentSchedules(partition, segment_schedules);
  result.schedule_seconds = stage_clock.ElapsedSeconds();

  SERENITY_CHECK(
      sched::IsTopologicalOrder(result.scheduled_graph, result.schedule))
      << "combined schedule is not a valid topological order";
  result.peak_bytes =
      sched::PeakFootprint(result.scheduled_graph, result.schedule);
  result.success = true;
  result.total_seconds = total_clock.ElapsedSeconds();
  return result;
}

}  // namespace serenity::core
