#include "runtime/kernel_backend.h"

#include <cstdlib>

#include "runtime/kernels.h"
#include "runtime/kernels_backends.h"

namespace serenity::runtime {

namespace {

// SERENITY_DISABLE_AVX2=1 (any non-empty value) forces the AVX2 backend to
// report unavailable, exercising the cpuid-fallback path on machines that do
// have AVX2 — the hook CI uses to verify the fallback actually runs.
bool Avx2DisabledByEnv() {
  const char* v = std::getenv("SERENITY_DISABLE_AVX2");
  return v != nullptr && v[0] != '\0';
}

bool CpuHasAvx2() {
#if defined(SERENITY_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

constexpr KernelBackend kReferenceTable = {
    Backend::kReference,
    &Conv2dPartial,
    &DepthwiseConv2dPartial,
    &DenseInto,
    &ConcatInto,
    &AddInto,
    &MulInto,
    &ReluInto,
    &BatchNormInto,
    &MaxPool2dInto,
    &AvgPool2dInto,
    &GlobalAvgPool2dInto,
};

constexpr KernelBackend kBlockedTable = {
    Backend::kBlocked,
    &blocked::Conv2dPartial,
    &blocked::DepthwiseConv2dPartial,
    &blocked::DenseInto,
    &blocked::ConcatInto,
    &blocked::AddInto,
    &blocked::MulInto,
    &blocked::ReluInto,
    &blocked::BatchNormInto,
    &blocked::MaxPool2dInto,
    &blocked::AvgPool2dInto,
    &blocked::GlobalAvgPool2dInto,
};

#if defined(SERENITY_HAVE_AVX2)
// Ops with no intrinsic variant (concat, pooling) use the blocked
// implementations — they are memory-bound copies/reductions the compiler
// already vectorizes well from the blocked form.
constexpr KernelBackend kAvx2Table = {
    Backend::kAvx2,
    &avx2::Conv2dPartial,
    &avx2::DepthwiseConv2dPartial,
    &avx2::DenseInto,
    &blocked::ConcatInto,
    &avx2::AddInto,
    &avx2::MulInto,
    &avx2::ReluInto,
    &avx2::BatchNormInto,
    &blocked::MaxPool2dInto,
    &blocked::AvgPool2dInto,
    &blocked::GlobalAvgPool2dInto,
};
#endif

}  // namespace

const char* ToString(Backend backend) {
  switch (backend) {
    case Backend::kReference:
      return "reference";
    case Backend::kBlocked:
      return "blocked";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<Backend> ParseBackend(std::string_view name) {
  if (name == "reference") return Backend::kReference;
  if (name == "blocked") return Backend::kBlocked;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "auto") return Backend::kAuto;
  return std::nullopt;
}

bool BackendCompiled(Backend backend) {
  switch (backend) {
    case Backend::kReference:
    case Backend::kBlocked:
    case Backend::kAuto:
      return true;
    case Backend::kAvx2:
#if defined(SERENITY_HAVE_AVX2)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool BackendAvailable(Backend backend) {
  switch (backend) {
    case Backend::kReference:
    case Backend::kBlocked:
    case Backend::kAuto:
      return true;
    case Backend::kAvx2:
      return BackendCompiled(backend) && CpuHasAvx2() && !Avx2DisabledByEnv();
  }
  return false;
}

Backend ResolveBackend(Backend requested) {
  switch (requested) {
    case Backend::kReference:
      return Backend::kReference;
    case Backend::kBlocked:
      return Backend::kBlocked;
    case Backend::kAvx2:
    case Backend::kAuto:
      // Fastest-first preference with the cpuid/env guard applied; an
      // unavailable ISA backend degrades to the portable blocked kernels,
      // never to a crash on an illegal instruction.
      return BackendAvailable(Backend::kAvx2) ? Backend::kAvx2
                                              : Backend::kBlocked;
  }
  return Backend::kReference;
}

std::vector<Backend> AvailableBackends() {
  std::vector<Backend> out;
  if (BackendAvailable(Backend::kAvx2)) out.push_back(Backend::kAvx2);
  out.push_back(Backend::kBlocked);
  out.push_back(Backend::kReference);
  return out;
}

std::int64_t PlacementAlignment(Backend backend) {
  switch (ResolveBackend(backend)) {
    case Backend::kReference:
      return static_cast<std::int64_t>(sizeof(float));
    case Backend::kBlocked:
    case Backend::kAvx2:
      return 32;  // one AVX2 vector; also what the blocked tiles want
    case Backend::kAuto:
      break;  // unreachable: ResolveBackend never returns kAuto
  }
  return static_cast<std::int64_t>(sizeof(float));
}

const KernelBackend& GetKernelBackend(Backend backend) {
  switch (ResolveBackend(backend)) {
    case Backend::kReference:
      return kReferenceTable;
    case Backend::kBlocked:
      return kBlockedTable;
    case Backend::kAvx2:
#if defined(SERENITY_HAVE_AVX2)
      return kAvx2Table;
#else
      return kBlockedTable;
#endif
    case Backend::kAuto:
      break;  // unreachable: ResolveBackend never returns kAuto
  }
  return kReferenceTable;
}

}  // namespace serenity::runtime
