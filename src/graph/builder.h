// Fluent construction API for SERENITY graphs.
//
// GraphBuilder performs shape inference, assigns deterministic weight seeds
// (so the reference runtime can materialize identical synthetic weights for
// a graph and its rewritten twin), and computes per-op parameter counts.
// All model generators (src/models/) and most tests build graphs through it.
#ifndef SERENITY_GRAPH_BUILDER_H_
#define SERENITY_GRAPH_BUILDER_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace serenity::graph {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::string graph_name,
                        DataType dtype = DataType::kFloat32);

  // --- Op constructors. Each returns the new node's id. ---
  NodeId Input(const TensorShape& shape, const std::string& name = "");

  NodeId Conv2d(NodeId input, int out_channels, int kernel, int stride = 1,
                Padding padding = Padding::kSame, int dilation = 1,
                const std::string& name = "");
  NodeId DepthwiseConv2d(NodeId input, int kernel, int stride = 1,
                         Padding padding = Padding::kSame, int dilation = 1,
                         const std::string& name = "");
  // Pointwise conv (1x1); common enough to deserve a shorthand.
  NodeId Conv1x1(NodeId input, int out_channels,
                 const std::string& name = "");

  NodeId Concat(const std::vector<NodeId>& inputs,
                const std::string& name = "");
  NodeId Add(const std::vector<NodeId>& inputs, const std::string& name = "");
  NodeId Mul(const std::vector<NodeId>& inputs, const std::string& name = "");
  NodeId Relu(NodeId input, const std::string& name = "");
  NodeId BatchNorm(NodeId input, const std::string& name = "");
  NodeId Identity(NodeId input, const std::string& name = "");
  NodeId MaxPool2d(NodeId input, int kernel, int stride = 1,
                   Padding padding = Padding::kSame,
                   const std::string& name = "");
  NodeId AvgPool2d(NodeId input, int kernel, int stride = 1,
                   Padding padding = Padding::kSame,
                   const std::string& name = "");
  NodeId GlobalAvgPool2d(NodeId input, const std::string& name = "");
  NodeId Dense(NodeId input, int units, const std::string& name = "");

  // RandWire macro node: sum(inputs) -> ReLU -> separable 3x3 conv -> BN,
  // fused into a single schedulable unit with one output activation
  // (matching the node granularity the paper schedules RandWire at).
  NodeId FusedCell(const std::vector<NodeId>& inputs, int out_channels,
                   int stride = 1, const std::string& name = "");

  // --- Composite helpers used by the model zoo ---
  // ReLU -> conv -> BN (a ConvBNReLU in pre-activation order, as in DARTS).
  NodeId ReluConvBn(NodeId input, int out_channels, int kernel,
                    int stride = 1, const std::string& prefix = "");
  // DARTS separable conv: (ReLU -> DW(k, stride) -> PW -> BN) x 2.
  NodeId SepConv(NodeId input, int out_channels, int kernel, int stride = 1,
                 const std::string& prefix = "");
  // DARTS dilated separable conv: ReLU -> DW(k, dilation 2) -> PW -> BN.
  NodeId DilConv(NodeId input, int out_channels, int kernel, int stride = 1,
                 const std::string& prefix = "");

  const Graph& graph() const { return graph_; }
  const TensorShape& shape(NodeId id) const { return graph_.node(id).shape; }

  // Validates and returns the finished graph.
  Graph Build() &&;

 private:
  NodeId AddOp(Node node);
  std::uint64_t NextWeightSeed();

  Graph graph_;
  DataType dtype_;
  std::uint64_t seed_counter_ = 0;
  int anon_counter_ = 0;
  std::string AutoName(const char* stem);
};

}  // namespace serenity::graph

#endif  // SERENITY_GRAPH_BUILDER_H_
