// TcpClient: a blocking client for the serve wire protocol.
//
// One connection, used serially (run many clients for concurrency — the
// loadgen does exactly that). Every call is deadline-bounded and returns a
// structured Status; a server-side failure arrives as the reply's embedded
// StatusCode, a transport failure (torn frame, dead connection, timeout)
// as the local I/O Status. RetryAfterMillis() surfaces the server's
// back-off hint after a load-shed reply.
#ifndef SERENITY_SERVE_TCP_CLIENT_H_
#define SERENITY_SERVE_TCP_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/canonical_hash.h"
#include "runtime/tensor.h"
#include "serve/wire.h"
#include "util/status.h"

namespace serenity::serve {

// What the plan verb returns: the key for subsequent infer calls plus the
// plan's provenance.
struct RemotePlan {
  graph::GraphHash hash;
  std::uint8_t quality = 0;  // core::PlanQuality on the server
  bool cache_hit = false;
  std::int64_t arena_bytes = 0;
};

class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();
  TcpClient(TcpClient&& other) noexcept;
  TcpClient& operator=(TcpClient&& other) noexcept;
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  // Connects to 127.0.0.1:port. kUnavailable when nobody listens.
  static util::StatusOr<TcpClient> Connect(int port,
                                           double timeout_seconds = 5.0);

  // One request/reply roundtrip. A non-OK *reply* is folded into the
  // returned Status (code + server message); the reply body is returned on
  // success. Transport failures surface as-is.
  util::StatusOr<std::string> Call(const wire::Request& request,
                                   double timeout_seconds);

  // Verb wrappers. deadline_seconds rides the wire and bounds the server's
  // own work; timeout_seconds bounds this client's wait for the reply.
  util::StatusOr<RemotePlan> Plan(const std::string& graph_text,
                                  double deadline_seconds = 0,
                                  bool allow_degraded = true,
                                  double timeout_seconds = 60.0);
  util::StatusOr<std::vector<runtime::Tensor>> Infer(
      const graph::GraphHash& hash,
      const std::vector<runtime::Tensor>& inputs, double deadline_seconds = 0,
      double timeout_seconds = 60.0);
  util::StatusOr<std::string> Stats(double timeout_seconds = 5.0);
  util::StatusOr<std::string> Health(double timeout_seconds = 5.0);
  util::Status Drain(double timeout_seconds = 5.0);

  // The server's back-off hint from the most recent load-shed reply (0 when
  // the last reply was not a shed).
  std::uint32_t retry_after_millis() const { return retry_after_millis_; }

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }  // exposed for the net chaos suite
  void Close();

 private:
  int fd_ = -1;
  std::uint32_t retry_after_millis_ = 0;
  std::uint32_t max_frame_bytes_ = wire::kMaxFrameBytesDefault;
};

}  // namespace serenity::serve

#endif  // SERENITY_SERVE_TCP_CLIENT_H_
