// Global operator new/delete replacement that counts this thread's heap
// allocations — the measurement behind the ArenaExecutor's
// zero-allocations-per-inference guarantee (arena_executor_test,
// bench_infer_latency).
//
// Replacement allocation functions must be defined at global scope exactly
// once per binary, so unlike the other testing/ helpers this header may be
// included from ONE translation unit of a binary only. All throwing,
// nothrow and sized forms route through malloc/free consistently (mixing
// replaced and default forms trips ASan's alloc-dealloc-mismatch check);
// the count is thread-local so worker threads (e.g. SchedulerService
// planners) cannot pollute a measurement on the driving thread.
#ifndef SERENITY_TESTS_TESTING_ALLOC_COUNTER_H_
#define SERENITY_TESTS_TESTING_ALLOC_COUNTER_H_

#include <cstdint>
#include <cstdlib>
#include <new>

namespace serenity::testing {

inline thread_local std::uint64_t g_thread_allocations = 0;

// Allocations performed by the calling thread since process start.
inline std::uint64_t ThreadAllocationCount() { return g_thread_allocations; }

}  // namespace serenity::testing

void* operator new(std::size_t size) {
  ++serenity::testing::g_thread_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++serenity::testing::g_thread_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++serenity::testing::g_thread_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++serenity::testing::g_thread_allocations;
  return std::malloc(size ? size : 1);
}
// C++17 over-aligned forms: counted too, so a future alignas-heavy kernel
// buffer cannot slip past the zero-allocation gate unmeasured.
// std::aligned_alloc requires the size to be a multiple of the alignment.
void* operator new(std::size_t size, std::align_val_t align) {
  ++serenity::testing::g_thread_allocations;
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  ++serenity::testing::g_thread_allocations;
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  ++serenity::testing::g_thread_allocations;
  const std::size_t a = static_cast<std::size_t>(align);
  return std::aligned_alloc(a, (size + a - 1) / a * a);
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  ++serenity::testing::g_thread_allocations;
  const std::size_t a = static_cast<std::size_t>(align);
  return std::aligned_alloc(a, (size + a - 1) / a * a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // SERENITY_TESTS_TESTING_ALLOC_COUNTER_H_
