// Bring-your-own-network tutorial: build an irregular graph with
// GraphBuilder, verify that identity graph rewriting really is an identity
// by executing both versions on the reference runtime, persist the graph to
// disk, and reload it.
//
//   $ build/examples/custom_network [saved_graph.serenity]
#include <cstdio>
#include <string>

#include "core/pipeline.h"
#include "graph/builder.h"
#include "rewrite/rewriter.h"
#include "runtime/executor.h"
#include "runtime/tensor.h"
#include "serialize/serialize.h"
#include "util/rng.h"

namespace {

serenity::graph::Graph BuildCustomNetwork() {
  using serenity::graph::TensorShape;
  serenity::graph::GraphBuilder b("custom_audio_net");
  // A small keyword-spotting-style network over a 32x32 spectrogram.
  const auto spec = b.Input(TensorShape{1, 32, 32, 1}, "spectrogram");
  const auto stem = b.Conv2d(spec, 24, 3, 2, serenity::graph::Padding::kSame,
                             1, "stem");
  // Irregular block: three branches of different depth + a late skip.
  const auto b0 = b.Conv1x1(stem, 8, "b0");
  const auto b1 = b.SepConv(stem, 8, 3, 1, "b1");
  const auto b2 = b.DilConv(stem, 8, 3, 1, "b2");
  const auto cat = b.Concat({b0, b1, b2}, "concat");
  const auto fuse = b.Conv1x1(cat, 24, "fuse");
  const auto skip = b.DepthwiseConv2d(stem, 3, 1,
                                      serenity::graph::Padding::kSame, 1,
                                      "stem_skip");
  const auto merged = b.Add({fuse, skip}, "merge");
  const auto pooled = b.GlobalAvgPool2d(b.Relu(merged, "relu"), "gap");
  (void)b.Dense(pooled, 12, "keyword_logits");
  return std::move(b).Build();
}

}  // namespace

int main(int argc, char** argv) {
  using serenity::runtime::Tensor;
  const serenity::graph::Graph net = BuildCustomNetwork();
  std::printf("built '%s': %d ops / %lld MACs / %lld parameters\n",
              net.name().c_str(), net.num_nodes(),
              static_cast<long long>(serenity::graph::CountMacs(net)),
              static_cast<long long>(serenity::graph::CountWeights(net)));

  // 1. Rewrite and prove the transformation preserves the function.
  const auto rewritten = serenity::rewrite::RewriteGraph(net);
  std::printf("rewriting applied %d pattern(s): %d -> %d nodes\n",
              rewritten.report.TotalPatterns(), rewritten.report.nodes_before,
              rewritten.report.nodes_after);

  serenity::util::Rng rng(2026);
  const Tensor input = Tensor::Random(net.node(0).shape, rng);
  serenity::runtime::ReferenceExecutor original_exec(net);
  original_exec.Run({input});
  serenity::runtime::ReferenceExecutor rewritten_exec(rewritten.graph);
  rewritten_exec.Run({input});
  const auto expect = original_exec.SinkValues();
  const auto got = rewritten_exec.SinkValues();
  float worst = 0.0f;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    worst = std::max(worst, expect[i].MaxAbsDiff(got[i]));
  }
  std::printf("max |original - rewritten| over outputs: %.2e  %s\n",
              static_cast<double>(worst),
              worst < 1e-3f ? "(identity preserved)" : "(MISMATCH!)");

  // 2. Schedule it.
  const auto result = serenity::core::Pipeline().Run(net);
  if (!result.success) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 result.failure_reason.c_str());
    return 1;
  }
  std::printf("SERENITY peak activation footprint: %.1f KB\n",
              static_cast<double>(result.peak_bytes) / 1024.0);

  // 3. Persist and reload.
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/custom_audio_net.serenity";
  serenity::serialize::SaveToFile(net, path);
  const serenity::graph::Graph reloaded =
      serenity::serialize::LoadFromFile(path);
  std::printf("saved to %s and reloaded: %d ops, graphs %s\n", path.c_str(),
              reloaded.num_nodes(),
              serenity::serialize::ToText(net) ==
                      serenity::serialize::ToText(reloaded)
                  ? "identical"
                  : "DIFFER");
  return worst < 1e-3f ? 0 : 1;
}
