// Deterministic fault injection for the serving core.
//
// Production code is sprinkled with named *injection points* — a branch that
// asks "should this operation fail right now?". In normal operation every
// point is disarmed and the hook is one relaxed atomic load (no locks, no
// allocation, branch predicted away). A test arms a point with a countdown:
// the Nth traversal of that point fires the fault — a forced scheduler
// timeout, a thrown worker exception, a failed arena allocation — and the
// code under test must turn it into a degraded-but-correct plan or a clean
// util::Status, never an abort (tests/serve_chaos_test.cc drives 1000
// seeded combinations through exactly that contract).
//
// Countdown arming (rather than probability) keeps every run reproducible
// from its seed: the kth traversal fires, independent of thread timing.
// File-level faults (cache bit flips, truncation) need no hook — the chaos
// harness mutates the persisted bytes directly; see CorruptFileBit /
// TruncateFile below.
#ifndef SERENITY_TESTING_FAULT_INJECTION_H_
#define SERENITY_TESTING_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace serenity::testing {

enum class FaultPoint : int {
  // Pipeline::Run treats the run as if its wall-clock deadline expired
  // before scheduling: degrade (when enabled) or fail with a deadline
  // status — never block.
  kSchedulerTimeout = 0,
  // SchedulerService::WorkerLoop throws std::runtime_error mid-job; the
  // worker must convert it to a Status and keep serving the queue.
  kWorkerException,
  // runtime::ArenaExecutor's arena allocation throws std::bad_alloc; the
  // session factory must surface kResourceExhausted.
  kArenaAllocation,
  // serve::SessionPool::Checkout behaves as if the pooled-arena byte cap
  // were exhausted: the checkout is shed with kResourceExhausted instead of
  // creating or waiting for a session.
  kSessionCheckout,
  // Wire-level faults, hooked into serve::wire::WriteFrame (the chaos
  // client arms them; the server under test must stay correct):
  //   * kSocketTornFrame — only the first half of the frame reaches the
  //     peer, then the write stops (the caller is told via kDataLoss and
  //     closes, leaving the peer with a torn frame).
  kSocketTornFrame,
  //   * kSocketDelayedByte — the frame trickles out with a long stall after
  //     the first bytes (slow-loris); a peer enforcing a frame deadline
  //     must cut the connection instead of wedging a worker.
  kSocketDelayedByte,
  //   * kSocketMidStreamClose — the frame is written in full and the socket
  //     is immediately shut down, so the peer's reply hits a dead
  //     connection (EPIPE path, which must never raise SIGPIPE or abort).
  kSocketMidStreamClose,
  // util::MemoryBudget::TryCharge denies the Nth charge as if the budget
  // were exhausted; the charging layer must unwind its reservation and
  // surface kResourceExhausted (the pipeline then degrades on memory).
  kBudgetDenial,
  // The DP runner's cancellation poll behaves as if the request's
  // CancelToken fired at the Nth check; the run must unwind with
  // kCancelled. Only polled when a cancel token is attached, so
  // non-cancellable runs are immune.
  kCancelPoll,
  kNumFaultPoints,  // sentinel
};

// Stall length used when kSocketDelayedByte fires (settable so tests can
// size it against the server's frame deadline). Thread-safe.
void SetSocketDelayMillis(int millis);
int SocketDelayMillis();

const char* ToString(FaultPoint point);

// Process-global injector. Thread-safe: arming uses a mutex-free CAS
// countdown, the disarmed fast path is a single relaxed load.
class FaultInjector {
 public:
  static FaultInjector& Global();

  // Arms `point` to fire on its (skip+1)-th traversal, once. Re-arming
  // replaces any pending countdown.
  void ArmAfter(FaultPoint point, std::uint64_t skip = 0);
  void Disarm(FaultPoint point);
  void DisarmAll();

  // How many times `point` actually fired / was traversed since the last
  // ResetCounters. Traversals are counted even while disarmed, so a test
  // can assert an injection point is still wired into the code path.
  std::uint64_t fires(FaultPoint point) const;
  std::uint64_t traversals(FaultPoint point) const;
  void ResetCounters();

  // Hook entry (called from production code via FaultTriggered below).
  bool ShouldFire(FaultPoint point);

 private:
  FaultInjector() = default;
  struct PointState {
    std::atomic<bool> armed{false};
    std::atomic<std::int64_t> countdown{0};  // fires when it drops below 0
    std::atomic<std::uint64_t> fires{0};
    std::atomic<std::uint64_t> traversals{0};
  };
  PointState points_[static_cast<int>(FaultPoint::kNumFaultPoints)];
};

// The injection-point hook compiled into production code. Disarmed cost:
// one relaxed atomic load and a predicted-not-taken branch.
inline bool FaultTriggered(FaultPoint point) {
  return FaultInjector::Global().ShouldFire(point);
}

// RAII arming for tests: disarms everything on scope exit so a failing
// EXPECT cannot leak an armed fault into the next test case.
class ScopedFault {
 public:
  explicit ScopedFault(FaultPoint point, std::uint64_t skip = 0);
  ~ScopedFault();
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

// File-corruption helpers for persistence chaos (no production hook
// needed: these mutate the file in place). Both return false when the file
// cannot be opened or is too small for the request.
bool CorruptFileBit(const std::string& path, std::uint64_t bit_index);
bool TruncateFile(const std::string& path, std::uint64_t keep_bytes);
std::int64_t FileSizeBytes(const std::string& path);  // -1 when unreadable

}  // namespace serenity::testing

#endif  // SERENITY_TESTING_FAULT_INJECTION_H_
