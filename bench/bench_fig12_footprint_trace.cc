// Figure 12 — memory footprint over time while running SwiftNet Cell A:
//   (a) with the memory allocator (arena high-water at each step),
//   (b) without the allocator (sum of live activations at each step).
//
// The paper's headline trace numbers: TFLite 551.0KB -> DP 250.9KB ->
// DP+GR 225.8KB with the allocator; DP 200.7KB -> DP+GR 188.2KB without.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "models/swiftnet.h"
#include "util/chart.h"

namespace {

using namespace serenity;

void PrintSeries(const char* label, const std::vector<std::int64_t>& series,
                 const std::string& series_key, bench::JsonRows* rows) {
  const std::int64_t peak = *std::max_element(series.begin(), series.end());
  std::printf("  %-44s peak %8.1f KB\n", label, bench::Kb(peak));
  std::printf("    step:KB ");
  for (std::size_t i = 0; i < series.size(); ++i) {
    std::printf("%zu:%.0f ", i, bench::Kb(series[i]));
  }
  std::printf("\n");
  rows->Begin();
  rows->Field("series", series_key);
  rows->Field("peak_kb", bench::Kb(peak));
  rows->Field("steps", static_cast<std::int64_t>(series.size()));
}

util::ChartSeries ToChart(const char* label, char marker,
                          const std::vector<std::int64_t>& series) {
  util::ChartSeries s;
  s.label = label;
  s.marker = marker;
  for (const std::int64_t v : series) {
    s.values.push_back(bench::Kb(v));
  }
  return s;
}

// Returns false iff a requested --json write failed.
bool PrintFigure(const std::string& json_path) {
  const models::BenchmarkCell& cell =
      models::FindBenchmarkCell("SwiftNet HPD", "Cell A");
  const bench::CellMeasurement m = bench::MeasureCell(cell);

  std::printf("Figure 12: memory footprint over time, SwiftNet Cell A\n");

  bench::JsonRows rows;
  std::printf("\n(a) with the memory allocator (arena usage per step)\n");
  PrintSeries("TensorFlow Lite (paper: 551.0 KB)",
              alloc::PlanArena(m.graph, m.tflite_schedule)
                  .highwater_at_step,
              "tflite_arena", &rows);
  PrintSeries("DP + allocator (paper: 250.9 KB)",
              alloc::PlanArena(m.dp.scheduled_graph, m.dp.schedule)
                  .highwater_at_step,
              "dp_arena", &rows);
  PrintSeries("DP + rewriting + allocator (paper: 225.8 KB)",
              alloc::PlanArena(m.dp_rw.scheduled_graph, m.dp_rw.schedule)
                  .highwater_at_step,
              "dp_rw_arena", &rows);

  std::printf("\n(b) without the allocator (sum of live activations)\n");
  PrintSeries("DP (paper: 200.7 KB)",
              sched::EvaluateFootprint(m.dp.scheduled_graph, m.dp.schedule)
                  .peak_at_step,
              "dp_liveness", &rows);
  PrintSeries(
      "DP + rewriting (paper: 188.2 KB)",
      sched::EvaluateFootprint(m.dp_rw.scheduled_graph, m.dp_rw.schedule)
          .peak_at_step,
      "dp_rw_liveness", &rows);

  std::printf("\nfootprint-over-time chart (with allocator):\n");
  util::ChartOptions chart_options;
  chart_options.y_unit = "KB";
  std::printf("%s\n",
              util::RenderChart(
                  {ToChart("TensorFlow Lite", 'T',
                           alloc::PlanArena(m.graph, m.tflite_schedule)
                               .highwater_at_step),
                   ToChart("SERENITY DP", 'd',
                           alloc::PlanArena(m.dp.scheduled_graph,
                                            m.dp.schedule)
                               .highwater_at_step),
                   ToChart("SERENITY DP+rewriting", '#',
                           alloc::PlanArena(m.dp_rw.scheduled_graph,
                                            m.dp_rw.schedule)
                               .highwater_at_step)},
                  chart_options)
                  .c_str());

  const double alloc_delta =
      bench::Kb(alloc::PlanArena(m.dp.scheduled_graph, m.dp.schedule)
                    .arena_bytes) -
      bench::Kb(alloc::PlanArena(m.dp_rw.scheduled_graph, m.dp_rw.schedule)
                    .arena_bytes);
  const double pure_delta = bench::Kb(m.dp.peak_bytes) -
                            bench::Kb(m.dp_rw.peak_bytes);
  std::printf("\nrewriting reduced the peak by %.1f KB with the allocator "
              "(paper: 25.1 KB)\n", alloc_delta);
  std::printf("rewriting reduced the peak by %.1f KB without the allocator "
              "(paper: 12.5 KB)\n\n", pure_delta);
  if (!json_path.empty()) {
    rows.Begin();
    rows.Field("series", std::string("rewriting_delta"));
    rows.Field("alloc_delta_kb", alloc_delta);
    rows.Field("pure_delta_kb", pure_delta);
    return rows.WriteTo(json_path);
  }
  return true;
}

void BM_FootprintTrace(benchmark::State& state) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  const sched::Schedule s = sched::TfLiteOrderSchedule(g);
  const graph::BufferUseTable table = graph::BufferUseTable::Build(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::EvaluateFootprint(g, table, s).peak_bytes);
  }
}
BENCHMARK(BM_FootprintTrace);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = serenity::bench::TakeJsonFlag(&argc, argv);
  const bool json_ok = PrintFigure(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return json_ok ? 0 : 1;
}
