#include "sched/beam.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "core/state_store.h"
#include "graph/analysis.h"
#include "util/bitset.h"
#include "util/logging.h"

namespace serenity::sched {

BeamResult ScheduleBeam(const graph::Graph& graph,
                        const BeamOptions& options) {
  SERENITY_CHECK_GT(graph.num_nodes(), 0);
  SERENITY_CHECK_GT(options.width, 0);
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  const core::ExpansionTables tables = core::ExpansionTables::Build(graph);
  const core::SignatureHasher hasher(n);
  const std::size_t words = tables.words_per_state();
  const std::size_t width = static_cast<std::size_t>(options.width);

  BeamResult result;
  std::vector<std::vector<core::ReconRecord>> recon(n + 1);

  core::StateLevel current;
  current.Init(words, 1, 1);
  const std::vector<std::uint64_t> empty(words, 0);
  current.InsertOrRelax(empty.data(), core::SignatureHasher::kEmptyHash, 0,
                        0, -1, -1);
  current.Seal();

  std::vector<std::int32_t> frontier;
  std::vector<std::uint64_t> child(words);
  for (std::size_t level = 0; level < n; ++level) {
    core::StateLevel next;
    // Shared growth-factor heuristic: the parent level is capped at
    // `width`, so 2× of it bounds the arena while keeping the
    // open-addressing table below its rehash load factor.
    next.Init(words, core::NextLevelReserveHint(current.size()));
    for (std::size_t s = 0; s < current.size(); ++s) {
      const std::uint64_t* sig = current.signature(s);
      frontier.clear();
      tables.AppendFrontier(sig, &frontier);
      const std::int64_t footprint = current.footprint(s);
      const std::int64_t peak = current.peak(s);
      const std::uint64_t hash = current.hash(s);
      for (const std::int32_t u : frontier) {
        ++result.states_expanded;
        const core::ExpansionTables::Transition t = tables.Apply(
            sig, u, footprint, std::numeric_limits<std::int64_t>::max());
        std::copy(sig, sig + words, child.data());
        util::SpanSetBit(child.data(), static_cast<std::size_t>(u));
        // Dedup signatures within the level: the best peak per signature
        // wins, exactly as in the DP (beam = DP with a truncated frontier).
        next.InsertOrRelax(child.data(),
                           hash ^ hasher.key(static_cast<std::size_t>(u)),
                           t.footprint, std::max(peak, t.step_peak),
                           static_cast<std::int32_t>(s), u);
      }
    }
    next.Seal();
    SERENITY_CHECK_GT(next.size(), 0u) << "graph has a cycle?";
    // Keep the `width` best states: primary key peak, secondary the current
    // footprint (leaner states have more downstream freedom). The kept set
    // is selected with nth_element (index as the final tie-break makes the
    // comparator a total order, so the set is deterministic), then restored
    // to insertion order so state numbering stays stable.
    if (next.size() > width) {
      std::vector<std::int32_t> keep(next.size());
      std::iota(keep.begin(), keep.end(), 0);
      std::nth_element(
          keep.begin(), keep.begin() + static_cast<std::ptrdiff_t>(width - 1),
          keep.end(), [&next](std::int32_t a, std::int32_t b) {
            const std::size_t ia = static_cast<std::size_t>(a);
            const std::size_t ib = static_cast<std::size_t>(b);
            if (next.peak(ia) != next.peak(ib)) {
              return next.peak(ia) < next.peak(ib);
            }
            if (next.footprint(ia) != next.footprint(ib)) {
              return next.footprint(ia) < next.footprint(ib);
            }
            return a < b;
          });
      keep.resize(width);
      std::sort(keep.begin(), keep.end());
      next = next.Select(keep);
    }
    recon[level] = current.TakeReconAndRelease();
    current = std::move(next);
  }

  // Best final state and backtrack. Dedup leaves exactly one full
  // signature, but stay defensive and pick the best peak.
  std::size_t best = 0;
  for (std::size_t i = 1; i < current.size(); ++i) {
    if (current.peak(i) < current.peak(best)) best = i;
  }
  result.peak_bytes = current.peak(best);
  recon[n] = current.TakeReconAndRelease();
  result.schedule.assign(n, graph::kInvalidNode);
  std::int32_t cursor = static_cast<std::int32_t>(best);
  for (std::size_t i = n; i > 0; --i) {
    const core::ReconRecord& record =
        recon[i][static_cast<std::size_t>(cursor)];
    result.schedule[i - 1] = static_cast<graph::NodeId>(record.last_node);
    cursor = record.prev_index;
  }
  SERENITY_CHECK(IsTopologicalOrder(graph, result.schedule));
  return result;
}

}  // namespace serenity::sched
