#include "alloc/arena_planner.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace serenity::alloc {

namespace {

std::int64_t AlignUp(std::int64_t value, std::int64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

struct Lifetime {
  int first_step = -1;  // first write
  int last_step = -1;   // last use; schedule end for sinks
  bool used = false;
};

std::vector<Lifetime> ComputeLifetimes(const graph::Graph& graph,
                                       const graph::BufferUseTable& table,
                                       const sched::Schedule& schedule) {
  std::vector<Lifetime> lifetimes(table.buffers.size());
  for (std::size_t step = 0; step < schedule.size(); ++step) {
    const graph::NodeId id = schedule[step];
    for (const graph::BufferId b :
         table.touched_buffers[static_cast<std::size_t>(id)]) {
      Lifetime& life = lifetimes[static_cast<std::size_t>(b)];
      const bool writes = graph.node(id).buffer == b;
      if (writes && life.first_step < 0) {
        life.first_step = static_cast<int>(step);
        life.used = true;
      }
      life.last_step = static_cast<int>(step);
    }
  }
  const int last = static_cast<int>(schedule.size()) - 1;
  for (std::size_t b = 0; b < table.buffers.size(); ++b) {
    if (lifetimes[b].used && table.buffers[b].is_sink) {
      lifetimes[b].last_step = last;  // outputs persist to inference end
    }
  }
  return lifetimes;
}

}  // namespace

ArenaPlan PlanArena(const graph::Graph& graph,
                    const graph::BufferUseTable& table,
                    const sched::Schedule& schedule, FitStrategy strategy,
                    std::int64_t alignment) {
  SERENITY_CHECK(sched::IsTopologicalOrder(graph, schedule));
  SERENITY_CHECK_GT(alignment, 0);
  const std::vector<Lifetime> lifetimes =
      ComputeLifetimes(graph, table, schedule);

  // Placement order: TFLite's greedy-by-size plans the largest tensors
  // first (ties broken by first use); the first-use strategies replay
  // allocation-time order instead.
  std::vector<graph::BufferId> order;
  for (std::size_t b = 0; b < lifetimes.size(); ++b) {
    if (lifetimes[b].used) order.push_back(static_cast<graph::BufferId>(b));
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](graph::BufferId a, graph::BufferId b) {
                     const Lifetime& la = lifetimes[static_cast<std::size_t>(a)];
                     const Lifetime& lb = lifetimes[static_cast<std::size_t>(b)];
                     const std::int64_t sa =
                         table.buffers[static_cast<std::size_t>(a)].size_bytes;
                     const std::int64_t sb =
                         table.buffers[static_cast<std::size_t>(b)].size_bytes;
                     if (strategy == FitStrategy::kGreedyBySize) {
                       if (sa != sb) return sa > sb;
                       return la.first_step < lb.first_step;
                     }
                     if (la.first_step != lb.first_step) {
                       return la.first_step < lb.first_step;
                     }
                     return sa > sb;
                   });

  ArenaPlan plan;
  plan.placements.reserve(order.size());
  for (const graph::BufferId b : order) {
    const Lifetime& life = lifetimes[static_cast<std::size_t>(b)];
    const std::int64_t size =
        std::max<std::int64_t>(table.buffers[static_cast<std::size_t>(b)]
                                   .size_bytes,
                               1);
    // Collect already placed buffers whose lifetimes overlap this one,
    // sorted by offset, then scan the gaps.
    std::vector<const BufferPlacement*> conflicts;
    for (const BufferPlacement& p : plan.placements) {
      if (p.first_step <= life.last_step && life.first_step <= p.last_step) {
        conflicts.push_back(&p);
      }
    }
    std::sort(conflicts.begin(), conflicts.end(),
              [](const BufferPlacement* a, const BufferPlacement* b) {
                return a->offset < b->offset;
              });
    std::int64_t best_offset = -1;
    std::int64_t best_gap = std::numeric_limits<std::int64_t>::max();
    std::int64_t cursor = 0;
    const auto consider = [&](std::int64_t gap_start, std::int64_t gap_end) {
      const std::int64_t start = AlignUp(gap_start, alignment);
      if (gap_end - start < size) return;
      if (strategy == FitStrategy::kBestFit) {
        if (gap_end - start < best_gap) {
          best_gap = gap_end - start;
          best_offset = start;
        }
      } else if (best_offset < 0) {
        best_offset = start;  // lowest feasible offset
      }
    };
    for (const BufferPlacement* p : conflicts) {
      if (p->offset > cursor) consider(cursor, p->offset);
      cursor = std::max(cursor, p->offset + p->size);
    }
    // Open-ended gap above the last conflict.
    const std::int64_t open_start = AlignUp(cursor, alignment);
    if (best_offset < 0 ||
        (strategy == FitStrategy::kBestFit &&
         best_gap == std::numeric_limits<std::int64_t>::max())) {
      best_offset = open_start;
    }
    plan.placements.push_back(BufferPlacement{
        b, best_offset, size, life.first_step, life.last_step});
    plan.arena_bytes = std::max(plan.arena_bytes, best_offset + size);
  }

  plan.highwater_at_step.assign(schedule.size(), 0);
  for (const BufferPlacement& p : plan.placements) {
    for (int step = p.first_step; step <= p.last_step; ++step) {
      auto& hw = plan.highwater_at_step[static_cast<std::size_t>(step)];
      hw = std::max(hw, p.offset + p.size);
    }
  }
  return plan;
}

ArenaPlan PlanArena(const graph::Graph& graph,
                    const sched::Schedule& schedule, FitStrategy strategy,
                    std::int64_t alignment) {
  return PlanArena(graph, graph::BufferUseTable::Build(graph), schedule,
                   strategy, alignment);
}

bool ValidatePlacements(const ArenaPlan& plan) {
  for (std::size_t i = 0; i < plan.placements.size(); ++i) {
    const BufferPlacement& a = plan.placements[i];
    if (a.offset < 0 || a.size <= 0) return false;
    if (a.offset + a.size > plan.arena_bytes) return false;
    for (std::size_t j = i + 1; j < plan.placements.size(); ++j) {
      const BufferPlacement& b = plan.placements[j];
      const bool time_overlap =
          a.first_step <= b.last_step && b.first_step <= a.last_step;
      const bool space_overlap =
          a.offset < b.offset + b.size && b.offset < a.offset + a.size;
      if (time_overlap && space_overlap) return false;
    }
  }
  return true;
}

}  // namespace serenity::alloc
