// Schedule type and the footprint evaluator implementing the paper's memory
// model (§3.1, Fig. 6): schedule a node, allocate its output (if this is the
// buffer's first write), record the running-sum peak, then deallocate every
// buffer whose last use just executed.
#ifndef SERENITY_SCHED_SCHEDULE_H_
#define SERENITY_SCHED_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "graph/analysis.h"
#include "graph/graph.h"

namespace serenity::sched {

// A complete execution order: a permutation of all node ids that respects
// data dependencies.
using Schedule = std::vector<graph::NodeId>;

// True if `schedule` contains each node exactly once and every node appears
// after all of its inputs.
bool IsTopologicalOrder(const graph::Graph& graph, const Schedule& schedule);

struct FootprintResult {
  // Peak running activation footprint over the whole schedule — the paper's
  // µpeak. Measured at the moment a node's output has been allocated but its
  // dead inputs not yet freed (Fig. 6 step (1)).
  std::int64_t peak_bytes = 0;
  // Footprint after each step completes (post-deallocation) — the series
  // plotted in Fig. 12(b).
  std::vector<std::int64_t> footprint_after_step;
  // The peak observed while executing each step (pre-deallocation).
  std::vector<std::int64_t> peak_at_step;
};

// Evaluates the activation footprint of a schedule. Dies if the schedule is
// not a topological order of `graph`.
FootprintResult EvaluateFootprint(const graph::Graph& graph,
                                  const graph::BufferUseTable& table,
                                  const Schedule& schedule);

// Convenience overload that builds the use table internally.
FootprintResult EvaluateFootprint(const graph::Graph& graph,
                                  const Schedule& schedule);

// Peak footprint only.
std::int64_t PeakFootprint(const graph::Graph& graph,
                           const Schedule& schedule);

}  // namespace serenity::sched

#endif  // SERENITY_SCHED_SCHEDULE_H_
