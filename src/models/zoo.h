// Registry of the paper's nine benchmark cells (the x-axis of Figures 10,
// 11, 13, 15), with the published reference numbers each bench prints next
// to our measurements.
#ifndef SERENITY_MODELS_ZOO_H_
#define SERENITY_MODELS_ZOO_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace serenity::models {

struct BenchmarkCell {
  std::string group;  // e.g. "DARTS ImageNet"
  std::string name;   // e.g. "Normal Cell"
  graph::Graph (*factory)();

  // Reference values read off the paper's Figure 15 (peak footprint in KB
  // for TFLite / DP+allocator / DP+rewriting+allocator) and Figure 13
  // (scheduling seconds without / with rewriting). Used for side-by-side
  // reporting only — our absolute numbers legitimately differ (synthetic
  // weights/shapes), the *ratios* are the reproduction target.
  double paper_tflite_kb = 0;
  double paper_dp_kb = 0;
  double paper_dp_rw_kb = 0;
  double paper_sched_seconds_dp = 0;
  double paper_sched_seconds_rw = 0;
};

// All nine cells in the paper's presentation order.
const std::vector<BenchmarkCell>& AllBenchmarkCells();

// Convenience lookup by "group/name"; dies if absent.
const BenchmarkCell& FindBenchmarkCell(const std::string& group,
                                       const std::string& name);

}  // namespace serenity::models

#endif  // SERENITY_MODELS_ZOO_H_
