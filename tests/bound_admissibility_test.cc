// Bound-audit suite for the branch-and-bound pruning machinery (PR: deeper
// admissible bounds). Ground truth is a brute-force enumeration of the full
// prefix lattice with a backward suffix DP:
//
//     suffix(S) = min over completions of S of the max transient step
//               = min over edges S->C of max(step_peak(S->C), suffix(C)),
//
// the tightest peak any continuation of S can achieve. A bound is
// *admissible* iff it never exceeds that truth — pruning on an inadmissible
// bound could cut the optimal schedule. Over ~1000 small random DAGs this
// suite pins, against that oracle:
//
//  - the residual bound (AppendFrontier's max unscheduled min-step),
//  - the frontier-alloc floor (ComputeFrontierAllocs / ChildNextAllocFloor),
//    including its EXACTNESS against per-child recomputation — exactness is
//    what keeps duplicate candidates agreeing, hence determinism,
//  - the depth-k lookahead probe (ChildLookaheadExceeds) at every depth in
//    [2, 10], bare and with the transposition cache + dominance memo, and
//  - the dead certificates the probe learns into DominanceTable
//    (every merged bound > incumbent AND <= suffix of its signature),
//
// and that a 4-thread sharded run with a dominance table reproduces the
// sequential run bit for bit — result AND learned-table contents.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dp_scheduler.h"
#include "core/state_store.h"
#include "sched/baselines.h"
#include "testing/random_graphs.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace serenity::core {
namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 2;

// Full prefix lattice of a graph: per state its signature, running
// footprint, outgoing edges, and the exact suffix peak defined above.
struct Lattice {
  struct Edge {
    std::int32_t child;
    std::int64_t step_peak;
  };
  std::vector<std::vector<std::uint64_t>> sig;
  std::vector<std::int64_t> footprint;
  std::vector<std::uint64_t> hash;  // XOR of SignatureHasher keys, DP-style
  std::vector<std::vector<Edge>> edges;
  std::vector<std::vector<std::int32_t>> level_states;
  std::vector<std::int64_t> suffix;
  std::unordered_map<std::uint64_t, std::vector<std::int32_t>> by_hash;

  std::int32_t Find(std::uint64_t h, const std::uint64_t* s,
                    std::size_t words) const {
    auto it = by_hash.find(h);
    if (it == by_hash.end()) return -1;
    for (const std::int32_t i : it->second) {
      if (std::equal(s, s + words, sig[static_cast<std::size_t>(i)].data())) {
        return i;
      }
    }
    return -1;
  }
};

Lattice EnumerateLattice(const ExpansionTables& tables,
                         const SignatureHasher& hasher) {
  const std::size_t n = tables.num_nodes();
  const std::size_t words = tables.words_per_state();
  Lattice lat;
  lat.level_states.resize(n + 1);
  lat.sig.push_back(std::vector<std::uint64_t>(words, 0));
  lat.footprint.push_back(0);
  lat.hash.push_back(0);
  lat.edges.emplace_back();
  lat.by_hash[0].push_back(0);
  lat.level_states[0].push_back(0);
  std::vector<std::int32_t> frontier;
  for (std::size_t lvl = 0; lvl < n; ++lvl) {
    for (const std::int32_t s : lat.level_states[lvl]) {
      const std::vector<std::uint64_t> sig = lat.sig[static_cast<std::size_t>(s)];
      const std::int64_t foot = lat.footprint[static_cast<std::size_t>(s)];
      const std::uint64_t h = lat.hash[static_cast<std::size_t>(s)];
      frontier.clear();
      tables.AppendFrontier(sig.data(), &frontier, nullptr);
      for (const std::int32_t u : frontier) {
        const auto t = tables.Apply(sig.data(), u, foot, kInf);
        std::vector<std::uint64_t> child = sig;
        util::SpanSetBit(child.data(), static_cast<std::size_t>(u));
        const std::uint64_t ch =
            h ^ hasher.key(static_cast<std::size_t>(u));
        std::int32_t ci = lat.Find(ch, child.data(), words);
        if (ci < 0) {
          ci = static_cast<std::int32_t>(lat.sig.size());
          lat.by_hash[ch].push_back(ci);
          lat.sig.push_back(std::move(child));
          lat.footprint.push_back(t.footprint);
          lat.hash.push_back(ch);
          lat.edges.emplace_back();
          lat.level_states[lvl + 1].push_back(ci);
        }
        lat.edges[static_cast<std::size_t>(s)].push_back(
            Lattice::Edge{ci, t.step_peak});
      }
    }
  }
  lat.suffix.assign(lat.sig.size(), 0);
  for (std::size_t lvl = n; lvl-- > 0;) {
    for (const std::int32_t s : lat.level_states[lvl]) {
      std::int64_t best = kInf;
      for (const Lattice::Edge& e : lat.edges[static_cast<std::size_t>(s)]) {
        best = std::min(
            best,
            std::max(e.step_peak,
                     lat.suffix[static_cast<std::size_t>(e.child)]));
      }
      lat.suffix[static_cast<std::size_t>(s)] = best;
    }
  }
  return lat;
}

TEST(BoundAdmissibility, EveryBoundRespectsTheSuffixOracle) {
  util::Rng rng(20260808);
  constexpr int kGraphs = 1000;
  for (int i = 0; i < kGraphs; ++i) {
    testing::RandomDagOptions opts;
    opts.num_ops = 4 + i % 7;
    opts.max_channels = 1 + i % 5;
    opts.extra_edge_p = (i % 4) * 0.25;
    opts.join_sinks = i % 3 != 0;
    const graph::Graph g =
        testing::RandomDag(rng, opts, "adm" + std::to_string(i));
    const std::string ctx = "graph " + std::to_string(i);
    const ExpansionTables tables = ExpansionTables::Build(g);
    const SignatureHasher hasher(tables.num_nodes());
    const std::size_t words = tables.words_per_state();
    const Lattice lat = EnumerateLattice(tables, hasher);

    const int depth = 2 + i % 9;
    ExpansionTables::LookaheadScratch scratch;
    ExpansionTables::FrontierAllocs fa;
    std::vector<std::int32_t> frontier, child_frontier;

    for (std::size_t s = 0; s < lat.sig.size(); ++s) {
      const std::uint64_t* sig = lat.sig[s].data();
      const std::int64_t foot = lat.footprint[s];
      if (lat.edges[s].empty()) continue;  // full state: no bounds apply

      // Residual bound: every completion schedules each unscheduled node,
      // paying at least its min step — so residual <= suffix.
      frontier.clear();
      std::int64_t residual = 0;
      tables.AppendFrontier(sig, &frontier, &residual);
      ASSERT_LE(residual, lat.suffix[s]) << ctx << " state " << s;

      // Frontier allocs: exact per-candidate, and the floor is a true
      // lower bound on the very next step (hence on the suffix).
      tables.ComputeFrontierAllocs(sig, frontier, &fa);
      ASSERT_EQ(fa.alloc.size(), frontier.size()) << ctx;
      std::int64_t min_next_step = kInf;
      for (std::size_t fi = 0; fi < frontier.size(); ++fi) {
        const auto t = tables.Apply(sig, frontier[fi], foot, kInf);
        ASSERT_EQ(fa.alloc[fi], t.step_peak - foot)
            << ctx << " state " << s << " cand " << frontier[fi];
        min_next_step = std::min(min_next_step, t.step_peak);
      }
      ASSERT_EQ(foot + fa.min1, min_next_step) << ctx << " state " << s;
      ASSERT_LE(foot + fa.min1, lat.suffix[s]) << ctx << " state " << s;

      for (std::size_t fi = 0; fi < frontier.size(); ++fi) {
        const std::int32_t u = frontier[fi];
        const Lattice::Edge& e = lat.edges[s][fi];
        const std::size_t c = static_cast<std::size_t>(e.child);
        if (lat.edges[c].empty()) continue;  // full-state child: no probes

        // Child floor: exact against direct recomputation on the child,
        // and admissible against the child's suffix.
        const std::int64_t floor =
            tables.ChildNextAllocFloor(lat.sig[c].data(), u, fa);
        child_frontier.clear();
        tables.AppendFrontier(lat.sig[c].data(), &child_frontier, nullptr);
        std::int64_t direct = kInf;
        for (const std::int32_t v : child_frontier) {
          const auto tv =
              tables.Apply(lat.sig[c].data(), v, lat.footprint[c], kInf);
          direct = std::min(direct, tv.step_peak - lat.footprint[c]);
        }
        ASSERT_EQ(floor, direct) << ctx << " state " << s << " -> " << u;
        ASSERT_LE(lat.footprint[c] + floor, lat.suffix[c])
            << ctx << " state " << s << " -> " << u;

        // Depth-k lookahead, bare: with incumbent == suffix(child) some
        // completion fits, so the probe MUST NOT claim every start
        // exceeds; with any incumbent, a true verdict implies
        // suffix(child) > incumbent (admissibility).
        ASSERT_FALSE(tables.ChildLookaheadExceeds(
            lat.sig[c].data(), lat.footprint[c], u, frontier, lat.suffix[c],
            depth, &scratch))
            << ctx << " state " << s << " -> " << u << " depth " << depth;
        const std::int64_t probe_inc =
            lat.suffix[c] - 1 -
            static_cast<std::int64_t>(rng.NextBounded(3) * 512);
        if (probe_inc >= 0 &&
            tables.ChildLookaheadExceeds(lat.sig[c].data(), lat.footprint[c],
                                         u, frontier, probe_inc, depth,
                                         &scratch)) {
          ASSERT_GT(lat.suffix[c], probe_inc)
              << ctx << " state " << s << " -> " << u;
        }
      }
      if (::testing::Test::HasFailure()) return;  // one counterexample
    }
  }
}

TEST(BoundAdmissibility, LearnedDeadCertificatesAreAdmissible) {
  util::Rng rng(777001);
  constexpr int kGraphs = 300;
  for (int i = 0; i < kGraphs; ++i) {
    testing::RandomDagOptions opts;
    opts.num_ops = 4 + i % 7;
    opts.max_channels = 1 + i % 4;
    opts.extra_edge_p = (i % 4) * 0.25;
    opts.join_sinks = i % 2 == 0;
    const graph::Graph g =
        testing::RandomDag(rng, opts, "cert" + std::to_string(i));
    const std::string ctx = "graph " + std::to_string(i);
    const ExpansionTables tables = ExpansionTables::Build(g);
    const SignatureHasher hasher(tables.num_nodes());
    const std::size_t words = tables.words_per_state();
    const Lattice lat = EnumerateLattice(tables, hasher);
    const std::int64_t mu_star = lat.suffix[0];

    // Probe every transition with the memoized path (cache + dominance +
    // learning) under the tightest valid incumbent, µ*. Every certificate
    // the probes emit must be a true dead signature: bound > µ* and bound
    // <= suffix of the signature (i.e. it really cannot complete under µ*).
    DominanceTable dom;
    dom.Init(words, mu_star);
    DominanceTable::PendingBatch batch;
    ExpansionTables::LookaheadScratch scratch;
    std::vector<std::int32_t> frontier;
    const int depth = 3 + i % 8;
    for (std::size_t s = 0; s < lat.sig.size(); ++s) {
      if (lat.edges[s].empty()) continue;
      frontier.clear();
      tables.AppendFrontier(lat.sig[s].data(), &frontier, nullptr);
      for (std::size_t fi = 0; fi < frontier.size(); ++fi) {
        const Lattice::Edge& e = lat.edges[s][fi];
        const std::size_t c = static_cast<std::size_t>(e.child);
        if (lat.edges[c].empty()) continue;
        const bool exceeds = tables.ChildLookaheadExceeds(
            lat.sig[c].data(), lat.footprint[c], frontier[fi], frontier,
            mu_star, depth, &scratch, &dom, &hasher, lat.hash[c], &batch);
        if (exceeds) {
          ASSERT_GT(lat.suffix[c], mu_star)
              << ctx << " state " << s << " -> " << frontier[fi];
        }
      }
      // Merge at "level" boundaries, like the runner: later probes then
      // exercise the dominance-lookup path inside the DFS.
      dom.Merge(&batch);
    }
    for (std::size_t k = 0; k < dom.size(); ++k) {
      ASSERT_GT(dom.entry_bound(k), mu_star) << ctx << " entry " << k;
      const std::int32_t idx =
          lat.Find(dom.entry_hash(k), dom.entry_signature(k), words);
      ASSERT_GE(idx, 0) << ctx << " entry " << k
                        << " is not a reachable signature";
      ASSERT_LE(dom.entry_bound(k),
                lat.suffix[static_cast<std::size_t>(idx)])
          << ctx << " entry " << k;
    }
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(BoundAdmissibility, DominanceRunsAreThreadInvariantAndExact) {
  util::Rng rng(424255);
  constexpr int kGraphs = 250;
  for (int i = 0; i < kGraphs; ++i) {
    testing::RandomDagOptions opts;
    opts.num_ops = 5 + i % 9;
    opts.max_channels = 1 + i % 5;
    opts.extra_edge_p = (i % 4) * 0.25;
    opts.join_sinks = i % 3 != 0;
    const graph::Graph g =
        testing::RandomDag(rng, opts, "dom" + std::to_string(i));
    const std::string ctx = "graph " + std::to_string(i);

    const DpResult off = ScheduleDp(g);
    ASSERT_EQ(off.status, DpStatus::kSolution) << ctx;

    // Incumbent seeded the way the pipeline does (achievable, >= µ*).
    const std::int64_t incumbent =
        sched::PeakFootprint(g, sched::GreedyMemorySchedule(g));
    ASSERT_GE(incumbent, off.peak_bytes) << ctx;

    const ExpansionTables tables = ExpansionTables::Build(g);
    const std::size_t words = tables.words_per_state();

    DominanceTable dom1;
    dom1.Init(words, incumbent);
    DpOptions seq;
    seq.incumbent_bytes = incumbent;
    seq.dominance = &dom1;
    const DpResult a = ScheduleDp(g, seq);
    ASSERT_EQ(a.status, DpStatus::kSolution) << ctx;
    EXPECT_EQ(a.peak_bytes, off.peak_bytes) << ctx;
    EXPECT_EQ(a.schedule, off.schedule) << ctx;
    EXPECT_LE(a.states_expanded, off.states_expanded) << ctx;

    DominanceTable dom4;
    dom4.Init(words, incumbent);
    DpOptions par = seq;
    par.dominance = &dom4;
    par.num_threads = 4;
    const DpResult b = ScheduleDp(g, par);
    ASSERT_EQ(b.status, DpStatus::kSolution) << ctx;
    EXPECT_EQ(b.peak_bytes, a.peak_bytes) << ctx;
    EXPECT_EQ(b.schedule, a.schedule) << ctx;
    EXPECT_EQ(b.states_expanded, a.states_expanded) << ctx;
    EXPECT_EQ(b.states_pruned_by_bound, a.states_pruned_by_bound) << ctx;
    EXPECT_EQ(b.pruned.incumbent, a.pruned.incumbent) << ctx;
    EXPECT_EQ(b.pruned.residual, a.pruned.residual) << ctx;
    EXPECT_EQ(b.pruned.frontier_floor, a.pruned.frontier_floor) << ctx;
    EXPECT_EQ(b.pruned.lookahead, a.pruned.lookahead) << ctx;
    EXPECT_EQ(b.pruned.dominance, a.pruned.dominance) << ctx;
    ASSERT_EQ(b.level_bounds.size(), a.level_bounds.size()) << ctx;
    for (std::size_t l = 0; l < a.level_bounds.size(); ++l) {
      EXPECT_EQ(b.level_bounds[l], a.level_bounds[l]) << ctx << " level " << l;
    }

    // The learned tables are bit-identical too: same entries in the same
    // order (Merge sorts by an intrinsic key, so shard count cannot leak).
    ASSERT_EQ(dom4.size(), dom1.size()) << ctx;
    for (std::size_t k = 0; k < dom1.size(); ++k) {
      EXPECT_EQ(dom4.entry_hash(k), dom1.entry_hash(k)) << ctx;
      EXPECT_EQ(dom4.entry_bound(k), dom1.entry_bound(k)) << ctx;
      EXPECT_TRUE(std::equal(dom1.entry_signature(k),
                             dom1.entry_signature(k) + words,
                             dom4.entry_signature(k)))
          << ctx << " entry " << k;
    }

    // A second run against the now-populated table (the cross-attempt
    // case) must still be exact — dominance hits replace work, never
    // change the answer.
    DpOptions again = seq;
    const DpResult c = ScheduleDp(g, again);
    ASSERT_EQ(c.status, DpStatus::kSolution) << ctx;
    EXPECT_EQ(c.peak_bytes, off.peak_bytes) << ctx;
    EXPECT_EQ(c.schedule, off.schedule) << ctx;
    EXPECT_LE(c.states_expanded, a.states_expanded) << ctx;

    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace serenity::core
