#include "rewrite/pattern.h"

#include <utility>

namespace serenity::rewrite {

Pattern Pattern::Op(graph::OpKind kind) {
  Pattern p;
  p.kind_ = kind;
  return p;
}

Pattern Pattern::Any() { return Pattern{}; }

Pattern Pattern::Bind(std::string name) && {
  bind_name_ = std::move(name);
  return std::move(*this);
}

Pattern Pattern::Where(Constraint constraint) && {
  constraints_.push_back(std::move(constraint));
  return std::move(*this);
}

Pattern Pattern::WithOperands(std::vector<Pattern> operands) && {
  operand_patterns_.clear();
  operand_patterns_.reserve(operands.size());
  for (Pattern& p : operands) {
    operand_patterns_.push_back(
        std::make_shared<const Pattern>(std::move(p)));
  }
  return std::move(*this);
}

Pattern Pattern::WithAllOperands(Pattern operand) && {
  all_operands_pattern_ = std::make_shared<const Pattern>(std::move(operand));
  return std::move(*this);
}

bool Pattern::MatchInternal(const graph::Graph& graph, graph::NodeId id,
                            MatchBindings& bindings) const {
  const graph::Node& node = graph.node(id);
  if (kind_.has_value() && node.kind != *kind_) return false;
  for (const Constraint& constraint : constraints_) {
    if (!constraint(graph, node)) return false;
  }
  if (!operand_patterns_.empty()) {
    if (node.inputs.size() != operand_patterns_.size()) return false;
    for (std::size_t i = 0; i < operand_patterns_.size(); ++i) {
      if (!operand_patterns_[i]->MatchInternal(graph, node.inputs[i],
                                               bindings)) {
        return false;
      }
    }
  }
  if (all_operands_pattern_ != nullptr) {
    for (const graph::NodeId input : node.inputs) {
      if (!all_operands_pattern_->MatchInternal(graph, input, bindings)) {
        return false;
      }
    }
  }
  if (!bind_name_.empty()) bindings[bind_name_] = id;
  return true;
}

std::optional<MatchBindings> Pattern::Match(const graph::Graph& graph,
                                            graph::NodeId root) const {
  MatchBindings bindings;
  if (MatchInternal(graph, root, bindings)) return bindings;
  return std::nullopt;
}

std::vector<MatchBindings> Pattern::MatchAll(const graph::Graph& graph) const {
  std::vector<MatchBindings> matches;
  for (const graph::Node& node : graph.nodes()) {
    if (auto bindings = Match(graph, node.id)) {
      matches.push_back(std::move(*bindings));
    }
  }
  return matches;
}

Pattern::Constraint HasSingleConsumer() {
  return [](const graph::Graph& graph, const graph::Node& node) {
    return graph.consumers(node.id).size() == 1;
  };
}

Pattern::Constraint HasMinOperands(int n) {
  return [n](const graph::Graph&, const graph::Node& node) {
    return static_cast<int>(node.inputs.size()) >= n;
  };
}

}  // namespace serenity::rewrite
