// Graph persistence: a line-oriented text format for round-tripping graphs
// (import/export of irregularly wired networks) and Graphviz DOT export for
// inspection.
//
// Format (one record per line, '#' comments):
//   graph <name>
//   buffer <id> <size_bytes>
//   node <id> <kind> <dtype> <name> shape=<n,h,w,c> buffer=<id>
//        inputs=<i,j,...> conv=<kh,kw,stride,dilation,pad>
//        coff=<buffer_channel_offset> wseed=<seed> wic=<in_channels>
//        woff=<in_channel_offset> wcount=<params> axis=<concat_axis>
// Fields after `buffer=` are optional with defaults; `inputs=` may be empty.
#ifndef SERENITY_SERIALIZE_SERIALIZE_H_
#define SERENITY_SERIALIZE_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace serenity::serialize {

// Writes `graph` in the text format above.
std::string ToText(const graph::Graph& graph);
void WriteText(const graph::Graph& graph, std::ostream& os);

// Parses a graph from the text format. Dies (SERENITY_CHECK) on malformed
// input; validates the result. For trusted inputs (files this process
// wrote, test fixtures).
graph::Graph FromText(const std::string& text);

// The same parse for *untrusted* bytes (the serve wire path): malformed
// records, unparsable numbers, out-of-range ids, absurd shapes and
// structurally invalid graphs all come back as kInvalidArgument — never an
// abort, never a thrown exception. Every id is range-checked here, before
// Graph::AddNode/AddBuffer (whose contracts are CHECKs), and the result is
// graph::Validate()d.
util::StatusOr<graph::Graph> GraphFromTextOr(const std::string& text);

// Graphviz DOT rendering (topology + per-node tensor sizes).
std::string ToDot(const graph::Graph& graph);

// File helpers.
void SaveToFile(const graph::Graph& graph, const std::string& path);
graph::Graph LoadFromFile(const std::string& path);

}  // namespace serenity::serialize

#endif  // SERENITY_SERIALIZE_SERIALIZE_H_
