#include "runtime/kernels.h"

#include <algorithm>
#include <limits>

#include "runtime/kernels_backends.h"
#include "util/logging.h"

namespace serenity::runtime {

namespace {

using internal::ComputePadding;
using internal::Padding2d;

bool AllContiguous(const std::vector<const Tensor*>& inputs,
                   const Tensor& out) {
  if (!out.contiguous()) return false;
  for (const Tensor* t : inputs) {
    if (!t->contiguous()) return false;
  }
  return true;
}

void CheckSameShape(const std::vector<const Tensor*>& inputs) {
  SERENITY_CHECK_GE(inputs.size(), 2u);
  for (const Tensor* t : inputs) {
    SERENITY_CHECK(t->shape() == inputs[0]->shape());
  }
}

}  // namespace

void Conv2dPartial(const Tensor& input, const ConvWeights& weights,
                   const graph::ConvAttrs& attrs, int ic_offset,
                   bool overwrite, bool add_bias, Tensor& acc) {
  const graph::TensorShape in = input.shape();
  const graph::TensorShape out = acc.shape();
  SERENITY_CHECK_EQ(out.c, weights.out_c);
  SERENITY_CHECK_LE(ic_offset + in.c, weights.in_c);
  const Padding2d pad = ComputePadding(in, attrs, out.h, out.w);

  for (int n = 0; n < out.n; ++n) {
    for (int oh = 0; oh < out.h; ++oh) {
      for (int ow = 0; ow < out.w; ++ow) {
        for (int oc = 0; oc < out.c; ++oc) {
          float sum = overwrite ? 0.0f : acc.At(n, oh, ow, oc);
          for (int ky = 0; ky < attrs.kernel_h; ++ky) {
            const int ih = oh * attrs.stride - pad.top + ky * attrs.dilation;
            if (ih < 0 || ih >= in.h) continue;
            for (int kx = 0; kx < attrs.kernel_w; ++kx) {
              const int iw =
                  ow * attrs.stride - pad.left + kx * attrs.dilation;
              if (iw < 0 || iw >= in.w) continue;
              for (int ic = 0; ic < in.c; ++ic) {
                sum += input.At(n, ih, iw, ic) *
                       weights.KernelAt(ky, kx, ic_offset + ic, oc);
              }
            }
          }
          if (add_bias) sum += weights.bias[static_cast<std::size_t>(oc)];
          acc.At(n, oh, ow, oc) = sum;
        }
      }
    }
  }
}

void Conv2dInto(const Tensor& input, const ConvWeights& weights,
                const graph::ConvAttrs& attrs, Tensor& out) {
  SERENITY_CHECK_EQ(input.shape().c, weights.in_c);
  SERENITY_CHECK(out.shape() ==
                 graph::InferConv2dShape(input.shape(), attrs, weights.out_c))
      << "Conv2d output shape mismatch";
  Conv2dPartial(input, weights, attrs, /*ic_offset=*/0, /*overwrite=*/true,
                /*add_bias=*/true, out);
}

void DepthwiseConv2dPartial(const Tensor& input,
                            const DepthwiseWeights& weights,
                            const graph::ConvAttrs& attrs,
                            int weight_c_offset, Tensor& out,
                            int out_c_offset) {
  const graph::TensorShape in = input.shape();
  SERENITY_CHECK_LE(weight_c_offset + in.c, weights.c);
  SERENITY_CHECK_LE(out_c_offset + in.c, out.shape().c);
  const Padding2d pad = ComputePadding(in, attrs, out.shape().h,
                                       out.shape().w);
  for (int n = 0; n < out.shape().n; ++n) {
    for (int oh = 0; oh < out.shape().h; ++oh) {
      for (int ow = 0; ow < out.shape().w; ++ow) {
        for (int c = 0; c < in.c; ++c) {
          const int wc = weight_c_offset + c;
          float sum = weights.bias[static_cast<std::size_t>(wc)];
          for (int ky = 0; ky < attrs.kernel_h; ++ky) {
            const int ih = oh * attrs.stride - pad.top + ky * attrs.dilation;
            if (ih < 0 || ih >= in.h) continue;
            for (int kx = 0; kx < attrs.kernel_w; ++kx) {
              const int iw =
                  ow * attrs.stride - pad.left + kx * attrs.dilation;
              if (iw < 0 || iw >= in.w) continue;
              sum += input.At(n, ih, iw, c) * weights.KernelAt(ky, kx, wc);
            }
          }
          out.At(n, oh, ow, out_c_offset + c) = sum;
        }
      }
    }
  }
}

void DepthwiseConv2dInto(const Tensor& input, const DepthwiseWeights& weights,
                         const graph::ConvAttrs& attrs, Tensor& out) {
  SERENITY_CHECK_EQ(input.shape().c, weights.c);
  SERENITY_CHECK(out.shape() ==
                 graph::InferDepthwiseShape(input.shape(), attrs))
      << "DepthwiseConv2d output shape mismatch";
  DepthwiseConv2dPartial(input, weights, attrs, /*weight_c_offset=*/0, out,
                         /*out_c_offset=*/0);
}

void ConcatInto(const std::vector<const Tensor*>& inputs, Tensor& out) {
  SERENITY_CHECK_GE(inputs.size(), 2u);
  graph::TensorShape cat_shape = inputs[0]->shape();
  cat_shape.c = 0;
  for (const Tensor* t : inputs) {
    SERENITY_CHECK_EQ(t->shape().n, inputs[0]->shape().n);
    SERENITY_CHECK_EQ(t->shape().h, inputs[0]->shape().h);
    SERENITY_CHECK_EQ(t->shape().w, inputs[0]->shape().w);
    cat_shape.c += t->shape().c;
  }
  SERENITY_CHECK(out.shape() == cat_shape) << "Concat output shape mismatch";
  for (int n = 0; n < cat_shape.n; ++n) {
    for (int h = 0; h < cat_shape.h; ++h) {
      for (int w = 0; w < cat_shape.w; ++w) {
        int c_base = 0;
        for (const Tensor* t : inputs) {
          for (int c = 0; c < t->shape().c; ++c) {
            out.At(n, h, w, c_base + c) = t->At(n, h, w, c);
          }
          c_base += t->shape().c;
        }
      }
    }
  }
}

void AddInto(const std::vector<const Tensor*>& inputs, Tensor& out) {
  CheckSameShape(inputs);
  const graph::TensorShape s = inputs[0]->shape();
  SERENITY_CHECK(out.shape() == s) << "Add output shape mismatch";
  if (AllContiguous(inputs, out)) {  // flat loop, identical arithmetic
    float* o = out.data();
    for (std::size_t i = 0; i < out.size(); ++i) {
      float sum = 0.0f;
      for (const Tensor* t : inputs) sum += t->data()[i];
      o[i] = sum;
    }
    return;
  }
  for (int n = 0; n < s.n; ++n) {
    for (int h = 0; h < s.h; ++h) {
      for (int w = 0; w < s.w; ++w) {
        for (int c = 0; c < s.c; ++c) {
          float sum = 0.0f;
          for (const Tensor* t : inputs) sum += t->At(n, h, w, c);
          out.At(n, h, w, c) = sum;
        }
      }
    }
  }
}

void MulInto(const std::vector<const Tensor*>& inputs, Tensor& out) {
  CheckSameShape(inputs);
  const graph::TensorShape s = inputs[0]->shape();
  SERENITY_CHECK(out.shape() == s) << "Mul output shape mismatch";
  if (AllContiguous(inputs, out)) {  // flat loop, identical arithmetic
    float* o = out.data();
    for (std::size_t i = 0; i < out.size(); ++i) {
      float product = 1.0f;
      for (const Tensor* t : inputs) product *= t->data()[i];
      o[i] = product;
    }
    return;
  }
  for (int n = 0; n < s.n; ++n) {
    for (int h = 0; h < s.h; ++h) {
      for (int w = 0; w < s.w; ++w) {
        for (int c = 0; c < s.c; ++c) {
          float product = 1.0f;
          for (const Tensor* t : inputs) product *= t->At(n, h, w, c);
          out.At(n, h, w, c) = product;
        }
      }
    }
  }
}

void ReluInto(const Tensor& input, Tensor& out) {
  const graph::TensorShape s = input.shape();
  SERENITY_CHECK(out.shape() == s) << "Relu output shape mismatch";
  if (input.contiguous() && out.contiguous()) {
    const float* in = input.data();
    float* o = out.data();
    for (std::size_t i = 0; i < out.size(); ++i) {
      o[i] = std::max(0.0f, in[i]);
    }
    return;
  }
  for (int n = 0; n < s.n; ++n) {
    for (int h = 0; h < s.h; ++h) {
      for (int w = 0; w < s.w; ++w) {
        for (int c = 0; c < s.c; ++c) {
          out.At(n, h, w, c) = std::max(0.0f, input.At(n, h, w, c));
        }
      }
    }
  }
}

void BatchNormInto(const Tensor& input, const BatchNormWeights& weights,
                   Tensor& out) {
  const graph::TensorShape s = input.shape();
  SERENITY_CHECK_EQ(weights.scale.size(), static_cast<std::size_t>(s.c));
  SERENITY_CHECK(out.shape() == s) << "BatchNorm output shape mismatch";
  if (input.contiguous() && out.contiguous()) {
    const float* in = input.data();
    float* o = out.data();
    const std::size_t channels = static_cast<std::size_t>(s.c);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::size_t c = i % channels;
      o[i] = in[i] * weights.scale[c] + weights.shift[c];
    }
    return;
  }
  for (int n = 0; n < s.n; ++n) {
    for (int h = 0; h < s.h; ++h) {
      for (int w = 0; w < s.w; ++w) {
        for (int c = 0; c < s.c; ++c) {
          const std::size_t ci = static_cast<std::size_t>(c);
          out.At(n, h, w, c) =
              input.At(n, h, w, c) * weights.scale[ci] + weights.shift[ci];
        }
      }
    }
  }
}

void MaxPool2dInto(const Tensor& input, const graph::ConvAttrs& attrs,
                   Tensor& out) {
  const graph::TensorShape in = input.shape();
  SERENITY_CHECK(out.shape() == graph::InferPoolShape(in, attrs))
      << "MaxPool2d output shape mismatch";
  const Padding2d pad = ComputePadding(in, attrs, out.shape().h,
                                       out.shape().w);
  for (int n = 0; n < out.shape().n; ++n) {
    for (int oh = 0; oh < out.shape().h; ++oh) {
      for (int ow = 0; ow < out.shape().w; ++ow) {
        for (int c = 0; c < out.shape().c; ++c) {
          float best = std::numeric_limits<float>::lowest();
          for (int ky = 0; ky < attrs.kernel_h; ++ky) {
            const int ih = oh * attrs.stride - pad.top + ky;
            if (ih < 0 || ih >= in.h) continue;
            for (int kx = 0; kx < attrs.kernel_w; ++kx) {
              const int iw = ow * attrs.stride - pad.left + kx;
              if (iw < 0 || iw >= in.w) continue;
              best = std::max(best, input.At(n, ih, iw, c));
            }
          }
          out.At(n, oh, ow, c) = best;
        }
      }
    }
  }
}

void AvgPool2dInto(const Tensor& input, const graph::ConvAttrs& attrs,
                   Tensor& out) {
  const graph::TensorShape in = input.shape();
  SERENITY_CHECK(out.shape() == graph::InferPoolShape(in, attrs))
      << "AvgPool2d output shape mismatch";
  const Padding2d pad = ComputePadding(in, attrs, out.shape().h,
                                       out.shape().w);
  for (int n = 0; n < out.shape().n; ++n) {
    for (int oh = 0; oh < out.shape().h; ++oh) {
      for (int ow = 0; ow < out.shape().w; ++ow) {
        for (int c = 0; c < out.shape().c; ++c) {
          float sum = 0.0f;
          int count = 0;  // average over valid elements only (TFLite SAME)
          for (int ky = 0; ky < attrs.kernel_h; ++ky) {
            const int ih = oh * attrs.stride - pad.top + ky;
            if (ih < 0 || ih >= in.h) continue;
            for (int kx = 0; kx < attrs.kernel_w; ++kx) {
              const int iw = ow * attrs.stride - pad.left + kx;
              if (iw < 0 || iw >= in.w) continue;
              sum += input.At(n, ih, iw, c);
              ++count;
            }
          }
          SERENITY_CHECK_GT(count, 0);
          out.At(n, oh, ow, c) = sum / static_cast<float>(count);
        }
      }
    }
  }
}

void GlobalAvgPool2dInto(const Tensor& input, Tensor& out) {
  const graph::TensorShape in = input.shape();
  SERENITY_CHECK(out.shape() == (graph::TensorShape{in.n, 1, 1, in.c}))
      << "GlobalAvgPool2d output shape mismatch";
  const float denom = static_cast<float>(in.h) * static_cast<float>(in.w);
  for (int n = 0; n < in.n; ++n) {
    for (int c = 0; c < in.c; ++c) {
      float sum = 0.0f;
      for (int h = 0; h < in.h; ++h) {
        for (int w = 0; w < in.w; ++w) sum += input.At(n, h, w, c);
      }
      out.At(n, 0, 0, c) = sum / denom;
    }
  }
}

void DenseInto(const Tensor& input, const DenseWeights& weights,
               Tensor& out) {
  const graph::TensorShape in = input.shape();
  SERENITY_CHECK_EQ(in.NumElements() / in.n, weights.in);
  SERENITY_CHECK(out.shape() == (graph::TensorShape{in.n, 1, 1,
                                                    weights.units}))
      << "Dense output shape mismatch";
  if (input.contiguous() && out.contiguous()) {
    const float* flat = input.data();
    const std::size_t per_batch = static_cast<std::size_t>(weights.in);
    for (int n = 0; n < in.n; ++n) {
      for (int u = 0; u < weights.units; ++u) {
        float sum = weights.bias[static_cast<std::size_t>(u)];
        for (int i = 0; i < weights.in; ++i) {
          sum += flat[static_cast<std::size_t>(n) * per_batch +
                      static_cast<std::size_t>(i)] *
                 weights.KernelAt(i, u);
        }
        out.At(n, 0, 0, u) = sum;
      }
    }
    return;
  }
  for (int n = 0; n < in.n; ++n) {
    for (int u = 0; u < weights.units; ++u) {
      float sum = weights.bias[static_cast<std::size_t>(u)];
      int i = 0;  // flattened (h, w, c) index into the virtual kernel rows
      for (int h = 0; h < in.h; ++h) {
        for (int w = 0; w < in.w; ++w) {
          for (int c = 0; c < in.c; ++c) {
            sum += input.At(n, h, w, c) * weights.KernelAt(i++, u);
          }
        }
      }
      out.At(n, 0, 0, u) = sum;
    }
  }
}

}  // namespace serenity::runtime
