// Design-choice ablations beyond the paper's own tables (DESIGN.md §4):
//
//   (a) soft-budget sweep: explored states vs budget τ — the monotone curve
//       behind Figure 8(b) that makes the binary search of Algorithm 2 work;
//   (b) baseline scheduler shootout: declaration order vs Kahn FIFO vs DFS
//       vs memory-greedy vs DP optimum;
//   (c) Belady vs LRU replacement in the hierarchy simulator;
//   (d) first-fit vs best-fit arena strategies.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/dp_scheduler.h"
#include "memsim/hierarchy_sim.h"
#include "models/swiftnet.h"
#include "rewrite/inplace.h"
#include "sched/beam.h"
#include "util/stats.h"

namespace {

using namespace serenity;

void PrintBudgetSweep() {
  std::printf("(a) soft-budget sweep on SwiftNet Cell A: explored states "
              "vs budget (Figure 8(b) mechanism)\n");
  const graph::Graph g = models::MakeSwiftNetCellA();
  const core::DpResult optimal = core::ScheduleDp(g);
  std::printf("    %-14s %12s %12s\n", "tau / mu*", "states", "status");
  for (const double factor :
       {0.95, 1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 4.0}) {
    core::DpOptions options;
    options.budget_bytes = static_cast<std::int64_t>(
        static_cast<double>(optimal.peak_bytes) * factor);
    const core::DpResult r = core::ScheduleDp(g, options);
    std::printf("    %-14.2f %12llu %12s\n", factor,
                static_cast<unsigned long long>(r.states_expanded),
                ToString(r.status));
  }
  std::printf("\n");
}

void PrintBaselineShootout() {
  std::printf("(b) baseline scheduler shootout (peak footprint KB, no "
              "allocator)\n");
  std::printf("    %-32s %9s %9s %9s %9s %9s\n", "cell", "decl", "kahn",
              "dfs", "greedy", "DP");
  for (const models::BenchmarkCell& cell : models::AllBenchmarkCells()) {
    const graph::Graph g = cell.factory();
    const core::DpResult dp = core::ScheduleDp(g);
    std::printf("    %-32s %9.1f %9.1f %9.1f %9.1f %9.1f\n",
                bench::CellLabel(cell).c_str(),
                bench::Kb(sched::PeakFootprint(
                    g, sched::TfLiteOrderSchedule(g))),
                bench::Kb(sched::PeakFootprint(g, sched::KahnFifoSchedule(g))),
                bench::Kb(sched::PeakFootprint(
                    g, sched::DfsPostorderSchedule(g))),
                bench::Kb(sched::PeakFootprint(
                    g, sched::GreedyMemorySchedule(g))),
                bench::Kb(dp.peak_bytes));
  }
  std::printf("\n");
}

void PrintReplacementAblation() {
  std::printf("(c) Belady vs LRU off-chip traffic (KB), TFLite schedule\n");
  std::printf("    %-32s %10s %10s %10s\n", "cell", "capacity", "belady",
              "lru");
  for (const char* name : {"Cell A", "Cell B"}) {
    const graph::Graph g =
        models::FindBenchmarkCell("SwiftNet HPD", name).factory();
    const sched::Schedule s = sched::TfLiteOrderSchedule(g);
    for (const std::int64_t kb : {96, 160, 256}) {
      memsim::SimOptions belady{kb * 1024, memsim::ReplacementPolicy::kBelady};
      memsim::SimOptions lru{kb * 1024, memsim::ReplacementPolicy::kLru};
      const auto rb = memsim::SimulateHierarchy(g, s, belady);
      const auto rl = memsim::SimulateHierarchy(g, s, lru);
      if (!rb.feasible) continue;
      std::printf("    SwiftNet HPD / %-17s %8lldKB %10.1f %10.1f\n", name,
                  static_cast<long long>(kb), bench::Kb(rb.TotalTraffic()),
                  bench::Kb(rl.TotalTraffic()));
    }
  }
  std::printf("\n");
}

void PrintArenaAblation() {
  std::printf("(d) arena fit strategy (arena KB, TFLite schedule)\n");
  std::printf("    %-32s %10s %10s\n", "cell", "first-fit", "best-fit");
  for (const models::BenchmarkCell& cell : models::AllBenchmarkCells()) {
    const graph::Graph g = cell.factory();
    const sched::Schedule s = sched::TfLiteOrderSchedule(g);
    std::printf("    %-32s %10.1f %10.1f\n", bench::CellLabel(cell).c_str(),
                bench::Kb(alloc::PlanArena(g, s, alloc::FitStrategy::kFirstFit)
                              .arena_bytes),
                bench::Kb(alloc::PlanArena(g, s, alloc::FitStrategy::kBestFit)
                              .arena_bytes));
  }
  std::printf("\n");
}

void PrintBeamAblation() {
  std::printf("(e) beam-search fallback vs exact DP (peak KB)\n");
  std::printf("    %-32s %9s %9s %9s %9s\n", "cell", "beam w=1", "beam w=8",
              "beam w=64", "DP");
  for (const models::BenchmarkCell& cell : models::AllBenchmarkCells()) {
    const graph::Graph g = cell.factory();
    const core::DpResult dp = core::ScheduleDp(g);
    double beams[3];
    int i = 0;
    for (const int width : {1, 8, 64}) {
      sched::BeamOptions options;
      options.width = width;
      beams[i++] = bench::Kb(sched::ScheduleBeam(g, options).peak_bytes);
    }
    std::printf("    %-32s %9.1f %9.1f %9.1f %9.1f\n",
                bench::CellLabel(cell).c_str(), beams[0], beams[1], beams[2],
                bench::Kb(dp.peak_bytes));
  }
  std::printf("\n");
}

void PrintInPlaceAblation() {
  std::printf("(f) in-place elementwise execution (beyond-paper "
              "optimization; peak KB under SERENITY)\n");
  std::printf("    %-32s %12s %12s %8s\n", "cell", "out-of-place",
              "in-place", "ops");
  for (const models::BenchmarkCell& cell : models::AllBenchmarkCells()) {
    const graph::Graph g = cell.factory();
    const core::PipelineResult base = core::Pipeline().Run(g);
    const rewrite::InPlaceResult ip = rewrite::ApplyInPlaceElementwise(g);
    const core::PipelineResult opt = core::Pipeline().Run(ip.graph);
    if (!base.success || !opt.success) continue;
    std::printf("    %-32s %12.1f %12.1f %8d\n",
                bench::CellLabel(cell).c_str(), bench::Kb(base.peak_bytes),
                bench::Kb(opt.peak_bytes), ip.ops_made_in_place);
  }
  std::printf("\n");
}

void BM_BeamSchedule(benchmark::State& state) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  sched::BeamOptions options;
  options.width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::ScheduleBeam(g, options).peak_bytes);
  }
}
BENCHMARK(BM_BeamSchedule)->Arg(1)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_DpBudgeted(benchmark::State& state) {
  const graph::Graph g = models::MakeSwiftNetCellA();
  const core::DpResult optimal = core::ScheduleDp(g);
  core::DpOptions options;
  options.budget_bytes =
      optimal.peak_bytes * state.range(0) / 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ScheduleDp(g, options).states_expanded);
  }
  state.SetLabel("budget=" + std::to_string(state.range(0)) + "% of mu*");
}
BENCHMARK(BM_DpBudgeted)->Arg(100)->Arg(150)->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Design ablations (DESIGN.md experiment index)\n\n");
  PrintBudgetSweep();
  PrintBaselineShootout();
  PrintReplacementAblation();
  PrintArenaAblation();
  PrintBeamAblation();
  PrintInPlaceAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
